// Package planetapps_test hosts the benchmark harness that regenerates
// every table and figure of the paper (go test -bench=.). Each benchmark
// runs one experiment end-to-end against a shared reduced-scale suite and
// reports a headline domain metric alongside ns/op, so a bench run doubles
// as a smoke reproduction of the paper's results. EXPERIMENTS.md records
// the full-scale numbers.
package planetapps_test

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"

	"planetapps"
	"planetapps/internal/catalog"
	"planetapps/internal/experiments"
	"planetapps/internal/marketsim"
	"planetapps/internal/metrics"
	"planetapps/internal/model"
	"planetapps/internal/pricing"
	"planetapps/internal/storeserver"
)

// benchSuite is shared across benchmarks; markets simulate once and cache.
var (
	benchOnce sync.Once
	benchS    *experiments.Suite
	benchErr  error
)

func suite(b *testing.B) *experiments.Suite {
	b.Helper()
	benchOnce.Do(func() {
		benchS, benchErr = experiments.NewSuite(experiments.Config{
			Seed: 1, Scale: 0.25, Days: 20, CommentUsers: 4000,
		})
		if benchErr != nil {
			return
		}
		// Pre-simulate every store so per-benchmark timings measure the
		// analysis, not the shared market construction.
		for _, store := range benchS.StoreNames() {
			if _, benchErr = benchS.Market(store); benchErr != nil {
				return
			}
		}
		_, _, benchErr = benchS.CommentData()
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchS
}

// runExperiment is the common benchmark body.
func runExperiment(b *testing.B, id string) experiments.Result {
	s := suite(b)
	var res experiments.Result
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = experiments.Run(s, id)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
	b.StopTimer()
	return res
}

func BenchmarkTable1(b *testing.B) {
	res := runExperiment(b, "T1").(*experiments.Table1Result)
	b.ReportMetric(res.Rows[0].DailyDownloads, "daily-downloads")
}

func BenchmarkFigure2(b *testing.B) {
	res := runExperiment(b, "F2").(*experiments.Figure2Result)
	// Top-10% share for the anzhi profile (paper: ~90%).
	for i, p := range res.RankPcts {
		if p == 10 {
			b.ReportMetric(res.Share["anzhi"][i], "top10%-share-pct")
		}
	}
}

func BenchmarkFigure3(b *testing.B) {
	res := runExperiment(b, "F3").(*experiments.Figure3Result)
	b.ReportMetric(res.Stores[0].TrunkExponent, "anzhi-trunk-exp")
	b.ReportMetric(res.Stores[0].TailDrop, "anzhi-tail-drop")
}

func BenchmarkFigure4(b *testing.B) {
	res := runExperiment(b, "F4").(*experiments.Figure4Result)
	b.ReportMetric(res.Stores[0].NoUpdatePct, "never-updated-pct")
}

func BenchmarkFigure5(b *testing.B) {
	res := runExperiment(b, "F5").(*experiments.Figure5Result)
	b.ReportMetric(res.SingleCategoryPct, "single-category-pct")
	b.ReportMetric(res.CategoryDownloadPct[0], "top-category-pct")
}

func BenchmarkFigure6(b *testing.B) {
	res := runExperiment(b, "F6").(*experiments.Figure6Result)
	b.ReportMetric(res.Analysis.OverallMean[0], "affinity-d1")
	b.ReportMetric(res.Analysis.RandomWalk[0], "random-walk-d1")
}

func BenchmarkFigure7(b *testing.B) {
	res := runExperiment(b, "F7").(*experiments.Figure7Result)
	b.ReportMetric(res.Medians[0], "median-affinity-d1")
}

func BenchmarkFigure8(b *testing.B) {
	res := runExperiment(b, "F8").(*experiments.Figure8Result)
	// Best-fit distance of APP-CLUSTERING on the anzhi profile.
	for _, st := range res.Stores {
		if st.Store == "anzhi" {
			for _, f := range st.Fits {
				if f.Kind == model.AppClustering {
					b.ReportMetric(f.Distance, "clustering-distance")
				}
			}
		}
	}
}

func BenchmarkFigure9(b *testing.B) {
	res := runExperiment(b, "F9").(*experiments.Figure9Result)
	wins := 0
	for _, row := range res.Rows {
		c := row.Distances[model.AppClustering.String()]
		if c <= row.Distances[model.Zipf.String()] && c <= row.Distances[model.ZipfAtMostOnce.String()] {
			wins++
		}
	}
	b.ReportMetric(float64(wins), "clustering-wins-of-6")
}

func BenchmarkFigure10(b *testing.B) {
	res := runExperiment(b, "F10").(*experiments.Figure10Result)
	b.ReportMetric(res.ArgminFraction("anzhi"), "argmin-users-fraction")
}

func BenchmarkFigure11(b *testing.B) {
	res := runExperiment(b, "F11").(*experiments.Figure11Result)
	b.ReportMetric(res.PaidTrunk, "paid-trunk-exp")
	b.ReportMetric(res.FreeTrunk, "free-trunk-exp")
}

func BenchmarkFigure12(b *testing.B) {
	res := runExperiment(b, "F12").(*experiments.Figure12Result)
	b.ReportMetric(res.Bins.PriceDownloadsR, "price-downloads-r")
}

func BenchmarkFigure13(b *testing.B) {
	res := runExperiment(b, "F13").(*experiments.Figure13Result)
	b.ReportMetric(res.Percentiles[50], "median-income-usd")
}

func BenchmarkFigure14(b *testing.B) {
	res := runExperiment(b, "F14").(*experiments.Figure14Result)
	b.ReportMetric(res.Correlation, "income-apps-r")
}

func BenchmarkFigure15(b *testing.B) {
	res := runExperiment(b, "F15").(*experiments.Figure15Result)
	b.ReportMetric(res.Top4RevenuePct, "top4-revenue-pct")
}

func BenchmarkFigure16(b *testing.B) {
	res := runExperiment(b, "F16").(*experiments.Figure16Result)
	b.ReportMetric(res.PaidSingleAppPct, "paid-single-app-pct")
}

func BenchmarkFigure17(b *testing.B) {
	res := runExperiment(b, "F17").(*experiments.Figure17Result)
	last := res.ByTier[len(res.ByTier)-1]
	b.ReportMetric(res.Overall[len(res.Overall)-1], "break-even-usd")
	b.ReportMetric(last[pricing.TierPopular], "break-even-popular-usd")
}

func BenchmarkFigure18(b *testing.B) {
	res := runExperiment(b, "F18").(*experiments.Figure18Result)
	b.ReportMetric(res.Values[0]/res.Values[len(res.Values)-1], "category-spread-x")
}

func BenchmarkFigure19(b *testing.B) {
	res := runExperiment(b, "F19").(*experiments.Figure19Result)
	first := res.Points[0]
	b.ReportMetric(first.HitRatio[model.AppClustering.String()], "clustering-hit-pct-smallest")
	b.ReportMetric(first.HitRatio[model.Zipf.String()], "zipf-hit-pct-smallest")
}

func BenchmarkAblationX1(b *testing.B) {
	res := runExperiment(b, "X1").(*experiments.AblationX1Result)
	b.ReportMetric(res.Rows[0].DistanceToAMO, "p0-distance-to-amo")
}

func BenchmarkCachePolicies(b *testing.B) {
	res := runExperiment(b, "X2").(*experiments.CachePoliciesX2Result)
	b.ReportMetric(res.HitRatio("CategoryAware")-res.HitRatio("LRU"), "categoryaware-vs-lru-pct")
}

func BenchmarkPrefetchX3(b *testing.B) {
	res := runExperiment(b, "X3").(*experiments.PrefetchX3Result)
	b.ReportMetric(res.HitRate("category-top"), "categorytop-hit-pct")
	b.ReportMetric(res.HitRate("global-top"), "globaltop-hit-pct")
}

func BenchmarkRecommendX4(b *testing.B) {
	res := runExperiment(b, "X4").(*experiments.RecommendX4Result)
	b.ReportMetric(res.HitRate("cluster-aware"), "clusteraware-hit-pct")
	b.ReportMetric(res.HitRate("popularity"), "popularity-hit-pct")
}

func BenchmarkSensitivityX5(b *testing.B) {
	res := runExperiment(b, "X5").(*experiments.SensitivityX5Result)
	last := res.Rows[len(res.Rows)-1]
	b.ReportMetric(last.FittedP, "fitted-p-at-planted-0.9")
	b.ReportMetric(last.Advantage, "amo-over-cl-distance")
}

// BenchmarkWorkloadThroughput measures raw download-event generation speed
// of the core APP-CLUSTERING simulator.
func BenchmarkWorkloadThroughput(b *testing.B) {
	cfg := planetapps.WorkloadConfig{
		Apps: 10000, Users: 20000, DownloadsPerUser: 10,
		ZipfGlobal: 1.4, ZipfCluster: 1.4, ClusterP: 0.9, Clusters: 30,
	}
	w, err := planetapps.NewWorkload(planetapps.APPClustering, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var total int64
	for i := 0; i < b.N; i++ {
		res := w.Run(uint64(i))
		total += res.Total
	}
	b.StopTimer()
	if total > 0 {
		b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "downloads/sec")
	}
}

// BenchmarkRunParallel records the worker-scaling curve of the split-stream
// Monte Carlo engine. Results are byte-identical across worker counts (the
// invariance tests prove it), so the sub-benchmarks measure pure scheduling:
// on an N-core host throughput should rise until workers ≈ N.
func BenchmarkRunParallel(b *testing.B) {
	cfg := planetapps.WorkloadConfig{
		Apps: 10000, Users: 20000, DownloadsPerUser: 10,
		ZipfGlobal: 1.4, ZipfCluster: 1.4, ClusterP: 0.9, Clusters: 30,
	}
	w, err := planetapps.NewWorkload(planetapps.APPClustering, cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var total int64
			for i := 0; i < b.N; i++ {
				total += w.RunParallel(uint64(i), workers).Total
			}
			b.StopTimer()
			if total > 0 {
				b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "downloads/sec")
			}
		})
	}
}

// BenchmarkFitMCParallel records the worker-scaling curve of the Monte
// Carlo fit pipeline (candidate shortlist evaluated on FitSpec.Workers
// goroutines, each candidate's runs concurrent). The observed curve is
// deliberately small so CI's fixed-iteration bench smoke stays fast.
func BenchmarkFitMCParallel(b *testing.B) {
	cfg := planetapps.WorkloadConfig{
		Apps: 300, Users: 3000, DownloadsPerUser: 8,
		ZipfGlobal: 1.4, ZipfCluster: 1.4, ClusterP: 0.9, Clusters: 15,
	}
	w, err := planetapps.NewWorkload(planetapps.APPClustering, cfg)
	if err != nil {
		b.Fatal(err)
	}
	observed := w.Run(17).Curve()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			spec := planetapps.DefaultFitSpec()
			spec.Workers = workers
			for i := 0; i < b.N; i++ {
				fit, err := model.FitMC(model.AppClustering, observed, spec, 3)
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(fit.Distance, "distance")
				}
			}
		})
	}
}

// storeBenchHandler builds one instrumented storeserver handler (rate
// limiter enabled but effectively unlimited, so its cost is measured
// without 429s) shared across the serving-path benchmarks.
var (
	storeBenchOnce sync.Once
	storeBenchH    http.Handler
	storeBenchErr  error
)

func storeHandler(b *testing.B) http.Handler {
	b.Helper()
	storeBenchOnce.Do(func() {
		mcfg := marketsim.DefaultConfig(catalog.Profiles["slideme"].Scale(0.2))
		m, err := marketsim.New(mcfg, 1)
		if err != nil {
			storeBenchErr = err
			return
		}
		storeBenchH = storeserver.New(m, storeserver.Config{
			PageSize: 100, RatePerSec: 1e12, Burst: 1 << 30,
		}).Handler()
	})
	if storeBenchErr != nil {
		b.Fatal(storeBenchErr)
	}
	return storeBenchH
}

// BenchmarkStoreListPage measures the listing handler hot path (100-app
// JSON page) through the limiter and instrumentation middleware.
func BenchmarkStoreListPage(b *testing.B) {
	h := storeHandler(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodGet, "/api/apps?page=0", nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/sec")
}

// BenchmarkStoreAppDetail measures the single-app detail hot path.
func BenchmarkStoreAppDetail(b *testing.B) {
	h := storeHandler(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodGet, "/api/apps/7", nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/sec")
}

// BenchmarkStoreStats guards the pre-summed statistics document: the old
// handler summed every per-app download count under the read lock on each
// request (O(apps)); the snapshot sums once per day, so this path must
// stay O(1) regardless of catalog size.
func BenchmarkStoreStats(b *testing.B) {
	h := storeHandler(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodGet, "/api/stats", nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/sec")
}

// discardWriter mirrors what a recycled keep-alive connection gives the
// server: a persistent header map and a body sink. The recorder-based
// benchmarks above measure the harness as much as the handler; these
// writers isolate the serving path itself, which is the zero-allocation
// claim under test.
type discardWriter struct {
	h      http.Header
	status int
}

func (w *discardWriter) Header() http.Header         { return w.h }
func (w *discardWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w *discardWriter) WriteHeader(code int)        { w.status = code }

// benchHotPath drives one warm cache-hit route with per-goroutine
// writers and requests, the way concurrent keep-alive connections do.
func benchHotPath(b *testing.B, path, acceptEncoding string) {
	h := storeHandler(b)
	proto := httptest.NewRequest(http.MethodGet, path, nil)
	if acceptEncoding != "" {
		proto.Header.Set("Accept-Encoding", acceptEncoding)
	}
	// Warm: document fill, limiter bucket, header-slot creation.
	h.ServeHTTP(&discardWriter{h: http.Header{}}, proto)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		req := proto.Clone(proto.Context())
		w := &discardWriter{h: http.Header{}}
		for pb.Next() {
			w.status = 0
			h.ServeHTTP(w, req)
			if w.status != 0 && w.status != http.StatusOK {
				b.Fatalf("status %d", w.status)
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/sec")
}

// BenchmarkStoreListPageHot measures the warm v1 list hit with identity
// transfer — the pre-encoded snapshot document straight to the wire.
func BenchmarkStoreListPageHot(b *testing.B) {
	benchHotPath(b, "/api/v1/apps?page=0", "identity")
}

// BenchmarkStoreListPageHotGzip is the negotiated flavor: the
// pre-compressed variant built at snapshot time serves with zero
// per-request compression work.
func BenchmarkStoreListPageHotGzip(b *testing.B) {
	benchHotPath(b, "/api/v1/apps?page=0", "gzip")
}

// BenchmarkStoreAppDetailHot measures the warm v1 detail hit.
func BenchmarkStoreAppDetailHot(b *testing.B) {
	benchHotPath(b, "/api/v1/apps/7", "identity")
}

// BenchmarkHistogramObserve measures the telemetry histogram's record path
// under parallel writers — the per-request overhead the instrumented
// server pays.
func BenchmarkHistogramObserve(b *testing.B) {
	h := metrics.NewHistogram()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := int64(17)
		for pb.Next() {
			h.Observe(v)
			v = (v*2862933555777941757 + 3037000493) % (1 << 30)
			if v < 0 {
				v = -v
			}
		}
	})
	if h.Count() != int64(b.N) {
		b.Fatalf("count = %d, want %d", h.Count(), b.N)
	}
}

// dayRollProfile builds a free+paid catalog profile of n apps with
// crawl-realistic churn: day-over-day deltas (downloads, updates, price
// changes, arrivals) are a small fraction of catalog size, the regime the
// paper's daily crawls observe and the day-roll path must exploit.
func dayRollProfile(n int) catalog.Profile {
	return catalog.Profile{
		Name: "dayroll", Apps: n, Categories: 30, PaidFraction: 0.1,
		AdFraction: 0.67, NewAppsPerDay: float64(n) / 2000,
		Users: n, DownloadsPerUser: 82,
		ZipfGlobal: 1.4, ZipfCluster: 1.4, ClusterP: 0.9, CategorySkew: 0.35,
		PriceLogMu: 1.0, PriceLogSigma: 0.8, MeanUpdateRate: 0.003,
	}
}

// dayRollMarket builds the market driven by BenchmarkAdvanceDayExport: a
// long period (so the bench never exhausts it) whose daily download volume
// is ~2% of the catalog (Users * DownloadsPerUser / Days), alongside
// ~0.3% updated and ~0.05% newly arrived apps per day — the small
// day-over-day deltas the paper's daily crawls observe.
func dayRollMarket(b *testing.B, n int) *marketsim.Market {
	b.Helper()
	cfg := marketsim.DefaultConfig(dayRollProfile(n))
	cfg.Days = 4096
	cfg.WarmupDays = 0
	// The serving path never reads the per-app daily series, so a store
	// deployment runs with recording off (appstored -no-series). The knob
	// is observation-only: TestSeedDeterminismAcrossModes proves the
	// simulated market is identical either way.
	cfg.DisableSeries = true
	m, err := marketsim.New(cfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkAdvanceDayExport measures the full day-roll cost on the serving
// path — market Step (simulation) + Export (catalog/download freeze) +
// snapshot rebuild (response-cache construction) — at catalog sizes where
// O(catalog) work per day dominates. This is the write-path counterpart of
// the read-path serving benchmarks above.
func BenchmarkAdvanceDayExport(b *testing.B) {
	for _, n := range []int{10_000, 100_000, 1_000_000} {
		b.Run(fmt.Sprintf("apps=%d", n), func(b *testing.B) {
			if n >= 1_000_000 && testing.Short() {
				b.Skip("1M-app market build is slow; run without -short")
			}
			m := dayRollMarket(b, n)
			s := storeserver.New(m, storeserver.Config{PageSize: 100})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.AdvanceDay(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDayRollWarmArena measures the arena-backed snapshot lifecycle
// under its production rhythm: fully warmed document caches, a day-roll,
// then a re-warm that refills only the churned documents. Each iteration
// exercises the carry path (handle blocks shared wholesale, changed docs
// re-encoded into the fresh arena), arena retention across generations,
// and — as dead bytes accumulate — compaction and slab recycling. The
// slabs_live metric makes an arena leak visible in the CI log: it must
// plateau, not grow with b.N.
func BenchmarkDayRollWarmArena(b *testing.B) {
	const n = 10_000
	m := dayRollMarket(b, n)
	s := storeserver.New(m, storeserver.Config{PageSize: 100})
	h := s.Handler()
	w := &discardWriter{h: http.Header{}}
	warm := func() {
		for i := 0; i < n; i += 7 {
			req := httptest.NewRequest(http.MethodGet, "/api/apps/"+strconv.Itoa(i), nil)
			w.status = 0
			h.ServeHTTP(w, req)
			if w.status != 0 && w.status != http.StatusOK {
				b.Fatalf("status %d", w.status)
			}
		}
	}
	warm()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.AdvanceDay(); err != nil {
			b.Fatal(err)
		}
		warm()
	}
	b.StopTimer()
	ar := s.Arena()
	b.ReportMetric(float64(ar.SlabsLive), "slabs_live")
	b.ReportMetric(float64(ar.SlabsReused), "slabs_reused")
}

// BenchmarkMarketDay measures one simulated market day on the anzhi
// profile.
func BenchmarkMarketDay(b *testing.B) {
	prof, err := planetapps.StoreProfile("anzhi")
	if err != nil {
		b.Fatal(err)
	}
	cfg := planetapps.DefaultMarketConfig(prof.Scale(0.25))
	cfg.Days = b.N + 1
	b.ResetTimer()
	m, _, err := planetapps.SimulateMarket(cfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	_ = m
}
