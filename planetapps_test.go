package planetapps

import (
	"bytes"
	"strings"
	"testing"
)

func TestProfilesExposed(t *testing.T) {
	ps := Profiles()
	for _, name := range []string{"slideme", "1mobile", "appchina", "anzhi"} {
		if _, ok := ps[name]; !ok {
			t.Fatalf("profile %q missing", name)
		}
	}
	if _, err := StoreProfile("nope"); err == nil {
		t.Fatal("unknown store accepted")
	}
	p, err := StoreProfile("anzhi")
	if err != nil || p.Name != "anzhi" {
		t.Fatalf("StoreProfile: %v %v", p, err)
	}
}

func TestGenerateAndSimulate(t *testing.T) {
	p, _ := StoreProfile("slideme")
	p = p.Scale(0.1)
	c, err := GenerateStore(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumApps() != p.Apps {
		t.Fatalf("catalog has %d apps", c.NumApps())
	}
	cfg := DefaultMarketConfig(p)
	cfg.Days = 10
	m, series, err := SimulateMarket(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(series.Days) != 10 {
		t.Fatalf("series has %d days", len(series.Days))
	}
	if m.Catalog().NumApps() < p.Apps {
		t.Fatal("market lost apps")
	}
}

func TestWorkloadAndFit(t *testing.T) {
	cfg := WorkloadConfig{
		Apps: 600, Users: 8000, DownloadsPerUser: 8,
		ZipfGlobal: 1.4, ZipfCluster: 1.4, ClusterP: 0.9, Clusters: 20,
	}
	w, err := NewWorkload(APPClustering, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := w.Run(3)
	curve := ObservedCurve(res.Downloads)
	if curve.Total() == 0 {
		t.Fatal("no downloads")
	}
	pred := PredictCurve(APPClustering, cfg)
	if len(pred.Downloads) != cfg.Apps {
		t.Fatal("prediction length wrong")
	}
	spec := DefaultFitSpec()
	spec.Users = []int{cfg.Users}
	fits, err := FitModels(curve, spec, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(fits) != 3 {
		t.Fatalf("%d fits", len(fits))
	}
	if fits[0].Kind != APPClustering {
		t.Fatalf("best fit is %s", fits[0].Kind)
	}
}

func TestAffinityPipeline(t *testing.T) {
	p, _ := StoreProfile("anzhi")
	c, err := GenerateStore(p.Scale(0.1), 7)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := GenerateComments(c, 2000, 9)
	if err != nil {
		t.Fatal(err)
	}
	an, err := AnalyzeAffinity(c, stream)
	if err != nil {
		t.Fatal(err)
	}
	if an.OverallMean[0] < 2*an.RandomWalk[0] {
		t.Fatalf("affinity %v vs baseline %v", an.OverallMean[0], an.RandomWalk[0])
	}
}

func TestCacheSweepFacade(t *testing.T) {
	cfg := WorkloadConfig{
		Apps: 1000, Users: 4000, DownloadsPerUser: 8,
		ZipfGlobal: 1.7, ZipfCluster: 1.4, ClusterP: 0.9, Clusters: 30,
	}
	pts, err := CacheSweep(cfg, []float64{2, 10}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	if pts[0].HitRatio["APP-CLUSTERING"] >= pts[0].HitRatio["ZIPF"] {
		t.Fatal("clustering should hurt the cache")
	}
}

func TestAnalyzePricingFacade(t *testing.T) {
	p, _ := StoreProfile("slideme")
	cfg := DefaultMarketConfig(p)
	cfg.Days = 20
	m, _, err := SimulateMarket(cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := AnalyzePricing(m.Catalog(), m.Downloads())
	if err != nil {
		t.Fatal(err)
	}
	if rep.BreakEven <= 0 {
		t.Fatal("no break-even income")
	}
	if rep.FreeCurve.Total() <= rep.PaidCurve.Total() {
		t.Fatal("free volume should dominate")
	}
	if len(rep.Incomes) == 0 {
		t.Fatal("no incomes")
	}
}

func TestExperimentFacade(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 24 {
		t.Fatalf("%d experiments", len(ids))
	}
	s, err := NewExperimentSuite(ExperimentConfig{Seed: 3, Scale: 0.15, Days: 10, CommentUsers: 800})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res, err := RunExperiment(s, "T1", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if res.ID() != "T1" {
		t.Fatalf("ID = %s", res.ID())
	}
	if !strings.Contains(buf.String(), "anzhi") {
		t.Fatal("render missing content")
	}
	if _, err := RunExperiment(s, "F999", nil); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
