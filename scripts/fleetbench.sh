#!/usr/bin/env bash
# fleetbench.sh — read-scaling benchmark for the sharded store fleet.
#
# Measures closed-loop list+detail throughput against 1, 2, and 4 store
# nodes (the 1-node run bypasses the gateway entirely; the fleet runs go
# through the consistent-hash gateway's scatter/merge), then runs a
# 4-shard pass with a mid-run two-phase fleet day-roll to pin the epoch
# coherence numbers. Results land in BENCH_fleet.json.
#
# The capacity model: every store node is a fixed-capacity machine
# serving at most CAPACITY concurrent requests, each taking LATENCY of
# wall-clock service time, so a node's throughput ceiling is
# CAPACITY/LATENCY regardless of host CPU. Coarse slots (200ms x 80 =
# 400 req/s) keep Go timer wakeup slack (~1-2ms on a loaded single-CPU
# host) proportionally negligible, so the measured ceilings track the
# model instead of the scheduler. Closed-loop virtual users scale with
# the fleet (160 per node's worth of capacity) so every topology is
# driven to saturation; throughput is then bounded by the hottest
# shard's share of arrivals — the number the ring's balance controls.
#
# The workload is the uniform-popularity download stream (-model zipf
# -zipf 0) over the full-scale 2200-app catalog: uniform arrivals make
# the measured scaling track ring ownership rather than workload skew,
# which is the property under test. Every 16th event is a full listing
# page — the gateway's scatter/merge path — so the merge tax is in the
# measured number, not benched around.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_fleet.json}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

LATENCY=200ms
CAPACITY=80
EVENTS=30000
SCALE=1
VNODES=2048

run() { # run <shards> <vus> <outfile> [extra flags...]
  local shards="$1" vus="$2" out="$3"
  shift 3
  local topo=()
  if [ "$shards" -gt 1 ]; then
    topo=(-shards "$shards" -vnodes "$VNODES")
  fi
  go run ./cmd/loadtest "${topo[@]}" \
    -api v1 -scale "$SCALE" -model zipf -zipf 0 \
    -mode closed -vus "$vus" -think 0 -events "$EVENTS" -list-every 16 \
    -server-latency "$LATENCY" -server-capacity "$CAPACITY" \
    -warmup 500ms "$@" -out "$out" >&2
}

echo "fleetbench: 1 node (no gateway)" >&2
run 1 160 "$TMP/n1.json"
echo "fleetbench: 2 shards" >&2
run 2 320 "$TMP/n2.json"
echo "fleetbench: 4 shards" >&2
run 4 640 "$TMP/n4.json"
echo "fleetbench: 4 shards + mid-run fleet day-roll" >&2
run 4 640 "$TMP/roll.json" -day-roll 8s

jq -n \
  --slurpfile n1 "$TMP/n1.json" \
  --slurpfile n2 "$TMP/n2.json" \
  --slurpfile n4 "$TMP/n4.json" \
  --slurpfile roll "$TMP/roll.json" \
  --arg gomaxprocs "${GOMAXPROCS:-$(nproc)}" \
  --arg latency "$LATENCY" --argjson capacity "$CAPACITY" \
  --argjson events "$EVENTS" --argjson vnodes "$VNODES" '
  def summarize: {
    throughput_rps: .closed.throughput_rps,
    requests: .closed.requests,
    detail_p50_ms: (.closed.classes[] | select(.class == "detail") | .latency_ms.p50),
    detail_p99_ms: (.closed.classes[] | select(.class == "detail") | .latency_ms.p99),
    list_p99_ms: (.closed.classes[] | select(.class == "list") | .latency_ms.p99),
    per_shard_served: (.fleet.per_shard_served // null),
    gateway: (.fleet.gateway // null)
  };
  {
    benchmark: "sharded store fleet: list+detail read scaling",
    gomaxprocs: ($gomaxprocs | tonumber),
    capacity_model: {
      per_node_latency: $latency,
      per_node_capacity: $capacity,
      per_node_ceiling_rps: 400,
      note: "each store node admits at most capacity concurrent API requests, each taking latency of service time; node ceiling = capacity/latency independent of host CPU"
    },
    workload: {
      model: "zipf", zipf_exponent: 0, scale: 1, apps: 2200,
      list_every: 16, mode: "closed", events: $events,
      vus_per_node: 160, vnodes: $vnodes
    },
    runs: {
      "1": ($n1[0] | summarize),
      "2": ($n2[0] | summarize),
      "4": ($n4[0] | summarize)
    },
    scaling: {
      "2": (($n2[0].closed.throughput_rps / $n1[0].closed.throughput_rps * 100 | round) / 100),
      "4": (($n4[0].closed.throughput_rps / $n1[0].closed.throughput_rps * 100 | round) / 100)
    },
    epoch_swap: {
      throughput_rps: $roll[0].closed.throughput_rps,
      day_roll: $roll[0].closed.day_roll,
      gateway_epoch_retries: $roll[0].fleet.gateway.epoch_retries,
      gateway_epoch_skews: $roll[0].fleet.gateway.epoch_skews,
      note: "4-shard closed-loop run with a two-phase fleet day-roll fired mid-run; mixed_epoch_responses counts post-roll responses that disagreed on X-Store-Day (must be 0)"
    }
  }' > "$OUT"

echo "fleetbench: wrote $OUT" >&2
jq '{scaling: .scaling, mixed_epoch: .epoch_swap.day_roll.mixed_epoch_responses}' "$OUT" >&2
