package resilient

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func newTestClient(t *testing.T, cfg Config) *Client {
	t.Helper()
	if cfg.BaseBackoff == 0 {
		cfg.BaseBackoff = time.Millisecond
	}
	if cfg.MaxBackoff == 0 {
		cfg.MaxBackoff = 5 * time.Millisecond
	}
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	return New(cfg)
}

func TestClientRetriesServerErrorsThenSucceeds(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		fmt.Fprint(w, `{"ok":true}`)
	}))
	defer srv.Close()

	c := newTestClient(t, Config{})
	res, err := c.Get(context.Background(), srv.URL, nil, nil)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if res.Status != 200 || string(res.Body) != `{"ok":true}` {
		t.Fatalf("got %d %q", res.Status, res.Body)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("server hits = %d, want 3", got)
	}
	if s := c.Stats(); s.Retries != 2 {
		t.Fatalf("Retries = %d, want 2", s.Retries)
	}
}

func TestClientPermanentErrorFailsFast(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.NotFound(w, r)
	}))
	defer srv.Close()

	c := newTestClient(t, Config{})
	res, err := c.Get(context.Background(), srv.URL, nil, nil)
	var perr *PermanentError
	if err == nil || !errorsAs(err, &perr) {
		t.Fatalf("err = %v, want PermanentError", err)
	}
	if perr.Status != 404 || res == nil || res.Status != 404 {
		t.Fatalf("status = %v / res = %v, want 404", perr.Status, res)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("server hits = %d, want exactly 1 (no retries on 404)", got)
	}
}

// errorsAs avoids importing errors just for one call (and keeps the test
// explicit about the target type).
func errorsAs(err error, target **PermanentError) bool {
	for err != nil {
		if pe, ok := err.(*PermanentError); ok {
			*target = pe
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func TestClientHonorsEnvelopeRetryAfter(t *testing.T) {
	var hits atomic.Int64
	var firstRetry atomic.Int64
	var trippedNS atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := hits.Add(1)
		if n == 1 {
			trippedNS.Store(time.Now().UnixNano())
			w.Header().Set("Retry-After", "1") // coarse header: 1 full second
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			// The envelope's ms field must win over the 1s header.
			fmt.Fprint(w, `{"error":{"code":"rate_limited","message":"slow down","retry_after_ms":40}}`)
			return
		}
		firstRetry.Store(time.Now().UnixNano() - trippedNS.Load())
		fmt.Fprint(w, `ok`)
	}))
	defer srv.Close()

	c := newTestClient(t, Config{})
	if _, err := c.Get(context.Background(), srv.URL, nil, nil); err != nil {
		t.Fatalf("Get: %v", err)
	}
	waited := time.Duration(firstRetry.Load())
	if waited < 40*time.Millisecond {
		t.Fatalf("retried after %v, want >= envelope's 40ms", waited)
	}
	if waited > 700*time.Millisecond {
		t.Fatalf("retried after %v — header's 1s won over envelope's 40ms", waited)
	}
	if s := c.Stats(); s.RetryAfterWaits != 1 {
		t.Fatalf("RetryAfterWaits = %d, want 1", s.RetryAfterWaits)
	}
}

// TestClientRetryAfterBudgetBounds pins the dual-budget design: hinted
// rejections never spend MaxRetries (a storm deeper than the retry count
// still drains), but their cumulative wait is bounded by RetryAfterBudget
// so a server that 429s forever cannot park a Get indefinitely.
func TestClientRetryAfterBudgetBounds(t *testing.T) {
	t.Run("storm deeper than MaxRetries drains", func(t *testing.T) {
		var hits atomic.Int64
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if hits.Add(1) <= 10 {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusTooManyRequests)
				fmt.Fprint(w, `{"error":{"code":"rate_limited","message":"busy","retry_after_ms":1}}`)
				return
			}
			fmt.Fprint(w, `ok`)
		}))
		defer srv.Close()

		c := newTestClient(t, Config{MaxRetries: 2})
		if _, err := c.Get(context.Background(), srv.URL, nil, nil); err != nil {
			t.Fatalf("Get through a 10-deep hinted storm with MaxRetries=2: %v", err)
		}
		if got := hits.Load(); got != 11 {
			t.Fatalf("server hits = %d, want 11", got)
		}
	})
	t.Run("perpetual 429 exhausts the time budget", func(t *testing.T) {
		var hits atomic.Int64
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			hits.Add(1)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":{"code":"rate_limited","message":"busy","retry_after_ms":20}}`)
		}))
		defer srv.Close()

		c := newTestClient(t, Config{MaxRetries: 50, RetryAfterBudget: 50 * time.Millisecond})
		res, err := c.Get(context.Background(), srv.URL, nil, nil)
		if err == nil {
			t.Fatal("perpetual 429 succeeded")
		}
		if res == nil || res.Status != http.StatusTooManyRequests {
			t.Fatalf("final response = %+v, want the last 429", res)
		}
		// 50ms budget at 20ms per wait: waits at 20/40ms pass the check,
		// the next rejection (60ms accrued) gives up — 4 requests total,
		// far below what MaxRetries=50 would have allowed.
		if got := hits.Load(); got < 3 || got > 5 {
			t.Fatalf("server hits = %d, want the ~4 the 50ms budget affords", got)
		}
	})
}

func TestClientValidationFailureTriggersRefetch(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			fmt.Fprint(w, "{\"ok\":\x00\x00}") // damaged payload, status 200
			return
		}
		fmt.Fprint(w, `{"ok":true}`)
	}))
	defer srv.Close()

	c := newTestClient(t, Config{})
	var out struct{ OK bool }
	res, err := c.Get(context.Background(), srv.URL, nil, func(r *Result) error {
		return json.Unmarshal(r.Body, &out)
	})
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !out.OK || res.Status != 200 {
		t.Fatalf("decoded %+v status %d after refetch", out, res.Status)
	}
	if got := hits.Load(); got != 2 {
		t.Fatalf("server hits = %d, want 2 (refetch after invalid body)", got)
	}
	if s := c.Stats(); s.InvalidBodies != 1 {
		t.Fatalf("InvalidBodies = %d, want 1", s.InvalidBodies)
	}
}

func TestClientHedgesSlowPrimary(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			// Primary stalls far beyond the hedge trigger.
			select {
			case <-r.Context().Done():
				return
			case <-time.After(2 * time.Second):
			}
		}
		fmt.Fprint(w, `fast`)
	}))
	defer srv.Close()

	c := newTestClient(t, Config{HedgeAfter: 20 * time.Millisecond, MaxHedges: 1})
	start := time.Now()
	res, err := c.Get(context.Background(), srv.URL, nil, nil)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if string(res.Body) != "fast" {
		t.Fatalf("body = %q", res.Body)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("took %v — hedge did not rescue the stalled primary", elapsed)
	}
	s := c.Stats()
	if s.Hedges != 1 || s.HedgeWins != 1 {
		t.Fatalf("Hedges = %d HedgeWins = %d, want 1/1", s.Hedges, s.HedgeWins)
	}
}

func TestClientAIMDDecreasesOn429(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, "rate limited", http.StatusTooManyRequests)
			return
		}
		fmt.Fprint(w, `ok`)
	}))
	defer srv.Close()

	c := newTestClient(t, Config{AIMD: &AIMDConfig{Min: 1, Max: 8, Start: 8}})
	if _, err := c.Get(context.Background(), srv.URL, nil, nil); err != nil {
		t.Fatalf("Get: %v", err)
	}
	s := c.Stats()
	if s.AIMDDecreases != 2 {
		t.Fatalf("AIMDDecreases = %d, want 2", s.AIMDDecreases)
	}
	if s.AIMDLimit >= 8 {
		t.Fatalf("AIMDLimit = %v, want shrunk below the start of 8", s.AIMDLimit)
	}
}

func TestClientBreakerWaitsOutOpenCircuit(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, `up`)
	}))
	defer srv.Close()

	c := newTestClient(t, Config{
		MaxRetries: 5,
		Breaker:    &BreakerConfig{Failures: 2, Cooldown: 10 * time.Millisecond},
	})
	res, err := c.Get(context.Background(), srv.URL, nil, nil)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if string(res.Body) != "up" {
		t.Fatalf("body = %q", res.Body)
	}
	s := c.Stats()
	if s.BreakerOpens != 1 {
		t.Fatalf("BreakerOpens = %d, want 1", s.BreakerOpens)
	}
	if s.BreakerWaits == 0 {
		t.Fatalf("BreakerWaits = 0, want > 0 (retry should have waited out the open circuit)")
	}
}

func TestClientTransportAdapterSurfacesFinalStatus(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.NotFound(w, r)
	}))
	defer srv.Close()

	c := newTestClient(t, Config{})
	hc := &http.Client{Transport: c.Transport()}
	resp, err := hc.Get(srv.URL)
	if err != nil {
		t.Fatalf("Get via adapter: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("status = %d, want 404 surfaced as a response, not an error", resp.StatusCode)
	}
}

func TestClientContextCancellation(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	c := newTestClient(t, Config{MaxRetries: 100, BaseBackoff: 10 * time.Millisecond, MaxBackoff: 20 * time.Millisecond})
	start := time.Now()
	_, err := c.Get(ctx, srv.URL, nil, nil)
	if err == nil {
		t.Fatalf("Get succeeded against an all-503 server")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatalf("cancellation took %v — retry loop ignored the context", time.Since(start))
	}
}

func TestRetryAfterHint(t *testing.T) {
	now := time.Date(2013, 4, 1, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		name   string
		status int
		hdr    http.Header
		body   string
		want   time.Duration
	}{
		{"none", 429, http.Header{}, "", 0},
		{"header-seconds", 429, http.Header{"Retry-After": {"2"}}, "", 2 * time.Second},
		{"header-date", 503, http.Header{"Retry-After": {now.Add(3 * time.Second).Format(http.TimeFormat)}}, "", 3 * time.Second},
		{"envelope-wins", 429, http.Header{"Retry-After": {"5"}}, `{"error":{"code":"rate_limited","retry_after_ms":150}}`, 150 * time.Millisecond},
		{"envelope-garbage-falls-back", 429, http.Header{"Retry-After": {"1"}}, `{nope`, time.Second},
		{"not-throttling-status", 500, http.Header{"Retry-After": {"9"}}, "", 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := retryAfterHint(tc.status, tc.hdr, []byte(tc.body), now); got != tc.want {
				t.Fatalf("retryAfterHint = %v, want %v", got, tc.want)
			}
		})
	}
}
