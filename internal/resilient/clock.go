package resilient

import (
	"context"
	"time"
)

// Clock abstracts time for the client and circuit breaker so the
// state machines are testable with a fake clock (no real sleeping in
// unit tests) while production uses the wall clock.
type Clock interface {
	Now() time.Time
	// Sleep blocks for d or until ctx is done, returning ctx.Err() in the
	// latter case.
	Sleep(ctx context.Context, d time.Duration) error
}

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

func (realClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
