package resilient

import (
	"sync"
	"time"

	"planetapps/internal/metrics"
)

// BreakerConfig tunes the per-host circuit breaker.
type BreakerConfig struct {
	// Failures is how many consecutive failures open the circuit
	// (default 8). Consecutive — not a ratio — so a host that still
	// answers some requests through a fault storm keeps its circuit
	// closed and only a genuinely dead host trips it.
	Failures int
	// Cooldown is how long an open circuit rejects before admitting
	// half-open probes (default 400ms).
	Cooldown time.Duration
	// Probes is how many concurrent half-open probes are admitted
	// (default 1).
	Probes int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Failures <= 0 {
		c.Failures = 8
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 400 * time.Millisecond
	}
	if c.Probes <= 0 {
		c.Probes = 1
	}
	return c
}

type breakerState uint8

const (
	stClosed breakerState = iota
	stOpen
	stHalfOpen
)

// Breaker is one host's circuit: closed (requests flow, consecutive
// failures counted) -> open (requests rejected until Cooldown elapses) ->
// half-open (a bounded number of probes fly; a probe success closes the
// circuit, a probe failure re-opens it). Safe for concurrent use.
type Breaker struct {
	mu     sync.Mutex
	cfg    BreakerConfig
	clock  Clock
	state  breakerState
	fails  int
	opened time.Time
	probes int
	opens  int64
	// onOpen, when set, mirrors open transitions into a shared metrics
	// counter (wired by breakerSet).
	onOpen *metrics.Counter
}

// NewBreaker creates a closed breaker. A nil clock uses the wall clock.
func NewBreaker(cfg BreakerConfig, clock Clock) *Breaker {
	if clock == nil {
		clock = realClock{}
	}
	return &Breaker{cfg: cfg.withDefaults(), clock: clock}
}

// Opens returns how many times the circuit has opened.
func (b *Breaker) Opens() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}

// Token resolves one admitted request's outcome. Exactly one of its
// methods must be called.
type Token struct {
	b     *Breaker
	probe bool
	done  bool
}

// Try asks to admit a request. When ok, the returned token must be
// resolved with Success, Failure, or Cancel. When not ok, retryIn is how
// long until the circuit will next admit a probe.
func (b *Breaker) Try() (t *Token, retryIn time.Duration, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.clock.Now()
	switch b.state {
	case stClosed:
		return &Token{b: b}, 0, true
	case stOpen:
		if wait := b.cfg.Cooldown - now.Sub(b.opened); wait > 0 {
			return nil, wait, false
		}
		b.state = stHalfOpen
		b.probes = 1
		return &Token{b: b, probe: true}, 0, true
	default: // half-open
		if b.probes < b.cfg.Probes {
			b.probes++
			return &Token{b: b, probe: true}, 0, true
		}
		// Another probe is in flight; check back shortly.
		wait := b.cfg.Cooldown / 8
		if wait <= 0 {
			wait = time.Millisecond
		}
		return nil, wait, false
	}
}

// Success reports the request completed cleanly.
func (t *Token) Success() { t.resolve(outcomeSuccess) }

// Failure reports the request failed in a way that implicates the host
// (transport error, 5xx, damaged body).
func (t *Token) Failure() { t.resolve(outcomeFailure) }

// Cancel reports the request never ran to a verdict (context canceled);
// the breaker's failure accounting is untouched but any probe slot is
// returned.
func (t *Token) Cancel() { t.resolve(outcomeCancel) }

type outcome uint8

const (
	outcomeSuccess outcome = iota
	outcomeFailure
	outcomeCancel
)

func (t *Token) resolve(o outcome) {
	if t == nil || t.done {
		return
	}
	t.done = true
	b := t.b
	b.mu.Lock()
	defer b.mu.Unlock()
	if t.probe {
		// This token was a half-open probe (or the transition probe from
		// open). If the state moved on since — another probe resolved
		// first — only the slot accounting applies.
		if b.state == stHalfOpen {
			b.probes--
			switch o {
			case outcomeSuccess:
				b.state = stClosed
				b.fails = 0
				b.probes = 0
			case outcomeFailure:
				b.state = stOpen
				b.opened = b.clock.Now()
				b.markOpen()
				b.probes = 0
			}
		}
		return
	}
	if b.state != stClosed {
		return // a straggler from before the circuit opened
	}
	switch o {
	case outcomeSuccess:
		b.fails = 0
	case outcomeFailure:
		b.fails++
		if b.fails >= b.cfg.Failures {
			b.state = stOpen
			b.opened = b.clock.Now()
			b.markOpen()
			b.fails = 0
		}
	}
}

// markOpen tallies an open transition. Callers hold b.mu.
func (b *Breaker) markOpen() {
	b.opens++
	if b.onOpen != nil {
		b.onOpen.Inc()
	}
}

// breakerSet lazily creates one Breaker per host.
type breakerSet struct {
	mu     sync.Mutex
	cfg    BreakerConfig
	clock  Clock
	onOpen *metrics.Counter
	m      map[string]*Breaker
}

func newBreakerSet(cfg BreakerConfig, clock Clock, onOpen *metrics.Counter) *breakerSet {
	return &breakerSet{cfg: cfg, clock: clock, onOpen: onOpen, m: map[string]*Breaker{}}
}

func (s *breakerSet) forHost(host string) *Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[host]
	if !ok {
		b = NewBreaker(s.cfg, s.clock)
		b.onOpen = s.onOpen
		s.m[host] = b
	}
	return b
}

func (s *breakerSet) opens() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for _, b := range s.m {
		n += b.Opens()
	}
	return n
}
