package resilient

import (
	"context"
	"net/http"
	"net/url"
	"sync"
	"time"

	"planetapps/internal/metrics"
	"planetapps/internal/proxy"
)

// ProxyHealthConfig tunes per-node health scoring.
type ProxyHealthConfig struct {
	// FailThreshold is how many consecutive transport failures demote a
	// node (default 3).
	FailThreshold int
	// Cooldown is how long a demoted node sits out before it is probed
	// again (default 2s).
	Cooldown time.Duration
}

func (c ProxyHealthConfig) withDefaults() ProxyHealthConfig {
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * time.Second
	}
	return c
}

// ProxyHealth wraps a proxy.Pool with per-node health scoring: the
// selector round-robins across healthy nodes, demotes a node after
// FailThreshold consecutive transport failures, and re-probes demoted
// nodes after Cooldown — the fail-over the paper's crawlers needed when
// individual PlanetLab nodes died or were blacklisted mid-crawl.
type ProxyHealth struct {
	pool  *proxy.Pool
	cfg   ProxyHealthConfig
	clock Clock

	mu    sync.Mutex
	next  int
	nodes []nodeHealth

	demotions *metrics.Counter
	probes    *metrics.Counter
}

type nodeHealth struct {
	fails       int
	demotedTill time.Time
}

// NewProxyHealth builds a health-scored selector over pool. A nil clock
// uses the wall clock; reg (optional) receives demotion/probe counters.
func NewProxyHealth(pool *proxy.Pool, cfg ProxyHealthConfig, clock Clock, reg *metrics.Registry) *ProxyHealth {
	if clock == nil {
		clock = realClock{}
	}
	ph := &ProxyHealth{
		pool:  pool,
		cfg:   cfg.withDefaults(),
		clock: clock,
		nodes: make([]nodeHealth, pool.Size()),
	}
	if reg != nil {
		ph.demotions = reg.Counter("resilient_proxy_demotions_total")
		ph.probes = reg.Counter("resilient_proxy_probes_total")
	} else {
		ph.demotions = &metrics.Counter{}
		ph.probes = &metrics.Counter{}
	}
	return ph
}

// Demotions returns how many times nodes have been demoted.
func (ph *ProxyHealth) Demotions() int64 { return ph.demotions.Value() }

// pick selects the next node: round-robin over healthy nodes, admitting a
// demoted node again once its cooldown lapses (as a probe). When every
// node is demoted the one whose cooldown expires soonest is used — the
// crawl keeps trying rather than stalling.
func (ph *ProxyHealth) pick() int {
	ph.mu.Lock()
	defer ph.mu.Unlock()
	n := len(ph.nodes)
	now := ph.clock.Now()
	bestIdx, bestWait := -1, time.Duration(1<<62)
	for off := 0; off < n; off++ {
		i := (ph.next + off) % n
		nh := &ph.nodes[i]
		if nh.demotedTill.IsZero() || !now.Before(nh.demotedTill) {
			if !nh.demotedTill.IsZero() {
				nh.demotedTill = time.Time{} // probe re-admission
				ph.probes.Inc()
			}
			ph.next = (i + 1) % n
			return i
		}
		if wait := nh.demotedTill.Sub(now); wait < bestWait {
			bestWait, bestIdx = wait, i
		}
	}
	ph.next = (bestIdx + 1) % n
	return bestIdx
}

// Report records the outcome of a request routed through node i.
// Only transport-level failures (the proxy itself unreachable or
// resetting) implicate the node; an HTTP error relayed from the origin is
// the origin's problem.
func (ph *ProxyHealth) Report(i int, transportOK bool) {
	if i < 0 || i >= len(ph.nodes) {
		return
	}
	ph.mu.Lock()
	defer ph.mu.Unlock()
	nh := &ph.nodes[i]
	if transportOK {
		nh.fails = 0
		nh.demotedTill = time.Time{}
		return
	}
	nh.fails++
	if nh.fails >= ph.cfg.FailThreshold {
		nh.fails = 0
		nh.demotedTill = ph.clock.Now().Add(ph.cfg.Cooldown)
		ph.demotions.Inc()
	}
}

// Healthy returns how many nodes are currently in rotation.
func (ph *ProxyHealth) Healthy() int {
	ph.mu.Lock()
	defer ph.mu.Unlock()
	now := ph.clock.Now()
	n := 0
	for i := range ph.nodes {
		if ph.nodes[i].demotedTill.IsZero() || !now.Before(ph.nodes[i].demotedTill) {
			n++
		}
	}
	return n
}

// proxyChoiceKey carries the per-request slot the ProxyFunc records its
// selection into, so the client can attribute the outcome to the node.
type proxyChoiceKey struct{}

type proxyChoice struct {
	mu  sync.Mutex
	idx int
}

// withChoice returns a context carrying a fresh selection slot.
func withChoice(ctx context.Context) (context.Context, *proxyChoice) {
	pc := &proxyChoice{idx: -1}
	return context.WithValue(ctx, proxyChoiceKey{}, pc), pc
}

func (pc *proxyChoice) get() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.idx
}

// ProxyFunc adapts the health-scored selector to http.Transport.Proxy.
func (ph *ProxyHealth) ProxyFunc() func(*http.Request) (*url.URL, error) {
	return func(r *http.Request) (*url.URL, error) {
		i := ph.pick()
		if pc, ok := r.Context().Value(proxyChoiceKey{}).(*proxyChoice); ok {
			pc.mu.Lock()
			pc.idx = i
			pc.mu.Unlock()
		}
		return ph.pool.At(i), nil
	}
}
