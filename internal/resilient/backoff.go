package resilient

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// fullJitter returns the attempt-th retry delay under the "full jitter"
// policy: uniform [0, min(max, base<<attempt)). Decorrelating retries this
// way spreads a fleet of crawlers that all hit the same fault burst, so
// they do not re-arrive in lockstep and re-trigger the storm.
func fullJitter(attempt int, base, max time.Duration, rng *prng) time.Duration {
	if base <= 0 {
		base = 20 * time.Millisecond
	}
	ceil := base
	for i := 0; i < attempt && ceil < max; i++ {
		ceil *= 2
	}
	if ceil > max {
		ceil = max
	}
	if ceil <= 0 {
		return 0
	}
	return time.Duration(rng.float64() * float64(ceil))
}

// errEnvelope mirrors the storeserver /api/v1 error envelope; only the
// fields the client acts on are decoded.
type errEnvelope struct {
	Error struct {
		Code         string `json:"code"`
		RetryAfterMS int64  `json:"retry_after_ms"`
	} `json:"error"`
}

// retryAfterHint extracts the server's requested wait from a 429/503
// response: the v1 JSON envelope's retry_after_ms when the body carries
// one (millisecond precision), else the Retry-After header (whole seconds
// or an HTTP date). Returns 0 when the server gave no hint.
func retryAfterHint(status int, hdr http.Header, body []byte, now time.Time) time.Duration {
	if status != http.StatusTooManyRequests && status != http.StatusServiceUnavailable {
		return 0
	}
	if len(body) > 0 && body[0] == '{' {
		var env errEnvelope
		if json.Unmarshal(body, &env) == nil && env.Error.RetryAfterMS > 0 {
			return time.Duration(env.Error.RetryAfterMS) * time.Millisecond
		}
	}
	ra := hdr.Get("Retry-After")
	if ra == "" {
		return 0
	}
	if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(ra); err == nil {
		if d := t.Sub(now); d > 0 {
			return d
		}
	}
	return 0
}

// prng is a tiny lock-free xorshift stream for retry jitter; determinism
// of the *fault* process lives in faultinject, here the seed just makes
// reruns reproducible in aggregate.
type prng struct{ state atomic.Uint64 }

func newPRNG(seed uint64) *prng {
	p := &prng{}
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	p.state.Store(seed)
	return p
}

func (p *prng) next() uint64 {
	for {
		old := p.state.Load()
		x := old
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		if p.state.CompareAndSwap(old, x) {
			return x
		}
	}
}

func (p *prng) float64() float64 { return float64(p.next()>>11) / (1 << 53) }
