package resilient

import (
	"context"
	"sync"
)

// AIMDConfig tunes the adaptive concurrency limiter: additive increase on
// success, multiplicative decrease on pressure (429s and timeouts), the
// classic TCP congestion discipline applied to request concurrency. The
// crawler starts near its worker count and backs off when the store
// signals overload, instead of hammering a struggling endpoint with its
// full parallelism.
type AIMDConfig struct {
	// Min is the concurrency floor (default 1) — progress never stops.
	Min float64
	// Max is the concurrency ceiling (default 64).
	Max float64
	// Start is the initial limit (default Max/2, at least Min).
	Start float64
	// Decrease is the multiplicative factor applied on pressure
	// (default 0.7).
	Decrease float64
}

func (c AIMDConfig) withDefaults() AIMDConfig {
	if c.Min <= 0 {
		c.Min = 1
	}
	if c.Max <= 0 {
		c.Max = 64
	}
	if c.Max < c.Min {
		c.Max = c.Min
	}
	if c.Start <= 0 {
		c.Start = c.Max / 2
	}
	if c.Start < c.Min {
		c.Start = c.Min
	}
	if c.Decrease <= 0 || c.Decrease >= 1 {
		c.Decrease = 0.7
	}
	return c
}

// aimd gates request admission at a moving concurrency limit.
type aimd struct {
	mu        sync.Mutex
	cfg       AIMDConfig
	limit     float64
	inflight  int
	waiters   []chan struct{}
	decreases int64
}

func newAIMD(cfg AIMDConfig) *aimd {
	cfg = cfg.withDefaults()
	return &aimd{cfg: cfg, limit: cfg.Start}
}

// acquire blocks until an admission slot frees or ctx ends.
func (a *aimd) acquire(ctx context.Context) error {
	for {
		a.mu.Lock()
		if a.inflight < int(a.limit) {
			a.inflight++
			a.mu.Unlock()
			return nil
		}
		ch := make(chan struct{}, 1)
		a.waiters = append(a.waiters, ch)
		a.mu.Unlock()
		select {
		case <-ctx.Done():
			a.drop(ch)
			return ctx.Err()
		case <-ch:
		}
	}
}

// drop removes an abandoned waiter registration.
func (a *aimd) drop(ch chan struct{}) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for i, w := range a.waiters {
		if w == ch {
			a.waiters = append(a.waiters[:i], a.waiters[i+1:]...)
			return
		}
	}
}

// release returns a slot, adjusting the limit: success grows it by
// 1/limit (one unit per round-trip of the whole window, the additive
// increase), pressure shrinks it multiplicatively.
func (a *aimd) release(success, pressure bool) {
	a.mu.Lock()
	a.inflight--
	if pressure {
		a.limit *= a.cfg.Decrease
		if a.limit < a.cfg.Min {
			a.limit = a.cfg.Min
		}
		a.decreases++
	} else if success {
		a.limit += 1 / a.limit
		if a.limit > a.cfg.Max {
			a.limit = a.cfg.Max
		}
	}
	free := int(a.limit) - a.inflight
	for free > 0 && len(a.waiters) > 0 {
		ch := a.waiters[0]
		a.waiters = a.waiters[1:]
		ch <- struct{}{}
		free--
	}
	a.mu.Unlock()
}

// Limit returns the current concurrency limit (telemetry, tests).
func (a *aimd) Limit() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.limit
}

func (a *aimd) Decreases() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.decreases
}
