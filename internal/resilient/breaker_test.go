package resilient

import (
	"context"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock; Sleep advances it instantly so
// state-machine tests run in zero wall time.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2013, 4, 1, 0, 0, 0, 0, time.UTC)}
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.mu.Unlock()
}

func (f *fakeClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	f.Advance(d)
	return nil
}

func mustTry(t *testing.T, b *Breaker) *Token {
	t.Helper()
	tk, _, ok := b.Try()
	if !ok {
		t.Fatalf("Try rejected; want admitted")
	}
	return tk
}

func TestBreakerOpensAfterConsecutiveFailures(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{Failures: 3, Cooldown: time.Second}, clk)

	// Interleaved successes reset the consecutive counter: no trip.
	for i := 0; i < 10; i++ {
		mustTry(t, b).Failure()
		mustTry(t, b).Failure()
		mustTry(t, b).Success()
	}
	if _, _, ok := b.Try(); !ok {
		t.Fatalf("circuit opened despite interleaved successes")
	} else {
		tk, _, _ := b.Try()
		tk.Cancel()
	}

	// Three consecutive failures trip it.
	mustTry(t, b).Failure()
	mustTry(t, b).Failure()
	mustTry(t, b).Failure()
	if _, retryIn, ok := b.Try(); ok {
		t.Fatalf("circuit still admitting after %d consecutive failures", 3)
	} else if retryIn <= 0 || retryIn > time.Second {
		t.Fatalf("retryIn = %v, want (0, 1s]", retryIn)
	}
	if got := b.Opens(); got != 1 {
		t.Fatalf("Opens() = %d, want 1", got)
	}
}

func TestBreakerHalfOpenProbeSuccessCloses(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{Failures: 2, Cooldown: time.Second}, clk)
	mustTry(t, b).Failure()
	mustTry(t, b).Failure()

	// Cooldown not yet elapsed: still rejecting.
	clk.Advance(500 * time.Millisecond)
	if _, _, ok := b.Try(); ok {
		t.Fatalf("admitted during cooldown")
	}

	// Cooldown elapsed: exactly one probe flies; concurrent tries rejected.
	clk.Advance(600 * time.Millisecond)
	probe := mustTry(t, b)
	if _, retryIn, ok := b.Try(); ok {
		t.Fatalf("second probe admitted while first in flight")
	} else if retryIn <= 0 {
		t.Fatalf("half-open rejection retryIn = %v, want > 0", retryIn)
	}

	probe.Success()
	// Closed again: requests flow and failure accounting restarts fresh.
	mustTry(t, b).Failure()
	if _, _, ok := b.Try(); !ok {
		t.Fatalf("circuit not closed after probe success")
	} else {
		tk, _, _ := b.Try()
		tk.Cancel()
	}
	if got := b.Opens(); got != 1 {
		t.Fatalf("Opens() = %d, want 1", got)
	}
}

func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{Failures: 2, Cooldown: time.Second}, clk)
	mustTry(t, b).Failure()
	mustTry(t, b).Failure()

	clk.Advance(time.Second)
	probe := mustTry(t, b)
	probe.Failure()
	if _, _, ok := b.Try(); ok {
		t.Fatalf("circuit admitting right after failed probe")
	}
	if got := b.Opens(); got != 2 {
		t.Fatalf("Opens() = %d, want 2 (initial trip + probe failure)", got)
	}

	// The re-opened circuit recovers the same way.
	clk.Advance(time.Second)
	mustTry(t, b).Success()
	if _, _, ok := b.Try(); !ok {
		t.Fatalf("circuit not closed after second probe success")
	} else {
		tk, _, _ := b.Try()
		tk.Cancel()
	}
}

func TestBreakerProbeCancelReturnsSlot(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{Failures: 1, Cooldown: time.Second}, clk)
	mustTry(t, b).Failure()

	clk.Advance(time.Second)
	probe := mustTry(t, b)
	probe.Cancel()
	// The canceled probe freed its slot: another probe is admitted without
	// waiting out a new cooldown, and the circuit did not re-open.
	next := mustTry(t, b)
	next.Success()
	if _, _, ok := b.Try(); !ok {
		t.Fatalf("circuit not closed after probe success following cancel")
	} else {
		tk, _, _ := b.Try()
		tk.Cancel()
	}
	if got := b.Opens(); got != 1 {
		t.Fatalf("Opens() = %d, want 1", got)
	}
}

func TestBreakerStragglerDoesNotCorruptState(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{Failures: 2, Cooldown: time.Second}, clk)

	straggler := mustTry(t, b) // admitted while closed
	mustTry(t, b).Failure()
	mustTry(t, b).Failure() // circuit opens

	// The straggler resolves after the trip: its failure must not count
	// against the (future) half-open or re-closed state.
	straggler.Failure()

	clk.Advance(time.Second)
	probe := mustTry(t, b)
	probe.Success()
	if _, _, ok := b.Try(); !ok {
		t.Fatalf("straggler failure corrupted post-recovery state")
	} else {
		tk, _, _ := b.Try()
		tk.Cancel()
	}
	if got := b.Opens(); got != 1 {
		t.Fatalf("Opens() = %d, want 1", got)
	}
}

func TestBreakerTokenResolveIsIdempotent(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{Failures: 2, Cooldown: time.Second}, clk)
	tk := mustTry(t, b)
	tk.Failure()
	tk.Failure() // double resolve: ignored
	tk.Failure()
	if _, _, ok := b.Try(); !ok {
		t.Fatalf("double-resolved token tripped the circuit (fails counted twice)")
	}
	var nilTok *Token
	nilTok.Success() // nil token: no-op, used when the breaker is disabled
}
