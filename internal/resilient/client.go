// Package resilient is the client-side answer to internal/faultinject:
// an HTTP client hardened against the hostility the paper's crawlers met
// in the wild — GETs for the crawl, idempotency-keyed POSTs for the
// session engine's writes. One Client bundles the defenses a months-long
// crawl needs to converge through flaky endpoints, rate limits, and dying
// proxies:
//
//   - full-jitter exponential backoff that honors the server's
//     Retry-After, in both its header form and the /api/v1 error
//     envelope's millisecond-precision retry_after_ms;
//   - a per-host circuit breaker with half-open probing, so a dead host
//     is probed politely instead of hammered;
//   - hedged requests on idempotent GETs: when the primary exceeds the
//     hedge delay a second copy is launched and the first completion
//     wins, converting tail-latency spikes into near-median responses;
//   - AIMD adaptive concurrency: 429s and timeouts multiplicatively
//     shrink the admission window, successes grow it back additively;
//   - response-body validation with re-fetch: the caller's decode/
//     checksum hook runs before a response is accepted, so corrupted or
//     truncated payloads are retried instead of ingested;
//   - per-proxy health scoring (ProxyHealth) that rotates requests
//     around dead fleet nodes and re-probes them after a cooldown.
//
// Every recovery action is counted, optionally into a metrics.Registry
// for /metrics exposition, so a chaos run can assert not just that the
// crawl converged but how it fought through.
package resilient

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	neturl "net/url"
	"strconv"
	"strings"
	"time"

	"planetapps/internal/gzipx"
	"planetapps/internal/metrics"
)

// Config controls a Client. The zero value of every knob has a sane
// default; Breaker, AIMD, HedgeAfter, and ProxyHealth are opt-in (nil/0
// disables), which is what the "naive client" baseline in the chaos
// benchmark uses.
type Config struct {
	// Transport performs the physical exchanges (default: a fresh
	// http.Transport).
	Transport http.RoundTripper
	// Clock abstracts time (default wall clock; tests inject fakes).
	Clock Clock
	// Seed drives backoff jitter.
	Seed uint64

	// MaxRetries is the per-Get retry budget beyond the first attempt
	// (default 4).
	MaxRetries int
	// BaseBackoff seeds the full-jitter exponential schedule
	// (default 20ms).
	BaseBackoff time.Duration
	// MaxBackoff caps a single backoff sleep (default 2s).
	MaxBackoff time.Duration
	// MaxRetryAfter caps how long a server-supplied Retry-After is
	// honored (default 5s) — a hostile or buggy server must not be able
	// to park the crawler for minutes.
	MaxRetryAfter time.Duration
	// RetryAfterBudget bounds the *cumulative* time one Get spends
	// honoring server-supplied Retry-After hints (default 20s). Hinted
	// retries do not consume MaxRetries: a server saying "come back in
	// 5ms" is directing traffic, not failing, and a deep arrival-gated
	// 429/503 storm can need far more round-trips than genuine failures
	// warrant — so the two budgets are separate currencies (count for
	// failures, wall time for obedience).
	RetryAfterBudget time.Duration
	// AttemptTimeout bounds each physical attempt (default 10s).
	AttemptTimeout time.Duration

	// HedgeAfter launches a second copy of an attempt that has been in
	// flight this long (0 = hedging off). First completion wins; the
	// loser is canceled.
	HedgeAfter time.Duration
	// MaxHedges bounds extra copies per attempt (default 1).
	MaxHedges int

	// Breaker enables the per-host circuit breaker.
	Breaker *BreakerConfig
	// AIMD enables adaptive concurrency admission.
	AIMD *AIMDConfig
	// ProxyHealth enables per-proxy health attribution; install its
	// ProxyFunc on the Transport.
	ProxyHealth *ProxyHealth

	// AcceptGzip makes every attempt ask for gzip explicitly
	// (Accept-Encoding: gzip, which also switches off the Go transport's
	// invisible decompression) and inflates compressed responses inside
	// the retry loop: a damaged gzip stream (bad CRC, truncated deflate)
	// is counted as an invalid body and re-fetched, exactly like damaged
	// JSON. Callers always see identity bytes; the wire carried less.
	AcceptGzip bool
	// PreAttempt runs before every physical attempt (hedges included) —
	// the crawler's politeness rate limiter plugs in here so retries and
	// hedges spend the same token budget as first attempts.
	PreAttempt func(context.Context) error
	// UserAgent is set on every request when non-empty.
	UserAgent string
	// Metrics mirrors the recovery counters into a registry (optional).
	Metrics *metrics.Registry
}

// Result is one validated HTTP response.
type Result struct {
	Status int
	Header http.Header
	Body   []byte
}

// Validator inspects a transport-successful response (2xx or 304) before
// the Client accepts it. Returning an error marks the payload damaged and
// triggers a re-fetch — this is where decode/checksum validation lives.
type Validator func(*Result) error

// PermanentError is a definitive non-retryable HTTP answer (4xx other
// than 429).
type PermanentError struct {
	Status int
	URL    string
}

func (e *PermanentError) Error() string {
	return fmt.Sprintf("resilient: %s returned %d", e.URL, e.Status)
}

// Client is a hardened GET client. Create with New; safe for concurrent
// use.
type Client struct {
	cfg      Config
	clock    Clock
	rng      *prng
	breakers *breakerSet
	adm      *aimd

	attempts        *metrics.Counter
	retries         *metrics.Counter
	hedges          *metrics.Counter
	hedgeWins       *metrics.Counter
	invalidBodies   *metrics.Counter
	gzipResponses   *metrics.Counter
	gzipWireBytes   *metrics.Counter
	gzipPlainBytes  *metrics.Counter
	retryAfterWaits *metrics.Counter
	breakerWaits    *metrics.Counter
	breakerOpens    *metrics.Counter
	notModified     *metrics.Counter
	latency         *metrics.Histogram
}

// New validates cfg and builds a Client.
func New(cfg Config) *Client {
	if cfg.Transport == nil {
		cfg.Transport = &http.Transport{MaxIdleConnsPerHost: 16}
	}
	if cfg.Clock == nil {
		cfg.Clock = realClock{}
	}
	if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	} else if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 4
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 20 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 2 * time.Second
	}
	if cfg.MaxRetryAfter <= 0 {
		cfg.MaxRetryAfter = 5 * time.Second
	}
	if cfg.RetryAfterBudget <= 0 {
		cfg.RetryAfterBudget = 20 * time.Second
	}
	if cfg.AttemptTimeout <= 0 {
		cfg.AttemptTimeout = 10 * time.Second
	}
	if cfg.HedgeAfter > 0 && cfg.MaxHedges <= 0 {
		cfg.MaxHedges = 1
	}
	c := &Client{cfg: cfg, clock: cfg.Clock, rng: newPRNG(cfg.Seed)}
	counter := func(name string) *metrics.Counter {
		if cfg.Metrics != nil {
			return cfg.Metrics.Counter(name)
		}
		return &metrics.Counter{}
	}
	c.attempts = counter("resilient_attempts_total")
	c.retries = counter("resilient_retries_total")
	c.hedges = counter("resilient_hedges_total")
	c.hedgeWins = counter("resilient_hedge_wins_total")
	c.invalidBodies = counter("resilient_invalid_body_total")
	c.gzipResponses = counter("resilient_gzip_responses_total")
	c.gzipWireBytes = counter("resilient_gzip_wire_bytes_total")
	c.gzipPlainBytes = counter("resilient_gzip_inflated_bytes_total")
	c.retryAfterWaits = counter("resilient_retry_after_waits_total")
	c.breakerWaits = counter("resilient_breaker_waits_total")
	c.breakerOpens = counter("resilient_breaker_opens_total")
	c.notModified = counter("resilient_not_modified_total")
	if cfg.Metrics != nil {
		c.latency = cfg.Metrics.Histogram("resilient_request_seconds")
	} else {
		c.latency = metrics.NewHistogram()
	}
	if cfg.Breaker != nil {
		c.breakers = newBreakerSet(*cfg.Breaker, cfg.Clock, c.breakerOpens)
	}
	if cfg.AIMD != nil {
		c.adm = newAIMD(*cfg.AIMD)
	}
	return c
}

// Stats is a point-in-time summary of the client's recovery activity.
type Stats struct {
	Attempts, Retries int64
	Hedges, HedgeWins int64
	InvalidBodies     int64
	GzipResponses     int64
	GzipWireBytes     int64
	GzipInflatedBytes int64
	RetryAfterWaits   int64
	BreakerWaits      int64
	BreakerOpens      int64
	AIMDDecreases     int64
	AIMDLimit         float64
	ProxyDemotions    int64
	LatencyP50MS      float64
	LatencyP99MS      float64
}

// Stats snapshots the recovery counters.
func (c *Client) Stats() Stats {
	s := Stats{
		Attempts:          c.attempts.Value(),
		Retries:           c.retries.Value(),
		Hedges:            c.hedges.Value(),
		HedgeWins:         c.hedgeWins.Value(),
		InvalidBodies:     c.invalidBodies.Value(),
		GzipResponses:     c.gzipResponses.Value(),
		GzipWireBytes:     c.gzipWireBytes.Value(),
		GzipInflatedBytes: c.gzipPlainBytes.Value(),
		RetryAfterWaits:   c.retryAfterWaits.Value(),
		BreakerWaits:      c.breakerWaits.Value(),
		BreakerOpens:      c.breakerOpens.Value(),
		LatencyP50MS:      float64(c.latency.Quantile(0.50)) / 1e6,
		LatencyP99MS:      float64(c.latency.Quantile(0.99)) / 1e6,
	}
	if c.adm != nil {
		s.AIMDDecreases = c.adm.Decreases()
		s.AIMDLimit = c.adm.Limit()
	}
	if c.cfg.ProxyHealth != nil {
		s.ProxyDemotions = c.cfg.ProxyHealth.Demotions()
	}
	return s
}

// attemptClass is the retry-loop verdict for one attempt.
type attemptClass uint8

const (
	classOK attemptClass = iota
	classRetry
	classPressure // retryable AND an overload signal (429/timeout)
	classPermanent
	classAbort // context ended
)

// Get fetches url with the full resilience stack. hdr (optional) is
// merged into the request; validate (optional) runs on 2xx/304 responses
// before acceptance. On permanent errors and exhausted retries, the last
// response (when one exists) is returned alongside the error so callers
// can inspect the final status.
func (c *Client) Get(ctx context.Context, url string, hdr http.Header, validate Validator) (*Result, error) {
	return c.do(ctx, http.MethodGet, url, hdr, nil, validate)
}

// Post sends body to url through the same resilience stack as Get. The
// body is held as bytes so retries and hedges replay it verbatim. Callers
// MUST make the request idempotent on the server side — the store's write
// endpoints take an Idempotency-Key header in hdr — because the stack
// will happily re-send it after an ambiguous transport failure.
func (c *Client) Post(ctx context.Context, url string, hdr http.Header, body []byte, validate Validator) (*Result, error) {
	return c.do(ctx, http.MethodPost, url, hdr, body, validate)
}

// do is the shared retry loop behind Get and Post.
func (c *Client) do(ctx context.Context, method, url string, hdr http.Header, body []byte, validate Validator) (*Result, error) {
	start := c.clock.Now()
	defer func() { c.latency.Observe(int64(c.clock.Now().Sub(start))) }()

	host := hostKey(url)
	var lastErr error
	var lastRes *Result
	var hint, hintWaited time.Duration
	failures := 0 // non-hinted retryable outcomes, spent against MaxRetries
	for total := 0; ; total++ {
		if total > 0 {
			c.retries.Inc()
			var d time.Duration
			if hint > 0 {
				// The server said exactly when to come back; believe it
				// (capped) instead of guessing with exponential backoff —
				// a deep 429/503 storm then drains at the server's pace,
				// not at MaxBackoff per attempt.
				d = hint
				if d > c.cfg.MaxRetryAfter {
					d = c.cfg.MaxRetryAfter
				}
				hintWaited += d
				c.retryAfterWaits.Inc()
			} else {
				d = fullJitter(failures-1, c.cfg.BaseBackoff, c.cfg.MaxBackoff, c.rng)
			}
			if err := c.clock.Sleep(ctx, d); err != nil {
				return nil, err
			}
		}
		res, class, err := c.attempt(ctx, host, method, url, hdr, body, validate)
		switch class {
		case classOK:
			return res, nil
		case classPermanent:
			return res, err
		case classAbort:
			return nil, err
		default:
			lastErr, hint = err, 0
			if res != nil {
				lastRes = res
				hint = retryAfterHint(res.Status, res.Header, res.Body, c.clock.Now())
			}
			// Hinted rejections spend wall time, everything else spends
			// the failure count — separate budgets, because a server
			// directing traffic ("come back at T") and a server failing
			// are different conditions.
			if hint > 0 {
				if hintWaited >= c.cfg.RetryAfterBudget {
					return lastRes, fmt.Errorf("resilient: giving up on %s after %v of server-directed waiting (%d attempts): %w",
						url, hintWaited, total+1, lastErr)
				}
			} else {
				failures++
				if failures > c.cfg.MaxRetries {
					return lastRes, fmt.Errorf("resilient: giving up on %s after %d attempts: %w", url, total+1, lastErr)
				}
			}
		}
	}
}

// hostKey derives the circuit-breaker / health key for a URL: host AND
// port. A fleet of shards co-located on one address ("127.0.0.1:9001",
// "127.0.0.1:9002", ...) must hold independent breakers — one sick shard
// tripping the whole fleet's breaker would turn a single-node failure
// into a full-fleet outage from the client's point of view. Elided
// default ports are normalized (http → :80, https → :443) so
// "http://host" and "http://host:80" share one breaker, as they share one
// listener. Unparseable URLs key on the raw string.
func hostKey(url string) string {
	u, err := neturl.Parse(url)
	if err != nil || u.Host == "" {
		return url
	}
	host := u.Host
	if strings.LastIndexByte(host, ':') <= strings.LastIndexByte(host, ']') {
		// No explicit port (the ']' guard keeps bracketed IPv6 literals,
		// whose colons are address bytes, out of the port check).
		switch u.Scheme {
		case "https":
			host += ":443"
		default:
			host += ":80"
		}
	}
	return host
}

// attempt runs one admission-gated, breaker-guarded, possibly hedged
// exchange and classifies the outcome.
func (c *Client) attempt(ctx context.Context, host, method, url string, hdr http.Header, body []byte, validate Validator) (*Result, attemptClass, error) {
	if c.adm != nil {
		if err := c.adm.acquire(ctx); err != nil {
			return nil, classAbort, err
		}
	}
	success, pressure := false, false
	defer func() {
		if c.adm != nil {
			c.adm.release(success, pressure)
		}
	}()

	var tk *Token
	if c.breakers != nil {
		b := c.breakers.forHost(host)
		for {
			t, retryIn, ok := b.Try()
			if ok {
				tk = t
				break
			}
			// Open circuit: wait out the cooldown rather than failing the
			// crawl — convergence beats fast failure here.
			c.breakerWaits.Inc()
			if err := c.clock.Sleep(ctx, retryIn); err != nil {
				return nil, classAbort, err
			}
		}
	}

	ex := c.exchange(ctx, method, url, hdr, body)
	if ex.err != nil {
		if ctx.Err() != nil {
			tk.Cancel()
			return nil, classAbort, ctx.Err()
		}
		tk.Failure()
		if ex.timeout {
			pressure = true
			return nil, classPressure, ex.err
		}
		return nil, classRetry, ex.err
	}
	res := ex.res
	switch {
	case res.Status >= 200 && res.Status < 300, res.Status == http.StatusNotModified:
		if res.Status == http.StatusNotModified {
			c.notModified.Inc()
		}
		if c.cfg.AcceptGzip && res.Status != http.StatusNotModified &&
			res.Header.Get("Content-Encoding") == "gzip" {
			plain, derr := gzipx.Decompress(res.Body)
			if derr != nil {
				// Same treatment as damaged JSON: a corrupted compressed
				// stream is an invalid body and the attempt retries.
				c.invalidBodies.Inc()
				tk.Failure()
				return res, classRetry, fmt.Errorf("resilient: %s compressed body damaged: %w", url, derr)
			}
			c.gzipResponses.Inc()
			c.gzipWireBytes.Add(int64(len(res.Body)))
			c.gzipPlainBytes.Add(int64(len(plain)))
			// Downstream consumers (decoders, the crawl database) see the
			// document as if it had traveled identity-encoded.
			res.Body = plain
			res.Header.Del("Content-Encoding")
			res.Header.Set("Content-Length", strconv.Itoa(len(plain)))
		}
		if validate != nil {
			if verr := validate(res); verr != nil {
				c.invalidBodies.Inc()
				tk.Failure()
				return res, classRetry, fmt.Errorf("resilient: %s body invalid: %w", url, verr)
			}
		}
		tk.Success()
		success = true
		return res, classOK, nil
	case res.Status == http.StatusTooManyRequests:
		// Being throttled is the origin working as designed, not host
		// sickness: neutral for the breaker, pressure for AIMD.
		tk.Cancel()
		pressure = true
		return res, classPressure, fmt.Errorf("resilient: %s returned 429", url)
	case res.Status >= 500:
		tk.Failure()
		return res, classRetry, fmt.Errorf("resilient: %s returned %d", url, res.Status)
	default:
		tk.Success()
		success = true
		return res, classPermanent, &PermanentError{Status: res.Status, URL: url}
	}
}

// exchangeResult is one physical attempt's outcome.
type exchangeResult struct {
	res     *Result
	err     error
	timeout bool
	hedge   bool
}

// exchange performs the physical attempt, hedging when configured: if the
// primary has not completed within HedgeAfter, up to MaxHedges copies are
// launched and the first success wins (losers are canceled). Transport
// errors hold out for a slower sibling; only when every copy has failed
// does the attempt fail.
func (c *Client) exchange(ctx context.Context, method, url string, hdr http.Header, body []byte) exchangeResult {
	if c.cfg.HedgeAfter <= 0 {
		return c.roundTrip(ctx, method, url, hdr, body, false)
	}
	exCtx, cancelAll := context.WithCancel(ctx)
	defer cancelAll()
	results := make(chan exchangeResult, 1+c.cfg.MaxHedges)
	launch := func(hedge bool) {
		go func() {
			r := c.roundTrip(exCtx, method, url, hdr, body, hedge)
			results <- r
		}()
	}
	launch(false)
	outstanding, hedgesLeft := 1, c.cfg.MaxHedges
	var firstErr *exchangeResult
	hedgeTimer := time.NewTimer(c.cfg.HedgeAfter)
	defer hedgeTimer.Stop()
	for {
		select {
		case r := <-results:
			outstanding--
			if r.err == nil {
				if r.hedge {
					c.hedgeWins.Inc()
				}
				return r
			}
			if firstErr == nil {
				firstErr = &r
			}
			if outstanding == 0 && hedgesLeft == 0 {
				return *firstErr
			}
			if outstanding == 0 {
				// Primary died before the hedge delay elapsed: hedge
				// immediately rather than waiting out the timer.
				c.hedges.Inc()
				hedgesLeft--
				launch(true)
				outstanding++
			}
		case <-hedgeTimer.C:
			if hedgesLeft > 0 {
				c.hedges.Inc()
				hedgesLeft--
				launch(true)
				outstanding++
				// Stagger further copies one interval apart.
				hedgeTimer.Reset(c.cfg.HedgeAfter)
			}
		case <-ctx.Done():
			return exchangeResult{err: ctx.Err()}
		}
	}
}

// roundTrip performs one wire exchange, reading the body fully so the
// response is self-contained (hedging and validation both need replayable
// bytes).
func (c *Client) roundTrip(ctx context.Context, method, url string, hdr http.Header, body []byte, hedge bool) exchangeResult {
	if c.cfg.PreAttempt != nil {
		if err := c.cfg.PreAttempt(ctx); err != nil {
			return exchangeResult{err: err, hedge: hedge}
		}
	}
	actx, cancel := context.WithTimeout(ctx, c.cfg.AttemptTimeout)
	defer cancel()
	var pc *proxyChoice
	if c.cfg.ProxyHealth != nil {
		actx, pc = withChoice(actx)
	}
	var rd io.Reader
	if body != nil {
		// A fresh reader per physical attempt: hedges and retries replay
		// the same bytes from the start.
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, url, rd)
	if err != nil {
		return exchangeResult{err: err, hedge: hedge}
	}
	for k, vv := range hdr {
		for _, v := range vv {
			req.Header.Add(k, v)
		}
	}
	if c.cfg.UserAgent != "" {
		req.Header.Set("User-Agent", c.cfg.UserAgent)
	}
	if c.cfg.AcceptGzip && req.Header.Get("Accept-Encoding") == "" {
		req.Header.Set("Accept-Encoding", "gzip")
	}
	c.attempts.Inc()
	resp, err := c.cfg.Transport.RoundTrip(req)
	if err != nil {
		// Attribute transport failures to the proxy node that carried the
		// request — unless this attempt was canceled (a lost hedge race
		// is not the node's fault).
		if pc != nil && ctx.Err() == nil {
			c.cfg.ProxyHealth.Report(pc.get(), false)
		}
		return exchangeResult{err: err, timeout: errors.Is(err, context.DeadlineExceeded) || actx.Err() != nil && ctx.Err() == nil, hedge: hedge}
	}
	if pc != nil {
		c.cfg.ProxyHealth.Report(pc.get(), true)
	}
	body, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr != nil && ctx.Err() == nil {
		// Mid-body failure: truncation, reset, or a loris running into
		// the attempt timeout.
		return exchangeResult{err: fmt.Errorf("resilient: reading %s: %w", url, rerr), timeout: actx.Err() != nil, hedge: hedge}
	}
	if ctx.Err() != nil && rerr != nil {
		return exchangeResult{err: ctx.Err(), hedge: hedge}
	}
	return exchangeResult{res: &Result{Status: resp.StatusCode, Header: resp.Header, Body: body}, hedge: hedge}
}

// Transport adapts the client to http.RoundTripper for consumers that
// speak plain net/http (the load generator). GETs — and POSTs carrying an
// Idempotency-Key, which the store's write endpoints dedup, making them
// retry-safe — run the full resilience stack; anything else passes
// straight to the base transport. When the stack ends with a definitive
// HTTP answer (permanent 4xx, or a final 429/5xx after exhausted retries)
// the answer is surfaced as a normal response, so the caller's status
// accounting keeps working.
func (c *Client) Transport() http.RoundTripper {
	return roundTripFunc(func(req *http.Request) (*http.Response, error) {
		var res *Result
		var err error
		switch {
		case req.Method == http.MethodGet:
			res, err = c.Get(req.Context(), req.URL.String(), req.Header, nil)
		case req.Method == http.MethodPost && req.Header.Get("Idempotency-Key") != "":
			var body []byte
			if req.Body != nil {
				body, err = io.ReadAll(req.Body)
				req.Body.Close() //nolint:errcheck
				if err != nil {
					return nil, err
				}
			}
			res, err = c.Post(req.Context(), req.URL.String(), req.Header, body, nil)
		default:
			return c.cfg.Transport.RoundTrip(req)
		}
		if res == nil {
			return nil, err
		}
		return &http.Response{
			StatusCode:    res.Status,
			Status:        fmt.Sprintf("%d %s", res.Status, http.StatusText(res.Status)),
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        res.Header,
			Body:          io.NopCloser(bytes.NewReader(res.Body)),
			ContentLength: int64(len(res.Body)),
			Request:       req,
		}, nil
	})
}

type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }
