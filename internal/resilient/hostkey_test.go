package resilient

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestHostKeyIncludesPort pins the breaker-key derivation: multiple local
// shards on one address must get distinct keys, elided default ports must
// normalize onto their explicit forms, and garbage must key on itself.
func TestHostKeyIncludesPort(t *testing.T) {
	cases := []struct{ url, want string }{
		{"http://127.0.0.1:9001/api/v1/stats", "127.0.0.1:9001"},
		{"http://127.0.0.1:9002/api/v1/stats", "127.0.0.1:9002"},
		{"http://example.com/x", "example.com:80"},
		{"http://example.com:80/x", "example.com:80"},
		{"https://example.com/x", "example.com:443"},
		{"https://example.com:8443/x", "example.com:8443"},
		{"http://[::1]:9001/x", "[::1]:9001"},
		{"http://[::1]/x", "[::1]:80"},
		{"not a url", "not a url"},
	}
	for _, c := range cases {
		if got := hostKey(c.url); got != c.want {
			t.Errorf("hostKey(%q) = %q, want %q", c.url, got, c.want)
		}
	}
	if hostKey("http://h/a") == hostKey("https://h/a") {
		t.Error("http and https on the same host share a breaker key")
	}
}

// TestBreakerIsolatesSickShard runs two "shards" on 127.0.0.1 (different
// ports): one healthy, one answering only 500s. The sick shard must trip
// its own breaker without ever slowing the healthy one — requests to the
// healthy port keep succeeding first-try while the sick port's circuit is
// open.
func TestBreakerIsolatesSickShard(t *testing.T) {
	healthy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok")) //nolint:errcheck
	}))
	defer healthy.Close()
	var sickHits atomic.Int64
	sick := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sickHits.Add(1)
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer sick.Close()

	c := New(Config{
		MaxRetries:  1,
		BaseBackoff: time.Microsecond,
		MaxBackoff:  time.Millisecond,
		Breaker:     &BreakerConfig{Failures: 2, Cooldown: time.Hour, Probes: 1},
	})
	ctx := context.Background()

	// Hammer the sick shard until its breaker opens (Get retries then
	// gives up; the breaker counts each failed attempt).
	for i := 0; i < 3; i++ {
		ctxT, cancel := context.WithTimeout(ctx, 2*time.Second)
		_, err := c.Get(ctxT, sick.URL+"/api/v1/stats", nil, nil)
		cancel()
		if err == nil {
			t.Fatal("sick shard unexpectedly succeeded")
		}
	}
	if b := c.breakers.forHost(hostKey(sick.URL + "/api/v1/stats")); b.Opens() == 0 {
		t.Fatal("sick shard breaker never opened")
	} else if _, _, ok := b.Try(); ok {
		t.Fatal("sick shard breaker admits requests while in cooldown")
	}

	// The healthy shard — same IP, different port — must be untouched:
	// closed breaker, instant first-try successes.
	if b := c.breakers.forHost(hostKey(healthy.URL + "/api/v1/stats")); b.Opens() != 0 {
		t.Fatal("healthy shard breaker opened alongside the sick one")
	}
	for i := 0; i < 5; i++ {
		ctxT, cancel := context.WithTimeout(ctx, 2*time.Second)
		res, err := c.Get(ctxT, healthy.URL+"/api/v1/stats", nil, nil)
		cancel()
		if err != nil {
			t.Fatalf("healthy shard request %d failed: %v", i, err)
		}
		if string(res.Body) != "ok" {
			t.Fatalf("healthy body = %q", res.Body)
		}
	}
}
