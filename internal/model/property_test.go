package model

import (
	"testing"
	"testing/quick"

	"planetapps/internal/rng"
)

// TestPropertyRunConservation: for any small random configuration, every
// simulated download lands on exactly one app and no app exceeds the user
// population under fetch-at-most-once kinds.
func TestPropertyRunConservation(t *testing.T) {
	r := rng.New(41)
	if err := quick.Check(func(seed uint16) bool {
		cfg := Config{
			Apps:             20 + r.Intn(200),
			Users:            20 + r.Intn(300),
			DownloadsPerUser: 1 + r.Float64()*6,
			ZipfGlobal:       r.Float64() * 2,
			ZipfCluster:      r.Float64() * 2,
			ClusterP:         r.Float64(),
			Clusters:         1 + r.Intn(10),
		}
		for _, k := range Kinds {
			sim, err := NewSimulator(k, cfg)
			if err != nil {
				return false
			}
			res := sim.Run(uint64(seed))
			var sum int64
			for _, d := range res.Downloads {
				if d < 0 {
					return false
				}
				if k != Zipf && d > int64(cfg.Users) {
					return false
				}
				sum += d
			}
			if sum != res.Total {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyPredictCurveSorted: analytic curves are always non-negative
// and sorted descending, for any kind and random parameters.
func TestPropertyPredictCurveSorted(t *testing.T) {
	r := rng.New(43)
	if err := quick.Check(func(uint16) bool {
		cfg := Config{
			Apps:             50 + r.Intn(500),
			Users:            100 + r.Intn(5000),
			DownloadsPerUser: r.Float64() * 10,
			ZipfGlobal:       r.Float64() * 2,
			ZipfCluster:      r.Float64() * 2,
			ClusterP:         r.Float64(),
			Clusters:         1 + r.Intn(40),
		}
		for _, k := range Kinds {
			c := PredictCurve(k, cfg)
			if len(c.Downloads) != cfg.Apps {
				return false
			}
			for i, v := range c.Downloads {
				if v < 0 {
					return false
				}
				if i > 0 && v > c.Downloads[i-1]+1e-9 {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyClusterMapsPartition: round-robin and contiguous maps always
// partition the app set exactly.
func TestPropertyClusterMapsPartition(t *testing.T) {
	r := rng.New(47)
	if err := quick.Check(func(uint16) bool {
		apps := 1 + r.Intn(500)
		clusters := 1 + r.Intn(50)
		for _, m := range []*ClusterMap{RoundRobin(apps, clusters), Contiguous(apps, clusters)} {
			if len(m.OfApp) != apps {
				return false
			}
			seen := make([]bool, apps)
			for c, members := range m.Members {
				for _, app := range members {
					if int(app) < 0 || int(app) >= apps || seen[app] {
						return false
					}
					if m.OfApp[app] != int32(c) {
						return false
					}
					seen[app] = true
				}
			}
			for _, s := range seen {
				if !s {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDistanceIdentity: the Eq. 6 distance of any positive curve to
// itself is zero, and it is non-negative against any other curve.
func TestPropertyDistanceIdentity(t *testing.T) {
	r := rng.New(53)
	if err := quick.Check(func(uint16) bool {
		n := 5 + r.Intn(100)
		cfg := Config{
			Apps: n, Users: 100, DownloadsPerUser: 3,
			ZipfGlobal: 1.0, ZipfCluster: 1.0, ClusterP: 0.5, Clusters: 5,
		}
		c := PredictCurve(ZipfAtMostOnce, cfg)
		if Distance(ZipfAtMostOnce, cfg, c) > 1e-9 {
			return false
		}
		other := PredictCurve(Zipf, cfg)
		_ = other
		return Distance(Zipf, cfg, c) >= 0
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
