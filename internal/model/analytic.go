package model

import (
	"math"

	"planetapps/internal/dist"
)

// PaperExpectedDownloads evaluates the paper's closed-form expectation
// (Eq. 5) for an app with overall rank i (1-based) and within-cluster rank
// j (1-based), under the APP-CLUSTERING model with C equal-size clusters:
//
//	D(i,j) = U * [ 1 - (1 - pG(i))^((1-p)d) * (1 - pc(j))^(p*d) ]
//
// The formula treats every cluster-based draw as if it could hit the app's
// own cluster, which overstates within-cluster exposure by a factor of C;
// the paper presents it as a simplified expectation ("for simplicity we
// assume that all C clusters have the same size"). PredictCurve below uses
// a refinement that models cluster visits explicitly and matches the Monte
// Carlo simulators much more closely; this function is kept as the literal
// paper formula for reference and tests.
func PaperExpectedDownloads(cfg Config, i, j int, hg, hc float64) float64 {
	pg := math.Pow(float64(i), -cfg.ZipfGlobal) / hg
	pc := math.Pow(float64(j), -cfg.ZipfCluster) / hc
	missGlobal := math.Pow(1-pg, (1-cfg.ClusterP)*cfg.DownloadsPerUser)
	missCluster := math.Pow(1-pc, cfg.ClusterP*cfg.DownloadsPerUser)
	return float64(cfg.Users) * (1 - missGlobal*missCluster)
}

// HarmonicsFor returns the harmonic normalizers (global, per-cluster) that
// PaperExpectedDownloads needs, assuming C equal clusters of size Apps/C
// (rounded up, matching RoundRobin).
func HarmonicsFor(cfg Config) (hg, hc float64) {
	hg = dist.Harmonic(cfg.Apps, cfg.ZipfGlobal)
	sc := clusterSize(cfg)
	hc = dist.Harmonic(sc, cfg.ZipfCluster)
	return hg, hc
}

func clusterSize(cfg Config) int {
	c := cfg.Clusters
	if cfg.ClusterMap != nil {
		c = cfg.ClusterMap.Clusters()
	}
	if c < 1 {
		c = 1
	}
	sc := (cfg.Apps + c - 1) / c
	if sc < 1 {
		sc = 1
	}
	return sc
}

// exposureT solves sum_i (1 - exp(-probs[i]*t)) = n for t >= 0 by bisection.
// The left side is the expected number of distinct items captured by
// weighted sampling without replacement when the process is Poissonized
// with exposure t; inverting it yields per-item inclusion probabilities
// 1 - exp(-p_i * t) that closely approximate drawing exactly n distinct
// items by rejection — which is what the simulators (and the paper's
// simulators) actually do. When n >= len(probs) the solution diverges;
// +Inf is returned and the caller treats every item as included.
func exposureT(probs []float64, n float64) float64 {
	if n <= 0 {
		return 0
	}
	if n >= float64(len(probs)) {
		return math.Inf(1)
	}
	captured := func(t float64) float64 {
		s := 0.0
		for _, p := range probs {
			s += 1 - math.Exp(-p*t)
		}
		return s
	}
	// Bracket the root by doubling.
	lo, hi := 0.0, 1.0
	for captured(hi) < n {
		hi *= 2
		if math.IsInf(hi, 1) {
			return hi
		}
	}
	for iter := 0; iter < 60; iter++ {
		mid := (lo + hi) / 2
		if captured(mid) < n {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// inclusion returns 1 - exp(-p*t), handling t = +Inf.
func inclusion(p, t float64) float64 {
	if math.IsInf(t, 1) {
		if p > 0 {
			return 1
		}
		return 0
	}
	return 1 - math.Exp(-p*t)
}

// zipfProbs returns the bounded Zipf pmf over ranks 1..n with exponent s.
func zipfProbs(n int, s float64) []float64 {
	h := dist.Harmonic(n, s)
	ps := make([]float64, n)
	for i := 1; i <= n; i++ {
		ps[i-1] = math.Pow(float64(i), -s) / h
	}
	return ps
}

// PredictCurve returns the analytic expected rank-downloads curve for the
// given model kind, sorted descending — the object the distance metric
// (Eq. 6) compares against observed data.
//
// The prediction refines the paper's Eq. 5 in two ways so that it tracks
// the Monte Carlo simulators:
//
//  1. Fetch-at-most-once is modeled with the exposure (Poissonization)
//     approximation of weighted sampling without replacement rather than
//     d independent with-replacement draws, capturing the probability
//     boost that rejection re-draws give less popular apps.
//  2. Cluster-based draws only reach an app when the user's sticky cluster
//     is the app's cluster, which happens with probability equal to the
//     cluster's share of global popularity mass (1/C for equal interleaved
//     clusters), instead of probability 1.
//
// Apps are assumed indexed by global appeal rank (app 0 = rank 1), the
// convention RoundRobin and the simulators share.
func PredictCurve(kind Kind, cfg Config) dist.RankCurve {
	vals := make([]float64, cfg.Apps)
	pg := zipfProbs(cfg.Apps, cfg.ZipfGlobal)
	u := float64(cfg.Users)
	d := cfg.DownloadsPerUser
	switch kind {
	case Zipf:
		for i := range vals {
			vals[i] = u * d * pg[i]
		}
	case ZipfAtMostOnce:
		t := exposureT(pg, d)
		for i := range vals {
			vals[i] = u * inclusion(pg[i], t)
		}
	case AppClustering:
		cm := cfg.ClusterMap
		if cm == nil {
			cm = RoundRobin(cfg.Apps, cfg.Clusters)
		}
		// Global component exposure covers the (1-p)*d global draws.
		tg := exposureT(pg, (1-cfg.ClusterP)*d)
		// Per-cluster visit mass: probability a user's sticky cluster is c,
		// estimated by the cluster's share of global popularity (first
		// downloads and cluster re-selection are both seeded by ZG).
		for _, members := range cm.Members {
			if len(members) == 0 {
				continue
			}
			mass := 0.0
			for _, app := range members {
				mass += pg[app]
			}
			pc := zipfProbs(len(members), cfg.ZipfCluster)
			// A user committed to this cluster spends p*d draws in it.
			tc := exposureT(pc, cfg.ClusterP*d)
			for j, app := range members {
				inG := inclusion(pg[app], tg)
				inC := inclusion(pc[j], tc)
				// P(download) = 1 - P(miss globally) * P(miss via cluster),
				// where the cluster miss is 1 unless the user's cluster is
				// this one (probability mass).
				vals[app] = u * (1 - (1-inG)*(1-mass*inC))
			}
		}
	}
	return dist.NewRankCurve(vals)
}

// Distance computes the paper's Eq. 6 metric between an observed curve and
// this model's predicted curve.
func Distance(kind Kind, cfg Config, observed dist.RankCurve) float64 {
	return dist.MeanRelativeError(observed, PredictCurve(kind, cfg))
}
