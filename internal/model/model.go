// Package model implements the paper's appstore workload models:
//
//   - ZIPF: every download is an independent draw from a store-wide
//     Zipf-like popularity distribution (the classic web-workload model).
//   - ZIPF-at-most-once: draws come from the same distribution but a user
//     never downloads the same app twice (the fetch-at-most-once property
//     of peer-to-peer workloads).
//   - APP-CLUSTERING: the paper's contribution (§5.1). Apps are grouped
//     into clusters; after the first download, each subsequent download is
//     drawn from the cluster of a previous download with probability p
//     (within-cluster Zipf Zc) and from the global Zipf ZG with
//     probability 1-p, always respecting fetch-at-most-once.
//
// The package provides Monte Carlo simulators for all three models, the
// analytic expected-downloads formula (Eq. 5), the mean-relative-error
// distance against observed data (Eq. 6), and a parameter-sweep fitter.
package model

import (
	"fmt"

	"planetapps/internal/dist"
	"planetapps/internal/rng"
)

// Kind selects one of the three workload models.
type Kind int

const (
	// Zipf is the pure store-wide Zipf model.
	Zipf Kind = iota
	// ZipfAtMostOnce adds the fetch-at-most-once constraint to Zipf.
	ZipfAtMostOnce
	// AppClustering is the paper's clustering model.
	AppClustering
)

// Kinds lists all model kinds in presentation order.
var Kinds = []Kind{Zipf, ZipfAtMostOnce, AppClustering}

func (k Kind) String() string {
	switch k {
	case Zipf:
		return "ZIPF"
	case ZipfAtMostOnce:
		return "ZIPF-at-most-once"
	case AppClustering:
		return "APP-CLUSTERING"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Config holds the parameters of Table 2 in the paper.
type Config struct {
	// Apps is the number of apps A.
	Apps int
	// Users is the number of users U.
	Users int
	// DownloadsPerUser is d, the mean downloads per user. Each simulated
	// user performs floor(d) downloads plus one more with probability
	// frac(d), so the expected total is U*d.
	DownloadsPerUser float64
	// ZipfGlobal is zr, the exponent of the overall ranking distribution ZG.
	ZipfGlobal float64
	// ZipfCluster is zc, the exponent of the within-cluster distribution Zc.
	// Ignored by the non-clustering models.
	ZipfCluster float64
	// ClusterP is p, the probability that a download is clustering-based.
	// Ignored by the non-clustering models.
	ClusterP float64
	// Clusters is C, the number of clusters. Ignored by the non-clustering
	// models. When ClusterMap is nil, apps are assigned round-robin so all
	// clusters have (near-)equal size, matching the paper's analysis
	// assumption.
	Clusters int
	// ClusterMap optionally supplies an explicit app-to-cluster assignment
	// (e.g. from a generated catalog). When set, Clusters is ignored.
	ClusterMap *ClusterMap
}

// Validate reports the first invalid parameter.
func (c Config) Validate(kind Kind) error {
	if c.Apps < 1 {
		return fmt.Errorf("model: Apps = %d, need >= 1", c.Apps)
	}
	if c.Users < 1 {
		return fmt.Errorf("model: Users = %d, need >= 1", c.Users)
	}
	if c.DownloadsPerUser < 0 {
		return fmt.Errorf("model: DownloadsPerUser = %v, need >= 0", c.DownloadsPerUser)
	}
	if c.ZipfGlobal < 0 {
		return fmt.Errorf("model: ZipfGlobal = %v, need >= 0", c.ZipfGlobal)
	}
	if kind == AppClustering {
		if c.ZipfCluster < 0 {
			return fmt.Errorf("model: ZipfCluster = %v, need >= 0", c.ZipfCluster)
		}
		if c.ClusterP < 0 || c.ClusterP > 1 {
			return fmt.Errorf("model: ClusterP = %v, need in [0,1]", c.ClusterP)
		}
		if c.ClusterMap == nil && c.Clusters < 1 {
			return fmt.Errorf("model: Clusters = %d, need >= 1", c.Clusters)
		}
		if c.ClusterMap != nil && len(c.ClusterMap.OfApp) != c.Apps {
			return fmt.Errorf("model: ClusterMap covers %d apps, config has %d", len(c.ClusterMap.OfApp), c.Apps)
		}
	}
	return nil
}

// ClusterMap assigns every app to exactly one cluster and records the
// within-cluster rank order.
type ClusterMap struct {
	// OfApp maps app index -> cluster index.
	OfApp []int32
	// Members[c] lists the app indices of cluster c in within-cluster rank
	// order (Members[c][0] is the cluster's most popular app).
	Members [][]int32
}

// RoundRobin deals apps to clusters by global rank: app i (rank i+1) joins
// cluster i mod clusters, and its within-cluster rank is i/clusters + 1.
// This makes all clusters (near-)equal in size and interleaves the global
// ranking across clusters, which is the assignment the paper's analytic
// model (Eq. 5) presumes.
func RoundRobin(apps, clusters int) *ClusterMap {
	if clusters < 1 {
		clusters = 1
	}
	if clusters > apps {
		clusters = apps
	}
	m := &ClusterMap{
		OfApp:   make([]int32, apps),
		Members: make([][]int32, clusters),
	}
	per := (apps + clusters - 1) / clusters
	for c := range m.Members {
		m.Members[c] = make([]int32, 0, per)
	}
	for i := 0; i < apps; i++ {
		c := i % clusters
		m.OfApp[i] = int32(c)
		m.Members[c] = append(m.Members[c], int32(i))
	}
	return m
}

// Contiguous assigns apps to clusters in contiguous global-rank blocks:
// cluster 0 holds ranks 1..SC, cluster 1 the next SC, and so on. Under this
// assignment cluster popularity is maximally skewed — the head cluster
// absorbs most first downloads, and apps in tail clusters are starved of
// both global and cluster-based draws. It is the regime where the
// clustering effect's tail truncation is strongest; real category
// assignments fall between Contiguous and RoundRobin.
func Contiguous(apps, clusters int) *ClusterMap {
	if clusters < 1 {
		clusters = 1
	}
	if clusters > apps {
		clusters = apps
	}
	m := &ClusterMap{
		OfApp:   make([]int32, apps),
		Members: make([][]int32, clusters),
	}
	per := (apps + clusters - 1) / clusters
	for i := 0; i < apps; i++ {
		c := i / per
		if c >= clusters {
			c = clusters - 1
		}
		m.OfApp[i] = int32(c)
		m.Members[c] = append(m.Members[c], int32(i))
	}
	return m
}

// FromAssignment builds a ClusterMap from an explicit app->cluster mapping
// and a per-cluster rank order. members[c] must list exactly the apps whose
// ofApp entry is c.
func FromAssignment(ofApp []int32, members [][]int32) (*ClusterMap, error) {
	m := &ClusterMap{OfApp: ofApp, Members: members}
	counts := make([]int, len(members))
	for app, c := range ofApp {
		if int(c) < 0 || int(c) >= len(members) {
			return nil, fmt.Errorf("model: app %d assigned to cluster %d of %d", app, c, len(members))
		}
		counts[c]++
	}
	for c := range members {
		if counts[c] != len(members[c]) {
			return nil, fmt.Errorf("model: cluster %d has %d members listed, %d assigned", c, len(members[c]), counts[c])
		}
		for _, app := range members[c] {
			if int(app) < 0 || int(app) >= len(ofApp) || ofApp[app] != int32(c) {
				return nil, fmt.Errorf("model: cluster %d lists app %d not assigned to it", c, app)
			}
		}
	}
	return m, nil
}

// Clusters returns the number of clusters.
func (m *ClusterMap) Clusters() int { return len(m.Members) }

// Result is the outcome of a simulation run.
type Result struct {
	// Downloads[i] is the simulated download count of app i.
	Downloads []int64
	// Total is the number of download events generated.
	Total int64
}

// Curve returns the rank-ordered download curve (descending), the form the
// paper plots and the distance metric consumes.
func (r Result) Curve() dist.RankCurve {
	vals := make([]float64, len(r.Downloads))
	for i, d := range r.Downloads {
		vals[i] = float64(d)
	}
	return dist.NewRankCurve(vals)
}

// userDownloads returns the number of downloads user u performs: floor(d)
// plus one with probability frac(d).
func userDownloads(r *rng.RNG, d float64) int {
	n := int(d)
	if r.Bool(d - float64(n)) {
		n++
	}
	return n
}
