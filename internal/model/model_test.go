package model

import (
	"math"
	"testing"

	"planetapps/internal/dist"
	"planetapps/internal/stats"
)

func smallCfg() Config {
	return Config{
		Apps: 1000, Users: 2000, DownloadsPerUser: 10,
		ZipfGlobal: 1.4, ZipfCluster: 1.4, ClusterP: 0.9, Clusters: 20,
	}
}

func TestKindString(t *testing.T) {
	if Zipf.String() != "ZIPF" || ZipfAtMostOnce.String() != "ZIPF-at-most-once" || AppClustering.String() != "APP-CLUSTERING" {
		t.Fatal("kind names changed")
	}
}

func TestConfigValidate(t *testing.T) {
	good := smallCfg()
	for _, k := range Kinds {
		if err := good.Validate(k); err != nil {
			t.Fatalf("valid config rejected for %s: %v", k, err)
		}
	}
	bad := []Config{
		{Apps: 0, Users: 1, DownloadsPerUser: 1, ZipfGlobal: 1, Clusters: 1},
		{Apps: 1, Users: 0, DownloadsPerUser: 1, ZipfGlobal: 1, Clusters: 1},
		{Apps: 1, Users: 1, DownloadsPerUser: -1, ZipfGlobal: 1, Clusters: 1},
		{Apps: 1, Users: 1, DownloadsPerUser: 1, ZipfGlobal: -1, Clusters: 1},
	}
	for i, c := range bad {
		if err := c.Validate(Zipf); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
	c := smallCfg()
	c.ClusterP = 1.5
	if err := c.Validate(AppClustering); err == nil {
		t.Fatal("ClusterP > 1 accepted")
	}
	c = smallCfg()
	c.Clusters = 0
	if err := c.Validate(AppClustering); err == nil {
		t.Fatal("zero clusters accepted for clustering model")
	}
}

func TestRoundRobin(t *testing.T) {
	m := RoundRobin(10, 3)
	if m.Clusters() != 3 {
		t.Fatalf("clusters = %d", m.Clusters())
	}
	// App i belongs to cluster i%3; member lists are in rank order.
	for i := 0; i < 10; i++ {
		if m.OfApp[i] != int32(i%3) {
			t.Fatalf("app %d in cluster %d", i, m.OfApp[i])
		}
	}
	if m.Members[0][0] != 0 || m.Members[0][1] != 3 {
		t.Fatalf("cluster 0 member order: %v", m.Members[0])
	}
	// More clusters than apps collapses to apps clusters.
	m = RoundRobin(2, 5)
	if m.Clusters() != 2 {
		t.Fatalf("overclustered map has %d clusters", m.Clusters())
	}
}

func TestFromAssignmentValidation(t *testing.T) {
	of := []int32{0, 1, 0}
	members := [][]int32{{0, 2}, {1}}
	if _, err := FromAssignment(of, members); err != nil {
		t.Fatalf("valid assignment rejected: %v", err)
	}
	if _, err := FromAssignment([]int32{0, 5}, members); err == nil {
		t.Fatal("out-of-range cluster accepted")
	}
	if _, err := FromAssignment(of, [][]int32{{0}, {1, 2}}); err == nil {
		t.Fatal("inconsistent membership accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	s, err := NewSimulator(AppClustering, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	a := s.Run(99)
	b := s.Run(99)
	for i := range a.Downloads {
		if a.Downloads[i] != b.Downloads[i] {
			t.Fatalf("same-seed runs differ at app %d", i)
		}
	}
	c := s.Run(100)
	diff := false
	for i := range a.Downloads {
		if a.Downloads[i] != c.Downloads[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical results")
	}
}

func TestRunTotals(t *testing.T) {
	cfg := smallCfg()
	for _, k := range Kinds {
		s, err := NewSimulator(k, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res := s.Run(1)
		var sum int64
		for _, d := range res.Downloads {
			sum += d
		}
		if sum != res.Total {
			t.Fatalf("%s: download sum %d != total %d", k, sum, res.Total)
		}
		want := float64(cfg.Users) * cfg.DownloadsPerUser
		if math.Abs(float64(res.Total)-want) > want*0.05 {
			t.Fatalf("%s: total %d, want ~%v", k, res.Total, want)
		}
	}
}

func TestAtMostOnceCapsDownloads(t *testing.T) {
	// With U users, no app can exceed U downloads under fetch-at-most-once.
	cfg := Config{
		Apps: 50, Users: 300, DownloadsPerUser: 10,
		ZipfGlobal: 2.5, ZipfCluster: 1.4, ClusterP: 0.9, Clusters: 5,
	}
	for _, k := range []Kind{ZipfAtMostOnce, AppClustering} {
		s, err := NewSimulator(k, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res := s.Run(7)
		for i, d := range res.Downloads {
			if d > int64(cfg.Users) {
				t.Fatalf("%s: app %d downloaded %d times by %d users", k, i, d, cfg.Users)
			}
		}
	}
	// Pure ZIPF has no such cap: with a steep exponent the top app far
	// exceeds the user count.
	s, _ := NewSimulator(Zipf, cfg)
	res := s.Run(7)
	if res.Curve().Top() <= float64(cfg.Users) {
		t.Fatalf("ZIPF top app has %v downloads, expected > %d (no fetch-at-most-once)", res.Curve().Top(), cfg.Users)
	}
}

func TestClusteringTruncatesTail(t *testing.T) {
	// With popularity-correlated clusters (contiguous rank blocks), the
	// clustering effect starves the tail: users stick to the clusters of
	// their (popular) previous downloads, so apps in tail clusters receive
	// fewer downloads than ZIPF-at-most-once would give them at the same
	// parameters. Real category assignments fall between this and the
	// neutral round-robin interleaving.
	cfg := Config{
		Apps: 2000, Users: 4000, DownloadsPerUser: 15,
		ZipfGlobal: 1.2, ZipfCluster: 1.4, ClusterP: 0.9,
		ClusterMap: Contiguous(2000, 20),
	}
	zs, err := NewSimulator(ZipfAtMostOnce, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := NewSimulator(AppClustering, cfg)
	if err != nil {
		t.Fatal(err)
	}
	zc := zs.Run(3).Curve()
	cc := cs.Run(3).Curve()
	// Compare the mass held by the bottom half of ranks.
	tailShare := func(c dist.RankCurve) float64 {
		half := len(c.Downloads) / 2
		var tail, total float64
		for i, v := range c.Downloads {
			total += v
			if i >= half {
				tail += v
			}
		}
		return tail / total
	}
	zt, ct := tailShare(zc), tailShare(cc)
	if ct >= zt {
		t.Fatalf("clustering tail share %v not below zipf-at-most-once %v", ct, zt)
	}
}

func TestContiguous(t *testing.T) {
	m := Contiguous(10, 3)
	if m.Clusters() != 3 {
		t.Fatalf("clusters = %d", m.Clusters())
	}
	// Blocks of ceil(10/3)=4: [0..3], [4..7], [8..9].
	want := []int32{0, 0, 0, 0, 1, 1, 1, 1, 2, 2}
	for i, c := range m.OfApp {
		if c != want[i] {
			t.Fatalf("OfApp = %v, want %v", m.OfApp, want)
		}
	}
	if len(m.Members[2]) != 2 {
		t.Fatalf("last cluster has %d members", len(m.Members[2]))
	}
}

func TestClusteringPZeroMatchesAtMostOnce(t *testing.T) {
	// At p=0 the clustering model degenerates to ZIPF-at-most-once; the
	// two simulated curves should be statistically indistinguishable.
	cfg := smallCfg()
	cfg.ClusterP = 0
	a, err := NewSimulator(AppClustering, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSimulator(ZipfAtMostOnce, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ca := a.Run(5).Curve()
	cb := b.Run(5).Curve()
	d := dist.MeanRelativeError(ca, cb)
	if d > 0.35 {
		t.Fatalf("p=0 clustering deviates from at-most-once by %v", d)
	}
}

func TestStreamMatchesRunDistribution(t *testing.T) {
	cfg := smallCfg()
	s, err := NewSimulator(AppClustering, cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int64, cfg.Apps)
	var events int64
	got := s.Stream(11, func(e Event) bool {
		counts[e.App]++
		events++
		return true
	})
	if got != events {
		t.Fatalf("Stream returned %d, delivered %d", got, events)
	}
	want := float64(cfg.Users) * cfg.DownloadsPerUser
	if math.Abs(float64(events)-want) > want*0.05 {
		t.Fatalf("stream produced %d events, want ~%v", events, want)
	}
	// The stream's aggregate curve should resemble Run's.
	vals := make([]float64, len(counts))
	for i, c := range counts {
		vals[i] = float64(c)
	}
	streamCurve := dist.NewRankCurve(vals)
	runCurve := s.Run(11).Curve()
	if d := dist.MeanRelativeError(runCurve, streamCurve); d > 0.8 {
		t.Fatalf("stream and run curves diverge: %v", d)
	}
}

func TestStreamEarlyStop(t *testing.T) {
	s, err := NewSimulator(Zipf, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	n := s.Stream(1, func(Event) bool { return false })
	if n != 1 {
		t.Fatalf("early-stopped stream delivered %d events", n)
	}
}

func TestStreamFetchAtMostOnce(t *testing.T) {
	cfg := Config{
		Apps: 100, Users: 50, DownloadsPerUser: 20,
		ZipfGlobal: 1.6, ZipfCluster: 1.3, ClusterP: 0.8, Clusters: 10,
	}
	s, err := NewSimulator(AppClustering, cfg)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[[2]int32]bool{}
	s.Stream(21, func(e Event) bool {
		key := [2]int32{e.User, e.App}
		if seen[key] {
			t.Fatalf("user %d downloaded app %d twice", e.User, e.App)
		}
		seen[key] = true
		return true
	})
}

func TestPaperExpectedDownloadsBounds(t *testing.T) {
	cfg := smallCfg()
	hg, hc := HarmonicsFor(cfg)
	prev := math.Inf(1)
	for i := 1; i <= cfg.Apps; i += 97 {
		j := (i-1)/cfg.Clusters + 1
		d := PaperExpectedDownloads(cfg, i, j, hg, hc)
		if d < 0 || d > float64(cfg.Users) {
			t.Fatalf("E[D(%d,%d)] = %v outside [0, U]", i, j, d)
		}
		if d > prev+1e-9 {
			t.Fatalf("expectation increased with rank at %d: %v > %v", i, d, prev)
		}
		prev = d
	}
}

func TestPredictCurveBoundedByUsers(t *testing.T) {
	cfg := smallCfg()
	for _, k := range []Kind{ZipfAtMostOnce, AppClustering} {
		c := PredictCurve(k, cfg)
		for i, v := range c.Downloads {
			if v < 0 || v > float64(cfg.Users)+1e-6 {
				t.Fatalf("%s: predicted downloads %v at rank %d outside [0, U]", k, v, i+1)
			}
		}
	}
}

func TestPredictCurveMatchesSimulation(t *testing.T) {
	// The analytic expectation should be close to a Monte Carlo run for
	// the head and trunk of the curve.
	cfg := Config{
		Apps: 500, Users: 20000, DownloadsPerUser: 10,
		ZipfGlobal: 1.4, ZipfCluster: 1.4, ClusterP: 0.9, Clusters: 10,
	}
	for _, k := range Kinds {
		s, err := NewSimulator(k, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sim := s.Run(13).Curve()
		pred := PredictCurve(k, cfg)
		// Compare the top 20% of ranks, where both are well-populated.
		n := cfg.Apps / 5
		var relErr float64
		for i := 0; i < n; i++ {
			relErr += math.Abs(sim.Downloads[i]-pred.Downloads[i]) / pred.Downloads[i]
		}
		relErr /= float64(n)
		if relErr > 0.25 {
			t.Fatalf("%s: analytic vs simulated head error %v", k, relErr)
		}
	}
}

func TestPredictCurveZipfIsPure(t *testing.T) {
	cfg := smallCfg()
	c := PredictCurve(Zipf, cfg)
	// Pure Zipf in log-log space is a straight line: trunk exponent equals zr.
	got := c.TrunkExponent(0.01, 0.01)
	if math.Abs(got-cfg.ZipfGlobal) > 0.05 {
		t.Fatalf("pure ZIPF trunk exponent %v, want %v", got, cfg.ZipfGlobal)
	}
}

func TestPredictedHeadTruncation(t *testing.T) {
	// Fetch-at-most-once flattens the head: the at-most-once curve's top
	// value is far below pure ZIPF's for a steep exponent.
	cfg := Config{
		Apps: 5000, Users: 10000, DownloadsPerUser: 20,
		ZipfGlobal: 1.7, ZipfCluster: 1.4, ClusterP: 0.9, Clusters: 30,
	}
	pure := PredictCurve(Zipf, cfg)
	amo := PredictCurve(ZipfAtMostOnce, cfg)
	if amo.Top() > float64(cfg.Users) {
		t.Fatalf("at-most-once top %v exceeds user count", amo.Top())
	}
	if pure.Top() <= float64(cfg.Users) {
		t.Fatalf("pure top %v unexpectedly within user count", pure.Top())
	}
}

func TestFitRecoversParameters(t *testing.T) {
	// Generate synthetic "measured" data from known parameters, then check
	// that the fitter picks nearby values and ranks APP-CLUSTERING best.
	trueCfg := Config{
		Apps: 1500, Users: 30000, DownloadsPerUser: 12,
		ZipfGlobal: 1.4, ZipfCluster: 1.4, ClusterP: 0.9, Clusters: 30,
	}
	s, err := NewSimulator(AppClustering, trueCfg)
	if err != nil {
		t.Fatal(err)
	}
	observed := s.Run(17).Curve()
	spec := DefaultFitSpec()
	spec.Users = []int{trueCfg.Users}
	results, err := FitAll(observed, spec)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Kind != AppClustering {
		t.Fatalf("best model is %s, want APP-CLUSTERING (distances: %v, %v, %v)",
			results[0].Kind, results[0].Distance, results[1].Distance, results[2].Distance)
	}
	best := results[0]
	if math.Abs(best.Config.ZipfGlobal-trueCfg.ZipfGlobal) > 0.31 {
		t.Fatalf("fitted zr = %v, want ~%v", best.Config.ZipfGlobal, trueCfg.ZipfGlobal)
	}
	if best.Config.ClusterP < 0.7 {
		t.Fatalf("fitted p = %v, want high", best.Config.ClusterP)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(Zipf, dist.RankCurve{}, DefaultFitSpec()); err == nil {
		t.Fatal("empty curve accepted")
	}
	zero := dist.RankCurve{Downloads: []float64{0, 0}}
	if _, err := Fit(Zipf, zero, DefaultFitSpec()); err == nil {
		t.Fatal("all-zero curve accepted")
	}
	spec := DefaultFitSpec()
	spec.ZipfGlobal = nil
	good := dist.RankCurve{Downloads: []float64{10, 5, 2}}
	if _, err := Fit(Zipf, good, spec); err == nil {
		t.Fatal("empty grid accepted")
	}
}

func TestUserSweepMinimumNearTopDownloads(t *testing.T) {
	// Figure 10: distance is minimized when U is near the most popular
	// app's download count.
	trueCfg := Config{
		Apps: 800, Users: 20000, DownloadsPerUser: 10,
		ZipfGlobal: 1.5, ZipfCluster: 1.4, ClusterP: 0.9, Clusters: 20,
	}
	s, err := NewSimulator(AppClustering, trueCfg)
	if err != nil {
		t.Fatal(err)
	}
	observed := s.Run(29).Curve()
	fractions := []float64{0.1, 0.25, 0.5, 1, 2, 5, 10}
	spec := DefaultFitSpec()
	ds, err := UserSweep(AppClustering, observed, spec, fractions)
	if err != nil {
		t.Fatal(err)
	}
	// Find the argmin; it should be one of the fractions near 1.
	minI := 0
	for i, d := range ds {
		if d < ds[minI] {
			minI = i
		}
	}
	if fractions[minI] < 0.25 || fractions[minI] > 2 {
		t.Fatalf("distance minimized at fraction %v (distances %v), want near 1", fractions[minI], ds)
	}
}

func TestParetoEffectInClusteringWorkload(t *testing.T) {
	// The headline Figure 2 shape: top 10% of apps should hold the large
	// majority of downloads.
	cfg := Config{
		Apps: 3000, Users: 30000, DownloadsPerUser: 20,
		ZipfGlobal: 1.4, ZipfCluster: 1.4, ClusterP: 0.9, Clusters: 34,
	}
	s, err := NewSimulator(AppClustering, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(31)
	vals := make([]float64, len(res.Downloads))
	for i, d := range res.Downloads {
		vals[i] = float64(d)
	}
	share := stats.TopShare(vals, 0.10)
	if share < 0.5 || share > 0.99 {
		t.Fatalf("top-10%% share = %v, want a strong Pareto effect", share)
	}
}

func BenchmarkRunClustering(b *testing.B) {
	cfg := Config{
		Apps: 10000, Users: 10000, DownloadsPerUser: 10,
		ZipfGlobal: 1.4, ZipfCluster: 1.4, ClusterP: 0.9, Clusters: 30,
	}
	s, err := NewSimulator(AppClustering, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run(uint64(i))
	}
}

func BenchmarkStreamClustering(b *testing.B) {
	cfg := Config{
		Apps: 10000, Users: 10000, DownloadsPerUser: 10,
		ZipfGlobal: 1.4, ZipfCluster: 1.4, ClusterP: 0.9, Clusters: 30,
	}
	s, err := NewSimulator(AppClustering, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Stream(uint64(i), func(Event) bool { return true })
	}
}
