package model

import (
	"fmt"
	"runtime"
	"sync"

	"planetapps/internal/dist"
	"planetapps/internal/rng"
)

// Simulator runs one of the three workload models as a Monte Carlo
// simulation over Config. A Simulator precomputes the sampling tables and
// may be reused across runs and seeds; runs are independent.
type Simulator struct {
	kind Kind
	cfg  Config

	global *dist.Zipf
	cm     *ClusterMap
	// clusterDist[c] is the within-cluster Zipf over cluster c's members.
	// Distributions are shared between clusters of equal size.
	clusterDist []*dist.Zipf
}

// NewSimulator validates the configuration and precomputes sampler state.
func NewSimulator(kind Kind, cfg Config) (*Simulator, error) {
	if err := cfg.Validate(kind); err != nil {
		return nil, err
	}
	s := &Simulator{kind: kind, cfg: cfg}
	var err error
	s.global, err = dist.NewZipf(cfg.Apps, cfg.ZipfGlobal)
	if err != nil {
		return nil, err
	}
	if kind == AppClustering {
		s.cm = cfg.ClusterMap
		if s.cm == nil {
			s.cm = RoundRobin(cfg.Apps, cfg.Clusters)
		}
		bySize := map[int]*dist.Zipf{}
		s.clusterDist = make([]*dist.Zipf, s.cm.Clusters())
		for c, members := range s.cm.Members {
			n := len(members)
			if n == 0 {
				continue
			}
			z, ok := bySize[n]
			if !ok {
				z, err = dist.NewZipf(n, cfg.ZipfCluster)
				if err != nil {
					return nil, err
				}
				bySize[n] = z
			}
			s.clusterDist[c] = z
		}
	}
	return s, nil
}

// Kind returns the model kind this simulator runs.
func (s *Simulator) Kind() Kind { return s.kind }

// Config returns the configuration the simulator was built with.
func (s *Simulator) Config() Config { return s.cfg }

// maxRetries bounds the rejection loop when re-drawing an already-downloaded
// app. After the cap the sampler falls back to a deterministic scan so the
// simulation always terminates, even for degenerate configurations where a
// user has downloaded nearly everything.
const maxRetries = 64

// userState tracks one simulated user's history. The zero value is a user
// with no downloads.
//
// Membership (fetch-at-most-once) has two representations with identical
// semantics: an epoch-stamped array when `seen` is set (the Run/RunParallel
// hot path — one O(apps) slice per worker reused across its users, zero
// per-draw map traffic), and a lazily-allocated map otherwise (Stream keeps
// many users alive at once, where a per-user apps-sized array would blow up
// memory).
type userState struct {
	// downloaded marks apps this user has fetched; used when seen == nil.
	downloaded map[int32]struct{}
	// seen[app] == epoch marks apps downloaded by the current user; the
	// stamp bump in reset makes clearing free.
	seen  []int32
	epoch int32
	// history lists previous downloads in order; APP-CLUSTERING picks the
	// cluster of a uniformly random element (§5.1 step 2.1: "randomly
	// chosen from previous downloads with a uniform probability").
	history []int32
}

func (u *userState) has(app int32) bool {
	if u.seen != nil {
		return u.seen[app] == u.epoch
	}
	_, ok := u.downloaded[app]
	return ok
}

func (u *userState) record(app int32) {
	if u.seen != nil {
		u.seen[app] = u.epoch
	} else {
		if u.downloaded == nil {
			u.downloaded = make(map[int32]struct{}, 8)
		}
		u.downloaded[app] = struct{}{}
	}
	u.history = append(u.history, app)
}

// nextZipf draws from the global Zipf; when atMostOnce, it rejects apps the
// user already has, falling back to the best-ranked unseen app after
// maxRetries. The second return is false only if every app is downloaded.
func (s *Simulator) nextZipf(r *rng.RNG, u *userState, atMostOnce bool) (int32, bool) {
	for try := 0; try < maxRetries; try++ {
		app := int32(s.global.Sample(r) - 1)
		if !atMostOnce || !u.has(app) {
			return app, true
		}
	}
	// Fallback: first unseen app by global rank.
	for i := 0; i < s.cfg.Apps; i++ {
		if !u.has(int32(i)) {
			return int32(i), true
		}
	}
	return 0, false
}

// nextClustered draws one APP-CLUSTERING download for a user with history.
// With probability p it redraws within the cluster of a random previous
// download (step 2.1); otherwise from the global distribution (step 2.2).
// Both branches respect fetch-at-most-once.
func (s *Simulator) nextClustered(r *rng.RNG, u *userState) (int32, bool) {
	if len(u.history) == 0 || !r.Bool(s.cfg.ClusterP) {
		return s.nextZipf(r, u, true)
	}
	for try := 0; try < maxRetries; try++ {
		prev := u.history[r.Intn(len(u.history))]
		c := s.cm.OfApp[prev]
		members := s.cm.Members[c]
		app := members[s.clusterDist[c].Sample(r)-1]
		if !u.has(app) {
			return app, true
		}
	}
	// Fallback: best-ranked unseen app in the cluster of the user's first
	// download, else a global draw.
	c := s.cm.OfApp[u.history[0]]
	for _, app := range s.cm.Members[c] {
		if !u.has(app) {
			return app, true
		}
	}
	return s.nextZipf(r, u, true)
}

// nextDownload advances one user by one download under the simulator's model.
func (s *Simulator) nextDownload(r *rng.RNG, u *userState) (int32, bool) {
	switch s.kind {
	case Zipf:
		return s.nextZipf(r, u, false)
	case ZipfAtMostOnce:
		return s.nextZipf(r, u, true)
	case AppClustering:
		return s.nextClustered(r, u)
	default:
		panic(fmt.Sprintf("model: unknown kind %d", int(s.kind)))
	}
}

// Run simulates all users and returns per-app download totals. The run is
// deterministic in (simulator config, seed).
//
// Every user draws from a private RNG stream derived as root.Split(userIndex)
// from the run's root generator, so users are mutually independent and the
// result does not depend on the order users are simulated in: Run(seed) and
// RunParallel(seed, w) are byte-identical for every worker count w.
func (s *Simulator) Run(seed uint64) Result {
	return s.RunParallel(seed, 1)
}

// userStreams derives one private generator per user from the run's root.
// Splitting happens in user-index order on one goroutine, so stream i is a
// pure function of (seed, i) no matter which worker later consumes it. The
// family lives in a single value slice (SplitInto) — a per-user pointer
// allocation here dominates the engine's sequential overhead otherwise.
func (s *Simulator) userStreams(seed uint64) []rng.RNG {
	root := rng.New(seed)
	streams := make([]rng.RNG, s.cfg.Users)
	for i := range streams {
		root.SplitInto(uint64(i), &streams[i])
	}
	return streams
}

// simulateUsers runs users [lo, hi) against a shard accumulator owned by the
// calling worker (no synchronization on the hot loop) and returns the number
// of downloads generated. downloads must have length cfg.Apps.
func (s *Simulator) simulateUsers(streams []rng.RNG, lo, hi int, downloads []int64) int64 {
	var total int64
	u := userState{seen: make([]int32, s.cfg.Apps)}
	for i := lo; i < hi; i++ {
		r := &streams[i]
		n := userDownloads(r, s.cfg.DownloadsPerUser)
		if n > s.cfg.Apps {
			n = s.cfg.Apps
		}
		// Reset per-user state: bumping the epoch invalidates the previous
		// user's marks without touching the array.
		u.history = u.history[:0]
		u.epoch++
		for k := 0; k < n; k++ {
			app, ok := s.nextDownload(r, &u)
			if !ok {
				break
			}
			u.record(app)
			downloads[app]++
			total++
		}
	}
	return total
}

// RunParallel is Run partitioned across a worker pool: users are split into
// contiguous shards, each worker accumulates into a private []int64 merged
// at the end, so the hot loop carries no atomics or locks. Because every
// user owns a split RNG stream, the result is byte-identical to Run(seed)
// for any worker count. workers <= 0 means runtime.GOMAXPROCS(0).
func (s *Simulator) RunParallel(seed uint64, workers int) Result {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > s.cfg.Users {
		workers = s.cfg.Users
	}
	streams := s.userStreams(seed)
	res := Result{Downloads: make([]int64, s.cfg.Apps)}
	if workers <= 1 {
		res.Total = s.simulateUsers(streams, 0, s.cfg.Users, res.Downloads)
		return res
	}
	shards := make([][]int64, workers)
	totals := make([]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * s.cfg.Users / workers
		hi := (w + 1) * s.cfg.Users / workers
		shard := make([]int64, s.cfg.Apps)
		shards[w] = shard
		wg.Add(1)
		go func() {
			defer wg.Done()
			totals[w] = s.simulateUsers(streams, lo, hi, shard)
		}()
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		for i, d := range shards[w] {
			res.Downloads[i] += d
		}
		res.Total += totals[w]
	}
	return res
}

// Event is one simulated download in a time-ordered stream.
type Event struct {
	// User is the downloading user's index.
	User int32
	// App is the downloaded app's index.
	App int32
}

// Stream generates the same workload as Run but interleaved across users in
// a global random order, approximating concurrent arrivals at the store —
// the order a delivery cache observes. Events are delivered to fn; a false
// return stops the stream early. Stream returns the number of events
// delivered.
//
// Memory is O(U + total downloads recorded per active user); per-user
// download sets are freed as users finish.
func (s *Simulator) Stream(seed uint64, fn func(Event) bool) int64 {
	r := rng.New(seed)
	remaining := make([]int, s.cfg.Users)
	active := make([]int32, 0, s.cfg.Users)
	for i := range remaining {
		n := userDownloads(r, s.cfg.DownloadsPerUser)
		if n > s.cfg.Apps {
			n = s.cfg.Apps
		}
		remaining[i] = n
		if n > 0 {
			active = append(active, int32(i))
		}
	}
	states := make(map[int32]*userState, 1024)
	var count int64
	for len(active) > 0 {
		idx := r.Intn(len(active))
		user := active[idx]
		u := states[user]
		if u == nil {
			u = &userState{}
			states[user] = u
		}
		app, ok := s.nextDownload(r, u)
		if ok {
			u.record(app)
			count++
			if !fn(Event{User: user, App: app}) {
				return count
			}
		}
		remaining[user]--
		if remaining[user] == 0 || !ok {
			// Swap-remove the finished user and drop its state.
			active[idx] = active[len(active)-1]
			active = active[:len(active)-1]
			delete(states, user)
		}
	}
	return count
}
