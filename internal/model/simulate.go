package model

import (
	"fmt"

	"planetapps/internal/dist"
	"planetapps/internal/rng"
)

// Simulator runs one of the three workload models as a Monte Carlo
// simulation over Config. A Simulator precomputes the sampling tables and
// may be reused across runs and seeds; runs are independent.
type Simulator struct {
	kind Kind
	cfg  Config

	global *dist.Zipf
	cm     *ClusterMap
	// clusterDist[c] is the within-cluster Zipf over cluster c's members.
	// Distributions are shared between clusters of equal size.
	clusterDist []*dist.Zipf
}

// NewSimulator validates the configuration and precomputes sampler state.
func NewSimulator(kind Kind, cfg Config) (*Simulator, error) {
	if err := cfg.Validate(kind); err != nil {
		return nil, err
	}
	s := &Simulator{kind: kind, cfg: cfg}
	var err error
	s.global, err = dist.NewZipf(cfg.Apps, cfg.ZipfGlobal)
	if err != nil {
		return nil, err
	}
	if kind == AppClustering {
		s.cm = cfg.ClusterMap
		if s.cm == nil {
			s.cm = RoundRobin(cfg.Apps, cfg.Clusters)
		}
		bySize := map[int]*dist.Zipf{}
		s.clusterDist = make([]*dist.Zipf, s.cm.Clusters())
		for c, members := range s.cm.Members {
			n := len(members)
			if n == 0 {
				continue
			}
			z, ok := bySize[n]
			if !ok {
				z, err = dist.NewZipf(n, cfg.ZipfCluster)
				if err != nil {
					return nil, err
				}
				bySize[n] = z
			}
			s.clusterDist[c] = z
		}
	}
	return s, nil
}

// Kind returns the model kind this simulator runs.
func (s *Simulator) Kind() Kind { return s.kind }

// Config returns the configuration the simulator was built with.
func (s *Simulator) Config() Config { return s.cfg }

// maxRetries bounds the rejection loop when re-drawing an already-downloaded
// app. After the cap the sampler falls back to a deterministic scan so the
// simulation always terminates, even for degenerate configurations where a
// user has downloaded nearly everything.
const maxRetries = 64

// userState tracks one simulated user's history. The zero value is a user
// with no downloads.
type userState struct {
	// downloaded marks apps this user has fetched (fetch-at-most-once).
	// It is allocated lazily on the first download.
	downloaded map[int32]struct{}
	// history lists previous downloads in order; APP-CLUSTERING picks the
	// cluster of a uniformly random element (§5.1 step 2.1: "randomly
	// chosen from previous downloads with a uniform probability").
	history []int32
}

func (u *userState) has(app int32) bool {
	_, ok := u.downloaded[app]
	return ok
}

func (u *userState) record(app int32) {
	if u.downloaded == nil {
		u.downloaded = make(map[int32]struct{}, 8)
	}
	u.downloaded[app] = struct{}{}
	u.history = append(u.history, app)
}

// nextZipf draws from the global Zipf; when atMostOnce, it rejects apps the
// user already has, falling back to the best-ranked unseen app after
// maxRetries. The second return is false only if every app is downloaded.
func (s *Simulator) nextZipf(r *rng.RNG, u *userState, atMostOnce bool) (int32, bool) {
	for try := 0; try < maxRetries; try++ {
		app := int32(s.global.Sample(r) - 1)
		if !atMostOnce || !u.has(app) {
			return app, true
		}
	}
	// Fallback: first unseen app by global rank.
	for i := 0; i < s.cfg.Apps; i++ {
		if !u.has(int32(i)) {
			return int32(i), true
		}
	}
	return 0, false
}

// nextClustered draws one APP-CLUSTERING download for a user with history.
// With probability p it redraws within the cluster of a random previous
// download (step 2.1); otherwise from the global distribution (step 2.2).
// Both branches respect fetch-at-most-once.
func (s *Simulator) nextClustered(r *rng.RNG, u *userState) (int32, bool) {
	if len(u.history) == 0 || !r.Bool(s.cfg.ClusterP) {
		return s.nextZipf(r, u, true)
	}
	for try := 0; try < maxRetries; try++ {
		prev := u.history[r.Intn(len(u.history))]
		c := s.cm.OfApp[prev]
		members := s.cm.Members[c]
		app := members[s.clusterDist[c].Sample(r)-1]
		if !u.has(app) {
			return app, true
		}
	}
	// Fallback: best-ranked unseen app in the cluster of the user's first
	// download, else a global draw.
	c := s.cm.OfApp[u.history[0]]
	for _, app := range s.cm.Members[c] {
		if !u.has(app) {
			return app, true
		}
	}
	return s.nextZipf(r, u, true)
}

// nextDownload advances one user by one download under the simulator's model.
func (s *Simulator) nextDownload(r *rng.RNG, u *userState) (int32, bool) {
	switch s.kind {
	case Zipf:
		return s.nextZipf(r, u, false)
	case ZipfAtMostOnce:
		return s.nextZipf(r, u, true)
	case AppClustering:
		return s.nextClustered(r, u)
	default:
		panic(fmt.Sprintf("model: unknown kind %d", int(s.kind)))
	}
}

// Run simulates all users and returns per-app download totals. The run is
// deterministic in (simulator config, seed).
func (s *Simulator) Run(seed uint64) Result {
	r := rng.New(seed)
	res := Result{Downloads: make([]int64, s.cfg.Apps)}
	var u userState
	for i := 0; i < s.cfg.Users; i++ {
		n := userDownloads(r, s.cfg.DownloadsPerUser)
		if n > s.cfg.Apps {
			n = s.cfg.Apps
		}
		// Reset per-user state, reusing the map to reduce allocation.
		u.history = u.history[:0]
		for k := range u.downloaded {
			delete(u.downloaded, k)
		}
		for k := 0; k < n; k++ {
			app, ok := s.nextDownload(r, &u)
			if !ok {
				break
			}
			u.record(app)
			res.Downloads[app]++
			res.Total++
		}
	}
	return res
}

// Event is one simulated download in a time-ordered stream.
type Event struct {
	// User is the downloading user's index.
	User int32
	// App is the downloaded app's index.
	App int32
}

// Stream generates the same workload as Run but interleaved across users in
// a global random order, approximating concurrent arrivals at the store —
// the order a delivery cache observes. Events are delivered to fn; a false
// return stops the stream early. Stream returns the number of events
// delivered.
//
// Memory is O(U + total downloads recorded per active user); per-user
// download sets are freed as users finish.
func (s *Simulator) Stream(seed uint64, fn func(Event) bool) int64 {
	r := rng.New(seed)
	remaining := make([]int, s.cfg.Users)
	active := make([]int32, 0, s.cfg.Users)
	for i := range remaining {
		n := userDownloads(r, s.cfg.DownloadsPerUser)
		if n > s.cfg.Apps {
			n = s.cfg.Apps
		}
		remaining[i] = n
		if n > 0 {
			active = append(active, int32(i))
		}
	}
	states := make(map[int32]*userState, 1024)
	var count int64
	for len(active) > 0 {
		idx := r.Intn(len(active))
		user := active[idx]
		u := states[user]
		if u == nil {
			u = &userState{}
			states[user] = u
		}
		app, ok := s.nextDownload(r, u)
		if ok {
			u.record(app)
			count++
			if !fn(Event{User: user, App: app}) {
				return count
			}
		}
		remaining[user]--
		if remaining[user] == 0 || !ok {
			// Swap-remove the finished user and drop its state.
			active[idx] = active[len(active)-1]
			active = active[:len(active)-1]
			delete(states, user)
		}
	}
	return count
}
