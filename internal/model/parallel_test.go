package model

import (
	"reflect"
	"testing"

	"planetapps/internal/dist"
)

// TestRunParallelWorkerInvariance is the core contract of the parallel
// engine: for a fixed seed, RunParallel must produce byte-identical results
// for every worker count, and match Run exactly. Run under -race this also
// shakes out unsynchronized sharing between shards.
func TestRunParallelWorkerInvariance(t *testing.T) {
	cfg := smallCfg()
	for _, k := range Kinds {
		s, err := NewSimulator(k, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := s.Run(99)
		for _, workers := range []int{1, 2, 3, 5, 8} {
			got := s.RunParallel(99, workers)
			if got.Total != want.Total || !reflect.DeepEqual(got.Downloads, want.Downloads) {
				t.Fatalf("%s: RunParallel(seed=99, workers=%d) differs from Run", k, workers)
			}
		}
	}
}

// TestRunParallelWorkerEdgeCases covers worker counts outside [1, Users].
func TestRunParallelWorkerEdgeCases(t *testing.T) {
	cfg := smallCfg()
	cfg.Users = 3
	s, err := NewSimulator(AppClustering, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := s.Run(5)
	// More workers than users, and workers <= 0 (meaning GOMAXPROCS).
	for _, workers := range []int{64, 0, -1} {
		got := s.RunParallel(5, workers)
		if got.Total != want.Total || !reflect.DeepEqual(got.Downloads, want.Downloads) {
			t.Fatalf("RunParallel(workers=%d) differs from Run", workers)
		}
	}
}

// parallelFitObserved builds a small deterministic observed curve shared by
// the fit-invariance tests and benchmarks.
func parallelFitObserved(t testing.TB) dist.RankCurve {
	t.Helper()
	cfg := Config{
		Apps: 600, Users: 8000, DownloadsPerUser: 8,
		ZipfGlobal: 1.4, ZipfCluster: 1.4, ClusterP: 0.9, Clusters: 20,
	}
	s, err := NewSimulator(AppClustering, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s.Run(17).Curve()
}

// TestFitMCWorkerInvariance: FitMC must select the exact same candidate and
// distance for any Workers value (including the default 0).
func TestFitMCWorkerInvariance(t *testing.T) {
	observed := parallelFitObserved(t)
	spec := DefaultFitSpec()
	spec.Workers = 1
	want, err := FitMC(AppClustering, observed, spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 4, 8} {
		spec.Workers = workers
		got, err := FitMC(AppClustering, observed, spec, 3)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("FitMC(Workers=%d) = %+v, want %+v", workers, got, want)
		}
	}
}

// TestFitAllMCWorkerInvariance: the concurrent per-kind fan-out must return
// the same sorted fits as a Workers=1 evaluation.
func TestFitAllMCWorkerInvariance(t *testing.T) {
	observed := parallelFitObserved(t)
	spec := DefaultFitSpec()
	spec.Workers = 1
	want, err := FitAllMC(observed, spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	spec.Workers = 8
	got, err := FitAllMC(observed, spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("FitAllMC(Workers=8) = %+v, want %+v", got, want)
	}
}

// TestMCDistanceDeterministic: the concurrent Monte Carlo runs inside
// MCDistance must sum in run order — repeated calls agree bit-for-bit.
func TestMCDistanceDeterministic(t *testing.T) {
	observed := parallelFitObserved(t)
	cfg := Config{
		Apps: len(observed.Downloads), Users: 8000, DownloadsPerUser: 8,
		ZipfGlobal: 1.4, ZipfCluster: 1.4, ClusterP: 0.9, Clusters: 20,
	}
	a, err := MCDistance(AppClustering, cfg, observed, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MCDistance(AppClustering, cfg, observed, 11)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("MCDistance not deterministic: %v vs %v", a, b)
	}
}

// TestUserSweepMCDeterministic: the fraction fan-out preserves order and
// determinism.
func TestUserSweepMCDeterministic(t *testing.T) {
	observed := parallelFitObserved(t)
	base := Config{
		Apps: len(observed.Downloads), Users: 8000, DownloadsPerUser: 8,
		ZipfGlobal: 1.4, ZipfCluster: 1.4, ClusterP: 0.9, Clusters: 20,
	}
	fractions := []float64{0.5, 1, 2}
	a, err := UserSweepMC(AppClustering, observed, base, fractions, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := UserSweepMC(AppClustering, observed, base, fractions, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("UserSweepMC not deterministic: %v vs %v", a, b)
	}
}
