package model

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"planetapps/internal/dist"
)

// FitSpec defines the parameter grid a Fit sweeps, mirroring the paper's
// procedure of "running simulations with all parameter combinations and
// measuring the distance from actual data" (§5.2.1). The analytic curve
// (Eq. 5) stands in for a Monte Carlo run at each grid point, which is what
// makes exhaustive sweeps cheap; FitResult records the best point.
type FitSpec struct {
	// ZipfGlobal values (zr) to try.
	ZipfGlobal []float64
	// ZipfCluster values (zc) to try. Ignored for non-clustering kinds.
	ZipfCluster []float64
	// ClusterP values (p) to try. Ignored for non-clustering kinds.
	ClusterP []float64
	// Users values (U) to try. A zero entry is replaced by the observed
	// top-app downloads (the paper's Figure 10 heuristic).
	Users []int
	// Clusters is C; zero means 30 (the paper's simulation default).
	Clusters int
	// MinObserved restricts the fitting distance to the ranks whose
	// observed downloads reach this floor. Laptop-scale curves have deep
	// tails of 1-2 downloads where the analytic expectation is a fraction
	// below one; comparing those ranks with Eq. 6 measures Poisson
	// discreteness rather than model quality, so the grid search uses the
	// well-populated prefix and the final reported distance comes from a
	// Monte Carlo run over the full curve (FitMC). Zero means 3.
	MinObserved float64
	// Workers bounds the number of Monte Carlo candidate evaluations FitMC
	// runs concurrently (FitAllMC passes it through to each per-kind fit).
	// Zero means runtime.GOMAXPROCS(0). Fit results are invariant to
	// Workers; the knob only controls scheduling.
	Workers int
}

// DefaultFitSpec covers the parameter ranges the paper reports as best fits
// (zr 0.9-1.7, zc 1.2-1.5, p 0.9-0.95) with some margin.
func DefaultFitSpec() FitSpec {
	return FitSpec{
		ZipfGlobal:  []float64{0.8, 0.9, 1.0, 1.1, 1.2, 1.3, 1.4, 1.5, 1.6, 1.7, 1.8},
		ZipfCluster: []float64{1.0, 1.2, 1.4, 1.5, 1.6},
		ClusterP:    []float64{0.3, 0.5, 0.7, 0.8, 0.9, 0.95},
		Users:       []int{0},
		Clusters:    30,
		MinObserved: 3,
	}
}

// FitResult is the best grid point found for one model kind.
type FitResult struct {
	Kind     Kind
	Config   Config
	Distance float64
}

// String renders the fitted parameters the way the paper's figure legends do.
func (f FitResult) String() string {
	switch f.Kind {
	case AppClustering:
		return fmt.Sprintf("%s (zr=%.2f, p=%.2f, zc=%.2f, U=%d) distance=%.3f",
			f.Kind, f.Config.ZipfGlobal, f.Config.ClusterP, f.Config.ZipfCluster, f.Config.Users, f.Distance)
	default:
		return fmt.Sprintf("%s (zr=%.2f, U=%d) distance=%.3f", f.Kind, f.Config.ZipfGlobal, f.Config.Users, f.Distance)
	}
}

// Fit sweeps the grid for the given kind against an observed rank curve and
// returns the minimum-distance parameters. The observed curve's length sets
// A; its total and top value seed d and the U=0 heuristic.
func Fit(kind Kind, observed dist.RankCurve, spec FitSpec) (FitResult, error) {
	cands, err := fitCandidates(kind, observed, spec)
	if err != nil {
		return FitResult{}, err
	}
	return cands[0], nil
}

// fitCandidates runs the analytic grid search and returns one candidate per
// (zr, U) pair — the analytically best (zc, p) at that point — sorted by
// ascending analytic distance. Keeping per-zr champions preserves the
// diversity FitMC needs: the analytic prefix metric is a good local judge
// of (zc, p) but can misrank zr by a notch.
func fitCandidates(kind Kind, observed dist.RankCurve, spec FitSpec) ([]FitResult, error) {
	apps := len(observed.Downloads)
	if apps == 0 {
		return nil, fmt.Errorf("model: empty observed curve")
	}
	total := observed.Total()
	if total <= 0 {
		return nil, fmt.Errorf("model: observed curve has no downloads")
	}
	clusters := spec.Clusters
	if clusters <= 0 {
		clusters = 30
	}
	users := append([]int(nil), spec.Users...)
	if len(users) == 0 {
		users = []int{0}
	}
	for i, u := range users {
		if u == 0 {
			users[i] = int(observed.Top())
			if users[i] < 1 {
				users[i] = 1
			}
		}
	}
	zcs := spec.ZipfCluster
	ps := spec.ClusterP
	if kind != AppClustering {
		zcs = []float64{0}
		ps = []float64{0}
	}
	if len(spec.ZipfGlobal) == 0 {
		return nil, fmt.Errorf("model: FitSpec has no ZipfGlobal values")
	}
	if len(zcs) == 0 || len(ps) == 0 {
		return nil, fmt.Errorf("model: FitSpec missing cluster parameters for %s", kind)
	}

	// Fit on the well-populated prefix (see FitSpec.MinObserved).
	minObs := spec.MinObserved
	if minObs <= 0 {
		minObs = 3
	}
	prefix := len(observed.Downloads)
	for prefix > 0 && observed.Downloads[prefix-1] < minObs {
		prefix--
	}
	if prefix < 2 {
		prefix = min(len(observed.Downloads), 2)
	}

	var cands []FitResult
	for _, u := range users {
		d := total / float64(u)
		for _, zr := range spec.ZipfGlobal {
			best := FitResult{Kind: kind, Distance: -1}
			for _, zc := range zcs {
				for _, p := range ps {
					cfg := Config{
						Apps: apps, Users: u, DownloadsPerUser: d,
						ZipfGlobal: zr, ZipfCluster: zc, ClusterP: p,
						Clusters: clusters,
					}
					if err := cfg.Validate(kind); err != nil {
						return nil, err
					}
					dst := prefixDistance(observed, PredictCurve(kind, cfg), prefix)
					if best.Distance < 0 || dst < best.Distance {
						best.Config = cfg
						best.Distance = dst
					}
				}
			}
			cands = append(cands, best)
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].Distance < cands[j].Distance })
	return cands, nil
}

// prefixDistance is Eq. 6 restricted to the first n ranks.
func prefixDistance(observed, predicted dist.RankCurve, n int) float64 {
	if n > len(observed.Downloads) {
		n = len(observed.Downloads)
	}
	o := dist.RankCurve{Downloads: observed.Downloads[:n]}
	p := predicted
	if n < len(p.Downloads) {
		p = dist.RankCurve{Downloads: p.Downloads[:n]}
	}
	return dist.MeanRelativeError(o, p)
}

// mcDistanceRuns controls variance reduction in MCDistance: the reported
// distance is the mean over this many independent simulation runs.
const mcDistanceRuns = 3

// MCDistance runs Monte Carlo simulations of the configured model and
// returns the mean Eq. 6 distance between the simulated and observed rank
// curves — the comparison the paper's §5.2 actually performs. Simulated
// zero-download tail ranks are trimmed the way measured curves are.
//
// The independent runs execute concurrently; per-run distances land in
// run-indexed slots and are summed in run order, so the result is
// byte-identical to a sequential evaluation.
func MCDistance(kind Kind, cfg Config, observed dist.RankCurve, seed uint64) (float64, error) {
	sim, err := NewSimulator(kind, cfg)
	if err != nil {
		return 0, err
	}
	var dists [mcDistanceRuns]float64
	var wg sync.WaitGroup
	for run := 0; run < mcDistanceRuns; run++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			curve := sim.Run(seed + uint64(run)*0x9e3779b97f4a7c15).Curve()
			n := len(curve.Downloads)
			for n > 0 && curve.Downloads[n-1] <= 0 {
				n--
			}
			dists[run] = dist.MeanRelativeError(observed, dist.RankCurve{Downloads: curve.Downloads[:n]})
		}()
	}
	wg.Wait()
	var sum float64
	for _, d := range dists {
		sum += d
	}
	return sum / mcDistanceRuns, nil
}

// fitWorkers resolves a FitSpec.Workers value against the available
// parallelism and the amount of independent work.
func fitWorkers(spec FitSpec, jobs int) int {
	w := spec.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > jobs {
		w = jobs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// maxMCCandidates bounds the Monte Carlo refinement in FitMC.
const maxMCCandidates = 12

// FitMC shortlists parameters with the analytic grid search (one champion
// per zr value) and then selects among them by the distance of Monte Carlo
// runs against the full observed curve, mirroring the paper's
// simulate-and-compare procedure while keeping the sweep cheap.
//
// Candidates are evaluated on a pool of spec.Workers goroutines. Distances
// land in candidate-indexed slots and the winner is selected by a scan in
// shortlist order (strict <), so the chosen fit is byte-identical to a
// sequential evaluation for any worker count; on error, the lowest-index
// candidate's error is returned.
func FitMC(kind Kind, observed dist.RankCurve, spec FitSpec, seed uint64) (FitResult, error) {
	cands, err := fitCandidates(kind, observed, spec)
	if err != nil {
		return FitResult{}, err
	}
	if len(cands) > maxMCCandidates {
		cands = cands[:maxMCCandidates]
	}
	dists := make([]float64, len(cands))
	errs := make([]error, len(cands))
	workers := fitWorkers(spec, len(cands))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				dists[i], errs[i] = MCDistance(kind, cands[i].Config, observed, seed)
			}
		}()
	}
	for i := range cands {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	best := FitResult{Kind: kind, Distance: -1}
	for i, c := range cands {
		if errs[i] != nil {
			return FitResult{}, errs[i]
		}
		if best.Distance < 0 || dists[i] < best.Distance {
			best.Config = c.Config
			best.Distance = dists[i]
		}
	}
	return best, nil
}

// FitAllMC runs FitMC for every model kind concurrently and returns the
// fits sorted best-first. Per-kind results land in kind-indexed slots before
// sorting, so the output is independent of goroutine scheduling; on error,
// the first kind's (in Kinds order) error wins.
func FitAllMC(observed dist.RankCurve, spec FitSpec, seed uint64) ([]FitResult, error) {
	out := make([]FitResult, len(Kinds))
	errs := make([]error, len(Kinds))
	var wg sync.WaitGroup
	for i, k := range Kinds {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i], errs[i] = FitMC(k, observed, spec, seed)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Distance < out[j].Distance })
	return out, nil
}

// UserSweepMC evaluates the Monte Carlo distance while varying the user
// population, holding the other parameters at base (Figure 10's sweep).
// fractions scale the observed top-app downloads; d is rescaled so the
// total simulated volume tracks the observed total.
func UserSweepMC(kind Kind, observed dist.RankCurve, base Config, fractions []float64, seed uint64) ([]float64, error) {
	top := observed.Top()
	total := observed.Total()
	if top <= 0 || total <= 0 {
		return nil, fmt.Errorf("model: observed curve has no downloads")
	}
	out := make([]float64, len(fractions))
	errs := make([]error, len(fractions))
	var wg sync.WaitGroup
	for i, f := range fractions {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cfg := base
			cfg.Users = int(f * top)
			if cfg.Users < 1 {
				cfg.Users = 1
			}
			cfg.DownloadsPerUser = total / float64(cfg.Users)
			out[i], errs[i] = MCDistance(kind, cfg, observed, seed)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// FitAll fits every model kind to the observed curve and returns the
// results sorted by ascending distance (best first).
func FitAll(observed dist.RankCurve, spec FitSpec) ([]FitResult, error) {
	out := make([]FitResult, 0, len(Kinds))
	for _, k := range Kinds {
		f, err := Fit(k, observed, spec)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Distance < out[j].Distance })
	return out, nil
}

// UserSweep evaluates the best-fit distance as a function of the simulated
// user population, reproducing Figure 10. fractions scale the observed
// top-app download count; the returned distances correspond 1:1 with
// fractions.
func UserSweep(kind Kind, observed dist.RankCurve, spec FitSpec, fractions []float64) ([]float64, error) {
	top := observed.Top()
	if top <= 0 {
		return nil, fmt.Errorf("model: observed curve has no top value")
	}
	out := make([]float64, len(fractions))
	for i, f := range fractions {
		u := int(f * top)
		if u < 1 {
			u = 1
		}
		s := spec
		s.Users = []int{u}
		res, err := Fit(kind, observed, s)
		if err != nil {
			return nil, err
		}
		out[i] = res.Distance
	}
	return out, nil
}
