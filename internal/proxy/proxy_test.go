package proxy

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
)

// originAndProxy spins up an origin server and a proxy in front of it,
// returning a client configured to use the proxy plus the origin's capture
// of forwarded headers.
func originAndProxy(t *testing.T) (client *http.Client, originURL string, p *Proxy, lastHeaders *http.Header) {
	t.Helper()
	var captured http.Header
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		captured = r.Header.Clone()
		fmt.Fprint(w, "origin says hi")
	}))
	t.Cleanup(origin.Close)

	p = New("planetlab-cn-03", "cn")
	proxySrv := httptest.NewServer(p.Handler())
	t.Cleanup(proxySrv.Close)

	proxyURL, err := url.Parse(proxySrv.URL)
	if err != nil {
		t.Fatal(err)
	}
	client = &http.Client{Transport: &http.Transport{Proxy: http.ProxyURL(proxyURL)}}
	return client, origin.URL, p, &captured
}

func TestProxyForwards(t *testing.T) {
	client, originURL, p, captured := originAndProxy(t)
	resp, err := client.Get(originURL + "/path?q=1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "origin says hi" {
		t.Fatalf("body = %q", body)
	}
	if p.Requests() != 1 {
		t.Fatalf("proxy counted %d requests", p.Requests())
	}
	if via := captured.Get("Via"); via != "1.1 planetlab-cn-03" {
		t.Fatalf("Via = %q", via)
	}
	if xff := captured.Get("X-Forwarded-For"); xff == "" {
		t.Fatal("X-Forwarded-For missing")
	}
}

func TestProxyUpstreamError(t *testing.T) {
	p := New("node", "eu")
	proxySrv := httptest.NewServer(p.Handler())
	defer proxySrv.Close()
	proxyURL, _ := url.Parse(proxySrv.URL)
	client := &http.Client{Transport: &http.Transport{Proxy: http.ProxyURL(proxyURL)}}
	// Unroutable origin.
	resp, err := client.Get("http://127.0.0.1:1/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d, want 502", resp.StatusCode)
	}
	if p.Errors() != 1 {
		t.Fatalf("errors = %d", p.Errors())
	}
}

func TestProxyRejectsRelativeTarget(t *testing.T) {
	p := New("node", "eu")
	req := httptest.NewRequest(http.MethodGet, "/relative", nil)
	rec := httptest.NewRecorder()
	p.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d", rec.Code)
	}
}

func TestProxyRejectsConnect(t *testing.T) {
	p := New("node", "eu")
	req := httptest.NewRequest(http.MethodConnect, "example.com:443", nil)
	rec := httptest.NewRecorder()
	p.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("status %d", rec.Code)
	}
}

func TestPoolRotation(t *testing.T) {
	pool, err := NewPool([]string{"http://a:1", "http://b:2", "http://c:3"})
	if err != nil {
		t.Fatal(err)
	}
	if pool.Size() != 3 {
		t.Fatalf("size = %d", pool.Size())
	}
	hosts := map[string]int{}
	for i := 0; i < 9; i++ {
		hosts[pool.Pick().Host]++
	}
	for _, h := range []string{"a:1", "b:2", "c:3"} {
		if hosts[h] != 3 {
			t.Fatalf("rotation uneven: %v", hosts)
		}
	}
}

func TestPoolErrors(t *testing.T) {
	if _, err := NewPool(nil); err == nil {
		t.Fatal("empty pool accepted")
	}
	if _, err := NewPool([]string{"https://secure:443"}); err == nil {
		t.Fatal("https proxy accepted")
	}
	if _, err := NewPool([]string{"://bad"}); err == nil {
		t.Fatal("unparsable URL accepted")
	}
}

func TestProxyFunc(t *testing.T) {
	pool, _ := NewPool([]string{"http://a:1", "http://b:2"})
	f := pool.ProxyFunc()
	u1, err := f(nil)
	if err != nil {
		t.Fatal(err)
	}
	u2, _ := f(nil)
	if u1.Host == u2.Host {
		t.Fatal("ProxyFunc did not rotate")
	}
}
