// Package proxy implements a minimal HTTP forward proxy, standing in for
// the ~100 PlanetLab nodes the paper's crawlers routed requests through to
// avoid IP blacklisting and regional rate limits (Figure 1).
//
// The proxy handles plain-HTTP forwarding (GET et al. with absolute-form
// request targets) — sufficient for the in-process crawling pipeline —
// and counts the requests it relays so tests and experiments can verify
// load spreading across the fleet.
package proxy

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"sync/atomic"
)

// Proxy is a forward HTTP proxy. Create with New, then serve its Handler
// (typically via httptest.Server or http.Server).
type Proxy struct {
	// Name labels the node (e.g. "planetlab-cn-03").
	Name string
	// Region is a free-form location tag; the paper needed China-located
	// proxies for the Chinese stores.
	Region string

	transport http.RoundTripper
	requests  atomic.Int64
	errors    atomic.Int64
}

// New creates a named proxy using the default HTTP transport.
func New(name, region string) *Proxy {
	return &Proxy{Name: name, Region: region, transport: http.DefaultTransport}
}

// SetTransport overrides the upstream transport (tests inject fakes).
func (p *Proxy) SetTransport(rt http.RoundTripper) { p.transport = rt }

// Requests returns the number of requests relayed so far.
func (p *Proxy) Requests() int64 { return p.requests.Load() }

// Errors returns the number of upstream failures.
func (p *Proxy) Errors() int64 { return p.errors.Load() }

// Handler returns the proxy's HTTP handler.
func (p *Proxy) Handler() http.Handler {
	return http.HandlerFunc(p.serve)
}

// hopHeaders are stripped when forwarding, per RFC 7230 §6.1.
var hopHeaders = []string{
	"Connection", "Keep-Alive", "Proxy-Authenticate", "Proxy-Authorization",
	"Proxy-Connection", "Te", "Trailer", "Transfer-Encoding", "Upgrade",
}

func (p *Proxy) serve(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodConnect {
		// CONNECT tunneling (HTTPS) is out of scope for the simulation.
		http.Error(w, "CONNECT not supported", http.StatusMethodNotAllowed)
		return
	}
	if !r.URL.IsAbs() {
		http.Error(w, "proxy requires absolute-form request target", http.StatusBadRequest)
		return
	}
	p.requests.Add(1)

	out, err := http.NewRequestWithContext(r.Context(), r.Method, r.URL.String(), r.Body)
	if err != nil {
		p.errors.Add(1)
		http.Error(w, fmt.Sprintf("proxy: %v", err), http.StatusBadGateway)
		return
	}
	copyHeader(out.Header, r.Header)
	for _, h := range hopHeaders {
		out.Header.Del(h)
	}
	// Record the chain so the origin can attribute the request to the
	// original client (and rate-limit per proxy node, as the real stores
	// effectively did).
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		out.Header.Set("X-Forwarded-For", host+","+p.Name)
	} else {
		out.Header.Set("X-Forwarded-For", p.Name)
	}
	out.Header.Set("Via", "1.1 "+p.Name)

	resp, err := p.transport.RoundTrip(out)
	if err != nil {
		p.errors.Add(1)
		http.Error(w, fmt.Sprintf("proxy upstream: %v", err), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	copyHeader(w.Header(), resp.Header)
	for _, h := range hopHeaders {
		w.Header().Del(h)
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body) //nolint:errcheck // best-effort body relay
}

func copyHeader(dst, src http.Header) {
	for k, vv := range src {
		for _, v := range vv {
			dst.Add(k, v)
		}
	}
}

// Pool is a set of proxies the crawler rotates through, with round-robin
// selection — the paper's crawlers "randomly select one of these proxies"
// per request; round-robin gives the same spreading deterministically.
type Pool struct {
	urls []*url.URL
	next atomic.Uint64
}

// NewPool parses the given proxy base URLs (e.g. "http://127.0.0.1:9001").
func NewPool(rawURLs []string) (*Pool, error) {
	if len(rawURLs) == 0 {
		return nil, fmt.Errorf("proxy: empty pool")
	}
	p := &Pool{}
	for _, raw := range rawURLs {
		u, err := url.Parse(raw)
		if err != nil {
			return nil, fmt.Errorf("proxy: bad URL %q: %w", raw, err)
		}
		if u.Scheme != "http" {
			return nil, fmt.Errorf("proxy: unsupported scheme %q in %q", u.Scheme, raw)
		}
		p.urls = append(p.urls, u)
	}
	return p, nil
}

// Size returns the number of proxies in the pool.
func (p *Pool) Size() int { return len(p.urls) }

// At returns the i-th proxy URL (modulo the pool size) — index-addressed
// access for health-scored selectors that manage their own rotation.
func (p *Pool) At(i int) *url.URL { return p.urls[i%len(p.urls)] }

// Pick returns the next proxy URL in rotation.
func (p *Pool) Pick() *url.URL {
	i := p.next.Add(1) - 1
	return p.urls[i%uint64(len(p.urls))]
}

// ProxyFunc adapts the pool to http.Transport.Proxy.
func (p *Pool) ProxyFunc() func(*http.Request) (*url.URL, error) {
	return func(*http.Request) (*url.URL, error) {
		return p.Pick(), nil
	}
}
