// Package db implements the crawler's local database: per-app records with
// daily statistics and comments, safe for concurrent crawler writers, with
// JSONL persistence so crawl sessions can resume and analyses can run
// offline — the role of the "local database" in the paper's Figure 1.
package db

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
)

// AppRecord is the stored state of one app, updated by daily crawls.
type AppRecord struct {
	// ID is the store's app identifier.
	ID int32 `json:"id"`
	// Name is the display name.
	Name string `json:"name"`
	// Category is the store's category name.
	Category string `json:"category"`
	// Developer is the publisher account name.
	Developer string `json:"developer"`
	// Paid reports whether the app requires payment.
	Paid bool `json:"paid"`
	// Price is the current list price.
	Price float64 `json:"price"`
	// HasAds reports a detected advertising library.
	HasAds bool `json:"has_ads"`
	// Daily holds one entry per crawl day that observed the app.
	Daily []DailyStat `json:"daily"`
	// APKVersions lists the version numbers whose packages were fetched;
	// the crawler downloads each version exactly once.
	APKVersions []int `json:"apk_versions,omitempty"`
	// APKBytes accumulates the package bytes transferred for this app.
	APKBytes int64 `json:"apk_bytes,omitempty"`
}

// DailyStat is one day's observation of an app.
type DailyStat struct {
	// Day is the crawl day index.
	Day int `json:"day"`
	// Downloads is the cumulative download count shown by the store.
	Downloads int64 `json:"downloads"`
	// Version is the app's version counter.
	Version int `json:"version"`
	// Price is the day's list price.
	Price float64 `json:"price"`
}

// CommentRecord is one crawled user comment.
type CommentRecord struct {
	App    int32 `json:"app"`
	User   int32 `json:"user"`
	Rating int8  `json:"rating"`
	// UnixTime is the comment timestamp in Unix seconds.
	UnixTime int64 `json:"t"`
}

// DB is an in-memory crawl database. All methods are safe for concurrent
// use.
type DB struct {
	mu       sync.RWMutex
	apps     map[int32]*AppRecord
	comments []CommentRecord
	// commentSeen deduplicates comments across daily re-crawls.
	commentSeen map[commentKey]struct{}
}

type commentKey struct {
	app, user int32
	t         int64
}

// New creates an empty database.
func New() *DB {
	return &DB{
		apps:        map[int32]*AppRecord{},
		commentSeen: map[commentKey]struct{}{},
	}
}

// UpsertApp merges an app observation: static fields are refreshed and the
// daily stat is appended (or replaced when the same day is re-crawled).
func (d *DB) UpsertApp(rec AppRecord, stat DailyStat) {
	d.mu.Lock()
	defer d.mu.Unlock()
	cur, ok := d.apps[rec.ID]
	if !ok {
		cur = &AppRecord{ID: rec.ID}
		d.apps[rec.ID] = cur
	}
	cur.Name = rec.Name
	cur.Category = rec.Category
	cur.Developer = rec.Developer
	cur.Paid = rec.Paid
	cur.Price = rec.Price
	cur.HasAds = rec.HasAds
	if n := len(cur.Daily); n > 0 && cur.Daily[n-1].Day == stat.Day {
		cur.Daily[n-1] = stat
		return
	}
	cur.Daily = append(cur.Daily, stat)
}

// HasAPK reports whether the given app version's package was already
// fetched.
func (d *DB) HasAPK(id int32, version int) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	rec, ok := d.apps[id]
	if !ok {
		return false
	}
	for _, v := range rec.APKVersions {
		if v == version {
			return true
		}
	}
	return false
}

// RecordAPK marks an app version's package as fetched, accumulating the
// transferred byte count. The app record must already exist (UpsertApp
// first); unknown apps are ignored and reported as false.
func (d *DB) RecordAPK(id int32, version int, bytes int64) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	rec, ok := d.apps[id]
	if !ok {
		return false
	}
	for _, v := range rec.APKVersions {
		if v == version {
			return false
		}
	}
	rec.APKVersions = append(rec.APKVersions, version)
	rec.APKBytes += bytes
	return true
}

// APKTotals returns the number of fetched packages and the total bytes
// transferred across all apps.
func (d *DB) APKTotals() (packages int, bytes int64) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	for _, rec := range d.apps {
		packages += len(rec.APKVersions)
		bytes += rec.APKBytes
	}
	return packages, bytes
}

// AddComment stores a comment unless an identical (app, user, time) triple
// was already recorded. It reports whether the comment was new.
func (d *DB) AddComment(c CommentRecord) bool {
	k := commentKey{c.App, c.User, c.UnixTime}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.commentSeen[k]; dup {
		return false
	}
	d.commentSeen[k] = struct{}{}
	d.comments = append(d.comments, c)
	return true
}

// NumApps returns the number of known apps.
func (d *DB) NumApps() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.apps)
}

// NumComments returns the number of stored comments.
func (d *DB) NumComments() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.comments)
}

// App returns a copy of the record for the given app and whether it exists.
func (d *DB) App(id int32) (AppRecord, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	rec, ok := d.apps[id]
	if !ok {
		return AppRecord{}, false
	}
	cp := *rec
	cp.Daily = append([]DailyStat(nil), rec.Daily...)
	cp.APKVersions = append([]int(nil), rec.APKVersions...)
	return cp, true
}

// Apps returns copies of all records sorted by ID.
func (d *DB) Apps() []AppRecord {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]AppRecord, 0, len(d.apps))
	for _, rec := range d.apps {
		cp := *rec
		cp.Daily = append([]DailyStat(nil), rec.Daily...)
		cp.APKVersions = append([]int(nil), rec.APKVersions...)
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Comments returns a copy of all stored comments in insertion order.
func (d *DB) Comments() []CommentRecord {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return append([]CommentRecord(nil), d.comments...)
}

// DownloadsOnDay returns per-app cumulative downloads as of the given crawl
// day, covering apps observed on or before that day. The slice is indexed
// by position in the sorted-ID app list; ids carries the matching app IDs.
func (d *DB) DownloadsOnDay(day int) (ids []int32, downloads []int64) {
	for _, rec := range d.Apps() {
		var best *DailyStat
		for i := range rec.Daily {
			if rec.Daily[i].Day <= day {
				best = &rec.Daily[i]
			}
		}
		if best == nil {
			continue
		}
		ids = append(ids, rec.ID)
		downloads = append(downloads, best.Downloads)
	}
	return ids, downloads
}

// jsonlLine is the persistence envelope: one typed record per line.
type jsonlLine struct {
	App     *AppRecord     `json:"app,omitempty"`
	Comment *CommentRecord `json:"comment,omitempty"`
}

// WriteTo streams the database as JSONL. Apps are written sorted by ID,
// then comments in insertion order.
func (d *DB) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	var n int64
	for _, rec := range d.Apps() {
		rec := rec
		if err := enc.Encode(jsonlLine{App: &rec}); err != nil {
			return n, err
		}
		n++
	}
	for _, c := range d.Comments() {
		c := c
		if err := enc.Encode(jsonlLine{Comment: &c}); err != nil {
			return n, err
		}
		n++
	}
	return n, bw.Flush()
}

// ReadFrom loads JSONL lines produced by WriteTo into the database,
// merging with existing content.
func (d *DB) ReadFrom(r io.Reader) (int64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	var n int64
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var l jsonlLine
		if err := json.Unmarshal(line, &l); err != nil {
			return n, fmt.Errorf("db: line %d: %w", n+1, err)
		}
		switch {
		case l.App != nil:
			d.mu.Lock()
			cp := *l.App
			cp.Daily = append([]DailyStat(nil), l.App.Daily...)
			cp.APKVersions = append([]int(nil), l.App.APKVersions...)
			d.apps[cp.ID] = &cp
			d.mu.Unlock()
		case l.Comment != nil:
			d.AddComment(*l.Comment)
		}
		n++
	}
	return n, sc.Err()
}

// SaveFile writes the database to path atomically (write to temp file in
// the same directory, then rename).
func (d *DB) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := d.WriteTo(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile reads a database file produced by SaveFile.
func LoadFile(path string) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	d := New()
	if _, err := d.ReadFrom(f); err != nil {
		return nil, err
	}
	return d, nil
}
