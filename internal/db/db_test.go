package db

import (
	"bytes"
	"path/filepath"
	"sync"
	"testing"
)

func sampleApp(id int32) (AppRecord, DailyStat) {
	return AppRecord{
		ID: id, Name: "app", Category: "fun/games", Developer: "dev-0001",
		Paid: id%2 == 0, Price: 1.99, HasAds: true,
	}, DailyStat{Day: 0, Downloads: 100, Version: 1, Price: 1.99}
}

func TestUpsertAndGet(t *testing.T) {
	d := New()
	rec, stat := sampleApp(1)
	d.UpsertApp(rec, stat)
	got, ok := d.App(1)
	if !ok {
		t.Fatal("app missing")
	}
	if got.Category != "fun/games" || len(got.Daily) != 1 {
		t.Fatalf("record = %+v", got)
	}
	// Re-crawl same day replaces the stat.
	d.UpsertApp(rec, DailyStat{Day: 0, Downloads: 150, Version: 1, Price: 1.99})
	got, _ = d.App(1)
	if len(got.Daily) != 1 || got.Daily[0].Downloads != 150 {
		t.Fatalf("same-day upsert wrong: %+v", got.Daily)
	}
	// Next day appends.
	d.UpsertApp(rec, DailyStat{Day: 1, Downloads: 200, Version: 2, Price: 2.49})
	got, _ = d.App(1)
	if len(got.Daily) != 2 || got.Daily[1].Version != 2 {
		t.Fatalf("next-day upsert wrong: %+v", got.Daily)
	}
}

func TestAppCopyIsolation(t *testing.T) {
	d := New()
	rec, stat := sampleApp(1)
	d.UpsertApp(rec, stat)
	got, _ := d.App(1)
	got.Daily[0].Downloads = 999999
	again, _ := d.App(1)
	if again.Daily[0].Downloads == 999999 {
		t.Fatal("App returned shared storage")
	}
}

func TestCommentsDedup(t *testing.T) {
	d := New()
	c := CommentRecord{App: 1, User: 2, Rating: 5, UnixTime: 1000}
	if !d.AddComment(c) {
		t.Fatal("first insert rejected")
	}
	if d.AddComment(c) {
		t.Fatal("duplicate accepted")
	}
	c.UnixTime = 1001
	if !d.AddComment(c) {
		t.Fatal("distinct timestamp rejected")
	}
	if d.NumComments() != 2 {
		t.Fatalf("NumComments = %d", d.NumComments())
	}
}

func TestDownloadsOnDay(t *testing.T) {
	d := New()
	r1, _ := sampleApp(1)
	d.UpsertApp(r1, DailyStat{Day: 0, Downloads: 10})
	d.UpsertApp(r1, DailyStat{Day: 2, Downloads: 30})
	r2, _ := sampleApp(2)
	d.UpsertApp(r2, DailyStat{Day: 2, Downloads: 5})
	ids, dl := d.DownloadsOnDay(1)
	if len(ids) != 1 || ids[0] != 1 || dl[0] != 10 {
		t.Fatalf("day 1: ids=%v dl=%v", ids, dl)
	}
	ids, dl = d.DownloadsOnDay(2)
	if len(ids) != 2 || dl[0] != 30 || dl[1] != 5 {
		t.Fatalf("day 2: ids=%v dl=%v", ids, dl)
	}
}

func TestRoundTrip(t *testing.T) {
	d := New()
	for i := int32(0); i < 10; i++ {
		rec, stat := sampleApp(i)
		d.UpsertApp(rec, stat)
		d.UpsertApp(rec, DailyStat{Day: 1, Downloads: int64(100 + i)})
	}
	d.AddComment(CommentRecord{App: 1, User: 7, Rating: 4, UnixTime: 99})
	var buf bytes.Buffer
	n, err := d.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 11 {
		t.Fatalf("wrote %d lines, want 11", n)
	}
	d2 := New()
	if _, err := d2.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if d2.NumApps() != 10 || d2.NumComments() != 1 {
		t.Fatalf("loaded %d apps, %d comments", d2.NumApps(), d2.NumComments())
	}
	got, _ := d2.App(3)
	if len(got.Daily) != 2 || got.Daily[1].Downloads != 103 {
		t.Fatalf("loaded record wrong: %+v", got)
	}
}

func TestReadFromBadLine(t *testing.T) {
	d := New()
	if _, err := d.ReadFrom(bytes.NewBufferString("{not json\n")); err == nil {
		t.Fatal("bad JSONL accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "crawl.jsonl")
	d := New()
	rec, stat := sampleApp(5)
	d.UpsertApp(rec, stat)
	if err := d.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	d2, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if d2.NumApps() != 1 {
		t.Fatalf("loaded %d apps", d2.NumApps())
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.jsonl")); err == nil {
		t.Fatal("missing file loaded")
	}
}

func TestConcurrentWriters(t *testing.T) {
	d := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := int32(w*1000 + i)
				rec, stat := sampleApp(id)
				d.UpsertApp(rec, stat)
				d.AddComment(CommentRecord{App: id, User: int32(w), UnixTime: int64(i), Rating: 3})
			}
		}(w)
	}
	wg.Wait()
	if d.NumApps() != 1600 || d.NumComments() != 1600 {
		t.Fatalf("apps=%d comments=%d", d.NumApps(), d.NumComments())
	}
}

func TestAppsSorted(t *testing.T) {
	d := New()
	for _, id := range []int32{5, 1, 3} {
		rec, stat := sampleApp(id)
		d.UpsertApp(rec, stat)
	}
	apps := d.Apps()
	if apps[0].ID != 1 || apps[1].ID != 3 || apps[2].ID != 5 {
		t.Fatalf("apps not sorted: %v %v %v", apps[0].ID, apps[1].ID, apps[2].ID)
	}
}

func TestAPKTracking(t *testing.T) {
	d := New()
	rec, stat := sampleApp(1)
	d.UpsertApp(rec, stat)
	if d.HasAPK(1, 1) {
		t.Fatal("unfetched version reported present")
	}
	if !d.RecordAPK(1, 1, 5000) {
		t.Fatal("first record rejected")
	}
	if d.RecordAPK(1, 1, 5000) {
		t.Fatal("duplicate version recorded")
	}
	if !d.HasAPK(1, 1) {
		t.Fatal("fetched version missing")
	}
	if !d.RecordAPK(1, 2, 6000) {
		t.Fatal("new version rejected")
	}
	if d.RecordAPK(99, 1, 100) {
		t.Fatal("unknown app accepted")
	}
	pkgs, bytes := d.APKTotals()
	if pkgs != 2 || bytes != 11000 {
		t.Fatalf("totals = %d pkgs, %d bytes", pkgs, bytes)
	}
}

func TestAPKPersistence(t *testing.T) {
	d := New()
	rec, stat := sampleApp(3)
	d.UpsertApp(rec, stat)
	d.RecordAPK(3, 1, 1234)
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	d2 := New()
	if _, err := d2.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if !d2.HasAPK(3, 1) {
		t.Fatal("APK record lost in round trip")
	}
	got, _ := d2.App(3)
	if got.APKBytes != 1234 {
		t.Fatalf("APKBytes = %d", got.APKBytes)
	}
}
