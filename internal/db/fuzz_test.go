package db

import (
	"bytes"
	"testing"
)

// FuzzReadFrom exercises the JSONL loader with arbitrary input: it must
// never panic, and whatever loads must survive a write/read round trip.
func FuzzReadFrom(f *testing.F) {
	// Seed with realistic lines.
	var buf bytes.Buffer
	d := New()
	rec, stat := sampleApp(1)
	d.UpsertApp(rec, stat)
	d.RecordAPK(1, 1, 77)
	d.AddComment(CommentRecord{App: 1, User: 2, Rating: 5, UnixTime: 9})
	if _, err := d.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{"app":{"id":1}}` + "\n"))
	f.Add([]byte(`{"comment":{"app":1,"user":2,"rating":5,"t":10}}` + "\n"))
	f.Add([]byte("{}\n\n{}\n"))
	f.Add([]byte("not json at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		loaded := New()
		if _, err := loaded.ReadFrom(bytes.NewReader(data)); err != nil {
			return // malformed input is allowed to fail, not to panic
		}
		// Round trip whatever loaded.
		var out bytes.Buffer
		if _, err := loaded.WriteTo(&out); err != nil {
			t.Fatalf("WriteTo after successful load: %v", err)
		}
		again := New()
		if _, err := again.ReadFrom(&out); err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if again.NumApps() != loaded.NumApps() {
			t.Fatalf("round trip changed app count: %d -> %d", loaded.NumApps(), again.NumApps())
		}
	})
}
