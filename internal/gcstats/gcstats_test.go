package gcstats

import (
	"math"
	"runtime"
	"strings"
	"testing"
	"time"

	"planetapps/internal/metrics"
)

func TestReadPopulates(t *testing.T) {
	runtime.GC() // guarantee at least one cycle and one pause
	s := Read()
	if s.Cycles == 0 {
		t.Error("Cycles = 0 after an explicit runtime.GC")
	}
	if s.HeapObjects == 0 || s.HeapBytes == 0 {
		t.Errorf("heap occupancy empty: objects=%d bytes=%d", s.HeapObjects, s.HeapBytes)
	}
	if s.TotalCPUSeconds <= 0 {
		t.Errorf("TotalCPUSeconds = %v, want > 0", s.TotalCPUSeconds)
	}
	if len(s.PauseBounds) != len(s.PauseCounts)+1 {
		t.Fatalf("histogram shape: %d bounds vs %d counts", len(s.PauseBounds), len(s.PauseCounts))
	}
	if s.Pauses() == 0 {
		t.Error("no pauses recorded after an explicit runtime.GC")
	}
	if s.PauseTotal() <= 0 {
		t.Error("PauseTotal = 0 with non-empty histogram")
	}
}

func TestSinceDeltas(t *testing.T) {
	start := Read()
	for i := 0; i < 4; i++ {
		runtime.GC()
	}
	d := Read().Since(start)
	if d.Cycles < 4 {
		t.Errorf("Since: %d cycles across 4 explicit GCs", d.Cycles)
	}
	if d.Pauses() == 0 {
		t.Error("Since: pause histogram delta empty across explicit GCs")
	}
	if d.GCCPUSeconds < 0 || d.TotalCPUSeconds <= 0 {
		t.Errorf("Since: cpu deltas gc=%v total=%v", d.GCCPUSeconds, d.TotalCPUSeconds)
	}
	if f := d.CPUFraction(); f < 0 || f > 1 {
		t.Errorf("CPUFraction = %v, want within [0,1]", f)
	}
	// The delta's quantiles must describe only the window: bounded above
	// by the cumulative distribution's max and monotone in q.
	if d.PauseQuantile(0.5) > d.PauseQuantile(0.99) {
		t.Errorf("quantiles not monotone: p50=%v p99=%v", d.PauseQuantile(0.5), d.PauseQuantile(0.99))
	}
}

func TestPauseQuantileSynthetic(t *testing.T) {
	s := Stats{
		PauseBounds: []float64{math.Inf(-1), 1e-6, 1e-5, 1e-4, math.Inf(1)},
		PauseCounts: []uint64{0, 90, 9, 1},
	}
	if got := s.PauseQuantile(0.50); got != time.Duration(1e-5*1e9) {
		t.Errorf("p50 = %v, want 10µs", got)
	}
	if got := s.PauseQuantile(0.99); got != time.Duration(1e-4*1e9) {
		t.Errorf("p99 = %v, want 100µs", got)
	}
	// The +Inf bucket reports its finite lower bound.
	if got := s.PauseQuantile(1.0); got != time.Duration(1e-4*1e9) {
		t.Errorf("p100 = %v, want 100µs (finite bound of +Inf bucket)", got)
	}
	if got := s.Pauses(); got != 100 {
		t.Errorf("Pauses = %d, want 100", got)
	}
}

func TestPublishSetsGauges(t *testing.T) {
	runtime.GC()
	reg := metrics.NewRegistry()
	Publish(reg)
	if v := reg.Gauge("go_gc_heap_objects").Value(); v <= 0 {
		t.Errorf("go_gc_heap_objects = %d, want > 0", v)
	}
	if v := reg.Gauge("go_gc_cycles_total").Value(); v <= 0 {
		t.Errorf("go_gc_cycles_total = %d, want > 0", v)
	}
	var sb strings.Builder
	reg.WriteText(&sb)
	if !strings.Contains(sb.String(), "go_gc_pause_p99_ns") {
		t.Error("exposition missing go_gc_pause_p99_ns")
	}
}
