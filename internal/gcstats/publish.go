package gcstats

import "planetapps/internal/metrics"

// Publish samples the runtime and sets the collector gauges on reg.
// Gauges are int64, so fractional readings pick integer units: pause
// quantiles in nanoseconds, the GC CPU share in parts per million.
// Call it from a scrape handler so every /metrics page carries a
// current view of what the collector costs.
//
//	go_gc_cycles_total     completed GC cycles since process start
//	go_gc_heap_objects     live objects the mark phase must trace
//	go_gc_heap_bytes       bytes occupied by live heap objects
//	go_gc_pause_p50_ns     median stop-the-world pause
//	go_gc_pause_p99_ns     p99 stop-the-world pause
//	go_gc_pause_total_ns   estimated summed pause time (histogram midpoints)
//	go_gc_cpu_ppm          share of all CPU time spent in the collector
func Publish(reg *metrics.Registry) {
	s := Read()
	reg.Gauge("go_gc_cycles_total").Set(int64(s.Cycles))
	reg.Gauge("go_gc_heap_objects").Set(int64(s.HeapObjects))
	reg.Gauge("go_gc_heap_bytes").Set(int64(s.HeapBytes))
	reg.Gauge("go_gc_pause_p50_ns").Set(int64(s.PauseQuantile(0.50)))
	reg.Gauge("go_gc_pause_p99_ns").Set(int64(s.PauseQuantile(0.99)))
	reg.Gauge("go_gc_pause_total_ns").Set(int64(s.PauseTotal()))
	reg.Gauge("go_gc_cpu_ppm").Set(int64(s.CPUFraction() * 1e6))
}
