// Package gcstats samples the Go runtime's collector telemetry
// (runtime/metrics) into a small value type that benchmark harnesses and
// servers can diff across a measurement window. It exists because the
// serving tier's remaining cost at large catalog sizes is the GC mark
// phase itself: to claim that arena-backed snapshot storage "takes the
// GC out of serving" we need pause distributions, GC CPU share, and
// live-object counts captured the same way everywhere — loadgen reports,
// /metrics gauges, CI gates, and the BENCH_* harnesses.
//
// All readings come from runtime/metrics, which is lock-free and does
// not stop the world, so sampling is cheap enough for scrape handlers.
// Total pause time is estimated from the stop-the-world pause histogram
// (bucket midpoints); quantiles come from the same histogram.
package gcstats

import (
	"math"
	"runtime/metrics"
	"time"
)

// The runtime/metrics keys we sample. /sched/pauses/total/gc is the
// non-deprecated name for the GC stop-the-world pause histogram.
const (
	keyCycles      = "/gc/cycles/total:gc-cycles"
	keyHeapObjects = "/gc/heap/objects:objects"
	keyHeapBytes   = "/memory/classes/heap/objects:bytes"
	keyGCCPU       = "/cpu/classes/gc/total:cpu-seconds"
	keyTotalCPU    = "/cpu/classes/total:cpu-seconds"
	keyPauses      = "/sched/pauses/total/gc:seconds"
)

// Stats is one sample of collector state. Cycles, CPU seconds, and the
// pause histogram are cumulative since process start; HeapObjects and
// HeapBytes are instantaneous occupancy. Since turns two samples into a
// window delta.
type Stats struct {
	Cycles          uint64
	GCCPUSeconds    float64
	TotalCPUSeconds float64
	HeapObjects     uint64
	HeapBytes       uint64

	// The GC stop-the-world pause distribution: PauseCounts[i] pauses
	// fell in (PauseBounds[i], PauseBounds[i+1]]. Bounds are seconds and
	// may include ±Inf edge buckets.
	PauseBounds []float64
	PauseCounts []uint64
}

// Read samples the runtime. The histogram is deep-copied so the sample
// stays valid across later Reads.
func Read() Stats {
	samples := []metrics.Sample{
		{Name: keyCycles},
		{Name: keyHeapObjects},
		{Name: keyHeapBytes},
		{Name: keyGCCPU},
		{Name: keyTotalCPU},
		{Name: keyPauses},
	}
	metrics.Read(samples)
	var s Stats
	s.Cycles = sampleUint(samples[0])
	s.HeapObjects = sampleUint(samples[1])
	s.HeapBytes = sampleUint(samples[2])
	s.GCCPUSeconds = sampleFloat(samples[3])
	s.TotalCPUSeconds = sampleFloat(samples[4])
	if samples[5].Value.Kind() == metrics.KindFloat64Histogram {
		if h := samples[5].Value.Float64Histogram(); h != nil {
			s.PauseBounds = append([]float64(nil), h.Buckets...)
			s.PauseCounts = append([]uint64(nil), h.Counts...)
		}
	}
	return s
}

func sampleUint(s metrics.Sample) uint64 {
	if s.Value.Kind() == metrics.KindUint64 {
		return s.Value.Uint64()
	}
	return 0
}

func sampleFloat(s metrics.Sample) float64 {
	if s.Value.Kind() == metrics.KindFloat64 {
		return s.Value.Float64()
	}
	return 0
}

// Since returns the window delta end - start: cumulative fields are
// subtracted (including per-bucket pause counts) while the occupancy
// fields keep end's instantaneous values. The receiver is the window
// end; start must come from the same process.
func (s Stats) Since(start Stats) Stats {
	d := s
	d.Cycles -= start.Cycles
	d.GCCPUSeconds -= start.GCCPUSeconds
	d.TotalCPUSeconds -= start.TotalCPUSeconds
	d.PauseCounts = append([]uint64(nil), s.PauseCounts...)
	for i := range d.PauseCounts {
		if i < len(start.PauseCounts) && len(start.PauseBounds) == len(s.PauseBounds) {
			d.PauseCounts[i] -= start.PauseCounts[i]
		}
	}
	return d
}

// Pauses returns how many stop-the-world pauses the sample covers.
func (s Stats) Pauses() uint64 {
	var n uint64
	for _, c := range s.PauseCounts {
		n += c
	}
	return n
}

// PauseTotal estimates the summed stop-the-world pause time from the
// histogram (bucket midpoints; edge buckets use their finite bound).
func (s Stats) PauseTotal() time.Duration {
	var sec float64
	for i, c := range s.PauseCounts {
		if c == 0 || i+1 >= len(s.PauseBounds) {
			continue
		}
		lo, hi := s.PauseBounds[i], s.PauseBounds[i+1]
		mid := midpoint(lo, hi)
		sec += float64(c) * mid
	}
	return time.Duration(sec * float64(time.Second))
}

func midpoint(lo, hi float64) float64 {
	loInf := math.IsInf(lo, 0)
	hiInf := math.IsInf(hi, 0)
	switch {
	case loInf && hiInf:
		return 0
	case loInf:
		return hi
	case hiInf:
		return lo
	default:
		return (lo + hi) / 2
	}
}

// PauseQuantile returns the q-quantile (0..1) of the pause distribution,
// reported as the upper bound of the bucket the quantile falls in.
func (s Stats) PauseQuantile(q float64) time.Duration {
	total := s.Pauses()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, c := range s.PauseCounts {
		seen += c
		if seen >= rank && i+1 < len(s.PauseBounds) {
			hi := s.PauseBounds[i+1]
			if math.IsInf(hi, 0) {
				hi = s.PauseBounds[i]
			}
			return time.Duration(hi * float64(time.Second))
		}
	}
	return 0
}

// CPUFraction returns the share of total CPU time the window spent in
// the collector (0 when the window saw no CPU time at all).
func (s Stats) CPUFraction() float64 {
	if s.TotalCPUSeconds <= 0 {
		return 0
	}
	return s.GCCPUSeconds / s.TotalCPUSeconds
}
