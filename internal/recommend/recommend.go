// Package recommend implements the recommendation systems §7 of the paper
// discusses: a classic user-based collaborative filter ("a typical
// recommendation system follows a collaborative filtering method"), a
// popularity baseline, and the clustering-aware recommender the paper
// proposes — one that "capitalizes on the temporal affinity of users to
// app categories" by suggesting popular not-yet-downloaded apps from the
// user's recently active categories.
//
// Recommenders are evaluated by next-download hit rate: train on each
// user's history prefix, ask for k suggestions, score whether the user's
// actual next download is among them.
package recommend

import (
	"fmt"
	"sort"
)

// Recommender suggests apps for a user given the user's download history
// (app indices, oldest first). Implementations must not mutate history.
type Recommender interface {
	// Name identifies the recommender in reports.
	Name() string
	// Recommend returns up to k app indices, best first, excluding apps
	// already in history.
	Recommend(history []int32, k int) []int32
}

// Popularity recommends the globally most-downloaded apps the user lacks —
// the "bombard them with the same set of popular apps" strawman §7 calls
// out.
type Popularity struct {
	// ranked holds app indices sorted by descending download count.
	ranked []int32
}

// NewPopularity builds the baseline from per-app download counts.
func NewPopularity(downloads []int64) *Popularity {
	r := &Popularity{ranked: rankByCount(downloads)}
	return r
}

func rankByCount(downloads []int64) []int32 {
	idx := make([]int32, len(downloads))
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return downloads[idx[a]] > downloads[idx[b]]
	})
	return idx
}

// Name implements Recommender.
func (p *Popularity) Name() string { return "popularity" }

// Recommend implements Recommender.
func (p *Popularity) Recommend(history []int32, k int) []int32 {
	owned := ownedSet(history)
	out := make([]int32, 0, k)
	for _, app := range p.ranked {
		if len(out) == k {
			break
		}
		if _, ok := owned[app]; !ok {
			out = append(out, app)
		}
	}
	return out
}

func ownedSet(history []int32) map[int32]struct{} {
	m := make(map[int32]struct{}, len(history))
	for _, a := range history {
		m[a] = struct{}{}
	}
	return m
}

// Collaborative is a user-based k-nearest-neighbour collaborative filter:
// users similar to the target (by Jaccard similarity of download sets)
// vote for the apps they own that the target lacks.
type Collaborative struct {
	// users holds every training user's download set.
	users []map[int32]struct{}
	// invert maps app -> training users who own it, to find candidate
	// neighbours quickly.
	invert map[int32][]int32
	// Neighbours is the kNN width (default 20).
	Neighbours int
}

// NewCollaborative indexes the training users' histories.
func NewCollaborative(histories [][]int32) *Collaborative {
	c := &Collaborative{invert: map[int32][]int32{}, Neighbours: 20}
	for ui, h := range histories {
		set := ownedSet(h)
		c.users = append(c.users, set)
		for app := range set {
			c.invert[app] = append(c.invert[app], int32(ui))
		}
	}
	return c
}

// Name implements Recommender.
func (c *Collaborative) Name() string { return "collaborative" }

// Recommend implements Recommender.
func (c *Collaborative) Recommend(history []int32, k int) []int32 {
	owned := ownedSet(history)
	if len(owned) == 0 {
		return nil
	}
	// Candidate neighbours: anyone sharing at least one app.
	overlap := map[int32]int{}
	for app := range owned {
		for _, u := range c.invert[app] {
			overlap[u]++
		}
	}
	type neighbour struct {
		user int32
		sim  float64
	}
	ns := make([]neighbour, 0, len(overlap))
	for u, inter := range overlap {
		union := len(owned) + len(c.users[u]) - inter
		if union == 0 {
			continue
		}
		ns = append(ns, neighbour{u, float64(inter) / float64(union)})
	}
	sort.Slice(ns, func(a, b int) bool {
		if ns[a].sim != ns[b].sim {
			return ns[a].sim > ns[b].sim
		}
		return ns[a].user < ns[b].user
	})
	if len(ns) > c.Neighbours {
		ns = ns[:c.Neighbours]
	}
	// Weighted votes from neighbours.
	votes := map[int32]float64{}
	for _, n := range ns {
		for app := range c.users[n.user] {
			if _, has := owned[app]; !has {
				votes[app] += n.sim
			}
		}
	}
	return topK(votes, k)
}

func topK(votes map[int32]float64, k int) []int32 {
	type scored struct {
		app int32
		v   float64
	}
	s := make([]scored, 0, len(votes))
	for app, v := range votes {
		s = append(s, scored{app, v})
	}
	sort.Slice(s, func(a, b int) bool {
		if s[a].v != s[b].v {
			return s[a].v > s[b].v
		}
		return s[a].app < s[b].app
	})
	if len(s) > k {
		s = s[:k]
	}
	out := make([]int32, len(s))
	for i := range s {
		out[i] = s[i].app
	}
	return out
}

// ClusterAware is the paper's proposal: suggest the most popular apps the
// user lacks from the user's recently active categories, weighting recent
// categories higher ("the recommendation system can suggest apps related
// to the most recent interests of a user, instead of apps related to older
// downloads").
type ClusterAware struct {
	categoryOf func(int32) int32
	// rankedByCat[c] holds category c's apps by descending downloads.
	rankedByCat map[int32][]int32
	// RecentWindow is how many trailing downloads define the user's
	// active categories (default 5).
	RecentWindow int
}

// NewClusterAware builds the recommender from per-app download counts and
// the store's category classification.
func NewClusterAware(downloads []int64, categoryOf func(int32) int32) *ClusterAware {
	r := &ClusterAware{
		categoryOf:   categoryOf,
		rankedByCat:  map[int32][]int32{},
		RecentWindow: 5,
	}
	for _, app := range rankByCount(downloads) {
		c := categoryOf(app)
		r.rankedByCat[c] = append(r.rankedByCat[c], app)
	}
	return r
}

// Name implements Recommender.
func (r *ClusterAware) Name() string { return "cluster-aware" }

// Recommend implements Recommender.
func (r *ClusterAware) Recommend(history []int32, k int) []int32 {
	if len(history) == 0 {
		return nil
	}
	owned := ownedSet(history)
	// Active categories, most recent first, deduplicated.
	var cats []int32
	seen := map[int32]struct{}{}
	for i := len(history) - 1; i >= 0 && len(cats) < r.RecentWindow; i-- {
		c := r.categoryOf(history[i])
		if _, dup := seen[c]; dup {
			continue
		}
		seen[c] = struct{}{}
		cats = append(cats, c)
	}
	// Round-robin across active categories, most recent category first,
	// taking each category's most popular unowned apps.
	cursors := make([]int, len(cats))
	out := make([]int32, 0, k)
	for len(out) < k {
		progressed := false
		for ci, c := range cats {
			if len(out) == k {
				break
			}
			apps := r.rankedByCat[c]
			for cursors[ci] < len(apps) {
				app := apps[cursors[ci]]
				cursors[ci]++
				if _, has := owned[app]; !has {
					out = append(out, app)
					progressed = true
					break
				}
			}
		}
		if !progressed {
			break
		}
	}
	return out
}

// EvalResult reports one recommender's next-download hit rate.
type EvalResult struct {
	Recommender string
	// K is the suggestion list length.
	K int
	// Trials is the number of (prefix, next download) evaluations.
	Trials int
	// Hits counts trials where the next download was suggested.
	Hits int
}

// HitRate returns hits/trials as a percentage.
func (e EvalResult) HitRate() float64 {
	if e.Trials == 0 {
		return 0
	}
	return 100 * float64(e.Hits) / float64(e.Trials)
}

// Evaluate scores recommenders by next-download prediction over test users:
// for each test history of length >= 2, every split point trains on the
// prefix and checks whether the next download appears in the top-k
// suggestions. minPrefix sets the shortest prefix evaluated (>= 1).
func Evaluate(recs []Recommender, testHistories [][]int32, k, minPrefix int) ([]EvalResult, error) {
	if k < 1 {
		return nil, fmt.Errorf("recommend: k = %d", k)
	}
	if minPrefix < 1 {
		minPrefix = 1
	}
	out := make([]EvalResult, len(recs))
	for i, r := range recs {
		out[i] = EvalResult{Recommender: r.Name(), K: k}
	}
	for _, h := range testHistories {
		for split := minPrefix; split < len(h); split++ {
			prefix, next := h[:split], h[split]
			for i, r := range recs {
				out[i].Trials++
				for _, s := range r.Recommend(prefix, k) {
					if s == next {
						out[i].Hits++
						break
					}
				}
			}
		}
	}
	return out, nil
}
