package recommend

import (
	"testing"

	"planetapps/internal/model"
	"planetapps/internal/rng"
)

func TestPopularityBasics(t *testing.T) {
	// Downloads make app 2 most popular, then 0, then 1.
	p := NewPopularity([]int64{50, 10, 100})
	got := p.Recommend(nil, 2)
	if len(got) != 2 || got[0] != 2 || got[1] != 0 {
		t.Fatalf("recommendations = %v", got)
	}
	// Owned apps are excluded.
	got = p.Recommend([]int32{2}, 2)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("with owned: %v", got)
	}
	// k larger than candidates.
	got = p.Recommend([]int32{0, 1, 2}, 5)
	if len(got) != 0 {
		t.Fatalf("fully-owned user got %v", got)
	}
}

func TestCollaborativeFindsNeighbourApps(t *testing.T) {
	// Users 0 and 1 share apps {1,2}; user 0 also has 3. A new user with
	// {1,2} should be recommended 3.
	c := NewCollaborative([][]int32{
		{1, 2, 3},
		{1, 2},
		{7, 8}, // unrelated user
	})
	got := c.Recommend([]int32{1, 2}, 1)
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("recommendations = %v", got)
	}
	// A user with no overlap gets nothing.
	if got := c.Recommend([]int32{99}, 3); len(got) != 0 {
		t.Fatalf("no-overlap user got %v", got)
	}
	if got := c.Recommend(nil, 3); got != nil {
		t.Fatalf("empty history got %v", got)
	}
}

func TestCollaborativeWeighting(t *testing.T) {
	// The more similar neighbour's exclusive app should win the vote.
	c := NewCollaborative([][]int32{
		{1, 2, 3, 10}, // similar to target {1,2,3}: jaccard 3/4
		{1, 20},       // less similar: jaccard 1/4
	})
	got := c.Recommend([]int32{1, 2, 3}, 1)
	if len(got) != 1 || got[0] != 10 {
		t.Fatalf("recommendations = %v", got)
	}
}

func TestClusterAwarePrefersRecentCategory(t *testing.T) {
	// Apps 0..9: even apps category 0, odd apps category 1.
	// Downloads make app 0 and 1 the category heads.
	downloads := []int64{100, 90, 10, 9, 8, 7, 6, 5, 4, 3}
	catOf := func(a int32) int32 { return a % 2 }
	r := NewClusterAware(downloads, catOf)
	// User's last download is app 3 (category 1): category 1's head (app
	// 1) should be suggested first.
	got := r.Recommend([]int32{2, 3}, 2)
	if len(got) < 1 || got[0] != 1 {
		t.Fatalf("recommendations = %v", got)
	}
	if r.Recommend(nil, 3) != nil {
		t.Fatal("empty history should yield nothing")
	}
}

func TestClusterAwareSkipsOwned(t *testing.T) {
	downloads := []int64{100, 90, 80, 70}
	catOf := func(a int32) int32 { return 0 } // single category
	r := NewClusterAware(downloads, catOf)
	got := r.Recommend([]int32{0, 1}, 2)
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("recommendations = %v", got)
	}
}

func TestEvaluateValidation(t *testing.T) {
	if _, err := Evaluate(nil, nil, 0, 1); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestEvaluateCountsTrials(t *testing.T) {
	p := NewPopularity([]int64{5, 4, 3, 2, 1})
	histories := [][]int32{{0, 1, 2}, {3, 4}}
	res, err := Evaluate([]Recommender{p}, histories, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// History 1 has splits at 1 and 2; history 2 at 1: 3 trials.
	if res[0].Trials != 3 {
		t.Fatalf("trials = %d", res[0].Trials)
	}
	if res[0].Hits < 1 {
		t.Fatalf("popularity should predict some next downloads: %+v", res[0])
	}
}

// clusteringHistories simulates APP-CLUSTERING user histories and splits
// them into train/test.
func clusteringHistories(t *testing.T) (train, test [][]int32, downloads []int64, cm *model.ClusterMap) {
	t.Helper()
	cfg := model.Config{
		Apps: 1500, Users: 3000, DownloadsPerUser: 8,
		ZipfGlobal: 1.2, ZipfCluster: 1.4, ClusterP: 0.9, Clusters: 25,
	}
	sim, err := model.NewSimulator(model.AppClustering, cfg)
	if err != nil {
		t.Fatal(err)
	}
	perUser := map[int32][]int32{}
	downloads = make([]int64, cfg.Apps)
	sim.Stream(11, func(e model.Event) bool {
		perUser[e.User] = append(perUser[e.User], e.App)
		downloads[e.App]++
		return true
	})
	r := rng.New(99)
	for _, h := range perUser {
		if len(h) < 3 {
			continue
		}
		if r.Bool(0.2) {
			test = append(test, h)
		} else {
			train = append(train, h)
		}
	}
	return train, test, downloads, model.RoundRobin(cfg.Apps, cfg.Clusters)
}

func TestClusterAwareBeatsPopularityOnClusteredUsers(t *testing.T) {
	// The paper's §7 argument: a recommender exploiting temporal category
	// affinity predicts the next download better than pure popularity.
	train, test, downloads, cm := clusteringHistories(t)
	if len(train) == 0 || len(test) == 0 {
		t.Fatal("no histories")
	}
	pop := NewPopularity(downloads)
	ca := NewClusterAware(downloads, func(a int32) int32 { return cm.OfApp[a] })
	res, err := Evaluate([]Recommender{pop, ca}, test, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]EvalResult{}
	for _, r := range res {
		byName[r.Recommender] = r
	}
	if byName["cluster-aware"].HitRate() <= byName["popularity"].HitRate() {
		t.Fatalf("cluster-aware %.1f%% did not beat popularity %.1f%%",
			byName["cluster-aware"].HitRate(), byName["popularity"].HitRate())
	}
}

func TestCollaborativeBeatsRandomBaseline(t *testing.T) {
	train, test, _, _ := clusteringHistories(t)
	cf := NewCollaborative(train)
	res, err := Evaluate([]Recommender{cf}, test, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Random guessing over 1500 apps with k=10 would hit ~0.7%; the
	// collaborative filter must do far better.
	if res[0].HitRate() < 3 {
		t.Fatalf("collaborative hit rate %.2f%% barely above chance", res[0].HitRate())
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	_, test, downloads, cm := clusteringHistories(t)
	ca := NewClusterAware(downloads, func(a int32) int32 { return cm.OfApp[a] })
	a, _ := Evaluate([]Recommender{ca}, test, 5, 2)
	b, _ := Evaluate([]Recommender{ca}, test, 5, 2)
	if a[0] != b[0] {
		t.Fatalf("evaluation not deterministic: %+v vs %+v", a[0], b[0])
	}
}
