// Package dist provides the probability distributions and distribution
// fitting used by the appstore workload models: bounded Zipf samplers (the
// backbone of ZIPF, ZIPF-at-most-once and APP-CLUSTERING), heavy-tailed
// price/size generators, and power-law exponent estimation from observed
// rank-frequency data.
package dist

import (
	"fmt"
	"math"
	"sort"

	"planetapps/internal/rng"
)

// Zipf samples ranks from a bounded Zipf (zeta) distribution: rank i in
// [1, N] is drawn with probability proportional to 1/i^s. Sampling is by
// inverse-CDF binary search over a precomputed cumulative table, O(log N)
// per draw after O(N) setup; the table is shared and safe for concurrent
// readers (each draw uses a caller-supplied RNG).
type Zipf struct {
	n   int
	s   float64
	cum []float64 // cum[i] = P(rank <= i+1), cum[n-1] == 1
}

// NewZipf builds a bounded Zipf distribution over ranks 1..n with exponent
// s >= 0. s = 0 is the uniform distribution. It returns an error when n < 1
// or s is not finite.
func NewZipf(n int, s float64) (*Zipf, error) {
	if n < 1 {
		return nil, fmt.Errorf("dist: Zipf needs n >= 1, got %d", n)
	}
	if math.IsNaN(s) || math.IsInf(s, 0) || s < 0 {
		return nil, fmt.Errorf("dist: Zipf exponent must be finite and >= 0, got %v", s)
	}
	z := &Zipf{n: n, s: s, cum: make([]float64, n)}
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += math.Pow(float64(i), -s)
		z.cum[i-1] = sum
	}
	inv := 1 / sum
	for i := range z.cum {
		z.cum[i] *= inv
	}
	z.cum[n-1] = 1 // guard against accumulated rounding
	return z, nil
}

// MustZipf is NewZipf that panics on error; for static configurations.
func MustZipf(n int, s float64) *Zipf {
	z, err := NewZipf(n, s)
	if err != nil {
		panic(err)
	}
	return z
}

// N returns the number of ranks.
func (z *Zipf) N() int { return z.n }

// S returns the exponent.
func (z *Zipf) S() float64 { return z.s }

// P returns the probability of rank i (1-based).
func (z *Zipf) P(i int) float64 {
	if i < 1 || i > z.n {
		return 0
	}
	if i == 1 {
		return z.cum[0]
	}
	return z.cum[i-1] - z.cum[i-2]
}

// Sample draws a rank in [1, n].
func (z *Zipf) Sample(r *rng.RNG) int {
	u := r.Float64()
	// First index with cum >= u.
	return sort.SearchFloat64s(z.cum, u) + 1
}

// Harmonic returns the generalized harmonic number H_{n,s} =
// sum_{k=1..n} k^-s, the normalizing constant of a bounded Zipf.
func Harmonic(n int, s float64) float64 {
	sum := 0.0
	for k := 1; k <= n; k++ {
		sum += math.Pow(float64(k), -s)
	}
	return sum
}
