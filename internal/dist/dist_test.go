package dist

import (
	"math"
	"testing"
	"testing/quick"

	"planetapps/internal/rng"
)

func TestZipfProbabilitiesSumToOne(t *testing.T) {
	for _, s := range []float64{0, 0.5, 1, 1.7, 3} {
		z := MustZipf(100, s)
		sum := 0.0
		for i := 1; i <= 100; i++ {
			sum += z.P(i)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("s=%v: probabilities sum to %v", s, sum)
		}
	}
}

func TestZipfMonotone(t *testing.T) {
	z := MustZipf(50, 1.2)
	for i := 2; i <= 50; i++ {
		if z.P(i) > z.P(i-1) {
			t.Fatalf("P(%d)=%v > P(%d)=%v", i, z.P(i), i-1, z.P(i-1))
		}
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	z := MustZipf(10, 0)
	for i := 1; i <= 10; i++ {
		if math.Abs(z.P(i)-0.1) > 1e-12 {
			t.Fatalf("uniform P(%d) = %v", i, z.P(i))
		}
	}
}

func TestZipfSampleRange(t *testing.T) {
	z := MustZipf(20, 1.5)
	r := rng.New(1)
	if err := quick.Check(func(uint8) bool {
		v := z.Sample(r)
		return v >= 1 && v <= 20
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZipfSampleFrequencies(t *testing.T) {
	const n = 10
	z := MustZipf(n, 1.0)
	r := rng.New(2)
	const draws = 500000
	counts := make([]int, n+1)
	for i := 0; i < draws; i++ {
		counts[z.Sample(r)]++
	}
	for i := 1; i <= n; i++ {
		got := float64(counts[i]) / draws
		want := z.P(i)
		if math.Abs(got-want) > 0.005 {
			t.Fatalf("rank %d frequency %v, want %v", i, got, want)
		}
	}
}

func TestZipfErrors(t *testing.T) {
	if _, err := NewZipf(0, 1); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := NewZipf(10, -1); err == nil {
		t.Fatal("negative exponent accepted")
	}
	if _, err := NewZipf(10, math.NaN()); err == nil {
		t.Fatal("NaN exponent accepted")
	}
}

func TestHarmonic(t *testing.T) {
	if h := Harmonic(1, 2); h != 1 {
		t.Fatalf("H(1,2) = %v", h)
	}
	want := 1 + 0.5 + 1.0/3
	if h := Harmonic(3, 1); math.Abs(h-want) > 1e-12 {
		t.Fatalf("H(3,1) = %v, want %v", h, want)
	}
}

func TestLogNormalMean(t *testing.T) {
	l := LogNormal{Mu: 0.5, Sigma: 0.8}
	r := rng.New(3)
	const n = 300000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += l.Sample(r)
	}
	got := sum / n
	if math.Abs(got-l.Mean()) > l.Mean()*0.03 {
		t.Fatalf("lognormal sample mean = %v, want ~%v", got, l.Mean())
	}
}

func TestParetoSupport(t *testing.T) {
	p := Pareto{Xm: 2, Alpha: 1.5}
	r := rng.New(4)
	for i := 0; i < 10000; i++ {
		if v := p.Sample(r); v < 2 {
			t.Fatalf("Pareto sample %v below scale", v)
		}
	}
}

func TestBoundedParetoInt(t *testing.T) {
	p := Pareto{Xm: 1, Alpha: 0.7}
	r := rng.New(5)
	for i := 0; i < 10000; i++ {
		v := BoundedParetoInt(r, p, 1, 50)
		if v < 1 || v > 50 {
			t.Fatalf("bounded sample %d out of range", v)
		}
	}
}

func TestGeometricMean(t *testing.T) {
	r := rng.New(6)
	p := 0.25
	const n = 200000
	sum := 0
	for i := 0; i < n; i++ {
		sum += Geometric(r, p)
	}
	got := float64(sum) / n
	want := (1 - p) / p // mean of failures-before-success geometric
	if math.Abs(got-want) > 0.05 {
		t.Fatalf("geometric mean = %v, want %v", got, want)
	}
	if Geometric(r, 1) != 0 {
		t.Fatal("Geometric(1) should be 0")
	}
}

func TestCategorical(t *testing.T) {
	c := MustCategorical([]float64{1, 0, 3})
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}
	if math.Abs(c.P(0)-0.25) > 1e-12 || c.P(1) != 0 || math.Abs(c.P(2)-0.75) > 1e-12 {
		t.Fatalf("P = %v %v %v", c.P(0), c.P(1), c.P(2))
	}
	r := rng.New(7)
	const n = 200000
	counts := make([]int, 3)
	for i := 0; i < n; i++ {
		counts[c.Sample(r)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight category sampled %d times", counts[1])
	}
	if f := float64(counts[0]) / n; math.Abs(f-0.25) > 0.01 {
		t.Fatalf("category 0 frequency %v", f)
	}
}

func TestCategoricalErrors(t *testing.T) {
	if _, err := NewCategorical(nil); err == nil {
		t.Fatal("empty weights accepted")
	}
	if _, err := NewCategorical([]float64{0, 0}); err == nil {
		t.Fatal("all-zero weights accepted")
	}
	if _, err := NewCategorical([]float64{1, -1}); err == nil {
		t.Fatal("negative weight accepted")
	}
}

func TestRankCurveSorting(t *testing.T) {
	c := NewRankCurve([]float64{3, 9, 1})
	if c.Downloads[0] != 9 || c.Downloads[2] != 1 {
		t.Fatalf("rank curve not sorted: %v", c.Downloads)
	}
	if c.Top() != 9 || c.Total() != 13 {
		t.Fatalf("Top/Total wrong: %v %v", c.Top(), c.Total())
	}
}

func TestTrunkExponentRecoversSlope(t *testing.T) {
	// Construct an exact power law: v(i) = 1e6 * i^-1.4.
	vals := make([]float64, 2000)
	for i := range vals {
		vals[i] = 1e6 * math.Pow(float64(i+1), -1.4)
	}
	c := RankCurve{Downloads: vals}
	got := c.TrunkExponent(0.01, 0.01)
	if math.Abs(got-1.4) > 0.02 {
		t.Fatalf("trunk exponent = %v, want 1.4", got)
	}
}

func TestZipfMLERecoversExponent(t *testing.T) {
	// Counts proportional to the true Zipf pmf recover the exponent exactly.
	const n = 500
	const s = 1.3
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = 1e7 * math.Pow(float64(i+1), -s)
	}
	c := RankCurve{Downloads: vals}
	got := c.ZipfMLE(0.1, 3)
	if math.Abs(got-s) > 0.02 {
		t.Fatalf("MLE exponent = %v, want %v", got, s)
	}
}

func TestMeanRelativeError(t *testing.T) {
	a := RankCurve{Downloads: []float64{100, 50, 25}}
	if d := MeanRelativeError(a, a); d != 0 {
		t.Fatalf("self distance = %v", d)
	}
	b := RankCurve{Downloads: []float64{110, 55, 27.5}} // +10% everywhere
	if d := MeanRelativeError(a, b); math.Abs(d-0.1) > 1e-12 {
		t.Fatalf("distance = %v, want 0.1", d)
	}
	// Simulated curve missing the tail counts those ranks as fully missed.
	short := RankCurve{Downloads: []float64{100}}
	d := MeanRelativeError(a, short)
	if math.Abs(d-2.0/3) > 1e-12 {
		t.Fatalf("short-curve distance = %v, want 2/3", d)
	}
}

func TestHeadFlatnessDetectsTruncation(t *testing.T) {
	// Pure power law: flatness ~1.
	pure := make([]float64, 5000)
	for i := range pure {
		pure[i] = 1e6 * math.Pow(float64(i+1), -1.3)
	}
	pureFlat := RankCurve{Downloads: pure}.HeadFlatness()
	if pureFlat < 0.8 || pureFlat > 1.3 {
		t.Fatalf("pure power law head flatness = %v, want ~1", pureFlat)
	}
	// Clamp the head as fetch-at-most-once would.
	clamped := append([]float64(nil), pure...)
	for i := range clamped {
		if clamped[i] > 20000 {
			clamped[i] = 20000
		}
	}
	clampFlat := RankCurve{Downloads: clamped}.HeadFlatness()
	if clampFlat >= pureFlat {
		t.Fatalf("clamped head flatness %v not below pure %v", clampFlat, pureFlat)
	}
}

func TestTailDropDetectsTruncation(t *testing.T) {
	pure := make([]float64, 5000)
	for i := range pure {
		pure[i] = 1e6 * math.Pow(float64(i+1), -1.1)
	}
	pureDrop := RankCurve{Downloads: pure}.TailDrop()
	// Suppress the tail as the clustering effect would.
	cut := append([]float64(nil), pure...)
	for i := 4000; i < len(cut); i++ {
		cut[i] *= 0.05
	}
	cutDrop := RankCurve{Downloads: cut}.TailDrop()
	if cutDrop >= pureDrop {
		t.Fatalf("cut tail drop %v not below pure %v", cutDrop, pureDrop)
	}
}

func BenchmarkZipfSample(b *testing.B) {
	z := MustZipf(100000, 1.5)
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Sample(r)
	}
}

func BenchmarkNewZipf(b *testing.B) {
	for i := 0; i < b.N; i++ {
		MustZipf(60000, 1.4)
	}
}
