package dist

import (
	"fmt"
	"math"

	"planetapps/internal/rng"
)

// LogNormal samples a lognormal distribution with the given parameters of
// the underlying normal (mu, sigma). Used for app prices and sizes, which
// are positive and right-skewed.
type LogNormal struct {
	Mu    float64
	Sigma float64
}

// Sample draws one lognormal variate.
func (l LogNormal) Sample(r *rng.RNG) float64 {
	return math.Exp(l.Mu + l.Sigma*r.NormFloat64())
}

// Mean returns the analytic mean exp(mu + sigma^2/2).
func (l LogNormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// Pareto samples a Pareto (type I) distribution with scale xm > 0 and shape
// alpha > 0. Used for developer portfolio sizes (a few companies ship
// hundreds of apps, most developers ship one).
type Pareto struct {
	Xm    float64
	Alpha float64
}

// Sample draws one Pareto variate via inverse transform.
func (p Pareto) Sample(r *rng.RNG) float64 {
	u := r.Float64()
	// Guard: Float64 is in [0,1); u==0 maps to +Inf, so nudge.
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	return p.Xm / math.Pow(u, 1/p.Alpha)
}

// BoundedParetoInt draws an integer Pareto variate clamped to [min, max].
func BoundedParetoInt(r *rng.RNG, p Pareto, min, max int) int {
	if min > max {
		panic(fmt.Sprintf("dist: BoundedParetoInt min %d > max %d", min, max))
	}
	v := int(p.Sample(r))
	if v < min {
		v = min
	}
	if v > max {
		v = max
	}
	return v
}

// Geometric returns a geometric variate counting failures before the first
// success with success probability p in (0, 1]: support {0, 1, 2, ...}.
func Geometric(r *rng.RNG, p float64) int {
	if p <= 0 || p > 1 {
		panic(fmt.Sprintf("dist: Geometric p out of range: %v", p))
	}
	if p == 1 {
		return 0
	}
	u := r.Float64()
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	return int(math.Floor(math.Log(u) / math.Log(1-p)))
}

// Categorical samples indices 0..len(w)-1 with probability proportional to
// the non-negative weights w. It precomputes a cumulative table.
type Categorical struct {
	cum []float64
}

// NewCategorical builds a categorical distribution from weights. It returns
// an error when the weights are empty, negative, or all zero.
func NewCategorical(weights []float64) (*Categorical, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("dist: empty categorical weights")
	}
	c := &Categorical{cum: make([]float64, len(weights))}
	sum := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return nil, fmt.Errorf("dist: invalid weight %v at index %d", w, i)
		}
		sum += w
		c.cum[i] = sum
	}
	if sum == 0 {
		return nil, fmt.Errorf("dist: all categorical weights are zero")
	}
	inv := 1 / sum
	for i := range c.cum {
		c.cum[i] *= inv
	}
	c.cum[len(c.cum)-1] = 1
	return c, nil
}

// MustCategorical is NewCategorical that panics on error.
func MustCategorical(weights []float64) *Categorical {
	c, err := NewCategorical(weights)
	if err != nil {
		panic(err)
	}
	return c
}

// Sample draws an index.
func (c *Categorical) Sample(r *rng.RNG) int {
	u := r.Float64()
	lo, hi := 0, len(c.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if c.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// P returns the probability of index i.
func (c *Categorical) P(i int) float64 {
	if i < 0 || i >= len(c.cum) {
		return 0
	}
	if i == 0 {
		return c.cum[0]
	}
	return c.cum[i] - c.cum[i-1]
}

// Len returns the number of categories.
func (c *Categorical) Len() int { return len(c.cum) }
