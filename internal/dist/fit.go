package dist

import (
	"math"
	"sort"

	"planetapps/internal/stats"
)

// RankCurve is an observed rank-frequency curve: Downloads[i] is the value
// of the item with rank i+1 when items are sorted by descending value. It is
// the shape plotted in Figures 3, 8 and 11 of the paper.
type RankCurve struct {
	Downloads []float64
}

// NewRankCurve sorts the values descending and returns the resulting curve.
// The input is copied.
func NewRankCurve(values []float64) RankCurve {
	s := append([]float64(nil), values...)
	sort.Sort(sort.Reverse(sort.Float64Slice(s)))
	return RankCurve{Downloads: s}
}

// Total returns the sum of all values on the curve.
func (c RankCurve) Total() float64 {
	t := 0.0
	for _, v := range c.Downloads {
		t += v
	}
	return t
}

// Top returns the value at rank 1 (the most popular item), or 0 when empty.
func (c RankCurve) Top() float64 {
	if len(c.Downloads) == 0 {
		return 0
	}
	return c.Downloads[0]
}

// TrunkExponent estimates the power-law exponent of the curve's central
// "trunk" by least-squares regression of log(value) on log(rank), skipping
// the truncated head and tail. headFrac and tailFrac give the fraction of
// ranks to exclude at each end (the paper's Figure 3 slopes are trunk fits).
// The returned exponent is positive for a decaying curve.
func (c RankCurve) TrunkExponent(headFrac, tailFrac float64) float64 {
	n := len(c.Downloads)
	if n < 4 {
		return 0
	}
	lo := int(headFrac * float64(n))
	hi := n - int(tailFrac*float64(n))
	if hi-lo < 2 {
		lo, hi = 0, n
	}
	var xs, ys []float64
	for i := lo; i < hi; i++ {
		v := c.Downloads[i]
		if v <= 0 {
			continue
		}
		xs = append(xs, math.Log(float64(i+1)))
		ys = append(ys, math.Log(v))
	}
	if len(xs) < 2 {
		return 0
	}
	slope, _ := stats.LinearFit(xs, ys)
	return -slope
}

// ZipfMLE estimates the exponent of a bounded discrete power law from the
// observed values by maximizing the Zipf likelihood over a grid refined by
// golden-section search. The curve's values are interpreted as draw counts
// per rank (rank = index+1).
func (c RankCurve) ZipfMLE(sMin, sMax float64) float64 {
	n := len(c.Downloads)
	if n == 0 {
		return 0
	}
	// Log-likelihood up to a constant: -s * sum(count_i * ln i) - D * ln H(n, s).
	var sumCountLn, total float64
	for i, v := range c.Downloads {
		if v <= 0 {
			continue
		}
		sumCountLn += v * math.Log(float64(i+1))
		total += v
	}
	if total == 0 {
		return 0
	}
	ll := func(s float64) float64 {
		return -s*sumCountLn - total*math.Log(Harmonic(n, s))
	}
	// Golden-section search for the maximum on [sMin, sMax].
	const phi = 0.6180339887498949
	a, b := sMin, sMax
	x1 := b - phi*(b-a)
	x2 := a + phi*(b-a)
	f1, f2 := ll(x1), ll(x2)
	for i := 0; i < 80 && b-a > 1e-6; i++ {
		if f1 < f2 {
			a, x1, f1 = x1, x2, f2
			x2 = a + phi*(b-a)
			f2 = ll(x2)
		} else {
			b, x2, f2 = x2, x1, f1
			x1 = b - phi*(b-a)
			f1 = ll(x1)
		}
	}
	return (a + b) / 2
}

// MeanRelativeError implements the paper's distance metric (Eq. 6): the mean
// over ranks of |observed - simulated| / observed. Ranks where the observed
// value is zero are skipped (the paper's measured downloads are positive).
// Curves of different lengths are compared over the shorter prefix, with
// the missing tail of the shorter curve treated as zeros against the
// longer's remaining observed mass.
func MeanRelativeError(observed, simulated RankCurve) float64 {
	no, ns := len(observed.Downloads), len(simulated.Downloads)
	n := no
	if ns < n {
		n = ns
	}
	var sum float64
	var count int
	for i := 0; i < n; i++ {
		o := observed.Downloads[i]
		if o <= 0 {
			continue
		}
		sum += math.Abs(o-simulated.Downloads[i]) / o
		count++
	}
	// Observed ranks beyond the simulated curve count as fully missed.
	for i := n; i < no; i++ {
		if observed.Downloads[i] > 0 {
			sum++
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

// HeadFlatness quantifies head truncation: the ratio of the rank-1 value to
// the value a pure power law with the trunk exponent would predict from the
// mid-trunk anchor. Values well below 1 indicate the flattened head the
// paper attributes to fetch-at-most-once.
func (c RankCurve) HeadFlatness() float64 {
	n := len(c.Downloads)
	if n < 10 || c.Downloads[0] <= 0 {
		return 1
	}
	s := c.TrunkExponent(0.05, 0.2)
	anchor := n / 10
	if anchor < 1 {
		anchor = 1
	}
	av := c.Downloads[anchor-1]
	if av <= 0 || s <= 0 {
		return 1
	}
	predictedTop := av * math.Pow(float64(anchor), s)
	if predictedTop <= 0 {
		return 1
	}
	return c.Downloads[0] / predictedTop
}

// TailDrop quantifies tail truncation: the ratio of the observed value at
// the 99th-percentile rank to the trunk power law's prediction there.
// Values well below 1 indicate the steep tail drop the paper attributes to
// the clustering effect.
func (c RankCurve) TailDrop() float64 {
	n := len(c.Downloads)
	if n < 20 {
		return 1
	}
	s := c.TrunkExponent(0.05, 0.2)
	anchor := n / 10
	if anchor < 1 {
		anchor = 1
	}
	av := c.Downloads[anchor-1]
	tailRank := (n * 99) / 100
	tv := c.Downloads[tailRank-1]
	if av <= 0 || tv < 0 || s <= 0 {
		return 1
	}
	predicted := av * math.Pow(float64(anchor)/float64(tailRank), s)
	if predicted <= 0 {
		return 1
	}
	return tv / predicted
}
