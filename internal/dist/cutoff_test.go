package dist

import (
	"math"
	"testing"
)

func TestFitPowerLawCutoffRecovers(t *testing.T) {
	// Exact model: v(i) = 1e6 * i^-1.2 * exp(-i/400) over 2000 ranks.
	const alpha, cutoff = 1.2, 400.0
	vals := make([]float64, 2000)
	for i := range vals {
		x := float64(i + 1)
		vals[i] = 1e6 * math.Pow(x, -alpha) * math.Exp(-x/cutoff)
	}
	fit, ok := FitPowerLawCutoff(RankCurve{Downloads: vals})
	if !ok {
		t.Fatal("fit failed")
	}
	if math.Abs(fit.Alpha-alpha) > 0.05 {
		t.Fatalf("alpha = %v, want %v", fit.Alpha, alpha)
	}
	if fit.Cutoff < cutoff/1.5 || fit.Cutoff > cutoff*1.5 {
		t.Fatalf("cutoff = %v, want ~%v", fit.Cutoff, cutoff)
	}
	if fit.R2 < 0.999 {
		t.Fatalf("R2 = %v on exact data", fit.R2)
	}
	// Eval reproduces the data.
	for _, i := range []int{1, 10, 100, 1000} {
		if rel := math.Abs(fit.Eval(i)-vals[i-1]) / vals[i-1]; rel > 0.05 {
			t.Fatalf("Eval(%d) off by %v", i, rel)
		}
	}
}

func TestFitPowerLawCutoffPureLaw(t *testing.T) {
	// A pure power law should fit with a cutoff far beyond the data range.
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = 5e5 * math.Pow(float64(i+1), -1.4)
	}
	fit, ok := FitPowerLawCutoff(RankCurve{Downloads: vals})
	if !ok {
		t.Fatal("fit failed")
	}
	if math.Abs(fit.Alpha-1.4) > 0.1 {
		t.Fatalf("alpha = %v", fit.Alpha)
	}
	if fit.Cutoff < float64(len(vals)) {
		t.Fatalf("pure power law fitted cutoff %v within data range", fit.Cutoff)
	}
}

func TestFitPowerLawCutoffShortCurve(t *testing.T) {
	if _, ok := FitPowerLawCutoff(RankCurve{Downloads: []float64{5, 4, 3}}); ok {
		t.Fatal("short curve accepted")
	}
}

func TestFitPowerLawCutoffIgnoresZeros(t *testing.T) {
	vals := make([]float64, 100)
	for i := 0; i < 50; i++ {
		vals[i] = 1e4 * math.Pow(float64(i+1), -1.1)
	}
	// Tail of zeros (trimmed apps) must not break the fit.
	fit, ok := FitPowerLawCutoff(RankCurve{Downloads: vals})
	if !ok {
		t.Fatal("fit failed")
	}
	if fit.Alpha < 0.8 || fit.Alpha > 1.6 {
		t.Fatalf("alpha = %v", fit.Alpha)
	}
}
