package dist

import (
	"math"

	"planetapps/internal/stats"
)

// CutoffFit is a fitted power law with exponential cutoff,
//
//	v(rank) = C * rank^-alpha * exp(-rank/cutoff)
//
// the functional form prior measurement studies found for user-generated
// content popularity (Cha et al.), which the paper notes resembles app
// popularity. Fitting it to a measured curve quantifies how strong the
// tail truncation is (small Cutoff relative to the number of ranks means a
// hard tail cut; Cutoff >> ranks degenerates to a pure power law).
type CutoffFit struct {
	// Alpha is the power-law exponent.
	Alpha float64
	// Cutoff is the exponential cutoff rank.
	Cutoff float64
	// LogC is the log of the scale constant.
	LogC float64
	// R2 is the coefficient of determination of the log-space fit.
	R2 float64
}

// Eval returns the fitted value at a 1-based rank.
func (f CutoffFit) Eval(rank int) float64 {
	x := float64(rank)
	return math.Exp(f.LogC - f.Alpha*math.Log(x) - x/f.Cutoff)
}

// FitPowerLawCutoff fits the cutoff model to the curve's positive values by
// least squares in log space: log v = logC - alpha*log(rank) - rank/cutoff.
// For fixed cutoff this is linear regression on two predictors; the cutoff
// is chosen by golden-section search on the residual sum of squares over
// [n/50, 50n]. It returns ok=false for curves with fewer than 8 positive
// values.
func FitPowerLawCutoff(c RankCurve) (CutoffFit, bool) {
	var logRank, rank, logV []float64
	for i, v := range c.Downloads {
		if v <= 0 {
			continue
		}
		logRank = append(logRank, math.Log(float64(i+1)))
		rank = append(rank, float64(i+1))
		logV = append(logV, math.Log(v))
	}
	n := len(logV)
	if n < 8 {
		return CutoffFit{}, false
	}
	maxRank := rank[len(rank)-1]

	// rss fits (alpha, logC) for a fixed cutoff by two-predictor least
	// squares and returns the residual sum of squares and coefficients.
	rss := func(cutoff float64) (float64, CutoffFit) {
		// Fold the known cutoff term into the response: y' = logV + rank/cutoff.
		y := make([]float64, n)
		for i := range y {
			y[i] = logV[i] + rank[i]/cutoff
		}
		slope, intercept := stats.LinearFit(logRank, y)
		fit := CutoffFit{Alpha: -slope, Cutoff: cutoff, LogC: intercept}
		var ss float64
		for i := range y {
			r := y[i] - (intercept + slope*logRank[i])
			ss += r * r
		}
		return ss, fit
	}

	// Golden-section search over log(cutoff).
	lo := math.Log(maxRank / 50)
	hi := math.Log(maxRank * 50)
	const phi = 0.6180339887498949
	x1 := hi - phi*(hi-lo)
	x2 := lo + phi*(hi-lo)
	f1, _ := rss(math.Exp(x1))
	f2, _ := rss(math.Exp(x2))
	for i := 0; i < 60 && hi-lo > 1e-6; i++ {
		if f1 > f2 {
			lo, x1, f1 = x1, x2, f2
			x2 = lo + phi*(hi-lo)
			f2, _ = rss(math.Exp(x2))
		} else {
			hi, x2, f2 = x2, x1, f1
			x1 = hi - phi*(hi-lo)
			f1, _ = rss(math.Exp(x1))
		}
	}
	ss, fit := rss(math.Exp((lo + hi) / 2))

	// R^2 against the mean of logV.
	mean := stats.Mean(logV)
	var tot float64
	for _, v := range logV {
		d := v - mean
		tot += d * d
	}
	if tot > 0 {
		// Residuals of the full model in original log space equal the
		// folded-space residuals, so ss is directly comparable.
		fit.R2 = 1 - ss/tot
	}
	return fit, true
}
