// Package trace serializes workload-model download streams to a compact
// binary format so generated appstore workloads can drive external systems
// (cache testbeds, CDN simulators, recommendation pipelines) — the
// "representative workload generation" role Barford & Crovella's generator
// plays for web workloads, which the paper cites as the model for its own
// workload characterization.
//
// Format (little-endian, after an 16-byte header):
//
//	magic   "PATRACE1"          8 bytes
//	apps    uint32              app-id space size
//	users   uint32              user-id space size
//	events  repeated {user uvarint, app uvarint}
//
// Events are delta-free (ids are small by construction); uvarint keeps
// typical events at 2-5 bytes.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"planetapps/internal/model"
)

const magic = "PATRACE1"

// Writer streams download events to an underlying writer.
type Writer struct {
	bw         *bufio.Writer
	buf        [2 * binary.MaxVarintLen64]byte
	events     int64
	err        error
	appsSpace  uint64
	usersSpace uint64
}

// NewWriter writes the header and returns a Writer. apps and users declare
// the id spaces; events outside them are rejected.
func NewWriter(w io.Writer, apps, users int) (*Writer, error) {
	if apps <= 0 || users <= 0 {
		return nil, fmt.Errorf("trace: invalid id spaces apps=%d users=%d", apps, users)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return nil, err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(apps))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(users))
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &Writer{bw: bw, appsSpace: uint64(apps), usersSpace: uint64(users)}, nil
}

// Write appends one event.
func (w *Writer) Write(e model.Event) error {
	if w.err != nil {
		return w.err
	}
	if uint64(e.App) >= w.appsSpace || uint64(e.User) >= w.usersSpace || e.App < 0 || e.User < 0 {
		w.err = fmt.Errorf("trace: event (%d,%d) outside declared spaces", e.User, e.App)
		return w.err
	}
	n := binary.PutUvarint(w.buf[:], uint64(e.User))
	n += binary.PutUvarint(w.buf[n:], uint64(e.App))
	if _, err := w.bw.Write(w.buf[:n]); err != nil {
		w.err = err
		return err
	}
	w.events++
	return nil
}

// Events returns the number of events written so far.
func (w *Writer) Events() int64 { return w.events }

// Flush flushes buffered output; call before closing the underlying file.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.bw.Flush()
}

// Reader decodes a trace.
type Reader struct {
	br    *bufio.Reader
	apps  int
	users int
}

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic)+8)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: short header: %w", err)
	}
	if string(head[:len(magic)]) != magic {
		return nil, fmt.Errorf("trace: bad magic %q", head[:len(magic)])
	}
	apps := int(binary.LittleEndian.Uint32(head[len(magic):]))
	users := int(binary.LittleEndian.Uint32(head[len(magic)+4:]))
	if apps <= 0 || users <= 0 {
		return nil, fmt.Errorf("trace: invalid header spaces apps=%d users=%d", apps, users)
	}
	return &Reader{br: br, apps: apps, users: users}, nil
}

// Apps returns the declared app-id space size.
func (r *Reader) Apps() int { return r.apps }

// Users returns the declared user-id space size.
func (r *Reader) Users() int { return r.users }

// Read returns the next event, or io.EOF at the end of the trace.
func (r *Reader) Read() (model.Event, error) {
	user, err := binary.ReadUvarint(r.br)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return model.Event{}, io.EOF
		}
		return model.Event{}, fmt.Errorf("trace: reading user: %w", err)
	}
	app, err := binary.ReadUvarint(r.br)
	if err != nil {
		// A trailing user id without its app is a truncated trace, never a
		// clean end: surface it as ErrUnexpectedEOF so callers can
		// distinguish it from the EOF that ends a well-formed trace.
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return model.Event{}, fmt.Errorf("trace: truncated event: %w", err)
	}
	if user >= uint64(r.users) || app >= uint64(r.apps) {
		return model.Event{}, fmt.Errorf("trace: event (%d,%d) outside declared spaces", user, app)
	}
	return model.Event{User: int32(user), App: int32(app)}, nil
}

// Record generates a workload-model stream and writes it as a trace,
// returning the event count.
func Record(w io.Writer, sim *model.Simulator, seed uint64) (int64, error) {
	tw, err := NewWriter(w, sim.Config().Apps, sim.Config().Users)
	if err != nil {
		return 0, err
	}
	sim.Stream(seed, func(e model.Event) bool {
		return tw.Write(e) == nil
	})
	if tw.err != nil {
		return tw.events, tw.err
	}
	return tw.events, tw.Flush()
}

// Replay feeds every event of a trace to fn, stopping early if fn returns
// false. It returns the number of events delivered.
func Replay(r io.Reader, fn func(model.Event) bool) (int64, error) {
	tr, err := NewReader(r)
	if err != nil {
		return 0, err
	}
	var n int64
	for {
		e, err := tr.Read()
		if errors.Is(err, io.EOF) {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		n++
		if !fn(e) {
			return n, nil
		}
	}
}
