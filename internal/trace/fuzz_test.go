package trace

import (
	"bytes"
	"testing"

	"planetapps/internal/model"
)

// FuzzReplay feeds arbitrary bytes to the trace reader: it must never
// panic and must never deliver events outside the declared id spaces.
func FuzzReplay(f *testing.F) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 100, 100)
	if err != nil {
		f.Fatal(err)
	}
	w.Write(model.Event{User: 1, App: 2})   //nolint:errcheck
	w.Write(model.Event{User: 99, App: 99}) //nolint:errcheck
	w.Flush()                               //nolint:errcheck
	f.Add(buf.Bytes())
	f.Add([]byte("PATRACE1"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 10000; i++ {
			e, err := r.Read()
			if err != nil {
				return
			}
			if int(e.App) >= r.Apps() || int(e.User) >= r.Users() || e.App < 0 || e.User < 0 {
				t.Fatalf("reader delivered out-of-space event %+v", e)
			}
		}
	})
}
