package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"

	"planetapps/internal/model"
	"planetapps/internal/rng"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 1000, 500)
	if err != nil {
		t.Fatal(err)
	}
	events := []model.Event{{User: 0, App: 0}, {User: 499, App: 999}, {User: 7, App: 42}}
	for _, e := range events {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if w.Events() != int64(len(events)) {
		t.Fatalf("Events = %d", w.Events())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Apps() != 1000 || r.Users() != 500 {
		t.Fatalf("header = %d apps, %d users", r.Apps(), r.Users())
	}
	for i, want := range events {
		got, err := r.Read()
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("event %d = %+v, want %+v", i, got, want)
		}
	}
	if _, err := r.Read(); !errors.Is(err, io.EOF) {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestWriterRejectsOutOfSpace(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(model.Event{User: 10, App: 0}); err == nil {
		t.Fatal("out-of-space user accepted")
	}
	// The writer is poisoned after an error.
	if err := w.Write(model.Event{User: 0, App: 0}); err == nil {
		t.Fatal("poisoned writer accepted an event")
	}
}

func TestNewWriterValidation(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf, 0, 5); err == nil {
		t.Fatal("zero apps accepted")
	}
}

func TestReaderBadHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewBufferString("short")); err == nil {
		t.Fatal("short header accepted")
	}
	bad := append([]byte("NOTMAGIC"), make([]byte, 8)...)
	if _, err := NewReader(bytes.NewBuffer(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestReaderTruncatedEvent(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 100, 100)
	w.Write(model.Event{User: 1, App: 1}) //nolint:errcheck
	w.Flush()                             //nolint:errcheck
	// Chop the last byte so the final event is truncated.
	data := buf.Bytes()[:buf.Len()-1]
	r, err := NewReader(bytes.NewBuffer(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("truncated event returned %v", err)
	}
}

func TestReaderRejectsOutOfSpaceEvents(t *testing.T) {
	// Hand-craft a trace claiming tiny spaces but containing a large id.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 1000, 1000)
	w.Write(model.Event{User: 900, App: 900}) //nolint:errcheck
	w.Flush()                                 //nolint:errcheck
	data := buf.Bytes()
	// Shrink the declared spaces in the header.
	data[8] = 10
	data[9], data[10], data[11] = 0, 0, 0
	r, err := NewReader(bytes.NewBuffer(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); err == nil {
		t.Fatal("out-of-space event accepted")
	}
}

func TestRecordReplay(t *testing.T) {
	cfg := model.Config{
		Apps: 500, Users: 800, DownloadsPerUser: 5,
		ZipfGlobal: 1.4, ZipfCluster: 1.4, ClusterP: 0.9, Clusters: 10,
	}
	sim, err := model.NewSimulator(model.AppClustering, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := Record(&buf, sim, 3)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no events recorded")
	}
	counts := make([]int64, cfg.Apps)
	got, err := Replay(&buf, func(e model.Event) bool {
		counts[e.App]++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Fatalf("replayed %d of %d events", got, n)
	}
	// The replayed counts equal a direct run of the same seed.
	direct := sim.Run(0) // different seed: only compare totals loosely
	_ = direct
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != n {
		t.Fatalf("count total %d != events %d", total, n)
	}
}

func TestReplayEarlyStop(t *testing.T) {
	cfg := model.Config{
		Apps: 100, Users: 100, DownloadsPerUser: 3,
		ZipfGlobal: 1.2, ZipfCluster: 1.2, ClusterP: 0.5, Clusters: 5,
	}
	sim, _ := model.NewSimulator(model.Zipf, cfg)
	var buf bytes.Buffer
	if _, err := Record(&buf, sim, 1); err != nil {
		t.Fatal(err)
	}
	n, err := Replay(&buf, func(model.Event) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("early stop delivered %d events", n)
	}
}

func TestRoundTripProperty(t *testing.T) {
	r := rng.New(7)
	if err := quick.Check(func(seed uint16) bool {
		n := 1 + r.Intn(200)
		events := make([]model.Event, n)
		for i := range events {
			events[i] = model.Event{User: int32(r.Intn(10000)), App: int32(r.Intn(100000))}
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf, 100000, 10000)
		if err != nil {
			return false
		}
		for _, e := range events {
			if w.Write(e) != nil {
				return false
			}
		}
		if w.Flush() != nil {
			return false
		}
		i := 0
		ok := true
		_, err = Replay(&buf, func(e model.Event) bool {
			if e != events[i] {
				ok = false
				return false
			}
			i++
			return true
		})
		return err == nil && ok && i == n
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
