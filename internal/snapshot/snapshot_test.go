package snapshot

import (
	"math"
	"testing"
)

// makeSeries builds a 4-day series: 3 apps growing to 5, with one app
// updated twice and downloads accumulating.
func makeSeries(t *testing.T) *Series {
	t.Helper()
	s := &Series{Store: "test"}
	days := []*Day{
		{
			Index:               0,
			CumulativeDownloads: []int64{100, 50, 10},
			Versions:            []int{1, 1, 1},
			Price:               []float64{0, 1.99, 0},
		},
		{
			Index:               1,
			CumulativeDownloads: []int64{150, 70, 12, 5},
			Versions:            []int{1, 2, 1, 1},
			Price:               []float64{0, 1.99, 0, 0},
		},
		{
			Index:               2,
			CumulativeDownloads: []int64{210, 90, 15, 9},
			Versions:            []int{1, 2, 1, 1},
			Price:               []float64{0, 1.99, 0, 0},
		},
		{
			Index:               3,
			CumulativeDownloads: []int64{300, 120, 20, 15, 3},
			Versions:            []int{1, 3, 1, 1, 1},
			Price:               []float64{0, 2.49, 0, 0, 0},
		},
	}
	for _, d := range days {
		if err := s.Append(d); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestAppendValidation(t *testing.T) {
	s := &Series{Store: "x"}
	ok := &Day{Index: 0, CumulativeDownloads: []int64{1}, Versions: []int{1}, Price: []float64{0}}
	if err := s.Append(ok); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(&Day{Index: 2, CumulativeDownloads: []int64{1}, Versions: []int{1}, Price: []float64{0}}); err == nil {
		t.Fatal("gap in day index accepted")
	}
	if err := s.Append(&Day{Index: 1, CumulativeDownloads: nil, Versions: nil, Price: nil}); err == nil {
		t.Fatal("shrinking app count accepted")
	}
	if err := s.Append(&Day{Index: 1, CumulativeDownloads: []int64{1, 2}, Versions: []int{1}, Price: []float64{0, 0}}); err == nil {
		t.Fatal("inconsistent lengths accepted")
	}
}

func TestSummarize(t *testing.T) {
	s := makeSeries(t)
	sum, err := s.Summarize()
	if err != nil {
		t.Fatal(err)
	}
	if sum.AppsFirst != 3 || sum.AppsLast != 5 {
		t.Fatalf("apps: %d -> %d", sum.AppsFirst, sum.AppsLast)
	}
	if sum.Days != 4 {
		t.Fatalf("days = %d", sum.Days)
	}
	// (5-3)/3 days elapsed.
	if math.Abs(sum.NewAppsPerDay-2.0/3) > 1e-12 {
		t.Fatalf("new apps/day = %v", sum.NewAppsPerDay)
	}
	if sum.DownloadsFirst != 160 || sum.DownloadsLast != 458 {
		t.Fatalf("downloads: %d -> %d", sum.DownloadsFirst, sum.DownloadsLast)
	}
	if math.Abs(sum.DailyDownloads-(458-160)/3.0) > 1e-9 {
		t.Fatalf("daily downloads = %v", sum.DailyDownloads)
	}
}

func TestSummarizeShortSeries(t *testing.T) {
	s := &Series{Store: "x"}
	if _, err := s.Summarize(); err == nil {
		t.Fatal("empty series summarized")
	}
}

func TestUpdateCounts(t *testing.T) {
	s := makeSeries(t)
	counts := s.UpdateCounts()
	// Only the 3 apps present on day 0 are tracked; app 1 updated twice.
	want := []int{0, 2, 0}
	if len(counts) != len(want) {
		t.Fatalf("counts = %v", counts)
	}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("counts = %v, want %v", counts, want)
		}
	}
}

func TestUpdateCountsTop(t *testing.T) {
	s := makeSeries(t)
	// Top 1/3 by final downloads = app 0 only (300 downloads), 0 updates.
	top := s.UpdateCountsTop(0.34)
	if len(top) != 1 || top[0] != 0 {
		t.Fatalf("top counts = %v", top)
	}
	if got := s.UpdateCountsTop(0); got != nil {
		t.Fatalf("zero fraction returned %v", got)
	}
}

func TestCurveAndTotals(t *testing.T) {
	s := makeSeries(t)
	c := s.Last().Curve()
	if c.Top() != 300 {
		t.Fatalf("top = %v", c.Top())
	}
	if c.Total() != 458 {
		t.Fatalf("total = %v", c.Total())
	}
	for i := 1; i < len(c.Downloads); i++ {
		if c.Downloads[i] > c.Downloads[i-1] {
			t.Fatal("curve not descending")
		}
	}
}

func TestClone(t *testing.T) {
	s := makeSeries(t)
	d := s.Last()
	c := d.Clone()
	c.CumulativeDownloads[0] = 999
	if d.CumulativeDownloads[0] == 999 {
		t.Fatal("Clone shares storage")
	}
}
