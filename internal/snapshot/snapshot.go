// Package snapshot tracks daily per-app statistics across a measurement
// period — the data shape the paper's crawlers collected — and derives the
// dataset summaries (Table 1), update distributions (Figure 4), and
// first/last-day rank curves the experiments need.
package snapshot

import (
	"fmt"
	"sort"

	"planetapps/internal/dist"
)

// Day is a daily snapshot of per-app cumulative statistics.
type Day struct {
	// Index is the day number within the measurement period (0-based).
	Index int
	// CumulativeDownloads[i] is app i's total downloads as of this day.
	// Apps added after this day are absent (slice shorter than later days).
	CumulativeDownloads []int64
	// Versions[i] is app i's shipped version count as of this day.
	Versions []int
	// Price[i] is app i's list price on this day (0 for free apps).
	Price []float64
}

// Clone deep-copies the snapshot.
func (d *Day) Clone() *Day {
	return &Day{
		Index:               d.Index,
		CumulativeDownloads: append([]int64(nil), d.CumulativeDownloads...),
		Versions:            append([]int(nil), d.Versions...),
		Price:               append([]float64(nil), d.Price...),
	}
}

// Series is an ordered sequence of daily snapshots of one store.
type Series struct {
	Store string
	Days  []*Day
}

// Append adds a snapshot; its Index must follow the previous one and app
// counts must not shrink.
func (s *Series) Append(d *Day) error {
	if len(s.Days) > 0 {
		last := s.Days[len(s.Days)-1]
		if d.Index != last.Index+1 {
			return fmt.Errorf("snapshot: day %d does not follow %d", d.Index, last.Index)
		}
		if len(d.CumulativeDownloads) < len(last.CumulativeDownloads) {
			return fmt.Errorf("snapshot: day %d has %d apps, fewer than %d",
				d.Index, len(d.CumulativeDownloads), len(last.CumulativeDownloads))
		}
	}
	if len(d.CumulativeDownloads) != len(d.Versions) || len(d.Versions) != len(d.Price) {
		return fmt.Errorf("snapshot: day %d has inconsistent field lengths", d.Index)
	}
	s.Days = append(s.Days, d)
	return nil
}

// First and Last return the boundary snapshots, or nil when empty.
func (s *Series) First() *Day {
	if len(s.Days) == 0 {
		return nil
	}
	return s.Days[0]
}

// Last returns the final snapshot, or nil when empty.
func (s *Series) Last() *Day {
	if len(s.Days) == 0 {
		return nil
	}
	return s.Days[len(s.Days)-1]
}

// Curve returns the rank-downloads curve of a snapshot.
func (d *Day) Curve() dist.RankCurve {
	vals := make([]float64, len(d.CumulativeDownloads))
	for i, v := range d.CumulativeDownloads {
		vals[i] = float64(v)
	}
	return dist.NewRankCurve(vals)
}

// TotalDownloads returns the snapshot's total cumulative downloads.
func (d *Day) TotalDownloads() int64 {
	var t int64
	for _, v := range d.CumulativeDownloads {
		t += v
	}
	return t
}

// Summary is one Table 1 row.
type Summary struct {
	Store string
	// Days is the measurement period length.
	Days int
	// AppsFirst and AppsLast are catalog sizes on the boundary days.
	AppsFirst, AppsLast int
	// NewAppsPerDay is the mean daily count of newly appearing apps.
	NewAppsPerDay float64
	// DownloadsFirst and DownloadsLast are total cumulative downloads.
	DownloadsFirst, DownloadsLast int64
	// DailyDownloads is the mean downloads per day over the period.
	DailyDownloads float64
}

// Summarize derives the Table 1 row from a series. It returns an error for
// series shorter than two days, for which rates are undefined.
func (s *Series) Summarize() (Summary, error) {
	if len(s.Days) < 2 {
		return Summary{}, fmt.Errorf("snapshot: need >= 2 days, have %d", len(s.Days))
	}
	first, last := s.First(), s.Last()
	days := last.Index - first.Index
	sum := Summary{
		Store:          s.Store,
		Days:           days + 1,
		AppsFirst:      len(first.CumulativeDownloads),
		AppsLast:       len(last.CumulativeDownloads),
		DownloadsFirst: first.TotalDownloads(),
		DownloadsLast:  last.TotalDownloads(),
	}
	sum.NewAppsPerDay = float64(sum.AppsLast-sum.AppsFirst) / float64(days)
	sum.DailyDownloads = float64(sum.DownloadsLast-sum.DownloadsFirst) / float64(days)
	return sum, nil
}

// UpdateCounts returns, per app present on the first day, the number of
// version updates observed across the period (Figure 4's sample).
func (s *Series) UpdateCounts() []int {
	if len(s.Days) < 2 {
		return nil
	}
	first, last := s.First(), s.Last()
	out := make([]int, len(first.Versions))
	for i := range out {
		out[i] = last.Versions[i] - first.Versions[i]
	}
	return out
}

// UpdateCountsTop returns update counts restricted to the top fraction of
// apps by final downloads — the paper checks the top 10% separately to
// confirm fetch-at-most-once is not an artifact of updates.
func (s *Series) UpdateCountsTop(frac float64) []int {
	counts := s.UpdateCounts()
	if counts == nil || frac <= 0 {
		return nil
	}
	last := s.Last()
	type pair struct {
		i int
		d int64
	}
	pairs := make([]pair, len(counts))
	for i := range counts {
		pairs[i] = pair{i, last.CumulativeDownloads[i]}
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].d > pairs[b].d })
	k := int(frac * float64(len(pairs)))
	if k < 1 {
		k = 1
	}
	out := make([]int, 0, k)
	for _, p := range pairs[:k] {
		out = append(out, counts[p.i])
	}
	return out
}
