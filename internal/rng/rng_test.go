package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("generators with same seed diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("generators with different seeds produced %d/100 identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(7)
	c1 := root.Split(1)
	// Re-derive: the child must depend on parent state, so a fresh root
	// splitting with the same label reproduces it.
	root2 := New(7)
	c2 := root2.Split(1)
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatalf("split is not deterministic at step %d", i)
		}
	}
}

func TestSplitLabelsDiffer(t *testing.T) {
	root := New(7)
	c1 := root.Split(1)
	root2 := New(7)
	c2 := root2.Split(2)
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("children with different labels produced %d/100 identical outputs", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	if err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnUniformity(t *testing.T) {
	r := New(13)
	const buckets = 10
	const n = 100000
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	want := float64(n) / buckets
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Fatalf("bucket %d count %d deviates from expected %v", i, c, want)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(17)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.02 {
		t.Fatalf("Bool(0.3) frequency = %v", p)
	}
	if r.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Fatal("Bool(1) returned false")
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(19)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(23)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(29)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(31)
	for _, mean := range []float64{0.5, 3, 20, 100} {
		const n = 50000
		sum := 0
		for i := 0; i < n; i++ {
			sum += r.Poisson(mean)
		}
		got := float64(sum) / n
		if math.Abs(got-mean) > mean*0.05+0.05 {
			t.Fatalf("Poisson(%v) sample mean = %v", mean, got)
		}
	}
	if r.Poisson(0) != 0 || r.Poisson(-1) != 0 {
		t.Fatal("Poisson of non-positive mean should be 0")
	}
}

func TestUint64nPowerOfTwoFastPath(t *testing.T) {
	r := New(37)
	for i := 0; i < 1000; i++ {
		if v := r.Uint64n(64); v >= 64 {
			t.Fatalf("Uint64n(64) = %d", v)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.Uint64()
	}
}

func BenchmarkFloat64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.Float64()
	}
}
