// Package rng provides a small, deterministic, splittable pseudo-random
// number generator used by every simulation in this repository.
//
// All experiments in the paper reproduction must be replayable from a single
// 64-bit seed: two runs with the same seed produce byte-identical results.
// The standard library's math/rand is avoided because its global state and
// historical algorithm changes make cross-version determinism fragile; this
// package pins the algorithm (xoshiro256** seeded via splitmix64) so results
// are stable across Go releases.
package rng

import "math"

// RNG is a xoshiro256** generator. The zero value is invalid; construct with
// New or by splitting an existing generator.
type RNG struct {
	s0, s1, s2, s3 uint64
}

// splitmix64 advances the given state and returns the next output. It is
// used both to expand seeds into xoshiro state and to derive child seeds.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from the given 64-bit seed.
func New(seed uint64) *RNG {
	st := seed
	r := &RNG{}
	r.s0 = splitmix64(&st)
	r.s1 = splitmix64(&st)
	r.s2 = splitmix64(&st)
	r.s3 = splitmix64(&st)
	return r
}

// Split derives an independent child generator from r and the given label.
// Splitting lets concurrent simulation components own private streams while
// remaining fully determined by the root seed.
//
// Contract (relied on by model.Simulator.RunParallel and every other
// deterministic-parallel consumer): the child's stream is a pure function of
// (r's state at the call, label), and Split advances r by exactly one Uint64
// draw. A sequence root.Split(0), root.Split(1), ... therefore yields a
// fixed family of streams that can be handed to any number of workers in
// any partition without changing a single drawn value — parallel results
// stay byte-identical to sequential ones. An RNG itself is NOT safe for
// concurrent use; perform all splitting on one goroutine, then give each
// worker exclusive ownership of its children. The splitting algorithm is
// part of this package's compatibility contract and must not change, or
// every recorded experiment seed silently re-rolls.
func (r *RNG) Split(label uint64) *RNG {
	c := &RNG{}
	r.SplitInto(label, c)
	return c
}

// SplitInto is Split writing the child state into dst instead of
// allocating. It derives the exact same child as Split for the same
// (state, label), so the two are interchangeable under the compatibility
// contract; bulk consumers (one stream per simulated user) use it to
// build a whole stream family in a single allocation.
func (r *RNG) SplitInto(label uint64, dst *RNG) {
	st := r.Uint64() ^ (label * 0x9e3779b97f4a7c15)
	dst.s0 = splitmix64(&st)
	dst.s1 = splitmix64(&st)
	dst.s2 = splitmix64(&st)
	dst.s3 = splitmix64(&st)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform integer in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Rejection sampling to remove modulo bias.
	threshold := -n % n
	for {
		v := r.Uint64()
		if v >= threshold {
			return v % n
		}
	}
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate using the Marsaglia polar
// method. No state beyond the generator is kept, so results stay
// deterministic under splitting.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle randomizes the order of n elements using Fisher-Yates.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Poisson returns a Poisson variate with the given mean using Knuth's method
// for small means and a normal approximation for large ones. The
// approximation keeps generation O(1) for the large arrival rates used by
// the market simulator.
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 50 {
		v := mean + math.Sqrt(mean)*r.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
