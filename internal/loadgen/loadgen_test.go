package loadgen

import (
	"context"
	"io"
	"net/http/httptest"
	"testing"
	"time"

	"planetapps/internal/catalog"
	"planetapps/internal/marketsim"
	"planetapps/internal/model"
	"planetapps/internal/storeserver"
	"planetapps/internal/trace"
)

// testStore serves a small slideme market; rate limiting per cfg.
func testStore(t *testing.T, cfg storeserver.Config) (*storeserver.Server, *httptest.Server) {
	t.Helper()
	mcfg := marketsim.DefaultConfig(catalog.Profiles["slideme"].Scale(0.2))
	mcfg.Days = 5
	m, err := marketsim.New(mcfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := storeserver.New(m, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// syntheticEvents builds n events cycling over users and apps.
func syntheticEvents(n, users, apps int) []model.Event {
	evs := make([]model.Event, n)
	for i := range evs {
		evs[i] = model.Event{User: int32(i % users), App: int32(i % apps)}
	}
	return evs
}

func checkAccounting(t *testing.T, rep *Report) {
	t.Helper()
	if got := rep.OK + rep.RateLimited + rep.Errors + rep.OtherStatus; got != rep.Requests {
		t.Fatalf("accounting mismatch: ok %d + 429 %d + err %d + other %d != requests %d",
			rep.OK, rep.RateLimited, rep.Errors, rep.OtherStatus, rep.Requests)
	}
	var classTotal int64
	for _, c := range rep.Classes {
		classTotal += c.Requests
	}
	if classTotal != rep.Requests {
		t.Fatalf("class totals %d != requests %d", classTotal, rep.Requests)
	}
	if rep.GC == nil {
		t.Fatal("report missing gc block")
	}
	if rep.GC.HeapMB <= 0 || rep.GC.CPUFraction < 0 || rep.GC.CPUFraction > 1 {
		t.Fatalf("implausible gc block: %+v", rep.GC)
	}
}

func TestClosedLoop(t *testing.T) {
	srv, ts := testStore(t, storeserver.Config{PageSize: 50})
	const n = 400
	g, err := New(Config{
		BaseURL:  ts.URL,
		Mode:     ClosedLoop,
		Users:    8,
		APKEvery: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := g.Run(context.Background(), NewSliceSource(syntheticEvents(n, 50, 40)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Events != n {
		t.Fatalf("events = %d, want %d", rep.Events, n)
	}
	// Every event issues a detail request; every 10th (per VU) adds an APK.
	if rep.Requests < n {
		t.Fatalf("requests = %d, want >= %d", rep.Requests, n)
	}
	if rep.Errors != 0 || rep.RateLimited != 0 {
		t.Fatalf("unexpected failures: %+v", rep)
	}
	if rep.OK != rep.Requests {
		t.Fatalf("ok = %d, requests = %d", rep.OK, rep.Requests)
	}
	checkAccounting(t, rep)
	det := rep.Classes[0]
	if det.Class != ClassDetail || det.Requests != n {
		t.Fatalf("detail class = %+v", det)
	}
	if det.LatencyMS.P50 <= 0 || det.LatencyMS.P99 < det.LatencyMS.P50 {
		t.Fatalf("implausible latency summary: %+v", det.LatencyMS)
	}
	if det.LatencyMS.Max < det.LatencyMS.P999 {
		t.Fatalf("max < p999: %+v", det.LatencyMS)
	}
	// Server-side counters must agree with the client's view.
	if got := srv.RequestsServed(); got != rep.Requests {
		t.Fatalf("server saw %d requests, client sent %d", got, rep.Requests)
	}
}

func TestOpenLoopStages(t *testing.T) {
	srv, ts := testStore(t, storeserver.Config{PageSize: 50})
	g, err := New(Config{
		BaseURL: ts.URL,
		Mode:    OpenLoop,
		Stages: []Stage{
			{RPS: 400, Duration: 250 * time.Millisecond},
			{RPS: 800, Duration: 250 * time.Millisecond},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := g.Run(context.Background(), NewSliceSource(syntheticEvents(100000, 500, 40)))
	if err != nil {
		t.Fatal(err)
	}
	// Schedule: 400*0.25 + 800*0.25 = 300 arrivals; allow scheduler slop.
	if rep.Requests < 200 || rep.Requests > 320 {
		t.Fatalf("requests = %d, want ~300", rep.Requests)
	}
	if rep.Errors != 0 {
		t.Fatalf("errors = %d", rep.Errors)
	}
	if rep.ThroughputRPS <= 0 {
		t.Fatalf("throughput = %f", rep.ThroughputRPS)
	}
	checkAccounting(t, rep)
	if got := srv.RequestsServed(); got != rep.Requests+rep.WarmupRequests {
		t.Fatalf("server saw %d, client recorded %d", got, rep.Requests)
	}
}

func TestClosedLoopRateLimited(t *testing.T) {
	// One shared virtual client (user 0) against a tight limiter: the bulk
	// of the burst must come back 429 and be accounted as such.
	srv, ts := testStore(t, storeserver.Config{PageSize: 50, RatePerSec: 10, Burst: 5})
	g, err := New(Config{
		BaseURL: ts.URL,
		Mode:    ClosedLoop,
		Users:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := g.Run(context.Background(), NewSliceSource(syntheticEvents(200, 1, 40)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.RateLimited == 0 {
		t.Fatalf("no 429s under a 10 rps / burst 5 limit: %+v", rep)
	}
	if rep.OK == 0 {
		t.Fatalf("every request limited: %+v", rep)
	}
	checkAccounting(t, rep)
	if got := srv.RateLimited(); got != rep.RateLimited {
		t.Fatalf("server counted %d limited, client %d", got, rep.RateLimited)
	}
}

func TestWarmupExclusion(t *testing.T) {
	_, ts := testStore(t, storeserver.Config{PageSize: 50})
	g, err := New(Config{
		BaseURL: ts.URL,
		Mode:    OpenLoop,
		Stages:  []Stage{{RPS: 200, Duration: 400 * time.Millisecond}},
		Warmup:  200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := g.Run(context.Background(), NewSliceSource(syntheticEvents(100000, 100, 40)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.WarmupRequests == 0 {
		t.Fatal("warmup window recorded no requests")
	}
	if rep.Requests == 0 {
		t.Fatal("measured window recorded no requests")
	}
	// ~80 arrivals total, ~40 in warmup.
	if rep.Requests+rep.WarmupRequests < 60 {
		t.Fatalf("total arrivals too low: %d measured + %d warmup",
			rep.Requests, rep.WarmupRequests)
	}
}

func TestContextCancelStopsRun(t *testing.T) {
	_, ts := testStore(t, storeserver.Config{PageSize: 50, Latency: 5 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	g, err := New(Config{
		BaseURL: ts.URL,
		Mode:    ClosedLoop,
		Users:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	rep, err := g.Run(ctx, NewSliceSource(syntheticEvents(1_000_000, 100, 40)))
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	if rep.Events >= 1_000_000 {
		t.Fatal("run consumed the whole source despite cancellation")
	}
	checkAccounting(t, rep)
}

func TestModelAndTraceSources(t *testing.T) {
	sim, err := model.NewSimulator(model.Zipf, model.Config{
		Apps: 40, Users: 100, DownloadsPerUser: 3, ZipfGlobal: 1.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Live model source.
	ctx := context.Background()
	src := NewModelSource(ctx, sim, 7)
	var live int64
	for {
		_, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		live++
	}
	if live == 0 {
		t.Fatal("model source produced no events")
	}
	// The same workload through a recorded trace must match event counts.
	var buf writerBuffer
	n, err := trace.Record(&buf, sim, 7)
	if err != nil {
		t.Fatal(err)
	}
	if n != live {
		t.Fatalf("trace recorded %d events, live source yielded %d", n, live)
	}
	tr, err := trace.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTraceSource(tr)
	var replayed int64
	for {
		_, err := ts.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		replayed++
	}
	if replayed != n {
		t.Fatalf("trace source yielded %d events, want %d", replayed, n)
	}
}

// writerBuffer is a minimal in-memory io.ReadWriter (bytes.Buffer without
// the import dance in table tests).
type writerBuffer struct {
	b []byte
	r int
}

func (w *writerBuffer) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

func (w *writerBuffer) Read(p []byte) (int, error) {
	if w.r >= len(w.b) {
		return 0, io.EOF
	}
	n := copy(p, w.b[w.r:])
	w.r += n
	return n, nil
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{},
		{BaseURL: "http://x", Mode: OpenLoop},
		{BaseURL: "http://x", Mode: OpenLoop, Stages: []Stage{{RPS: 0, Duration: time.Second}}},
		{BaseURL: "http://x", Mode: ClosedLoop},
		{BaseURL: "http://x", Mode: Mode(9)},
	}
	for i, c := range cases {
		if _, err := New(c); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, c)
		}
	}
	if _, err := ParseMode("open"); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseMode("weird"); err == nil {
		t.Fatal("ParseMode accepted garbage")
	}
}
