package loadgen

import (
	"context"
	"errors"
	"testing"
	"time"

	"planetapps/internal/storeserver"
)

// TestDayRollScenario drives an open-loop run across a mid-load
// AdvanceDay and checks the report splits the measured window at the
// swap: both sides populated, counts adding up to the full window, and
// the roll metadata recorded.
func TestDayRollScenario(t *testing.T) {
	srv, ts := testStore(t, storeserver.Config{PageSize: 50})
	dayBefore := srv.Day()
	g, err := New(Config{
		BaseURL: ts.URL,
		Mode:    OpenLoop,
		Stages: []Stage{
			{RPS: 400, Duration: 600 * time.Millisecond},
		},
		DayRollAfter: 200 * time.Millisecond,
		DayRollFn:    srv.AdvanceDay,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := g.Run(context.Background(), NewSliceSource(syntheticEvents(100000, 500, 40)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.DayRoll == nil || !rep.DayRoll.Rolled {
		t.Fatalf("day roll not recorded: %+v", rep.DayRoll)
	}
	if srv.Day() != dayBefore+1 {
		t.Fatalf("store day %d, want %d", srv.Day(), dayBefore+1)
	}
	if rep.DayRoll.AtSec <= 0 || rep.DayRoll.Error != "" {
		t.Fatalf("bad roll metadata: %+v", rep.DayRoll)
	}
	det := rep.Classes[0]
	if det.Class != ClassDetail {
		t.Fatalf("first class = %q", det.Class)
	}
	if det.PreRollMS == nil || det.PostRollMS == nil {
		t.Fatalf("missing pre/post summaries: pre=%v post=%v", det.PreRollMS, det.PostRollMS)
	}
	if det.PreRollCount == 0 || det.PostRollCount == 0 {
		t.Fatalf("empty split: pre=%d post=%d", det.PreRollCount, det.PostRollCount)
	}
	// The split partitions the full measured window. Requests in flight
	// when the run ends can miss the full-window histogram too, so compare
	// the two histograms, not the request counter.
	full := g.classes[ClassDetail].latency.Snapshot().Count
	if det.PreRollCount+det.PostRollCount != full {
		t.Fatalf("pre %d + post %d != measured %d", det.PreRollCount, det.PostRollCount, full)
	}
	checkAccounting(t, rep)
}

// TestDayRollErrorReported surfaces a failing roll in the report rather
// than aborting the run.
func TestDayRollErrorReported(t *testing.T) {
	_, ts := testStore(t, storeserver.Config{PageSize: 50})
	g, err := New(Config{
		BaseURL: ts.URL,
		Mode:    OpenLoop,
		Stages: []Stage{
			{RPS: 200, Duration: 300 * time.Millisecond},
		},
		DayRollAfter: 100 * time.Millisecond,
		DayRollFn:    func() error { return errors.New("period complete") },
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := g.Run(context.Background(), NewSliceSource(syntheticEvents(100000, 500, 40)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.DayRoll == nil || !rep.DayRoll.Rolled || rep.DayRoll.Error != "period complete" {
		t.Fatalf("roll error not reported: %+v", rep.DayRoll)
	}
}

// TestDayRollNeverFires: a run shorter than the roll offset reports
// Rolled=false and leaves no dangling goroutine (the roll timer is
// cancelled when Run returns).
func TestDayRollNeverFires(t *testing.T) {
	_, ts := testStore(t, storeserver.Config{PageSize: 50})
	g, err := New(Config{
		BaseURL: ts.URL,
		Mode:    OpenLoop,
		Stages: []Stage{
			{RPS: 200, Duration: 100 * time.Millisecond},
		},
		DayRollAfter: time.Hour,
		DayRollFn:    func() error { t.Error("roll fired"); return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := g.Run(context.Background(), NewSliceSource(syntheticEvents(100000, 500, 40)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.DayRoll == nil || rep.DayRoll.Rolled {
		t.Fatalf("expected unfired roll in report, got %+v", rep.DayRoll)
	}
}

// TestDayRollValidation: DayRollAfter without a roll function is a config
// error.
func TestDayRollValidation(t *testing.T) {
	_, err := New(Config{
		BaseURL:      "http://127.0.0.1:0",
		Mode:         ClosedLoop,
		Users:        1,
		DayRollAfter: time.Second,
	})
	if err == nil {
		t.Fatal("DayRollAfter without DayRollFn accepted")
	}
}
