package loadgen

import (
	"context"
	"testing"

	"planetapps/internal/storeserver"
)

// TestWireByteAccounting pins the per-class wire accounting: a negotiated
// (AcceptGzip) run against the v1 surface must record compressed responses
// and their wire size, while an identity run over the same workload records
// everything under identity bytes — and the compressed run must move fewer
// body bytes for the same documents.
func TestWireByteAccounting(t *testing.T) {
	_, ts := testStore(t, storeserver.Config{PageSize: 50})
	const n = 200
	run := func(acceptGzip bool) *Report {
		t.Helper()
		g, err := New(Config{
			BaseURL:    ts.URL,
			APIPrefix:  "/api/v1",
			Mode:       ClosedLoop,
			Users:      4,
			AcceptGzip: acceptGzip,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := g.Run(context.Background(), NewSliceSource(syntheticEvents(n, 50, 40)))
		if err != nil {
			t.Fatal(err)
		}
		checkAccounting(t, rep)
		return rep
	}

	id := run(false)
	if id.GzipResponses != 0 || id.GzipBytes != 0 {
		t.Fatalf("identity run recorded compressed traffic: %d responses, %d bytes",
			id.GzipResponses, id.GzipBytes)
	}
	if id.IdentityBytes == 0 {
		t.Fatal("identity run recorded no body bytes")
	}

	gz := run(true)
	if gz.GzipResponses == 0 || gz.GzipBytes == 0 {
		t.Fatal("negotiated run never received a compressed response from the v1 surface")
	}
	if wire := gz.GzipBytes + gz.IdentityBytes; wire >= id.IdentityBytes {
		t.Fatalf("compression saved nothing on the wire: %d bytes negotiated vs %d identity",
			wire, id.IdentityBytes)
	}

	// The per-class split must add up to the report totals.
	for _, rep := range []*Report{id, gz} {
		var gzb, idb, gzr int64
		for _, c := range rep.Classes {
			gzb += c.GzipBytes
			idb += c.IdentityBytes
			gzr += c.GzipResponses
		}
		if gzb != rep.GzipBytes || idb != rep.IdentityBytes || gzr != rep.GzipResponses {
			t.Fatalf("class wire totals (%d gz, %d id, %d responses) != report (%d, %d, %d)",
				gzb, idb, gzr, rep.GzipBytes, rep.IdentityBytes, rep.GzipResponses)
		}
	}
	t.Logf("wire: identity %d bytes; negotiated %d compressed + %d identity (%d gzip responses)",
		id.IdentityBytes, gz.GzipBytes, gz.IdentityBytes, gz.GzipResponses)
}
