package loadgen

import (
	"context"
	"io"

	"planetapps/internal/model"
	"planetapps/internal/trace"
)

// Source yields the download events a Generator replays as HTTP traffic.
// Next returns io.EOF when the workload is exhausted. Implementations need
// not be safe for concurrent use; the Generator serializes access.
type Source interface {
	Next() (model.Event, error)
}

// traceSource adapts a trace.Reader.
type traceSource struct {
	r *trace.Reader
}

// NewTraceSource replays a recorded binary trace.
func NewTraceSource(r *trace.Reader) Source { return &traceSource{r: r} }

func (s *traceSource) Next() (model.Event, error) { return s.r.Read() }

// sliceSource serves a fixed event list (tests, pre-materialized traces).
type sliceSource struct {
	events []model.Event
	i      int
}

// NewSliceSource replays an in-memory event slice.
func NewSliceSource(events []model.Event) Source { return &sliceSource{events: events} }

func (s *sliceSource) Next() (model.Event, error) {
	if s.i >= len(s.events) {
		return model.Event{}, io.EOF
	}
	e := s.events[s.i]
	s.i++
	return e, nil
}

// modelSource synthesizes events live from a workload simulator, bridging
// the push-style Simulator.Stream into the pull-style Source through a
// bounded channel so generation overlaps replay without materializing the
// whole trace.
type modelSource struct {
	ch     <-chan model.Event
	cancel context.CancelFunc
}

// NewModelSource streams events from sim under ctx; canceling ctx stops
// the generator goroutine. The source ends after the simulator's full
// workload (bound it with Config.MaxEvents if needed).
func NewModelSource(ctx context.Context, sim *model.Simulator, seed uint64) Source {
	ctx, cancel := context.WithCancel(ctx)
	ch := make(chan model.Event, 1024)
	go func() {
		defer close(ch)
		sim.Stream(seed, func(e model.Event) bool {
			select {
			case ch <- e:
				return true
			case <-ctx.Done():
				return false
			}
		})
	}()
	return &modelSource{ch: ch, cancel: cancel}
}

func (s *modelSource) Next() (model.Event, error) {
	e, ok := <-s.ch
	if !ok {
		return model.Event{}, io.EOF
	}
	return e, nil
}

// Close stops the generating goroutine early; safe to call repeatedly.
func (s *modelSource) Close() { s.cancel() }
