package loadgen

import (
	"encoding/json"
	"io"
	"time"

	"planetapps/internal/gcstats"
	"planetapps/internal/metrics"
)

// LatencySummary is a latency distribution in milliseconds.
type LatencySummary struct {
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
}

func summarize(s *metrics.HistogramSnapshot) LatencySummary {
	ms := func(ns int64) float64 { return float64(ns) / 1e6 }
	return LatencySummary{
		P50:  ms(s.Quantile(0.50)),
		P90:  ms(s.Quantile(0.90)),
		P95:  ms(s.Quantile(0.95)),
		P99:  ms(s.Quantile(0.99)),
		P999: ms(s.Quantile(0.999)),
		Mean: s.Mean() / 1e6,
		Max:  ms(s.Max),
	}
}

// ClassReport aggregates one request class (detail lookups, APK
// downloads) over the measured (post-warmup) window. PreRoll/PostRoll
// split the window at the day-roll instant when the run was configured
// with one, exposing the post-swap cold-cache latency separately.
type ClassReport struct {
	Class         string          `json:"class"`
	Requests      int64           `json:"requests"`
	OK            int64           `json:"ok"`
	RateLimited   int64           `json:"rate_limited"`
	Errors        int64           `json:"errors"`
	OtherStatus   int64           `json:"other_status"`
	LatencyMS     LatencySummary  `json:"latency_ms"`
	PreRollMS     *LatencySummary `json:"pre_roll_latency_ms,omitempty"`
	PostRollMS    *LatencySummary `json:"post_roll_latency_ms,omitempty"`
	PreRollCount  int64           `json:"pre_roll_requests,omitempty"`
	PostRollCount int64           `json:"post_roll_requests,omitempty"`

	// Wire accounting: body bytes as transferred, split by the encoding
	// the server actually sent. GzipResponses counts responses that
	// arrived compressed; GzipBytes is their wire size, IdentityBytes the
	// wire size of everything that arrived plain.
	GzipResponses int64 `json:"gzip_responses"`
	GzipBytes     int64 `json:"gzip_bytes"`
	IdentityBytes int64 `json:"identity_bytes"`
}

// WriteReport aggregates one write endpoint over the measured window.
// The outcome vocabulary mirrors the store's ack semantics: Accepted
// writes were logged fresh, Deduped ones replayed an Idempotency-Key,
// Duplicate ones lost the natural-key race (409), Backpressure429 ones
// hit a full WAL, Rejected covers every other non-2xx verdict.
type WriteReport struct {
	Endpoint        string         `json:"endpoint"`
	Posts           int64          `json:"posts"`
	Accepted        int64          `json:"accepted"`
	Deduped         int64          `json:"deduped"`
	Duplicate       int64          `json:"duplicate"`
	Backpressure429 int64          `json:"backpressure_429"`
	Rejected        int64          `json:"rejected"`
	Errors          int64          `json:"errors"`
	LatencyMS       LatencySummary `json:"latency_ms"`
}

// DayRollReport records the mid-run AdvanceDay a day-roll scenario fired.
type DayRollReport struct {
	// Rolled is false when the run ended before the roll was due.
	Rolled bool `json:"rolled"`
	// AtSec is when the roll completed, relative to run start.
	AtSec float64 `json:"at_sec"`
	// RollMS is how long the AdvanceDay itself took.
	RollMS float64 `json:"roll_ms"`
	Error  string  `json:"error,omitempty"`
	// PostRollDay is the first X-Store-Day observed on a response whose
	// request started after the roll completed (-1 if none were seen);
	// MixedEpochResponses counts post-roll responses that disagreed with
	// it. A working two-phase fleet swap keeps this at zero: once the
	// commit returns, no client ever sees the old epoch again.
	PostRollDay         int64 `json:"post_roll_day"`
	MixedEpochResponses int64 `json:"mixed_epoch_responses"`
}

// GCReport summarizes the generator process's garbage-collection activity
// over the run — the load generator usually shares a process with the
// store under test (cmd/loadtest, examples/loadtest), so this is the GC
// cost of serving the replayed traffic. Cycles/PauseTotalMS/CPUFraction
// are deltas over the run; HeapObjects/HeapMB are end-of-run occupancy.
type GCReport struct {
	Cycles       uint64  `json:"cycles"`
	PauseTotalMS float64 `json:"pause_total_ms"`
	PauseP50US   float64 `json:"pause_p50_us"`
	PauseP99US   float64 `json:"pause_p99_us"`
	CPUFraction  float64 `json:"cpu_fraction"`
	HeapObjects  uint64  `json:"heap_objects"`
	HeapMB       float64 `json:"heap_mb"`
}

// Report is the JSON-serializable outcome of one Run. Counts cover the
// measured window; WarmupRequests tallies what the warmup excluded.
type Report struct {
	Mode           string        `json:"mode"`
	Events         int64         `json:"events"`
	Requests       int64         `json:"requests"`
	WarmupRequests int64         `json:"warmup_requests"`
	OK             int64         `json:"ok"`
	RateLimited    int64         `json:"rate_limited"`
	Errors         int64         `json:"errors"`
	OtherStatus    int64         `json:"other_status"`
	Dropped        int64         `json:"dropped"`
	GzipResponses  int64         `json:"gzip_responses"`
	GzipBytes      int64         `json:"gzip_bytes"`
	IdentityBytes  int64         `json:"identity_bytes"`
	DurationSec    float64       `json:"duration_sec"`
	MeasuredSec    float64       `json:"measured_sec"`
	ThroughputRPS  float64       `json:"throughput_rps"`
	Classes        []ClassReport `json:"classes"`
	// Writes appears when the run drove a write mix. Write requests are
	// accounted here, not in Requests/ThroughputRPS, so read-path
	// baselines stay comparable across write-mix settings; WriteAccepted
	// and WriteDeduped total the per-endpoint rows (the cross-check
	// against the store's WAL counters).
	Writes        []WriteReport  `json:"writes,omitempty"`
	WriteAccepted int64          `json:"write_accepted,omitempty"`
	WriteDeduped  int64          `json:"write_deduped,omitempty"`
	DayRoll       *DayRollReport `json:"day_roll,omitempty"`
	GC            *GCReport      `json:"gc,omitempty"`
}

func (g *Generator) report(elapsed time.Duration) *Report {
	rep := &Report{
		Mode:        g.cfg.Mode.String(),
		Events:      g.events,
		Dropped:     g.dropped.Value(),
		DurationSec: elapsed.Seconds(),
	}
	measured := elapsed - g.cfg.Warmup
	if measured < 0 {
		measured = 0
	}
	rep.MeasuredSec = measured.Seconds()
	for _, class := range []string{ClassDetail, ClassList, ClassAPK} {
		cs := g.classes[class]
		cr := ClassReport{
			Class:         class,
			Requests:      cs.requests.Value(),
			OK:            cs.ok.Value(),
			RateLimited:   cs.rateLimited.Value(),
			Errors:        cs.errors.Value(),
			OtherStatus:   cs.otherStatus.Value(),
			LatencyMS:     summarize(cs.latency.Snapshot()),
			GzipResponses: cs.gzipResponses.Value(),
			GzipBytes:     cs.gzipBytes.Value(),
			IdentityBytes: cs.identityBytes.Value(),
		}
		if g.cfg.DayRollAfter > 0 {
			if pre := cs.preRoll.Snapshot(); pre.Count > 0 {
				s := summarize(pre)
				cr.PreRollMS, cr.PreRollCount = &s, pre.Count
			}
			if post := cs.postRoll.Snapshot(); post.Count > 0 {
				s := summarize(post)
				cr.PostRollMS, cr.PostRollCount = &s, post.Count
			}
		}
		if cr.Requests == 0 && class != ClassDetail {
			continue
		}
		rep.Requests += cr.Requests
		rep.WarmupRequests += cs.warmup.Value()
		rep.OK += cr.OK
		rep.RateLimited += cr.RateLimited
		rep.Errors += cr.Errors
		rep.OtherStatus += cr.OtherStatus
		rep.GzipResponses += cr.GzipResponses
		rep.GzipBytes += cr.GzipBytes
		rep.IdentityBytes += cr.IdentityBytes
		rep.Classes = append(rep.Classes, cr)
	}
	if rep.MeasuredSec > 0 {
		rep.ThroughputRPS = float64(rep.Requests) / rep.MeasuredSec
	}
	if g.cfg.WriteMix > 0 {
		for _, ep := range writeEndpoints {
			ws := g.writes[ep]
			wr := WriteReport{
				Endpoint:        ep,
				Posts:           ws.posts.Value(),
				Accepted:        ws.accepted.Value(),
				Deduped:         ws.deduped.Value(),
				Duplicate:       ws.duplicate.Value(),
				Backpressure429: ws.backpressure.Value(),
				Rejected:        ws.rejected.Value(),
				Errors:          ws.errors.Value(),
				LatencyMS:       summarize(ws.latency.Snapshot()),
			}
			rep.WriteAccepted += wr.Accepted
			rep.WriteDeduped += wr.Deduped
			rep.WarmupRequests += ws.warmup.Value()
			rep.Writes = append(rep.Writes, wr)
		}
	}
	if g.cfg.DayRollAfter > 0 {
		dr := &DayRollReport{PostRollDay: g.postRollDay.Load()}
		if mark := g.rollMark.Load(); mark > 0 {
			dr.Rolled = true
			dr.AtSec = float64(mark-g.startedAt.UnixNano()) / 1e9
			dr.RollMS = float64(g.rollDur) / 1e6
			dr.MixedEpochResponses = g.mixedEpoch.Value()
			if g.rollErr != nil {
				dr.Error = g.rollErr.Error()
			}
		}
		rep.DayRoll = dr
	}
	delta := gcstats.Read().Since(g.gcStart)
	rep.GC = &GCReport{
		Cycles:       delta.Cycles,
		PauseTotalMS: float64(delta.PauseTotal()) / 1e6,
		PauseP50US:   float64(delta.PauseQuantile(0.50)) / 1e3,
		PauseP99US:   float64(delta.PauseQuantile(0.99)) / 1e3,
		CPUFraction:  delta.CPUFraction(),
		HeapObjects:  delta.HeapObjects,
		HeapMB:       float64(delta.HeapBytes) / (1 << 20),
	}
	return rep
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
