// Package loadgen replays workload-model download streams as live HTTP
// traffic against a storeserver — the missing link between the paper's
// generative workload models (internal/model, internal/trace) and the
// ROADMAP's production-scale serving goal. A Generator drives a store in
// one of two classical load-testing disciplines:
//
//   - Open loop: requests are launched on a fixed schedule (target RPS per
//     ramp stage) regardless of how fast the server responds, the arrival
//     pattern of independent internet users. Slow responses pile up as
//     in-flight requests rather than slowing the arrival rate, so latency
//     under overload is measured honestly (no coordinated omission).
//   - Closed loop: N virtual users issue a request, wait for the response,
//     think, and repeat — the session behavior of a device checking an
//     appstore. Throughput self-regulates with server speed.
//
// Every virtual user presents a stable synthetic client address derived
// from the workload's user id (via X-Forwarded-For, the header the repo's
// proxy fleet uses), so the store's per-client rate limiter sees the same
// population structure the workload model generated.
package loadgen

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"planetapps/internal/gcstats"
	"planetapps/internal/metrics"
	"planetapps/internal/model"
)

// Mode selects the load discipline.
type Mode int

const (
	// OpenLoop launches requests on a schedule defined by Stages.
	OpenLoop Mode = iota
	// ClosedLoop runs Users virtual users with think time.
	ClosedLoop
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case OpenLoop:
		return "open"
	case ClosedLoop:
		return "closed"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ParseMode parses "open" or "closed".
func ParseMode(s string) (Mode, error) {
	switch s {
	case "open":
		return OpenLoop, nil
	case "closed":
		return ClosedLoop, nil
	default:
		return 0, fmt.Errorf("loadgen: unknown mode %q (want open or closed)", s)
	}
}

// Stage is one open-loop ramp step: hold RPS for Duration.
type Stage struct {
	RPS      float64
	Duration time.Duration
}

// Config controls a Generator.
type Config struct {
	// BaseURL is the store root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// APIPrefix selects the API surface to drive: "/api" (default,
	// legacy) or "/api/v1".
	APIPrefix string
	// Client is the HTTP client; nil gets a client tuned for many
	// concurrent connections to one host.
	Client *http.Client

	// Mode selects open- or closed-loop driving.
	Mode Mode
	// Stages is the open-loop schedule; required for OpenLoop.
	Stages []Stage
	// Users is the closed-loop virtual-user count; required for ClosedLoop.
	Users int
	// Think is the mean closed-loop think time between a virtual user's
	// requests, drawn from an exponential distribution (0 = none).
	Think time.Duration

	// MaxInFlight bounds concurrently outstanding open-loop requests;
	// arrivals past the bound are dropped and counted (overload signal).
	// <= 0 defaults to 4096.
	MaxInFlight int
	// Warmup excludes the run's initial window from recorded statistics;
	// requests still fly, they are just tallied separately.
	Warmup time.Duration
	// Timeout is the per-request deadline; <= 0 defaults to 10s.
	Timeout time.Duration
	// MaxEvents stops the run after replaying this many workload events
	// (0 = run the source dry or until Stages end).
	MaxEvents int64
	// APKEvery issues a full APK download for every Nth event in addition
	// to the metadata request (0 = metadata only).
	APKEvery int
	// ListEvery issues a catalog listing request (the first page) for
	// every Nth event in addition to the metadata request (0 = none) —
	// the catalog-browse slice of the workload mix. The first page is the
	// only anchor every topology shares: cursors are opaque and
	// target-specific (a fleet gateway mints its own), so a generator
	// cannot fabricate mid-walk positions portably. Against a fleet this
	// is also the expensive class — the gateway must scatter to every
	// shard and merge, where a single node serves a pre-rendered page.
	ListEvery int
	// WriteMix is the fraction of workload events that also drive the v1
	// write funnel (0..1): each selected event POSTs a download for its
	// (user, app), and a deterministic slice of those add a rating and a
	// comment. Selection hashes (user, app) with Seed, so the same
	// workload and seed issue the same writes regardless of mode or
	// concurrency, and each write carries an Idempotency-Key derived from
	// the same tuple, so retries and re-runs dedup instead of
	// double-counting. Requires APIPrefix "/api/v1" — the legacy surface
	// is read-only.
	WriteMix float64
	// AcceptGzip negotiates compressed transfer: every request carries an
	// explicit Accept-Encoding — "gzip" when set, "identity" when not —
	// so the wire representation is deterministic and visible (the Go
	// transport's invisible auto-gzip is bypassed either way). The report
	// then splits response bytes by the encoding that actually arrived.
	AcceptGzip bool
	// Seed drives think-time jitter.
	Seed uint64

	// DayRollAfter invokes DayRollFn once, this long into the measured
	// (post-warmup) window, so the run straddles a snapshot swap; requests
	// started before and after the roll completes are summarized
	// separately in the Report, making the post-swap cold-cache spike
	// (and a pre-warm's effect on it) directly visible (0 = no roll).
	DayRollAfter time.Duration
	// DayRollFn performs the mid-load day roll — typically the store's
	// AdvanceDay. Required when DayRollAfter > 0.
	DayRollFn func() error
}

// Request classes reported separately: metadata detail lookups, catalog
// listing pages, and APK payload downloads.
const (
	ClassDetail = "detail"
	ClassList   = "list"
	ClassAPK    = "apk"
)

// Write endpoints reported separately when WriteMix > 0. The names match
// the store's store_writes_total endpoint label, so client- and
// server-side write accounting line up term for term.
const (
	WriteDownload = "download"
	WriteRate     = "rate"
	WriteComment  = "comment"
)

// writeEndpoints is the canonical report order.
var writeEndpoints = []string{WriteDownload, WriteRate, WriteComment}

// writeStats accumulates one write endpoint's outcomes, keyed by the
// store's ack vocabulary: accepted (logged fresh), deduped (idempotency
// replay), duplicate (natural key taken, 409), backpressure (WAL full,
// 429), rejected (any other non-2xx verdict), errors (transport).
type writeStats struct {
	posts        metrics.Counter
	accepted     metrics.Counter
	deduped      metrics.Counter
	duplicate    metrics.Counter
	backpressure metrics.Counter
	rejected     metrics.Counter
	errors       metrics.Counter
	warmup       metrics.Counter
	latency      *metrics.Histogram
}

// classStats accumulates one request class. preRoll/postRoll split the
// measured window at the day-roll instant (populated only when a roll is
// configured; latency always carries the full window).
type classStats struct {
	requests    metrics.Counter
	ok          metrics.Counter
	rateLimited metrics.Counter
	errors      metrics.Counter
	otherStatus metrics.Counter
	warmup      metrics.Counter
	latency     *metrics.Histogram
	preRoll     *metrics.Histogram
	postRoll    *metrics.Histogram

	// Response body bytes as they crossed the wire, split by the
	// Content-Encoding the server chose: gzipBytes arrived compressed,
	// identityBytes arrived plain. gzipResponses counts the former.
	gzipBytes     metrics.Counter
	identityBytes metrics.Counter
	gzipResponses metrics.Counter
}

func newClassStats() *classStats {
	return &classStats{
		latency:  metrics.NewHistogram(),
		preRoll:  metrics.NewHistogram(),
		postRoll: metrics.NewHistogram(),
	}
}

// Generator replays a Source against a store. Create with New; a
// Generator is single-use (statistics accumulate across Run calls
// otherwise).
type Generator struct {
	cfg    Config
	client *http.Client

	srcMu     sync.Mutex
	src       Source
	srcErr    error
	events    int64
	dropped   metrics.Counter
	classes   map[string]*classStats
	writes    map[string]*writeStats
	startedAt time.Time
	measureAt time.Time

	// Day-roll bookkeeping: rollMark is the UnixNano instant DayRollFn
	// completed (0 until then); rollDur/rollErr are written by the roll
	// goroutine before the mark and read only after Run joins it.
	rollMark atomic.Int64
	rollDur  time.Duration
	rollErr  error

	// Epoch coherence check: once the roll has completed, every response
	// to a request STARTED afterwards must come from the new snapshot —
	// postRollDay pins the first X-Store-Day observed post-roll (-1 until
	// then) and mixedEpoch counts responses that disagreed with it. Against
	// a fleet this is the client-side proof that the two-phase swap never
	// let an old epoch leak past its commit.
	postRollDay atomic.Int64
	mixedEpoch  metrics.Counter

	// gcStart is the runtime GC state sampled when Run begins; report()
	// diffs against a second sample to attribute GC activity to the run.
	gcStart gcstats.Stats
}

// New validates cfg and returns a Generator.
func New(cfg Config) (*Generator, error) {
	if cfg.BaseURL == "" {
		return nil, errors.New("loadgen: BaseURL required")
	}
	switch cfg.Mode {
	case OpenLoop:
		if len(cfg.Stages) == 0 {
			return nil, errors.New("loadgen: open loop requires at least one stage")
		}
		for i, st := range cfg.Stages {
			if st.RPS <= 0 || st.Duration <= 0 {
				return nil, fmt.Errorf("loadgen: stage %d: RPS and Duration must be positive", i)
			}
		}
	case ClosedLoop:
		if cfg.Users <= 0 {
			return nil, errors.New("loadgen: closed loop requires Users > 0")
		}
	default:
		return nil, fmt.Errorf("loadgen: unknown mode %v", cfg.Mode)
	}
	if cfg.DayRollAfter > 0 && cfg.DayRollFn == nil {
		return nil, errors.New("loadgen: DayRollAfter requires DayRollFn")
	}
	if cfg.APIPrefix == "" {
		cfg.APIPrefix = "/api"
	}
	if cfg.WriteMix < 0 || cfg.WriteMix > 1 {
		return nil, fmt.Errorf("loadgen: WriteMix %g out of [0, 1]", cfg.WriteMix)
	}
	if cfg.WriteMix > 0 && cfg.APIPrefix != "/api/v1" {
		return nil, errors.New("loadgen: WriteMix needs the v1 surface (APIPrefix /api/v1); legacy is read-only")
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 4096
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        cfg.MaxInFlight,
			MaxIdleConnsPerHost: cfg.MaxInFlight,
		}}
	}
	g := &Generator{
		cfg:    cfg,
		client: client,
		classes: map[string]*classStats{
			ClassDetail: newClassStats(),
			ClassList:   newClassStats(),
			ClassAPK:    newClassStats(),
		},
		writes: map[string]*writeStats{
			WriteDownload: {latency: metrics.NewHistogram()},
			WriteRate:     {latency: metrics.NewHistogram()},
			WriteComment:  {latency: metrics.NewHistogram()},
		},
	}
	g.postRollDay.Store(-1)
	return g, nil
}

// next pulls the next workload event, enforcing MaxEvents; ok is false at
// the end of the workload.
func (g *Generator) next() (model.Event, bool) {
	g.srcMu.Lock()
	defer g.srcMu.Unlock()
	if g.srcErr != nil {
		return model.Event{}, false
	}
	if g.cfg.MaxEvents > 0 && g.events >= g.cfg.MaxEvents {
		return model.Event{}, false
	}
	e, err := g.src.Next()
	if err != nil {
		if !errors.Is(err, io.EOF) {
			g.srcErr = err
		}
		return model.Event{}, false
	}
	g.events++
	return e, true
}

// clientAddr maps a workload user id to a stable synthetic client address
// so the store's per-client limiter sees one bucket per virtual user.
func clientAddr(user int32) string {
	u := uint32(user)
	return fmt.Sprintf("10.%d.%d.%d", (u>>16)&255, (u>>8)&255, u&255)
}

// issue performs one request and records it under class.
func (g *Generator) issue(ctx context.Context, class string, ev model.Event) {
	cs := g.classes[class]
	url := g.cfg.BaseURL + g.cfg.APIPrefix
	switch class {
	case ClassList:
		url += "/apps"
	case ClassAPK:
		url += "/apps/" + strconv.Itoa(int(ev.App)) + "/apk"
	default:
		url += "/apps/" + strconv.Itoa(int(ev.App))
	}
	rctx, cancel := context.WithTimeout(ctx, g.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, url, nil)
	if err != nil {
		cs.errors.Inc()
		return
	}
	req.Header.Set("X-Forwarded-For", clientAddr(ev.User))
	if g.cfg.AcceptGzip {
		req.Header.Set("Accept-Encoding", "gzip")
	} else {
		req.Header.Set("Accept-Encoding", "identity")
	}
	start := time.Now()
	record := !start.Before(g.measureAt)
	if !record {
		cs.warmup.Inc()
	} else {
		cs.requests.Inc()
	}
	resp, err := g.client.Do(req)
	if err != nil {
		if record {
			cs.errors.Inc()
		}
		return
	}
	wire, _ := io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if !record {
		return
	}
	if resp.Header.Get("Content-Encoding") == "gzip" {
		cs.gzipResponses.Inc()
		cs.gzipBytes.Add(wire)
	} else {
		cs.identityBytes.Add(wire)
	}
	elapsed := time.Since(start)
	cs.latency.Observe(int64(elapsed))
	if g.cfg.DayRollAfter > 0 {
		// Split on the request's start instant vs the roll's completion:
		// a request launched after the swap finished faces the new
		// snapshot's (possibly cold) response cache.
		if mark := g.rollMark.Load(); mark > 0 && start.UnixNano() >= mark {
			cs.postRoll.Observe(int64(elapsed))
			if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusNotModified {
				if day, err := strconv.Atoi(resp.Header.Get("X-Store-Day")); err == nil {
					if !g.postRollDay.CompareAndSwap(-1, int64(day)) && g.postRollDay.Load() != int64(day) {
						g.mixedEpoch.Inc()
					}
				}
			}
		} else {
			cs.preRoll.Observe(int64(elapsed))
		}
	}
	switch {
	case resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusNotModified:
		cs.ok.Inc()
	case resp.StatusCode == http.StatusTooManyRequests:
		cs.rateLimited.Inc()
	default:
		cs.otherStatus.Inc()
	}
}

// writeHash mixes (seed, user, app) into the 64 bits every write-mix
// decision derives from — a splitmix64 finalizer, so nearby ids decohere.
func writeHash(seed uint64, user, app int32) uint64 {
	x := seed ^ uint64(uint32(user))<<32 ^ uint64(uint32(app))
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// issueWrite POSTs one v1 mutation and classifies the store's verdict.
func (g *Generator) issueWrite(ctx context.Context, endpoint string, ev model.Event, h uint64) {
	ws := g.writes[endpoint]
	user := strconv.Itoa(int(ev.User))
	var tail, body string
	switch endpoint {
	case WriteDownload:
		tail, body = "/download", `{"user":`+user+`}`
	case WriteRate:
		tail = "/rate"
		body = `{"user":` + user + `,"rating":` + strconv.Itoa(int(h>>8)%5+1) + `}`
	case WriteComment:
		tail = "/comments"
		body = `{"user":` + user + `,"rating":` + strconv.Itoa(int(h>>16)%5+1) + `}`
	}
	url := g.cfg.BaseURL + g.cfg.APIPrefix + "/apps/" + strconv.Itoa(int(ev.App)) + tail
	rctx, cancel := context.WithTimeout(ctx, g.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		ws.errors.Inc()
		return
	}
	req.Header.Set("X-Forwarded-For", clientAddr(ev.User))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Idempotency-Key", "lg-u"+user+"-a"+strconv.Itoa(int(ev.App))+"-"+endpoint)
	start := time.Now()
	record := !start.Before(g.measureAt)
	if !record {
		ws.warmup.Inc()
	} else {
		ws.posts.Inc()
	}
	resp, err := g.client.Do(req)
	if err != nil {
		if record {
			ws.errors.Inc()
		}
		return
	}
	ackBody, _ := io.ReadAll(io.LimitReader(resp.Body, 4096)) //nolint:errcheck
	io.Copy(io.Discard, resp.Body)                            //nolint:errcheck
	resp.Body.Close()
	if !record {
		return
	}
	ws.latency.Observe(int64(time.Since(start)))
	// Write acks carry the serving epoch too: once the day-roll completes,
	// a post-roll ack disagreeing on X-Store-Day is the same coherence
	// violation the read path counts.
	if g.cfg.DayRollAfter > 0 && resp.StatusCode == http.StatusOK {
		if mark := g.rollMark.Load(); mark > 0 && start.UnixNano() >= mark {
			if day, err := strconv.Atoi(resp.Header.Get("X-Store-Day")); err == nil {
				if !g.postRollDay.CompareAndSwap(-1, int64(day)) && g.postRollDay.Load() != int64(day) {
					g.mixedEpoch.Inc()
				}
			}
		}
	}
	switch resp.StatusCode {
	case http.StatusOK:
		var ack struct {
			Deduped bool `json:"deduped"`
		}
		if json.Unmarshal(ackBody, &ack) == nil && ack.Deduped {
			ws.deduped.Inc()
		} else {
			ws.accepted.Inc()
		}
	case http.StatusConflict:
		ws.duplicate.Inc()
	case http.StatusTooManyRequests:
		ws.backpressure.Inc()
	default:
		ws.rejected.Inc()
	}
}

// issueEvent replays one workload event: a metadata detail request, plus
// a listing page for every ListEvery-th event, an APK download for every
// APKEvery-th event, and — when WriteMix selects the event's (user, app)
// — the write funnel: always a download, every 4th writer also rates,
// every 8th also comments.
func (g *Generator) issueEvent(ctx context.Context, ev model.Event, n int64) {
	g.issue(ctx, ClassDetail, ev)
	if g.cfg.ListEvery > 0 && n%int64(g.cfg.ListEvery) == 0 {
		g.issue(ctx, ClassList, ev)
	}
	if g.cfg.APKEvery > 0 && n%int64(g.cfg.APKEvery) == 0 {
		g.issue(ctx, ClassAPK, ev)
	}
	if g.cfg.WriteMix > 0 {
		h := writeHash(g.cfg.Seed, ev.User, ev.App)
		if float64(h>>40)/float64(1<<24) < g.cfg.WriteMix {
			g.issueWrite(ctx, WriteDownload, ev, h)
			if h&0x3 == 0 {
				g.issueWrite(ctx, WriteRate, ev, h)
			}
			if h&0x7 == 0 {
				g.issueWrite(ctx, WriteComment, ev, h)
			}
		}
	}
}

// Run replays src until the workload, the schedule, or ctx ends, then
// returns the Report. Context cancellation is a clean stop, not an error;
// a corrupt source surfaces as an error alongside the partial report.
func (g *Generator) Run(ctx context.Context, src Source) (*Report, error) {
	g.src = src
	g.startedAt = time.Now()
	g.measureAt = g.startedAt.Add(g.cfg.Warmup)
	g.gcStart = gcstats.Read()
	rctx, cancelRoll := context.WithCancel(ctx)
	var rollWG sync.WaitGroup
	if g.cfg.DayRollAfter > 0 {
		rollWG.Add(1)
		go g.dayRoll(rctx, &rollWG)
	}
	switch g.cfg.Mode {
	case OpenLoop:
		g.runOpen(ctx)
	case ClosedLoop:
		g.runClosed(ctx)
	}
	cancelRoll()
	rollWG.Wait()
	elapsed := time.Since(g.startedAt)
	rep := g.report(elapsed)
	return rep, g.srcErr
}

// dayRoll fires DayRollFn once, DayRollAfter into the measured window,
// and stamps the completion instant that issue() splits latencies on. If
// the run ends first the roll simply never happens (Report says so).
func (g *Generator) dayRoll(ctx context.Context, wg *sync.WaitGroup) {
	defer wg.Done()
	d := time.Until(g.measureAt.Add(g.cfg.DayRollAfter))
	if d < 0 {
		d = 0
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return
	case <-t.C:
	}
	start := time.Now()
	err := g.cfg.DayRollFn()
	g.rollDur = time.Since(start)
	g.rollErr = err
	g.rollMark.Store(time.Now().UnixNano())
}

// runOpen launches requests on the stage schedule. A timer goroutine per
// request would drift under load, so the pacer computes each arrival's
// absolute time and sleeps to it; launches that would exceed MaxInFlight
// are dropped and counted instead of stalling the schedule.
func (g *Generator) runOpen(ctx context.Context) {
	sem := make(chan struct{}, g.cfg.MaxInFlight)
	var wg sync.WaitGroup
	defer wg.Wait()
	var seq int64
	next := time.Now()
	for _, st := range g.cfg.Stages {
		interval := time.Duration(float64(time.Second) / st.RPS)
		stageEnd := next.Add(st.Duration)
		for next.Before(stageEnd) {
			if d := time.Until(next); d > 0 {
				t := time.NewTimer(d)
				select {
				case <-t.C:
				case <-ctx.Done():
					t.Stop()
					return
				}
			} else if ctx.Err() != nil {
				return
			}
			ev, ok := g.next()
			if !ok {
				return
			}
			n := seq
			seq++
			select {
			case sem <- struct{}{}:
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer func() { <-sem }()
					g.issueEvent(ctx, ev, n)
				}()
			default:
				g.dropped.Inc()
			}
			next = next.Add(interval)
		}
	}
}

// runClosed runs Users virtual users in lock step with the source.
func (g *Generator) runClosed(ctx context.Context) {
	var wg sync.WaitGroup
	for u := 0; u < g.cfg.Users; u++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g.cfg.Seed) + int64(id)))
			var seq int64
			for ctx.Err() == nil {
				ev, ok := g.next()
				if !ok {
					return
				}
				g.issueEvent(ctx, ev, seq)
				seq++
				if g.cfg.Think > 0 {
					d := time.Duration(r.ExpFloat64() * float64(g.cfg.Think))
					t := time.NewTimer(d)
					select {
					case <-t.C:
					case <-ctx.Done():
						t.Stop()
						return
					}
				}
			}
		}(u)
	}
	wg.Wait()
}
