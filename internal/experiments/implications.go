package experiments

import (
	"sort"

	"planetapps/internal/catalog"
	"planetapps/internal/comments"
	"planetapps/internal/model"
	"planetapps/internal/prefetch"
	"planetapps/internal/recommend"
	"planetapps/internal/report"
	"planetapps/internal/rng"
)

func init() {
	register("X3", func(s *Suite) (Result, error) { return PrefetchX3(s) })
	register("X4", func(s *Suite) (Result, error) { return RecommendX4(s) })
}

// PrefetchX3Result is the §7 "effective prefetching" study: hit rate and
// transfer cost of prefetching strategies under the clustering workload.
type PrefetchX3Result struct {
	Budget  int
	Results []prefetch.Result
}

// ID implements Result.
func (*PrefetchX3Result) ID() string { return "X3" }

// Tables implements Result.
func (r *PrefetchX3Result) Tables() []*report.Table {
	t := report.NewTable("X3: prefetching under APP-CLUSTERING",
		"strategy", "budget", "hit rate %", "transfers per hit")
	for _, res := range r.Results {
		t.AddRow(res.Strategy, res.Budget, res.HitRate(), res.TransfersPerHit())
	}
	return []*report.Table{t}
}

// HitRate returns the named strategy's hit rate, or -1 when absent.
func (r *PrefetchX3Result) HitRate(strategy string) float64 {
	for _, res := range r.Results {
		if res.Strategy == strategy {
			return res.HitRate()
		}
	}
	return -1
}

// PrefetchX3 compares no prefetching, popularity-only prefetching and the
// paper's category-top prefetching.
func PrefetchX3(s *Suite) (*PrefetchX3Result, error) {
	cfg := figure19Config(s)
	cm := model.RoundRobin(cfg.Apps, cfg.Clusters)
	ranked := make([]int32, cfg.Apps)
	for i := range ranked {
		ranked[i] = int32(i)
	}
	const budget = 10
	results, err := prefetch.Compare([]prefetch.Strategy{
		prefetch.None{},
		prefetch.NewGlobalTop(ranked),
		prefetch.NewCategoryTop(cm),
	}, cfg, budget, s.cfg.Seed)
	if err != nil {
		return nil, err
	}
	return &PrefetchX3Result{Budget: budget, Results: results}, nil
}

// RecommendX4Result is the §7 "better recommendation systems" study:
// next-download hit rate of popularity, collaborative-filtering and
// cluster-aware recommenders over comment-derived user histories.
type RecommendX4Result struct {
	K       int
	Results []recommend.EvalResult
}

// ID implements Result.
func (*RecommendX4Result) ID() string { return "X4" }

// Tables implements Result.
func (r *RecommendX4Result) Tables() []*report.Table {
	t := report.NewTable("X4: next-download prediction (top-k hit rate)",
		"recommender", "k", "trials", "hit rate %")
	for _, res := range r.Results {
		t.AddRow(res.Recommender, res.K, res.Trials, res.HitRate())
	}
	return []*report.Table{t}
}

// HitRate returns the named recommender's hit rate, or -1 when absent.
func (r *RecommendX4Result) HitRate(name string) float64 {
	for _, res := range r.Results {
		if res.Recommender == name {
			return res.HitRate()
		}
	}
	return -1
}

// RecommendX4 trains on the behaviour-study comment histories and evaluates
// next-download prediction.
func RecommendX4(s *Suite) (*RecommendX4Result, error) {
	cat, stream, err := s.CommentData()
	if err != nil {
		return nil, err
	}
	filtered := comments.Filter(stream, maxCommentsFilter)
	appStrings := comments.AppStrings(filtered)
	// Per-app comment counts proxy download popularity for the
	// recommenders' ranking inputs.
	downloads := make([]int64, cat.NumApps())
	for _, cm := range filtered {
		downloads[int(cm.App)]++
	}
	// Deterministic train/test split.
	r := rng.New(s.cfg.Seed + 0x7265636f) // "reco"
	var train, test [][]int32
	users := make([]int32, 0, len(appStrings))
	for u := range appStrings {
		users = append(users, u)
	}
	// Sort for determinism (map iteration order is random).
	sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })
	for _, u := range users {
		h := appStrings[u]
		if len(h) < 3 {
			continue
		}
		h32 := make([]int32, len(h))
		for i, a := range h {
			h32[i] = int32(a)
		}
		if r.Bool(0.2) {
			test = append(test, h32)
		} else {
			train = append(train, h32)
		}
	}
	const k = 10
	recs := []recommend.Recommender{
		recommend.NewPopularity(downloads),
		recommend.NewCollaborative(train),
		recommend.NewClusterAware(downloads, func(a int32) int32 {
			return int32(cat.CategoryOf(catalog.AppID(a)))
		}),
	}
	results, err := recommend.Evaluate(recs, test, k, 2)
	if err != nil {
		return nil, err
	}
	return &RecommendX4Result{K: k, Results: results}, nil
}
