package experiments

import (
	"fmt"

	"planetapps/internal/dist"
	"planetapps/internal/report"
	"planetapps/internal/snapshot"
	"planetapps/internal/stats"
)

func init() {
	register("T1", func(s *Suite) (Result, error) { return Table1(s) })
	register("F2", func(s *Suite) (Result, error) { return Figure2(s) })
	register("F3", func(s *Suite) (Result, error) { return Figure3(s) })
	register("F4", func(s *Suite) (Result, error) { return Figure4(s) })
}

// Table1Result is the dataset summary (Table 1).
type Table1Result struct {
	Rows []snapshot.Summary
}

// ID implements Result.
func (*Table1Result) ID() string { return "T1" }

// Tables implements Result.
func (r *Table1Result) Tables() []*report.Table {
	t := report.NewTable(
		"Table 1: summary of collected data",
		"store", "days", "apps first/last", "new apps/day", "downloads first/last", "daily downloads")
	for _, s := range r.Rows {
		t.AddRow(s.Store, s.Days,
			fmt.Sprintf("%d / %d", s.AppsFirst, s.AppsLast),
			s.NewAppsPerDay,
			fmt.Sprintf("%d / %d", s.DownloadsFirst, s.DownloadsLast),
			s.DailyDownloads)
	}
	return []*report.Table{t}
}

// Table1 summarizes every store's simulated measurement period.
func Table1(s *Suite) (*Table1Result, error) {
	out := &Table1Result{}
	for _, store := range s.StoreNames() {
		run, err := s.Market(store)
		if err != nil {
			return nil, err
		}
		sum, err := run.Series.Summarize()
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, sum)
	}
	return out, nil
}

// Figure2Result is the Pareto-effect CDF (Figure 2): per store, the share
// of downloads captured by the top k% of apps.
type Figure2Result struct {
	RankPcts []float64
	// Share[store][i] is the percentage of downloads captured by the top
	// RankPcts[i] percent of apps.
	Share map[string][]float64
	Order []string
}

// ID implements Result.
func (*Figure2Result) ID() string { return "F2" }

// Tables implements Result.
func (r *Figure2Result) Tables() []*report.Table {
	t := report.NewTable("Figure 2: percentage of downloads vs normalized app ranking",
		append([]string{"top-k% apps"}, r.Order...)...)
	for i, p := range r.RankPcts {
		row := []any{p}
		for _, store := range r.Order {
			row = append(row, r.Share[store][i])
		}
		t.AddRow(row...)
	}
	return []*report.Table{t}
}

// Figure2 computes the download share curves.
func Figure2(s *Suite) (*Figure2Result, error) {
	pcts := []float64{1, 2, 5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	out := &Figure2Result{RankPcts: pcts, Share: map[string][]float64{}, Order: s.StoreNames()}
	for _, store := range out.Order {
		run, err := s.Market(store)
		if err != nil {
			return nil, err
		}
		curve := run.Series.Last().Curve()
		sc := stats.NewShareCurve(curve.Downloads, pcts)
		out.Share[store] = sc.SharePct
	}
	return out, nil
}

// Figure3Result is the per-store rank-downloads distribution (Figure 3)
// with the fitted trunk exponent and truncation diagnostics.
type Figure3Result struct {
	Stores []Figure3Store
}

// Figure3Store is one subplot of Figure 3.
type Figure3Store struct {
	Store string
	Curve dist.RankCurve
	// TrunkExponent is the fitted power-law slope of the central trunk.
	TrunkExponent float64
	// HeadFlatness < 1 indicates fetch-at-most-once head truncation.
	HeadFlatness float64
	// TailDrop < 1 indicates clustering-effect tail truncation.
	TailDrop float64
	// Cutoff is the fitted power-law-with-exponential-cutoff model — the
	// functional form user-generated-content popularity follows, which the
	// paper notes resembles app popularity. A cutoff within the rank range
	// confirms the truncated tail.
	Cutoff dist.CutoffFit
}

// ID implements Result.
func (*Figure3Result) ID() string { return "F3" }

// Tables implements Result.
func (r *Figure3Result) Tables() []*report.Table {
	summary := report.NewTable("Figure 3: app popularity distributions (fit summary)",
		"store", "apps", "trunk exponent", "head flatness", "tail drop",
		"cutoff alpha", "cutoff rank")
	var tables []*report.Table
	for _, st := range r.Stores {
		summary.AddRow(st.Store, len(st.Curve.Downloads), st.TrunkExponent,
			st.HeadFlatness, st.TailDrop, st.Cutoff.Alpha, st.Cutoff.Cutoff)
	}
	tables = append(tables, summary)
	for _, st := range r.Stores {
		n := len(st.Curve.Downloads)
		idxs := report.LogSpacedIndexes(n, 16)
		xs := make([]float64, 0, len(idxs))
		ys := make([]float64, 0, len(idxs))
		for _, i := range idxs {
			xs = append(xs, float64(i+1))
			ys = append(ys, st.Curve.Downloads[i])
		}
		tables = append(tables, report.Series(
			fmt.Sprintf("Figure 3 (%s): downloads vs app rank (log-spaced sample)", st.Store),
			"rank", xs, 0, map[string][]float64{"downloads": ys}, []string{"downloads"}))
	}
	return tables
}

// Figure3 extracts the rank curves and their truncated power-law shape.
func Figure3(s *Suite) (*Figure3Result, error) {
	out := &Figure3Result{}
	for _, store := range s.StoreNames() {
		run, err := s.Market(store)
		if err != nil {
			return nil, err
		}
		curve := run.Series.Last().Curve()
		cut, _ := dist.FitPowerLawCutoff(curve)
		out.Stores = append(out.Stores, Figure3Store{
			Store:         store,
			Curve:         curve,
			TrunkExponent: curve.TrunkExponent(0.02, 0.3),
			HeadFlatness:  curve.HeadFlatness(),
			TailDrop:      curve.TailDrop(),
			Cutoff:        cut,
		})
	}
	return out, nil
}

// Figure4Result is the update-count CDF (Figure 4).
type Figure4Result struct {
	Stores []Figure4Store
}

// Figure4Store is one store's update statistics.
type Figure4Store struct {
	Store string
	// NoUpdatePct is the share of apps with zero updates in the period.
	NoUpdatePct float64
	// P99Updates is the 99th-percentile update count.
	P99Updates float64
	// TopNoUpdatePct is the zero-update share among the top 10% most
	// downloaded apps.
	TopNoUpdatePct float64
	// CDF holds P(updates <= k) for k = 0..6.
	CDF []float64
}

// ID implements Result.
func (*Figure4Result) ID() string { return "F4" }

// Tables implements Result.
func (r *Figure4Result) Tables() []*report.Table {
	t := report.NewTable("Figure 4: app update counts over the period",
		"store", "% never updated", "p99 updates", "% never updated (top 10%)",
		"P(u<=0)", "P(u<=2)", "P(u<=4)", "P(u<=6)")
	for _, st := range r.Stores {
		t.AddRow(st.Store, st.NoUpdatePct, st.P99Updates, st.TopNoUpdatePct,
			st.CDF[0], st.CDF[2], st.CDF[4], st.CDF[6])
	}
	return []*report.Table{t}
}

// Figure4 measures update behaviour, validating the fetch-at-most-once
// premise.
func Figure4(s *Suite) (*Figure4Result, error) {
	out := &Figure4Result{}
	for _, store := range s.StoreNames() {
		run, err := s.Market(store)
		if err != nil {
			return nil, err
		}
		counts := run.Series.UpdateCounts()
		if counts == nil {
			return nil, fmt.Errorf("experiments: store %s has no update data", store)
		}
		vals := make([]float64, len(counts))
		for i, c := range counts {
			vals[i] = float64(c)
		}
		ecdf := stats.NewECDF(vals)
		st := Figure4Store{
			Store:       store,
			NoUpdatePct: 100 * ecdf.At(0),
			P99Updates:  stats.Percentile(vals, 99),
		}
		for k := 0; k <= 6; k++ {
			st.CDF = append(st.CDF, ecdf.At(float64(k)))
		}
		topCounts := run.Series.UpdateCountsTop(0.10)
		zero := 0
		for _, c := range topCounts {
			if c == 0 {
				zero++
			}
		}
		if len(topCounts) > 0 {
			st.TopNoUpdatePct = 100 * float64(zero) / float64(len(topCounts))
		}
		out.Stores = append(out.Stores, st)
	}
	return out, nil
}
