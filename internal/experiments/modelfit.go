package experiments

import (
	"fmt"

	"planetapps/internal/dist"
	"planetapps/internal/model"
	"planetapps/internal/report"
)

func init() {
	register("F8", func(s *Suite) (Result, error) { return Figure8(s) })
	register("F9", func(s *Suite) (Result, error) { return Figure9(s) })
	register("F10", func(s *Suite) (Result, error) { return Figure10(s) })
	register("X1", func(s *Suite) (Result, error) { return AblationX1(s) })
}

// fitStores are the stores the paper fits models against in Figures 8-10.
var fitStores = []string{"appchina", "anzhi", "1mobile"}

// fitSpec is the standard fitting grid with the suite's worker budget
// threaded into the Monte Carlo refinement.
func fitSpec(s *Suite) model.FitSpec {
	spec := model.DefaultFitSpec()
	spec.Workers = s.cfg.Workers
	return spec
}

// Figure8Result compares the three models' best fits per store (Figure 8).
type Figure8Result struct {
	Stores []Figure8Store
}

// Figure8Store is one subplot: the best fit of each model to one store's
// final-day curve.
type Figure8Store struct {
	Store string
	Fits  []model.FitResult // ordered best-first
}

// ID implements Result.
func (*Figure8Result) ID() string { return "F8" }

// Tables implements Result.
func (r *Figure8Result) Tables() []*report.Table {
	t := report.NewTable("Figure 8: predicted vs measured popularity (best-fit parameters)",
		"store", "model", "zr", "zc", "p", "users", "distance")
	for _, st := range r.Stores {
		for _, f := range st.Fits {
			zc, p := "-", "-"
			if f.Kind == model.AppClustering {
				zc = report.FormatFloat(f.Config.ZipfCluster)
				p = report.FormatFloat(f.Config.ClusterP)
			}
			t.AddRow(st.Store, f.Kind.String(), f.Config.ZipfGlobal, zc, p, f.Config.Users, f.Distance)
		}
	}
	return []*report.Table{t}
}

// BestIsClustering reports whether APP-CLUSTERING won on every store within
// the tolerance factor slack (1 = strict win). Sparse stores (1mobile-like,
// few downloads per app) produce near-ties between APP-CLUSTERING and
// ZIPF-at-most-once, as in the paper's own noisier 1Mobile fits.
func (r *Figure8Result) BestIsClustering(slack float64) bool {
	for _, st := range r.Stores {
		var cl, best float64 = -1, -1
		for _, f := range st.Fits {
			if f.Kind == model.AppClustering {
				cl = f.Distance
			}
			if best < 0 || f.Distance < best {
				best = f.Distance
			}
		}
		if cl < 0 || cl > slack*best {
			return false
		}
	}
	return true
}

// Figure8 fits all three models to each store's measured final-day curve.
// Stores are fitted concurrently (each fit is itself parallel); results land
// in store-indexed slots so the output order matches fitStores.
func Figure8(s *Suite) (*Figure8Result, error) {
	out := &Figure8Result{Stores: make([]Figure8Store, len(fitStores))}
	err := s.forEach(len(fitStores), func(i int) error {
		store := fitStores[i]
		run, err := s.Market(store)
		if err != nil {
			return err
		}
		curve := run.Series.Last().Curve()
		fits, err := model.FitAllMC(trimZeroTail(curve), fitSpec(s), s.cfg.Seed)
		if err != nil {
			return err
		}
		out.Stores[i] = Figure8Store{Store: store, Fits: fits}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// trimZeroTail drops trailing zero-download ranks: the paper's measured
// curves only contain apps with at least one download, while simulated
// catalogs include never-downloaded apps whose zero entries the relative
// error metric cannot compare against.
func trimZeroTail(c dist.RankCurve) dist.RankCurve {
	n := len(c.Downloads)
	for n > 0 && c.Downloads[n-1] <= 0 {
		n--
	}
	return dist.RankCurve{Downloads: c.Downloads[:n]}
}

// Figure9Result compares model distances on first vs last crawl day
// (Figure 9).
type Figure9Result struct {
	Rows []Figure9Row
}

// Figure9Row is one dataset (store x day) with the three model distances.
type Figure9Row struct {
	Store string
	// Edge is "first" or "last".
	Edge      string
	Distances map[string]float64
}

// ID implements Result.
func (*Figure9Result) ID() string { return "F9" }

// Tables implements Result.
func (r *Figure9Result) Tables() []*report.Table {
	t := report.NewTable("Figure 9: distance from measured data (first/last day)",
		"store", "day", "ZIPF", "ZIPF-at-most-once", "APP-CLUSTERING")
	for _, row := range r.Rows {
		t.AddRow(row.Store, row.Edge,
			row.Distances[model.Zipf.String()],
			row.Distances[model.ZipfAtMostOnce.String()],
			row.Distances[model.AppClustering.String()])
	}
	return []*report.Table{t}
}

// ClusteringAlwaysBest reports whether APP-CLUSTERING had the smallest
// distance on every dataset, within a tolerance factor: slack = 1 demands a
// strict win everywhere; slack = 1.25 tolerates near-ties. The paper's own
// Figure 9 contains such near-ties (anzhi first-day: 0.14 vs ~0.15 for
// ZIPF-at-most-once), and low-volume early snapshots of the simulated
// stores are the noisiest datasets here as well.
func (r *Figure9Result) ClusteringAlwaysBest(slack float64) bool {
	for _, row := range r.Rows {
		c := row.Distances[model.AppClustering.String()]
		if c > slack*row.Distances[model.Zipf.String()] || c > slack*row.Distances[model.ZipfAtMostOnce.String()] {
			return false
		}
	}
	return true
}

// Figure9 fits each model to the first- and last-day curves of the three
// fit stores. The six (store, edge) datasets are fitted concurrently into
// index-distinct row slots, preserving the sequential row order.
func Figure9(s *Suite) (*Figure9Result, error) {
	edges := []string{"first", "last"}
	out := &Figure9Result{Rows: make([]Figure9Row, len(fitStores)*len(edges))}
	err := s.forEach(len(out.Rows), func(i int) error {
		store := fitStores[i/len(edges)]
		edge := edges[i%len(edges)]
		run, err := s.Market(store)
		if err != nil {
			return err
		}
		day := run.Series.First()
		if edge == "last" {
			day = run.Series.Last()
		}
		curve := trimZeroTail(day.Curve())
		if len(curve.Downloads) == 0 {
			return fmt.Errorf("experiments: store %s %s-day curve empty", store, edge)
		}
		row := Figure9Row{Store: store, Edge: edge, Distances: map[string]float64{}}
		for _, k := range model.Kinds {
			fit, err := model.FitMC(k, curve, fitSpec(s), s.cfg.Seed)
			if err != nil {
				return err
			}
			row.Distances[k.String()] = fit.Distance
		}
		out.Rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Figure10Result sweeps the simulated user count (Figure 10).
type Figure10Result struct {
	// Fractions of the top app's downloads used as U.
	Fractions []float64
	// Distance[store][i] is the best-fit distance at Fractions[i].
	Distance map[string][]float64
	Order    []string
}

// ID implements Result.
func (*Figure10Result) ID() string { return "F10" }

// Tables implements Result.
func (r *Figure10Result) Tables() []*report.Table {
	t := report.NewTable("Figure 10: distance vs number of users (fraction of top-app downloads)",
		append([]string{"users fraction"}, r.Order...)...)
	for i, f := range r.Fractions {
		row := []any{f}
		for _, store := range r.Order {
			row = append(row, r.Distance[store][i])
		}
		t.AddRow(row...)
	}
	return []*report.Table{t}
}

// ArgminFraction returns the fraction minimizing distance for a store.
func (r *Figure10Result) ArgminFraction(store string) float64 {
	ds := r.Distance[store]
	best := 0
	for i := range ds {
		if ds[i] < ds[best] {
			best = i
		}
	}
	return r.Fractions[best]
}

// Figure10 sweeps U as a fraction of the top app's downloads.
func Figure10(s *Suite) (*Figure10Result, error) {
	out := &Figure10Result{
		Fractions: []float64{0.1, 0.25, 0.5, 1, 2, 5, 10, 20, 50},
		Distance:  map[string][]float64{},
		Order:     fitStores,
	}
	// Per-store sweeps run concurrently; each writes a distinct slot of the
	// distances slice, and the map is assembled after the barrier.
	distances := make([][]float64, len(fitStores))
	err := s.forEach(len(fitStores), func(i int) error {
		run, err := s.Market(fitStores[i])
		if err != nil {
			return err
		}
		curve := trimZeroTail(run.Series.Last().Curve())
		// The paper fixes the non-U parameters at their best-fit values and
		// sweeps only the simulated user count.
		best, err := model.Fit(model.AppClustering, curve, model.DefaultFitSpec())
		if err != nil {
			return err
		}
		distances[i], err = model.UserSweepMC(model.AppClustering, curve, best.Config, out.Fractions, s.cfg.Seed)
		return err
	})
	if err != nil {
		return nil, err
	}
	for i, store := range fitStores {
		out.Distance[store] = distances[i]
	}
	return out, nil
}

// AblationX1Result varies the APP-CLUSTERING knobs to isolate their effect
// on the curve shape (extension X1).
type AblationX1Result struct {
	Rows []AblationRow
}

// AblationRow is one simulated configuration's shape summary.
type AblationRow struct {
	Label string
	P     float64
	Zc    float64
	// TailShare is the download share of the bottom half of ranks.
	TailShare float64
	// Top10Share is the download share of the top decile.
	Top10Share float64
	// DistanceToAMO is the distance from a matching ZIPF-at-most-once run.
	DistanceToAMO float64
}

// ID implements Result.
func (*AblationX1Result) ID() string { return "X1" }

// Tables implements Result.
func (r *AblationX1Result) Tables() []*report.Table {
	t := report.NewTable("X1: APP-CLUSTERING ablation (contiguous clusters)",
		"config", "p", "zc", "top-10% share", "bottom-half share", "distance to AMO")
	for _, row := range r.Rows {
		t.AddRow(row.Label, row.P, row.Zc, row.Top10Share, row.TailShare, row.DistanceToAMO)
	}
	return []*report.Table{t}
}

// AblationX1 sweeps p and zc under contiguous (popularity-correlated)
// clusters, showing that tail truncation strengthens with p and that p=0
// degenerates to ZIPF-at-most-once.
func AblationX1(s *Suite) (*AblationX1Result, error) {
	base := model.Config{
		Apps: 3000, Users: 8000, DownloadsPerUser: 12,
		ZipfGlobal: 1.3, ZipfCluster: 1.4, ClusterP: 0.9,
		ClusterMap: model.Contiguous(3000, 30),
	}
	amoSim, err := model.NewSimulator(model.ZipfAtMostOnce, base)
	if err != nil {
		return nil, err
	}
	amo := amoSim.Run(s.cfg.Seed).Curve()

	out := &AblationX1Result{}
	for _, cfgCase := range []struct {
		label string
		p, zc float64
	}{
		{"p=0 (degenerates to AMO)", 0, 1.4},
		{"p=0.5", 0.5, 1.4},
		{"p=0.9", 0.9, 1.4},
		{"p=0.9, flat clusters", 0.9, 0.8},
		{"p=0.9, steep clusters", 0.9, 2.0},
	} {
		cfg := base
		cfg.ClusterP = cfgCase.p
		cfg.ZipfCluster = cfgCase.zc
		sim, err := model.NewSimulator(model.AppClustering, cfg)
		if err != nil {
			return nil, err
		}
		curve := sim.Run(s.cfg.Seed).Curve()
		half := len(curve.Downloads) / 2
		var tail, total float64
		for i, v := range curve.Downloads {
			total += v
			if i >= half {
				tail += v
			}
		}
		var top float64
		for i := 0; i < len(curve.Downloads)/10; i++ {
			top += curve.Downloads[i]
		}
		out.Rows = append(out.Rows, AblationRow{
			Label: cfgCase.label, P: cfgCase.p, Zc: cfgCase.zc,
			TailShare:     tail / total,
			Top10Share:    top / total,
			DistanceToAMO: dist.MeanRelativeError(amo, curve),
		})
	}
	return out, nil
}
