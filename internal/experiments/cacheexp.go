package experiments

import (
	"planetapps/internal/cache"
	"planetapps/internal/model"
	"planetapps/internal/report"
)

func init() {
	register("F19", func(s *Suite) (Result, error) { return Figure19(s) })
	register("X2", func(s *Suite) (Result, error) { return CachePoliciesX2(s) })
}

// figure19Config scales the paper's cache simulation (60,000 apps, 30
// categories, 600,000 users, 2M downloads, zr=1.7, zc=1.4, p=0.9) by the
// suite's scale factor.
func figure19Config(s *Suite) model.Config {
	scale := s.cfg.Scale
	apps := int(6000 * scale)
	if apps < 600 {
		apps = 600
	}
	users := int(60000 * scale)
	if users < 2000 {
		users = 2000
	}
	downloads := 200000 * scale
	if downloads < 20000 {
		downloads = 20000
	}
	return model.Config{
		Apps:             apps,
		Users:            users,
		DownloadsPerUser: downloads / float64(users),
		ZipfGlobal:       1.7,
		ZipfCluster:      1.4,
		ClusterP:         0.9,
		Clusters:         30,
	}
}

// Figure19Result is the LRU cache study (Figure 19).
type Figure19Result struct {
	Points []cache.SweepPoint
}

// ID implements Result.
func (*Figure19Result) ID() string { return "F19" }

// Tables implements Result.
func (r *Figure19Result) Tables() []*report.Table {
	t := report.NewTable("Figure 19: LRU cache hit ratio vs cache size",
		"cache size (% apps)", "capacity (apps)", "ZIPF %", "ZIPF-at-most-once %", "APP-CLUSTERING %")
	for _, p := range r.Points {
		t.AddRow(p.SizePct, p.Capacity,
			p.HitRatio[model.Zipf.String()],
			p.HitRatio[model.ZipfAtMostOnce.String()],
			p.HitRatio[model.AppClustering.String()])
	}
	return []*report.Table{t}
}

// ClusteringLowest reports whether APP-CLUSTERING had the lowest hit ratio
// at every cache size, the paper's key observation.
func (r *Figure19Result) ClusteringLowest() bool {
	for _, p := range r.Points {
		c := p.HitRatio[model.AppClustering.String()]
		if c >= p.HitRatio[model.Zipf.String()] || c >= p.HitRatio[model.ZipfAtMostOnce.String()] {
			return false
		}
	}
	return true
}

// Figure19 sweeps the LRU cache across sizes and workload models.
func Figure19(s *Suite) (*Figure19Result, error) {
	points, err := cache.SweepLRU(figure19Config(s), []float64{1, 2, 4, 6, 8, 10, 14, 20}, s.cfg.Seed)
	if err != nil {
		return nil, err
	}
	return &Figure19Result{Points: points}, nil
}

// CachePoliciesX2Result compares replacement policies under the clustering
// workload (extension X2).
type CachePoliciesX2Result struct {
	Capacity int
	Results  []cache.SimResult
}

// ID implements Result.
func (*CachePoliciesX2Result) ID() string { return "X2" }

// Tables implements Result.
func (r *CachePoliciesX2Result) Tables() []*report.Table {
	t := report.NewTable("X2: replacement policies under APP-CLUSTERING",
		"policy", "capacity", "requests", "hit ratio %")
	for _, res := range r.Results {
		t.AddRow(res.Policy, res.Capacity, res.Requests, res.HitRatio())
	}
	return []*report.Table{t}
}

// HitRatio returns the named policy's hit ratio, or -1 when absent.
func (r *CachePoliciesX2Result) HitRatio(policy string) float64 {
	for _, res := range r.Results {
		if res.Policy == policy {
			return res.HitRatio()
		}
	}
	return -1
}

// CachePoliciesX2 runs the policy comparison at a 5% cache size.
func CachePoliciesX2(s *Suite) (*CachePoliciesX2Result, error) {
	cfg := figure19Config(s)
	capacity := cfg.Apps / 20
	if capacity < 10 {
		capacity = 10
	}
	results, err := cache.ComparePolicies(cfg, capacity, s.cfg.Seed)
	if err != nil {
		return nil, err
	}
	return &CachePoliciesX2Result{Capacity: capacity, Results: results}, nil
}
