package experiments

import (
	"planetapps/internal/affinity"
	"planetapps/internal/comments"
	"planetapps/internal/report"
	"planetapps/internal/stats"
)

func init() {
	register("F5", func(s *Suite) (Result, error) { return Figure5(s) })
	register("F6", func(s *Suite) (Result, error) { return Figure6(s) })
	register("F7", func(s *Suite) (Result, error) { return Figure7(s) })
}

// maxCommentsFilter mirrors the paper's spam threshold: users with more
// comments than this are treated as automated posters and dropped.
const maxCommentsFilter = 80

// Figure5Result is the user comment behaviour study (Figure 5a-d).
type Figure5Result struct {
	// CommentsPerUserCDF holds P(comments <= k) at the sampled Ks.
	Ks                 []int
	CommentsPerUserCDF []float64
	// UniqueCatsCDF holds P(unique categories <= k) for k = 1..10.
	UniqueCatsCDF []float64
	// SingleCategoryPct is the share of users commenting in one category
	// (paper: 53%).
	SingleCategoryPct float64
	// WithinFiveCatsPct is the share within five categories (paper: 94%).
	WithinFiveCatsPct float64
	// TopKSharePct[k-1] is the average share of a user's comments in their
	// top-k categories (paper: 66% for k=1, 95% for k=5).
	TopKSharePct []float64
	// CategoryDownloadPct is the per-category share of comments, sorted
	// descending (paper: max 12%).
	CategoryDownloadPct []float64
}

// ID implements Result.
func (*Figure5Result) ID() string { return "F5" }

// Tables implements Result.
func (r *Figure5Result) Tables() []*report.Table {
	a := report.NewTable("Figure 5(a): comments per user", "k", "P(comments<=k)")
	for i, k := range r.Ks {
		a.AddRow(k, r.CommentsPerUserCDF[i])
	}
	b := report.NewTable("Figure 5(b): unique categories per user", "k", "P(categories<=k)")
	for k := 1; k <= len(r.UniqueCatsCDF); k++ {
		b.AddRow(k, r.UniqueCatsCDF[k-1])
	}
	c := report.NewTable("Figure 5(c): avg % of comments in top-k categories", "k", "share %")
	for k := 1; k <= len(r.TopKSharePct); k++ {
		c.AddRow(k, r.TopKSharePct[k-1])
	}
	d := report.NewTable("Figure 5(d): downloads per app category (top 10)", "category rank", "share %")
	for i, v := range r.CategoryDownloadPct {
		if i >= 10 {
			break
		}
		d.AddRow(i+1, v)
	}
	return []*report.Table{a, b, c, d}
}

// Figure5 runs the comment-behaviour measurements.
func Figure5(s *Suite) (*Figure5Result, error) {
	cat, stream, err := s.CommentData()
	if err != nil {
		return nil, err
	}
	filtered := comments.Filter(stream, maxCommentsFilter)
	out := &Figure5Result{Ks: []int{1, 2, 3, 5, 10, 20, 30}}

	counts := comments.PerUserCounts(filtered)
	var vals []float64
	for _, n := range counts {
		vals = append(vals, float64(n))
	}
	ecdf := stats.NewECDF(vals)
	for _, k := range out.Ks {
		out.CommentsPerUserCDF = append(out.CommentsPerUserCDF, ecdf.At(float64(k)))
	}

	uniq := comments.UniqueCategoriesPerUser(cat, filtered)
	var uvals []float64
	for _, n := range uniq {
		uvals = append(uvals, float64(n))
	}
	ucdf := stats.NewECDF(uvals)
	for k := 1; k <= 10; k++ {
		out.UniqueCatsCDF = append(out.UniqueCatsCDF, ucdf.At(float64(k)))
	}
	out.SingleCategoryPct = 100 * ucdf.At(1)
	out.WithinFiveCatsPct = 100 * ucdf.At(5)

	out.TopKSharePct = comments.TopKShare(cat, filtered, 5)
	out.CategoryDownloadPct = comments.DownloadsPerCategory(cat, filtered)
	return out, nil
}

// Figure6Result is the grouped temporal-affinity study (Figure 6).
type Figure6Result struct {
	Analysis *affinity.Analysis
}

// ID implements Result.
func (*Figure6Result) ID() string { return "F6" }

// Tables implements Result.
func (r *Figure6Result) Tables() []*report.Table {
	var tables []*report.Table
	summary := report.NewTable("Figure 6: temporal affinity vs random-walk baseline",
		"depth", "mean affinity", "random walk", "ratio")
	for di, d := range r.Analysis.Depths {
		ratio := 0.0
		if r.Analysis.RandomWalk[di] > 0 {
			ratio = r.Analysis.OverallMean[di] / r.Analysis.RandomWalk[di]
		}
		summary.AddRow(d, r.Analysis.OverallMean[di], r.Analysis.RandomWalk[di], ratio)
	}
	tables = append(tables, summary)
	for di, d := range r.Analysis.Depths {
		t := report.NewTable(
			"Figure 6: affinity of group G(i) at depth "+report.FormatFloat(float64(d)),
			"comments i", "users", "mean affinity", "95% CI halfwidth")
		groups := r.Analysis.Groups[di]
		step := 1
		if len(groups) > 15 {
			step = len(groups) / 15
		}
		for i := 0; i < len(groups); i += step {
			g := groups[i]
			t.AddRow(g.Comments, g.N, g.Mean, g.CI95)
		}
		tables = append(tables, t)
	}
	return tables
}

// Figure6 measures per-group temporal affinity at depths 1-3.
func Figure6(s *Suite) (*Figure6Result, error) {
	an, err := affinityAnalysis(s)
	if err != nil {
		return nil, err
	}
	return &Figure6Result{Analysis: an}, nil
}

// affinityAnalysis runs the shared §4 pipeline.
func affinityAnalysis(s *Suite) (*affinity.Analysis, error) {
	cat, stream, err := s.CommentData()
	if err != nil {
		return nil, err
	}
	filtered := comments.Filter(stream, maxCommentsFilter)
	catStrings := comments.CategoryStrings(cat, comments.AppStrings(filtered))
	return affinity.Analyze(catStrings, cat.CategorySizes(), []int{1, 2, 3}, 10)
}

// Figure7Result is the affinity CDF study (Figure 7).
type Figure7Result struct {
	Analysis *affinity.Analysis
	// Medians per depth (paper: 0.5, 0.58, 0.67).
	Medians []float64
}

// ID implements Result.
func (*Figure7Result) ID() string { return "F7" }

// Tables implements Result.
func (r *Figure7Result) Tables() []*report.Table {
	t := report.NewTable("Figure 7: CDF of per-user affinity",
		"affinity", "P(depth1)", "P(depth2)", "P(depth3)")
	for _, x := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0} {
		row := []any{x}
		for di := range r.Analysis.Depths {
			row = append(row, r.Analysis.CDF(di).At(x))
		}
		t.AddRow(row...)
	}
	m := report.NewTable("Figure 7: medians and baselines", "depth", "median affinity", "random walk")
	for di, d := range r.Analysis.Depths {
		m.AddRow(d, r.Medians[di], r.Analysis.RandomWalk[di])
	}
	return []*report.Table{t, m}
}

// Figure7 computes the affinity CDFs per depth.
func Figure7(s *Suite) (*Figure7Result, error) {
	an, err := affinityAnalysis(s)
	if err != nil {
		return nil, err
	}
	meds := make([]float64, len(an.Depths))
	copy(meds, an.Medians)
	return &Figure7Result{Analysis: an, Medians: meds}, nil
}
