package experiments

import (
	"reflect"
	"sync"
	"testing"
)

// TestSuiteConcurrentUse drives one shared Suite from parallel goroutines —
// the access pattern the per-store single-flight cache exists for — and
// asserts every result is byte-identical to a fresh single-threaded
// (Workers=1) Suite. Under -race this doubles as the data-race proof for
// the suite's lazy market/comment computation, and the equality check is
// the end-to-end worker-count-invariance guarantee for the experiment
// layer.
func TestSuiteConcurrentUse(t *testing.T) {
	// A dedicated reduced config rather than the shared test suite: the
	// invariance property is config-independent, and this test pays for
	// every experiment twice (shared + fresh suite) under -race.
	cfg := Config{Seed: 11, Scale: 0.25, Days: 20, CommentUsers: 2000}
	shared, err := NewSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A cheap but representative slice of the registry: market aggregation
	// (T1 touches all four stores), curve shapes (F2/F3), snapshots (F4),
	// comment data (F5), a Monte Carlo model experiment (X1), and the cache
	// policy comparison (X2). F5 and X2 have both harboured map-iteration
	// nondeterminism that only this equality check caught — keep them in.
	ids := []string{"T1", "F2", "F3", "F4", "F5", "X1", "X2"}

	got := make([]Result, len(ids))
	errs := make([]error, len(ids))
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got[i], errs[i] = Run(shared, id)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("%s: %v", ids[i], err)
		}
	}

	cfg.Workers = 1
	fresh, err := NewSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		want, err := Run(fresh, id)
		if err != nil {
			t.Fatalf("%s (fresh): %v", id, err)
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("%s: concurrent shared-suite result differs from fresh single-threaded suite", id)
		}
	}
}

// TestSuiteMarketSingleFlight asserts concurrent requests for one store
// coalesce onto a single market simulation (same *MarketRun out of every
// call) while requests for different stores proceed independently.
func TestSuiteMarketSingleFlight(t *testing.T) {
	s, err := NewSuite(Config{Seed: 11, Scale: 0.25, Days: 20, CommentUsers: 1000})
	if err != nil {
		t.Fatal(err)
	}
	const callers = 8
	stores := s.StoreNames()
	runs := make([]*MarketRun, callers*len(stores))
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		for j, store := range stores {
			wg.Add(1)
			go func() {
				defer wg.Done()
				run, err := s.Market(store)
				if err != nil {
					t.Error(err)
					return
				}
				runs[c*len(stores)+j] = run
			}()
		}
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for c := 1; c < callers; c++ {
		for j := range stores {
			if runs[c*len(stores)+j] != runs[j] {
				t.Fatalf("store %s: caller %d got a different market run", stores[j], c)
			}
		}
	}
}

// TestSuiteWorkersValidation covers the new Workers knob.
func TestSuiteWorkersValidation(t *testing.T) {
	if _, err := NewSuite(Config{Scale: 1, Days: 30, CommentUsers: 1000, Workers: -1}); err == nil {
		t.Fatal("negative Workers accepted")
	}
	s, err := NewSuite(Config{Scale: 1, Days: 30, CommentUsers: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if s.Config().Workers < 1 {
		t.Fatalf("default Workers = %d, want >= 1", s.Config().Workers)
	}
}
