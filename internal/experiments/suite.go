// Package experiments contains one runner per table and figure of the
// paper's evaluation, plus the two extension studies DESIGN.md defines
// (X1 ablation, X2 cache policies). Each runner pulls its inputs from a
// shared Suite, which lazily simulates and caches the per-store markets so
// multiple experiments can reuse the same "measured" data — the way the
// paper reuses one crawl dataset across its analysis sections.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"planetapps/internal/catalog"
	"planetapps/internal/comments"
	"planetapps/internal/marketsim"
	"planetapps/internal/report"
	"planetapps/internal/snapshot"
)

// Config scales the whole experiment suite.
type Config struct {
	// Seed makes every experiment deterministic.
	Seed uint64
	// Scale multiplies the store population profiles (1.0 = the laptop
	// calibration in catalog.Profiles, which is itself ~10x below the
	// paper's stores). Tests use small scales for speed.
	Scale float64
	// Days is the simulated measurement period.
	Days int
	// CommentUsers is the commenting population for the behaviour study.
	CommentUsers int
	// Workers bounds the parallelism inside each experiment runner (per-
	// store fan-out, Monte Carlo candidate evaluation). Zero means
	// runtime.GOMAXPROCS(0). Every experiment's result is invariant to
	// Workers; the knob only controls scheduling.
	Workers int
}

// DefaultConfig returns the standard experiment configuration.
func DefaultConfig() Config {
	return Config{Seed: 1, Scale: 1.0, Days: 60, CommentUsers: 30000,
		Workers: runtime.GOMAXPROCS(0)}
}

// Suite carries lazily computed shared state. A Suite is safe for
// concurrent use: independent stores simulate concurrently, and each
// store's market is computed exactly once (per-store single-flight).
type Suite struct {
	cfg Config

	mu      sync.Mutex
	markets map[string]*marketEntry

	commentsOnce sync.Once
	cstream      []comments.Comment
	ccat         *catalog.Catalog
	commentsErr  error
}

// marketEntry is the single-flight slot for one store's market run: the
// first caller simulates inside the Once while concurrent callers for the
// same store wait, and callers for other stores proceed independently.
type marketEntry struct {
	once sync.Once
	run  *MarketRun
	err  error
}

// MarketRun couples a completed market simulation with its snapshots.
type MarketRun struct {
	Market *marketsim.Market
	Series *snapshot.Series
}

// NewSuite creates a suite.
func NewSuite(cfg Config) (*Suite, error) {
	if cfg.Scale <= 0 {
		return nil, fmt.Errorf("experiments: Scale = %v", cfg.Scale)
	}
	if cfg.Days < 2 {
		return nil, fmt.Errorf("experiments: Days = %d", cfg.Days)
	}
	if cfg.CommentUsers < 100 {
		return nil, fmt.Errorf("experiments: CommentUsers = %d, need >= 100", cfg.CommentUsers)
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("experiments: Workers = %d, need >= 0", cfg.Workers)
	}
	if cfg.Workers == 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	return &Suite{cfg: cfg, markets: map[string]*marketEntry{}}, nil
}

// Config returns the suite configuration.
func (s *Suite) Config() Config { return s.cfg }

// StoreNames returns the simulated store names in presentation order
// (largest stores first, as in the paper's tables).
func (s *Suite) StoreNames() []string {
	return []string{"anzhi", "appchina", "1mobile", "slideme"}
}

// Market returns (simulating on first use) the completed market run for a
// store profile. The suite mutex guards only the entry lookup; the
// simulation itself runs inside the entry's Once, so concurrent callers
// asking for different stores simulate in parallel while callers for the
// same store coalesce onto one computation.
func (s *Suite) Market(store string) (*MarketRun, error) {
	s.mu.Lock()
	e, ok := s.markets[store]
	if !ok {
		e = &marketEntry{}
		s.markets[store] = e
	}
	s.mu.Unlock()
	e.once.Do(func() { e.run, e.err = s.simulateMarket(store) })
	return e.run, e.err
}

// simulateMarket builds and runs one store's market; called exactly once
// per store via the entry's Once.
func (s *Suite) simulateMarket(store string) (*MarketRun, error) {
	prof, ok := catalog.Profiles[store]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown store %q", store)
	}
	cfg := marketsim.DefaultConfig(prof.Scale(s.cfg.Scale))
	cfg.Days = s.cfg.Days
	m, err := marketsim.New(cfg, s.cfg.Seed+storeSeed(store))
	if err != nil {
		return nil, err
	}
	series, err := m.Run()
	if err != nil {
		return nil, err
	}
	return &MarketRun{Market: m, Series: series}, nil
}

// storeSeed gives each store an independent but deterministic seed offset.
func storeSeed(store string) uint64 {
	var h uint64 = 1469598103934665603
	for _, b := range []byte(store) {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// CommentData returns (generating on first use) the Anzhi-profile comment
// stream and its catalog for the §4 behaviour experiments. Generation is
// single-flight and may itself trigger (or wait on) the anzhi market
// simulation without blocking other stores.
func (s *Suite) CommentData() (*catalog.Catalog, []comments.Comment, error) {
	s.commentsOnce.Do(func() {
		run, err := s.Market("anzhi")
		if err != nil {
			s.commentsErr = err
			return
		}
		gcfg := comments.DefaultGenConfig(s.cfg.CommentUsers)
		gcfg.Days = s.cfg.Days
		cs, err := comments.Generate(run.Market.Catalog(), gcfg, s.cfg.Seed+0xc0ffee)
		if err != nil {
			s.commentsErr = err
			return
		}
		s.ccat = run.Market.Catalog()
		s.cstream = cs
	})
	return s.ccat, s.cstream, s.commentsErr
}

// forEach runs fn(0..n-1) on up to s.cfg.Workers goroutines and returns the
// lowest-index error. With Workers = 1 it degenerates to a plain sequential
// loop. Callers must write results into index-distinct slots so the
// assembled output is invariant to scheduling.
func (s *Suite) forEach(n int, fn func(i int) error) error {
	workers := s.cfg.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Result is the common interface of experiment outputs: a stable identifier
// and renderable tables.
type Result interface {
	// ID is the experiment identifier (e.g. "T1", "F8", "X2").
	ID() string
	// Tables renders the result for terminal or markdown output.
	Tables() []*report.Table
}

// Runner executes one experiment against a suite.
type Runner func(*Suite) (Result, error)

// registry maps experiment IDs to runners; populated by init() funcs in the
// per-experiment files.
var registry = map[string]Runner{}

func register(id string, r Runner) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = r
}

// IDs returns all registered experiment IDs in a stable order: T*, F* by
// number, then X*.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return lessID(out[i], out[j]) })
	return out
}

func lessID(a, b string) bool {
	rank := func(id string) (int, int) {
		class := 3
		switch id[0] {
		case 'T':
			class = 0
		case 'F':
			class = 1
		case 'X':
			class = 2
		}
		n := 0
		fmt.Sscanf(id[1:], "%d", &n) //nolint:errcheck // 0 on failure is fine
		return class, n
	}
	ca, na := rank(a)
	cb, nb := rank(b)
	if ca != cb {
		return ca < cb
	}
	if na != nb {
		return na < nb
	}
	return a < b
}

// Run executes the experiment with the given ID.
func Run(s *Suite, id string) (Result, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return r(s)
}
