package experiments

import (
	"planetapps/internal/catalog"
	"planetapps/internal/marketsim"
	"planetapps/internal/model"
	"planetapps/internal/report"
)

func init() {
	register("X5", func(s *Suite) (Result, error) { return SensitivityX5(s) })
}

// SensitivityX5Result validates the whole fitting methodology: stores are
// simulated with different planted clustering strengths, and the fitted
// APP-CLUSTERING parameters must track the plant. This is the control
// experiment a measurement study cannot run on live stores (the ground
// truth is unknown there) but a reproduction can and should.
type SensitivityX5Result struct {
	Rows []SensitivityRow
}

// SensitivityRow is one planted-vs-fitted comparison.
type SensitivityRow struct {
	// PlantedP is the market simulation's clustering probability.
	PlantedP float64
	// FittedP is the best-fit APP-CLUSTERING p.
	FittedP float64
	// ClusteringDistance and AMODistance compare the two leading models.
	ClusteringDistance, AMODistance float64
	// Advantage is AMODistance/ClusteringDistance (>1: clustering wins).
	Advantage float64
}

// ID implements Result.
func (*SensitivityX5Result) ID() string { return "X5" }

// Tables implements Result.
func (r *SensitivityX5Result) Tables() []*report.Table {
	t := report.NewTable("X5: fitted clustering strength tracks the planted strength",
		"planted p", "fitted p", "CL distance", "AMO distance", "AMO/CL")
	for _, row := range r.Rows {
		t.AddRow(row.PlantedP, row.FittedP, row.ClusteringDistance, row.AMODistance, row.Advantage)
	}
	return []*report.Table{t}
}

// SensitivityX5 sweeps the planted ClusterP of an anzhi-profile market and
// fits the models to each resulting curve. The planted configurations are
// independent (separate markets, separate seeds), so they simulate and fit
// concurrently into index-distinct row slots.
func SensitivityX5(s *Suite) (*SensitivityX5Result, error) {
	planted := []float64{0.1, 0.5, 0.9}
	out := &SensitivityX5Result{Rows: make([]SensitivityRow, len(planted))}
	err := s.forEach(len(planted), func(i int) error {
		p := planted[i]
		prof := catalog.Profiles["anzhi"].Scale(s.cfg.Scale)
		prof.ClusterP = p
		cfg := marketsim.DefaultConfig(prof)
		cfg.Days = s.cfg.Days
		m, err := marketsim.New(cfg, s.cfg.Seed+uint64(p*1000))
		if err != nil {
			return err
		}
		series, err := m.Run()
		if err != nil {
			return err
		}
		curve := trimZeroTail(series.Last().Curve())
		cl, err := model.FitMC(model.AppClustering, curve, fitSpec(s), s.cfg.Seed)
		if err != nil {
			return err
		}
		amo, err := model.FitMC(model.ZipfAtMostOnce, curve, fitSpec(s), s.cfg.Seed)
		if err != nil {
			return err
		}
		row := SensitivityRow{
			PlantedP:           p,
			FittedP:            cl.Config.ClusterP,
			ClusteringDistance: cl.Distance,
			AMODistance:        amo.Distance,
		}
		if cl.Distance > 0 {
			row.Advantage = amo.Distance / cl.Distance
		}
		out.Rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
