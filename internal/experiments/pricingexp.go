package experiments

import (
	"sort"

	"planetapps/internal/dist"
	"planetapps/internal/pricing"
	"planetapps/internal/report"
	"planetapps/internal/stats"
)

func init() {
	register("F11", func(s *Suite) (Result, error) { return Figure11(s) })
	register("F12", func(s *Suite) (Result, error) { return Figure12(s) })
	register("F13", func(s *Suite) (Result, error) { return Figure13(s) })
	register("F14", func(s *Suite) (Result, error) { return Figure14(s) })
	register("F15", func(s *Suite) (Result, error) { return Figure15(s) })
	register("F16", func(s *Suite) (Result, error) { return Figure16(s) })
	register("F17", func(s *Suite) (Result, error) { return Figure17(s) })
	register("F18", func(s *Suite) (Result, error) { return Figure18(s) })
}

// slidemeDataset builds the pricing dataset from the SlideMe-profile run —
// the only profiled store carrying paid apps, as in the paper.
func (s *Suite) slidemeDataset() (pricing.Dataset, *MarketRun, error) {
	run, err := s.Market("slideme")
	if err != nil {
		return pricing.Dataset{}, nil, err
	}
	ds := pricing.Dataset{
		Catalog:   run.Market.Catalog(),
		Downloads: run.Market.Downloads(),
	}
	return ds, run, ds.Validate()
}

// Figure11Result contrasts free and paid popularity curves (Figure 11).
type Figure11Result struct {
	Free, Paid dist.RankCurve
	// FreeTrunk and PaidTrunk are the fitted exponents (paper: 0.85, 1.72).
	FreeTrunk, PaidTrunk float64
	// PaidTailDrop near 1 indicates the clean power law of paid apps.
	PaidTailDrop, FreeTailDrop float64
}

// ID implements Result.
func (*Figure11Result) ID() string { return "F11" }

// Tables implements Result.
func (r *Figure11Result) Tables() []*report.Table {
	t := report.NewTable("Figure 11: free vs paid app popularity (SlideMe profile)",
		"class", "apps", "total downloads", "trunk exponent", "tail drop")
	t.AddRow("free", len(r.Free.Downloads), r.Free.Total(), r.FreeTrunk, r.FreeTailDrop)
	t.AddRow("paid", len(r.Paid.Downloads), r.Paid.Total(), r.PaidTrunk, r.PaidTailDrop)
	return []*report.Table{t}
}

// Figure11 splits the SlideMe curves by pricing class.
func Figure11(s *Suite) (*Figure11Result, error) {
	ds, _, err := s.slidemeDataset()
	if err != nil {
		return nil, err
	}
	free, paid := ds.SplitCurves()
	free = trimZeroTail(free)
	paid = trimZeroTail(paid)
	return &Figure11Result{
		Free: free, Paid: paid,
		FreeTrunk:    free.TrunkExponent(0.02, 0.3),
		PaidTrunk:    paid.TrunkExponent(0.02, 0.3),
		FreeTailDrop: free.TailDrop(),
		PaidTailDrop: paid.TailDrop(),
	}, nil
}

// Figure12Result is the price-vs-popularity study (Figure 12).
type Figure12Result struct {
	Bins pricing.PriceBins
}

// ID implements Result.
func (*Figure12Result) ID() string { return "F12" }

// Tables implements Result.
func (r *Figure12Result) Tables() []*report.Table {
	t := report.NewTable("Figure 12: downloads and apps vs price ($1 bins)",
		"price bin", "apps", "mean downloads")
	for _, b := range r.Bins.Bins {
		t.AddRow(b.LowPrice, b.Apps, b.MeanDownloads)
	}
	c := report.NewTable("Figure 12: correlations", "pair", "value")
	c.AddRow("price vs downloads (Pearson)", r.Bins.PriceDownloadsR)
	c.AddRow("price vs downloads (Kendall tau)", r.Bins.PriceDownloadsTau)
	c.AddRow("price vs app count (Pearson)", r.Bins.PriceAppsR)
	return []*report.Table{t, c}
}

// Figure12 computes the price histograms and correlations.
func Figure12(s *Suite) (*Figure12Result, error) {
	ds, _, err := s.slidemeDataset()
	if err != nil {
		return nil, err
	}
	bins, err := pricing.AnalyzePrices(ds)
	if err != nil {
		return nil, err
	}
	return &Figure12Result{Bins: bins}, nil
}

// Figure13Result is the developer income CDF (Figure 13).
type Figure13Result struct {
	Incomes []pricing.DeveloperIncome
	// Quantiles of income at the probed percentiles.
	Percentiles map[int]float64
}

// ID implements Result.
func (*Figure13Result) ID() string { return "F13" }

// Tables implements Result.
func (r *Figure13Result) Tables() []*report.Table {
	t := report.NewTable("Figure 13: total income per developer (paid apps)",
		"percentile", "income ($)")
	keys := make([]int, 0, len(r.Percentiles))
	for k := range r.Percentiles {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		t.AddRow(k, r.Percentiles[k])
	}
	return []*report.Table{t}
}

// Figure13 computes the income distribution.
func Figure13(s *Suite) (*Figure13Result, error) {
	ds, _, err := s.slidemeDataset()
	if err != nil {
		return nil, err
	}
	incomes, err := pricing.Incomes(ds)
	if err != nil {
		return nil, err
	}
	vals := make([]float64, len(incomes))
	for i, inc := range incomes {
		vals[i] = inc.Income
	}
	out := &Figure13Result{Incomes: incomes, Percentiles: map[int]float64{}}
	for _, p := range []int{10, 25, 50, 80, 95, 99} {
		out.Percentiles[p] = stats.Percentile(vals, float64(p))
	}
	return out, nil
}

// Figure14Result correlates income with portfolio size (Figure 14).
type Figure14Result struct {
	Correlation float64
	// FitSlope is the least-squares slope of apps on income (paper:
	// 0.00364, i.e. essentially flat).
	FitSlope float64
}

// ID implements Result.
func (*Figure14Result) ID() string { return "F14" }

// Tables implements Result.
func (r *Figure14Result) Tables() []*report.Table {
	t := report.NewTable("Figure 14: paid apps per developer vs income",
		"metric", "value")
	t.AddRow("Pearson r (apps, income)", r.Correlation)
	t.AddRow("fit slope (apps on income)", r.FitSlope)
	return []*report.Table{t}
}

// Figure14 measures the quality-over-quantity effect.
func Figure14(s *Suite) (*Figure14Result, error) {
	ds, _, err := s.slidemeDataset()
	if err != nil {
		return nil, err
	}
	incomes, err := pricing.Incomes(ds)
	if err != nil {
		return nil, err
	}
	var apps, inc []float64
	for _, d := range incomes {
		apps = append(apps, float64(d.PaidApps))
		inc = append(inc, d.Income)
	}
	slope, _ := stats.LinearFit(inc, apps)
	return &Figure14Result{
		Correlation: pricing.IncomeAppsCorrelation(incomes),
		FitSlope:    slope,
	}, nil
}

// Figure15Result is the per-category revenue breakdown (Figure 15).
type Figure15Result struct {
	Shares []pricing.CategoryShare
	// RevenueAppsR is the correlation between a category's revenue share
	// and app share (paper: 0.014).
	RevenueAppsR float64
	// RevenueDevsR is the correlation with developer share (paper: 0.198).
	RevenueDevsR float64
	// Top4RevenuePct is the revenue share of the top four categories
	// (paper: 95%).
	Top4RevenuePct float64
}

// ID implements Result.
func (*Figure15Result) ID() string { return "F15" }

// Tables implements Result.
func (r *Figure15Result) Tables() []*report.Table {
	t := report.NewTable("Figure 15: revenue/apps/developers per category (top 12)",
		"category", "revenue %", "apps %", "developers %")
	for i, cs := range r.Shares {
		if i >= 12 {
			break
		}
		t.AddRow(cs.Name, cs.RevenuePct, cs.AppsPct, cs.DevsPct)
	}
	c := report.NewTable("Figure 15: summary", "metric", "value")
	c.AddRow("top-4 categories revenue %", r.Top4RevenuePct)
	c.AddRow("Pearson r (revenue, apps)", r.RevenueAppsR)
	c.AddRow("Pearson r (revenue, developers)", r.RevenueDevsR)
	return []*report.Table{t, c}
}

// Figure15 computes the category revenue shares.
func Figure15(s *Suite) (*Figure15Result, error) {
	ds, _, err := s.slidemeDataset()
	if err != nil {
		return nil, err
	}
	shares, err := pricing.RevenueByCategory(ds)
	if err != nil {
		return nil, err
	}
	var rev, apps, devs []float64
	top4 := 0.0
	for i, cs := range shares {
		rev = append(rev, cs.RevenuePct)
		apps = append(apps, cs.AppsPct)
		devs = append(devs, cs.DevsPct)
		if i < 4 {
			top4 += cs.RevenuePct
		}
	}
	return &Figure15Result{
		Shares:         shares,
		RevenueAppsR:   stats.Pearson(rev, apps),
		RevenueDevsR:   stats.Pearson(rev, devs),
		Top4RevenuePct: top4,
	}, nil
}

// Figure16Result is the developer portfolio study (Figure 16).
type Figure16Result struct {
	// SingleAppPct per class (paper: 60% free, 70% paid).
	FreeSingleAppPct, PaidSingleAppPct float64
	// WithinTenAppsPct (paper: 95% of developers offer < 10 apps).
	FreeWithinTenPct, PaidWithinTenPct float64
	// SingleCategoryPct (paper: 75% free, 85% paid).
	FreeSingleCatPct, PaidSingleCatPct float64
	// WithinFiveCatsPct (paper: 99%).
	FreeWithinFiveCatsPct, PaidWithinFiveCatsPct float64
	// Strategy mix (paper: 75% only-free, 15% only-paid, 10% both).
	OnlyFreePct, OnlyPaidPct, BothPct float64
}

// ID implements Result.
func (*Figure16Result) ID() string { return "F16" }

// Tables implements Result.
func (r *Figure16Result) Tables() []*report.Table {
	t := report.NewTable("Figure 16: developer portfolios", "metric", "free devs", "paid devs")
	t.AddRow("% with a single app", r.FreeSingleAppPct, r.PaidSingleAppPct)
	t.AddRow("% with < 10 apps", r.FreeWithinTenPct, r.PaidWithinTenPct)
	t.AddRow("% in a single category", r.FreeSingleCatPct, r.PaidSingleCatPct)
	t.AddRow("% within 5 categories", r.FreeWithinFiveCatsPct, r.PaidWithinFiveCatsPct)
	m := report.NewTable("Pricing strategy mix", "strategy", "% of developers")
	m.AddRow("only free", r.OnlyFreePct)
	m.AddRow("only paid", r.OnlyPaidPct)
	m.AddRow("both", r.BothPct)
	return []*report.Table{t, m}
}

// Figure16 measures portfolio sizes and category focus.
func Figure16(s *Suite) (*Figure16Result, error) {
	ds, _, err := s.slidemeDataset()
	if err != nil {
		return nil, err
	}
	freeApps, paidApps, freeCats, paidCats, err := pricing.PortfolioCDFs(ds)
	if err != nil {
		return nil, err
	}
	onlyFree, onlyPaid, both, err := pricing.PricingMix(ds)
	if err != nil {
		return nil, err
	}
	return &Figure16Result{
		FreeSingleAppPct:      100 * freeApps.At(1),
		PaidSingleAppPct:      100 * paidApps.At(1),
		FreeWithinTenPct:      100 * freeApps.At(9),
		PaidWithinTenPct:      100 * paidApps.At(9),
		FreeSingleCatPct:      100 * freeCats.At(1),
		PaidSingleCatPct:      100 * paidCats.At(1),
		FreeWithinFiveCatsPct: 100 * freeCats.At(5),
		PaidWithinFiveCatsPct: 100 * paidCats.At(5),
		OnlyFreePct:           100 * onlyFree,
		OnlyPaidPct:           100 * onlyPaid,
		BothPct:               100 * both,
	}, nil
}

// Figure17Result is the break-even ad income over time (Figure 17).
type Figure17Result struct {
	Days    []int
	Overall []float64
	ByTier  []map[pricing.PopularityTier]float64
}

// ID implements Result.
func (*Figure17Result) ID() string { return "F17" }

// Tables implements Result.
func (r *Figure17Result) Tables() []*report.Table {
	t := report.NewTable("Figure 17: break-even ad income per download over time",
		"day", "average", "popular (top 20%)", "medium (next 50%)", "unpopular (bottom 30%)")
	step := 1
	if len(r.Days) > 15 {
		step = len(r.Days) / 15
	}
	for i := 0; i < len(r.Days); i += step {
		t.AddRow(r.Days[i], r.Overall[i],
			r.ByTier[i][pricing.TierPopular],
			r.ByTier[i][pricing.TierMedium],
			r.ByTier[i][pricing.TierUnpopular])
	}
	return []*report.Table{t}
}

// Figure17 evaluates Eq. 7 across the measurement period.
func Figure17(s *Suite) (*Figure17Result, error) {
	ds, run, err := s.slidemeDataset()
	if err != nil {
		return nil, err
	}
	days, overall, byTier, err := pricing.BreakEvenOverTime(ds.Catalog, run.Series)
	if err != nil {
		return nil, err
	}
	return &Figure17Result{Days: days, Overall: overall, ByTier: byTier}, nil
}

// Figure18Result is the break-even income per category (Figure 18).
type Figure18Result struct {
	// Names and Values are sorted by descending break-even income.
	Names  []string
	Values []float64
}

// ID implements Result.
func (*Figure18Result) ID() string { return "F18" }

// Tables implements Result.
func (r *Figure18Result) Tables() []*report.Table {
	t := report.NewTable("Figure 18: break-even ad income per category",
		"category", "necessary ad income ($/download)")
	for i := range r.Names {
		t.AddRow(r.Names[i], r.Values[i])
	}
	return []*report.Table{t}
}

// Figure18 evaluates per-category break-even incomes.
func Figure18(s *Suite) (*Figure18Result, error) {
	ds, _, err := s.slidemeDataset()
	if err != nil {
		return nil, err
	}
	byCat, err := pricing.BreakEvenByCategory(ds)
	if err != nil {
		return nil, err
	}
	type pair struct {
		name string
		v    float64
	}
	var pairs []pair
	for cid, v := range byCat {
		pairs = append(pairs, pair{ds.Catalog.Categories[cid].Name, v})
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].v != pairs[j].v {
			return pairs[i].v > pairs[j].v
		}
		return pairs[i].name < pairs[j].name
	})
	out := &Figure18Result{}
	for _, p := range pairs {
		out.Names = append(out.Names, p.name)
		out.Values = append(out.Values, p.v)
	}
	return out, nil
}
