package experiments

import (
	"strings"
	"testing"

	"planetapps/internal/model"
	"planetapps/internal/pricing"
)

// testSuite is shared across tests: a reduced-scale but still shape-
// preserving configuration.
var sharedSuite *Suite

func suite(t *testing.T) *Suite {
	t.Helper()
	if sharedSuite != nil {
		return sharedSuite
	}
	s, err := NewSuite(Config{Seed: 7, Scale: 0.5, Days: 30, CommentUsers: 5000})
	if err != nil {
		t.Fatal(err)
	}
	sharedSuite = s
	return s
}

func TestNewSuiteValidation(t *testing.T) {
	if _, err := NewSuite(Config{Scale: 0, Days: 30, CommentUsers: 1000}); err == nil {
		t.Fatal("zero scale accepted")
	}
	if _, err := NewSuite(Config{Scale: 1, Days: 1, CommentUsers: 1000}); err == nil {
		t.Fatal("1-day period accepted")
	}
	if _, err := NewSuite(Config{Scale: 1, Days: 30, CommentUsers: 1}); err == nil {
		t.Fatal("tiny comment population accepted")
	}
}

func TestIDsOrderedAndComplete(t *testing.T) {
	ids := IDs()
	want := []string{"T1", "F2", "F3", "F4", "F5", "F6", "F7", "F8", "F9",
		"F10", "F11", "F12", "F13", "F14", "F15", "F16", "F17", "F18", "F19",
		"X1", "X2", "X3", "X4", "X5"}
	if len(ids) != len(want) {
		t.Fatalf("IDs = %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("IDs = %v, want %v", ids, want)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	s := suite(t)
	if _, err := Run(s, "F999"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestMarketCaching(t *testing.T) {
	s := suite(t)
	a, err := s.Market("anzhi")
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Market("anzhi")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("market runs not cached")
	}
	if _, err := s.Market("nosuchstore"); err == nil {
		t.Fatal("unknown store accepted")
	}
}

func TestTable1(t *testing.T) {
	r, err := Table1(suite(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("got %d rows", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.DownloadsLast <= row.DownloadsFirst {
			t.Fatalf("%s: downloads did not grow", row.Store)
		}
		if row.DailyDownloads <= 0 || row.NewAppsPerDay < 0 {
			t.Fatalf("%s: bad rates %+v", row.Store, row)
		}
	}
	if txt := r.Tables()[0].String(); !strings.Contains(txt, "anzhi") {
		t.Fatal("render missing store names")
	}
}

func TestFigure2ParetoEffect(t *testing.T) {
	r, err := Figure2(suite(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, store := range r.Order {
		shares := r.Share[store]
		// Top 10% (index of 10 in RankPcts) holds the majority.
		var top10 float64
		for i, p := range r.RankPcts {
			if p == 10 {
				top10 = shares[i]
			}
		}
		if top10 < 55 {
			t.Fatalf("%s: top-10%% share %v%%, want Pareto effect", store, top10)
		}
		last := shares[len(shares)-1]
		if last < 99.9 {
			t.Fatalf("%s: 100%% of apps hold %v%% of downloads", store, last)
		}
	}
}

func TestFigure3Truncation(t *testing.T) {
	r, err := Figure3(suite(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Stores) != 4 {
		t.Fatalf("%d stores", len(r.Stores))
	}
	for _, st := range r.Stores {
		if st.TrunkExponent <= 0.3 || st.TrunkExponent > 3 {
			t.Fatalf("%s: trunk exponent %v implausible", st.Store, st.TrunkExponent)
		}
		// The tail should drop below the trunk power law (clustering
		// effect + discreteness).
		if st.TailDrop >= 1.3 {
			t.Fatalf("%s: tail drop %v shows no truncation", st.Store, st.TailDrop)
		}
	}
}

func TestFigure4UpdateBehaviour(t *testing.T) {
	r, err := Figure4(suite(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range r.Stores {
		if st.NoUpdatePct < 70 {
			t.Fatalf("%s: only %v%% never updated", st.Store, st.NoUpdatePct)
		}
		if st.P99Updates > 8 {
			t.Fatalf("%s: p99 updates %v too high", st.Store, st.P99Updates)
		}
		for k := 1; k < len(st.CDF); k++ {
			if st.CDF[k] < st.CDF[k-1] {
				t.Fatalf("%s: update CDF not monotone", st.Store)
			}
		}
	}
}

func TestFigure5Behaviour(t *testing.T) {
	r, err := Figure5(suite(t))
	if err != nil {
		t.Fatal(err)
	}
	// Figure 5(a): nearly all users post few comments.
	last := r.CommentsPerUserCDF[len(r.CommentsPerUserCDF)-1]
	if last < 0.95 {
		t.Fatalf("P(comments<=30) = %v", last)
	}
	// Figure 5(b): category focus.
	if r.SingleCategoryPct < 25 || r.WithinFiveCatsPct < 80 {
		t.Fatalf("category focus too weak: single=%v%% within5=%v%%",
			r.SingleCategoryPct, r.WithinFiveCatsPct)
	}
	// Figure 5(c): top-1 category holds the majority of comments.
	if r.TopKSharePct[0] < 50 {
		t.Fatalf("top-1 category share %v%%", r.TopKSharePct[0])
	}
	// Figure 5(d): no dominant category.
	if r.CategoryDownloadPct[0] > 35 {
		t.Fatalf("dominant category with %v%% of downloads", r.CategoryDownloadPct[0])
	}
}

func TestFigure6Affinity(t *testing.T) {
	r, err := Figure6(suite(t))
	if err != nil {
		t.Fatal(err)
	}
	an := r.Analysis
	// Measured affinity far above the random-walk baseline at depth 1.
	if an.OverallMean[0] < 2.5*an.RandomWalk[0] {
		t.Fatalf("affinity %v vs baseline %v: effect too weak",
			an.OverallMean[0], an.RandomWalk[0])
	}
	// Affinity grows with depth.
	for d := 1; d < len(an.Depths); d++ {
		if an.OverallMean[d] < an.OverallMean[d-1]-0.03 {
			t.Fatalf("affinity fell with depth: %v", an.OverallMean)
		}
	}
	if len(an.Groups[0]) == 0 {
		t.Fatal("no grouped points")
	}
}

func TestFigure7Medians(t *testing.T) {
	r, err := Figure7(suite(t))
	if err != nil {
		t.Fatal(err)
	}
	if !(r.Medians[0] <= r.Medians[1]+0.05 && r.Medians[1] <= r.Medians[2]+0.05) {
		t.Fatalf("medians not increasing: %v", r.Medians)
	}
	for di := range r.Analysis.Depths {
		if r.Medians[di] < r.Analysis.RandomWalk[di] {
			t.Fatalf("median below random walk at depth %d", di+1)
		}
	}
}

func TestFigure8ClusteringWins(t *testing.T) {
	r, err := Figure8(suite(t))
	if err != nil {
		t.Fatal(err)
	}
	// Strict wins on the dense stores; the sparse 1mobile profile may tie
	// ZIPF-at-most-once within 25% (its fits are the noisiest in the
	// paper too).
	if !r.BestIsClustering(1.25) {
		for _, st := range r.Stores {
			t.Logf("%s: %v", st.Store, st.Fits)
		}
		t.Fatal("APP-CLUSTERING not within tolerance of best on every store")
	}
	strict := &Figure8Result{}
	for _, st := range r.Stores {
		if st.Store != "1mobile" {
			strict.Stores = append(strict.Stores, st)
		}
	}
	if !strict.BestIsClustering(1.0) {
		for _, st := range strict.Stores {
			t.Logf("%s: %v", st.Store, st.Fits)
		}
		t.Fatal("APP-CLUSTERING did not strictly win on the dense stores")
	}
}

func TestFigure9ClusteringAlwaysBest(t *testing.T) {
	r, err := Figure9(suite(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("%d rows, want 6 (3 stores x first/last)", len(r.Rows))
	}
	// Strict wins on the mature (last-day) snapshots of the dense stores;
	// near-ties tolerated on the noisy first-day snapshots and on the
	// sparse 1mobile profile, as in the paper's own Figure 9 where anzhi's
	// first-day fits were nearly tied and 1Mobile's were the noisiest.
	for _, row := range r.Rows {
		c := row.Distances["APP-CLUSTERING"]
		slack := 1.0
		if row.Edge == "first" || row.Store == "1mobile" {
			slack = 1.25
		}
		if c > slack*row.Distances["ZIPF"] || c > slack*row.Distances["ZIPF-at-most-once"] {
			t.Fatalf("APP-CLUSTERING not best on %s %s: %+v", row.Store, row.Edge, row.Distances)
		}
	}
	if !r.ClusteringAlwaysBest(1.25) {
		t.Fatalf("APP-CLUSTERING not within tolerance everywhere: %+v", r.Rows)
	}
}

func TestFigure10MinimumNearOne(t *testing.T) {
	r, err := Figure10(suite(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, store := range r.Order {
		f := r.ArgminFraction(store)
		if f < 0.25 || f > 5 {
			t.Fatalf("%s: distance minimized at users fraction %v (distances %v)",
				store, f, r.Distance[store])
		}
	}
}

func TestFigure11PaidSteeper(t *testing.T) {
	r, err := Figure11(suite(t))
	if err != nil {
		t.Fatal(err)
	}
	if r.PaidTrunk <= r.FreeTrunk {
		t.Fatalf("paid trunk %v not steeper than free %v", r.PaidTrunk, r.FreeTrunk)
	}
	if r.Free.Total() <= r.Paid.Total() {
		t.Fatal("free volume not above paid volume")
	}
}

func TestFigure12NegativeCorrelations(t *testing.T) {
	r, err := Figure12(suite(t))
	if err != nil {
		t.Fatal(err)
	}
	if r.Bins.PriceDownloadsR >= 0 || r.Bins.PriceAppsR >= 0 {
		t.Fatalf("correlations not negative: %v %v", r.Bins.PriceDownloadsR, r.Bins.PriceAppsR)
	}
}

func TestFigure13SkewedIncome(t *testing.T) {
	r, err := Figure13(suite(t))
	if err != nil {
		t.Fatal(err)
	}
	if r.Percentiles[99] < 20*r.Percentiles[50]+1 {
		t.Fatalf("income not skewed: %v", r.Percentiles)
	}
	if r.Percentiles[10] > r.Percentiles[50] {
		t.Fatal("percentiles not monotone")
	}
}

func TestFigure14QualityOverQuantity(t *testing.T) {
	r, err := Figure14(suite(t))
	if err != nil {
		t.Fatal(err)
	}
	if r.Correlation > 0.4 || r.Correlation < -0.4 {
		t.Fatalf("income-apps correlation %v, want near zero", r.Correlation)
	}
}

func TestFigure15Concentration(t *testing.T) {
	r, err := Figure15(suite(t))
	if err != nil {
		t.Fatal(err)
	}
	if r.Top4RevenuePct < 50 {
		t.Fatalf("top-4 revenue %v%%, want concentration", r.Top4RevenuePct)
	}
}

func TestFigure16Portfolios(t *testing.T) {
	r, err := Figure16(suite(t))
	if err != nil {
		t.Fatal(err)
	}
	if r.FreeSingleAppPct < 40 || r.PaidSingleAppPct < 40 {
		t.Fatalf("single-app shares too low: %v / %v", r.FreeSingleAppPct, r.PaidSingleAppPct)
	}
	if r.FreeWithinFiveCatsPct < 95 || r.PaidWithinFiveCatsPct < 95 {
		t.Fatalf("five-category shares too low: %v / %v",
			r.FreeWithinFiveCatsPct, r.PaidWithinFiveCatsPct)
	}
	if r.OnlyFreePct < r.OnlyPaidPct {
		t.Fatal("free-only developers should dominate")
	}
}

func TestFigure17TierOrdering(t *testing.T) {
	r, err := Figure17(suite(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Days) == 0 {
		t.Fatal("no usable days")
	}
	lastTiers := r.ByTier[len(r.ByTier)-1]
	if !(lastTiers[pricing.TierPopular] < lastTiers[pricing.TierMedium] &&
		lastTiers[pricing.TierMedium] < lastTiers[pricing.TierUnpopular]) {
		t.Fatalf("tier ordering wrong: %v", lastTiers)
	}
}

func TestFigure18Spread(t *testing.T) {
	r, err := Figure18(suite(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Values) < 3 {
		t.Fatalf("only %d categories", len(r.Values))
	}
	if r.Values[0] <= r.Values[len(r.Values)-1] {
		t.Fatal("values not sorted descending")
	}
	if r.Values[0]/r.Values[len(r.Values)-1] < 5 {
		t.Fatalf("category spread too narrow: %v", r.Values)
	}
}

func TestFigure19ClusteringLowest(t *testing.T) {
	r, err := Figure19(suite(t))
	if err != nil {
		t.Fatal(err)
	}
	if !r.ClusteringLowest() {
		t.Fatalf("clustering not lowest everywhere: %+v", r.Points)
	}
	// Hit ratios grow with cache size for the clustering model.
	prev := -1.0
	for _, p := range r.Points {
		c := p.HitRatio[model.AppClustering.String()]
		if c < prev-2 {
			t.Fatalf("hit ratio fell with cache size: %+v", r.Points)
		}
		prev = c
	}
}

func TestAblationX1(t *testing.T) {
	r, err := AblationX1(suite(t))
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]AblationRow{}
	for _, row := range r.Rows {
		byLabel[row.Label] = row
	}
	// p=0 is closest to the AMO run; tail share shrinks as p rises.
	p0 := byLabel["p=0 (degenerates to AMO)"]
	p9 := byLabel["p=0.9"]
	if p0.DistanceToAMO > p9.DistanceToAMO {
		t.Fatalf("p=0 distance %v above p=0.9 distance %v", p0.DistanceToAMO, p9.DistanceToAMO)
	}
	if p9.TailShare >= p0.TailShare {
		t.Fatalf("tail share did not shrink with p: %v vs %v", p9.TailShare, p0.TailShare)
	}
}

func TestCachePoliciesX2(t *testing.T) {
	r, err := CachePoliciesX2(suite(t))
	if err != nil {
		t.Fatal(err)
	}
	lru := r.HitRatio("LRU")
	ca := r.HitRatio("CategoryAware")
	if lru < 0 || ca < 0 {
		t.Fatalf("missing policies: %+v", r.Results)
	}
	if ca <= lru {
		t.Fatalf("category-aware %v%% did not beat LRU %v%%", ca, lru)
	}
}

func TestPrefetchX3(t *testing.T) {
	r, err := PrefetchX3(suite(t))
	if err != nil {
		t.Fatal(err)
	}
	none := r.HitRate("none")
	gt := r.HitRate("global-top")
	ct := r.HitRate("category-top")
	if none != 0 {
		t.Fatalf("no-prefetch hit rate %v", none)
	}
	if !(ct > gt && gt > 0) {
		t.Fatalf("expected category-top > global-top > 0, got %v vs %v", ct, gt)
	}
}

func TestRecommendX4(t *testing.T) {
	r, err := RecommendX4(suite(t))
	if err != nil {
		t.Fatal(err)
	}
	pop := r.HitRate("popularity")
	ca := r.HitRate("cluster-aware")
	cf := r.HitRate("collaborative")
	if pop < 0 || ca < 0 || cf < 0 {
		t.Fatalf("missing recommenders: %+v", r.Results)
	}
	// §7's argument: exploiting the clustering effect beats plain
	// popularity suggestions.
	if ca <= pop {
		t.Fatalf("cluster-aware %v%% did not beat popularity %v%%", ca, pop)
	}
	for _, res := range r.Results {
		if res.Trials == 0 {
			t.Fatalf("%s evaluated zero trials", res.Recommender)
		}
	}
}

func TestAllRegisteredRunnersRender(t *testing.T) {
	s := suite(t)
	for _, id := range IDs() {
		res, err := Run(s, id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if res.ID() != id {
			t.Fatalf("runner %s returned ID %s", id, res.ID())
		}
		tables := res.Tables()
		if len(tables) == 0 {
			t.Fatalf("%s: no tables", id)
		}
		for _, tb := range tables {
			if len(tb.String()) == 0 {
				t.Fatalf("%s: empty render", id)
			}
		}
	}
}

func TestSensitivityX5(t *testing.T) {
	r, err := SensitivityX5(suite(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	// Fitted p must not decrease as the planted p rises, and the strongest
	// plant must fit a clearly clustered model better than AMO.
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].FittedP < r.Rows[i-1].FittedP-0.21 {
			t.Fatalf("fitted p not tracking planted p: %+v", r.Rows)
		}
	}
	last := r.Rows[len(r.Rows)-1]
	if last.Advantage < 1.2 {
		t.Fatalf("at planted p=0.9 clustering advantage only %vx", last.Advantage)
	}
}
