package marketsim

import "planetapps/internal/catalog"

// Partitioner carves a shard's slice out of successive dense Exports of
// one market, preserving the chunked copy-on-write structure that makes
// day-rolls incremental. A fleet of N store nodes each runs the same
// deterministic market (same config, same seed — Exports are
// byte-identical across processes) and partitions it with its own
// ownership predicate; the union of the fleet's partitions is exactly the
// full catalog, row for row.
//
// The partition is itself an Export, chunked in partition row space:
// chunk c of the partition covers the shard's rows [c*ExportChunk,
// (c+1)*ExportChunk), not the full catalog's. Because the catalog is
// append-only and the ownership predicate is a pure function of the global
// app ID, the partition's row list only ever grows at the tail, so a row's
// partition index is stable for the life of the shard — the property the
// snapshot layer's chunk-granular document carry depends on.
//
// Sharing: a partition chunk whose every row has an unchanged RowVer since
// the previous Partition call is shared with the previous partitioned
// export (both the download and version vectors at ExportChunk grain and
// the catalog rows at appExportChunk grain), so per-shard day-roll cost is
// proportional to the shard's churn, exactly as the dense export's is.
// The scan to decide sharing is O(shard size) integer compares — a few
// microseconds per hundred thousand rows, noise next to the market step.
type Partitioner struct {
	owns func(id int32) bool

	// scanned is how many global rows have been classified so far; ids is
	// the append-only owned-ID list (ascending, because global IDs are
	// scanned in order and arrivals only append).
	scanned int
	ids     []int32

	prev *Export // previous partitioned export, for chunk sharing
}

// NewPartitioner returns a partitioner owning the apps for which owns
// returns true. owns must be deterministic and stable for the life of the
// fleet topology (a consistent-hash ring lookup, a modulus, ...).
func NewPartitioner(owns func(id int32) bool) *Partitioner {
	return &Partitioner{owns: owns}
}

// NumOwned returns how many apps the partitioner currently owns.
func (p *Partitioner) NumOwned() int { return len(p.ids) }

// Partition projects a dense export onto the shard. full must come from
// the same market on every call (monotone days, append-only catalog).
// Like Market.Export, Partition must not run concurrently with itself;
// the returned Export is immutable and safe to share.
func (p *Partitioner) Partition(full *Export) *Export {
	// Extend the owned-ID list over any newly arrived apps.
	for g := p.scanned; g < full.NumApps(); g++ {
		if id := full.ID(g); p.owns(id) {
			p.ids = append(p.ids, id)
		}
	}
	p.scanned = full.NumApps()

	n := len(p.ids)
	nc := numChunks(n)
	nca := numAppChunks(n)
	e := &Export{
		store:    full.store,
		day:      full.day,
		n:        n,
		catNames: full.catNames,
		devNames: full.devNames,
		apps:     make([][]catalog.App, nca),
		dls:      make([][]int64, nc),
		vers:     make([][]uint32, nc),
		chunkVer: make([]uint64, nc),
		ids:      p.ids[:n:n],
	}
	prev := p.prev

	// Pass 1: decide sharing per chunk and size the fresh backing arrays.
	// A chunk is shareable iff the previous partition has it at the same
	// length (the tail chunk grows with arrivals) and every row's RowVer is
	// unchanged — RowVer covers both the catalog row and the download
	// count, so one test clears the row and download vectors together.
	var nApps, nDLs int
	for c := 0; c < nc; c++ {
		lo, hi := chunkSpan(c, n)
		if prev != nil && c < len(prev.vers) && len(prev.vers[c]) == hi-lo {
			pv := prev.vers[c]
			same := true
			for j := lo; j < hi; j++ {
				if full.RowVer(int(e.ids[j])) != pv[j-lo] {
					same = false
					break
				}
			}
			if same {
				e.vers[c] = pv
				e.dls[c] = prev.dls[c]
				e.chunkVer[c] = prev.chunkVer[c]
				continue
			}
		}
		nDLs += hi - lo
	}
	for c := 0; c < nca; c++ {
		lo := c << appChunkShift
		hi := lo + appExportChunk
		if hi > n {
			hi = n
		}
		if prev != nil && c < len(prev.apps) && len(prev.apps[c]) == hi-lo {
			same := true
			for j := lo; j < hi; j++ {
				if full.RowVer(int(e.ids[j])) != prev.RowVer(j) {
					same = false
					break
				}
			}
			if same {
				e.apps[c] = prev.apps[c]
				continue
			}
		}
		nApps += hi - lo
	}

	// Pass 2: copy the dirty chunks out of the full export, carving all
	// fresh chunks of a family from one backing allocation. The fresh
	// chunk version is the sum of (RowVer+1) over the chunk's rows: every
	// term is per-row monotone and the row set only grows at the tail, so
	// the sum is monotone across the partitioner's exports and equal sums
	// imply row-by-row equality — the same contract dense ChunkVer gives.
	freshDLs := make([]int64, 0, nDLs)
	freshVers := make([]uint32, 0, nDLs)
	for c := 0; c < nc; c++ {
		if e.vers[c] != nil {
			continue
		}
		lo, hi := chunkSpan(c, n)
		offD, offV := len(freshDLs), len(freshVers)
		var cv uint64
		for j := lo; j < hi; j++ {
			g := int(e.ids[j])
			rv := full.RowVer(g)
			freshDLs = append(freshDLs, full.Downloads(g))
			freshVers = append(freshVers, rv)
			cv += uint64(rv) + 1
		}
		e.dls[c] = freshDLs[offD:len(freshDLs):len(freshDLs)]
		e.vers[c] = freshVers[offV:len(freshVers):len(freshVers)]
		e.chunkVer[c] = cv
	}
	freshApps := make([]catalog.App, 0, nApps)
	for c := 0; c < nca; c++ {
		if e.apps[c] != nil {
			continue
		}
		lo := c << appChunkShift
		hi := lo + appExportChunk
		if hi > n {
			hi = n
		}
		off := len(freshApps)
		for j := lo; j < hi; j++ {
			freshApps = append(freshApps, full.App(int(e.ids[j])))
		}
		e.apps[c] = freshApps[off:len(freshApps):len(freshApps)]
	}

	// The shard's download total: summed over owned rows only, so the
	// fleet's totals add up to the dense export's.
	var total int64
	for c := 0; c < nc; c++ {
		for _, d := range e.dls[c] {
			total += d
		}
	}
	e.total = total

	p.prev = e
	return e
}
