package marketsim

import "planetapps/internal/rng"

// cumIndex is a bucketed lower-bound hint over a cumulative weight table:
// buckets[b] holds the lower bound of total*b/K, so a draw landing in
// bucket b only needs to binary-search the few entries between two
// consecutive hints instead of the whole table. It is purely an
// accelerator — sampleCum validates the hinted bracket against the
// current table before trusting it and falls back to the full range
// otherwise, so every draw returns the exact index an unindexed search
// would. That validation is also what lets rebuilds be amortized: the
// free and per-category tables are append-only, so a slightly stale
// index merely sends the few draws that land past its horizon (or in a
// bucket the appended mass shifted) down the full-range path.
type cumIndex struct {
	buckets []int32 // buckets[b] = lower bound of total*b/K; buckets[K] = len-1
	n       int     // table length at the last rebuild
}

const (
	// cumIndexMinLen is the table size below which a plain binary search
	// is already cache-resident and the index is not kept.
	cumIndexMinLen = 512
	// cumIndexShift targets ~16 table entries per bucket.
	cumIndexShift = 4
)

// fresh reports whether the index is still worth consulting: rebuilt is
// triggered once appended growth exceeds ~1.5% of the table, bounding
// the fraction of draws that fall back to a full-range search.
func (ix *cumIndex) fresh(cum []float64) bool {
	return len(cum)-ix.n <= ix.n>>6
}

// rebuild recomputes the bucket hints with one linear sweep of the table.
func (ix *cumIndex) rebuild(cum []float64) {
	n := len(cum)
	ix.n = n
	if n < cumIndexMinLen {
		ix.buckets = ix.buckets[:0]
		return
	}
	k := 1
	for k < n>>cumIndexShift {
		k <<= 1
	}
	if cap(ix.buckets) < k+1 {
		ix.buckets = make([]int32, k+1)
	}
	ix.buckets = ix.buckets[:k+1]
	total := cum[n-1]
	i := 0
	for b := 0; b < k; b++ {
		t := total * float64(b) / float64(k)
		for i < n-1 && cum[i] <= t {
			i++
		}
		ix.buckets[b] = int32(i)
	}
	ix.buckets[k] = int32(n - 1)
}

// sampleCum draws an index from a cumulative weight table, consuming
// exactly one uniform variate. ix narrows the binary search (nil for
// unindexed tables); the result is identical with or without it.
func sampleCum(r *rng.RNG, cum []float64, ix *cumIndex) int {
	if len(cum) == 0 {
		return -1
	}
	f := r.Float64()
	u := f * cum[len(cum)-1]
	lo, hi := 0, len(cum)-1
	if ix != nil && len(ix.buckets) > 1 {
		k := len(ix.buckets) - 1
		b := int(f * float64(k))
		if b >= k {
			b = k - 1
		}
		l, h := int(ix.buckets[b]), int(ix.buckets[b+1])
		// Use the hint only if it provably brackets the lower bound of u
		// in the *current* table; the full range stays correct otherwise.
		if h < len(cum) && (l == 0 || cum[l-1] <= u) && cum[h] > u {
			lo, hi = l, h
		}
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] <= u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
