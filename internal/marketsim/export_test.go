package marketsim

import (
	"testing"

	"planetapps/internal/catalog"
)

func exportTestConfig(scale float64, days int) Config {
	cfg := DefaultConfig(catalog.Profiles["slideme"].Scale(scale))
	cfg.Days = days
	return cfg
}

// exportEqual deep-compares two exports through the public accessors.
func exportEqual(t *testing.T, a, b *Export) {
	t.Helper()
	if a.Day() != b.Day() || a.NumApps() != b.NumApps() || a.TotalDownloads() != b.TotalDownloads() {
		t.Fatalf("header mismatch: day %d/%d apps %d/%d total %d/%d",
			a.Day(), b.Day(), a.NumApps(), b.NumApps(), a.TotalDownloads(), b.TotalDownloads())
	}
	for i := 0; i < a.NumApps(); i++ {
		if a.App(i) != b.App(i) {
			t.Fatalf("day %d app %d: rows differ: %+v vs %+v", a.Day(), i, a.App(i), b.App(i))
		}
		if a.Downloads(i) != b.Downloads(i) {
			t.Fatalf("day %d app %d: downloads %d vs %d", a.Day(), i, a.Downloads(i), b.Downloads(i))
		}
	}
}

// TestDeltaExportMatchesFullExport is the tentpole's safety net: the
// chunk-sharing export must be byte-for-byte the export a full copy would
// have produced, every day, through arrivals, updates, price changes, and
// downloads.
func TestDeltaExportMatchesFullExport(t *testing.T) {
	const days = 12
	cfgDelta := exportTestConfig(0.10, days)
	cfgFull := cfgDelta
	cfgFull.FullExport = true

	md, err := New(cfgDelta, 42)
	if err != nil {
		t.Fatal(err)
	}
	mf, err := New(cfgFull, 42)
	if err != nil {
		t.Fatal(err)
	}
	exportEqual(t, md.Export(), mf.Export())
	for d := 1; d < days; d++ {
		if err := md.Step(); err != nil {
			t.Fatal(err)
		}
		if err := mf.Step(); err != nil {
			t.Fatal(err)
		}
		exportEqual(t, md.Export(), mf.Export())
	}
}

// TestDirtySetMatchesBruteForceDiff checks the observation the serving
// layer's carry-forward rests on: RowVer(i) changed between consecutive
// exports if and only if app i's servable content (catalog row or
// download count) actually changed; likewise chunk versions for chunks.
func TestDirtySetMatchesBruteForceDiff(t *testing.T) {
	const days = 10
	m, err := New(exportTestConfig(0.10, days), 7)
	if err != nil {
		t.Fatal(err)
	}
	prev := m.Export()
	for d := 1; d < days; d++ {
		if err := m.Step(); err != nil {
			t.Fatal(err)
		}
		cur := m.Export()
		// Per-row: dirty ⟺ content changed (apps present in both).
		for i := 0; i < prev.NumApps(); i++ {
			changed := prev.App(i) != cur.App(i) || prev.Downloads(i) != cur.Downloads(i)
			dirty := prev.RowVer(i) != cur.RowVer(i)
			if changed != dirty {
				t.Fatalf("day %d app %d: changed=%v dirty=%v (rowver %d -> %d)",
					d, i, changed, dirty, prev.RowVer(i), cur.RowVer(i))
			}
		}
		// Per-chunk: a chunk reported unchanged must have identical content
		// and identical length (no arrivals landed in it).
		for c := 0; c < prev.NumChunks() && c < cur.NumChunks(); c++ {
			if !cur.ChunkUnchanged(prev, c) {
				continue
			}
			lo := c * ExportChunk
			hi := lo + ExportChunk
			if hi > prev.NumApps() {
				hi = prev.NumApps()
			}
			for i := lo; i < hi; i++ {
				if prev.App(i) != cur.App(i) || prev.Downloads(i) != cur.Downloads(i) {
					t.Fatalf("day %d chunk %d claimed unchanged but app %d differs", d, c, i)
				}
			}
		}
		prev = cur
	}
}

// TestVersionSumTracksChunks ensures the listing-page cache key is sound:
// equal VersionSum over a page's chunk range implies every row on the
// page is unchanged.
func TestVersionSumTracksChunks(t *testing.T) {
	const days = 8
	m, err := New(exportTestConfig(0.10, days), 3)
	if err != nil {
		t.Fatal(err)
	}
	prev := m.Export()
	const page = 100 // rows per listing page, as the storeserver defaults
	for d := 1; d < days; d++ {
		if err := m.Step(); err != nil {
			t.Fatal(err)
		}
		cur := m.Export()
		if cur.NumApps() == prev.NumApps() {
			for lo := 0; lo < cur.NumApps(); lo += page {
				hi := lo + page
				if hi > cur.NumApps() {
					hi = cur.NumApps()
				}
				if cur.VersionSum(lo, hi) != prev.VersionSum(lo, hi) {
					continue // page changed; nothing to assert
				}
				for i := lo; i < hi; i++ {
					if prev.App(i) != cur.App(i) || prev.Downloads(i) != cur.Downloads(i) {
						t.Fatalf("day %d page [%d,%d): equal VersionSum but app %d differs", d, lo, hi, i)
					}
				}
			}
		}
		prev = cur
	}
}

// TestExportSharesChunksAcrossDays verifies sharing actually happens: at
// default churn the overwhelming majority of a day's rows are untouched,
// so consecutive exports must report many unchanged chunks — the property
// the ≥5x day-roll speedup comes from.
func TestExportSharesChunksAcrossDays(t *testing.T) {
	const days = 6
	// A crawl-realistic regime: daily download volume a small fraction of
	// the catalog (Users*DownloadsPerUser/Days ≈ 80 of 4000 apps), so most
	// chunks see no activity on any given day.
	cfg := DefaultConfig(catalog.Profile{
		Name: "lowchurn", Apps: 4000, Categories: 30, PaidFraction: 0.1,
		AdFraction: 0.67, NewAppsPerDay: 2,
		Users: 4000, DownloadsPerUser: 82,
		ZipfGlobal: 1.4, ZipfCluster: 1.4, ClusterP: 0.9, CategorySkew: 0.35,
		PriceLogMu: 1.0, PriceLogSigma: 0.8, MeanUpdateRate: 0.003,
	})
	cfg.Days = 4096
	cfg.WarmupDays = 0
	m, err := New(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	prev := m.Export()
	for d := 1; d < days; d++ {
		if err := m.Step(); err != nil {
			t.Fatal(err)
		}
		cur := m.Export()
		shared := 0
		n := prev.NumChunks()
		if cn := cur.NumChunks(); cn < n {
			n = cn
		}
		for c := 0; c < n; c++ {
			if cur.ChunkUnchanged(prev, c) {
				shared++
			}
		}
		if n >= 4 && shared == 0 {
			t.Fatalf("day %d: no chunks shared out of %d — delta export not engaging", d, n)
		}
		prev = cur
	}
}

// TestExportIdempotentWithoutStep checks that exporting twice with no
// intervening step shares every chunk: nothing changed, nothing copies.
func TestExportIdempotentWithoutStep(t *testing.T) {
	m, err := New(exportTestConfig(0.10, 4), 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Step(); err != nil {
		t.Fatal(err)
	}
	a := m.Export()
	b := m.Export()
	exportEqual(t, a, b)
	for c := 0; c < a.NumChunks(); c++ {
		if !b.ChunkUnchanged(a, c) {
			t.Fatalf("chunk %d not shared across back-to-back exports", c)
		}
	}
}

// TestSeedDeterminismAcrossModes proves the dirty tracking and the
// DisableSeries/FullExport knobs are observation-only: the simulated
// market is identical for a fixed seed regardless of their settings.
func TestSeedDeterminismAcrossModes(t *testing.T) {
	const days = 8
	base := exportTestConfig(0.10, days)
	variants := []func(*Config){
		func(c *Config) {},
		func(c *Config) { c.FullExport = true },
		func(c *Config) { c.DisableSeries = true },
		func(c *Config) { c.FullExport = true; c.DisableSeries = true },
	}
	var ref *Export
	for vi, mod := range variants {
		cfg := base
		mod(&cfg)
		m, err := New(cfg, 11)
		if err != nil {
			t.Fatal(err)
		}
		for d := 1; d < days; d++ {
			if err := m.Step(); err != nil {
				t.Fatal(err)
			}
		}
		e := m.Export()
		if vi == 0 {
			ref = e
			continue
		}
		exportEqual(t, ref, e)
	}
}
