// Package marketsim evolves a synthetic appstore day by day: new apps
// arrive, developers ship updates, prices drift, and users download apps
// following the paper's APP-CLUSTERING behaviour over the catalog's real
// category structure. It substitutes for the live appstores the paper
// crawled; its daily snapshots are the "measured data" every experiment
// consumes.
//
// Two download streams run side by side, matching §6's observations:
//
//   - Free apps are downloaded by clustering-driven users (temporal
//     category affinity, fetch-at-most-once), yielding the truncated
//     Zipf curves of Figure 3.
//   - Paid apps are downloaded by a separate, more selective process —
//     price-discounted Zipf with fetch-at-most-once and no clustering —
//     yielding the pure power law of Figure 11(b) and the negative
//     price-popularity correlation of Figure 12.
//
// Day-over-day the catalog barely changes relative to its size (the same
// observation Potharaju et al. make about production stores), so the
// market additionally maintains an observation-only dirty set: per-app
// row versions and per-chunk version stamps that let Export share
// unchanged state between consecutive days (see export.go). The dirty
// tracking never feeds back into the simulation — output for a fixed
// seed is byte-identical with tracking observed or ignored.
package marketsim

import (
	"fmt"
	"math"

	"planetapps/internal/catalog"
	"planetapps/internal/dist"
	"planetapps/internal/rng"
	"planetapps/internal/snapshot"
)

// Config controls a market simulation beyond the catalog profile.
type Config struct {
	// Profile is the store population profile.
	Profile catalog.Profile
	// Days is the measurement period length.
	Days int
	// WarmupDays simulates download history before the recorded period, so
	// day 0 reflects a mature store (the paper's stores carried years of
	// accumulated downloads on the first crawl day). The per-user download
	// budget DownloadsPerUser is spread over WarmupDays+Days.
	WarmupDays int
	// PaidDownloadShare is the paid stream's volume as a fraction of the
	// free stream's (Table 1: SlideMe paid sees ~2.4% of free volume).
	// Only meaningful when the profile has paid apps.
	PaidDownloadShare float64
	// PriceElasticity shapes the paid-app price penalty: effective appeal
	// is divided by (1+price)^PriceElasticity.
	PriceElasticity float64
	// PriceChangeP is the per-app per-day probability of a price change.
	PriceChangeP float64
	// PaidSelectivity raises paid-app appeal to this power before
	// sampling. Values above 1 concentrate paid downloads on the best
	// apps, producing the steeper pure power law of Figure 11(b) (users
	// "are more selective when paying for apps").
	PaidSelectivity float64
	// ShovelwareDamping divides an app's appeal by its developer's
	// portfolio size raised to this power. It models the paper's Figure 14
	// finding that income does not grow with portfolio size: accounts that
	// mass-produce apps (the 1,402-app e-book publisher) ship individually
	// unpopular ones.
	ShovelwareDamping float64
	// DisableSeries skips the per-day snapshot.Series accumulation — an
	// O(apps) copy per Step that only analysis consumers need. Serving
	// deployments (appstored) that never read the series should set it.
	// The simulation itself is unaffected: downloads, catalog state, and
	// RNG consumption are identical either way.
	DisableSeries bool
	// FullExport disables cross-export chunk sharing: every Export is a
	// fully materialized deep copy, as before the incremental day-roll.
	// Used by determinism tests and as an escape hatch; the default
	// (false) shares unchanged chunks between consecutive exports.
	FullExport bool
}

// DefaultConfig returns a calibrated configuration for the profile.
func DefaultConfig(p catalog.Profile) Config {
	return Config{
		Profile:           p,
		Days:              60,
		WarmupDays:        60,
		PaidDownloadShare: 0.024,
		PriceElasticity:   0.8,
		PriceChangeP:      0.002,
		PaidSelectivity:   2.0,
		ShovelwareDamping: 1.0,
	}
}

// Market is a running simulation. Create with New, advance with Step or
// Run.
type Market struct {
	cfg Config
	cat *catalog.Catalog
	r   *rng.RNG

	day       int
	downloads []int64 // per-app cumulative
	total     int64   // sum of downloads, maintained incrementally
	appeal    []float64
	// catBias reshapes within-category concentration: category tables use
	// appeal^catBias, so the within-category rank distribution follows the
	// profile's ZipfCluster exponent rather than ZipfGlobal. This is what
	// gives measured curves their two-scale (global vs cluster) structure.
	catBias float64

	// Hot per-app side arrays. updatesAndPrices walks every app every day;
	// reading 8-byte entries sequentially instead of striding through
	// 64-byte catalog rows keeps that walk in cache. Both mirror fields
	// that are immutable after an app is created.
	updateRate []float64
	isPaid     []bool

	// Free-stream sampling tables. Appeal weights are immutable after
	// creation and arrivals get strictly increasing IDs, so the free and
	// per-category tables are append-only: extending them reproduces the
	// exact float accumulation order of a from-scratch rebuild.
	freeCum  []float64
	freeApps []catalog.AppID
	catCum   [][]float64
	catApps  [][]catalog.AppID

	// Paid-stream table. Paid weights do change (price drift, portfolio
	// growth), so the cumulative sums are re-accumulated from the lowest
	// dirty index each day — bit-identical to a full rebuild because the
	// prefix before that index is the same fold of the same weights.
	paidCum       []float64
	paidApps      []catalog.AppID
	paidW         []float64 // cached per-entry weight
	paidIdx       []int32   // app index -> paid table index, -1 if free
	paidDirty     []int32   // paid table indexes needing weight recompute
	paidPortfolio map[catalog.DevID]int
	devPaid       map[catalog.DevID][]int32 // dev -> paid table indexes (ShovelwareDamping > 0 only)
	tableN        int                       // apps incorporated into the tables so far

	// Draw-acceleration indexes over the append-only sampling tables
	// (cumindex.go). Observation-only for the RNG stream and the draw
	// results: sampleCum validates a hint before using it.
	freeCumIdx cumIndex
	catCumIdx  []cumIndex

	// Observation-only dirty tracking (see package comment). rowVer bumps
	// at most once per day on an app's first serving-visible change (row
	// fields or download count); chunkVer is the chunk-granular
	// counterpart. rowChunkDay / dlChunkDay stamp which chunks had
	// catalog-row / download-vector writes, steering Export's chunk
	// sharing.
	rowVer      []uint32
	dirtyDay    []int32
	chunkVer    []uint64
	chunkVerDay []int32
	rowChunkDay []int32
	dlChunkDay  []int32

	// Export sharing state (export.go).
	lastExport    *Export
	lastExportDay int
	catNames      []string
	devNames      []string

	// Free users are dense (ids 0..Users-1), so a flat slice replaces the
	// map; history slices are carved from a bump-pointer arena at exactly
	// the user's download budget, so steady-state simulation performs no
	// per-event allocation.
	freeUsers  []userState
	freeBudget []int32
	hist       arena
	usersPaid  map[int32]*userState
	paidSlab   []userState

	series     *snapshot.Series
	dailyPaid  float64
	paidVolume bool
	// schedule is the shuffled sequence of free-stream download events
	// (one user id per event); each user appears exactly their per-user
	// download budget times, so user behaviour matches the exact-d users
	// of the analytic models. nextEvent tracks consumption; totalPeriods
	// is Days+WarmupDays.
	schedule     []int32
	nextEvent    int
	totalPeriods int
}

// ownedThreshold is the history length past which a user gets a hash set
// for ownership checks. Below it a backward scan of the (small) history
// answers has() faster than a map ever would and costs no allocation;
// membership answers are identical either way.
const ownedThreshold = 64

type userState struct {
	owned   map[catalog.AppID]struct{} // nil until history outgrows ownedThreshold
	history []catalog.AppID
}

func (u *userState) has(a catalog.AppID) bool {
	if u.owned != nil {
		_, ok := u.owned[a]
		return ok
	}
	// Recent downloads are the likeliest collision (clustering re-draws
	// from the same categories), so scan backwards.
	for i := len(u.history) - 1; i >= 0; i-- {
		if u.history[i] == a {
			return true
		}
	}
	return false
}

func (u *userState) record(a catalog.AppID) {
	u.history = append(u.history, a)
	if u.owned != nil {
		u.owned[a] = struct{}{}
	} else if len(u.history) >= ownedThreshold {
		u.owned = make(map[catalog.AppID]struct{}, 2*len(u.history))
		for _, x := range u.history {
			u.owned[x] = struct{}{}
		}
	}
}

// arena hands out history slices from large blocks. Blocks are never
// freed individually — the market's lifetime bounds them — so a carve is
// a bump-pointer move, not an allocation.
type arena struct {
	block []catalog.AppID
}

const arenaBlock = 1 << 16

// carve returns a zero-length slice with capacity n backed by the arena.
func (ar *arena) carve(n int) []catalog.AppID {
	if cap(ar.block)-len(ar.block) < n {
		size := arenaBlock
		if n > size {
			size = n
		}
		ar.block = make([]catalog.AppID, 0, size)
	}
	off := len(ar.block)
	ar.block = ar.block[:off+n]
	return ar.block[off : off : off+n]
}

// New builds a market over a freshly generated catalog. Deterministic in
// (cfg, seed).
func New(cfg Config, seed uint64) (*Market, error) {
	if cfg.Days < 2 {
		return nil, fmt.Errorf("marketsim: Days = %d, need >= 2", cfg.Days)
	}
	if cfg.PaidDownloadShare < 0 {
		return nil, fmt.Errorf("marketsim: negative PaidDownloadShare")
	}
	cat, err := catalog.Generate(cfg.Profile, seed)
	if err != nil {
		return nil, err
	}
	r := rng.New(seed).Split(0x6d61726b6574) // "market"
	m := &Market{
		cfg:           cfg,
		cat:           cat,
		r:             r,
		usersPaid:     map[int32]*userState{},
		paidPortfolio: map[catalog.DevID]int{},
		series:        &snapshot.Series{Store: cfg.Profile.Name},
		lastExportDay: -1,
	}
	if cfg.ShovelwareDamping > 0 {
		m.devPaid = map[catalog.DevID][]int32{}
	}
	n := cat.NumApps()
	m.downloads = make([]int64, n)
	m.appeal = make([]float64, 0, n)
	for i := 0; i < n; i++ {
		m.appeal = append(m.appeal, m.newAppeal(cat.Apps[i].Dev))
	}
	m.initTracking()
	// Per-user budgets: floor(d) plus one with probability frac(d), the
	// same convention the model package uses. The flattened, shuffled
	// schedule interleaves users across the whole period.
	m.totalPeriods = cfg.Days + cfg.WarmupDays
	d := cfg.Profile.DownloadsPerUser
	m.freeUsers = make([]userState, cfg.Profile.Users)
	m.freeBudget = make([]int32, cfg.Profile.Users)
	for u := 0; u < cfg.Profile.Users; u++ {
		k := int(d)
		if m.r.Bool(d - float64(k)) {
			k++
		}
		m.freeBudget[u] = int32(k)
		for j := 0; j < k; j++ {
			m.schedule = append(m.schedule, int32(u))
		}
	}
	m.r.Shuffle(len(m.schedule), func(i, j int) {
		m.schedule[i], m.schedule[j] = m.schedule[j], m.schedule[i]
	})
	_, paid := cat.FreePaidCounts()
	m.paidVolume = paid > 0
	if m.paidVolume {
		m.dailyPaid = float64(len(m.schedule)) / float64(m.totalPeriods) * cfg.PaidDownloadShare
	}
	m.catBias = 1
	if cfg.Profile.ZipfGlobal > 0 && cfg.Profile.ZipfCluster > 0 {
		m.catBias = cfg.Profile.ZipfCluster / cfg.Profile.ZipfGlobal
	}
	// Warm up: accumulate pre-period history so the day-0 snapshot looks
	// like a mature store, then record day 0. simulateDownloads consumes
	// the schedule up through the current day, which at this point covers
	// all warmup days plus day 0 — so first-day curves are never all-zero.
	m.syncTables()
	m.simulateDownloads()
	if !m.cfg.DisableSeries {
		m.record()
	}
	return m, nil
}

// initTracking sizes the side arrays and dirty-tracking state for the
// generated catalog. Draws no randomness.
func (m *Market) initTracking() {
	n := m.cat.NumApps()
	m.updateRate = make([]float64, n)
	m.isPaid = make([]bool, n)
	m.paidIdx = make([]int32, n)
	for i := 0; i < n; i++ {
		a := &m.cat.Apps[i]
		m.updateRate[i] = a.UpdateRate
		m.isPaid[i] = a.Pricing == catalog.Paid
		m.paidIdx[i] = -1
	}
	m.rowVer = make([]uint32, n)
	m.dirtyDay = make([]int32, n)
	for i := range m.dirtyDay {
		m.dirtyDay[i] = -1
	}
	nc := numChunks(n)
	m.chunkVer = make([]uint64, nc)
	m.chunkVerDay = make([]int32, nc)
	m.dlChunkDay = make([]int32, nc)
	for c := 0; c < nc; c++ {
		m.chunkVerDay[c] = -1
		m.dlChunkDay[c] = -1
	}
	m.rowChunkDay = make([]int32, numAppChunks(n))
	for c := range m.rowChunkDay {
		m.rowChunkDay[c] = -1
	}
	m.catNames = make([]string, len(m.cat.Categories))
	for i := range m.cat.Categories {
		m.catNames[i] = m.cat.Categories[i].Name
	}
	m.devNames = make([]string, 0, len(m.cat.Developers)+len(m.cat.Developers)/8+16)
	m.syncDevNames()
}

// syncDevNames extends the developer name table to cover arrivals. The
// backing array is shared with prior exports: entries below their length
// are never rewritten, so appending (even in place) cannot be observed by
// a holder of an older, shorter header.
func (m *Market) syncDevNames() []string {
	for i := len(m.devNames); i < len(m.cat.Developers); i++ {
		m.devNames = append(m.devNames, m.cat.Developers[i].Name)
	}
	return m.devNames
}

// touchRow registers a serving-visible change to app i today: its row
// version and its chunk's version each bump at most once per day.
func (m *Market) touchRow(i int) {
	d := int32(m.day)
	if m.dirtyDay[i] != d {
		m.dirtyDay[i] = d
		m.rowVer[i]++
	}
	c := i >> chunkShift
	if m.chunkVerDay[c] != d {
		m.chunkVerDay[c] = d
		m.chunkVer[c]++
	}
}

// markRow records a catalog-row mutation (new app, update, price change).
// Row writes stamp the finer apps-family chunk (see appChunkShift).
func (m *Market) markRow(i int) {
	m.touchRow(i)
	if c := i >> appChunkShift; m.rowChunkDay[c] != int32(m.day) {
		m.rowChunkDay[c] = int32(m.day)
	}
}

// markDL records a download-count mutation.
func (m *Market) markDL(i int) {
	m.touchRow(i)
	if c := i >> chunkShift; m.dlChunkDay[c] != int32(m.day) {
		m.dlChunkDay[c] = int32(m.day)
	}
}

// growTracking extends per-app and per-chunk tracking state to cover a
// newly added app (id == len-1 after the catalog append).
func (m *Market) growTracking(a *catalog.App) {
	m.updateRate = append(m.updateRate, a.UpdateRate)
	m.isPaid = append(m.isPaid, a.Pricing == catalog.Paid)
	m.paidIdx = append(m.paidIdx, -1)
	m.rowVer = append(m.rowVer, 0)
	m.dirtyDay = append(m.dirtyDay, -1)
	for nc := numChunks(m.cat.NumApps()); len(m.chunkVer) < nc; {
		m.chunkVer = append(m.chunkVer, 0)
		m.chunkVerDay = append(m.chunkVerDay, -1)
		m.dlChunkDay = append(m.dlChunkDay, -1)
	}
	for nca := numAppChunks(m.cat.NumApps()); len(m.rowChunkDay) < nca; {
		m.rowChunkDay = append(m.rowChunkDay, -1)
	}
}

// newAppeal draws an app's intrinsic appeal weight. Pareto-tailed appeal
// makes the sorted weights follow a power law with exponent
// 1/alpha = ZipfGlobal, so the simulated rank curves carry the profile's
// trunk slope.
func (m *Market) newAppeal(catalog.DevID) float64 {
	alpha := 1 / m.cfg.Profile.ZipfGlobal
	p := dist.Pareto{Xm: 1, Alpha: alpha}
	w := p.Sample(m.r)
	// Cap the heavy tail near the expected maximum order statistic
	// (~Apps^zr). Without the cap a single freak draw can absorb a large,
	// realization-dependent share of the store, destabilizing the head of
	// every popularity curve; with it, the top couple of apps sit near the
	// cap, reproducing the near-tied top ranks real stores exhibit.
	if cap := math.Pow(float64(m.cfg.Profile.Apps), m.cfg.Profile.ZipfGlobal) / 2; w > cap {
		w = cap
	}
	return w
}

// Catalog exposes the market's evolving catalog.
func (m *Market) Catalog() *catalog.Catalog { return m.cat }

// Day returns the current day index (number of completed days - 1).
func (m *Market) Day() int { return m.day }

// Series returns the snapshot series accumulated so far (empty when the
// market runs with DisableSeries).
func (m *Market) Series() *snapshot.Series { return m.series }

// Downloads returns the live per-app cumulative download counts (shared
// slice; callers must not modify).
func (m *Market) Downloads() []int64 { return m.downloads }

// ApplyDownloadDelta merges externally ingested download counts (the
// store's WAL day-delta) into the market's cumulative state: per-app
// counts, the running total, and the dirty tracking that drives export
// chunk sharing and content-version ETags. Unknown app IDs (a client
// writing against a stale catalog view) are skipped and reported.
//
// Downloads are observation-only for the simulation — they are never
// sampling inputs — so merging a delta perturbs no RNG stream: the
// simulated trajectory with writes is the simulated trajectory without
// them, plus exactly the ingested counts. Callers pass apps in a
// deterministic order for reproducible builds; the merged state itself is
// order-independent (commutative adds).
func (m *Market) ApplyDownloadDelta(apps []int32, count func(int32) int64) (applied, skipped int) {
	for _, id := range apps {
		i := int(id)
		if i < 0 || i >= len(m.downloads) {
			skipped++
			continue
		}
		n := count(id)
		if n <= 0 {
			continue
		}
		m.downloads[i] += n
		m.total += n
		m.markDL(i)
		applied++
	}
	return applied, skipped
}

// Run advances the market to the configured number of days and returns the
// snapshot series.
func (m *Market) Run() (*snapshot.Series, error) {
	for m.day < m.cfg.Days-1 {
		if err := m.Step(); err != nil {
			return nil, err
		}
	}
	return m.series, nil
}

// Step simulates one day: arrivals, updates, price drift, downloads, and a
// snapshot.
func (m *Market) Step() error {
	if m.day >= m.cfg.Days-1 {
		return fmt.Errorf("marketsim: period of %d days already complete", m.cfg.Days)
	}
	m.day++
	m.arrivals()
	m.updatesAndPrices()
	m.syncTables()
	m.simulateDownloads()
	if !m.cfg.DisableSeries {
		m.record()
	}
	return nil
}

// arrivals publishes the day's new apps. Most arrivals come from new
// developer accounts joining the store (keeping the single-app developer
// share high, per Figure 16a); the rest extend existing portfolios.
func (m *Market) arrivals() {
	n := m.r.Poisson(m.cfg.Profile.NewAppsPerDay)
	for k := 0; k < n; k++ {
		dev := catalog.DevID(len(m.cat.Developers)) // a brand-new account
		if m.r.Bool(0.3) {
			dev = catalog.DevID(m.r.Intn(len(m.cat.Developers)))
		}
		a := catalog.App{
			Dev:        dev,
			Category:   catalog.CategoryID(m.r.Intn(len(m.cat.Categories))),
			SizeMB:     3.5,
			AddedDay:   m.day,
			UpdateRate: 0.003,
			Quality:    m.r.Float64(),
		}
		if a.Quality == 0 {
			a.Quality = 1e-6
		}
		if m.r.Bool(m.cfg.Profile.PaidFraction) {
			a.Pricing = catalog.Paid
			price := dist.LogNormal{Mu: m.cfg.Profile.PriceLogMu, Sigma: m.cfg.Profile.PriceLogSigma}.Sample(m.r)
			if price < 0.5 {
				price = 0.5
			}
			if price > 50 {
				price = 50
			}
			a.Price = float64(int(price*100+0.5)) / 100
		} else {
			a.HasAds = m.r.Bool(m.cfg.Profile.AdFraction)
		}
		id := m.cat.AddApp(a)
		// New arrivals start with damped appeal: most newcomers are
		// unpopular; breakout hits are possible but rare.
		m.appeal = append(m.appeal, m.newAppeal(m.cat.Apps[int(id)].Dev)*0.25)
		m.downloads = append(m.downloads, 0)
		m.growTracking(&m.cat.Apps[int(id)])
		m.markRow(int(id))
	}
}

// updatesAndPrices ships version updates and drifts paid prices.
func (m *Market) updatesAndPrices() {
	for i := range m.updateRate {
		if m.r.Bool(m.updateRate[i]) {
			m.cat.Apps[i].Versions++
			m.markRow(i)
		}
		if m.isPaid[i] && m.r.Bool(m.cfg.PriceChangeP) {
			a := &m.cat.Apps[i]
			factor := 0.8 + 0.4*m.r.Float64()
			p := a.Price * factor
			if p < 0.5 {
				p = 0.5
			}
			if p > 50 {
				p = 50
			}
			a.Price = float64(int(p*100+0.5)) / 100
			m.markRow(i)
			if j := m.paidIdx[i]; j >= 0 {
				m.paidDirty = append(m.paidDirty, j)
			}
			// paidIdx < 0 means the app arrived today and is not yet in
			// the paid table; syncTables computes its weight from the
			// already-drifted price, exactly as a full rebuild would.
		}
	}
}

// paidWeight computes the effective sampling weight of paid-table entry
// j from current state (price, developer portfolio). Pure: same inputs,
// bit-identical output — the invariant the incremental table relies on.
func (m *Market) paidWeight(j int32) float64 {
	i := int(m.paidApps[j])
	a := &m.cat.Apps[i]
	w := m.appeal[i]
	// Paying users are more selective (steeper concentration) and
	// price-sensitive.
	if m.cfg.PaidSelectivity > 0 && m.cfg.PaidSelectivity != 1 {
		w = math.Pow(w, m.cfg.PaidSelectivity)
	}
	w /= math.Pow(1+a.Price, m.cfg.PriceElasticity)
	if m.cfg.ShovelwareDamping > 0 {
		if n := m.paidPortfolio[a.Dev]; n > 1 {
			w /= math.Pow(float64(n), m.cfg.ShovelwareDamping)
		}
	}
	return w
}

// syncTables brings the sampling tables up to date with the catalog:
// appends arrivals to the append-only free/category tables and patches
// the paid table from its lowest dirty index. Replaces the former full
// per-day rebuild with work proportional to the day's changes while
// producing bit-identical tables (see the field comments on Market).
func (m *Market) syncTables() {
	n := m.cat.NumApps()
	for i := m.tableN; i < n; i++ {
		a := &m.cat.Apps[i]
		w := m.appeal[i]
		if a.Pricing == catalog.Paid {
			m.paidPortfolio[a.Dev]++
			j := int32(len(m.paidApps))
			if m.cfg.ShovelwareDamping > 0 {
				// The portfolio grew: every existing paid app of this
				// developer is damped harder now.
				if m.paidPortfolio[a.Dev] > 1 {
					m.paidDirty = append(m.paidDirty, m.devPaid[a.Dev]...)
				}
				m.devPaid[a.Dev] = append(m.devPaid[a.Dev], j)
			}
			m.paidApps = append(m.paidApps, a.ID)
			m.paidW = append(m.paidW, 0)
			m.paidCum = append(m.paidCum, 0)
			m.paidIdx[i] = j
			m.paidDirty = append(m.paidDirty, j)
			continue
		}
		var freeSum float64
		if k := len(m.freeCum); k > 0 {
			freeSum = m.freeCum[k-1]
		}
		m.freeCum = append(m.freeCum, freeSum+w)
		m.freeApps = append(m.freeApps, a.ID)
		if m.catCum == nil {
			m.catCum = make([][]float64, len(m.cat.Categories))
			m.catApps = make([][]catalog.AppID, len(m.cat.Categories))
		}
		c := int(a.Category)
		cw := w
		if m.catBias != 1 {
			cw = math.Pow(w, m.catBias)
		}
		var catSum float64
		if k := len(m.catCum[c]); k > 0 {
			catSum = m.catCum[c][k-1]
		}
		m.catCum[c] = append(m.catCum[c], catSum+cw)
		m.catApps[c] = append(m.catApps[c], a.ID)
	}
	m.tableN = n
	// Refresh the stale draw-acceleration hints. Amortized: fresh()
	// tolerates a bounded amount of appended growth, so most days skip
	// the sweeps entirely.
	if !m.freeCumIdx.fresh(m.freeCum) {
		m.freeCumIdx.rebuild(m.freeCum)
	}
	if m.catCumIdx == nil && m.catCum != nil {
		m.catCumIdx = make([]cumIndex, len(m.catCum))
	}
	for c := range m.catCumIdx {
		if !m.catCumIdx[c].fresh(m.catCum[c]) {
			m.catCumIdx[c].rebuild(m.catCum[c])
		}
	}
	if len(m.paidDirty) == 0 {
		return
	}
	lo := m.paidDirty[0]
	for _, j := range m.paidDirty[1:] {
		if j < lo {
			lo = j
		}
	}
	for _, j := range m.paidDirty {
		m.paidW[j] = m.paidWeight(j)
	}
	// Re-accumulate the cumulative sums from the lowest patched entry.
	// The stored prefix below lo is the same left-to-right fold a full
	// rebuild would produce, so continuing from it is bit-identical.
	var sum float64
	if lo > 0 {
		sum = m.paidCum[lo-1]
	}
	for j := int(lo); j < len(m.paidW); j++ {
		sum += m.paidW[j]
		m.paidCum[j] = sum
	}
	m.paidDirty = m.paidDirty[:0]
}

const maxRetries = 48

// drawFree performs one clustering-model download for a free-stream user.
func (m *Market) drawFree(u *userState) (catalog.AppID, bool) {
	clustered := len(u.history) > 0 && m.r.Bool(m.cfg.Profile.ClusterP)
	if clustered {
		for try := 0; try < maxRetries; try++ {
			prev := u.history[m.r.Intn(len(u.history))]
			c := int(m.cat.CategoryOf(prev))
			idx := sampleCum(m.r, m.catCum[c], &m.catCumIdx[c])
			if idx < 0 {
				break
			}
			app := m.catApps[c][idx]
			if !u.has(app) {
				return app, true
			}
		}
		// Fall through to a global draw when the user's clusters are
		// saturated.
	}
	for try := 0; try < maxRetries; try++ {
		idx := sampleCum(m.r, m.freeCum, &m.freeCumIdx)
		if idx < 0 {
			return 0, false
		}
		app := m.freeApps[idx]
		if !u.has(app) {
			return app, true
		}
	}
	return 0, false
}

// drawPaid performs one selective paid-stream download.
func (m *Market) drawPaid(u *userState) (catalog.AppID, bool) {
	for try := 0; try < maxRetries; try++ {
		idx := sampleCum(m.r, m.paidCum, nil)
		if idx < 0 {
			return 0, false
		}
		app := m.paidApps[idx]
		if !u.has(app) {
			return app, true
		}
	}
	return 0, false
}

// paidUser returns (creating on first use) the paid-stream state for a
// user id. States are slab-allocated: paid users are few but arrive
// steadily, and one allocation per slab beats one per user.
func (m *Market) paidUser(uid int32) *userState {
	u := m.usersPaid[uid]
	if u == nil {
		if len(m.paidSlab) == cap(m.paidSlab) {
			m.paidSlab = make([]userState, 0, 128)
		}
		m.paidSlab = append(m.paidSlab, userState{})
		u = &m.paidSlab[len(m.paidSlab)-1]
		m.usersPaid[uid] = u
	}
	return u
}

// simulateDownloads generates the day's download events by consuming the
// next slice of the shuffled per-user schedule.
func (m *Market) simulateDownloads() {
	// Days consumed so far (including this one) determine the cut point so
	// rounding never drops events: the final day drains the schedule.
	consumedDays := m.day + m.cfg.WarmupDays + 1
	hi := len(m.schedule) * consumedDays / m.totalPeriods
	if hi > len(m.schedule) {
		hi = len(m.schedule)
	}
	for ; m.nextEvent < hi; m.nextEvent++ {
		uid := m.schedule[m.nextEvent]
		u := &m.freeUsers[uid]
		if u.history == nil {
			u.history = m.hist.carve(int(m.freeBudget[uid]))
		}
		if app, ok := m.drawFree(u); ok {
			u.record(app)
			m.downloads[int(app)]++
			m.total++
			m.markDL(int(app))
		}
	}
	if !m.paidVolume {
		return
	}
	// The first call covers all warmup days plus day 0; scale the paid
	// volume by the number of days this call spans.
	daysCovered := 1
	if m.day == 0 {
		daysCovered = m.cfg.WarmupDays + 1
	}
	nPaid := m.r.Poisson(m.dailyPaid * float64(daysCovered))
	for k := 0; k < nPaid; k++ {
		uid := int32(m.r.Intn(m.cfg.Profile.Users))
		u := m.paidUser(uid)
		if app, ok := m.drawPaid(u); ok {
			u.record(app)
			m.downloads[int(app)]++
			m.total++
			m.markDL(int(app))
		}
	}
}

// record appends today's snapshot to the series.
func (m *Market) record() {
	n := m.cat.NumApps()
	d := &snapshot.Day{
		Index:               m.day,
		CumulativeDownloads: append([]int64(nil), m.downloads[:n]...),
		Versions:            make([]int, n),
		Price:               make([]float64, n),
	}
	for i := 0; i < n; i++ {
		d.Versions[i] = m.cat.Apps[i].Versions
		d.Price[i] = m.cat.Apps[i].Price
	}
	// The series grows strictly by day; record is called exactly once per
	// day, so Append cannot fail by construction. Panic on violation.
	if err := m.series.Append(d); err != nil {
		panic(err)
	}
}
