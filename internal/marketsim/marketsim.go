// Package marketsim evolves a synthetic appstore day by day: new apps
// arrive, developers ship updates, prices drift, and users download apps
// following the paper's APP-CLUSTERING behaviour over the catalog's real
// category structure. It substitutes for the live appstores the paper
// crawled; its daily snapshots are the "measured data" every experiment
// consumes.
//
// Two download streams run side by side, matching §6's observations:
//
//   - Free apps are downloaded by clustering-driven users (temporal
//     category affinity, fetch-at-most-once), yielding the truncated
//     Zipf curves of Figure 3.
//   - Paid apps are downloaded by a separate, more selective process —
//     price-discounted Zipf with fetch-at-most-once and no clustering —
//     yielding the pure power law of Figure 11(b) and the negative
//     price-popularity correlation of Figure 12.
package marketsim

import (
	"fmt"
	"math"

	"planetapps/internal/catalog"
	"planetapps/internal/dist"
	"planetapps/internal/rng"
	"planetapps/internal/snapshot"
)

// Config controls a market simulation beyond the catalog profile.
type Config struct {
	// Profile is the store population profile.
	Profile catalog.Profile
	// Days is the measurement period length.
	Days int
	// WarmupDays simulates download history before the recorded period, so
	// day 0 reflects a mature store (the paper's stores carried years of
	// accumulated downloads on the first crawl day). The per-user download
	// budget DownloadsPerUser is spread over WarmupDays+Days.
	WarmupDays int
	// PaidDownloadShare is the paid stream's volume as a fraction of the
	// free stream's (Table 1: SlideMe paid sees ~2.4% of free volume).
	// Only meaningful when the profile has paid apps.
	PaidDownloadShare float64
	// PriceElasticity shapes the paid-app price penalty: effective appeal
	// is divided by (1+price)^PriceElasticity.
	PriceElasticity float64
	// PriceChangeP is the per-app per-day probability of a price change.
	PriceChangeP float64
	// PaidSelectivity raises paid-app appeal to this power before
	// sampling. Values above 1 concentrate paid downloads on the best
	// apps, producing the steeper pure power law of Figure 11(b) (users
	// "are more selective when paying for apps").
	PaidSelectivity float64
	// ShovelwareDamping divides an app's appeal by its developer's
	// portfolio size raised to this power. It models the paper's Figure 14
	// finding that income does not grow with portfolio size: accounts that
	// mass-produce apps (the 1,402-app e-book publisher) ship individually
	// unpopular ones.
	ShovelwareDamping float64
}

// DefaultConfig returns a calibrated configuration for the profile.
func DefaultConfig(p catalog.Profile) Config {
	return Config{
		Profile:           p,
		Days:              60,
		WarmupDays:        60,
		PaidDownloadShare: 0.024,
		PriceElasticity:   0.8,
		PriceChangeP:      0.002,
		PaidSelectivity:   2.0,
		ShovelwareDamping: 1.0,
	}
}

// Market is a running simulation. Create with New, advance with Step or
// Run.
type Market struct {
	cfg Config
	cat *catalog.Catalog
	r   *rng.RNG

	day       int
	downloads []int64 // per-app cumulative
	appeal    []float64
	// catBias reshapes within-category concentration: category tables use
	// appeal^catBias, so the within-category rank distribution follows the
	// profile's ZipfCluster exponent rather than ZipfGlobal. This is what
	// gives measured curves their two-scale (global vs cluster) structure.
	catBias float64

	// Free-stream sampling tables, rebuilt after daily arrivals.
	freeCum    []float64
	freeApps   []catalog.AppID
	catCum     [][]float64
	catApps    [][]catalog.AppID
	paidCum    []float64
	paidApps   []catalog.AppID
	tablesDay  int
	usersFree  map[int32]*userState
	usersPaid  map[int32]*userState
	series     *snapshot.Series
	dailyPaid  float64
	paidVolume bool
	// schedule is the shuffled sequence of free-stream download events
	// (one user id per event); each user appears exactly their per-user
	// download budget times, so user behaviour matches the exact-d users
	// of the analytic models. nextEvent tracks consumption; totalPeriods
	// is Days+WarmupDays.
	schedule     []int32
	nextEvent    int
	totalPeriods int
}

type userState struct {
	owned   map[catalog.AppID]struct{}
	history []catalog.AppID
}

func (u *userState) has(a catalog.AppID) bool {
	_, ok := u.owned[a]
	return ok
}

func (u *userState) record(a catalog.AppID) {
	if u.owned == nil {
		u.owned = make(map[catalog.AppID]struct{}, 8)
	}
	u.owned[a] = struct{}{}
	u.history = append(u.history, a)
}

// New builds a market over a freshly generated catalog. Deterministic in
// (cfg, seed).
func New(cfg Config, seed uint64) (*Market, error) {
	if cfg.Days < 2 {
		return nil, fmt.Errorf("marketsim: Days = %d, need >= 2", cfg.Days)
	}
	if cfg.PaidDownloadShare < 0 {
		return nil, fmt.Errorf("marketsim: negative PaidDownloadShare")
	}
	cat, err := catalog.Generate(cfg.Profile, seed)
	if err != nil {
		return nil, err
	}
	r := rng.New(seed).Split(0x6d61726b6574) // "market"
	m := &Market{
		cfg:       cfg,
		cat:       cat,
		r:         r,
		tablesDay: -1,
		usersFree: map[int32]*userState{},
		usersPaid: map[int32]*userState{},
		series:    &snapshot.Series{Store: cfg.Profile.Name},
	}
	m.downloads = make([]int64, cat.NumApps())
	m.appeal = make([]float64, 0, cat.NumApps())
	for i := 0; i < cat.NumApps(); i++ {
		m.appeal = append(m.appeal, m.newAppeal(cat.Apps[i].Dev))
	}
	// Per-user budgets: floor(d) plus one with probability frac(d), the
	// same convention the model package uses. The flattened, shuffled
	// schedule interleaves users across the whole period.
	m.totalPeriods = cfg.Days + cfg.WarmupDays
	d := cfg.Profile.DownloadsPerUser
	for u := 0; u < cfg.Profile.Users; u++ {
		n := int(d)
		if m.r.Bool(d - float64(n)) {
			n++
		}
		for k := 0; k < n; k++ {
			m.schedule = append(m.schedule, int32(u))
		}
	}
	m.r.Shuffle(len(m.schedule), func(i, j int) {
		m.schedule[i], m.schedule[j] = m.schedule[j], m.schedule[i]
	})
	_, paid := cat.FreePaidCounts()
	m.paidVolume = paid > 0
	if m.paidVolume {
		m.dailyPaid = float64(len(m.schedule)) / float64(m.totalPeriods) * cfg.PaidDownloadShare
	}
	m.catBias = 1
	if cfg.Profile.ZipfGlobal > 0 && cfg.Profile.ZipfCluster > 0 {
		m.catBias = cfg.Profile.ZipfCluster / cfg.Profile.ZipfGlobal
	}
	// Warm up: accumulate pre-period history so the day-0 snapshot looks
	// like a mature store, then record day 0. simulateDownloads consumes
	// the schedule up through the current day, which at this point covers
	// all warmup days plus day 0 — so first-day curves are never all-zero.
	m.rebuildTables()
	m.simulateDownloads()
	m.record()
	return m, nil
}

// newAppeal draws an app's intrinsic appeal weight. Pareto-tailed appeal
// makes the sorted weights follow a power law with exponent
// 1/alpha = ZipfGlobal, so the simulated rank curves carry the profile's
// trunk slope.
func (m *Market) newAppeal(catalog.DevID) float64 {
	alpha := 1 / m.cfg.Profile.ZipfGlobal
	p := dist.Pareto{Xm: 1, Alpha: alpha}
	w := p.Sample(m.r)
	// Cap the heavy tail near the expected maximum order statistic
	// (~Apps^zr). Without the cap a single freak draw can absorb a large,
	// realization-dependent share of the store, destabilizing the head of
	// every popularity curve; with it, the top couple of apps sit near the
	// cap, reproducing the near-tied top ranks real stores exhibit.
	if cap := math.Pow(float64(m.cfg.Profile.Apps), m.cfg.Profile.ZipfGlobal) / 2; w > cap {
		w = cap
	}
	return w
}

// Catalog exposes the market's evolving catalog.
func (m *Market) Catalog() *catalog.Catalog { return m.cat }

// Day returns the current day index (number of completed days - 1).
func (m *Market) Day() int { return m.day }

// Series returns the snapshot series accumulated so far.
func (m *Market) Series() *snapshot.Series { return m.series }

// Downloads returns the live per-app cumulative download counts (shared
// slice; callers must not modify).
func (m *Market) Downloads() []int64 { return m.downloads }

// Export is an immutable copy of the market state a serving layer needs:
// the day index, per-app catalog rows, per-app cumulative downloads, and
// the category/developer name tables. It shares nothing mutable with the
// live market, so holders may read it indefinitely while the market steps.
type Export struct {
	Store          string
	Day            int
	Apps           []catalog.App
	CategoryNames  []string
	DeveloperNames []string
	Downloads      []int64
	TotalDownloads int64
}

// Export snapshots the serving-relevant state. The copy is O(apps) value
// copies — catalog.App carries no pointers — which is cheap next to a day
// of simulation, so callers can take one per Step (copy-on-write cadence:
// the market mutates its own state freely between exports). Export must
// not run concurrently with Step; the returned value is then safe to share
// across goroutines.
func (m *Market) Export() Export {
	n := m.cat.NumApps()
	e := Export{
		Store:          m.cat.Name,
		Day:            m.day,
		Apps:           append([]catalog.App(nil), m.cat.Apps[:n]...),
		Downloads:      append([]int64(nil), m.downloads[:n]...),
		CategoryNames:  make([]string, len(m.cat.Categories)),
		DeveloperNames: make([]string, len(m.cat.Developers)),
	}
	for i := range m.cat.Categories {
		e.CategoryNames[i] = m.cat.Categories[i].Name
	}
	for i := range m.cat.Developers {
		e.DeveloperNames[i] = m.cat.Developers[i].Name
	}
	for _, d := range e.Downloads {
		e.TotalDownloads += d
	}
	return e
}

// Run advances the market to the configured number of days and returns the
// snapshot series.
func (m *Market) Run() (*snapshot.Series, error) {
	for m.day < m.cfg.Days-1 {
		if err := m.Step(); err != nil {
			return nil, err
		}
	}
	return m.series, nil
}

// Step simulates one day: arrivals, updates, price drift, downloads, and a
// snapshot.
func (m *Market) Step() error {
	if m.day >= m.cfg.Days-1 {
		return fmt.Errorf("marketsim: period of %d days already complete", m.cfg.Days)
	}
	m.day++
	m.arrivals()
	m.updatesAndPrices()
	m.rebuildTables()
	m.simulateDownloads()
	m.record()
	return nil
}

// arrivals publishes the day's new apps. Most arrivals come from new
// developer accounts joining the store (keeping the single-app developer
// share high, per Figure 16a); the rest extend existing portfolios.
func (m *Market) arrivals() {
	n := m.r.Poisson(m.cfg.Profile.NewAppsPerDay)
	for k := 0; k < n; k++ {
		dev := catalog.DevID(len(m.cat.Developers)) // a brand-new account
		if m.r.Bool(0.3) {
			dev = catalog.DevID(m.r.Intn(len(m.cat.Developers)))
		}
		a := catalog.App{
			Dev:        dev,
			Category:   catalog.CategoryID(m.r.Intn(len(m.cat.Categories))),
			SizeMB:     3.5,
			AddedDay:   m.day,
			UpdateRate: 0.003,
			Quality:    m.r.Float64(),
		}
		if a.Quality == 0 {
			a.Quality = 1e-6
		}
		if m.r.Bool(m.cfg.Profile.PaidFraction) {
			a.Pricing = catalog.Paid
			price := dist.LogNormal{Mu: m.cfg.Profile.PriceLogMu, Sigma: m.cfg.Profile.PriceLogSigma}.Sample(m.r)
			if price < 0.5 {
				price = 0.5
			}
			if price > 50 {
				price = 50
			}
			a.Price = float64(int(price*100+0.5)) / 100
		} else {
			a.HasAds = m.r.Bool(m.cfg.Profile.AdFraction)
		}
		id := m.cat.AddApp(a)
		// New arrivals start with damped appeal: most newcomers are
		// unpopular; breakout hits are possible but rare.
		m.appeal = append(m.appeal, m.newAppeal(m.cat.Apps[int(id)].Dev)*0.25)
		m.downloads = append(m.downloads, 0)
	}
}

// updatesAndPrices ships version updates and drifts paid prices.
func (m *Market) updatesAndPrices() {
	for i := range m.cat.Apps {
		a := &m.cat.Apps[i]
		if m.r.Bool(a.UpdateRate) {
			a.Versions++
		}
		if a.Pricing == catalog.Paid && m.r.Bool(m.cfg.PriceChangeP) {
			factor := 0.8 + 0.4*m.r.Float64()
			p := a.Price * factor
			if p < 0.5 {
				p = 0.5
			}
			if p > 50 {
				p = 50
			}
			a.Price = float64(int(p*100+0.5)) / 100
		}
	}
}

// rebuildTables refreshes the cumulative-weight sampling tables after the
// catalog changed.
func (m *Market) rebuildTables() {
	if m.tablesDay == m.day {
		return
	}
	m.tablesDay = m.day
	m.freeCum = m.freeCum[:0]
	m.freeApps = m.freeApps[:0]
	m.paidCum = m.paidCum[:0]
	m.paidApps = m.paidApps[:0]
	if m.catCum == nil {
		m.catCum = make([][]float64, len(m.cat.Categories))
		m.catApps = make([][]catalog.AppID, len(m.cat.Categories))
	}
	for c := range m.catCum {
		m.catCum[c] = m.catCum[c][:0]
		m.catApps[c] = m.catApps[c][:0]
	}
	// Per-developer paid portfolio sizes for shovelware damping: accounts
	// that mass-produce paid apps ship individually unpopular ones, which
	// keeps income uncorrelated with portfolio size (Figure 14).
	paidPortfolio := make(map[catalog.DevID]int)
	if m.cfg.ShovelwareDamping > 0 {
		for i := range m.cat.Apps {
			if m.cat.Apps[i].Pricing == catalog.Paid {
				paidPortfolio[m.cat.Apps[i].Dev]++
			}
		}
	}
	var freeSum float64
	paidSum := 0.0
	catSums := make([]float64, len(m.cat.Categories))
	for i := range m.cat.Apps {
		a := &m.cat.Apps[i]
		w := m.appeal[i]
		if a.Pricing == catalog.Paid {
			// Paying users are more selective (steeper concentration) and
			// price-sensitive.
			if m.cfg.PaidSelectivity > 0 && m.cfg.PaidSelectivity != 1 {
				w = math.Pow(w, m.cfg.PaidSelectivity)
			}
			w /= math.Pow(1+a.Price, m.cfg.PriceElasticity)
			if n := paidPortfolio[a.Dev]; n > 1 {
				w /= math.Pow(float64(n), m.cfg.ShovelwareDamping)
			}
			paidSum += w
			m.paidCum = append(m.paidCum, paidSum)
			m.paidApps = append(m.paidApps, a.ID)
			continue
		}
		freeSum += w
		m.freeCum = append(m.freeCum, freeSum)
		m.freeApps = append(m.freeApps, a.ID)
		c := int(a.Category)
		cw := w
		if m.catBias != 1 {
			cw = math.Pow(w, m.catBias)
		}
		catSums[c] += cw
		m.catCum[c] = append(m.catCum[c], catSums[c])
		m.catApps[c] = append(m.catApps[c], a.ID)
	}
}

// sampleCum draws an index from a cumulative weight table.
func sampleCum(r *rng.RNG, cum []float64) int {
	if len(cum) == 0 {
		return -1
	}
	u := r.Float64() * cum[len(cum)-1]
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] <= u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

const maxRetries = 48

// drawFree performs one clustering-model download for a free-stream user.
func (m *Market) drawFree(u *userState) (catalog.AppID, bool) {
	clustered := len(u.history) > 0 && m.r.Bool(m.cfg.Profile.ClusterP)
	if clustered {
		for try := 0; try < maxRetries; try++ {
			prev := u.history[m.r.Intn(len(u.history))]
			c := int(m.cat.CategoryOf(prev))
			idx := sampleCum(m.r, m.catCum[c])
			if idx < 0 {
				break
			}
			app := m.catApps[c][idx]
			if !u.has(app) {
				return app, true
			}
		}
		// Fall through to a global draw when the user's clusters are
		// saturated.
	}
	for try := 0; try < maxRetries; try++ {
		idx := sampleCum(m.r, m.freeCum)
		if idx < 0 {
			return 0, false
		}
		app := m.freeApps[idx]
		if !u.has(app) {
			return app, true
		}
	}
	return 0, false
}

// drawPaid performs one selective paid-stream download.
func (m *Market) drawPaid(u *userState) (catalog.AppID, bool) {
	for try := 0; try < maxRetries; try++ {
		idx := sampleCum(m.r, m.paidCum)
		if idx < 0 {
			return 0, false
		}
		app := m.paidApps[idx]
		if !u.has(app) {
			return app, true
		}
	}
	return 0, false
}

// simulateDownloads generates the day's download events by consuming the
// next slice of the shuffled per-user schedule.
func (m *Market) simulateDownloads() {
	// Days consumed so far (including this one) determine the cut point so
	// rounding never drops events: the final day drains the schedule.
	consumedDays := m.day + m.cfg.WarmupDays + 1
	hi := len(m.schedule) * consumedDays / m.totalPeriods
	if hi > len(m.schedule) {
		hi = len(m.schedule)
	}
	for ; m.nextEvent < hi; m.nextEvent++ {
		uid := m.schedule[m.nextEvent]
		u := m.usersFree[uid]
		if u == nil {
			u = &userState{}
			m.usersFree[uid] = u
		}
		if app, ok := m.drawFree(u); ok {
			u.record(app)
			m.downloads[int(app)]++
		}
	}
	if !m.paidVolume {
		return
	}
	// The first call covers all warmup days plus day 0; scale the paid
	// volume by the number of days this call spans.
	daysCovered := 1
	if m.day == 0 {
		daysCovered = m.cfg.WarmupDays + 1
	}
	nPaid := m.r.Poisson(m.dailyPaid * float64(daysCovered))
	for k := 0; k < nPaid; k++ {
		uid := int32(m.r.Intn(m.cfg.Profile.Users))
		u := m.usersPaid[uid]
		if u == nil {
			u = &userState{}
			m.usersPaid[uid] = u
		}
		if app, ok := m.drawPaid(u); ok {
			u.record(app)
			m.downloads[int(app)]++
		}
	}
}

// record appends today's snapshot to the series.
func (m *Market) record() {
	n := m.cat.NumApps()
	d := &snapshot.Day{
		Index:               m.day,
		CumulativeDownloads: append([]int64(nil), m.downloads[:n]...),
		Versions:            make([]int, n),
		Price:               make([]float64, n),
	}
	for i := 0; i < n; i++ {
		d.Versions[i] = m.cat.Apps[i].Versions
		d.Price[i] = m.cat.Apps[i].Price
	}
	// The series grows strictly by day; record is called exactly once per
	// day, so Append cannot fail by construction. Panic on violation.
	if err := m.series.Append(d); err != nil {
		panic(err)
	}
}
