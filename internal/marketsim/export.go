package marketsim

import (
	"sort"

	"planetapps/internal/catalog"
)

// Export chunk geometry. 64 apps per chunk keeps a chunk's catalog rows
// (64 x 64 B = one page) cheap to copy when dirty while making the clean
// majority shareable at fine grain.
const (
	chunkShift = 6
	// ExportChunk is the number of app rows per copy-on-write export chunk.
	ExportChunk = 1 << chunkShift
	chunkMask   = ExportChunk - 1

	// The catalog-row family uses finer chunks than the download/version
	// vectors: a row is 64 B, so at ExportChunk granularity one updated
	// app costs a 4 KB copy. Sixteen-row chunks cut the row-churn copy 4x
	// while the 8- and 4-byte-per-entry vectors stay at the coarser
	// grain, where their copy is already cheap and the per-chunk slice
	// headers are not.
	appChunkShift  = 4
	appExportChunk = 1 << appChunkShift
	appChunkMask   = appExportChunk - 1
)

// numChunks returns the chunk count covering n apps.
func numChunks(n int) int { return (n + ExportChunk - 1) >> chunkShift }

// numAppChunks returns the row-family chunk count covering n apps.
func numAppChunks(n int) int { return (n + appExportChunk - 1) >> appChunkShift }

// Export is an immutable view of the market state a serving layer needs:
// the day index, per-app catalog rows, per-app cumulative downloads,
// per-app row versions, and the category/developer name tables. Holders
// may read it indefinitely while the market steps.
//
// Internally the row, download, and version vectors are chunked: each
// chunk is either a fresh copy of the live state or — when nothing in it
// changed since the previous Export — the previous Export's chunk,
// shared. Chunks are write-once after construction, so sharing is
// invisible to readers; it is what makes a daily export O(changed)
// instead of O(catalog).
//
// Version semantics: RowVer(i) advances (at most once per simulated day)
// whenever app i's catalog row or download count changes, so two Exports
// of one market agree on RowVer(i) iff app i's servable content is
// identical in both. ChunkVer(c) is the chunk-granular analogue and is
// monotone non-decreasing day over day — equal sums of chunk versions
// over a range therefore imply equal versions chunk by chunk.
type Export struct {
	store string
	day   int
	n     int
	total int64

	catNames []string
	devNames []string

	apps     [][]catalog.App
	dls      [][]int64
	vers     [][]uint32
	chunkVer []uint64

	// ids, when non-nil, marks a sparse (partitioned) export: row i holds
	// the app whose global ID is ids[i], sorted ascending. A nil ids means
	// the export is dense — row i is app i — which is the invariant every
	// pre-fleet consumer was built on; sparse exports are produced only by
	// Partitioner.Partition. The slice is append-only across a
	// partitioner's successive exports, so row i's identity never changes.
	ids []int32
}

// Sparse reports whether the export is a partition (row index != app ID).
func (e *Export) Sparse() bool { return e.ids != nil }

// ID returns the global app ID of row i. Dense exports have ID(i) == i.
func (e *Export) ID(i int) int32 {
	if e.ids == nil {
		return int32(i)
	}
	return e.ids[i]
}

// IndexOf returns the row index holding global app ID id, or ok=false when
// the export does not contain it (out of range, or owned by another
// partition). Dense exports answer in O(1); sparse ones binary-search.
func (e *Export) IndexOf(id int32) (int, bool) {
	if id < 0 {
		return 0, false
	}
	if e.ids == nil {
		if int(id) >= e.n {
			return 0, false
		}
		return int(id), true
	}
	i := sort.Search(len(e.ids), func(j int) bool { return e.ids[j] >= id })
	if i < len(e.ids) && e.ids[i] == id {
		return i, true
	}
	return 0, false
}

// IndexAtOrAfter returns the smallest row index whose global app ID is
// >= id (n when every row precedes id). This is the cursor-anchor
// resolution: anchors are global IDs, so a cursor minted against one
// topology resumes at the same app in any other.
func (e *Export) IndexAtOrAfter(id int32) int {
	if id <= 0 {
		return 0
	}
	if e.ids == nil {
		if int(id) > e.n {
			return e.n
		}
		return int(id)
	}
	return sort.Search(len(e.ids), func(j int) bool { return e.ids[j] >= id })
}

// Store returns the store name.
func (e *Export) Store() string { return e.store }

// Day returns the simulated day this export captured.
func (e *Export) Day() int { return e.day }

// NumApps returns the number of apps in the export.
func (e *Export) NumApps() int { return e.n }

// TotalDownloads returns the store-wide cumulative download count.
func (e *Export) TotalDownloads() int64 { return e.total }

// CategoryNames returns the category name table (callers must not
// modify).
func (e *Export) CategoryNames() []string { return e.catNames }

// DeveloperNames returns the developer name table (callers must not
// modify).
func (e *Export) DeveloperNames() []string { return e.devNames }

// App returns app i's catalog row by value.
func (e *Export) App(i int) catalog.App { return e.apps[i>>appChunkShift][i&appChunkMask] }

// Downloads returns app i's cumulative download count.
func (e *Export) Downloads(i int) int64 { return e.dls[i>>chunkShift][i&chunkMask] }

// RowVer returns app i's content version (see type comment).
func (e *Export) RowVer(i int) uint32 { return e.vers[i>>chunkShift][i&chunkMask] }

// NumChunks returns the number of chunks covering the export.
func (e *Export) NumChunks() int { return len(e.chunkVer) }

// ChunkVer returns chunk c's content version.
func (e *Export) ChunkVer(c int) uint64 { return e.chunkVer[c] }

// ChunkUnchanged reports whether chunk c holds identical content (rows,
// downloads, versions, and length) in e and prev, where prev is an
// earlier Export of the same market. Chunk versions are monotone, so
// equality means nothing in the chunk moved.
func (e *Export) ChunkUnchanged(prev *Export, c int) bool {
	return prev != nil && c < len(prev.chunkVer) && c < len(e.chunkVer) &&
		prev.chunkVer[c] == e.chunkVer[c]
}

// UnchangedRows returns a bitmask over chunk c's rows: bit j is set iff
// row c*ExportChunk+j exists in both exports with equal row versions —
// i.e. its servable content is identical. Comparing whole version chunks
// here (one linear pass, or a pointer check when the chunk is shared)
// is what keeps a successor snapshot's per-row carry decision O(1) per
// row with no per-row indexing arithmetic.
func (e *Export) UnchangedRows(prev *Export, c int) uint64 {
	if prev == nil || c >= len(e.vers) || c >= len(prev.vers) {
		return 0
	}
	ev, pv := e.vers[c], prev.vers[c]
	k := len(ev)
	if len(pv) < k {
		k = len(pv)
	}
	if k == 0 {
		return 0
	}
	var mask uint64
	if &ev[0] == &pv[0] {
		// Shared chunk: every common row is trivially unchanged.
		mask = ^uint64(0)
	} else {
		for j := 0; j < k; j++ {
			if ev[j] == pv[j] {
				mask |= 1 << uint(j)
			}
		}
	}
	if k < 64 {
		mask &= 1<<uint(k) - 1
	}
	return mask
}

// VersionSum sums the chunk versions of the chunks spanning rows
// [lo, hi). Because chunk versions are monotone across exports of one
// market, equal sums over the same range imply chunk-by-chunk equality —
// a range-level content version suitable for ETags.
func (e *Export) VersionSum(lo, hi int) uint64 {
	if hi > e.n {
		hi = e.n
	}
	if lo < 0 {
		lo = 0
	}
	if lo >= hi {
		return 0
	}
	var s uint64
	for c := lo >> chunkShift; c <= (hi-1)>>chunkShift; c++ {
		s += e.chunkVer[c]
	}
	return s
}

// SpanUnchanged reports whether every chunk spanning rows [lo, hi) holds
// identical content in e and prev: a direct chunk-version comparison,
// cheaper than computing two VersionSums and immune even in principle to
// sum collisions. Callers deciding whether a derived document (a listing
// page, say) can be carried across a day-roll should prefer this; the
// sums remain for ETag rendering, where a single range-level value is
// what goes on the wire.
func (e *Export) SpanUnchanged(prev *Export, lo, hi int) bool {
	if prev == nil {
		return false
	}
	if hi > e.n {
		hi = e.n
	}
	if lo < 0 {
		lo = 0
	}
	if lo >= hi {
		return true
	}
	last := (hi - 1) >> chunkShift
	if last >= len(prev.chunkVer) || last >= len(e.chunkVer) {
		return false
	}
	for c := lo >> chunkShift; c <= last; c++ {
		if e.chunkVer[c] != prev.chunkVer[c] {
			return false
		}
	}
	return true
}

// chunkSpan returns the row range [lo, hi) of chunk c given n total rows.
func chunkSpan(c, n int) (lo, hi int) {
	lo = c << chunkShift
	hi = lo + ExportChunk
	if hi > n {
		hi = n
	}
	return lo, hi
}

// Export snapshots the serving-relevant state. Consecutive exports share
// chunks that did not change since the previous call (per the dirty
// stamps maintained by the simulation), so the copy cost is proportional
// to the day's churn, not the catalog; all fresh chunks of a family are
// carved from one backing allocation. With Config.FullExport set, every
// chunk is copied fresh. Export must not run concurrently with Step or
// with another Export; the returned value is then safe to share across
// goroutines.
func (m *Market) Export() *Export {
	n := m.cat.NumApps()
	nc := numChunks(n)
	nca := numAppChunks(n)
	e := &Export{
		store:    m.cat.Name,
		day:      m.day,
		n:        n,
		total:    m.total,
		catNames: m.catNames,
		devNames: m.syncDevNames(),
		apps:     make([][]catalog.App, nca),
		dls:      make([][]int64, nc),
		vers:     make([][]uint32, nc),
		chunkVer: append([]uint64(nil), m.chunkVer[:nc]...),
	}
	prev := m.lastExport
	if m.cfg.FullExport {
		prev = nil
	}
	led := int32(m.lastExportDay)
	// Pass 1: adopt clean chunks from the previous export and size the
	// fresh backing arrays. A chunk is shareable when its family saw no
	// writes since the previous export and its length is unchanged
	// (arrivals extend the tail chunk; they stamp rowChunkDay but extend
	// the download vector silently, hence the explicit length checks).
	var nApps, nDLs, nVers int
	for c := 0; c < nca; c++ {
		lo := c << appChunkShift
		hi := lo + appExportChunk
		if hi > n {
			hi = n
		}
		if prev != nil && c < len(prev.apps) &&
			m.rowChunkDay[c] <= led && len(prev.apps[c]) == hi-lo {
			e.apps[c] = prev.apps[c]
			continue
		}
		nApps += hi - lo
	}
	for c := 0; c < nc; c++ {
		lo, hi := chunkSpan(c, n)
		clen := hi - lo
		if prev != nil && c < len(prev.dls) {
			if m.dlChunkDay[c] <= led && len(prev.dls[c]) == clen {
				e.dls[c] = prev.dls[c]
			}
			if m.chunkVerDay[c] <= led && len(prev.vers[c]) == clen {
				e.vers[c] = prev.vers[c]
			}
		}
		if e.dls[c] == nil {
			nDLs += clen
		}
		if e.vers[c] == nil {
			nVers += clen
		}
	}
	// Pass 2: copy the dirty chunks out of the live state.
	freshApps := make([]catalog.App, 0, nApps)
	for c := 0; c < nca; c++ {
		if e.apps[c] != nil {
			continue
		}
		lo := c << appChunkShift
		hi := lo + appExportChunk
		if hi > n {
			hi = n
		}
		off := len(freshApps)
		freshApps = append(freshApps, m.cat.Apps[lo:hi]...)
		e.apps[c] = freshApps[off:len(freshApps):len(freshApps)]
	}
	freshDLs := make([]int64, 0, nDLs)
	freshVers := make([]uint32, 0, nVers)
	for c := 0; c < nc; c++ {
		lo, hi := chunkSpan(c, n)
		if e.dls[c] == nil {
			off := len(freshDLs)
			freshDLs = append(freshDLs, m.downloads[lo:hi]...)
			e.dls[c] = freshDLs[off:len(freshDLs):len(freshDLs)]
		}
		if e.vers[c] == nil {
			off := len(freshVers)
			freshVers = append(freshVers, m.rowVer[lo:hi]...)
			e.vers[c] = freshVers[off:len(freshVers):len(freshVers)]
		}
	}
	if !m.cfg.FullExport {
		m.lastExport = e
		m.lastExportDay = m.day
	}
	return e
}
