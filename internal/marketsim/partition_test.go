package marketsim

import (
	"testing"

	"planetapps/internal/catalog"
)

func testMarket(t *testing.T, scale float64, seed uint64) *Market {
	t.Helper()
	cfg := exportTestConfig(scale, 30)
	m, err := New(cfg, seed)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

// ownsMod returns a modulus ownership predicate: shard k of n.
func ownsMod(k, n int32) func(int32) bool {
	return func(id int32) bool { return id%n == k }
}

// TestPartitionUnionMatchesFull checks that N partitions of one export
// cover the catalog exactly once with identical per-app content, and that
// their totals sum to the dense total.
func TestPartitionUnionMatchesFull(t *testing.T) {
	m := testMarket(t, 0.02, 7)
	const shards = 3
	parts := make([]*Partitioner, shards)
	for k := range parts {
		parts[k] = NewPartitioner(ownsMod(int32(k), shards))
	}
	for day := 0; day < 4; day++ {
		if day > 0 {
			if err := m.Step(); err != nil {
				t.Fatalf("Step: %v", err)
			}
		}
		full := m.Export()
		seen := make([]bool, full.NumApps())
		var total int64
		for k, p := range parts {
			pe := p.Partition(full)
			if !pe.Sparse() {
				t.Fatalf("day %d shard %d: partition not sparse", day, k)
			}
			if pe.Day() != full.Day() {
				t.Fatalf("day %d shard %d: day %d", day, k, pe.Day())
			}
			total += pe.TotalDownloads()
			prevID := int32(-1)
			for i := 0; i < pe.NumApps(); i++ {
				id := pe.ID(i)
				if id <= prevID {
					t.Fatalf("shard %d: ids not ascending at row %d", k, i)
				}
				prevID = id
				if seen[id] {
					t.Fatalf("shard %d: app %d owned twice", k, id)
				}
				seen[id] = true
				g := int(id)
				if pe.App(i) != full.App(g) {
					t.Fatalf("shard %d app %d: row mismatch", k, id)
				}
				if pe.Downloads(i) != full.Downloads(g) {
					t.Fatalf("shard %d app %d: downloads %d != %d", k, id, pe.Downloads(i), full.Downloads(g))
				}
				if pe.RowVer(i) != full.RowVer(g) {
					t.Fatalf("shard %d app %d: rowver mismatch", k, id)
				}
				if j, ok := pe.IndexOf(id); !ok || j != i {
					t.Fatalf("shard %d: IndexOf(%d) = %d,%v want %d", k, id, j, ok, i)
				}
			}
		}
		for id, ok := range seen {
			if !ok {
				t.Fatalf("day %d: app %d owned by no shard", day, id)
			}
		}
		if total != full.TotalDownloads() {
			t.Fatalf("day %d: shard totals %d != full total %d", day, total, full.TotalDownloads())
		}
	}
}

// TestPartitionChunkSharing checks the copy-on-write contract: after a
// low-churn day, most partition chunks are pointer-shared with the
// previous partitioned export, and chunk versions are equal exactly when
// content is unchanged.
func TestPartitionChunkSharing(t *testing.T) {
	// Same low-churn regime as TestExportSharesChunksAcrossDays: daily
	// download volume a small fraction of the catalog, so most partition
	// chunks see no activity on any given day.
	cfg := DefaultConfig(catalog.Profile{
		Name: "lowchurn", Apps: 4000, Categories: 30, PaidFraction: 0.1,
		AdFraction: 0.67, NewAppsPerDay: 2,
		Users: 4000, DownloadsPerUser: 82,
		ZipfGlobal: 1.4, ZipfCluster: 1.4, ClusterP: 0.9, CategorySkew: 0.35,
		PriceLogMu: 1.0, PriceLogSigma: 0.8, MeanUpdateRate: 0.003,
	})
	cfg.Days = 4096
	cfg.WarmupDays = 0
	m, err := New(cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPartitioner(ownsMod(0, 2))
	e0 := p.Partition(m.Export())
	if err := m.Step(); err != nil {
		t.Fatalf("Step: %v", err)
	}
	e1 := p.Partition(m.Export())

	shared, fresh := 0, 0
	for c := 0; c < e1.NumChunks() && c < e0.NumChunks(); c++ {
		lo, hi := chunkSpan(c, e1.NumApps())
		if len(e0.vers[c]) != hi-lo {
			continue
		}
		if &e1.vers[c][0] == &e0.vers[c][0] {
			shared++
			if e1.ChunkVer(c) != e0.ChunkVer(c) {
				t.Fatalf("chunk %d shared but versions differ", c)
			}
		} else {
			fresh++
			changed := false
			for j := lo; j < hi; j++ {
				if e1.RowVer(j) != e0.RowVer(j) {
					changed = true
					break
				}
			}
			if !changed {
				t.Errorf("chunk %d copied fresh with no row change", c)
			}
			if e1.ChunkVer(c) <= e0.ChunkVer(c) {
				t.Fatalf("chunk %d changed but version not monotone: %d <= %d",
					c, e1.ChunkVer(c), e0.ChunkVer(c))
			}
		}
	}
	if shared == 0 {
		t.Fatalf("no chunks shared across a one-day roll (fresh=%d)", fresh)
	}
	// ChunkUnchanged / UnchangedRows must agree with the sharing outcome.
	for c := 0; c < e1.NumChunks() && c < e0.NumChunks(); c++ {
		lo, hi := chunkSpan(c, e1.NumApps())
		if len(e0.vers[c]) != hi-lo {
			continue
		}
		if e1.ChunkUnchanged(e0, c) != (e1.ChunkVer(c) == e0.ChunkVer(c)) {
			t.Fatalf("chunk %d: ChunkUnchanged disagrees with versions", c)
		}
		mask := e1.UnchangedRows(e0, c)
		for j := lo; j < hi; j++ {
			want := e1.RowVer(j) == e0.RowVer(j)
			if got := mask&(1<<uint(j-lo)) != 0; got != want {
				t.Fatalf("chunk %d row %d: UnchangedRows bit %v want %v", c, j, got, want)
			}
		}
	}
}

// TestSparseIndexing pins the sparse/dense accessor contract used by the
// serving layer's ID resolution and cursor anchoring.
func TestSparseIndexing(t *testing.T) {
	dense := &Export{n: 10}
	if dense.Sparse() {
		t.Fatal("dense export reports sparse")
	}
	if got := dense.IndexAtOrAfter(7); got != 7 {
		t.Fatalf("dense IndexAtOrAfter(7) = %d", got)
	}
	if got := dense.IndexAtOrAfter(99); got != 10 {
		t.Fatalf("dense IndexAtOrAfter(99) = %d", got)
	}
	if _, ok := dense.IndexOf(10); ok {
		t.Fatal("dense IndexOf(10) in a 10-app export")
	}

	sp := &Export{n: 4, ids: []int32{1, 5, 6, 9}}
	if got := sp.ID(2); got != 6 {
		t.Fatalf("ID(2) = %d", got)
	}
	cases := []struct{ id, want int }{{0, 0}, {1, 0}, {2, 1}, {5, 1}, {6, 2}, {7, 3}, {9, 3}, {10, 4}}
	for _, c := range cases {
		if got := sp.IndexAtOrAfter(int32(c.id)); got != c.want {
			t.Fatalf("IndexAtOrAfter(%d) = %d want %d", c.id, got, c.want)
		}
	}
	if i, ok := sp.IndexOf(5); !ok || i != 1 {
		t.Fatalf("IndexOf(5) = %d,%v", i, ok)
	}
	if _, ok := sp.IndexOf(4); ok {
		t.Fatal("IndexOf(4) found in {1,5,6,9}")
	}
	if _, ok := sp.IndexOf(-1); ok {
		t.Fatal("IndexOf(-1) found")
	}
}
