package marketsim

import (
	"math"
	"testing"

	"planetapps/internal/catalog"
	"planetapps/internal/stats"
)

func smallConfig() Config {
	cfg := DefaultConfig(catalog.Profiles["anzhi"].Scale(0.1))
	cfg.Days = 20
	return cfg
}

func TestRunProducesSeries(t *testing.T) {
	m, err := New(smallConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Days) != 20 {
		t.Fatalf("series has %d days, want 20", len(s.Days))
	}
	sum, err := s.Summarize()
	if err != nil {
		t.Fatal(err)
	}
	if sum.DownloadsLast <= sum.DownloadsFirst {
		t.Fatalf("downloads did not grow: %d -> %d", sum.DownloadsFirst, sum.DownloadsLast)
	}
	if sum.AppsLast < sum.AppsFirst {
		t.Fatalf("apps shrank: %d -> %d", sum.AppsFirst, sum.AppsLast)
	}
}

func TestDeterministic(t *testing.T) {
	run := func() []int64 {
		m, err := New(smallConfig(), 42)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return m.Downloads()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("app counts differ across same-seed runs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("downloads differ at app %d", i)
		}
	}
}

func TestDailyVolumeMatchesProfile(t *testing.T) {
	cfg := smallConfig()
	m, err := New(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	sum, _ := s.Summarize()
	want := float64(cfg.Profile.Users) * cfg.Profile.DownloadsPerUser / float64(cfg.Days+cfg.WarmupDays)
	if math.Abs(sum.DailyDownloads-want) > want*0.15 {
		t.Fatalf("daily downloads %v, want ~%v", sum.DailyDownloads, want)
	}
}

func TestParetoEffectEmerges(t *testing.T) {
	// Figure 2's headline: top 10% of apps account for most downloads.
	m, err := New(smallConfig(), 5)
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	curve := s.Last().Curve()
	share := stats.TopShare(curve.Downloads, 0.10)
	if share < 0.55 {
		t.Fatalf("top-10%% share = %v, want a strong Pareto effect", share)
	}
}

func TestTrunkSlopeNearProfile(t *testing.T) {
	cfg := DefaultConfig(catalog.Profiles["anzhi"].Scale(0.25))
	cfg.Days = 30
	m, err := New(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	curve := s.Last().Curve()
	slope := curve.TrunkExponent(0.01, 0.3)
	if slope < 0.6*cfg.Profile.ZipfGlobal || slope > 1.6*cfg.Profile.ZipfGlobal {
		t.Fatalf("trunk slope %v far from profile zr %v", slope, cfg.Profile.ZipfGlobal)
	}
}

func TestMostAppsNeverUpdated(t *testing.T) {
	// Figure 4: >80% of apps see no update within the period.
	cfg := smallConfig()
	cfg.Days = 60
	m, err := New(cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	counts := s.UpdateCounts()
	zero := 0
	for _, c := range counts {
		if c == 0 {
			zero++
		}
	}
	if frac := float64(zero) / float64(len(counts)); frac < 0.7 {
		t.Fatalf("only %.0f%% of apps un-updated; want most", frac*100)
	}
}

func TestPaidStream(t *testing.T) {
	cfg := DefaultConfig(catalog.Profiles["slideme"])
	cfg.Days = 30
	m, err := New(cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	cat := m.Catalog()
	dl := m.Downloads()
	var freeTotal, paidTotal int64
	var prices, paidDl []float64
	for i := range cat.Apps {
		if cat.Apps[i].Pricing == catalog.Paid {
			paidTotal += dl[i]
			prices = append(prices, cat.Apps[i].Price)
			paidDl = append(paidDl, float64(dl[i]))
		} else {
			freeTotal += dl[i]
		}
	}
	if paidTotal == 0 {
		t.Fatal("paid apps received no downloads")
	}
	if paidTotal >= freeTotal/5 {
		t.Fatalf("paid volume %d not far below free volume %d", paidTotal, freeTotal)
	}
	// Figure 12: negative correlation between price and downloads.
	if r := stats.Pearson(prices, paidDl); r >= 0 {
		t.Fatalf("price-download correlation %v, want negative", r)
	}
}

func TestStepBeyondPeriodFails(t *testing.T) {
	m, err := New(smallConfig(), 13)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if err := m.Step(); err == nil {
		t.Fatal("Step past the configured period succeeded")
	}
}

func TestNewValidation(t *testing.T) {
	cfg := smallConfig()
	cfg.Days = 1
	if _, err := New(cfg, 1); err == nil {
		t.Fatal("1-day period accepted")
	}
	cfg = smallConfig()
	cfg.PaidDownloadShare = -1
	if _, err := New(cfg, 1); err == nil {
		t.Fatal("negative paid share accepted")
	}
}

func TestFetchAtMostOncePerUserStream(t *testing.T) {
	// The same free-stream user never downloads the same app twice; since
	// user state is internal, check the aggregate invariant instead: no
	// app collects more downloads than the user population.
	cfg := smallConfig()
	m, err := New(cfg, 17)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for i, d := range m.Downloads() {
		if d > int64(cfg.Profile.Users) {
			t.Fatalf("app %d has %d downloads from %d users", i, d, cfg.Profile.Users)
		}
	}
}

func TestCatalogStaysValid(t *testing.T) {
	m, err := New(smallConfig(), 19)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if err := m.Catalog().Validate(); err != nil {
		t.Fatalf("catalog invalid after run: %v", err)
	}
}

func TestScheduleDrainsExactly(t *testing.T) {
	// Every scheduled free-stream event is consumed by the end of the
	// period: the sum of per-app downloads equals the per-user budgets
	// (minus the rare draws that failed after retry exhaustion) and never
	// exceeds them.
	cfg := smallConfig()
	m, err := New(cfg, 23)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, d := range m.Downloads() {
		total += d
	}
	budget := float64(cfg.Profile.Users) * cfg.Profile.DownloadsPerUser
	if float64(total) > budget*1.05 {
		t.Fatalf("downloads %d exceed the scheduled budget %v", total, budget)
	}
	if float64(total) < budget*0.9 {
		t.Fatalf("downloads %d fall far below the scheduled budget %v", total, budget)
	}
}

func TestWarmupMaturesDayZero(t *testing.T) {
	// With warmup, the day-0 snapshot must already hold a large share of
	// the final volume (the paper's stores carried years of history).
	cfg := smallConfig() // WarmupDays 60, Days 20
	m, err := New(cfg, 29)
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	first := s.First().TotalDownloads()
	last := s.Last().TotalDownloads()
	frac := float64(first) / float64(last)
	want := float64(cfg.WarmupDays+1) / float64(cfg.WarmupDays+cfg.Days)
	if frac < want-0.1 || frac > want+0.1 {
		t.Fatalf("day-0 holds %.2f of final volume, want ~%.2f", frac, want)
	}
}

func TestCategoryBiasReshapesWithinCategory(t *testing.T) {
	// With ZipfCluster far below ZipfGlobal, within-category download
	// shares must be flatter than the raw appeal ordering implies: the
	// category head's share of its category shrinks.
	headShare := func(zc float64) float64 {
		prof := catalog.Profiles["anzhi"].Scale(0.1)
		prof.ZipfCluster = zc
		cfg := DefaultConfig(prof)
		cfg.Days = 15
		m, err := New(cfg, 31)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		cat := m.Catalog()
		dl := m.Downloads()
		// Average, over categories with enough members, of the top app's
		// share of its category's downloads.
		var sum float64
		var n int
		for ci := range cat.Categories {
			var catTotal, best int64
			for _, id := range cat.Categories[ci].Apps {
				d := dl[int(id)]
				catTotal += d
				if d > best {
					best = d
				}
			}
			if catTotal > 100 {
				sum += float64(best) / float64(catTotal)
				n++
			}
		}
		if n == 0 {
			t.Fatal("no populated categories")
		}
		return sum / float64(n)
	}
	flat := headShare(0.5)  // catBias ~0.36: flat within-category draws
	steep := headShare(2.1) // catBias 1.5: concentrated draws
	if flat >= steep {
		t.Fatalf("head share flat=%v not below steep=%v", flat, steep)
	}
}
