package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tbl := NewTable("Demo", "name", "value")
	tbl.AddRow("alpha", 1.5)
	tbl.AddRow("bee", 42)
	s := tbl.String()
	if !strings.Contains(s, "Demo") {
		t.Fatal("title missing")
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	// title + header + separator + 2 rows.
	if len(lines) != 5 {
		t.Fatalf("got %d lines:\n%s", len(lines), s)
	}
	if !strings.HasPrefix(lines[1], "name") {
		t.Fatalf("header line = %q", lines[1])
	}
	if !strings.Contains(lines[3], "alpha") || !strings.Contains(lines[3], "1.500") {
		t.Fatalf("row = %q", lines[3])
	}
	if !strings.Contains(lines[4], "42") {
		t.Fatalf("row = %q", lines[4])
	}
}

func TestTableAlignment(t *testing.T) {
	tbl := NewTable("", "a", "b")
	tbl.AddRow("longvaluehere", "x")
	tbl.AddRow("s", "y")
	lines := strings.Split(strings.TrimSpace(tbl.String()), "\n")
	// Column b should start at the same offset in both data rows.
	i1 := strings.Index(lines[2], "x")
	i2 := strings.Index(lines[3], "y")
	if i1 != i2 {
		t.Fatalf("misaligned columns:\n%s", tbl.String())
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{5, "5"},
		{5.25, "5.250"},
		{0.002, "0.002"},
		{0.000321, "0.000321"},
	}
	for _, c := range cases {
		if got := FormatFloat(c.in); got != c.want {
			t.Fatalf("FormatFloat(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSeriesDecimation(t *testing.T) {
	xs := make([]float64, 100)
	ys := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = float64(i * i)
	}
	tbl := Series("S", "x", xs, 10, map[string][]float64{"y": ys}, []string{"y"})
	if len(tbl.Rows) > 12 {
		t.Fatalf("series not decimated: %d rows", len(tbl.Rows))
	}
	last := tbl.Rows[len(tbl.Rows)-1]
	if last[0] != "99" {
		t.Fatalf("final point missing: %v", last)
	}
}

func TestSeriesEmpty(t *testing.T) {
	tbl := Series("S", "x", nil, 10, nil, nil)
	if len(tbl.Rows) != 0 {
		t.Fatal("empty series produced rows")
	}
}

func TestLogSpacedIndexes(t *testing.T) {
	idx := LogSpacedIndexes(1000, 10)
	if idx[0] != 0 {
		t.Fatalf("first index = %d", idx[0])
	}
	if idx[len(idx)-1] != 999 {
		t.Fatalf("last index = %d", idx[len(idx)-1])
	}
	for i := 1; i < len(idx); i++ {
		if idx[i] <= idx[i-1] {
			t.Fatalf("indexes not strictly increasing: %v", idx)
		}
	}
	if got := LogSpacedIndexes(0, 5); got != nil {
		t.Fatalf("n=0 returned %v", got)
	}
	one := LogSpacedIndexes(1, 5)
	if len(one) != 1 || one[0] != 0 {
		t.Fatalf("n=1 returned %v", one)
	}
}
