// Package report renders experiment results as fixed-width text tables and
// simple series dumps — the textual equivalent of the paper's tables and
// figure data, consumed by cmd/experiments and EXPERIMENTS.md.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// FormatFloat renders floats compactly: integers without decimals, small
// magnitudes with enough precision to stay informative.
func FormatFloat(v float64) string {
	switch {
	case v == float64(int64(v)) && v < 1e15 && v > -1e15:
		return fmt.Sprintf("%d", int64(v))
	case v != 0 && (v < 0.01 && v > -0.01):
		return fmt.Sprintf("%.4g", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// WriteTo renders the table.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	cols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(cells []string) {
		for i, c := range cells {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Headers)
	sep := make([]string, cols)
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.WriteTo(&b) //nolint:errcheck // strings.Builder cannot fail
	return b.String()
}

// Series renders an (x, y...) numeric series as a table, decimating long
// series to at most maxRows rows spread across the range (log-log figures
// only need the shape, not every point).
func Series(title string, xName string, xs []float64, maxRows int, cols map[string][]float64, colOrder []string) *Table {
	headers := append([]string{xName}, colOrder...)
	t := NewTable(title, headers...)
	n := len(xs)
	if n == 0 {
		return t
	}
	step := 1
	if maxRows > 0 && n > maxRows {
		step = n / maxRows
	}
	for i := 0; i < n; i += step {
		row := make([]any, 0, len(headers))
		row = append(row, xs[i])
		for _, c := range colOrder {
			ys := cols[c]
			if i < len(ys) {
				row = append(row, ys[i])
			} else {
				row = append(row, "")
			}
		}
		t.AddRow(row...)
	}
	// Always include the final point.
	if (n-1)%step != 0 {
		row := make([]any, 0, len(headers))
		row = append(row, xs[n-1])
		for _, c := range colOrder {
			ys := cols[c]
			if n-1 < len(ys) {
				row = append(row, ys[n-1])
			} else {
				row = append(row, "")
			}
		}
		t.AddRow(row...)
	}
	return t
}

// LogSpacedIndexes returns up to k indexes into [0, n) spaced roughly
// geometrically, always including 0 and n-1. Useful for sampling rank
// curves plotted on log axes.
func LogSpacedIndexes(n, k int) []int {
	if n <= 0 {
		return nil
	}
	if k < 2 {
		k = 2
	}
	seen := map[int]bool{}
	var out []int
	ratio := math.Pow(float64(n), 1/float64(k-1))
	x := 1.0
	for i := 0; i < k; i++ {
		idx := int(x) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= n {
			idx = n - 1
		}
		if !seen[idx] {
			seen[idx] = true
			out = append(out, idx)
		}
		x *= ratio
	}
	if !seen[n-1] {
		out = append(out, n-1)
	}
	return out
}
