package edgecache

import (
	"context"
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"planetapps/internal/model"
	"planetapps/internal/prefetch"
)

// docInfo is what classify extracts from one cached document: the catalog
// app id for detail pages (-1 otherwise), the category the policy
// partitions on, and the popularity signal the warmer ranks by.
type docInfo struct {
	appID     int32
	cat       string
	downloads int64
}

// Synthetic categories for non-detail documents: the category-aware
// policy needs every cached key in some partition, and route kind is the
// natural one for documents without an app category. The NUL prefix keeps
// them disjoint from real category names.
const (
	catList     = "\x00list"
	catStats    = "\x00stats"
	catComments = "\x00comments"
	catOther    = "\x00other"
	catDetail   = "\x00detail" // detail page whose body did not parse
)

// classify derives docInfo from a request key and the origin body. Detail
// pages ("<prefix>/apps/<id>") contribute their real category and
// download count — the signals the prefetch warmer learns from.
func classify(key string, body []byte) docInfo {
	path := key
	if i := strings.IndexByte(path, '?'); i >= 0 {
		path = path[:i]
	}
	if i := strings.Index(path, "/apps/"); i >= 0 {
		rest := path[i+len("/apps/"):]
		if j := strings.IndexByte(rest, '/'); j >= 0 {
			if rest[j:] == "/comments" {
				return docInfo{appID: -1, cat: catComments}
			}
			return docInfo{appID: -1, cat: catOther}
		}
		v, err := strconv.ParseInt(rest, 10, 32)
		if err != nil {
			return docInfo{appID: -1, cat: catOther}
		}
		var doc struct {
			ID        int32  `json:"id"`
			Category  string `json:"category"`
			Downloads int64  `json:"downloads"`
		}
		if json.Unmarshal(body, &doc) == nil && doc.Category != "" {
			return docInfo{appID: int32(v), cat: doc.Category, downloads: doc.Downloads}
		}
		return docInfo{appID: int32(v), cat: catDetail}
	}
	if strings.HasSuffix(path, "/apps") {
		return docInfo{appID: -1, cat: catList}
	}
	if strings.HasSuffix(path, "/stats") {
		return docInfo{appID: -1, cat: catStats}
	}
	return docInfo{appID: -1, cat: catOther}
}

// internCat returns the dense id for a category name. Caller holds s.mu.
func (s *Server) internCat(name string) int32 {
	if id, ok := s.cats[name]; ok {
		return id
	}
	id := int32(len(s.cats))
	s.cats[name] = id
	return id
}

// warmer implements prefetch-driven warming: it learns each app's
// category and popularity from the detail pages flowing through the
// cache, tracks a short per-client request history, and after every
// detail-page serve asks prefetch.CategoryTop which detail pages that
// client is likely to want next — then fetches the missing ones into the
// cache in the background, through the same single-flight path client
// misses use.
type warmer struct {
	s      *Server
	budget int

	mu        sync.Mutex
	catID     map[string]int32 // category name -> dense cluster index
	catOfApp  map[int32]int32  // appID -> cluster index
	downloads map[int32]int64  // appID -> popularity signal
	maxApp    int32
	learns    int // learn events since start
	built     int // learns at last ClusterMap rebuild
	cm        *model.ClusterMap
	hist      map[string][]int32 // client -> recent detail appIDs
	inflight  map[string]bool    // warm keys queued or fetching

	ch   chan string
	quit chan struct{}
	wg   sync.WaitGroup
}

const (
	historyDepth = 8    // recent detail pages remembered per client
	maxClients   = 4096 // history table bound; reset wholesale beyond
	rebuildEvery = 64   // learn events between ClusterMap rebuilds
	warmQueue    = 256  // pending warm fetches; overflow is dropped
)

func newWarmer(s *Server) *warmer {
	w := &warmer{
		s:         s,
		budget:    s.cfg.PrefetchBudget,
		catID:     map[string]int32{},
		catOfApp:  map[int32]int32{},
		downloads: map[int32]int64{},
		hist:      map[string][]int32{},
		inflight:  map[string]bool{},
		ch:        make(chan string, warmQueue),
		quit:      make(chan struct{}),
	}
	for i := 0; i < s.cfg.PrefetchWorkers; i++ {
		w.wg.Add(1)
		go w.worker()
	}
	return w
}

func (w *warmer) stop() {
	close(w.quit)
	w.wg.Wait()
}

// learn records one detail page's category and popularity.
func (w *warmer) learn(appID int32, cat string, downloads int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	id, ok := w.catID[cat]
	if !ok {
		id = int32(len(w.catID))
		w.catID[cat] = id
	}
	if appID > w.maxApp {
		w.maxApp = appID
	}
	if prev, seen := w.catOfApp[appID]; !seen || prev != id || w.downloads[appID] != downloads {
		w.learns++
	}
	w.catOfApp[appID] = id
	w.downloads[appID] = downloads
}

// rebuild regenerates the ClusterMap from the learned tables: one cluster
// per category, members in descending download order (ties by app id) —
// the within-cluster popularity order CategoryTop expects. Apps the edge
// has not learned yet land in a memberless "unknown" cluster. Caller
// holds w.mu.
func (w *warmer) rebuild() {
	unknown := int32(len(w.catID))
	cm := &model.ClusterMap{
		OfApp:   make([]int32, w.maxApp+1),
		Members: make([][]int32, unknown+1),
	}
	for i := range cm.OfApp {
		cm.OfApp[i] = unknown
	}
	for app, cat := range w.catOfApp {
		cm.OfApp[app] = cat
		cm.Members[cat] = append(cm.Members[cat], app)
	}
	for _, members := range cm.Members {
		sort.Slice(members, func(i, j int) bool {
			di, dj := w.downloads[members[i]], w.downloads[members[j]]
			if di != dj {
				return di > dj
			}
			return members[i] < members[j]
		})
	}
	w.cm = cm
	w.built = w.learns
}

// noteClient feeds the warmer after a detail page was served to a client.
func (s *Server) noteClient(r *http.Request, key string, appID int32) {
	if s.warm == nil || appID < 0 {
		return
	}
	i := strings.Index(key, "/apps/")
	if i < 0 {
		return
	}
	prefix := key[:i+len("/apps/")]
	client := clientXFF(r)
	if j := strings.IndexByte(client, ','); j >= 0 {
		client = client[:j]
	}
	s.warm.note(client, appID, prefix)
}

// note appends to the client's history, selects the likely-next detail
// pages, and enqueues the ones the cache lacks.
func (w *warmer) note(client string, appID int32, prefix string) {
	w.mu.Lock()
	if len(w.hist) >= maxClients {
		w.hist = map[string][]int32{} // crude but bounded
	}
	h := append(w.hist[client], appID)
	if len(h) > historyDepth {
		h = h[len(h)-historyDepth:]
	}
	w.hist[client] = h
	if w.cm == nil || w.learns-w.built >= rebuildEvery {
		if w.learns == 0 {
			w.mu.Unlock()
			return
		}
		w.rebuild()
	}
	cm := w.cm
	// CategoryTop indexes cm.OfApp by history entries; drop apps beyond
	// the map's coverage (learned tables can lag the serving state).
	known := make([]int32, 0, len(h))
	for _, a := range h {
		if int(a) < len(cm.OfApp) {
			known = append(known, a)
		}
	}
	targets := prefetch.NewCategoryTop(cm).Select(known, w.budget)
	keys := make([]string, 0, len(targets))
	for _, app := range targets {
		k := prefix + strconv.Itoa(int(app))
		if w.inflight[k] {
			continue
		}
		w.inflight[k] = true
		keys = append(keys, k)
	}
	w.mu.Unlock()

	for _, k := range keys {
		if w.s.hasFresh(k, "gzip") {
			w.release(k)
			continue
		}
		select {
		case w.ch <- k:
		default:
			w.release(k) // queue full: warming is best-effort
		}
	}
}

func (w *warmer) release(key string) {
	w.mu.Lock()
	delete(w.inflight, key)
	w.mu.Unlock()
}

// worker drains the warm queue through the regular single-flight fetch
// path, marking fills so usefulness is measurable. Warm fetches ask for
// the gzip variant: nearly every real client (crawlers, browsers, the
// load generator's default) negotiates gzip, so that is the variant worth
// having resident — and on a non-varying origin it degrades to the shared
// identity entry anyway.
func (w *warmer) worker() {
	defer w.wg.Done()
	for {
		select {
		case <-w.quit:
			return
		case key := <-w.ch:
			if !w.s.hasFresh(key, "gzip") {
				out := w.s.getOrFetch(context.Background(), key, "gzip", "")
				if out.kind == kindMiss {
					w.s.st.prefetchFills.Inc()
					w.s.markPrefetched(out.entry.key, out.entry.etag)
				}
			}
			w.release(key)
		}
	}
}

// hasFresh reports whether the (URI, variant) pair resolves to a resident
// fresh entry.
func (s *Server) hasFresh(base, variant string) bool {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if id, ok := s.ids[s.cacheKeyLocked(base, variant)]; ok {
		if e := s.entries[id]; e != nil && now.Before(e.expires) {
			return true
		}
	}
	return false
}

// markPrefetched flags a warm-filled entry (still holding the same
// content) so the first real client hit can be counted as prefetch-useful.
func (s *Server) markPrefetched(key, etag string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id, ok := s.ids[key]; ok {
		if e := s.entries[id]; e != nil && e.etag == etag {
			e.prefetched = true
		}
	}
}
