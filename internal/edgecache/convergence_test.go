package edgecache

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"

	"planetapps/internal/catalog"
	"planetapps/internal/comments"
	"planetapps/internal/crawler"
	"planetapps/internal/db"
	"planetapps/internal/faultinject"
	"planetapps/internal/marketsim"
	"planetapps/internal/storeserver"
)

// originStore builds a deterministic small store. Every call with the same
// seed produces a byte-identical catalog, so a direct crawl of one
// instance is the ground truth for an edge-fronted crawl of another.
func originStore(t *testing.T) (*storeserver.Server, *httptest.Server) {
	t.Helper()
	mcfg := marketsim.DefaultConfig(catalog.Profiles["slideme"].Scale(0.05))
	mcfg.Days = 10
	m, err := marketsim.New(mcfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	srv := storeserver.New(m, storeserver.Config{PageSize: 40})
	cs, err := comments.Generate(m.Catalog(), comments.DefaultGenConfig(60), 2)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetComments(cs)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// edgeFor fronts an origin URL with an edge server and returns the edge's
// client-facing base URL.
func edgeFor(t *testing.T, originURL string, cfg Config) (*Server, string) {
	t.Helper()
	cfg.Origin = originURL
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts.URL
}

// canonicalDB renders a crawl database deterministically: apps in ID order
// and comments sorted, so worker interleaving cannot leak into the
// byte-identity check.
func canonicalDB(t *testing.T, d *db.DB) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, a := range d.Apps() {
		if err := enc.Encode(a); err != nil {
			t.Fatal(err)
		}
	}
	cs := d.Comments()
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].App != cs[j].App {
			return cs[i].App < cs[j].App
		}
		if cs[i].User != cs[j].User {
			return cs[i].User < cs[j].User
		}
		return cs[i].UnixTime < cs[j].UnixTime
	})
	for _, c := range cs {
		if err := enc.Encode(c); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// crawlTo runs one crawl session against baseURL into a fresh database.
func crawlTo(t *testing.T, baseURL string) []byte {
	t.Helper()
	cfg := crawler.DefaultConfig(baseURL)
	cfg.RatePerSec = 0
	cfg.FetchComments = true
	d := db.New()
	c, err := crawler.New(cfg, d)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if _, err := c.CrawlDay(ctx); err != nil {
		t.Fatalf("crawl failed: %v", err)
	}
	return canonicalDB(t, d)
}

// TestEdgeCrawlByteIdentical is the tier's acceptance test: a crawl routed
// through the edge is byte-identical to a direct crawl, before and after a
// day-roll, and a repeat same-day crawl is served largely from the edge's
// store without losing identity. The origin runs its conservative
// max-age=0 default, so every edge serve is either a fresh fill or an
// ETag-revalidated copy — never silently outdated data.
func TestEdgeCrawlByteIdentical(t *testing.T) {
	direct, directTS := originStore(t)
	origin, originTS := originStore(t)
	edge, edgeURL := edgeFor(t, originTS.URL, Config{})

	want := crawlTo(t, directTS.URL)
	got := crawlTo(t, edgeURL)
	if !bytes.Equal(got, want) {
		t.Fatalf("edge crawl diverged from direct crawl (%d vs %d canonical bytes)", len(got), len(want))
	}

	// Second pass, same day: identical again, and mostly answered by the
	// edge's own store (revalidations and fresh hits, not full misses).
	before := edge.Stats()
	got2 := crawlTo(t, edgeURL)
	if !bytes.Equal(got2, want) {
		t.Fatal("second-pass edge crawl diverged")
	}
	after := edge.Stats()
	reqs := after.Requests - before.Requests
	served := (after.Hits + after.Revalidated + after.StaleServed) -
		(before.Hits + before.Revalidated + before.StaleServed)
	if reqs == 0 || 100*served/reqs < 60 {
		t.Fatalf("second pass served only %d of %d requests from the edge store", served, reqs)
	}
	if fetched, srv := after.OriginBytes-before.OriginBytes, after.ServedBytes-before.ServedBytes; fetched >= srv {
		t.Fatalf("second pass saved no origin bytes (%d fetched vs %d served)", fetched, srv)
	}

	// Day-roll: both stores advance, the edge revalidates its way to the
	// new snapshot, and identity must hold again.
	if err := direct.AdvanceDay(); err != nil {
		t.Fatal(err)
	}
	if err := origin.AdvanceDay(); err != nil {
		t.Fatal(err)
	}
	want = crawlTo(t, directTS.URL)
	got = crawlTo(t, edgeURL)
	if !bytes.Equal(got, want) {
		t.Fatalf("post-roll edge crawl diverged from direct crawl (%d vs %d canonical bytes)", len(got), len(want))
	}
}

// TestEdgeCrawlConvergesUnderChaos points a faultinject scenario at the
// edge->origin leg: the edge's resilient client (plus stale serving, which
// within one snapshot is still byte-correct — same ETag, same body) must
// absorb the faults and keep the crawl byte-identical to a fault-free
// direct crawl.
func TestEdgeCrawlConvergesUnderChaos(t *testing.T) {
	for _, name := range []string{"error-burst", "corruption"} {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			_, directTS := originStore(t)
			want := crawlTo(t, directTS.URL)

			sc, err := faultinject.Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			inj := faultinject.New(sc.Scale(0.2), 0xEDCE, nil)
			_, originTS := originStore(t)
			edge, edgeURL := edgeFor(t, originTS.URL, Config{
				OriginTransport: inj.RoundTripper(http.DefaultTransport),
				OriginRetries:   8,
				HedgeAfter:      60 * time.Millisecond,
			})

			got := crawlTo(t, edgeURL)
			if !bytes.Equal(got, want) {
				t.Fatalf("edge crawl under %q diverged from fault-free direct crawl (%d vs %d canonical bytes)",
					name, len(got), len(want))
			}
			if inj.InjectedTotal() == 0 {
				t.Fatalf("scenario %q injected nothing; the edge->origin leg was never exercised", name)
			}
			st := edge.Stats()
			t.Logf("%s: %d faults injected; edge stats: %d reqs, %d misses, %d revalidated, %d stale, %d errors",
				name, inj.InjectedTotal(), st.Requests, st.Misses, st.Revalidated, st.StaleServed, st.Errors)
		})
	}
}

// TestEdgeConcurrentReadersAcrossDayRolls hammers the edge from many
// goroutines while the origin rolls through every remaining day. Run under
// -race this checks the locking discipline; the assertion checks snapshot
// coherence — the X-Store-Day header and the day embedded in the stats
// body must come from the same snapshot, no matter how requests interleave
// with rolls and revalidations.
func TestEdgeConcurrentReadersAcrossDayRolls(t *testing.T) {
	origin, originTS := originStore(t)
	_, edgeURL := edgeFor(t, originTS.URL, Config{PrefetchBudget: 4})

	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			client := &http.Client{}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				var url string
				switch i % 3 {
				case 0:
					url = edgeURL + "/api/v1/stats"
				case 1:
					url = edgeURL + "/api/v1/apps/" + strconv.Itoa((g*31+i)%40)
				default:
					url = edgeURL + "/api/v1/apps?cursor="
				}
				res, err := client.Get(url)
				if err != nil {
					errCh <- err
					return
				}
				body, err := io.ReadAll(res.Body)
				res.Body.Close()
				if err != nil {
					errCh <- err
					return
				}
				if res.StatusCode != http.StatusOK {
					continue // 404 past catalog end is fine; 5xx would fail below
				}
				if i%3 == 0 {
					var doc struct {
						Day int `json:"day"`
					}
					if err := json.Unmarshal(body, &doc); err != nil {
						errCh <- err
						return
					}
					if hd := res.Header.Get("X-Store-Day"); hd != strconv.Itoa(doc.Day) {
						errCh <- &incoherent{header: hd, body: doc.Day}
						return
					}
				}
			}
		}(g)
	}

	// Roll through every remaining snapshot while the readers run.
	for {
		time.Sleep(10 * time.Millisecond)
		if err := origin.AdvanceDay(); err != nil {
			break // out of days
		}
	}
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

type incoherent struct {
	header string
	body   int
}

func (e *incoherent) Error() string {
	return "snapshot incoherence: X-Store-Day " + e.header + " vs body day " + strconv.Itoa(e.body)
}
