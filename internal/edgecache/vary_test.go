package edgecache

import (
	"bytes"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"

	"planetapps/internal/gzipx"
)

// varyingOrigin negotiates gzip the way the v1 store does: distinct bytes
// and a distinct ETag per encoding, Vary: Accept-Encoding on both. It is
// the minimal origin that breaks a cache keyed on URI alone.
type varyingOrigin struct {
	mu   sync.Mutex
	hits int
}

func (o *varyingOrigin) count() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.hits
}

func (o *varyingOrigin) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	o.mu.Lock()
	o.hits++
	o.mu.Unlock()
	plain := []byte(`{"id":1,"category":"c0","downloads":1000,"pad":"` +
		strings.Repeat("x", 512) + `"}`)
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("Vary", "Accept-Encoding")
	h.Set("Cache-Control", "max-age=60")
	etag, body := `"doc-v1"`, plain
	if strings.Contains(r.Header.Get("Accept-Encoding"), "gzip") {
		etag, body = `"doc-v1-gz"`, gzipx.Compress(plain)
		h.Set("Content-Encoding", "gzip")
	}
	h.Set("ETag", etag)
	if r.Header.Get("If-None-Match") == etag {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Write(body)
}

// rawGet fetches without the Go client's transparent gzip: the explicit
// Accept-Encoding keeps the wire bytes visible to the test.
func rawGet(t *testing.T, url, acceptEncoding string) (int, []byte, http.Header) {
	t.Helper()
	return edgeGet(t, url, map[string]string{"Accept-Encoding": acceptEncoding})
}

// TestVarySplitsCacheKey is the Vary regression test: one URI, two
// representations. Each negotiated encoding must get its own cache entry —
// a gzip client must never receive the identity entry's bytes (or ETag),
// and vice versa, in either fill order.
func TestVarySplitsCacheKey(t *testing.T) {
	origin := &varyingOrigin{}
	s, base := newTestEdge(t, origin, Config{})
	url := base + "/api/v1/apps/1"

	// Identity first: fills the shared (pre-learn) key.
	code, idBody, idHdr := rawGet(t, url, "identity")
	if code != 200 || idHdr.Get("Content-Encoding") != "" {
		t.Fatalf("identity fill: status %d, Content-Encoding %q", code, idHdr.Get("Content-Encoding"))
	}
	if idHdr.Get("Vary") != "Accept-Encoding" {
		t.Fatalf("identity fill: Vary %q, want Accept-Encoding", idHdr.Get("Vary"))
	}

	// Gzip client on the same URI: with a URI-only cache key this would be
	// a fresh hit serving the identity entry; Vary-aware keying makes it a
	// distinct entry holding compressed wire bytes.
	code, gzBody, gzHdr := rawGet(t, url, "gzip")
	if code != 200 {
		t.Fatalf("gzip fill: status %d", code)
	}
	if gzHdr.Get("Content-Encoding") != "gzip" {
		t.Fatalf("gzip client got Content-Encoding %q — served the identity variant", gzHdr.Get("Content-Encoding"))
	}
	if gzHdr.Get("ETag") != `"doc-v1-gz"` || idHdr.Get("ETag") != `"doc-v1"` {
		t.Fatalf("variant ETags crossed: identity %q, gzip %q", idHdr.Get("ETag"), gzHdr.Get("ETag"))
	}
	plain, err := gzipx.Decompress(gzBody)
	if err != nil {
		t.Fatalf("gzip variant does not inflate: %v", err)
	}
	if !bytes.Equal(plain, idBody) {
		t.Fatal("gzip variant inflates to different content than the identity variant")
	}

	// Both variants now resident: repeat requests are fresh hits served
	// from their own entries, with zero additional origin traffic.
	fills := origin.count()
	for i := 0; i < 3; i++ {
		_, b, h := rawGet(t, url, "identity")
		if h.Get("X-Edge-Cache") != "hit" || h.Get("Content-Encoding") != "" || !bytes.Equal(b, idBody) {
			t.Fatalf("identity re-read %d: verdict %q, Content-Encoding %q", i, h.Get("X-Edge-Cache"), h.Get("Content-Encoding"))
		}
		_, b, h = rawGet(t, url, "gzip")
		if h.Get("X-Edge-Cache") != "hit" || h.Get("Content-Encoding") != "gzip" || !bytes.Equal(b, gzBody) {
			t.Fatalf("gzip re-read %d: verdict %q, Content-Encoding %q", i, h.Get("X-Edge-Cache"), h.Get("Content-Encoding"))
		}
	}
	if got := origin.count(); got != fills {
		t.Fatalf("variant hits cost %d extra origin fetches", got-fills)
	}

	// Each variant revalidates with its own ETag.
	code, body, _ := edgeGet(t, url, map[string]string{
		"Accept-Encoding": "gzip", "If-None-Match": `"doc-v1-gz"`})
	if code != 304 || len(body) != 0 {
		t.Fatalf("gzip conditional: status %d, %d body bytes", code, len(body))
	}
	code, _, _ = edgeGet(t, url, map[string]string{
		"Accept-Encoding": "identity", "If-None-Match": `"doc-v1"`})
	if code != 304 {
		t.Fatalf("identity conditional: status %d, want 304", code)
	}
	// A validator from the other representation must not revalidate.
	code, _, _ = edgeGet(t, url, map[string]string{
		"Accept-Encoding": "identity", "If-None-Match": `"doc-v1-gz"`})
	if code != 200 {
		t.Fatalf("cross-encoding validator revalidated: status %d, want 200", code)
	}

	// The cache charged the compressed entry its wire size, not its
	// inflated size.
	if st := s.Stats(); st.Bytes >= int64(2*len(idBody)) {
		t.Fatalf("resident bytes %d suggest the gzip entry was stored inflated (identity body is %d)", st.Bytes, len(idBody))
	}
}

// TestVaryUnknownDimensionUncacheable pins the conservative half of Vary
// honoring: a response varying on a header the edge cannot key on is
// relayed, never cached — two clients differing in that header must each
// reach the origin.
func TestVaryUnknownDimensionUncacheable(t *testing.T) {
	var hits int
	var mu sync.Mutex
	origin := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		hits++
		mu.Unlock()
		lang := r.Header.Get("Accept-Language")
		if lang == "" {
			lang = "en"
		}
		h := w.Header()
		h.Set("Content-Type", "application/json")
		h.Set("ETag", `"doc-`+lang+`"`)
		h.Set("Vary", "Accept-Language")
		h.Set("Cache-Control", "max-age=60")
		fmt.Fprintf(w, `{"lang":%q}`, lang)
	})
	_, base := newTestEdge(t, origin, Config{})
	url := base + "/api/v1/apps/1"

	_, _, enHdr := edgeGet(t, url, map[string]string{"Accept-Language": "en"})
	if enHdr.Get("X-Edge-Cache") != "pass" {
		t.Fatalf("Vary: Accept-Language response cached (verdict %q)", enHdr.Get("X-Edge-Cache"))
	}
	if enHdr.Get("Vary") != "Accept-Language" {
		t.Fatalf("pass response dropped Vary (got %q)", enHdr.Get("Vary"))
	}
	_, _, deHdr := edgeGet(t, url, map[string]string{"Accept-Language": "de"})
	if deHdr.Get("X-Edge-Cache") != "pass" {
		t.Fatalf("second request verdict %q, want pass (must not have been cached)", deHdr.Get("X-Edge-Cache"))
	}
	mu.Lock()
	defer mu.Unlock()
	if hits != 2 {
		t.Fatalf("origin hits = %d, want 2 (uncacheable)", hits)
	}
}
