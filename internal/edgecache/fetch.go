package edgecache

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"strings"
	"time"

	"planetapps/internal/gzipx"
	"planetapps/internal/resilient"
)

// fetchKind classifies how a cache-miss request was resolved.
type fetchKind uint8

const (
	kindError fetchKind = iota
	kindMiss            // filled from a 200
	kindReval           // refreshed by a 304
	kindStale           // origin down, stale copy served
	kindPass            // relayed uncached
)

func (k fetchKind) label() string {
	switch k {
	case kindMiss:
		return "miss"
	case kindReval:
		return "revalidated"
	case kindStale:
		return "stale"
	case kindPass:
		return "pass"
	}
	return "error"
}

// fetchOut is the outcome of one collapsed origin fetch, shared by the
// single-flight leader with every coalesced follower.
type fetchOut struct {
	kind   fetchKind
	entry  *entry // kindMiss/kindReval/kindStale: a stable value copy
	status int    // kindPass
	header http.Header
	body   []byte
	err    error
}

// flight is one in-progress origin fetch; followers wait on done.
type flight struct {
	done chan struct{}
	out  *fetchOut
}

// getOrFetch resolves a request the fresh-hit path could not serve:
// coalesce with an in-flight fetch for the same (URI, variant), or become
// the leader and fetch (revalidating if a stale copy exists). Flights are
// keyed per variant even before the URI's Vary behavior is learned — a
// gzip client must never be handed an identity leader's bytes, or vice
// versa.
func (s *Server) getOrFetch(ctx context.Context, base, variant, xff string) *fetchOut {
	fkey := base + "\x00\x00" + variant
	s.mu.Lock()
	if f, ok := s.flights[fkey]; ok {
		s.mu.Unlock()
		s.st.coalesced.Inc()
		select {
		case <-f.done:
			return f.out
		case <-ctx.Done():
			return &fetchOut{kind: kindError, err: ctx.Err()}
		}
	}
	f := &flight{done: make(chan struct{})}
	s.flights[fkey] = f
	var staleEtag string
	if id, ok := s.ids[s.cacheKeyLocked(base, variant)]; ok {
		if e := s.entries[id]; e != nil {
			staleEtag = e.etag
		}
	}
	s.mu.Unlock()

	// The fetch deliberately runs on a fresh context: its result fills a
	// shared cache serving every coalesced follower, so one impatient
	// leader disconnecting must not cancel it for the rest.
	f.out = s.fetch(context.Background(), base, variant, staleEtag, xff)

	s.mu.Lock()
	delete(s.flights, fkey)
	s.mu.Unlock()
	close(f.done)
	return f.out
}

// validateDoc rejects damaged JSON payloads before they can enter the
// cache: a corrupted body (the faultinject corruption scenario zeroes a
// span mid-body) must trigger a re-fetch, not get cached and re-served
// forever. Compressed payloads are decompressed here and ONLY here — the
// gzip CRC plus the JSON check together gate admission; the hit path
// never inflates anything. Non-JSON payloads pass through unchecked —
// they are not cached.
func validateDoc(res *resilient.Result) error {
	if res.Status != http.StatusOK {
		return nil
	}
	if !strings.HasPrefix(res.Header.Get("Content-Type"), "application/json") {
		return nil
	}
	body := res.Body
	if res.Header.Get("Content-Encoding") == "gzip" {
		plain, err := gzipx.Decompress(body)
		if err != nil {
			return errors.New("edgecache: damaged gzip payload: " + err.Error())
		}
		body = plain
	}
	if !json.Valid(body) {
		return errors.New("edgecache: damaged JSON payload")
	}
	return nil
}

// parseVary splits an origin Vary header into the one dimension the edge
// knows how to key on (Accept-Encoding) and everything else. "*" counts
// as other: it means "varies on something you cannot see", which the edge
// honors by not caching.
func parseVary(v string) (ae, other bool) {
	for v != "" {
		field := v
		if i := strings.IndexByte(v, ','); i >= 0 {
			field, v = v[:i], v[i+1:]
		} else {
			v = ""
		}
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		if strings.EqualFold(field, "Accept-Encoding") {
			ae = true
		} else {
			other = true
		}
	}
	return ae, other
}

// fetch performs the leader's origin exchange and folds the outcome into
// the cache. The origin leg always carries an explicit Accept-Encoding —
// "gzip" for the gzip variant, "identity" otherwise — which also disables
// the Go transport's transparent decompression, so compressed bytes
// arrive (and are stored, and later served) exactly as the origin encoded
// them: one compression per content version, ever, at the origin.
func (s *Server) fetch(ctx context.Context, base, variant, staleEtag, xff string) *fetchOut {
	url := s.cfg.Origin + base
	hdr := http.Header{}
	if variant == "gzip" {
		hdr.Set("Accept-Encoding", "gzip")
	} else {
		hdr.Set("Accept-Encoding", "identity")
	}
	if staleEtag != "" {
		hdr.Set("If-None-Match", staleEtag)
	}
	if xff != "" {
		hdr.Set("X-Forwarded-For", xff)
	}
	s.st.originReqs.Inc()
	res, err := s.client.Get(ctx, url, hdr, validateDoc)
	now := time.Now()
	if err != nil {
		var pe *resilient.PermanentError
		if errors.As(err, &pe) && res != nil {
			// A definitive origin answer (4xx): relay it uncached.
			return &fetchOut{kind: kindPass, status: res.Status, header: res.Header, body: res.Body}
		}
		// Transport failure or exhausted 5xx retries: the origin is
		// unreachable. Serve the stale copy when one exists — old data
		// beats no data while the origin rides out a fault storm.
		s.mu.Lock()
		if id, ok := s.ids[s.cacheKeyLocked(base, variant)]; ok {
			if e := s.entries[id]; e != nil {
				snap := *e
				s.mu.Unlock()
				s.st.staleServed.Inc()
				return &fetchOut{kind: kindStale, entry: &snap}
			}
		}
		s.mu.Unlock()
		return &fetchOut{kind: kindError, err: err}
	}

	switch {
	case res.Status == http.StatusNotModified && staleEtag != "":
		// Our copy is still current: refresh its freshness clock.
		ttl, age := s.freshnessOf(res.Header)
		s.mu.Lock()
		id, ok := s.ids[s.cacheKeyLocked(base, variant)]
		if ok {
			if e := s.entries[id]; e != nil && e.etag == staleEtag {
				e.originAge = age
				e.storedAt = now
				e.expires = now.Add(ttl)
				if day := res.Header.Get("X-Store-Day"); day != "" {
					e.day = day
				}
				if cc := res.Header.Get("Cache-Control"); cc != "" {
					e.cc = cc
				}
				s.pol.AccessCost(id, int64(len(e.body)))
				snap := *e
				s.mu.Unlock()
				s.st.revalidated.Inc()
				return &fetchOut{kind: kindReval, entry: &snap}
			}
		}
		s.mu.Unlock()
		// The entry vanished between flight start and the 304 (evicted
		// mid-flight): we hold no body. Refetch unconditionally.
		return s.fetch(ctx, base, variant, "", xff)

	case res.Status == http.StatusOK:
		s.st.originBytes.Add(int64(len(res.Body)))
		etag := res.Header.Get("ETag")
		if etag == "" || !strings.HasPrefix(res.Header.Get("Content-Type"), "application/json") {
			// Uncacheable: no validator (ETag) to revalidate with, or a
			// payload (APK stream) the edge cannot integrity-check.
			return &fetchOut{kind: kindPass, status: res.Status, header: res.Header, body: res.Body}
		}
		vary := res.Header.Get("Vary")
		varyAE, varyOther := parseVary(vary)
		cenc := res.Header.Get("Content-Encoding")
		if varyOther || (cenc != "" && cenc != "gzip") {
			// The response varies on a dimension the edge cannot key on,
			// or carries a coding it cannot integrity-check: honoring
			// Vary means not caching what we cannot tell apart.
			return &fetchOut{kind: kindPass, status: res.Status, header: res.Header, body: res.Body}
		}
		plain := res.Body
		if cenc == "gzip" {
			var derr error
			if plain, derr = gzipx.Decompress(res.Body); derr != nil {
				// Unreachable after validateDoc, but stay honest: relay
				// rather than cache bytes we cannot verify.
				return &fetchOut{kind: kindPass, status: res.Status, header: res.Header, body: res.Body}
			}
		}
		ttl, age := s.freshnessOf(res.Header)
		info := classify(base, plain)
		if s.warm != nil && info.appID >= 0 && !strings.HasPrefix(info.cat, "\x00") {
			s.warm.learn(info.appID, info.cat, info.downloads)
		}
		s.mu.Lock()
		if varyAE {
			s.varyAE[base] = true
		}
		key := s.cacheKeyLocked(base, variant)
		e := &entry{
			key:       key,
			body:      res.Body,
			etag:      etag,
			ctype:     res.Header.Get("Content-Type"),
			cenc:      cenc,
			vary:      vary,
			day:       res.Header.Get("X-Store-Day"),
			apiVer:    res.Header.Get("X-API-Version"),
			cc:        res.Header.Get("Cache-Control"),
			originAge: age,
			storedAt:  now,
			expires:   now.Add(ttl),
			appID:     info.appID,
		}
		id := s.idOf(key)
		s.catOf[id] = s.internCat(info.cat)
		s.pol.AccessCost(id, int64(len(e.body)))
		if s.pol.Contains(id) {
			s.entries[id] = e
		} else {
			// The policy declined admission (or evicted it immediately);
			// serve the body anyway, just do not keep it.
			delete(s.entries, id)
		}
		snap := *e
		s.mu.Unlock()
		s.st.misses.Inc()
		return &fetchOut{kind: kindMiss, entry: &snap}

	default:
		// Unexpected success-class status (206, 3xx...): relay uncached.
		return &fetchOut{kind: kindPass, status: res.Status, header: res.Header, body: res.Body}
	}
}

// idOf interns a request key. Caller holds s.mu.
func (s *Server) idOf(key string) int32 {
	if id, ok := s.ids[key]; ok {
		return id
	}
	id := int32(len(s.ids))
	s.ids[key] = id
	return id
}

// freshnessOf derives the remaining freshness lifetime and the reported
// age from origin headers: remaining = max-age - Age, clamped to
// [0, MaxTTL]. Without Cache-Control, DefaultTTL applies; no-store and
// no-cache mean zero.
func (s *Server) freshnessOf(h http.Header) (time.Duration, int64) {
	var age int64
	if v := h.Get("Age"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil && n > 0 {
			age = n
		}
	}
	maxAge, ok := parseMaxAge(h.Get("Cache-Control"))
	if !ok {
		ttl := s.cfg.DefaultTTL
		if s.cfg.MaxTTL > 0 && ttl > s.cfg.MaxTTL {
			ttl = s.cfg.MaxTTL
		}
		return ttl, age
	}
	rem := maxAge - time.Duration(age)*time.Second
	if rem < 0 {
		rem = 0
	}
	if s.cfg.MaxTTL > 0 && rem > s.cfg.MaxTTL {
		rem = s.cfg.MaxTTL
	}
	return rem, age
}

// parseMaxAge extracts max-age from a Cache-Control value. no-store and
// no-cache report zero; ok is false when the header carries no usable
// freshness directive at all.
func parseMaxAge(cc string) (time.Duration, bool) {
	if cc == "" {
		return 0, false
	}
	for _, part := range strings.Split(cc, ",") {
		part = strings.TrimSpace(strings.ToLower(part))
		switch {
		case part == "no-store" || part == "no-cache":
			return 0, true
		case strings.HasPrefix(part, "max-age="):
			secs, err := strconv.ParseInt(part[len("max-age="):], 10, 64)
			if err != nil || secs < 0 {
				return 0, true // malformed max-age: treat as stale
			}
			return time.Duration(secs) * time.Second, true
		}
	}
	return 0, false
}
