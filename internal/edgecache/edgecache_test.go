package edgecache

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// countingOrigin is a synthetic /api/v1-shaped origin with per-path hit
// counting and a switchable failure mode, for exercising the edge's HTTP
// machinery without a full store behind it.
type countingOrigin struct {
	mu      sync.Mutex
	hits    map[string]int
	failing bool // when set, every request returns 503
	slow    time.Duration
	maxAge  int
}

func newCountingOrigin(maxAge int) *countingOrigin {
	return &countingOrigin{hits: map[string]int{}, maxAge: maxAge}
}

func (o *countingOrigin) count(path string) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.hits[path]
}

func (o *countingOrigin) total() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	n := 0
	for _, v := range o.hits {
		n += v
	}
	return n
}

func (o *countingOrigin) setFailing(v bool) {
	o.mu.Lock()
	o.failing = v
	o.mu.Unlock()
}

func (o *countingOrigin) setMaxAge(v int) {
	o.mu.Lock()
	o.maxAge = v
	o.mu.Unlock()
}

func (o *countingOrigin) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	o.mu.Lock()
	o.hits[r.URL.Path]++
	failing, slow, maxAge := o.failing, o.slow, o.maxAge
	o.mu.Unlock()
	if slow > 0 {
		time.Sleep(slow)
	}
	if failing {
		http.Error(w, "origin down", http.StatusServiceUnavailable)
		return
	}
	if strings.HasSuffix(r.URL.Path, "/apk") {
		w.Header().Set("Content-Type", "application/vnd.android.package-archive")
		w.Header().Set("ETag", `"apk-v1"`)
		w.Write([]byte("PK\x03\x04 not json"))
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/api/v1/apps/")
	etag := fmt.Sprintf(`"doc-%s-v1"`, id)
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("ETag", etag)
	h.Set("X-Store-Day", "0")
	h.Set("Cache-Control", fmt.Sprintf("max-age=%d", maxAge))
	h.Set("Age", "0")
	if r.Header.Get("If-None-Match") == etag {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	var n int
	fmt.Sscanf(id, "%d", &n)
	fmt.Fprintf(w, `{"id":%s,"category":"c%d","downloads":%d}`, id, n%2, 100000-n)
}

// newTestEdge builds an edge in front of a handler and returns the server
// plus a client-side base URL.
func newTestEdge(t *testing.T, origin http.Handler, cfg Config) (*Server, string) {
	t.Helper()
	ots := httptest.NewServer(origin)
	t.Cleanup(ots.Close)
	cfg.Origin = ots.URL
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ets := httptest.NewServer(s.Handler())
	t.Cleanup(ets.Close)
	return s, ets.URL
}

func edgeGet(t *testing.T, url string, hdr map[string]string) (int, []byte, http.Header) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return res.StatusCode, body, res.Header
}

// TestSingleFlightCollapse pins the stampede contract: N concurrent
// requests for one cold key cost the origin exactly one fetch, and every
// client still gets the full body.
func TestSingleFlightCollapse(t *testing.T) {
	origin := newCountingOrigin(60)
	origin.slow = 50 * time.Millisecond // hold the flight open so followers pile up
	s, base := newTestEdge(t, origin, Config{})

	const clients = 16
	var wg sync.WaitGroup
	var bad atomic.Int64
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, body, _ := edgeGet(t, base+"/api/v1/apps/7", nil)
			if code != http.StatusOK || !strings.Contains(string(body), `"id":7`) {
				bad.Add(1)
			}
		}()
	}
	wg.Wait()
	if bad.Load() != 0 {
		t.Fatalf("%d of %d concurrent clients got a wrong response", bad.Load(), clients)
	}
	if got := origin.count("/api/v1/apps/7"); got != 1 {
		t.Fatalf("origin saw %d fetches for one key, want exactly 1", got)
	}
	st := s.Stats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1", st.Misses)
	}
	if st.Coalesced != clients-1 {
		t.Fatalf("coalesced = %d, want %d", st.Coalesced, clients-1)
	}
	if st.OriginRequests != 1 {
		t.Fatalf("origin requests = %d, want 1", st.OriginRequests)
	}
}

// TestStaleServedOnOriginFailure pins stale-while-unreachable: when the
// origin's 5xx storm outlasts the retry budget, the edge serves the stale
// copy instead of an error — and a key it never cached is an honest 502.
func TestStaleServedOnOriginFailure(t *testing.T) {
	origin := newCountingOrigin(0) // max-age=0: every request revalidates
	s, base := newTestEdge(t, origin, Config{OriginRetries: 2})

	code, body, _ := edgeGet(t, base+"/api/v1/apps/3", nil)
	if code != http.StatusOK {
		t.Fatalf("warmup status %d", code)
	}

	origin.setFailing(true)
	code, got, hdr := edgeGet(t, base+"/api/v1/apps/3", nil)
	if code != http.StatusOK {
		t.Fatalf("stale serve status %d, want 200", code)
	}
	if hdr.Get("X-Edge-Cache") != "stale" {
		t.Fatalf("X-Edge-Cache = %q, want stale", hdr.Get("X-Edge-Cache"))
	}
	if string(got) != string(body) {
		t.Fatal("stale body differs from the cached copy")
	}
	if st := s.Stats(); st.StaleServed != 1 {
		t.Fatalf("StaleServed = %d, want 1", st.StaleServed)
	}

	// Nothing cached for this key: the failure has to surface.
	code, _, hdr = edgeGet(t, base+"/api/v1/apps/99", nil)
	if code != http.StatusBadGateway {
		t.Fatalf("uncached key during outage: status %d, want 502", code)
	}
	if hdr.Get("X-Edge-Cache") != "error" {
		t.Fatalf("X-Edge-Cache = %q, want error", hdr.Get("X-Edge-Cache"))
	}

	// Origin recovers: the stale copy revalidates back to fresh.
	origin.setFailing(false)
	_, _, hdr = edgeGet(t, base+"/api/v1/apps/3", nil)
	if v := hdr.Get("X-Edge-Cache"); v != "revalidated" {
		t.Fatalf("post-recovery X-Edge-Cache = %q, want revalidated", v)
	}
}

// TestFreshnessAndRevalidation pins the freshness model: inside max-age the
// edge serves without origin I/O; with max-age=0 every request is an
// If-None-Match revalidation that the origin answers 304.
func TestFreshnessAndRevalidation(t *testing.T) {
	origin := newCountingOrigin(60)
	s, base := newTestEdge(t, origin, Config{})

	_, first, _ := edgeGet(t, base+"/api/v1/apps/1", nil)
	_, second, hdr := edgeGet(t, base+"/api/v1/apps/1", nil)
	if hdr.Get("X-Edge-Cache") != "hit" {
		t.Fatalf("second request X-Edge-Cache = %q, want hit", hdr.Get("X-Edge-Cache"))
	}
	if string(first) != string(second) {
		t.Fatal("hit body differs from miss body")
	}
	if got := origin.count("/api/v1/apps/1"); got != 1 {
		t.Fatalf("fresh window cost %d origin fetches, want 1", got)
	}
	if hdr.Get("Cache-Control") != "max-age=60" {
		t.Fatalf("Cache-Control not forwarded: %q", hdr.Get("Cache-Control"))
	}
	if hdr.Get("Age") == "" {
		t.Fatal("hit response missing Age")
	}

	// An always-stale origin document costs one conditional fetch per
	// request, answered 304 — the edge keeps serving its stored body.
	origin.setMaxAge(0)
	_, _, _ = edgeGet(t, base+"/api/v1/apps/2", nil)
	_, _, hdr = edgeGet(t, base+"/api/v1/apps/2", nil)
	if hdr.Get("X-Edge-Cache") != "revalidated" {
		t.Fatalf("X-Edge-Cache = %q, want revalidated", hdr.Get("X-Edge-Cache"))
	}
	if got := origin.count("/api/v1/apps/2"); got != 2 {
		t.Fatalf("origin fetches = %d, want 2 (miss + revalidation)", got)
	}
	if st := s.Stats(); st.Revalidated != 1 {
		t.Fatalf("Revalidated = %d, want 1", st.Revalidated)
	}
}

// TestClientConditional pins the downstream-validator contract: a client's
// If-None-Match is answered by the edge itself, costing the origin nothing
// while the entry is fresh.
func TestClientConditional(t *testing.T) {
	origin := newCountingOrigin(60)
	s, base := newTestEdge(t, origin, Config{})

	_, _, hdr := edgeGet(t, base+"/api/v1/apps/5", nil)
	etag := hdr.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag on the filled response")
	}
	code, body, hdr := edgeGet(t, base+"/api/v1/apps/5", map[string]string{"If-None-Match": etag})
	if code != http.StatusNotModified {
		t.Fatalf("conditional status %d, want 304", code)
	}
	if len(body) != 0 {
		t.Fatalf("304 carried %d body bytes", len(body))
	}
	if hdr.Get("ETag") != etag {
		t.Fatalf("304 ETag %q, want %q", hdr.Get("ETag"), etag)
	}
	if got := origin.count("/api/v1/apps/5"); got != 1 {
		t.Fatalf("client 304 cost an origin fetch (%d total)", got)
	}
	if st := s.Stats(); st.Client304 != 1 {
		t.Fatalf("Client304 = %d, want 1", st.Client304)
	}
}

// TestAPKPassthrough pins the uncacheable path: non-JSON payloads relay
// through the edge uncached, and a version-aware conditional client still
// gets its 304 on an exact ETag match.
func TestAPKPassthrough(t *testing.T) {
	origin := newCountingOrigin(60)
	s, base := newTestEdge(t, origin, Config{})

	code, body, hdr := edgeGet(t, base+"/api/v1/apps/4/apk", nil)
	if code != http.StatusOK || hdr.Get("X-Edge-Cache") != "pass" {
		t.Fatalf("apk: status %d, X-Edge-Cache %q", code, hdr.Get("X-Edge-Cache"))
	}
	if !strings.HasPrefix(string(body), "PK") {
		t.Fatalf("apk body mangled: %q", body)
	}
	etag := hdr.Get("ETag")

	// Uncached: a second fetch hits the origin again.
	edgeGet(t, base+"/api/v1/apps/4/apk", nil)
	if got := origin.count("/api/v1/apps/4/apk"); got != 2 {
		t.Fatalf("apk origin fetches = %d, want 2 (never cached)", got)
	}

	code, _, _ = edgeGet(t, base+"/api/v1/apps/4/apk", map[string]string{"If-None-Match": etag})
	if code != http.StatusNotModified {
		t.Fatalf("conditional apk status %d, want 304", code)
	}
	if st := s.Stats(); st.Passthrough != 3 {
		t.Fatalf("Passthrough = %d, want 3", st.Passthrough)
	}
}

// TestPrefetchWarming exercises the category-top warmer end to end: one
// client pages through a category, early pages fall out of a small cache,
// and a later request makes the warmer pull the category's most popular
// pages back in — which the next client then hits.
func TestPrefetchWarming(t *testing.T) {
	origin := newCountingOrigin(300)
	s, base := newTestEdge(t, origin, Config{
		CapacityBytes:   1200, // ~26 detail docs
		PrefetchBudget:  3,
		PrefetchWorkers: 1,
	})

	// One client walks 70 even-numbered apps (all category c0, most
	// popular first by construction): the learner accumulates past the
	// rebuild threshold while the small cache sheds the early pages.
	hdr := map[string]string{"X-Forwarded-For": "10.0.0.1"}
	for i := 0; i < 70; i++ {
		code, _, _ := edgeGet(t, fmt.Sprintf("%s/api/v1/apps/%d", base, 2*i), hdr)
		if code != http.StatusOK {
			t.Fatalf("walk %d: status %d", i, code)
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().PrefetchFills == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no prefetch fills after the walk; stats %+v", s.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The category's most popular page (app 0, long since evicted from the
	// walk) should now be warm for the next client.
	deadline = time.Now().Add(2 * time.Second)
	for s.Stats().PrefetchHits == 0 {
		code, _, h := edgeGet(t, base+"/api/v1/apps/0", map[string]string{"X-Forwarded-For": "10.0.0.2"})
		if code != http.StatusOK {
			t.Fatalf("warmed fetch status %d", code)
		}
		if h.Get("X-Edge-Cache") == "hit" && s.Stats().PrefetchHits > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Skipf("warm fill for app 0 raced with eviction (fills=%d); prefetch-hit accounting not provable here", s.Stats().PrefetchFills)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := s.Stats(); st.PrefetchFills == 0 {
		t.Fatalf("PrefetchFills = 0; stats %+v", st)
	}
}
