// Package edgecache is a CDN-POP-style caching proxy that sits between
// clients (crawlers, the load generator, real browsers) and a store fleet
// origin, serving the /api/v1 surface from a byte-budgeted in-memory cache.
// It makes the paper's §7 implication study live: the same replacement
// policies internal/cache evaluates offline (LRU, 2Q, CategoryAware) here
// govern a real HTTP cache under real traffic, and internal/prefetch's
// category-top strategy warms likely-next detail pages the way the paper
// proposes ("the most popular apps from this category ... can be
// prefetched to a local place").
//
// The proxy is HTTP-correct under day-rolls:
//
//   - Freshness follows the origin's Cache-Control: max-age and Age
//     headers (remaining = max-age - Age), so an edge entry expires
//     exactly when the next day-roll is due. Entries are served with a
//     growing Age and the origin's Cache-Control forwarded.
//   - Expired entries revalidate with If-None-Match against the origin's
//     content-version ETags; an unchanged document costs a 304, not a
//     re-encode, and keeps serving byte-identical content.
//   - When the origin fails (5xx storms, resets — the faultinject
//     scenarios), the edge serves the stale copy rather than an error:
//     stale-while-unreachable, bounded by the resilient client's retry
//     budget.
//   - Concurrent misses for one key collapse into a single origin fetch
//     (single-flight); a popular page hits the origin once no matter how
//     many clients stampede it.
//   - Client If-None-Match is answered by the edge itself: a conditional
//     crawler gets its 304s from the edge without origin traffic.
//
// Non-JSON payloads (APK streams) and error responses pass through
// uncached — the cache holds only origin-ETagged JSON documents, which are
// the payloads whose integrity the edge can verify before storing.
package edgecache

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"planetapps/internal/cache"
	"planetapps/internal/gzipx"
	"planetapps/internal/metrics"
	"planetapps/internal/resilient"
)

// Config controls an edge Server.
type Config struct {
	// Origin is the base URL of the store fleet origin (no trailing
	// slash), e.g. "http://127.0.0.1:8080".
	Origin string
	// CapacityBytes is the cache budget in body bytes (default 64 MiB).
	CapacityBytes int64
	// Policy selects the replacement policy: "lru" (default), "2q", or
	// "category" (the paper-motivated category-aware partitioned LFU).
	Policy string
	// MaxTTL caps the freshness lifetime accepted from origin headers
	// (0 = no cap).
	MaxTTL time.Duration
	// DefaultTTL is the freshness assumed when the origin sends no
	// Cache-Control (0 = always revalidate, the conservative default).
	DefaultTTL time.Duration
	// PrefetchBudget enables prefetch warming: after each detail-page
	// request, up to this many likely-next detail pages (category-top
	// selection over learned popularity) are fetched into the cache in
	// the background (0 = off).
	PrefetchBudget int
	// PrefetchWorkers bounds warming concurrency (default 2).
	PrefetchWorkers int
	// OriginTransport performs the physical origin exchanges; a
	// faultinject RoundTripper plugs in here to hit the edge->origin leg
	// with chaos (default: a fresh http.Transport).
	OriginTransport http.RoundTripper
	// OriginRetries is the resilient client's retry budget per origin
	// fetch (default 5). When the budget is exhausted the edge serves
	// stale.
	OriginRetries int
	// HedgeAfter launches a hedged origin attempt after this long
	// (0 = off).
	HedgeAfter time.Duration
	// Metrics receives the edge counters (default: a fresh registry,
	// served at /metrics).
	Metrics *metrics.Registry
	// Seed drives the resilient client's backoff jitter.
	Seed uint64
}

// entry is one cached origin document. Fields are written only under
// Server.mu; the body slice is immutable once stored, so a value copy
// taken under the lock can be served after releasing it.
type entry struct {
	key    string
	body   []byte // stored as received: compressed bytes stay compressed
	etag   string
	ctype  string
	cenc   string // origin Content-Encoding ("" or "gzip"), forwarded as-is
	vary   string // origin Vary, forwarded downstream
	day    string // origin X-Store-Day
	apiVer string // origin X-API-Version
	cc     string // origin Cache-Control, forwarded downstream

	// originAge is the Age the origin reported when this copy was
	// (re)validated; the client-facing Age is originAge plus residency.
	originAge int64
	storedAt  time.Time
	expires   time.Time

	// appID is the catalog id when this is a detail page (-1 otherwise);
	// it feeds the prefetch learner.
	appID int32
	// prefetched marks entries filled by the warmer and not yet used, so
	// prefetch usefulness is measurable.
	prefetched bool
}

// Server is the edge cache. Create with New; the HTTP surface comes from
// Handler. Close stops the background warmer.
type Server struct {
	cfg    Config
	client *resilient.Client
	reg    *metrics.Registry

	// mu guards the id table, the entry map, the policy, and the
	// single-flight table. The replacement policies are single-goroutine
	// structures; every policy call happens under mu.
	mu      sync.Mutex
	ids     map[string]int32 // cache key (URI + variant) -> interned id
	entries map[int32]*entry
	pol     cache.Policy
	cats    map[string]int32 // category name -> dense id
	catOf   map[int32]int32  // interned key id -> category (policy partitioning)
	flights map[string]*flight
	// varyAE records the URIs whose origin responses carry
	// Vary: Accept-Encoding. Only for those does the cache key split by
	// negotiated encoding; a non-varying URI keeps one shared entry no
	// matter what clients advertise.
	varyAE map[string]bool

	warm *warmer // nil when prefetch is off

	st instruments
}

// New validates cfg and builds the edge server.
func New(cfg Config) (*Server, error) {
	if cfg.Origin == "" {
		return nil, errors.New("edgecache: Config.Origin is required")
	}
	cfg.Origin = strings.TrimRight(cfg.Origin, "/")
	if cfg.CapacityBytes <= 0 {
		cfg.CapacityBytes = 64 << 20
	}
	if cfg.OriginRetries <= 0 {
		cfg.OriginRetries = 5
	}
	if cfg.PrefetchWorkers <= 0 {
		cfg.PrefetchWorkers = 2
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	s := &Server{
		cfg:     cfg,
		reg:     cfg.Metrics,
		ids:     map[string]int32{},
		entries: map[int32]*entry{},
		cats:    map[string]int32{},
		catOf:   map[int32]int32{},
		flights: map[string]*flight{},
		varyAE:  map[string]bool{},
	}
	capacity := int(cfg.CapacityBytes)
	switch cfg.Policy {
	case "", "lru":
		s.pol = cache.NewLRU(capacity)
	case "2q":
		s.pol = cache.NewTwoQ(capacity)
	case "category":
		s.pol = cache.NewCategoryAware(cache.CategoryAwareConfig{
			Capacity: capacity,
			// Called from AccessCost, always under s.mu.
			CategoryOf: func(id int32) int32 { return s.catOf[id] },
			// The default rebalance cadence is Capacity accesses — sane
			// for entry-count simulators, never for a byte budget; track
			// traffic shifts every few thousand requests instead.
			RebalanceEvery: 2048,
		})
	default:
		return nil, fmt.Errorf("edgecache: unknown policy %q (have lru, 2q, category)", cfg.Policy)
	}
	s.initInstruments()
	s.pol.OnEvict(func(id int32) {
		delete(s.entries, id)
		s.st.evictions.Inc()
	})
	s.client = resilient.New(resilient.Config{
		Transport:  cfg.OriginTransport,
		MaxRetries: cfg.OriginRetries,
		HedgeAfter: cfg.HedgeAfter,
		Seed:       cfg.Seed,
		Metrics:    cfg.Metrics,
	})
	if cfg.PrefetchBudget > 0 {
		s.warm = newWarmer(s)
	}
	return s, nil
}

// Close stops the background prefetch workers. The server must not be
// serving when Close returns is not required — in-flight requests finish
// normally; only warming stops.
func (s *Server) Close() {
	if s.warm != nil {
		s.warm.stop()
	}
}

// Handler returns the edge's HTTP surface: every path proxies to the
// origin through the cache, except /metrics, which serves the edge's own
// registry (the origin's /metrics is its own to expose).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	inner := s.reg.Handler()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		// The residency gauges are refreshed by Stats(); without this a
		// scrape that never calls Stats() would report 0 entries forever.
		s.Stats()
		inner.ServeHTTP(w, r)
	})
	mux.HandleFunc("/", s.proxy)
	return mux
}

// variantOf maps a client request to the encoding variant the edge will
// serve and request upstream: "gzip" when the client consents to gzip,
// "" (identity) otherwise.
func variantOf(r *http.Request) string {
	if gzipx.AcceptsGzip(r.Header.Get("Accept-Encoding")) {
		return "gzip"
	}
	return ""
}

// cacheKeyLocked is the storage key for (URI, variant): the bare URI for
// origins that do not vary on Accept-Encoding, URI + a NUL-separated
// variant tag for ones that do. Caller holds s.mu (varyAE access).
func (s *Server) cacheKeyLocked(base, variant string) string {
	if variant != "" && s.varyAE[base] {
		return base + "\x00" + variant
	}
	return base
}

// proxy serves one client request through the cache.
func (s *Server) proxy(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		http.Error(w, "edge: method not allowed", http.StatusMethodNotAllowed)
		return
	}
	base := r.URL.RequestURI()
	variant := variantOf(r)
	s.st.requests.Inc()
	now := time.Now()

	s.mu.Lock()
	key := s.cacheKeyLocked(base, variant)
	var e *entry
	if id, ok := s.ids[key]; ok {
		if e = s.entries[id]; e != nil && now.Before(e.expires) {
			// Fresh hit: touch the policy and serve without origin I/O.
			s.pol.AccessCost(id, int64(len(e.body)))
			if !s.pol.Contains(id) {
				// The touch itself evicted the entry (cannot happen for
				// the builtin policies, but the interface allows it);
				// fall through to a refetch.
				e = nil
			} else {
				if e.prefetched {
					e.prefetched = false
					s.st.prefetchHits.Inc()
				}
				snap := *e
				s.mu.Unlock()
				s.st.hits.Inc()
				s.serveEntry(w, r, &snap, now, "hit")
				s.noteClient(r, base, snap.appID)
				return
			}
		}
	}
	s.mu.Unlock()

	out := s.getOrFetch(r.Context(), base, variant, clientXFF(r))
	switch out.kind {
	case kindMiss, kindReval, kindStale:
		s.serveEntry(w, r, out.entry, time.Now(), out.kind.label())
		s.noteClient(r, base, out.entry.appID)
	case kindPass:
		s.servePass(w, r, out)
	default: // kindError
		s.st.errors.Inc()
		w.Header().Set("X-Edge-Cache", "error")
		http.Error(w, "edge: origin unreachable: "+out.err.Error(), http.StatusBadGateway)
	}
}

// serveEntry writes one cached representation, answering the client's own
// If-None-Match locally: a conditional client revalidates against the edge
// without any origin traffic.
func (s *Server) serveEntry(w http.ResponseWriter, r *http.Request, e *entry, now time.Time, verdict string) {
	h := w.Header()
	h.Set("ETag", e.etag)
	if e.vary != "" {
		h.Set("Vary", e.vary)
	}
	if e.day != "" {
		h.Set("X-Store-Day", e.day)
	}
	if e.apiVer != "" {
		h.Set("X-API-Version", e.apiVer)
	}
	if e.cc != "" {
		h.Set("Cache-Control", e.cc)
	}
	age := e.originAge
	if d := now.Sub(e.storedAt); d > 0 {
		age += int64(d / time.Second)
	}
	h.Set("Age", strconv.FormatInt(age, 10))
	h.Set("X-Edge-Cache", verdict)
	if inm := r.Header.Get("If-None-Match"); inm != "" && inm == e.etag {
		s.st.client304.Inc()
		w.WriteHeader(http.StatusNotModified)
		return
	}
	if e.cenc != "" {
		h.Set("Content-Encoding", e.cenc)
	}
	h.Set("Content-Type", e.ctype)
	h.Set("Content-Length", strconv.Itoa(len(e.body)))
	if r.Method == http.MethodHead {
		return
	}
	w.Write(e.body) //nolint:errcheck // client gone; nothing useful to do
	s.st.servedBytes.Add(int64(len(e.body)))
}

// passHeaders are the origin headers a passthrough response relays.
var passHeaders = []string{
	"ETag", "Content-Type", "Content-Encoding", "Vary", "X-Store-Day",
	"X-API-Version", "Cache-Control", "Age", "Retry-After",
}

// servePass relays an origin response the edge does not cache (APK
// streams, 4xx answers). A conditional client whose ETag matches a 200
// still gets its 304 — the version-aware crawler must see the same
// not-modified behavior through the edge as against the origin.
func (s *Server) servePass(w http.ResponseWriter, r *http.Request, out *fetchOut) {
	s.st.passthrough.Inc()
	h := w.Header()
	for _, k := range passHeaders {
		if v := out.header.Get(k); v != "" {
			h.Set(k, v)
		}
	}
	h.Set("X-Edge-Cache", "pass")
	if out.status == http.StatusOK {
		if inm := r.Header.Get("If-None-Match"); inm != "" && inm == out.header.Get("ETag") {
			s.st.client304.Inc()
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}
	h.Set("Content-Length", strconv.Itoa(len(out.body)))
	w.WriteHeader(out.status)
	if r.Method == http.MethodHead {
		return
	}
	w.Write(out.body) //nolint:errcheck // client gone; nothing useful to do
	s.st.servedBytes.Add(int64(len(out.body)))
}

// clientXFF is the X-Forwarded-For value forwarded upstream: the client's
// own chain when present (origin rate limiting keys on the first hop, so
// per-client buckets survive the edge), else the client's remote IP.
func clientXFF(r *http.Request) string {
	if xff := r.Header.Get("X-Forwarded-For"); xff != "" {
		return xff
	}
	host := r.RemoteAddr
	if i := strings.LastIndexByte(host, ':'); i > 0 {
		host = host[:i]
	}
	return host
}

// Registry exposes the edge metrics registry (also served at /metrics).
func (s *Server) Registry() *metrics.Registry { return s.reg }
