package edgecache

import (
	"planetapps/internal/metrics"
)

// instruments are the edge counters, mirrored into the registry served at
// /metrics.
type instruments struct {
	requests    *metrics.Counter
	hits        *metrics.Counter
	misses      *metrics.Counter
	revalidated *metrics.Counter
	staleServed *metrics.Counter
	coalesced   *metrics.Counter
	client304   *metrics.Counter
	passthrough *metrics.Counter
	evictions   *metrics.Counter
	errors      *metrics.Counter

	originReqs  *metrics.Counter
	originBytes *metrics.Counter
	servedBytes *metrics.Counter

	prefetchFills *metrics.Counter
	prefetchHits  *metrics.Counter

	entriesG *metrics.Gauge
	bytesG   *metrics.Gauge
}

func (s *Server) initInstruments() {
	r := s.reg
	s.st = instruments{
		requests:      r.Counter("edge_requests_total"),
		hits:          r.Counter("edge_hits_total"),
		misses:        r.Counter("edge_misses_total"),
		revalidated:   r.Counter("edge_revalidated_total"),
		staleServed:   r.Counter("edge_stale_served_total"),
		coalesced:     r.Counter("edge_coalesced_total"),
		client304:     r.Counter("edge_client_304_total"),
		passthrough:   r.Counter("edge_passthrough_total"),
		evictions:     r.Counter("edge_evictions_total"),
		errors:        r.Counter("edge_errors_total"),
		originReqs:    r.Counter("edge_origin_requests_total"),
		originBytes:   r.Counter("edge_origin_bytes_total"),
		servedBytes:   r.Counter("edge_served_bytes_total"),
		prefetchFills: r.Counter("edge_prefetch_fills_total"),
		prefetchHits:  r.Counter("edge_prefetch_hits_total"),
		entriesG:      r.Gauge("edge_cache_entries"),
		bytesG:        r.Gauge("edge_cache_bytes"),
	}
}

// Stats is a point-in-time summary of the edge's serving activity.
type Stats struct {
	Requests    int64 // client requests (excluding /metrics)
	Hits        int64 // served fresh from cache, no origin I/O
	Misses      int64 // filled from an origin 200
	Revalidated int64 // refreshed by an origin 304
	StaleServed int64 // origin unreachable, stale copy served
	Coalesced   int64 // followers that shared a single-flight fetch
	Client304   int64 // client If-None-Match answered by the edge
	Passthrough int64 // relayed uncached (APKs, 4xx)
	Evictions   int64 // entries evicted by the policy
	Errors      int64 // 502s: origin down with nothing stale to serve

	OriginRequests int64 // logical origin fetches (retries not counted)
	OriginBytes    int64 // body bytes fetched from the origin (200s)
	ServedBytes    int64 // body bytes written to clients

	PrefetchFills int64 // entries filled by the warmer
	PrefetchHits  int64 // warm-filled entries later hit by a client

	Entries int   // resident documents
	Bytes   int64 // resident body bytes
	Policy  string
}

// Stats snapshots the counters plus the resident cache size.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	entries := s.pol.Len()
	bytes := s.pol.Cost()
	s.mu.Unlock()
	s.st.entriesG.Set(int64(entries))
	s.st.bytesG.Set(bytes)
	return Stats{
		Requests:       s.st.requests.Value(),
		Hits:           s.st.hits.Value(),
		Misses:         s.st.misses.Value(),
		Revalidated:    s.st.revalidated.Value(),
		StaleServed:    s.st.staleServed.Value(),
		Coalesced:      s.st.coalesced.Value(),
		Client304:      s.st.client304.Value(),
		Passthrough:    s.st.passthrough.Value(),
		Evictions:      s.st.evictions.Value(),
		Errors:         s.st.errors.Value(),
		OriginRequests: s.st.originReqs.Value(),
		OriginBytes:    s.st.originBytes.Value(),
		ServedBytes:    s.st.servedBytes.Value(),
		PrefetchFills:  s.st.prefetchFills.Value(),
		PrefetchHits:   s.st.prefetchHits.Value(),
		Entries:        entries,
		Bytes:          bytes,
		Policy:         s.pol.Name(),
	}
}

// HitRate is the percentage of client requests served fresh from cache
// with no origin round-trip at all.
func (st Stats) HitRate() float64 {
	if st.Requests == 0 {
		return 0
	}
	return 100 * float64(st.Hits) / float64(st.Requests)
}

// CacheServeRate is the percentage of client requests answered from the
// edge's store — fresh hits, 304-refreshed revalidations, and stale
// serves — rather than by relaying an origin body.
func (st Stats) CacheServeRate() float64 {
	if st.Requests == 0 {
		return 0
	}
	return 100 * float64(st.Hits+st.Revalidated+st.StaleServed) / float64(st.Requests)
}

// OriginOffload is the percentage of client requests that caused no
// origin fetch.
func (st Stats) OriginOffload() float64 {
	if st.Requests == 0 {
		return 0
	}
	off := 100 * (1 - float64(st.OriginRequests)/float64(st.Requests))
	if off < 0 {
		off = 0
	}
	return off
}

// ByteOffload compares bytes served to clients against bytes pulled from
// the origin: 90 means the origin shipped a tenth of what clients read.
func (st Stats) ByteOffload() float64 {
	if st.ServedBytes == 0 {
		return 0
	}
	off := 100 * (1 - float64(st.OriginBytes)/float64(st.ServedBytes))
	if off < 0 {
		off = 0
	}
	return off
}
