package gzipx

import (
	"bytes"
	"testing"
)

func TestCompressRoundTrip(t *testing.T) {
	src := bytes.Repeat([]byte(`{"id":1,"name":"slideme-app-00001"}`), 64)
	gz := Compress(src)
	if len(gz) >= len(src) {
		t.Fatalf("repetitive JSON did not compress: %d >= %d", len(gz), len(src))
	}
	got, err := Decompress(gz)
	if err != nil {
		t.Fatalf("Decompress: %v", err)
	}
	if !bytes.Equal(got, src) {
		t.Fatal("round trip not byte-identical")
	}
}

func TestDecompressDamage(t *testing.T) {
	gz := Compress([]byte(`{"apps":[1,2,3,4,5,6,7,8,9,10]}`))
	// Header damage (the chaos injector zeroes bytes [2,6), mangling the
	// compression-method byte), payload damage, and truncation must all
	// surface as errors — never as silently wrong bytes.
	hdr := append([]byte(nil), gz...)
	hdr[2], hdr[3] = 0, 0
	if _, err := Decompress(hdr); err == nil {
		t.Fatal("mangled header accepted")
	}
	crc := append([]byte(nil), gz...)
	crc[len(crc)-5] ^= 0xff
	if _, err := Decompress(crc); err == nil {
		t.Fatal("mangled checksum accepted")
	}
	if _, err := Decompress(gz[:len(gz)-8]); err == nil {
		t.Fatal("truncated stream accepted")
	}
	if _, err := Decompress(nil); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestAcceptsGzip(t *testing.T) {
	cases := []struct {
		ae   string
		want bool
	}{
		{"", false},
		{"gzip", true},
		{"GZIP", true},
		{" gzip ", true},
		{"gzip, deflate, br", true},
		{"deflate, gzip;q=1.0", true},
		{"br;q=1.0, gzip;q=0.5", true},
		{"gzip;q=0", false},
		{"gzip; q=0", false},
		{"gzip;q=0.000", false},
		{"gzip;q=0.001", true},
		{"deflate", false},
		{"identity", false},
		{"*", false},
		{"x-gzip-ish", false},
		{"notgzip", false},
		{"deflate;q=1, gzip;q=0, br", false},
	}
	for _, c := range cases {
		if got := AcceptsGzip(c.ae); got != c.want {
			t.Errorf("AcceptsGzip(%q) = %v, want %v", c.ae, got, c.want)
		}
	}
}

func TestAcceptsGzipZeroAlloc(t *testing.T) {
	if n := testing.AllocsPerRun(200, func() {
		AcceptsGzip("br;q=1.0, gzip;q=0.5, deflate")
	}); n != 0 {
		t.Fatalf("AcceptsGzip allocates %.1f/op", n)
	}
}
