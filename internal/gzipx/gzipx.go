// Package gzipx is the one place the module touches compress/gzip: pooled
// compressors for snapshot-time pre-compression (storeserver), pooled
// decompressors for fill-time validation (edgecache) and transparent
// client-side decoding (resilient), and the Accept-Encoding negotiation
// scan every tier shares. Nothing here allocates on a steady-state serving
// path — compression happens once per content version, decompression once
// per origin fill or crawl fetch, and AcceptsGzip is a pure byte scan.
package gzipx

import (
	"bytes"
	"compress/gzip"
	"sync"
)

var writerPool = sync.Pool{New: func() any {
	// DefaultCompression: the bytes ship many times per compress (documents
	// are compressed once per content version and served for a whole
	// simulated day), so wire size wins over compressor speed.
	zw, _ := gzip.NewWriterLevel(nil, gzip.DefaultCompression)
	return zw
}}

var readerPool = sync.Pool{New: func() any { return new(gzip.Reader) }}

var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// Compress returns src gzip-compressed into a fresh exactly-sized slice.
// The writer and scratch buffer are pooled; only the returned copy escapes.
func Compress(src []byte) []byte {
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	zw := writerPool.Get().(*gzip.Writer)
	zw.Reset(buf)
	zw.Write(src) //nolint:errcheck // bytes.Buffer cannot fail
	zw.Close()    //nolint:errcheck // bytes.Buffer cannot fail
	out := append(make([]byte, 0, buf.Len()), buf.Bytes()...)
	writerPool.Put(zw)
	bufPool.Put(buf)
	return out
}

// Decompress inflates a whole gzip stream into a fresh slice. Any framing,
// checksum, or truncation damage surfaces as the error — callers treat it
// exactly like an undecodable body (re-fetch), never as data.
func Decompress(src []byte) ([]byte, error) {
	zr := readerPool.Get().(*gzip.Reader)
	if err := zr.Reset(bytes.NewReader(src)); err != nil {
		readerPool.Put(zr)
		return nil, err
	}
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	_, err := buf.ReadFrom(zr)
	if err == nil {
		err = zr.Close() // surfaces the trailing CRC/length check
	}
	var out []byte
	if err == nil {
		out = append(make([]byte, 0, buf.Len()), buf.Bytes()...)
	}
	bufPool.Put(buf)
	readerPool.Put(zr)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// AcceptsGzip reports whether an Accept-Encoding header value admits gzip:
// a "gzip" token (case-insensitive, optional parameters) whose q-value is
// not zero. A pure scan over the input — no splitting, no allocation —
// because the server consults it on every hot-path request. The wildcard
// "*" is deliberately not treated as gzip consent: every client we care
// about (Go's transport, curl, browsers, the edge tier) names gzip
// explicitly, and identity is always a correct answer.
func AcceptsGzip(ae string) bool {
	for i := 0; i < len(ae); {
		// One comma-separated element: [start, end).
		start := i
		for i < len(ae) && ae[i] != ',' {
			i++
		}
		end := i
		i++ // skip the comma
		// Trim surrounding spaces/tabs.
		for start < end && (ae[start] == ' ' || ae[start] == '\t') {
			start++
		}
		for end > start && (ae[end-1] == ' ' || ae[end-1] == '\t') {
			end--
		}
		// Split off ";parameters".
		tokEnd := start
		for tokEnd < end && ae[tokEnd] != ';' {
			tokEnd++
		}
		te := tokEnd
		for te > start && (ae[te-1] == ' ' || ae[te-1] == '\t') {
			te--
		}
		if !tokenIsGzip(ae[start:te]) {
			continue
		}
		if qZero(ae[tokEnd:end]) {
			continue
		}
		return true
	}
	return false
}

func tokenIsGzip(tok string) bool {
	if len(tok) != 4 {
		return false
	}
	return (tok[0]|0x20) == 'g' && (tok[1]|0x20) == 'z' &&
		(tok[2]|0x20) == 'i' && (tok[3]|0x20) == 'p'
}

// qZero reports whether params (";q=0", ";q=0.000", possibly with spaces)
// assigns a zero quality. Anything unparseable counts as non-zero — the
// safe default is "client accepts it".
func qZero(params string) bool {
	for i := 0; i < len(params); i++ {
		if params[i] != 'q' && params[i] != 'Q' {
			continue
		}
		j := i + 1
		for j < len(params) && (params[j] == ' ' || params[j] == '\t') {
			j++
		}
		if j >= len(params) || params[j] != '=' {
			continue
		}
		j++
		for j < len(params) && (params[j] == ' ' || params[j] == '\t') {
			j++
		}
		if j >= len(params) || params[j] != '0' {
			return false
		}
		// "0", "0.", "0.0", "0.00", "0.000" are zero; any non-zero digit
		// after the point means a tiny-but-positive q.
		for j++; j < len(params); j++ {
			c := params[j]
			if c == '.' || c == '0' {
				continue
			}
			if c >= '1' && c <= '9' {
				return false
			}
			break // end of the q value (space, comma handled by caller, etc.)
		}
		return true
	}
	return false
}
