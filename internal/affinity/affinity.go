// Package affinity implements the paper's temporal-affinity analysis (§4):
// turning per-user comment streams into app strings and category strings,
// the affinity metric at arbitrary depth (Eq. 1 and Eq. 3), and the exact
// random-walk baselines (Eq. 2 and Eq. 4) computed from the store's actual
// category-size distribution.
package affinity

import (
	"fmt"
	"sort"

	"planetapps/internal/stats"
)

// CompressAppString removes successive duplicates from a per-user app
// sequence, producing the paper's "app string": a1 a2 a3 a3 a1 a4 becomes
// a1 a2 a3 a1 a4. (The paper suppresses only successive repeats of the same
// app, not all repeats.)
func CompressAppString[T comparable](seq []T) []T {
	out := make([]T, 0, len(seq))
	for i, v := range seq {
		if i > 0 && v == seq[i-1] {
			continue
		}
		out = append(out, v)
	}
	return out
}

// CategoryString maps an app string to its category string using the
// supplied app→category lookup.
func CategoryString[T comparable, C comparable](apps []T, categoryOf func(T) C) []C {
	out := make([]C, len(apps))
	for i, a := range apps {
		out[i] = categoryOf(a)
	}
	return out
}

// Affinity computes the depth-d temporal affinity of a category string
// (Eq. 3): the fraction of elements, among those with at least d
// predecessors, whose category matches at least one of its previous d
// elements. Depth 1 reduces to Eq. 1. It returns (0, false) when the
// string is too short (n <= d) to define the metric.
func Affinity[C comparable](cats []C, depth int) (float64, bool) {
	n := len(cats)
	if depth < 1 || n <= depth {
		return 0, false
	}
	matches := 0
	for i := depth; i < n; i++ {
		for k := 1; k <= depth; k++ {
			if cats[i] == cats[i-k] {
				matches++
				break
			}
		}
	}
	return float64(matches) / float64(n-depth), true
}

// RandomWalkAffinity computes the exact probability that two independent
// uniformly random app choices fall in the same category (Eq. 2), given
// the per-category app counts: sum_i A(i)*(A(i)-1) / (A*(A-1)).
func RandomWalkAffinity(categorySizes []int) float64 {
	var a float64
	for _, s := range categorySizes {
		a += float64(s)
	}
	if a < 2 {
		return 0
	}
	num := 0.0
	for _, s := range categorySizes {
		num += float64(s) * (float64(s) - 1)
	}
	return num / (a * (a - 1))
}

// RandomWalkAffinityDepth computes the random-walk baseline for depth d
// (Eq. 4): the probability that a uniformly random app shares its category
// with at least one of the previous d uniformly random distinct apps,
//
//	sum_i A(i)*(A(i)-1) * d * prod_{k=2..d}(A-k)  /  prod_{k=0..d}(A-k)
//
// which reduces to Eq. 2 at d = 1.
func RandomWalkAffinityDepth(categorySizes []int, depth int) float64 {
	if depth < 1 {
		return 0
	}
	var a float64
	for _, s := range categorySizes {
		a += float64(s)
	}
	if a < float64(depth)+1 {
		return 0
	}
	num := 0.0
	for _, s := range categorySizes {
		num += float64(s) * (float64(s) - 1)
	}
	num *= float64(depth)
	for k := 2; k <= depth; k++ {
		num *= a - float64(k)
	}
	den := 1.0
	for k := 0; k <= depth; k++ {
		den *= a - float64(k)
	}
	p := num / den
	if p > 1 {
		p = 1
	}
	return p
}

// UserAffinity is the per-user affinity measurement at one depth.
type UserAffinity struct {
	// User identifies the user.
	User int32
	// Comments is the length of the user's compressed app string.
	Comments int
	// Affinity is the measured affinity value.
	Affinity float64
}

// GroupPoint summarizes the affinity of all users with the same comment
// count — one point of Figure 6.
type GroupPoint struct {
	// Comments is the group's comment count i; the group is G(i).
	Comments int
	// N is the number of users in the group.
	N int
	// Mean is the group's average affinity.
	Mean float64
	// CI95 is the half-width of the 95% confidence interval on the mean.
	CI95 float64
}

// GroupByComments groups per-user affinities by comment count and returns
// the mean and 95% CI per group, ordered by comment count ascending. Groups
// with fewer than minSamples users are dropped — the paper uses this to
// exclude spammy outlier groups ("we plotted only the groups that had more
// than 10 samples").
func GroupByComments(users []UserAffinity, minSamples int) []GroupPoint {
	byCount := map[int][]float64{}
	for _, u := range users {
		byCount[u.Comments] = append(byCount[u.Comments], u.Affinity)
	}
	counts := make([]int, 0, len(byCount))
	for c, vals := range byCount {
		if len(vals) >= minSamples {
			counts = append(counts, c)
		}
	}
	sort.Ints(counts)
	out := make([]GroupPoint, 0, len(counts))
	for _, c := range counts {
		mean, ci := stats.MeanCI95(byCount[c])
		out = append(out, GroupPoint{Comments: c, N: len(byCount[c]), Mean: mean, CI95: ci})
	}
	return out
}

// Analysis is the full temporal-affinity study of a comment dataset at the
// requested depths, the content of Figures 6 and 7.
type Analysis struct {
	// Depths lists the analyzed depth levels (e.g. 1, 2, 3).
	Depths []int
	// PerUser[d] holds the per-user affinities at Depths[d].
	PerUser [][]UserAffinity
	// Groups[d] holds the grouped means at Depths[d].
	Groups [][]GroupPoint
	// RandomWalk[d] is the random-walk baseline at Depths[d].
	RandomWalk []float64
	// OverallMean[d] is the mean affinity across users at Depths[d].
	OverallMean []float64
	// Medians[d] is the median per-user affinity at Depths[d].
	Medians []float64
}

// Analyze measures temporal affinity at each depth for every user's
// category string. categoryStrings maps user → compressed category string;
// categorySizes gives the store's per-category app counts for the
// random-walk baselines; minSamples filters grouped points (Figure 6 uses
// 10). Users whose strings are too short for a depth are skipped at that
// depth, matching the paper's treatment.
func Analyze(categoryStrings map[int32][]int, categorySizes []int, depths []int, minSamples int) (*Analysis, error) {
	if len(depths) == 0 {
		return nil, fmt.Errorf("affinity: no depths requested")
	}
	for _, d := range depths {
		if d < 1 {
			return nil, fmt.Errorf("affinity: invalid depth %d", d)
		}
	}
	a := &Analysis{
		Depths:      append([]int(nil), depths...),
		PerUser:     make([][]UserAffinity, len(depths)),
		Groups:      make([][]GroupPoint, len(depths)),
		RandomWalk:  make([]float64, len(depths)),
		OverallMean: make([]float64, len(depths)),
		Medians:     make([]float64, len(depths)),
	}
	// Deterministic user order.
	users := make([]int32, 0, len(categoryStrings))
	for u := range categoryStrings {
		users = append(users, u)
	}
	sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })

	for di, d := range depths {
		a.RandomWalk[di] = RandomWalkAffinityDepth(categorySizes, d)
		var vals []float64
		for _, u := range users {
			cats := categoryStrings[u]
			aff, ok := Affinity(cats, d)
			if !ok {
				continue
			}
			a.PerUser[di] = append(a.PerUser[di], UserAffinity{User: u, Comments: len(cats), Affinity: aff})
			vals = append(vals, aff)
		}
		a.Groups[di] = GroupByComments(a.PerUser[di], minSamples)
		a.OverallMean[di] = stats.Mean(vals)
		a.Medians[di] = stats.Median(vals)
	}
	return a, nil
}

// CDF returns the empirical CDF of per-user affinities at depth index di
// (an index into Depths, not a depth value) — one Figure 7 curve.
func (a *Analysis) CDF(di int) *stats.ECDF {
	vals := make([]float64, len(a.PerUser[di]))
	for i, u := range a.PerUser[di] {
		vals[i] = u.Affinity
	}
	return stats.NewECDF(vals)
}
