package affinity

import (
	"math"
	"testing"
	"testing/quick"

	"planetapps/internal/rng"
)

func TestCompressAppString(t *testing.T) {
	got := CompressAppString([]int{1, 2, 3, 3, 1, 4})
	want := []int{1, 2, 3, 1, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if len(CompressAppString([]int{})) != 0 {
		t.Fatal("empty input should stay empty")
	}
	if got := CompressAppString([]int{7, 7, 7}); len(got) != 1 || got[0] != 7 {
		t.Fatalf("all-equal input compressed to %v", got)
	}
}

func TestCompressOnlySuccessive(t *testing.T) {
	// Non-adjacent repeats are retained (the paper keeps a1..a1..).
	got := CompressAppString([]int{1, 2, 1})
	if len(got) != 3 {
		t.Fatalf("non-adjacent repeat removed: %v", got)
	}
}

func TestCategoryString(t *testing.T) {
	cats := map[string]int{"a": 1, "b": 2}
	got := CategoryString([]string{"a", "b", "a"}, func(s string) int { return cats[s] })
	want := []int{1, 2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestAffinityPaperExamples(t *testing.T) {
	// The paper's worked examples for depth 1:
	// c1c1c1c1 -> 3/3, c1c1c1c2 -> 2/3, c1c1c2c3 -> 1/3.
	cases := []struct {
		cats []int
		want float64
	}{
		{[]int{1, 1, 1, 1}, 1},
		{[]int{1, 1, 1, 2}, 2.0 / 3},
		{[]int{1, 1, 2, 3}, 1.0 / 3},
		{[]int{1, 2, 1, 2}, 0}, // oscillation invisible at depth 1
	}
	for _, c := range cases {
		got, ok := Affinity(c.cats, 1)
		if !ok {
			t.Fatalf("Affinity(%v, 1) not defined", c.cats)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("Affinity(%v, 1) = %v, want %v", c.cats, got, c.want)
		}
	}
}

func TestAffinityDepthSeesOscillation(t *testing.T) {
	// c1c2c1c2 has affinity 0 at depth 1 but full affinity at depth 2 —
	// the paper's motivation for the depth notion.
	cats := []int{1, 2, 1, 2}
	d2, ok := Affinity(cats, 2)
	if !ok {
		t.Fatal("depth-2 affinity undefined for length-4 string")
	}
	if d2 != 1 {
		t.Fatalf("depth-2 affinity = %v, want 1", d2)
	}
}

func TestAffinityUndefinedForShortStrings(t *testing.T) {
	if _, ok := Affinity([]int{1}, 1); ok {
		t.Fatal("length-1 string should have undefined affinity")
	}
	if _, ok := Affinity([]int{1, 2}, 2); ok {
		t.Fatal("depth-2 affinity needs length > 2")
	}
	if _, ok := Affinity([]int{1, 2}, 0); ok {
		t.Fatal("depth 0 should be rejected")
	}
}

func TestAffinityMonotoneInDepth(t *testing.T) {
	// For any string, affinity never decreases as depth grows (matching
	// "affinity increases with depth level").
	r := rng.New(4)
	if err := quick.Check(func(seed uint16) bool {
		n := 5 + r.Intn(20)
		cats := make([]int, n)
		for i := range cats {
			cats[i] = r.Intn(5)
		}
		prev := -1.0
		for d := 1; d <= 3; d++ {
			a, ok := Affinity(cats, d)
			if !ok {
				return false
			}
			// Different denominators allow tiny decreases; check the
			// match-set monotonicity via a small tolerance on n-d scaling.
			if a+0.35 < prev {
				return false
			}
			prev = a
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomWalkAffinity(t *testing.T) {
	// Two categories of sizes 2 and 2: A=4. num = 2*1 + 2*1 = 4.
	// den = 4*3 = 12 -> 1/3.
	got := RandomWalkAffinity([]int{2, 2})
	if math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("RandomWalkAffinity = %v, want 1/3", got)
	}
	// Equal-volume C categories approach 1/C for large sizes.
	got = RandomWalkAffinity([]int{1000, 1000, 1000, 1000})
	if math.Abs(got-0.25) > 0.001 {
		t.Fatalf("4 equal categories: %v, want ~0.25", got)
	}
	if RandomWalkAffinity([]int{1}) != 0 {
		t.Fatal("single-app store should yield 0")
	}
}

func TestRandomWalkAffinityDepthReducesToEq2(t *testing.T) {
	sizes := []int{10, 20, 30, 5}
	d1 := RandomWalkAffinityDepth(sizes, 1)
	eq2 := RandomWalkAffinity(sizes)
	if math.Abs(d1-eq2) > 1e-12 {
		t.Fatalf("depth-1 baseline %v != Eq.2 %v", d1, eq2)
	}
}

func TestRandomWalkAffinityDepthIncreases(t *testing.T) {
	sizes := []int{100, 150, 200, 80, 120}
	prev := 0.0
	for d := 1; d <= 4; d++ {
		p := RandomWalkAffinityDepth(sizes, d)
		if p <= prev {
			t.Fatalf("baseline at depth %d = %v, not above depth %d = %v", d, p, d-1, prev)
		}
		if p > 1 {
			t.Fatalf("baseline %v exceeds 1", p)
		}
		prev = p
	}
}

func TestRandomWalkAffinityDepthApproximation(t *testing.T) {
	// Eq. 4 scales linearly with depth for large stores: for C equal
	// categories the depth-d baseline is ~ d/C. The paper's own Anzhi
	// baselines follow this (0.14, 0.28, 0.42 for depths 1, 2, 3).
	sizes := []int{5000, 5000, 5000, 5000, 5000}
	for d := 1; d <= 3; d++ {
		got := RandomWalkAffinityDepth(sizes, d)
		want := float64(d) / 5
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("depth %d: %v, want ~%v", d, got, want)
		}
	}
}

func TestGroupByComments(t *testing.T) {
	users := []UserAffinity{
		{User: 1, Comments: 5, Affinity: 0.5},
		{User: 2, Comments: 5, Affinity: 0.7},
		{User: 3, Comments: 9, Affinity: 0.2},
	}
	groups := GroupByComments(users, 2)
	if len(groups) != 1 {
		t.Fatalf("got %d groups, want 1 (min samples filter)", len(groups))
	}
	g := groups[0]
	if g.Comments != 5 || g.N != 2 || math.Abs(g.Mean-0.6) > 1e-12 {
		t.Fatalf("group = %+v", g)
	}
	all := GroupByComments(users, 1)
	if len(all) != 2 || all[0].Comments != 5 || all[1].Comments != 9 {
		t.Fatalf("unfiltered groups = %+v", all)
	}
}

// synthesizeStrings builds category strings with a planted switching
// probability: with probability stay the next comment repeats the previous
// category, otherwise a uniformly random category is chosen.
func synthesizeStrings(r *rng.RNG, users, cats int, stay float64, minLen, maxLen int) map[int32][]int {
	out := make(map[int32][]int, users)
	for u := 0; u < users; u++ {
		n := minLen + r.Intn(maxLen-minLen+1)
		s := make([]int, n)
		s[0] = r.Intn(cats)
		for i := 1; i < n; i++ {
			if r.Bool(stay) {
				s[i] = s[i-1]
			} else {
				s[i] = r.Intn(cats)
			}
		}
		out[int32(u)] = s
	}
	return out
}

func TestAnalyzeRecoversPlantedAffinity(t *testing.T) {
	r := rng.New(99)
	const cats = 20
	const stay = 0.5
	strings := synthesizeStrings(r, 3000, cats, stay, 4, 30)
	sizes := make([]int, cats)
	for i := range sizes {
		sizes[i] = 100
	}
	a, err := Analyze(strings, sizes, []int{1, 2, 3}, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Depth-1 expected affinity = stay + (1-stay)/cats.
	want := stay + (1-stay)/cats
	if math.Abs(a.OverallMean[0]-want) > 0.03 {
		t.Fatalf("depth-1 mean = %v, want ~%v", a.OverallMean[0], want)
	}
	// Affinity should exceed the random-walk baseline by a wide margin.
	if a.OverallMean[0] < 3*a.RandomWalk[0] {
		t.Fatalf("depth-1 mean %v not well above baseline %v", a.OverallMean[0], a.RandomWalk[0])
	}
	// Deeper levels increase both measured affinity and baseline.
	for d := 1; d < 3; d++ {
		if a.OverallMean[d] < a.OverallMean[d-1]-0.02 {
			t.Fatalf("mean affinity decreased with depth: %v", a.OverallMean)
		}
		if a.RandomWalk[d] <= a.RandomWalk[d-1] {
			t.Fatalf("baseline not increasing: %v", a.RandomWalk)
		}
	}
}

func TestAnalyzeRandomUsersMatchBaseline(t *testing.T) {
	// Users who wander uniformly should measure affinity ~ the random-walk
	// baseline.
	r := rng.New(123)
	const cats = 10
	strings := synthesizeStrings(r, 4000, cats, 0, 10, 20)
	sizes := make([]int, cats)
	for i := range sizes {
		sizes[i] = 500
	}
	a, err := Analyze(strings, sizes, []int{1}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.OverallMean[0]-a.RandomWalk[0]) > 0.02 {
		t.Fatalf("random users measure %v, baseline %v", a.OverallMean[0], a.RandomWalk[0])
	}
}

func TestAnalyzeDeterministic(t *testing.T) {
	r := rng.New(7)
	strings := synthesizeStrings(r, 200, 5, 0.6, 3, 10)
	sizes := []int{10, 10, 10, 10, 10}
	a1, err := Analyze(strings, sizes, []int{1, 2}, 5)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Analyze(strings, sizes, []int{1, 2}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for d := range a1.Depths {
		if a1.OverallMean[d] != a2.OverallMean[d] || a1.Medians[d] != a2.Medians[d] {
			t.Fatal("Analyze is not deterministic")
		}
		if len(a1.PerUser[d]) != len(a2.PerUser[d]) {
			t.Fatal("per-user lists differ")
		}
	}
}

func TestAnalyzeErrors(t *testing.T) {
	if _, err := Analyze(nil, []int{1}, nil, 1); err == nil {
		t.Fatal("no depths accepted")
	}
	if _, err := Analyze(nil, []int{1}, []int{0}, 1); err == nil {
		t.Fatal("depth 0 accepted")
	}
}

func TestAnalysisCDF(t *testing.T) {
	r := rng.New(17)
	strings := synthesizeStrings(r, 500, 8, 0.7, 4, 12)
	sizes := []int{50, 50, 50, 50, 50, 50, 50, 50}
	a, err := Analyze(strings, sizes, []int{1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	cdf := a.CDF(0)
	if cdf.Len() != len(a.PerUser[0]) {
		t.Fatalf("CDF over %d samples, want %d", cdf.Len(), len(a.PerUser[0]))
	}
	if cdf.At(1) != 1 {
		t.Fatal("CDF at affinity 1 should be 1")
	}
}
