// Package comments generates and processes per-user comment streams,
// substituting for the Anzhi comment dataset the paper's §4 analysis uses.
//
// The generator plants the behaviours the paper measured so the affinity
// pipeline can recover them: users comment on apps they downloaded, user
// download sequences exhibit the clustering effect (temporal category
// affinity), comment counts are heavy-tailed with 99% of users under ~30
// comments, and a small population of spam users posts hundreds of
// comments via automated scripts.
package comments

import (
	"fmt"
	"sort"
	"time"

	"planetapps/internal/catalog"
	"planetapps/internal/dist"
	"planetapps/internal/rng"
)

// Comment is one user comment with a rating, as crawled from a store's
// per-app comment pages.
type Comment struct {
	User catalog.UserID
	App  catalog.AppID
	// Rating is a 1-5 star rating; the paper only trusts comments that
	// carry one as download evidence.
	Rating int8
	// Time is the comment's timestamp.
	Time time.Time
}

// GenConfig controls comment-stream generation.
type GenConfig struct {
	// Users is the number of commenting users.
	Users int
	// MeanComments is the mean number of comments per ordinary user; the
	// per-user count is geometric, giving the heavy right tail of
	// Figure 5(a).
	MeanComments float64
	// ClusterP is the probability that a user's next commented app comes
	// from the category of a previous one (the clustering effect).
	ClusterP float64
	// ZipfApp is the within-category Zipf exponent for app selection.
	ZipfApp float64
	// SpamFraction is the share of users that are spam posters.
	SpamFraction float64
	// SpamComments is the mean number of comments posted by a spam user.
	SpamComments float64
	// Days spreads timestamps across this many days from the catalog start.
	Days int
	// RatingOmitP is the probability a comment carries no rating (rating 0);
	// such comments are dropped by the paper's filter.
	RatingOmitP float64
}

// DefaultGenConfig returns parameters calibrated to the paper's Anzhi
// observations: 92% of users under 10 comments, ~2% above 20, spam users
// posting hundreds.
func DefaultGenConfig(users int) GenConfig {
	return GenConfig{
		Users:        users,
		MeanComments: 3.5,
		ClusterP:     0.55,
		ZipfApp:      1.1,
		SpamFraction: 0.003,
		SpamComments: 300,
		Days:         60,
		RatingOmitP:  0.1,
	}
}

// Validate reports the first invalid field.
func (g GenConfig) Validate() error {
	if g.Users < 1 {
		return fmt.Errorf("comments: Users = %d", g.Users)
	}
	if g.MeanComments <= 0 {
		return fmt.Errorf("comments: MeanComments = %v", g.MeanComments)
	}
	if g.ClusterP < 0 || g.ClusterP > 1 {
		return fmt.Errorf("comments: ClusterP = %v", g.ClusterP)
	}
	if g.SpamFraction < 0 || g.SpamFraction > 1 {
		return fmt.Errorf("comments: SpamFraction = %v", g.SpamFraction)
	}
	if g.Days < 1 {
		return fmt.Errorf("comments: Days = %d", g.Days)
	}
	return nil
}

// Generate produces a time-ordered comment stream over the catalog's apps.
// Ordinary users follow the clustering effect: each subsequent comment is
// on an app from the category of a previous comment with probability
// ClusterP. Spam users post rapid-fire comments on random apps, mimicking
// the automated posters the paper detected and filtered.
func Generate(c *catalog.Catalog, cfg GenConfig, seed uint64) ([]Comment, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if c.NumApps() == 0 {
		return nil, fmt.Errorf("comments: empty catalog")
	}
	r := rng.New(seed)

	// Per-category Zipf samplers over the category's rank-ordered members,
	// shared across categories of equal size.
	bySize := map[int]*dist.Zipf{}
	catZipf := make([]*dist.Zipf, len(c.Categories))
	var nonEmpty []catalog.CategoryID
	weights := make([]float64, len(c.Categories))
	for i := range c.Categories {
		n := len(c.Categories[i].Apps)
		if n == 0 {
			continue
		}
		z, ok := bySize[n]
		if !ok {
			var err error
			z, err = dist.NewZipf(n, cfg.ZipfApp)
			if err != nil {
				return nil, err
			}
			bySize[n] = z
		}
		catZipf[i] = z
		nonEmpty = append(nonEmpty, catalog.CategoryID(i))
		weights[i] = float64(n)
	}
	if len(nonEmpty) == 0 {
		return nil, fmt.Errorf("comments: catalog has no populated categories")
	}
	catPick := dist.MustCategorical(weights)

	pickInCategory := func(cat catalog.CategoryID) catalog.AppID {
		members := c.Categories[cat].Apps
		return members[catZipf[cat].Sample(r)-1]
	}
	pickAnywhere := func() catalog.AppID {
		return pickInCategory(catalog.CategoryID(catPick.Sample(r)))
	}

	dayDur := 24 * time.Hour
	var out []Comment
	for u := 0; u < cfg.Users; u++ {
		uid := catalog.UserID(u)
		if r.Bool(cfg.SpamFraction) {
			// Spam user: a burst of comments within a few hours, random
			// apps, fixed rating (scripted).
			n := 1 + r.Poisson(cfg.SpamComments)
			start := c.Start.Add(time.Duration(r.Intn(cfg.Days)) * dayDur)
			for k := 0; k < n; k++ {
				out = append(out, Comment{
					User:   uid,
					App:    pickAnywhere(),
					Rating: 5,
					Time:   start.Add(time.Duration(k) * 30 * time.Second),
				})
			}
			continue
		}
		n := 1 + dist.Geometric(r, 1/(cfg.MeanComments))
		var history []catalog.AppID
		when := c.Start.Add(time.Duration(r.Intn(cfg.Days)) * dayDur).
			Add(time.Duration(r.Intn(86400)) * time.Second)
		for k := 0; k < n; k++ {
			var app catalog.AppID
			if len(history) > 0 && r.Bool(cfg.ClusterP) {
				prev := history[r.Intn(len(history))]
				app = pickInCategory(c.CategoryOf(prev))
			} else {
				app = pickAnywhere()
			}
			history = append(history, app)
			rating := int8(1 + r.Intn(5))
			if r.Bool(cfg.RatingOmitP) {
				rating = 0
			}
			out = append(out, Comment{User: uid, App: app, Rating: rating, Time: when})
			// Inter-comment gaps of hours to days.
			when = when.Add(time.Duration(1+r.Intn(72)) * time.Hour)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time.Before(out[j].Time) })
	return out, nil
}

// Filter applies the paper's cleaning rules to a raw comment stream:
// comments without a rating are dropped (ratings indicate actual
// downloads), and users with more than maxComments comments are discarded
// as spam. It returns the surviving comments in input order.
func Filter(cs []Comment, maxComments int) []Comment {
	perUser := map[catalog.UserID]int{}
	for _, c := range cs {
		if c.Rating > 0 {
			perUser[c.User]++
		}
	}
	out := make([]Comment, 0, len(cs))
	for _, c := range cs {
		if c.Rating <= 0 {
			continue
		}
		if maxComments > 0 && perUser[c.User] > maxComments {
			continue
		}
		out = append(out, c)
	}
	return out
}

// AppStrings builds per-user compressed app strings (successive duplicate
// comments on the same app suppressed) from a time-ordered comment stream.
func AppStrings(cs []Comment) map[int32][]catalog.AppID {
	raw := map[int32][]catalog.AppID{}
	for _, c := range cs {
		u := int32(c.User)
		s := raw[u]
		if len(s) > 0 && s[len(s)-1] == c.App {
			continue
		}
		raw[u] = append(s, c.App)
	}
	return raw
}

// CategoryStrings maps per-user app strings to category strings using the
// catalog's classification.
func CategoryStrings(c *catalog.Catalog, appStrings map[int32][]catalog.AppID) map[int32][]int {
	out := make(map[int32][]int, len(appStrings))
	for u, apps := range appStrings {
		s := make([]int, len(apps))
		for i, a := range apps {
			s[i] = int(c.CategoryOf(a))
		}
		out[u] = s
	}
	return out
}

// PerUserCounts returns the number of comments per user.
func PerUserCounts(cs []Comment) map[catalog.UserID]int {
	out := map[catalog.UserID]int{}
	for _, c := range cs {
		out[c.User]++
	}
	return out
}

// UniqueCategoriesPerUser returns, per user, the number of distinct
// categories the user commented on (Figure 5b).
func UniqueCategoriesPerUser(c *catalog.Catalog, cs []Comment) map[catalog.UserID]int {
	sets := map[catalog.UserID]map[catalog.CategoryID]struct{}{}
	for _, cm := range cs {
		s := sets[cm.User]
		if s == nil {
			s = map[catalog.CategoryID]struct{}{}
			sets[cm.User] = s
		}
		s[c.CategoryOf(cm.App)] = struct{}{}
	}
	out := make(map[catalog.UserID]int, len(sets))
	for u, s := range sets {
		out[u] = len(s)
	}
	return out
}

// TopKShare returns, averaged over users with at least two distinct apps
// commented, the percentage of each user's comments that fall in the
// user's top-k categories, for k = 1..maxK (Figure 5c).
func TopKShare(c *catalog.Catalog, cs []Comment, maxK int) []float64 {
	type userAgg struct {
		perCat map[catalog.CategoryID]int
		apps   map[catalog.AppID]struct{}
		total  int
	}
	users := map[catalog.UserID]*userAgg{}
	for _, cm := range cs {
		u := users[cm.User]
		if u == nil {
			u = &userAgg{perCat: map[catalog.CategoryID]int{}, apps: map[catalog.AppID]struct{}{}}
			users[cm.User] = u
		}
		u.perCat[c.CategoryOf(cm.App)]++
		u.apps[cm.App] = struct{}{}
		u.total++
	}
	// Accumulate in sorted user order: float addition is not associative,
	// so summing in map-iteration order would make the result vary run to
	// run.
	ids := make([]catalog.UserID, 0, len(users))
	for id := range users {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	sums := make([]float64, maxK)
	n := 0
	for _, id := range ids {
		u := users[id]
		if len(u.apps) < 2 {
			// The paper excludes users that commented on a single app.
			continue
		}
		counts := make([]int, 0, len(u.perCat))
		for _, v := range u.perCat {
			counts = append(counts, v)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(counts)))
		cum := 0
		for k := 0; k < maxK; k++ {
			if k < len(counts) {
				cum += counts[k]
			}
			sums[k] += float64(cum) / float64(u.total)
		}
		n++
	}
	if n == 0 {
		return sums
	}
	for k := range sums {
		sums[k] = 100 * sums[k] / float64(n)
	}
	return sums
}

// DownloadsPerCategory returns each category's share (percent) of total
// comments, a proxy for the per-category download distribution of
// Figure 5(d), sorted descending.
func DownloadsPerCategory(c *catalog.Catalog, cs []Comment) []float64 {
	counts := make([]float64, len(c.Categories))
	total := 0.0
	for _, cm := range cs {
		counts[c.CategoryOf(cm.App)]++
		total++
	}
	if total == 0 {
		return counts
	}
	for i := range counts {
		counts[i] = 100 * counts[i] / total
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(counts)))
	return counts
}
