package comments

import (
	"math"
	"sort"
	"testing"

	"planetapps/internal/affinity"
	"planetapps/internal/catalog"
)

func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	p := catalog.Profiles["anzhi"].Scale(0.1)
	c, err := catalog.Generate(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGenerateDeterministic(t *testing.T) {
	c := testCatalog(t)
	cfg := DefaultGenConfig(500)
	a, err := Generate(c, cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(c, cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("comment %d differs", i)
		}
	}
}

func TestGenerateTimeOrdered(t *testing.T) {
	c := testCatalog(t)
	cs, err := Generate(c, DefaultGenConfig(300), 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(cs); i++ {
		if cs[i].Time.Before(cs[i-1].Time) {
			t.Fatalf("comments out of order at %d", i)
		}
	}
}

func TestGenerateCommentCountTail(t *testing.T) {
	// Figure 5(a): most users post few comments; 99% post <= ~30.
	c := testCatalog(t)
	cfg := DefaultGenConfig(3000)
	cs, err := Generate(c, cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	counts := PerUserCounts(Filter(cs, 0))
	var vals []float64
	for _, n := range counts {
		vals = append(vals, float64(n))
	}
	sort.Float64s(vals)
	p99 := vals[int(0.99*float64(len(vals)))]
	if p99 > 60 {
		t.Fatalf("99th percentile comment count = %v, want modest", p99)
	}
	// The raw stream should include spam users far above that.
	raw := PerUserCounts(cs)
	maxN := 0
	for _, n := range raw {
		if n > maxN {
			maxN = n
		}
	}
	if maxN < 100 {
		t.Fatalf("max raw comment count = %d, expected spam users with hundreds", maxN)
	}
}

func TestFilterDropsSpamAndUnrated(t *testing.T) {
	c := testCatalog(t)
	cfg := DefaultGenConfig(2000)
	cs, err := Generate(c, cfg, 13)
	if err != nil {
		t.Fatal(err)
	}
	filtered := Filter(cs, 80)
	if len(filtered) >= len(cs) {
		t.Fatal("filter removed nothing")
	}
	counts := PerUserCounts(filtered)
	for u, n := range counts {
		if n > 80 {
			t.Fatalf("user %d kept %d comments after filter", u, n)
		}
	}
	for _, cm := range filtered {
		if cm.Rating <= 0 {
			t.Fatal("unrated comment survived filter")
		}
	}
}

func TestAppStringsCompressSuccessive(t *testing.T) {
	c := testCatalog(t)
	cs := []Comment{
		{User: 1, App: 10, Rating: 5, Time: c.Start},
		{User: 1, App: 10, Rating: 4, Time: c.Start.Add(1)},
		{User: 1, App: 20, Rating: 3, Time: c.Start.Add(2)},
		{User: 1, App: 10, Rating: 3, Time: c.Start.Add(3)},
	}
	s := AppStrings(cs)
	got := s[1]
	if len(got) != 3 || got[0] != 10 || got[1] != 20 || got[2] != 10 {
		t.Fatalf("app string = %v", got)
	}
}

func TestClusteringEffectRecoverable(t *testing.T) {
	// End-to-end §4 check: generate comments with planted ClusterP, run
	// the affinity pipeline, and verify measured affinity near the plant
	// and far above the random-walk baseline.
	c := testCatalog(t)
	cfg := DefaultGenConfig(4000)
	cfg.ClusterP = 0.55
	cs, err := Generate(c, cfg, 17)
	if err != nil {
		t.Fatal(err)
	}
	filtered := Filter(cs, 80)
	catStrings := CategoryStrings(c, AppStrings(filtered))
	an, err := affinity.Analyze(catStrings, c.CategorySizes(), []int{1, 2, 3}, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Measured depth-1 affinity should be near the planted stay
	// probability (plus a small random-match term).
	if an.OverallMean[0] < 0.4 || an.OverallMean[0] > 0.75 {
		t.Fatalf("depth-1 affinity = %v, want near planted 0.55", an.OverallMean[0])
	}
	if an.OverallMean[0] < 2.5*an.RandomWalk[0] {
		t.Fatalf("affinity %v not well above baseline %v", an.OverallMean[0], an.RandomWalk[0])
	}
	// Medians grow with depth (Figure 7: 0.5, 0.58, 0.67).
	if !(an.Medians[0] <= an.Medians[1]+0.05 && an.Medians[1] <= an.Medians[2]+0.05) {
		t.Fatalf("medians not increasing with depth: %v", an.Medians)
	}
}

func TestUniqueCategoriesPerUser(t *testing.T) {
	// Figure 5(b): with the clustering effect most users touch few
	// categories.
	c := testCatalog(t)
	cfg := DefaultGenConfig(3000)
	cs, err := Generate(c, cfg, 19)
	if err != nil {
		t.Fatal(err)
	}
	uniq := UniqueCategoriesPerUser(c, Filter(cs, 80))
	total, small := 0, 0
	for _, n := range uniq {
		total++
		if n <= 5 {
			small++
		}
	}
	if frac := float64(small) / float64(total); frac < 0.8 {
		t.Fatalf("only %.0f%% of users within 5 categories; want most", frac*100)
	}
}

func TestTopKShare(t *testing.T) {
	c := testCatalog(t)
	cfg := DefaultGenConfig(3000)
	cs, err := Generate(c, cfg, 23)
	if err != nil {
		t.Fatal(err)
	}
	shares := TopKShare(c, Filter(cs, 80), 5)
	if len(shares) != 5 {
		t.Fatalf("got %d shares", len(shares))
	}
	for k := 1; k < len(shares); k++ {
		if shares[k] < shares[k-1] {
			t.Fatalf("top-k share not monotone: %v", shares)
		}
	}
	if shares[0] < 40 || shares[0] > 95 {
		t.Fatalf("top-1 share = %v%%, want a majority (paper: 66%%)", shares[0])
	}
	if shares[4] < 85 {
		t.Fatalf("top-5 share = %v%%, want ~95%%", shares[4])
	}
}

func TestDownloadsPerCategoryNoDominant(t *testing.T) {
	c := testCatalog(t)
	cfg := DefaultGenConfig(4000)
	cs, err := Generate(c, cfg, 29)
	if err != nil {
		t.Fatal(err)
	}
	shares := DownloadsPerCategory(c, Filter(cs, 80))
	sum := 0.0
	for _, s := range shares {
		sum += s
	}
	if math.Abs(sum-100) > 1e-6 {
		t.Fatalf("shares sum to %v", sum)
	}
	if shares[0] > 40 {
		t.Fatalf("dominant category holds %v%% of comments; want no dominant category", shares[0])
	}
}

func TestGenerateErrors(t *testing.T) {
	c := testCatalog(t)
	bad := DefaultGenConfig(0)
	if _, err := Generate(c, bad, 1); err == nil {
		t.Fatal("zero users accepted")
	}
	bad = DefaultGenConfig(10)
	bad.ClusterP = 2
	if _, err := Generate(c, bad, 1); err == nil {
		t.Fatal("bad ClusterP accepted")
	}
	bad = DefaultGenConfig(10)
	bad.Days = 0
	if _, err := Generate(c, bad, 1); err == nil {
		t.Fatal("zero days accepted")
	}
}
