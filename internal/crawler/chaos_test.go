package crawler

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"planetapps/internal/catalog"
	"planetapps/internal/comments"
	"planetapps/internal/db"
	"planetapps/internal/faultinject"
	"planetapps/internal/marketsim"
	"planetapps/internal/proxy"
	"planetapps/internal/storeserver"
)

// chaosStore builds a small store, optionally fronted by a fault injector.
func chaosStore(t *testing.T, inj *faultinject.Injector) *httptest.Server {
	t.Helper()
	mcfg := marketsim.DefaultConfig(catalog.Profiles["slideme"].Scale(0.05))
	mcfg.Days = 10
	m, err := marketsim.New(mcfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	srv := storeserver.New(m, storeserver.Config{PageSize: 40})
	cs, err := comments.Generate(m.Catalog(), comments.DefaultGenConfig(60), 2)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetComments(cs)
	if inj != nil {
		srv.SetChaos(inj)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// canonical renders a database in a deterministic form: apps sorted by ID
// (as db.Apps already returns them) and comments sorted — worker
// interleaving varies run to run, so insertion order cannot take part in
// the byte-identity check, but the *set* of rows must.
func canonical(t *testing.T, d *db.DB) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, a := range d.Apps() {
		if err := enc.Encode(a); err != nil {
			t.Fatal(err)
		}
	}
	cs := d.Comments()
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].App != cs[j].App {
			return cs[i].App < cs[j].App
		}
		if cs[i].User != cs[j].User {
			return cs[i].User < cs[j].User
		}
		return cs[i].UnixTime < cs[j].UnixTime
	})
	for _, c := range cs {
		if err := enc.Encode(c); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// crawlOnce runs one CrawlDay into a fresh database and returns it with
// the session stats.
func crawlOnce(t *testing.T, cfg Config) (*db.DB, Stats) {
	t.Helper()
	d := db.New()
	c, err := New(cfg, d)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	st, err := c.CrawlDay(ctx)
	if err != nil {
		t.Fatalf("crawl failed: %v (client stats %+v)", err, c.client.Stats())
	}
	return d, st
}

// TestCrawlConvergesUnderChaos is the acceptance test for the whole
// chaos/resilience stack: for every built-in fault scenario, a crawl
// through the injector must converge to a database byte-identical to a
// fault-free crawl of the same store. Faults may cost retries, hedges, and
// time — never data.
func TestCrawlConvergesUnderChaos(t *testing.T) {
	baseline := func(t *testing.T) []byte {
		ts := chaosStore(t, nil)
		cfg := DefaultConfig(ts.URL)
		cfg.RatePerSec = 0
		cfg.FetchComments = true
		d, _ := crawlOnce(t, cfg)
		return canonical(t, d)
	}

	scenarios := []string{"latency", "error-burst", "resets", "corruption", "rate-limit-storm", "slow-loris"}
	for _, name := range scenarios {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			want := baseline(t)
			sc, err := faultinject.Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			// Shrink injected delays so the latency/loris scenarios stay
			// test-speed; probabilities and windows are untouched.
			inj := faultinject.New(sc.Scale(0.2), 0xC4A05EED, nil)
			ts := chaosStore(t, inj)

			cfg := DefaultConfig(ts.URL)
			cfg.RatePerSec = 0
			cfg.FetchComments = true
			// Storm drains are covered by the client's Retry-After budget
			// (hinted rejections don't spend MaxRetries); this only needs to
			// absorb the unhinted faults — resets, corruption, plain 500s.
			cfg.MaxRetries = 12
			cfg.HedgeAfter = 60 * time.Millisecond
			d, st := crawlOnce(t, cfg)

			if got := canonical(t, d); !bytes.Equal(got, want) {
				t.Fatalf("crawl under %q diverged from fault-free crawl (%d vs %d canonical bytes)",
					name, len(got), len(want))
			}
			if inj.InjectedTotal() == 0 {
				t.Fatalf("scenario %q injected nothing; the crawl was never exercised", name)
			}
			t.Logf("%s: %d faults injected, %d attempts, %d retries, %d hedges (%d wins), %d invalid bodies, %d breaker opens",
				name, inj.InjectedTotal(), st.Requests, st.Client.Retries,
				st.Client.Hedges, st.Client.HedgeWins, st.Client.InvalidBodies, st.Client.BreakerOpens)
		})
	}
}

// TestCrawlConvergesThroughPartitionedProxies covers the per-node fleet
// scenario: node 0 dead (every relay reset), node 1 dropping half. The
// health-scored selector must rotate around the dead node and the crawl
// must still converge byte-identically.
func TestCrawlConvergesThroughPartitionedProxies(t *testing.T) {
	want := func(t *testing.T) []byte {
		ts := chaosStore(t, nil)
		cfg := DefaultConfig(ts.URL)
		cfg.RatePerSec = 0
		cfg.FetchComments = true
		d, _ := crawlOnce(t, cfg)
		return canonical(t, d)
	}(t)

	ts := chaosStore(t, nil)
	sc, err := faultinject.Lookup("proxy-partition")
	if err != nil {
		t.Fatal(err)
	}
	var urls []string
	for i := 0; i < 3; i++ {
		p := proxy.New("node", "cn")
		// Each fleet node gets its own injector: rules scoped by Node
		// fire only on the matching node, so node 2 stays healthy.
		inj := faultinject.NewForNode(sc, 0xF1EE7, i, nil)
		psrv := httptest.NewServer(inj.Wrap(p.Handler()))
		t.Cleanup(psrv.Close)
		urls = append(urls, psrv.URL)
	}
	pool, err := proxy.NewPool(urls)
	if err != nil {
		t.Fatal(err)
	}

	cfg := DefaultConfig(ts.URL)
	cfg.RatePerSec = 0
	cfg.FetchComments = true
	cfg.Proxies = pool
	cfg.MaxRetries = 12
	d, st := crawlOnce(t, cfg)

	if got := canonical(t, d); !bytes.Equal(got, want) {
		t.Fatalf("partitioned-proxy crawl diverged from direct crawl (%d vs %d canonical bytes)", len(got), len(want))
	}
	if st.Client.ProxyDemotions == 0 {
		t.Fatal("dead node was never demoted; health scoring inactive")
	}
	t.Logf("partition: %d attempts, %d retries, %d hedges (%d wins), %d demotions",
		st.Requests, st.Client.Retries, st.Client.Hedges, st.Client.HedgeWins, st.Client.ProxyDemotions)
}

// TestChaosCrawlDeterministicInjection pins the reproducibility claim:
// the same scenario, seed, and request sequence injects the same faults.
// Two naive single-worker crawls (no hedging — hedges race wall-clock
// time, which is exactly what a determinism check must exclude) against
// identically seeded stores observe identical injection counts.
func TestChaosCrawlDeterministicInjection(t *testing.T) {
	run := func() (int64, []byte) {
		sc, err := faultinject.Lookup("error-burst")
		if err != nil {
			t.Fatal(err)
		}
		inj := faultinject.New(sc.Scale(0.2), 1234, nil)
		ts := chaosStore(t, inj)
		cfg := DefaultConfig(ts.URL)
		cfg.RatePerSec = 0
		cfg.Workers = 1
		cfg.Naive = true
		cfg.MaxRetries = 30
		d, _ := crawlOnce(t, cfg)
		return inj.InjectedTotal(), canonical(t, d)
	}
	n1, db1 := run()
	n2, db2 := run()
	if n1 != n2 {
		t.Fatalf("same seed injected %d faults in run 1, %d in run 2", n1, n2)
	}
	if n1 == 0 {
		t.Fatal("no faults injected")
	}
	if !bytes.Equal(db1, db2) {
		t.Fatal("identically seeded runs produced different databases")
	}
}
