// Package crawler implements the paper's data-collection pipeline
// (Figure 1): concurrent HTTP crawlers that walk a store's app listing,
// fetch per-app detail and comment pages, rotate requests across a proxy
// pool, respect per-store politeness limits with retry/backoff, and
// persist daily statistics into the local crawl database.
//
// The crawl speaks the store's /api/v1 surface: the listing is walked by
// opaque cursor (stable across day-rolls, unlike page numbers) by one
// sequential feeder, while per-app work — comments, APKs — fans out to
// parallel workers. All HTTP goes through an internal/resilient client,
// which supplies full-jitter backoff with Retry-After honoring, a
// per-host circuit breaker, hedged requests, AIMD admission control,
// response-body decode validation with re-fetch, and per-proxy health
// rotation; cfg.Naive strips the hedging/breaker/AIMD extras for A/B
// comparison under chaos.
package crawler

import (
	"container/list"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"planetapps/internal/db"
	"planetapps/internal/metrics"
	"planetapps/internal/proxy"
	"planetapps/internal/resilient"
	"planetapps/internal/storeserver"
)

// Config controls a crawl session.
type Config struct {
	// BaseURL is the store's root URL, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Workers is the number of concurrent per-app fetchers.
	Workers int
	// RatePerSec bounds the crawler's aggregate request rate ("we designed
	// our crawlers to comply with the thresholds set by each appstore");
	// <= 0 disables the limiter. Retries and hedges spend the same budget.
	RatePerSec float64
	// MaxRetries is the per-request retry budget for 429/5xx/transport
	// errors and damaged payloads.
	MaxRetries int
	// Backoff is the base of the full-jitter retry schedule.
	Backoff time.Duration
	// Proxies optionally routes requests through a proxy pool. Unless
	// Naive, selection is health-scored: nodes are demoted after repeated
	// transport failures and probed back in after a cooldown.
	Proxies *proxy.Pool
	// FetchComments enables per-app comment crawling.
	FetchComments bool
	// FetchAPKs enables package downloads. Each (app, version) pair is
	// fetched exactly once across the crawler's lifetime ("we download
	// each app version only once, so we do not affect the actual number
	// of downloads" — and the simulated store indeed does not count them).
	FetchAPKs bool
	// Timeout bounds each HTTP attempt.
	Timeout time.Duration
	// HedgeAfter launches a duplicate of an attempt still in flight after
	// this long, first completion winning (0 disables). Hedging converts
	// injected tail-latency spikes into near-median fetches.
	HedgeAfter time.Duration
	// Naive strips the resilience extras — no hedging, no circuit
	// breaker, no AIMD admission, no proxy health scoring — leaving plain
	// retry/backoff. The chaos benchmark's baseline.
	Naive bool
	// DisableGzip turns off compressed transfer. By default the crawler
	// asks the store for gzip and inflates (and CRC-checks) responses in
	// the resilient retry loop, cutting wire bytes on the dominant
	// JSON-transfer cost; disabling it restores identity transfer for
	// A/B comparison. Either way the ingested documents are identical.
	DisableGzip bool
	// CondCacheSize bounds the per-URL conditional-GET cache (entries);
	// least-recently-used entries are evicted past the cap. <= 0 uses a
	// default of 65536 — comfortably above one crawl pass of the test
	// stores, so eviction only kicks in on long multi-store sessions.
	CondCacheSize int
	// Metrics optionally wires the crawler's counters (requests, 304
	// revalidation hits, conditional-cache evictions) plus the resilient
	// client's fault/recovery counters into a registry.
	Metrics *metrics.Registry
}

// DefaultConfig returns a configuration suited to the in-process store:
// hedging, breaker, and AIMD on (Naive turns them back off).
func DefaultConfig(baseURL string) Config {
	return Config{
		BaseURL:    baseURL,
		Workers:    8,
		RatePerSec: 150,
		MaxRetries: 5,
		Backoff:    20 * time.Millisecond,
		Timeout:    10 * time.Second,
		HedgeAfter: 150 * time.Millisecond,
	}
}

// Stats summarizes one crawl session.
type Stats struct {
	// Day is the store day the crawl observed.
	Day int
	// Apps is the number of app records upserted.
	Apps int
	// Comments is the number of new comments stored.
	Comments int
	// APKs is the number of new app packages fetched.
	APKs int
	// APKBytes is the number of package bytes transferred.
	APKBytes int64
	// Requests counts HTTP attempts issued (retries and hedges included).
	Requests int64
	// Retries counts retried requests.
	Retries int64
	// NotModified counts JSON requests the store answered with 304 from a
	// revalidated ETag — payloads the crawler skipped, the metadata
	// counterpart of the version-aware APK dedup.
	NotModified int64
	// NotModifiedRate is NotModified/Requests — the conditional-GET hit
	// rate. With content-version ETags it approximates the store's
	// unchanged fraction; near zero it means the crawler is paying full
	// transfer for a mostly static catalog.
	NotModifiedRate float64
	// CondEvictions counts conditional-cache entries dropped by the LRU
	// cap; each eviction turns a would-be 304 back into a full transfer.
	CondEvictions int64
	// Client snapshots the resilient client's recovery activity: hedges
	// and hedge wins, breaker opens, Retry-After waits, invalid bodies
	// re-fetched, AIMD decreases, proxy demotions, latency quantiles.
	Client resilient.Stats
}

// Crawler crawls one store into a database.
type Crawler struct {
	cfg    Config
	client *resilient.Client
	health *resilient.ProxyHealth
	db     *db.DB

	mu          sync.Mutex
	notModified int64

	// cond caches the last validated (ETag, body) per JSON URL so repeat
	// crawls can revalidate with If-None-Match and decode the cached bytes
	// on 304 — the same skip-unchanged-payloads discipline the APK path
	// gets from HasAPK. The cache is LRU-bounded at cfg.CondCacheSize
	// entries (a long-lived crawler visiting many stores would otherwise
	// grow it without bound); condLRU orders entries by last touch,
	// front = most recent.
	condMu        sync.Mutex
	cond          map[string]*list.Element
	condLRU       *list.List
	condEvictions int64

	rateMu sync.Mutex
	tokens float64
	last   time.Time

	// Optional registry-backed counters (nil without cfg.Metrics); the
	// resilient client registers its own counters alongside.
	mRequests    *metrics.Counter
	mNotModified *metrics.Counter
	mEvictions   *metrics.Counter

	// sessionRequests tracks attempts already attributed to previous
	// CrawlDay calls, so mRequests advances by per-session deltas.
	sessionRequests int64
}

type condEntry struct {
	url  string
	etag string
	body []byte
}

// condGet returns the cached validator for url, marking it most recently
// used.
func (c *Crawler) condGet(url string) (condEntry, bool) {
	c.condMu.Lock()
	defer c.condMu.Unlock()
	el, ok := c.cond[url]
	if !ok {
		return condEntry{}, false
	}
	c.condLRU.MoveToFront(el)
	return el.Value.(condEntry), true
}

// condPut stores a validated (etag, body) for url, evicting the least
// recently used entry when the cache is full.
func (c *Crawler) condPut(url, etag string, body []byte) {
	c.condMu.Lock()
	defer c.condMu.Unlock()
	if el, ok := c.cond[url]; ok {
		el.Value = condEntry{url: url, etag: etag, body: body}
		c.condLRU.MoveToFront(el)
		return
	}
	for len(c.cond) >= c.cfg.CondCacheSize {
		oldest := c.condLRU.Back()
		if oldest == nil {
			break
		}
		c.condLRU.Remove(oldest)
		delete(c.cond, oldest.Value.(condEntry).url)
		c.condEvictions++
		if c.mEvictions != nil {
			c.mEvictions.Inc()
		}
	}
	c.cond[url] = c.condLRU.PushFront(condEntry{url: url, etag: etag, body: body})
}

// New creates a crawler writing into the given database.
func New(cfg Config, database *db.DB) (*Crawler, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("crawler: empty base URL")
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 20 * time.Millisecond
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.CondCacheSize <= 0 {
		cfg.CondCacheSize = 65536
	}
	c := &Crawler{
		cfg:     cfg,
		db:      database,
		cond:    map[string]*list.Element{},
		condLRU: list.New(),
		tokens:  cfg.RatePerSec,
		last:    time.Now(),
	}
	transport := &http.Transport{
		MaxIdleConnsPerHost: cfg.Workers,
	}
	rcfg := resilient.Config{
		Transport:      transport,
		MaxRetries:     cfg.MaxRetries,
		BaseBackoff:    cfg.Backoff,
		AttemptTimeout: cfg.Timeout,
		AcceptGzip:     !cfg.DisableGzip,
		PreAttempt:     c.waitRate,
		UserAgent:      "planetapps-crawler/1.0",
		Metrics:        cfg.Metrics,
	}
	if !cfg.Naive {
		rcfg.HedgeAfter = cfg.HedgeAfter
		rcfg.Breaker = &resilient.BreakerConfig{}
		rcfg.AIMD = &resilient.AIMDConfig{Max: float64(2 * cfg.Workers)}
	}
	if cfg.Proxies != nil {
		if cfg.Naive {
			transport.Proxy = cfg.Proxies.ProxyFunc()
		} else {
			c.health = resilient.NewProxyHealth(cfg.Proxies, resilient.ProxyHealthConfig{}, nil, cfg.Metrics)
			transport.Proxy = c.health.ProxyFunc()
			rcfg.ProxyHealth = c.health
		}
	}
	c.client = resilient.New(rcfg)
	if cfg.Metrics != nil {
		c.mRequests = cfg.Metrics.Counter("crawler_requests_total")
		c.mNotModified = cfg.Metrics.Counter("crawler_not_modified_total")
		c.mEvictions = cfg.Metrics.Counter("crawler_cond_evictions_total")
	}
	return c, nil
}

// DB returns the crawler's database.
func (c *Crawler) DB() *db.DB { return c.db }

// waitRate blocks until the aggregate token bucket grants a request. It is
// the resilient client's PreAttempt hook, so retries and hedges pay the
// same politeness cost as first attempts.
func (c *Crawler) waitRate(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if c.cfg.RatePerSec <= 0 {
		return nil
	}
	for {
		c.rateMu.Lock()
		now := time.Now()
		c.tokens += now.Sub(c.last).Seconds() * c.cfg.RatePerSec
		if c.tokens > c.cfg.RatePerSec {
			c.tokens = c.cfg.RatePerSec
		}
		c.last = now
		if c.tokens >= 1 {
			c.tokens--
			c.rateMu.Unlock()
			return nil
		}
		need := (1 - c.tokens) / c.cfg.RatePerSec
		c.rateMu.Unlock()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Duration(need * float64(time.Second))):
		}
	}
}

// getJSON fetches a URL through the resilient client, decoding the JSON
// response into out. Decoding runs as the client's body validator, so a
// truncated or corrupted payload — injected chaos or a real flaky proxy —
// is counted, discarded, and re-fetched instead of ingested. When a
// previous fetch of the same URL carried an ETag the request revalidates
// with If-None-Match, and a 304 answer decodes the cached body instead of
// transferring a fresh payload.
func (c *Crawler) getJSON(ctx context.Context, url string, out any) error {
	cached, haveCached := c.condGet(url)
	var hdr http.Header
	if haveCached {
		hdr = http.Header{"If-None-Match": []string{cached.etag}}
	}
	res, err := c.client.Get(ctx, url, hdr, func(r *resilient.Result) error {
		if r.Status == http.StatusNotModified {
			if !haveCached {
				return fmt.Errorf("crawler: 304 for %s with no cached body", url)
			}
			return json.Unmarshal(cached.body, out)
		}
		return json.Unmarshal(r.Body, out)
	})
	if err != nil {
		return err
	}
	if res.Status == http.StatusNotModified {
		c.mu.Lock()
		c.notModified++
		c.mu.Unlock()
		if c.mNotModified != nil {
			c.mNotModified.Inc()
		}
		return nil
	}
	if etag := res.Header.Get("ETag"); etag != "" {
		c.condPut(url, etag, res.Body)
	}
	return nil
}

// getBytes fetches a URL with the same resilience discipline as getJSON,
// discarding the body but returning its length — used for APK downloads,
// where only transfer accounting matters to the analyses.
func (c *Crawler) getBytes(ctx context.Context, url string) (int64, error) {
	res, err := c.client.Get(ctx, url, nil, nil)
	if err != nil {
		return 0, err
	}
	return int64(len(res.Body)), nil
}

// CrawlDay performs one full crawl pass: store stats, the cursor-walked
// app listing, and (optionally) per-app comments and packages, recording a
// DailyStat per app under the store's current day.
//
// The listing walk is sequential — each slice's next_cursor feeds the next
// request — while per-app work fans out to cfg.Workers parallel fetchers.
// Cursor anchors are app IDs, so a day-roll mid-crawl cannot skip or
// duplicate an app (the storeserver test suite pins this property); the
// convergence guarantee under chaos is that the database after a crawl is
// byte-identical to one crawled without faults.
func (c *Crawler) CrawlDay(ctx context.Context) (Stats, error) {
	var stats storeserver.StatsJSON
	if err := c.getJSON(ctx, c.cfg.BaseURL+"/api/v1/stats", &stats); err != nil {
		return Stats{}, err
	}
	day := stats.Day

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var crawlErr error
	var errOnce sync.Once
	fail := func(err error) { errOnce.Do(func() { crawlErr = err; cancel() }) }

	var appCount, commentCount, apkCount, apkBytes int64
	var countMu sync.Mutex

	// Per-app side work (comments, APKs), fanned out to workers.
	apps := make(chan storeserver.AppJSON, c.cfg.Workers*2)
	var wg sync.WaitGroup
	for w := 0; w < c.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for a := range apps {
				if err := c.crawlApp(ctx, day, a, &commentCount, &apkCount, &apkBytes, &countMu); err != nil {
					fail(err)
					return
				}
			}
		}()
	}

	// Sequential cursor walk over the listing. Each slice is ingested
	// inline (the upsert is cheap); per-app fetches go to the workers.
	cursor := ""
walk:
	for {
		var page storeserver.CursorPageJSON
		url := c.cfg.BaseURL + "/api/v1/apps?cursor=" + cursor
		if err := c.getJSON(ctx, url, &page); err != nil {
			fail(err)
			break
		}
		for _, a := range page.Apps {
			c.db.UpsertApp(db.AppRecord{
				ID: a.ID, Name: a.Name, Category: a.Category,
				Developer: a.Developer, Paid: a.Paid, Price: a.Price,
				HasAds: a.HasAds,
			}, db.DailyStat{
				Day: day, Downloads: a.Downloads, Version: a.Version, Price: a.Price,
			})
			countMu.Lock()
			appCount++
			countMu.Unlock()
			if c.cfg.FetchComments || c.cfg.FetchAPKs {
				select {
				case apps <- a:
				case <-ctx.Done():
					break walk
				}
			}
		}
		if page.NextCursor == "" {
			break
		}
		cursor = page.NextCursor
	}
	close(apps)
	wg.Wait()
	if crawlErr != nil {
		return Stats{}, crawlErr
	}
	if err := ctx.Err(); err != nil {
		return Stats{}, err
	}

	cs := c.client.Stats()
	if c.mRequests != nil {
		c.mRequests.Add(cs.Attempts - c.sessionRequests)
	}
	c.sessionRequests = cs.Attempts
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{
		Day:         day,
		Apps:        int(appCount),
		Comments:    int(commentCount),
		APKs:        int(apkCount),
		APKBytes:    apkBytes,
		Requests:    cs.Attempts,
		Retries:     cs.Retries,
		NotModified: c.notModified,
		Client:      cs,
	}
	if st.Requests > 0 {
		st.NotModifiedRate = float64(st.NotModified) / float64(st.Requests)
	}
	c.condMu.Lock()
	st.CondEvictions = c.condEvictions
	c.condMu.Unlock()
	return st, nil
}

// crawlApp fetches one app's comment stream and package as configured.
func (c *Crawler) crawlApp(ctx context.Context, day int, a storeserver.AppJSON, commentCount, apkCount, apkBytes *int64, countMu *sync.Mutex) error {
	if c.cfg.FetchComments {
		var cs []storeserver.CommentJSON
		url := fmt.Sprintf("%s/api/v1/apps/%d/comments", c.cfg.BaseURL, a.ID)
		if err := c.getJSON(ctx, url, &cs); err != nil {
			return err
		}
		for _, cm := range cs {
			if c.db.AddComment(db.CommentRecord{
				App: a.ID, User: cm.User, Rating: cm.Rating, UnixTime: cm.UnixTime,
			}) {
				countMu.Lock()
				*commentCount++
				countMu.Unlock()
			}
		}
	}
	if c.cfg.FetchAPKs && !c.db.HasAPK(a.ID, a.Version) {
		url := fmt.Sprintf("%s/api/v1/apps/%d/apk", c.cfg.BaseURL, a.ID)
		n, err := c.getBytes(ctx, url)
		if err != nil {
			return err
		}
		if c.db.RecordAPK(a.ID, a.Version, n) {
			countMu.Lock()
			*apkCount++
			*apkBytes += n
			countMu.Unlock()
		}
	}
	return nil
}
