// Package crawler implements the paper's data-collection pipeline
// (Figure 1): concurrent HTTP crawlers that walk a store's paginated app
// listing, fetch per-app detail and comment pages, rotate requests across
// a proxy pool, respect per-store politeness limits with retry/backoff,
// and persist daily statistics into the local crawl database.
package crawler

import (
	"container/list"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"planetapps/internal/db"
	"planetapps/internal/metrics"
	"planetapps/internal/proxy"
	"planetapps/internal/storeserver"
)

// Config controls a crawl session.
type Config struct {
	// BaseURL is the store's root URL, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Workers is the number of concurrent fetchers.
	Workers int
	// RatePerSec bounds the crawler's aggregate request rate ("we designed
	// our crawlers to comply with the thresholds set by each appstore");
	// <= 0 disables the limiter.
	RatePerSec float64
	// MaxRetries is the per-request retry budget for 429/5xx/transport
	// errors.
	MaxRetries int
	// Backoff is the initial retry delay, doubled per attempt.
	Backoff time.Duration
	// Proxies optionally routes requests through a rotating proxy pool.
	Proxies *proxy.Pool
	// FetchComments enables per-app comment crawling.
	FetchComments bool
	// FetchAPKs enables package downloads. Each (app, version) pair is
	// fetched exactly once across the crawler's lifetime ("we download
	// each app version only once, so we do not affect the actual number
	// of downloads" — and the simulated store indeed does not count them).
	FetchAPKs bool
	// Timeout bounds each HTTP request.
	Timeout time.Duration
	// CondCacheSize bounds the per-URL conditional-GET cache (entries);
	// least-recently-used entries are evicted past the cap. <= 0 uses a
	// default of 65536 — comfortably above one crawl pass of the test
	// stores, so eviction only kicks in on long multi-store sessions.
	CondCacheSize int
	// Metrics optionally wires the crawler's counters (requests, 304
	// revalidation hits, conditional-cache evictions) into a registry,
	// e.g. the one a co-located /metrics endpoint serves.
	Metrics *metrics.Registry
}

// DefaultConfig returns a configuration suited to the in-process store.
func DefaultConfig(baseURL string) Config {
	return Config{
		BaseURL:    baseURL,
		Workers:    8,
		RatePerSec: 150,
		MaxRetries: 5,
		Backoff:    20 * time.Millisecond,
		Timeout:    10 * time.Second,
	}
}

// Stats summarizes one crawl session.
type Stats struct {
	// Day is the store day the crawl observed.
	Day int
	// Apps is the number of app records upserted.
	Apps int
	// Comments is the number of new comments stored.
	Comments int
	// APKs is the number of new app packages fetched.
	APKs int
	// APKBytes is the number of package bytes transferred.
	APKBytes int64
	// Requests counts HTTP requests issued (including retries).
	Requests int64
	// Retries counts retried requests.
	Retries int64
	// NotModified counts JSON requests the store answered with 304 from a
	// revalidated ETag — payloads the crawler skipped, the metadata
	// counterpart of the version-aware APK dedup.
	NotModified int64
	// NotModifiedRate is NotModified/Requests — the conditional-GET hit
	// rate. With content-version ETags it approximates the store's
	// unchanged fraction; near zero it means the crawler is paying full
	// transfer for a mostly static catalog.
	NotModifiedRate float64
	// CondEvictions counts conditional-cache entries dropped by the LRU
	// cap; each eviction turns a would-be 304 back into a full transfer.
	CondEvictions int64
}

// Crawler crawls one store into a database.
type Crawler struct {
	cfg    Config
	client *http.Client
	db     *db.DB

	mu          sync.Mutex
	requests    int64
	retries     int64
	notModified int64

	// cond caches the last validated (ETag, body) per JSON URL so repeat
	// crawls can revalidate with If-None-Match and decode the cached bytes
	// on 304 — the same skip-unchanged-payloads discipline the APK path
	// gets from HasAPK. The cache is LRU-bounded at cfg.CondCacheSize
	// entries (a long-lived crawler visiting many stores would otherwise
	// grow it without bound); condLRU orders entries by last touch,
	// front = most recent.
	condMu        sync.Mutex
	cond          map[string]*list.Element
	condLRU       *list.List
	condEvictions int64

	rateMu sync.Mutex
	tokens float64
	last   time.Time

	// Optional registry-backed counters (nil without cfg.Metrics).
	mRequests    *metrics.Counter
	mNotModified *metrics.Counter
	mEvictions   *metrics.Counter
}

type condEntry struct {
	url  string
	etag string
	body []byte
}

// condGet returns the cached validator for url, marking it most recently
// used.
func (c *Crawler) condGet(url string) (condEntry, bool) {
	c.condMu.Lock()
	defer c.condMu.Unlock()
	el, ok := c.cond[url]
	if !ok {
		return condEntry{}, false
	}
	c.condLRU.MoveToFront(el)
	return el.Value.(condEntry), true
}

// condPut stores a validated (etag, body) for url, evicting the least
// recently used entry when the cache is full.
func (c *Crawler) condPut(url, etag string, body []byte) {
	c.condMu.Lock()
	defer c.condMu.Unlock()
	if el, ok := c.cond[url]; ok {
		el.Value = condEntry{url: url, etag: etag, body: body}
		c.condLRU.MoveToFront(el)
		return
	}
	for len(c.cond) >= c.cfg.CondCacheSize {
		oldest := c.condLRU.Back()
		if oldest == nil {
			break
		}
		c.condLRU.Remove(oldest)
		delete(c.cond, oldest.Value.(condEntry).url)
		c.condEvictions++
		if c.mEvictions != nil {
			c.mEvictions.Inc()
		}
	}
	c.cond[url] = c.condLRU.PushFront(condEntry{url: url, etag: etag, body: body})
}

// New creates a crawler writing into the given database.
func New(cfg Config, database *db.DB) (*Crawler, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("crawler: empty base URL")
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 20 * time.Millisecond
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.CondCacheSize <= 0 {
		cfg.CondCacheSize = 65536
	}
	transport := &http.Transport{
		MaxIdleConnsPerHost: cfg.Workers,
	}
	if cfg.Proxies != nil {
		transport.Proxy = cfg.Proxies.ProxyFunc()
	}
	c := &Crawler{
		cfg:     cfg,
		client:  &http.Client{Transport: transport, Timeout: cfg.Timeout},
		db:      database,
		cond:    map[string]*list.Element{},
		condLRU: list.New(),
		tokens:  cfg.RatePerSec,
		last:    time.Now(),
	}
	if cfg.Metrics != nil {
		c.mRequests = cfg.Metrics.Counter("crawler_requests_total")
		c.mNotModified = cfg.Metrics.Counter("crawler_not_modified_total")
		c.mEvictions = cfg.Metrics.Counter("crawler_cond_evictions_total")
	}
	return c, nil
}

// DB returns the crawler's database.
func (c *Crawler) DB() *db.DB { return c.db }

// waitRate blocks until the aggregate token bucket grants a request.
func (c *Crawler) waitRate(ctx context.Context) error {
	if c.cfg.RatePerSec <= 0 {
		return nil
	}
	for {
		c.rateMu.Lock()
		now := time.Now()
		c.tokens += now.Sub(c.last).Seconds() * c.cfg.RatePerSec
		if c.tokens > c.cfg.RatePerSec {
			c.tokens = c.cfg.RatePerSec
		}
		c.last = now
		if c.tokens >= 1 {
			c.tokens--
			c.rateMu.Unlock()
			return nil
		}
		need := (1 - c.tokens) / c.cfg.RatePerSec
		c.rateMu.Unlock()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Duration(need * float64(time.Second))):
		}
	}
}

// getJSON fetches a URL with politeness, retries, and backoff, decoding the
// JSON response into out. When a previous fetch of the same URL carried an
// ETag, the request revalidates with If-None-Match and a 304 answer decodes
// the cached body instead of transferring a fresh payload.
func (c *Crawler) getJSON(ctx context.Context, url string, out any) error {
	backoff := c.cfg.Backoff
	var lastErr error
	for attempt := 0; attempt <= c.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			c.mu.Lock()
			c.retries++
			c.mu.Unlock()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(backoff):
			}
			backoff *= 2
		}
		if err := c.waitRate(ctx); err != nil {
			return err
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return err
		}
		req.Header.Set("User-Agent", "planetapps-crawler/1.0")
		cached, haveCached := c.condGet(url)
		if haveCached {
			req.Header.Set("If-None-Match", cached.etag)
		}
		c.mu.Lock()
		c.requests++
		c.mu.Unlock()
		if c.mRequests != nil {
			c.mRequests.Inc()
		}
		resp, err := c.client.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		func() {
			defer resp.Body.Close()
			switch {
			case resp.StatusCode == http.StatusOK:
				body, err := io.ReadAll(resp.Body)
				if err != nil {
					lastErr = err
					return
				}
				if etag := resp.Header.Get("ETag"); etag != "" {
					c.condPut(url, etag, body)
				}
				lastErr = json.Unmarshal(body, out)
			case resp.StatusCode == http.StatusNotModified && haveCached:
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				c.mu.Lock()
				c.notModified++
				c.mu.Unlock()
				if c.mNotModified != nil {
					c.mNotModified.Inc()
				}
				lastErr = json.Unmarshal(cached.body, out)
			case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500:
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				lastErr = fmt.Errorf("crawler: %s returned %d", url, resp.StatusCode)
			default:
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				lastErr = &permanentError{fmt.Errorf("crawler: %s returned %d", url, resp.StatusCode)}
			}
		}()
		if lastErr == nil {
			return nil
		}
		if _, permanent := lastErr.(*permanentError); permanent {
			return lastErr
		}
	}
	return fmt.Errorf("crawler: giving up on %s: %w", url, lastErr)
}

type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// getBytes fetches a URL with the same politeness/retry discipline as
// getJSON, discarding the body but returning its length — used for APK
// downloads, where only transfer accounting matters to the analyses.
func (c *Crawler) getBytes(ctx context.Context, url string) (int64, error) {
	backoff := c.cfg.Backoff
	var lastErr error
	for attempt := 0; attempt <= c.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			c.mu.Lock()
			c.retries++
			c.mu.Unlock()
			select {
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-time.After(backoff):
			}
			backoff *= 2
		}
		if err := c.waitRate(ctx); err != nil {
			return 0, err
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return 0, err
		}
		req.Header.Set("User-Agent", "planetapps-crawler/1.0")
		c.mu.Lock()
		c.requests++
		c.mu.Unlock()
		resp, err := c.client.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		var n int64
		func() {
			defer resp.Body.Close()
			switch {
			case resp.StatusCode == http.StatusOK:
				n, lastErr = io.Copy(io.Discard, resp.Body)
			case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500:
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				lastErr = fmt.Errorf("crawler: %s returned %d", url, resp.StatusCode)
			default:
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				lastErr = &permanentError{fmt.Errorf("crawler: %s returned %d", url, resp.StatusCode)}
			}
		}()
		if lastErr == nil {
			return n, nil
		}
		if _, permanent := lastErr.(*permanentError); permanent {
			return 0, lastErr
		}
	}
	return 0, fmt.Errorf("crawler: giving up on %s: %w", url, lastErr)
}

// CrawlDay performs one full crawl pass: store stats, every listing page,
// and (optionally) per-app comments, recording a DailyStat per app under
// the store's current day.
func (c *Crawler) CrawlDay(ctx context.Context) (Stats, error) {
	var stats storeserver.StatsJSON
	if err := c.getJSON(ctx, c.cfg.BaseURL+"/api/stats", &stats); err != nil {
		return Stats{}, err
	}
	day := stats.Day

	// Fetch page 0 to learn the page count, then fan pages out to workers.
	var first storeserver.PageJSON
	if err := c.getJSON(ctx, fmt.Sprintf("%s/api/apps?page=0", c.cfg.BaseURL), &first); err != nil {
		return Stats{}, err
	}
	pages := make(chan int)
	var wg sync.WaitGroup
	var crawlErr error
	var errOnce sync.Once
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var appCount, commentCount, apkCount, apkBytes int64
	var countMu sync.Mutex

	ingestPage := func(p storeserver.PageJSON) error {
		for _, a := range p.Apps {
			c.db.UpsertApp(db.AppRecord{
				ID: a.ID, Name: a.Name, Category: a.Category,
				Developer: a.Developer, Paid: a.Paid, Price: a.Price,
				HasAds: a.HasAds,
			}, db.DailyStat{
				Day: day, Downloads: a.Downloads, Version: a.Version, Price: a.Price,
			})
			countMu.Lock()
			appCount++
			countMu.Unlock()
			if c.cfg.FetchComments {
				var cs []storeserver.CommentJSON
				url := fmt.Sprintf("%s/api/apps/%d/comments", c.cfg.BaseURL, a.ID)
				if err := c.getJSON(ctx, url, &cs); err != nil {
					return err
				}
				for _, cm := range cs {
					if c.db.AddComment(db.CommentRecord{
						App: a.ID, User: cm.User, Rating: cm.Rating, UnixTime: cm.UnixTime,
					}) {
						countMu.Lock()
						commentCount++
						countMu.Unlock()
					}
				}
			}
			if c.cfg.FetchAPKs && !c.db.HasAPK(a.ID, a.Version) {
				url := fmt.Sprintf("%s/api/apps/%d/apk", c.cfg.BaseURL, a.ID)
				n, err := c.getBytes(ctx, url)
				if err != nil {
					return err
				}
				if c.db.RecordAPK(a.ID, a.Version, n) {
					countMu.Lock()
					apkCount++
					apkBytes += n
					countMu.Unlock()
				}
			}
		}
		return nil
	}

	if err := ingestPage(first); err != nil {
		return Stats{}, err
	}
	for w := 0; w < c.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for page := range pages {
				var p storeserver.PageJSON
				url := fmt.Sprintf("%s/api/apps?page=%d", c.cfg.BaseURL, page)
				if err := c.getJSON(ctx, url, &p); err != nil {
					errOnce.Do(func() { crawlErr = err; cancel() })
					return
				}
				if err := ingestPage(p); err != nil {
					errOnce.Do(func() { crawlErr = err; cancel() })
					return
				}
			}
		}()
	}
feed:
	for page := 1; page < first.Pages; page++ {
		select {
		case pages <- page:
		case <-ctx.Done():
			break feed
		}
	}
	close(pages)
	wg.Wait()
	if crawlErr != nil {
		return Stats{}, crawlErr
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{
		Day:         day,
		Apps:        int(appCount),
		Comments:    int(commentCount),
		APKs:        int(apkCount),
		APKBytes:    apkBytes,
		Requests:    c.requests,
		Retries:     c.retries,
		NotModified: c.notModified,
	}
	if st.Requests > 0 {
		st.NotModifiedRate = float64(st.NotModified) / float64(st.Requests)
	}
	c.condMu.Lock()
	st.CondEvictions = c.condEvictions
	c.condMu.Unlock()
	return st, nil
}
