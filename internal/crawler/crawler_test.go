package crawler

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"planetapps/internal/catalog"
	"planetapps/internal/comments"
	"planetapps/internal/db"
	"planetapps/internal/marketsim"
	"planetapps/internal/proxy"
	"planetapps/internal/storeserver"
)

// testStore starts an in-process store with comments attached.
func testStore(t *testing.T, scfg storeserver.Config) (*storeserver.Server, *httptest.Server) {
	t.Helper()
	mcfg := marketsim.DefaultConfig(catalog.Profiles["slideme"].Scale(0.1))
	mcfg.Days = 10
	m, err := marketsim.New(mcfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	srv := storeserver.New(m, scfg)
	cs, err := comments.Generate(m.Catalog(), comments.DefaultGenConfig(100), 2)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetComments(cs)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func TestCrawlDay(t *testing.T) {
	_, ts := testStore(t, storeserver.Config{PageSize: 37})
	c, err := New(DefaultConfig(ts.URL), db.New())
	if err != nil {
		t.Fatal(err)
	}
	stats, err := c.CrawlDay(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Apps == 0 {
		t.Fatal("crawl found no apps")
	}
	if c.DB().NumApps() != stats.Apps {
		t.Fatalf("db has %d apps, stats claim %d", c.DB().NumApps(), stats.Apps)
	}
	// Every record carries a day-0 stat.
	for _, rec := range c.DB().Apps() {
		if len(rec.Daily) != 1 || rec.Daily[0].Day != stats.Day {
			t.Fatalf("record %d daily = %+v", rec.ID, rec.Daily)
		}
		if rec.Category == "" || rec.Developer == "" {
			t.Fatalf("record %d missing metadata", rec.ID)
		}
	}
}

func TestCrawlWithComments(t *testing.T) {
	_, ts := testStore(t, storeserver.Config{PageSize: 50})
	cfg := DefaultConfig(ts.URL)
	cfg.FetchComments = true
	c, err := New(cfg, db.New())
	if err != nil {
		t.Fatal(err)
	}
	stats, err := c.CrawlDay(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Comments == 0 {
		t.Fatal("no comments crawled")
	}
	// Re-crawling the same day adds no duplicate comments.
	stats2, err := c.CrawlDay(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Comments != 0 {
		t.Fatalf("re-crawl added %d duplicate comments", stats2.Comments)
	}
}

// TestConditionalRecrawl verifies the crawler's ETag revalidation: a
// same-day re-crawl answers almost entirely from 304s (no payloads
// transferred) yet yields identical data, and a day advance invalidates
// the day-scoped documents so fresh statistics still flow.
func TestConditionalRecrawl(t *testing.T) {
	srv, ts := testStore(t, storeserver.Config{PageSize: 25})
	cfg := DefaultConfig(ts.URL)
	cfg.FetchComments = true
	c, err := New(cfg, db.New())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	s1, err := c.CrawlDay(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if s1.NotModified != 0 {
		t.Fatalf("first crawl revalidated %d documents with an empty cache", s1.NotModified)
	}
	s2, err := c.CrawlDay(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Same day, nothing changed: stats, every listing page, and every
	// comment stream should all have come back 304.
	pages := (s1.Apps + 24) / 25
	if wantMin := int64(1 + pages); s2.NotModified < wantMin {
		t.Fatalf("same-day re-crawl got %d 304s, want >= %d", s2.NotModified, wantMin)
	}
	if s2.Apps != s1.Apps {
		t.Fatalf("re-crawl from cached bodies saw %d apps, first crawl %d", s2.Apps, s1.Apps)
	}
	// A new day invalidates day-scoped ETags: the crawl still succeeds and
	// records the new day's growing download counts.
	if err := srv.AdvanceDay(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CrawlDay(ctx); err != nil {
		t.Fatal(err)
	}
	grew := 0
	for _, rec := range c.DB().Apps() {
		if len(rec.Daily) == 2 && rec.Daily[1].Day == 1 && rec.Daily[1].Downloads >= rec.Daily[0].Downloads {
			grew++
		}
	}
	if grew == 0 {
		t.Fatal("no app recorded fresh day-1 statistics after AdvanceDay")
	}
}

func TestMultiDayCrawl(t *testing.T) {
	srv, ts := testStore(t, storeserver.Config{PageSize: 50})
	c, err := New(DefaultConfig(ts.URL), db.New())
	if err != nil {
		t.Fatal(err)
	}
	for day := 0; day < 3; day++ {
		if day > 0 {
			if err := srv.AdvanceDay(); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := c.CrawlDay(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	// Apps present from day 0 should have 3 daily stats with
	// non-decreasing downloads.
	multi := 0
	for _, rec := range c.DB().Apps() {
		if len(rec.Daily) == 3 {
			multi++
			if rec.Daily[2].Downloads < rec.Daily[0].Downloads {
				t.Fatalf("downloads regressed for app %d: %+v", rec.ID, rec.Daily)
			}
		}
	}
	if multi == 0 {
		t.Fatal("no app observed on all three days")
	}
}

func TestCrawlSurvivesRateLimiting(t *testing.T) {
	// A tightly limited store forces 429s; the crawler must retry through
	// them and still complete.
	_, ts := testStore(t, storeserver.Config{PageSize: 20, RatePerSec: 400, Burst: 5})
	cfg := DefaultConfig(ts.URL)
	cfg.RatePerSec = 0 // crawl as fast as possible to trigger 429s
	cfg.Workers = 8
	cfg.MaxRetries = 10
	c, err := New(cfg, db.New())
	if err != nil {
		t.Fatal(err)
	}
	stats, err := c.CrawlDay(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Retries == 0 {
		t.Log("warning: no retries triggered; limiter may be too lax for this test")
	}
	if stats.Apps == 0 {
		t.Fatal("crawl failed under rate limiting")
	}
}

func TestCrawlThroughProxyPool(t *testing.T) {
	_, ts := testStore(t, storeserver.Config{PageSize: 25})
	// Three in-process proxy nodes.
	var proxies []*proxy.Proxy
	var urls []string
	for i := 0; i < 3; i++ {
		p := proxy.New("node", "cn")
		psrv := httptest.NewServer(p.Handler())
		t.Cleanup(psrv.Close)
		proxies = append(proxies, p)
		urls = append(urls, psrv.URL)
	}
	pool, err := proxy.NewPool(urls)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(ts.URL)
	cfg.Proxies = pool
	c, err := New(cfg, db.New())
	if err != nil {
		t.Fatal(err)
	}
	stats, err := c.CrawlDay(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Apps == 0 {
		t.Fatal("proxied crawl found no apps")
	}
	var relayed int64
	for _, p := range proxies {
		if p.Requests() == 0 {
			t.Fatal("a proxy node relayed nothing; rotation broken")
		}
		relayed += p.Requests()
	}
	if relayed < stats.Requests {
		t.Fatalf("proxies relayed %d of %d requests", relayed, stats.Requests)
	}
}

func TestCrawlPermanentErrorFailsFast(t *testing.T) {
	// An endpoint returning 404 for stats must fail without retries.
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.NotFound(w, r)
	}))
	defer srv.Close()
	c, err := New(DefaultConfig(srv.URL), db.New())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CrawlDay(context.Background()); err == nil {
		t.Fatal("404 store crawled successfully")
	}
	if hits.Load() != 1 {
		t.Fatalf("permanent error retried: %d hits", hits.Load())
	}
}

func TestCrawlRetriesServerErrors(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) < 3 {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		if r.URL.Path == "/api/stats" || r.URL.Path == "/api/v1/stats" {
			w.Write([]byte(`{"store":"x","day":0,"apps":0,"total_downloads":0}`)) //nolint:errcheck
			return
		}
		w.Write([]byte(`{"apps":[],"total":0}`)) //nolint:errcheck
	}))
	defer srv.Close()
	cfg := DefaultConfig(srv.URL)
	c, err := New(cfg, db.New())
	if err != nil {
		t.Fatal(err)
	}
	stats, err := c.CrawlDay(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Retries < 2 {
		t.Fatalf("retries = %d, want >= 2", stats.Retries)
	}
}

func TestCancellation(t *testing.T) {
	_, ts := testStore(t, storeserver.Config{PageSize: 5})
	cfg := DefaultConfig(ts.URL)
	cfg.RatePerSec = 10 // slow crawl so cancellation lands mid-flight
	c, err := New(cfg, db.New())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.CrawlDay(ctx); err == nil {
		t.Fatal("cancelled crawl succeeded")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}, db.New()); err == nil {
		t.Fatal("empty base URL accepted")
	}
}

func TestCrawlFetchesAPKsOncePerVersion(t *testing.T) {
	srv, ts := testStore(t, storeserver.Config{PageSize: 50})
	cfg := DefaultConfig(ts.URL)
	cfg.FetchAPKs = true
	c, err := New(cfg, db.New())
	if err != nil {
		t.Fatal(err)
	}
	stats, err := c.CrawlDay(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.APKs != stats.Apps {
		t.Fatalf("first crawl fetched %d APKs for %d apps", stats.APKs, stats.Apps)
	}
	if stats.APKBytes == 0 {
		t.Fatal("no APK bytes transferred")
	}
	// Re-crawl without version changes: nothing new fetched.
	stats2, err := c.CrawlDay(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats2.APKs != 0 {
		t.Fatalf("re-crawl fetched %d APKs", stats2.APKs)
	}
	// Advance days so some apps ship updates, then re-crawl: only the
	// updated apps' new versions are fetched.
	for i := 0; i < 5; i++ {
		if err := srv.AdvanceDay(); err != nil {
			t.Fatal(err)
		}
	}
	stats3, err := c.CrawlDay(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats3.APKs >= stats.Apps/2 {
		t.Fatalf("after updates, %d of %d apps re-fetched; expected few", stats3.APKs, stats.Apps)
	}
	pkgs, _ := c.DB().APKTotals()
	if pkgs != stats.APKs+stats3.APKs {
		t.Fatalf("db holds %d packages, want %d", pkgs, stats.APKs+stats3.APKs)
	}
}
