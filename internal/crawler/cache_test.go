package crawler

import (
	"context"
	"testing"

	"planetapps/internal/db"
	"planetapps/internal/metrics"
	"planetapps/internal/storeserver"
)

// TestCondCacheEviction bounds the conditional-request cache: with a
// capacity far below the catalog size, the crawl still succeeds, the map
// never exceeds the cap, and evictions are counted.
func TestCondCacheEviction(t *testing.T) {
	_, ts := testStore(t, storeserver.Config{PageSize: 25})
	cfg := DefaultConfig(ts.URL)
	cfg.CondCacheSize = 8
	c, err := New(cfg, db.New())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	s1, err := c.CrawlDay(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Apps == 0 {
		t.Fatal("crawl found no apps")
	}
	if s1.CondEvictions == 0 {
		t.Fatalf("crawled %d apps through an 8-entry cache with no evictions", s1.Apps)
	}
	c.condMu.Lock()
	size, lsize := len(c.cond), c.condLRU.Len()
	c.condMu.Unlock()
	if size > 8 || lsize != size {
		t.Fatalf("cache exceeded cap: map %d, list %d, cap 8", size, lsize)
	}
	// The crawl still works end to end on a second pass (whatever survived
	// in cache may revalidate; everything else refetches).
	s2, err := c.CrawlDay(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Apps != s1.Apps {
		t.Fatalf("second crawl saw %d apps, first %d", s2.Apps, s1.Apps)
	}
}

// TestCrossDayNotModifiedRate is the end-to-end payoff of content-version
// ETags: crawling the NEXT day (not a same-day re-crawl) still earns real
// 304s for the unchanged majority of the catalog.
func TestCrossDayNotModifiedRate(t *testing.T) {
	srv, ts := testStore(t, storeserver.Config{PageSize: 25})
	reg := metrics.NewRegistry()
	cfg := DefaultConfig(ts.URL)
	cfg.FetchComments = true
	cfg.Metrics = reg
	c, err := New(cfg, db.New())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := c.CrawlDay(ctx); err != nil {
		t.Fatal(err)
	}
	if err := srv.AdvanceDay(); err != nil {
		t.Fatal(err)
	}
	s2, err := c.CrawlDay(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Comment streams never change day to day and at least some apps see
	// no downloads/updates, so the cross-day crawl must revalidate
	// something — impossible under day-scoped ETags.
	if s2.NotModified == 0 {
		t.Fatal("day-2 crawl earned no 304s: ETags are not content-versioned")
	}
	if s2.NotModifiedRate <= 0 || s2.NotModifiedRate > 1 {
		t.Fatalf("bad NotModifiedRate %v", s2.NotModifiedRate)
	}
	// The optional registry wiring counted the same traffic.
	if got := reg.Counter("crawler_not_modified_total").Value(); got < s2.NotModified {
		t.Fatalf("metrics counted %d 304s, stats %d", got, s2.NotModified)
	}
}
