package crawler

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"planetapps/internal/catalog"
	"planetapps/internal/comments"
	"planetapps/internal/db"
	"planetapps/internal/faultinject"
	"planetapps/internal/marketsim"
	"planetapps/internal/storeserver"
)

// gzipStore is chaosStore with the storeserver handle exposed, so tests
// can roll the day under the crawler.
func gzipStore(t *testing.T, inj *faultinject.Injector) (*storeserver.Server, *httptest.Server) {
	t.Helper()
	mcfg := marketsim.DefaultConfig(catalog.Profiles["slideme"].Scale(0.05))
	mcfg.Days = 10
	m, err := marketsim.New(mcfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	srv := storeserver.New(m, storeserver.Config{PageSize: 40})
	cs, err := comments.Generate(m.Catalog(), comments.DefaultGenConfig(60), 2)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetComments(cs)
	if inj != nil {
		srv.SetChaos(inj)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// TestGzipCrawlByteIdentical pins the transfer-encoding convergence
// contract: a compressed crawl ingests exactly the bytes an identity
// crawl does — across a conditional re-crawl, and across a day-roll where
// carried documents revalidate against their gzip-variant ETags and
// changed documents re-transfer compressed.
func TestGzipCrawlByteIdentical(t *testing.T) {
	idStore, idTS := gzipStore(t, nil)
	gzStore, gzTS := gzipStore(t, nil)

	idCfg := DefaultConfig(idTS.URL)
	idCfg.RatePerSec = 0
	idCfg.FetchComments = true
	idCfg.DisableGzip = true
	idCrawler, err := New(idCfg, db.New())
	if err != nil {
		t.Fatal(err)
	}

	gzCfg := DefaultConfig(gzTS.URL)
	gzCfg.RatePerSec = 0
	gzCfg.FetchComments = true // DisableGzip false: compressed transfer on
	gzCrawler, err := New(gzCfg, db.New())
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	pass := func(label string) (Stats, Stats) {
		t.Helper()
		idSt, err := idCrawler.CrawlDay(ctx)
		if err != nil {
			t.Fatalf("%s: identity crawl: %v", label, err)
		}
		gzSt, err := gzCrawler.CrawlDay(ctx)
		if err != nil {
			t.Fatalf("%s: gzip crawl: %v", label, err)
		}
		want, got := canonical(t, idCrawler.DB()), canonical(t, gzCrawler.DB())
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: gzip crawl diverged from identity crawl (%d vs %d canonical bytes)",
				label, len(got), len(want))
		}
		return idSt, gzSt
	}

	idSt, gzSt := pass("day 0")
	if idSt.Client.GzipResponses != 0 {
		t.Fatalf("identity crawl decompressed %d responses", idSt.Client.GzipResponses)
	}
	if gzSt.Client.GzipResponses == 0 {
		t.Fatal("gzip crawl never received a compressed response")
	}
	if gzSt.Client.GzipWireBytes >= gzSt.Client.GzipInflatedBytes {
		t.Fatalf("compression saved nothing: %d wire vs %d inflated bytes",
			gzSt.Client.GzipWireBytes, gzSt.Client.GzipInflatedBytes)
	}

	// Same-day re-crawl: the conditional cache revalidates with the
	// gzip-variant ETags the store minted, so most answers are 304s.
	_, gzSt2 := pass("day 0 re-crawl")
	if gzSt2.NotModified == 0 {
		t.Fatal("re-crawl earned no 304s: gzip ETags are not revalidating")
	}

	// Roll both stores: carried docs (unchanged comment streams) keep
	// their gzip-variant ETags and must keep 304-ing; the day's changed
	// content travels via cursor pages (identity by design — they are
	// rendered per request, not cached docs) and identity must still hold.
	if err := idStore.AdvanceDay(); err != nil {
		t.Fatal(err)
	}
	if err := gzStore.AdvanceDay(); err != nil {
		t.Fatal(err)
	}
	_, gzSt3 := pass("day 1")
	if gzSt3.NotModified <= gzSt2.NotModified {
		t.Fatal("post-roll crawl revalidated nothing (carried docs should 304)")
	}
	t.Logf("gzip crawl: %d compressed responses, %d wire bytes for %d inflated (%.1f%% saved), %d not-modified",
		gzSt3.Client.GzipResponses, gzSt3.Client.GzipWireBytes, gzSt3.Client.GzipInflatedBytes,
		100*(1-float64(gzSt3.Client.GzipWireBytes)/float64(gzSt3.Client.GzipInflatedBytes)),
		gzSt3.NotModified)
}

// TestGzipCrawlConvergesUnderCorruption points the corruption scenario at
// a gzip crawl: zeroed spans now land mid-deflate-stream, the CRC (not
// json.Valid) catches them, and the invalid-body re-fetch path must still
// converge to a database byte-identical to a fault-free identity crawl.
func TestGzipCrawlConvergesUnderCorruption(t *testing.T) {
	_, cleanTS := gzipStore(t, nil)
	cleanCfg := DefaultConfig(cleanTS.URL)
	cleanCfg.RatePerSec = 0
	cleanCfg.FetchComments = true
	cleanCfg.DisableGzip = true
	cleanDB, _ := crawlOnce(t, cleanCfg)
	want := canonical(t, cleanDB)

	sc, err := faultinject.Lookup("corruption")
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(sc.Scale(0.2), 0x6219, nil)
	_, chaosTS := gzipStore(t, inj)
	cfg := DefaultConfig(chaosTS.URL)
	cfg.RatePerSec = 0
	cfg.FetchComments = true
	cfg.MaxRetries = 12
	cfg.HedgeAfter = 60 * time.Millisecond
	d, st := crawlOnce(t, cfg)

	if got := canonical(t, d); !bytes.Equal(got, want) {
		t.Fatalf("gzip crawl under corruption diverged from fault-free identity crawl (%d vs %d canonical bytes)",
			len(got), len(want))
	}
	if inj.InjectedTotal() == 0 {
		t.Fatal("corruption scenario injected nothing")
	}
	if st.Client.GzipResponses == 0 {
		t.Fatal("chaos crawl never exercised the compressed path")
	}
	if st.Client.InvalidBodies == 0 {
		t.Fatal("no corrupted body was ever detected — injection missed the JSON payloads")
	}
	t.Logf("corruption+gzip: %d faults, %d invalid bodies re-fetched, %d compressed responses",
		inj.InjectedTotal(), st.Client.InvalidBodies, st.Client.GzipResponses)
}
