// Package faultinject turns the polite synthetic appstore into the hostile
// one the paper actually crawled. The paper's collectors fought live
// marketplaces for months — IP blacklisting, regional rate limits, flaky
// endpoints — and routed around them through ~100 PlanetLab proxies
// (Figure 1). Nothing in a clean in-process store exercises those failure
// paths, so this package injects them on purpose: latency spikes, 5xx
// bursts, connection resets, truncated and corrupted bodies, slow-loris
// responses, and rate-limit storms, driven by a declarative Scenario and
// reproducible from a seed.
//
// An Injector wraps either side of the wire: Wrap produces an
// http.Handler middleware (the storeserver and each proxy node install
// one), RoundTripper produces a client-side middleware for transport-level
// faults. Every injection decision is a pure function of (seed, rule
// index, arrival index): request n under rule r faults iff the rule's
// phase window admits n and a splitmix64-derived uniform draw on
// (seed, r, n) clears the rule's probability. Two runs with the same seed
// see the same fault pattern as a function of arrival order; concurrent
// clients may interleave arrivals differently, but the marginal fault
// process — and therefore any convergence property a resilient client must
// satisfy — is identical.
package faultinject

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"planetapps/internal/metrics"
)

// Kind enumerates the injectable faults.
type Kind uint8

const (
	// KindLatency delays the response by Delay plus uniform [0,Jitter).
	KindLatency Kind = iota
	// KindError short-circuits with Status (default 503) before the
	// wrapped handler runs.
	KindError
	// KindReset hijacks the connection and closes it mid-request, the
	// TCP RST / abrupt-EOF failure a blacklisting store produces.
	KindReset
	// KindTruncate serves the real response but cuts the body short after
	// TruncateAt bytes, leaving the declared Content-Length unsatisfied.
	KindTruncate
	// KindCorrupt serves the real response with a span of body bytes
	// zeroed. NUL is never valid JSON, so decode validation always
	// catches it on metadata documents.
	KindCorrupt
	// KindSlowLoris dribbles the response body out in tiny flushed
	// chunks with Delay between them.
	KindSlowLoris
	// KindRateLimit short-circuits with 429 and a Retry-After.
	KindRateLimit
	numKinds
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindLatency:
		return "latency"
	case KindError:
		return "error"
	case KindReset:
		return "reset"
	case KindTruncate:
		return "truncate"
	case KindCorrupt:
		return "corrupt"
	case KindSlowLoris:
		return "slow_loris"
	case KindRateLimit:
		return "rate_limit"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Rule is one fault stream: which requests it matches, when it fires, and
// what it does. The zero window (Every == 0 and To == 0) means "always
// eligible"; otherwise the rule fires only inside its phase.
type Rule struct {
	// Route limits the rule to request paths containing this substring
	// ("" = every route).
	Route string
	// Kind is the fault to inject.
	Kind Kind
	// Prob is the per-eligible-request injection probability in [0,1].
	Prob float64

	// Every and Span define a repeating phase on the rule's arrival
	// counter: request n is eligible iff n mod Every < Span. This is how
	// bursts and storms are expressed; because every attempt (including a
	// client's retries) advances the counter, a burst always drains and
	// cannot wedge a crawl forever.
	Every, Span int64
	// From and To define a one-shot phase [From, To) on the arrival
	// counter instead (used when Every == 0; To == 0 means no bound).
	From, To int64

	// Status is the response code for KindError (default 503).
	Status int
	// RetryAfter is advertised on KindRateLimit and 503 KindError
	// responses (0 = none).
	RetryAfter time.Duration
	// Delay is the base stall for KindLatency and the per-chunk pacing
	// for KindSlowLoris.
	Delay time.Duration
	// Jitter widens KindLatency by uniform [0, Jitter).
	Jitter time.Duration
	// TruncateAt is how many body bytes KindTruncate lets through
	// (default 12).
	TruncateAt int
	// Node restricts the rule to one fleet node index (see NewForNode);
	// <0 applies to every node.
	Node int
}

// Scenario is a named set of fault rules.
type Scenario struct {
	Name  string
	Desc  string
	Rules []Rule
}

// ErrorWriter renders an injected error response. The default writes
// plain-text http.Error bodies; servers with structured error surfaces
// (the storeserver's /api/v1 envelope) install their own.
type ErrorWriter func(w http.ResponseWriter, r *http.Request, status int, retryAfter time.Duration)

func defaultErrorWriter(w http.ResponseWriter, r *http.Request, status int, retryAfter time.Duration) {
	if retryAfter > 0 {
		secs := int(retryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	http.Error(w, "fault injected: "+http.StatusText(status), status)
}

// Injector applies one Scenario's fault streams. Create with New (or
// NewForNode for a member of a fleet); an Injector is safe for concurrent
// use and all of its mutable state is atomic.
type Injector struct {
	sc       Scenario
	seed     uint64
	node     int
	errW     ErrorWriter
	counters []atomic.Int64 // per-rule arrival counters

	injected [numKinds]*metrics.Counter
	passed   *metrics.Counter
}

// New builds an injector for sc, counting injections into reg when
// non-nil (metric: faultinject_injected_total{kind=...}).
func New(sc Scenario, seed uint64, reg *metrics.Registry) *Injector {
	return NewForNode(sc, seed, -1, reg)
}

// NewForNode builds an injector for fleet node index node: rules carrying
// a non-negative Node fire only on the matching node, so one scenario can
// describe an asymmetric fleet (a partition that kills specific proxies).
// The node index also perturbs the decision stream, so two nodes running
// the same rule fault different arrival indices.
func NewForNode(sc Scenario, seed uint64, node int, reg *metrics.Registry) *Injector {
	in := &Injector{
		sc:       sc,
		seed:     seed,
		node:     node,
		errW:     defaultErrorWriter,
		counters: make([]atomic.Int64, len(sc.Rules)),
	}
	for k := Kind(0); k < numKinds; k++ {
		if reg != nil {
			in.injected[k] = reg.Counter(fmt.Sprintf("faultinject_injected_total{kind=%q}", k.String()))
		} else {
			in.injected[k] = &metrics.Counter{}
		}
	}
	if reg != nil {
		in.passed = reg.Counter("faultinject_passed_total")
	} else {
		in.passed = &metrics.Counter{}
	}
	return in
}

// SetErrorWriter installs a custom renderer for injected error responses
// (KindError, KindRateLimit). Must be called before the injector serves.
func (in *Injector) SetErrorWriter(w ErrorWriter) { in.errW = w }

// Injected returns how many faults of kind k have fired.
func (in *Injector) Injected(k Kind) int64 { return in.injected[k].Value() }

// InjectedTotal returns the total faults fired across kinds.
func (in *Injector) InjectedTotal() int64 {
	var t int64
	for k := Kind(0); k < numKinds; k++ {
		t += in.injected[k].Value()
	}
	return t
}

// splitmix64 is the decision hash: a full-avalanche mix of the seed, rule
// index, node, and arrival index.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// draw returns the uniform [0,1) decision variate for (rule ri, arrival n).
func (in *Injector) draw(ri int, n int64) float64 {
	h := splitmix64(in.seed ^ splitmix64(uint64(ri)+1) ^ splitmix64(uint64(n)+0x5851f42d) ^ splitmix64(uint64(in.node+1)<<32))
	return float64(h>>11) / (1 << 53)
}

// jitterDraw returns an independent uniform variate for latency jitter.
func (in *Injector) jitterDraw(ri int, n int64) float64 {
	h := splitmix64(in.seed ^ 0xda942042e4dd58b5 ^ splitmix64(uint64(ri)+7) ^ splitmix64(uint64(n)))
	return float64(h>>11) / (1 << 53)
}

// decide returns the rule to fire for this request, or -1. At most one
// rule fires per request: the first matching rule whose draw clears wins,
// so scenario authors order rules by precedence.
func (in *Injector) decide(path string) (ri int, n int64) {
	for i := range in.sc.Rules {
		rl := &in.sc.Rules[i]
		if rl.Node >= 0 && in.node >= 0 && rl.Node != in.node {
			continue
		}
		if rl.Route != "" && !containsPath(path, rl.Route) {
			continue
		}
		n := in.counters[i].Add(1) - 1
		if rl.Every > 0 {
			if n%rl.Every >= rl.Span {
				continue
			}
		} else if n < rl.From || (rl.To > 0 && n >= rl.To) {
			continue
		}
		if rl.Prob < 1 && in.draw(i, n) >= rl.Prob {
			continue
		}
		return i, n
	}
	return -1, 0
}

func containsPath(path, sub string) bool { return strings.Contains(path, sub) }

// Wrap returns next with sc's faults injected in front of (and, for the
// body-mangling kinds, around) it.
func (in *Injector) Wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ri, n := in.decide(r.URL.Path)
		if ri < 0 {
			in.passed.Inc()
			next.ServeHTTP(w, r)
			return
		}
		rl := &in.sc.Rules[ri]
		in.injected[rl.Kind].Inc()
		switch rl.Kind {
		case KindLatency:
			d := rl.Delay + time.Duration(in.jitterDraw(ri, n)*float64(rl.Jitter))
			select {
			case <-r.Context().Done():
			case <-time.After(d):
			}
			next.ServeHTTP(w, r)
		case KindError:
			status := rl.Status
			if status == 0 {
				status = http.StatusServiceUnavailable
			}
			in.errW(w, r, status, rl.RetryAfter)
		case KindRateLimit:
			in.errW(w, r, http.StatusTooManyRequests, rl.RetryAfter)
		case KindReset:
			resetConn(w)
		case KindTruncate:
			at := rl.TruncateAt
			if at <= 0 {
				at = 12
			}
			next.ServeHTTP(&truncateWriter{ResponseWriter: w, budget: at}, r)
			// Closing the connection under the handler's declared
			// Content-Length is what makes the client see an unexpected
			// EOF rather than a clean short document.
			resetConn(w)
		case KindCorrupt:
			next.ServeHTTP(&corruptWriter{ResponseWriter: w}, r)
		case KindSlowLoris:
			lw := &lorisWriter{w: w, delay: rl.Delay, chunk: 64}
			next.ServeHTTP(lw, r)
			lw.flushTail()
		}
	})
}

// resetConn abruptly closes the underlying connection, best effort (a
// recorder or non-hijackable writer just sees nothing written, which a
// client still observes as an empty/invalid response).
func resetConn(w http.ResponseWriter) {
	if hj, ok := w.(http.Hijacker); ok {
		if conn, _, err := hj.Hijack(); err == nil {
			if tc, ok := conn.(*net.TCPConn); ok {
				// SO_LINGER 0 turns Close into a RST rather than FIN —
				// the genuine "connection reset by peer".
				tc.SetLinger(0) //nolint:errcheck
			}
			conn.Close()
		}
	}
}

// truncateWriter forwards at most budget body bytes and swallows the rest.
type truncateWriter struct {
	http.ResponseWriter
	budget int
}

func (t *truncateWriter) Write(p []byte) (int, error) {
	if t.budget <= 0 {
		return len(p), nil // pretend success so the handler completes
	}
	n := len(p)
	if n > t.budget {
		n = t.budget
	}
	if _, err := t.ResponseWriter.Write(p[:n]); err != nil {
		return 0, err
	}
	t.budget -= n
	return len(p), nil
}

// corruptWriter zeroes a short span early in the body. NUL bytes are
// illegal anywhere in JSON — inside or outside string literals — so a
// decode-validating client detects the damage deterministically.
type corruptWriter struct {
	http.ResponseWriter
	written int
}

func (c *corruptWriter) Write(p []byte) (int, error) {
	const corruptAt, corruptLen = 2, 4
	end := c.written + len(p)
	if c.written <= corruptAt+corruptLen && end > corruptAt {
		q := append([]byte(nil), p...)
		for i := range q {
			if pos := c.written + i; pos >= corruptAt && pos < corruptAt+corruptLen {
				q[i] = 0
			}
		}
		p = q
	}
	n, err := c.ResponseWriter.Write(p)
	c.written += n
	return n, err
}

// lorisWriter buffers the response and dribbles it out in small flushed
// chunks with a delay between each — the slow-loris read experience.
type lorisWriter struct {
	w     http.ResponseWriter
	buf   bytes.Buffer
	code  int
	delay time.Duration
	chunk int
}

func (l *lorisWriter) Header() http.Header { return l.w.Header() }

func (l *lorisWriter) WriteHeader(code int) { l.code = code }

func (l *lorisWriter) Write(p []byte) (int, error) { return l.buf.Write(p) }

// flushTail replays the buffered response slowly. The chunk pacing is
// bounded to ~24 sleeps so a single injection cannot stall a worker for
// longer than 24*Delay.
func (l *lorisWriter) flushTail() {
	if l.code != 0 {
		l.w.WriteHeader(l.code)
	}
	body := l.buf.Bytes()
	chunk := l.chunk
	if maxSleeps := 24; len(body) > maxSleeps*chunk {
		chunk = (len(body) + maxSleeps - 1) / maxSleeps
	}
	fl, _ := l.w.(http.Flusher)
	for len(body) > 0 {
		n := chunk
		if n > len(body) {
			n = len(body)
		}
		if _, err := l.w.Write(body[:n]); err != nil {
			return
		}
		if fl != nil {
			fl.Flush()
		}
		body = body[n:]
		if len(body) > 0 && l.delay > 0 {
			time.Sleep(l.delay)
		}
	}
}

// RoundTripper returns a client-side middleware injecting transport-level
// faults: KindLatency stalls before dispatch, KindError/KindRateLimit
// synthesize responses without touching the network, KindReset returns a
// connection-reset error, and the body-mangling kinds rewrite the real
// response's body.
func (in *Injector) RoundTripper(next http.RoundTripper) http.RoundTripper {
	if next == nil {
		next = http.DefaultTransport
	}
	return roundTripFunc(func(req *http.Request) (*http.Response, error) {
		ri, n := in.decide(req.URL.Path)
		if ri < 0 {
			in.passed.Inc()
			return next.RoundTrip(req)
		}
		rl := &in.sc.Rules[ri]
		in.injected[rl.Kind].Inc()
		switch rl.Kind {
		case KindLatency:
			d := rl.Delay + time.Duration(in.jitterDraw(ri, n)*float64(rl.Jitter))
			select {
			case <-req.Context().Done():
				return nil, req.Context().Err()
			case <-time.After(d):
			}
			return next.RoundTrip(req)
		case KindError:
			status := rl.Status
			if status == 0 {
				status = http.StatusServiceUnavailable
			}
			return syntheticResponse(req, status, rl.RetryAfter), nil
		case KindRateLimit:
			return syntheticResponse(req, http.StatusTooManyRequests, rl.RetryAfter), nil
		case KindReset:
			return nil, &net.OpError{Op: "read", Net: "tcp", Err: fmt.Errorf("faultinject: connection reset by peer")}
		case KindTruncate:
			resp, err := next.RoundTrip(req)
			if err != nil {
				return nil, err
			}
			at := rl.TruncateAt
			if at <= 0 {
				at = 12
			}
			resp.Body = &truncatedBody{rc: resp.Body, budget: at}
			return resp, nil
		case KindCorrupt:
			resp, err := next.RoundTrip(req)
			if err != nil {
				return nil, err
			}
			resp.Body = &corruptedBody{rc: resp.Body}
			return resp, nil
		case KindSlowLoris:
			resp, err := next.RoundTrip(req)
			if err != nil {
				return nil, err
			}
			resp.Body = &slowBody{rc: resp.Body, delay: rl.Delay}
			return resp, nil
		}
		return next.RoundTrip(req)
	})
}

type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

func syntheticResponse(req *http.Request, status int, retryAfter time.Duration) *http.Response {
	h := http.Header{}
	if retryAfter > 0 {
		secs := int(retryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		h.Set("Retry-After", strconv.Itoa(secs))
	}
	body := "fault injected: " + http.StatusText(status) + "\n"
	return &http.Response{
		StatusCode:    status,
		Status:        fmt.Sprintf("%d %s", status, http.StatusText(status)),
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        h,
		Body:          newStringBody(body),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

type stringBody struct{ r *bufio.Reader }

func newStringBody(s string) *stringBody {
	return &stringBody{r: bufio.NewReader(bytes.NewReader([]byte(s)))}
}

func (b *stringBody) Read(p []byte) (int, error) { return b.r.Read(p) }
func (b *stringBody) Close() error               { return nil }

// truncatedBody yields budget bytes then an abrupt unexpected EOF.
type truncatedBody struct {
	rc     interface{ Read([]byte) (int, error) }
	closer interface{ Close() error }
	budget int
}

func (t *truncatedBody) Read(p []byte) (int, error) {
	if t.budget <= 0 {
		return 0, &net.OpError{Op: "read", Net: "tcp", Err: fmt.Errorf("faultinject: truncated body")}
	}
	if len(p) > t.budget {
		p = p[:t.budget]
	}
	n, err := t.rc.Read(p)
	t.budget -= n
	return n, err
}

func (t *truncatedBody) Close() error {
	if c, ok := t.rc.(interface{ Close() error }); ok {
		return c.Close()
	}
	return nil
}

// corruptedBody zeroes a span early in the stream, mirroring corruptWriter.
type corruptedBody struct {
	rc      interface{ Read([]byte) (int, error) }
	written int
}

func (c *corruptedBody) Read(p []byte) (int, error) {
	const corruptAt, corruptLen = 2, 4
	n, err := c.rc.Read(p)
	for i := 0; i < n; i++ {
		if pos := c.written + i; pos >= corruptAt && pos < corruptAt+corruptLen {
			p[i] = 0
		}
	}
	c.written += n
	return n, err
}

func (c *corruptedBody) Close() error {
	if cl, ok := c.rc.(interface{ Close() error }); ok {
		return cl.Close()
	}
	return nil
}

// slowBody inserts delay between reads.
type slowBody struct {
	rc    interface{ Read([]byte) (int, error) }
	delay time.Duration
	reads int
}

func (s *slowBody) Read(p []byte) (int, error) {
	if s.reads > 0 && s.reads <= 24 && s.delay > 0 {
		time.Sleep(s.delay)
	}
	s.reads++
	if len(p) > 64 {
		p = p[:64]
	}
	return s.rc.Read(p)
}

func (s *slowBody) Close() error {
	if c, ok := s.rc.(interface{ Close() error }); ok {
		return c.Close()
	}
	return nil
}
