package faultinject

import (
	"fmt"
	"sort"
	"time"
)

// Built-in scenarios, each modeling one hostility the paper's crawlers
// met in the wild. Magnitudes are tuned for in-process test stores (tens
// of milliseconds); a deployment against a real network scales them with
// Scenario.Scale.
//
// Phase windows are expressed on arrival counters (Every/Span), never on
// wall time: every attempt — including a client's retries — advances the
// counter, so a burst always drains no matter how slowly the client limps
// through it, and a run is reproducible from the seed alone.
var builtins = []Scenario{
	{
		Name: "latency",
		Desc: "tail-latency spikes on the metadata routes: ~25% of requests stall 60-140ms",
		Rules: []Rule{
			{Route: "/api", Kind: KindLatency, Prob: 0.25, Delay: 60 * time.Millisecond, Jitter: 80 * time.Millisecond, Node: -1},
		},
	},
	{
		Name: "error-burst",
		Desc: "recurring 5xx storms: inside every 160-request window, the first 48 fail with 503/500 at p=0.9",
		Rules: []Rule{
			{Route: "/api", Kind: KindError, Prob: 0.9, Every: 160, Span: 48, Status: 503, RetryAfter: 40 * time.Millisecond, Node: -1},
			{Route: "/api", Kind: KindError, Prob: 0.08, Status: 500, Node: -1},
		},
	},
	{
		Name: "resets",
		Desc: "abrupt connection resets on ~12% of requests, the blacklisting store's RST",
		Rules: []Rule{
			{Route: "/api", Kind: KindReset, Prob: 0.12, Node: -1},
		},
	},
	{
		Name: "corruption",
		Desc: "damaged payloads: ~10% of bodies get a zeroed span, ~6% are truncated mid-body",
		Rules: []Rule{
			{Route: "/api", Kind: KindCorrupt, Prob: 0.10, Node: -1},
			{Route: "/api", Kind: KindTruncate, Prob: 0.06, TruncateAt: 16, Node: -1},
		},
	},
	{
		Name: "rate-limit-storm",
		Desc: "429 storms: inside every 120-request window the first 40 are rejected with Retry-After",
		Rules: []Rule{
			{Route: "/api", Kind: KindRateLimit, Prob: 1, Every: 120, Span: 40, RetryAfter: 25 * time.Millisecond, Node: -1},
		},
	},
	{
		Name: "slow-loris",
		Desc: "~8% of responses dribble out in 64-byte flushed chunks, 2ms apart",
		Rules: []Rule{
			{Route: "/api", Kind: KindSlowLoris, Prob: 0.08, Delay: 2 * time.Millisecond, Node: -1},
		},
	},
	{
		Name: "shard-kill",
		Desc: "store-fleet shard outage: shard 0 is dead (every request reset) for the first 24 requests of each 160-request window, and every shard resets ~4% of requests besides",
		Rules: []Rule{
			{Route: "/api", Kind: KindReset, Prob: 1, Every: 160, Span: 24, Node: 0},
			{Route: "/api", Kind: KindReset, Prob: 0.04, Node: -1},
		},
	},
	{
		Name: "proxy-partition",
		Desc: "fleet partition: node 0 of every fleet is dead (all requests reset), node 1 drops half",
		Rules: []Rule{
			{Kind: KindReset, Prob: 1, Node: 0},
			{Kind: KindReset, Prob: 0.5, Node: 1},
		},
	},
}

// Lookup returns the built-in scenario with the given name.
func Lookup(name string) (Scenario, error) {
	for _, sc := range builtins {
		if sc.Name == name {
			return sc, nil
		}
	}
	return Scenario{}, fmt.Errorf("faultinject: unknown scenario %q (have %v)", name, Names())
}

// Names lists the built-in scenario names, sorted.
func Names() []string {
	out := make([]string, len(builtins))
	for i, sc := range builtins {
		out[i] = sc.Name
	}
	sort.Strings(out)
	return out
}

// Scale returns a copy of sc with every duration multiplied by f —
// shrink a scenario for fast tests or stretch it toward real-network
// magnitudes without redefining the rules.
func (sc Scenario) Scale(f float64) Scenario {
	rules := make([]Rule, len(sc.Rules))
	copy(rules, sc.Rules)
	for i := range rules {
		rules[i].Delay = time.Duration(float64(rules[i].Delay) * f)
		rules[i].Jitter = time.Duration(float64(rules[i].Jitter) * f)
		rules[i].RetryAfter = time.Duration(float64(rules[i].RetryAfter) * f)
	}
	sc.Rules = rules
	return sc
}
