package faultinject

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// okHandler serves a small JSON document with a declared length, the shape
// the storeserver's pre-encoded documents have.
func okHandler() http.Handler {
	body := []byte(`{"apps":[1,2,3],"total":3,"note":"abcdefghijklmnopqrstuvwxyz"}`)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Length", itoa(len(body)))
		w.Write(body) //nolint:errcheck
	})
}

func itoa(n int) string {
	return string(append([]byte(nil), []byte{byte('0' + n/10), byte('0' + n%10)}...))
}

// TestDecisionDeterminism: the fault pattern is a pure function of
// (seed, rule, arrival index) — two injectors with the same seed decide
// identically, a different seed decides differently somewhere.
func TestDecisionDeterminism(t *testing.T) {
	sc := Scenario{Name: "t", Rules: []Rule{{Kind: KindError, Prob: 0.3, Node: -1}}}
	seqFor := func(seed uint64) []bool {
		in := New(sc, seed, nil)
		out := make([]bool, 200)
		for i := range out {
			ri, _ := in.decide("/api/apps")
			out[i] = ri >= 0
		}
		return out
	}
	a, b, c := seqFor(7), seqFor(7), seqFor(8)
	same := true
	diff := false
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		if a[i] != c[i] {
			diff = true
		}
	}
	if !same {
		t.Fatal("same seed produced different fault sequences")
	}
	if !diff {
		t.Fatal("different seeds produced identical fault sequences (suspicious)")
	}
}

func TestPhaseWindowDrains(t *testing.T) {
	// Every=10 Span=4: arrivals 0-3 fault, 4-9 pass, 10-13 fault, ...
	sc := Scenario{Rules: []Rule{{Kind: KindError, Prob: 1, Every: 10, Span: 4, Node: -1}}}
	in := New(sc, 1, nil)
	for i := 0; i < 30; i++ {
		ri, _ := in.decide("/x")
		want := i%10 < 4
		if (ri >= 0) != want {
			t.Fatalf("arrival %d: faulted=%v want %v", i, ri >= 0, want)
		}
	}
}

func TestErrorAndRateLimitInjection(t *testing.T) {
	sc := Scenario{Rules: []Rule{
		{Route: "/err", Kind: KindError, Prob: 1, Status: 503, RetryAfter: 1500 * time.Millisecond, Node: -1},
		{Route: "/rl", Kind: KindRateLimit, Prob: 1, RetryAfter: 30 * time.Millisecond, Node: -1},
	}}
	in := New(sc, 1, nil)
	ts := httptest.NewServer(in.Wrap(okHandler()))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/err")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "1" {
		t.Fatalf("Retry-After = %q", resp.Header.Get("Retry-After"))
	}

	resp, err = http.Get(ts.URL + "/rl")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != 429 {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if in.Injected(KindError) != 1 || in.Injected(KindRateLimit) != 1 {
		t.Fatalf("injection counters: err=%d rl=%d", in.Injected(KindError), in.Injected(KindRateLimit))
	}
}

func TestResetSurfacesAsTransportError(t *testing.T) {
	sc := Scenario{Rules: []Rule{{Kind: KindReset, Prob: 1, Node: -1}}}
	in := New(sc, 1, nil)
	ts := httptest.NewServer(in.Wrap(okHandler()))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/x")
	if err == nil {
		// Some stacks surface the RST while reading the body instead.
		_, err = io.ReadAll(resp.Body)
		resp.Body.Close()
	}
	if err == nil {
		t.Fatal("reset injection produced a clean response")
	}
}

func TestTruncateBreaksBody(t *testing.T) {
	sc := Scenario{Rules: []Rule{{Kind: KindTruncate, Prob: 1, TruncateAt: 8, Node: -1}}}
	in := New(sc, 1, nil)
	ts := httptest.NewServer(in.Wrap(okHandler()))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/x")
	if err != nil {
		return // truncation may already break the response exchange
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err == nil && len(body) >= 60 {
		t.Fatalf("full body arrived despite truncation: %d bytes", len(body))
	}
}

func TestCorruptionIsInvalidJSON(t *testing.T) {
	sc := Scenario{Rules: []Rule{{Kind: KindCorrupt, Prob: 1, Node: -1}}}
	in := New(sc, 1, nil)
	ts := httptest.NewServer(in.Wrap(okHandler()))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var v any
	if json.Unmarshal(body, &v) == nil {
		t.Fatalf("corrupted body still decodes: %q", body)
	}
	if !strings.Contains(string(body), "\x00") {
		t.Fatalf("no NUL bytes in corrupted body: %q", body)
	}
}

func TestSlowLorisStillDelivers(t *testing.T) {
	sc := Scenario{Rules: []Rule{{Kind: KindSlowLoris, Prob: 1, Delay: time.Millisecond, Node: -1}}}
	in := New(sc, 1, nil)
	ts := httptest.NewServer(in.Wrap(okHandler()))
	defer ts.Close()
	start := time.Now()
	resp, err := http.Get(ts.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var v any
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("loris-delivered body corrupt: %v", err)
	}
	if time.Since(start) < time.Millisecond {
		t.Log("warning: loris pacing too fast to observe")
	}
}

func TestNodeScoping(t *testing.T) {
	sc, err := Lookup("proxy-partition")
	if err != nil {
		t.Fatal(err)
	}
	dead := NewForNode(sc, 1, 0, nil)
	healthy := NewForNode(sc, 1, 2, nil)
	for i := 0; i < 50; i++ {
		if ri, _ := dead.decide("/any"); ri < 0 {
			t.Fatal("partitioned node 0 passed a request")
		}
		if ri, _ := healthy.decide("/any"); ri >= 0 {
			t.Fatal("healthy node 2 injected a fault")
		}
	}
}

func TestRoundTripperInjection(t *testing.T) {
	origin := httptest.NewServer(okHandler())
	defer origin.Close()
	sc := Scenario{Rules: []Rule{{Kind: KindError, Prob: 1, Status: 503, Node: -1}}}
	in := New(sc, 1, nil)
	client := &http.Client{Transport: in.RoundTripper(nil)}
	resp, err := client.Get(origin.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("status = %d, want synthesized 503", resp.StatusCode)
	}
}

func TestLookupAndScale(t *testing.T) {
	for _, name := range Names() {
		if _, err := Lookup(name); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	sc, _ := Lookup("latency")
	half := sc.Scale(0.5)
	if half.Rules[0].Delay != sc.Rules[0].Delay/2 {
		t.Fatalf("Scale: delay %v want %v", half.Rules[0].Delay, sc.Rules[0].Delay/2)
	}
	if sc.Rules[0].Delay == 0 {
		t.Fatal("Scale mutated the original")
	}
}
