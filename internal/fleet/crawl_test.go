package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"planetapps/internal/crawler"
	"planetapps/internal/db"
	"planetapps/internal/faultinject"
	"planetapps/internal/storeserver"
)

// canonicalDB renders a crawl database deterministically: apps sorted by
// ID (db.Apps already does), comments sorted — worker interleaving varies
// run to run, so insertion order cannot take part in the byte-identity
// check, but the set of rows must.
func canonicalDB(t *testing.T, d *db.DB) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, a := range d.Apps() {
		if err := enc.Encode(a); err != nil {
			t.Fatal(err)
		}
	}
	cs := d.Comments()
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].App != cs[j].App {
			return cs[i].App < cs[j].App
		}
		if cs[i].User != cs[j].User {
			return cs[i].User < cs[j].User
		}
		return cs[i].UnixTime < cs[j].UnixTime
	})
	for _, c := range cs {
		if err := enc.Encode(c); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// crawlInto runs one CrawlDay against url into a fresh database.
func crawlInto(t *testing.T, cfg crawler.Config) (*db.DB, crawler.Stats) {
	t.Helper()
	d := db.New()
	c, err := crawler.New(cfg, d)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	st, err := c.CrawlDay(ctx)
	if err != nil {
		t.Fatalf("crawl failed: %v", err)
	}
	return d, st
}

func crawlCfg(url string) crawler.Config {
	cfg := crawler.DefaultConfig(url)
	cfg.RatePerSec = 0
	cfg.FetchComments = true
	cfg.FetchAPKs = true
	return cfg
}

// TestCrawlThroughGatewayByteIdentical is the end-to-end identity gate for
// the fleet: a crawl through the gateway — whatever the shard count — must
// build the exact same database as a crawl of the unsharded store, both on
// the initial day and after a coordinated fleet day-roll. Opaque cursors
// differ across topologies by design; the data they paginate must not.
func TestCrawlThroughGatewayByteIdentical(t *testing.T) {
	single := singleNode(t, 40)
	ts := httptest.NewServer(single.Handler())
	defer ts.Close()
	d0, _ := crawlInto(t, crawlCfg(ts.URL))
	wantDay0 := canonicalDB(t, d0)
	if err := single.AdvanceDay(); err != nil {
		t.Fatal(err)
	}
	d1, _ := crawlInto(t, crawlCfg(ts.URL))
	wantDay1 := canonicalDB(t, d1)

	for _, shards := range []int{1, 4} {
		ip, err := NewInproc(InprocOptions{
			Shards:       shards,
			Store:        testStore,
			Scale:        testScale,
			Seed:         testSeed,
			Days:         testDays,
			CommentUsers: 300,
			Server:       storeserver.Config{PageSize: 40},
		})
		if err != nil {
			t.Fatal(err)
		}
		gw := httptest.NewServer(ip.Handler())
		fd, _ := crawlInto(t, crawlCfg(gw.URL))
		if got := canonicalDB(t, fd); !bytes.Equal(got, wantDay0) {
			t.Fatalf("%d-shard gateway crawl diverged from single-node crawl on day 0 (%d vs %d canonical bytes)",
				shards, len(got), len(wantDay0))
		}
		if err := ip.AdvanceDay(); err != nil {
			t.Fatalf("%d-shard fleet roll: %v", shards, err)
		}
		fd1, _ := crawlInto(t, crawlCfg(gw.URL))
		if got := canonicalDB(t, fd1); !bytes.Equal(got, wantDay1) {
			t.Fatalf("%d-shard gateway crawl diverged from single-node crawl after day-roll (%d vs %d canonical bytes)",
				shards, len(got), len(wantDay1))
		}
		gw.Close()
	}
}

// TestCrawlConvergesUnderShardKill kills a shard out from under a crawl:
// the shard-kill scenario resets every request to shard 0 for a window of
// arrivals (plus background flakiness fleet-wide), the gateway surfaces
// those as retryable 5xx, and the crawler's retry budget must drain the
// outage — converging to a database byte-identical to a fault-free
// single-node crawl. Outages may cost retries and time, never data.
func TestCrawlConvergesUnderShardKill(t *testing.T) {
	single := singleNode(t, 40)
	ts := httptest.NewServer(single.Handler())
	defer ts.Close()
	want := func() []byte {
		d, _ := crawlInto(t, crawlCfg(ts.URL))
		return canonicalDB(t, d)
	}()

	sc, err := faultinject.Lookup("shard-kill")
	if err != nil {
		t.Fatal(err)
	}
	ip, err := NewInproc(InprocOptions{
		Shards:       4,
		Store:        testStore,
		Scale:        testScale,
		Seed:         testSeed,
		Days:         testDays,
		CommentUsers: 300,
		Server:       storeserver.Config{PageSize: 40},
		Chaos:        &sc,
		ChaosSeed:    0x5A4DF1,
	})
	if err != nil {
		t.Fatal(err)
	}
	gw := httptest.NewServer(ip.Handler())
	defer gw.Close()

	cfg := crawlCfg(gw.URL)
	// The kill window is deterministic (p=1 for its span), so a single
	// request may need to eat the whole span in retries before the window
	// drains; Naive keeps the retry loop but strips hedging and the
	// breaker, whose fail-fast would starve the drain.
	cfg.Naive = true
	cfg.MaxRetries = 60
	cfg.Backoff = time.Millisecond
	d, st := crawlInto(t, cfg)

	if got := canonicalDB(t, d); !bytes.Equal(got, want) {
		t.Fatalf("crawl under shard-kill diverged from fault-free single-node crawl (%d vs %d canonical bytes)",
			len(got), len(want))
	}
	if st.Client.Retries == 0 {
		t.Fatal("shard-kill crawl needed no retries; the outage was never exercised")
	}
	t.Logf("shard-kill: %d requests, %d retries", st.Requests, st.Client.Retries)
}
