// Package fleet shards the synthetic appstore across N store nodes behind
// a consistent-hash gateway — the serving-side mirror of the paper's own
// measurement architecture (Figure 1: ~100 proxies fanning out over 4
// stores), and ROADMAP item 1's production-scale step. Each shard runs
// the same deterministic market simulation and serves only the partition
// of the catalog it owns (marketsim.Partitioner); the gateway routes
// single-app requests to their owner, stitches the cursor-paginated
// listing across shards with a deterministic k-way merge on global app
// ID, aggregates /stats and /metrics, and coordinates day-rolls as a
// fleet-wide two-phase epoch swap so no client ever observes a mixed-day
// catalog — not even mid-roll.
package fleet

import (
	"hash/fnv"
	"sort"
)

// DefaultVnodes is the virtual-node count per shard: enough for ±a few
// percent ownership imbalance at 4 shards, cheap enough that ring
// construction stays trivial.
const DefaultVnodes = 64

// Ring is a consistent-hash ring mapping global app IDs onto shard
// indices. It is a pure function of (shards, vnodes): every process that
// builds a ring with the same parameters — each shard's partitioner, the
// gateway, a test — agrees on ownership, with no coordination.
//
// Consistent hashing (rather than a modulus) is what keeps a future
// shard-count change from remapping nearly every app: growing N by one
// moves only ~1/N of the catalog. Cursors are still invalidated on a
// topology change (their packed per-shard anchors stop lining up), which
// the gateway reports with a clean bad_cursor envelope.
type Ring struct {
	shards int
	points []ringPoint
}

type ringPoint struct {
	hash  uint64
	shard int32
}

// NewRing builds the ring for a fleet of shards nodes with vnodes virtual
// points per shard (<=0 uses DefaultVnodes). shards must be >= 1.
func NewRing(shards, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	r := &Ring{shards: shards, points: make([]ringPoint, 0, shards*vnodes)}
	var buf [16]byte
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodes; v++ {
			putUint64(buf[0:8], uint64(s)+0x9E3779B97F4A7C15)
			putUint64(buf[8:16], uint64(v))
			r.points = append(r.points, ringPoint{hash: fnvHash(buf[:]), shard: int32(s)})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Ties (vanishingly rare) break on shard index so every process
		// sorts identically.
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// Shards returns the fleet size the ring was built for.
func (r *Ring) Shards() int { return r.shards }

// Owner returns the shard index owning global app ID id: the successor
// point of the ID's hash, wrapping at the top of the ring.
func (r *Ring) Owner(id int32) int {
	var buf [8]byte
	putUint64(buf[:], uint64(uint32(id))|0xA5A5<<48)
	h := fnvHash(buf[:])
	i := sort.Search(len(r.points), func(j int) bool { return r.points[j].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return int(r.points[i].shard)
}

// OwnsFunc returns the ownership predicate for one shard — the closure a
// shard hands to marketsim.NewPartitioner.
func (r *Ring) OwnsFunc(shard int) func(int32) bool {
	return func(id int32) bool { return r.Owner(id) == shard }
}

func putUint64(b []byte, v uint64) {
	_ = b[7]
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func fnvHash(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b) //nolint:errcheck
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer. Raw FNV-64a hashes of near-identical
// short inputs — consecutive app IDs, vnode indices — form low-rank
// lattices (each differing byte contributes a fixed multiple of a power
// of the FNV prime), and two such lattices interleave on the ring with
// systematic bias: at 2 shards x 512 vnodes the raw hashes parked 80% of
// a uniform catalog on one shard. The finalizer's shift-xor-multiply
// cascade breaks the lattice structure so ownership tracks arc length.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	return z ^ (z >> 31)
}
