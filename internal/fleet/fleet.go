package fleet

import (
	"context"
	"fmt"
	"net/http"
	"strconv"

	"planetapps"
	"planetapps/internal/faultinject"
	"planetapps/internal/marketsim"
	"planetapps/internal/storeserver"
)

// InprocOptions configures an in-process fleet.
type InprocOptions struct {
	// Shards is the fleet size (>= 1).
	Shards int
	// Store / Scale / Seed / Days configure each shard's market. Every
	// shard runs the SAME simulation — same profile, same seed — and
	// serves the disjoint slice of it the ring assigns; determinism of the
	// market (pinned since PR 3) is what lets N nodes agree on the whole
	// catalog without ever talking to each other.
	Store string
	Scale float64
	Seed  uint64
	Days  int
	// CommentUsers sizes the generated comment population (0 = none).
	CommentUsers int
	// Vnodes overrides the ring's virtual-node count (0 = default).
	Vnodes int
	// Server is the per-shard base config; Node and Partition are
	// overwritten per shard, PageSize defaults to 100.
	Server storeserver.Config
	// Chaos, when non-nil, arms the scenario on every shard via a
	// node-indexed injector — rules carrying Node target that shard only,
	// Node -1 rules fire fleet-wide.
	Chaos      *faultinject.Scenario
	ChaosSeed  uint64
	ChaosScale float64
}

// Inproc is a whole fleet in one process: N partitioned store servers
// behind a gateway, wired with in-memory transports. It serves tests,
// loadtest -shards N, and the scaling benchmark without opening a socket.
type Inproc struct {
	Servers []*storeserver.Server
	Nodes   []*ShardNode
	Gateway *Gateway
	shards  []ShardClient
	numApps int
}

// NewInproc builds the fleet.
func NewInproc(opts InprocOptions) (*Inproc, error) {
	if opts.Shards < 1 {
		return nil, fmt.Errorf("fleet: need at least 1 shard, got %d", opts.Shards)
	}
	if opts.Server.PageSize <= 0 {
		opts.Server.PageSize = 100
	}
	prof, err := planetapps.StoreProfile(opts.Store)
	if err != nil {
		return nil, err
	}
	prof = prof.Scale(opts.Scale)
	ring := NewRing(opts.Shards, opts.Vnodes)

	ip := &Inproc{}
	for k := 0; k < opts.Shards; k++ {
		cfg := planetapps.DefaultMarketConfig(prof)
		if opts.Days > 0 {
			cfg.Days = opts.Days
		}
		m, err := marketsim.New(cfg, opts.Seed)
		if err != nil {
			return nil, fmt.Errorf("fleet: shard %d market: %w", k, err)
		}
		scfg := opts.Server
		scfg.Node = "shard-" + strconv.Itoa(k)
		if opts.Shards > 1 {
			scfg.Partition = marketsim.NewPartitioner(ring.OwnsFunc(k))
		}
		srv := storeserver.New(m, scfg)
		if opts.CommentUsers > 0 {
			// Every shard generates the full comment population (it is a
			// pure function of the shared catalog and seed) and serves the
			// apps it owns out of it — the same documents a single node
			// would serve.
			cs, err := planetapps.GenerateComments(m.Catalog(), opts.CommentUsers, opts.Seed+1)
			if err != nil {
				return nil, fmt.Errorf("fleet: shard %d comments: %w", k, err)
			}
			srv.SetComments(cs)
		}
		if opts.Chaos != nil {
			sc := *opts.Chaos
			if opts.ChaosScale > 0 {
				sc = sc.Scale(opts.ChaosScale)
			}
			srv.SetChaos(faultinject.NewForNode(sc, opts.ChaosSeed, k, srv.Registry()))
		}
		node := NewShardNode(srv)
		ip.numApps = m.Catalog().NumApps()
		ip.Servers = append(ip.Servers, srv)
		ip.Nodes = append(ip.Nodes, node)
		ip.shards = append(ip.shards, ShardClient{
			Name: scfg.Node,
			Base: "http://" + scfg.Node,
			HTTP: &http.Client{Transport: HandlerTransport{Handler: node}},
			Reg:  srv.Registry(),
		})
	}
	ip.Gateway = NewGateway(Config{
		Shards:   ip.shards,
		PageSize: opts.Server.PageSize,
		Vnodes:   opts.Vnodes,
	})
	return ip, nil
}

// Handler returns the gateway's HTTP handler — the fleet's front door.
func (ip *Inproc) Handler() http.Handler { return ip.Gateway }

// Shards returns the fleet's shard clients (admin and scrape access).
func (ip *Inproc) Shards() []ShardClient { return ip.shards }

// AdvanceDay rolls the whole fleet one day via the two-phase epoch swap.
func (ip *Inproc) AdvanceDay() error {
	_, err := AdvanceFleet(context.Background(), ip.shards)
	return err
}

// Day returns the fleet's serving day (shard 0's; after AdvanceDay they
// all agree).
func (ip *Inproc) Day() int { return ip.Servers[0].Day() }

// NumApps returns the shared catalog's app count (the whole catalog, not
// one shard's partition).
func (ip *Inproc) NumApps() int { return ip.numApps }
