package fleet

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"net"
	"net/http"
	"strconv"
)

// HandlerTransport is an http.RoundTripper that dispatches requests
// straight into an http.Handler, no sockets involved. It is how the
// in-process fleet (tests, loadtest -shards N) runs a gateway over N
// shard handlers with the exact HTTP semantics of the wire — including
// chaos: a fault-injected connection reset surfaces as a transport error,
// not a phantom empty 200.
type HandlerTransport struct {
	Handler http.Handler
}

// ErrReset is the transport error surfaced when the handler killed the
// "connection" (faultinject's KindReset hijacks and slams it shut).
var ErrReset = errors.New("fleet: connection reset by handler")

// RoundTrip implements http.RoundTripper.
func (t HandlerTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	rec := newMemRecorder()
	aborted := func() (aborted bool) {
		defer func() {
			if p := recover(); p != nil {
				if p == http.ErrAbortHandler {
					aborted = true
					return
				}
				panic(p)
			}
		}()
		t.Handler.ServeHTTP(rec, req)
		return false
	}()
	if rec.hijacked || aborted {
		return nil, &net.OpError{Op: "read", Net: "mem", Err: ErrReset}
	}
	code := rec.code
	if code == 0 {
		code = http.StatusOK
	}
	body := rec.buf.Bytes()
	resp := &http.Response{
		Status:        strconv.Itoa(code) + " " + http.StatusText(code),
		StatusCode:    code,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        rec.header,
		Body:          io.NopCloser(bytes.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
	return resp, nil
}

// memRecorder is the ResponseWriter behind HandlerTransport. It differs
// from httptest's recorder in the two ways chaos needs: it implements
// Hijack (returning a throwaway pipe) so KindReset's hijack path
// registers as a dead connection instead of silently succeeding, and it
// implements Flusher so slow-loris streaming exercises the same code it
// does over a socket.
type memRecorder struct {
	header   http.Header
	buf      bytes.Buffer
	code     int
	wrote    bool
	hijacked bool
}

func newMemRecorder() *memRecorder {
	return &memRecorder{header: make(http.Header)}
}

func (m *memRecorder) Header() http.Header { return m.header }

func (m *memRecorder) WriteHeader(code int) {
	if m.wrote {
		return
	}
	m.wrote = true
	m.code = code
}

func (m *memRecorder) Write(p []byte) (int, error) {
	if m.hijacked {
		return 0, http.ErrHijacked
	}
	if !m.wrote {
		m.WriteHeader(http.StatusOK)
	}
	return m.buf.Write(p)
}

func (m *memRecorder) Flush() {}

// Hijack hands the caller one end of an in-memory pipe and marks the
// response dead. faultinject's resetConn closes the conn it gets; the
// other end is simply dropped.
func (m *memRecorder) Hijack() (net.Conn, *bufio.ReadWriter, error) {
	m.hijacked = true
	c1, c2 := net.Pipe()
	go c2.Close() //nolint:errcheck
	rw := bufio.NewReadWriter(bufio.NewReader(c1), bufio.NewWriter(c1))
	return c1, rw, nil
}
