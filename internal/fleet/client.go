package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"

	"planetapps/internal/metrics"
)

// ShardClient is the gateway's handle on one fleet member. Base is the
// shard's URL root ("http://host:port", no trailing slash); HTTP carries
// the transport — a real network client for gatewayd, a HandlerTransport
// for the in-process fleet. Reg, when non-nil (in-process only), lets the
// gateway's merged /metrics read the shard's registry directly instead of
// scraping it over HTTP.
type ShardClient struct {
	Name string
	Base string
	HTTP *http.Client
	Reg  *metrics.Registry
}

// get issues a GET and returns the response; the caller closes the body.
func (c *ShardClient) get(ctx context.Context, pathAndQuery string, hdr http.Header) (*http.Response, error) {
	return c.do(ctx, http.MethodGet, pathAndQuery, hdr, nil)
}

// do issues one proxied request with the caller's method and body — the
// write path's POSTs ride through here with their Idempotency-Key, so a
// gateway retry story stays the shard's retry story. The caller closes
// the response body.
func (c *ShardClient) do(ctx context.Context, method, pathAndQuery string, hdr http.Header, body io.Reader) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, method, c.Base+pathAndQuery, body)
	if err != nil {
		return nil, err
	}
	for k, vs := range hdr {
		req.Header[k] = vs
	}
	return c.HTTP.Do(req)
}

// admin issues one control-plane call and decodes the uniform {day} body.
func (c *ShardClient) admin(ctx context.Context, method, pathAndQuery string) (adminDay, error) {
	req, err := http.NewRequestWithContext(ctx, method, c.Base+pathAndQuery, nil)
	if err != nil {
		return adminDay{}, err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return adminDay{}, err
	}
	defer resp.Body.Close()
	var body adminDay
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&body); err != nil {
		return adminDay{}, fmt.Errorf("shard %s: %s: bad admin body: %w", c.Name, pathAndQuery, err)
	}
	if resp.StatusCode != http.StatusOK {
		return body, fmt.Errorf("shard %s: %s: status %d (%s)", c.Name, pathAndQuery, resp.StatusCode, body.Error)
	}
	return body, nil
}

// AdvanceFleet rolls every shard to the next day as one two-phase epoch
// swap. Phase 1 (prepare) has every shard step its market and build the
// next snapshot while still serving the old day — the expensive part, done
// everywhere before anything becomes visible. Phase 2 (commit) flips each
// shard's atomic snapshot pointer, so the cross-shard disagreement window
// is the commit fan-out (microseconds in process, network RTTs across
// one), not the build time; the gateway's per-request epoch check covers
// what remains. Both phases are idempotent on the shard side, so a failed
// AdvanceFleet can simply be called again: shards that already prepared
// return the same pending day, shards that already committed acknowledge
// it, and a shard that lost its pending state rebuilds it during commit.
//
// A diverged fleet — some shard serving a later day than the rest, from
// an out-of-band roll or a crash between phases — prepares unequal days.
// AdvanceFleet converges it instead of wedging: each lagging shard is
// committed at its own prepared day and re-prepared, one day per round,
// until the whole fleet's pending day is the maximum, then that day
// commits everywhere. A coherent fleet never enters the loop.
func AdvanceFleet(ctx context.Context, shards []ShardClient) (int, error) {
	days, err := fanoutAdmin(ctx, shards, "/admin/prepare")
	if err != nil {
		return 0, fmt.Errorf("fleet prepare: %w", err)
	}
	target := days[0]
	for _, d := range days {
		if d > target {
			target = d
		}
	}
	for {
		behind := false
		for i, d := range days {
			if d >= target {
				continue
			}
			behind = true
			if _, err := shards[i].admin(ctx, http.MethodPost, "/admin/commit?day="+strconv.Itoa(d)); err != nil {
				return 0, fmt.Errorf("fleet converge: shard %s commit day %d: %w", shards[i].Name, d, err)
			}
			body, err := shards[i].admin(ctx, http.MethodPost, "/admin/prepare")
			if err != nil {
				return 0, fmt.Errorf("fleet converge: shard %s re-prepare: %w", shards[i].Name, err)
			}
			if body.Day <= d {
				return 0, fmt.Errorf("fleet converge: shard %s re-prepared day %d after committing day %d",
					shards[i].Name, body.Day, d)
			}
			days[i] = body.Day
		}
		if !behind {
			break
		}
	}
	if _, err := fanoutAdmin(ctx, shards, "/admin/commit?day="+strconv.Itoa(target)); err != nil {
		return 0, fmt.Errorf("fleet commit day %d: %w", target, err)
	}
	return target, nil
}

// fanoutAdmin POSTs one admin path to every shard concurrently and
// collects the reported days, failing on the first shard error.
func fanoutAdmin(ctx context.Context, shards []ShardClient, pathAndQuery string) ([]int, error) {
	days := make([]int, len(shards))
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for i := range shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, err := shards[i].admin(ctx, http.MethodPost, pathAndQuery)
			days[i], errs[i] = body.Day, err
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return days, nil
}

// FleetDay asks every shard for its serving day; coherent reports the
// fleet agreeing on one epoch.
func FleetDay(ctx context.Context, shards []ShardClient) (day int, coherent bool, err error) {
	days := make([]int, len(shards))
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for i := range shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, e := shards[i].admin(ctx, http.MethodGet, "/admin/day")
			days[i], errs[i] = body.Day, e
		}(i)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return 0, false, e
		}
	}
	day, coherent = days[0], true
	for _, d := range days {
		if d != day {
			coherent = false
		}
		if d > day {
			day = d
		}
	}
	return day, coherent, nil
}
