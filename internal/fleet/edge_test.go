package fleet

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strconv"
	"testing"

	"planetapps/internal/edgecache"
)

func mustUnmarshal(t *testing.T, b []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(b, v); err != nil {
		t.Fatalf("unmarshal: %v (%.120s)", err, b)
	}
}

// TestEdgeCacheOverGateway stacks the serving tiers the ROADMAP describes:
// edge cache -> consistent-hash gateway -> sharded store fleet. The edge
// must serve the exact bytes a single unsharded node would — on misses
// (filled through the gateway's scatter/merge) and again on hits (served
// from cache) — because the gateway preserves the origin's ETag and
// Cache-Control discipline that the edge's correctness rests on.
func TestEdgeCacheOverGateway(t *testing.T) {
	single := singleNode(t, 7)
	ip := newFleet(t, 4, 7)

	edge, err := edgecache.New(edgecache.Config{
		Origin:          "http://gateway",
		OriginTransport: HandlerTransport{Handler: ip.Handler()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer edge.Close()

	_, statsBody := get(t, single.Handler(), "/api/v1/stats", nil)
	var paths []string
	paths = append(paths, "/api/v1/stats", "/api/v1/apps")
	var stats struct {
		Apps int `json:"apps"`
	}
	mustUnmarshal(t, statsBody, &stats)
	for id := 0; id < stats.Apps; id++ {
		paths = append(paths, "/api/v1/apps/"+strconv.Itoa(id))
	}

	// Identity headers keep the comparison on the canonical representation
	// (negotiation is covered by the storeserver and edgecache suites).
	hdr := http.Header{"Accept-Encoding": []string{"identity"}}
	for pass := 0; pass < 2; pass++ {
		for _, p := range paths {
			wantResp, wantBody := get(t, single.Handler(), p, hdr)
			gotResp, gotBody := get(t, edge.Handler(), p, hdr)
			if gotResp.StatusCode != wantResp.StatusCode {
				t.Fatalf("pass %d %s: status %d want %d", pass, p, gotResp.StatusCode, wantResp.StatusCode)
			}
			if p == "/api/v1/apps" {
				// Listing bodies match row-for-row; next_cursor is opaque
				// and topology-specific, so compare the rows.
				var w, g cursorPage
				mustUnmarshal(t, wantBody, &w)
				mustUnmarshal(t, gotBody, &g)
				if w.Total != g.Total || len(w.Apps) != len(g.Apps) {
					t.Fatalf("pass %d %s: page shape diverged", pass, p)
				}
				for i := range w.Apps {
					if !bytes.Equal(w.Apps[i], g.Apps[i]) {
						t.Fatalf("pass %d %s: row %d diverged", pass, p, i)
					}
				}
				continue
			}
			if !bytes.Equal(gotBody, wantBody) {
				t.Fatalf("pass %d %s: body through edge+gateway diverged from single node (%d vs %d bytes)",
					pass, p, len(gotBody), len(wantBody))
			}
			if ge, we := gotResp.Header.Get("Etag"), wantResp.Header.Get("Etag"); ge != we {
				t.Fatalf("pass %d %s: Etag %q want %q", pass, p, ge, we)
			}
		}
	}
	st := edge.Stats()
	if st.Hits+st.Revalidated == 0 {
		t.Fatalf("second pass never used the cache: %+v", st)
	}

	// Roll both worlds one day: the fleet via the two-phase epoch swap.
	// The edge's cached entries now carry stale ETags; revalidation
	// against the gateway must converge every path to the new day's bytes.
	if err := single.AdvanceDay(); err != nil {
		t.Fatal(err)
	}
	if err := ip.AdvanceDay(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"/api/v1/stats", "/api/v1/apps/0"} {
		_, wantBody := get(t, single.Handler(), p, hdr)
		_, gotBody := get(t, edge.Handler(), p, hdr)
		if !bytes.Equal(gotBody, wantBody) {
			t.Fatalf("after day-roll %s: edge served stale or diverged bytes", p)
		}
	}
}
