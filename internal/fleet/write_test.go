package fleet

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"planetapps/internal/storeserver"
)

// post sends one POST through the in-memory transport.
func post(t *testing.T, h http.Handler, path, body, idemKey string) (*http.Response, []byte) {
	t.Helper()
	client := &http.Client{Transport: HandlerTransport{Handler: h}}
	req, err := http.NewRequest(http.MethodPost, "http://test"+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if idemKey != "" {
		req.Header.Set("Idempotency-Key", idemKey)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestGatewayRoutesWrites drives the write path through a 2-shard fleet:
// the gateway forwards each POST to the app's owning shard, acks flow
// back with their headers, and after an AdvanceFleet roll every
// acknowledged write is visible through the gateway — details, comments,
// and the summed stats document.
func TestGatewayRoutesWrites(t *testing.T) {
	ip := newFleet(t, 2, 50)
	gw := ip.Handler()

	var statsBefore storeserver.StatsJSON
	if resp, body := get(t, gw, "/api/v1/stats", nil); resp.StatusCode != 200 {
		t.Fatalf("stats: %d", resp.StatusCode)
	} else if err := json.Unmarshal(body, &statsBefore); err != nil {
		t.Fatal(err)
	}

	// Hit enough apps that both shards own some of the writes.
	apps := []int{0, 1, 2, 3, 4, 5, 6, 7}
	befores := make(map[int]int64, len(apps))
	for _, id := range apps {
		var a storeserver.AppJSON
		_, body := get(t, gw, "/api/v1/apps/"+strconv.Itoa(id), nil)
		if err := json.Unmarshal(body, &a); err != nil {
			t.Fatal(err)
		}
		befores[id] = a.Downloads
	}

	for _, id := range apps {
		p := "/api/v1/apps/" + strconv.Itoa(id)
		resp, body := post(t, gw, p+"/download", `{"user":501}`, "gw-"+strconv.Itoa(id))
		if resp.StatusCode != 200 {
			t.Fatalf("POST %s/download: %d %s", p, resp.StatusCode, body)
		}
		var ack storeserver.WriteAckJSON
		if err := json.Unmarshal(body, &ack); err != nil || !ack.Accepted {
			t.Fatalf("ack %s: %v", body, err)
		}
		if resp.Header.Get("X-Store-Day") == "" {
			t.Fatal("proxied ack lost X-Store-Day")
		}
		// Idempotent replay through the gateway dedups on the owning shard.
		resp, body = post(t, gw, p+"/download", `{"user":501}`, "gw-"+strconv.Itoa(id))
		var replay storeserver.WriteAckJSON
		if err := json.Unmarshal(body, &replay); err != nil || !replay.Deduped || replay.Seq != ack.Seq {
			t.Fatalf("replay %d %s (want seq %d deduped)", resp.StatusCode, body, ack.Seq)
		}
		if resp, body = post(t, gw, p+"/comments", `{"user":501,"rating":4}`, ""); resp.StatusCode != 200 {
			t.Fatalf("POST %s/comments: %d %s", p, resp.StatusCode, body)
		}
	}

	// The writes spread across both shards (consistent hashing over 8 apps
	// makes a single-owner split astronomically unlikely with 2 shards).
	withWrites := 0
	for _, srv := range ip.Servers {
		if srv.WALStats().Accepted > 0 {
			withWrites++
		}
	}
	if withWrites != 2 {
		t.Fatalf("writes landed on %d of 2 shards", withWrites)
	}

	if err := ip.AdvanceDay(); err != nil {
		t.Fatal(err)
	}

	for _, id := range apps {
		p := "/api/v1/apps/" + strconv.Itoa(id)
		var a storeserver.AppJSON
		_, body := get(t, gw, p, nil)
		if err := json.Unmarshal(body, &a); err != nil {
			t.Fatal(err)
		}
		if a.Downloads < befores[id]+1 {
			t.Fatalf("app %d: downloads %d -> %d, write lost", id, befores[id], a.Downloads)
		}
		var cs []storeserver.CommentJSON
		_, body = get(t, gw, p+"/comments", nil)
		if err := json.Unmarshal(body, &cs); err != nil {
			t.Fatal(err)
		}
		found := false
		for _, c := range cs {
			if c.User == 501 && c.Rating == 4 {
				found = true
			}
		}
		if !found {
			t.Fatalf("app %d: merged comment missing", id)
		}
	}

	var statsAfter storeserver.StatsJSON
	_, body := get(t, gw, "/api/v1/stats", nil)
	if err := json.Unmarshal(body, &statsAfter); err != nil {
		t.Fatal(err)
	}
	if statsAfter.TotalDownloads < statsBefore.TotalDownloads+int64(len(apps)) {
		t.Fatalf("summed stats %d -> %d, want >= +%d",
			statsBefore.TotalDownloads, statsAfter.TotalDownloads, len(apps))
	}

	// No lost acknowledged writes anywhere in the fleet.
	for i, srv := range ip.Servers {
		st := srv.WALStats()
		if st.Accepted != st.Merged || st.Pending != 0 {
			t.Fatalf("shard %d wal stats: %+v", i, st)
		}
	}
}

// TestGatewayWriteMethodSurface pins the fleet-level 405 satellite: the
// gateway answers wrong methods on non-app routes itself (v1 envelope,
// legacy plain), and lets the owning shard render verdicts for app-scoped
// paths — including the shard's 405 for a GET on a write-only tail.
func TestGatewayWriteMethodSurface(t *testing.T) {
	ip := newFleet(t, 2, 50)
	gw := ip.Handler()

	resp, body := post(t, gw, "/api/v1/stats", "{}", "")
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != "GET, HEAD" {
		t.Fatalf("POST /api/v1/stats: %d Allow %q", resp.StatusCode, resp.Header.Get("Allow"))
	}
	var e storeserver.ErrorJSON
	if json.Unmarshal(body, &e) != nil || e.Error.Code != "method_not_allowed" {
		t.Fatalf("gateway v1 405 envelope: %s", body)
	}

	resp, body = post(t, gw, "/api/stats", "{}", "")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /api/stats: %d", resp.StatusCode)
	}
	if strings.TrimSpace(string(body)) != "Method Not Allowed" {
		t.Fatalf("legacy 405 body changed: %q", body)
	}

	// App-scoped wrong method is the shard's verdict, proxied intact.
	client := &http.Client{Transport: HandlerTransport{Handler: gw}}
	req, _ := http.NewRequest(http.MethodGet, "http://test/api/v1/apps/3/download", nil)
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != "POST" {
		t.Fatalf("GET write tail via gateway: %d Allow %q body %s",
			resp.StatusCode, resp.Header.Get("Allow"), b)
	}
	if json.Unmarshal(b, &e) != nil || e.Error.Code != "method_not_allowed" {
		t.Fatalf("proxied 405 envelope: %s", b)
	}
}
