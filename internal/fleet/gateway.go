package fleet

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"hash/fnv"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"planetapps/internal/metrics"
	"planetapps/internal/storeserver"
)

// Config configures a Gateway.
type Config struct {
	// Shards is the fleet, in ring order: Shards[i] must be the node
	// serving ring shard i.
	Shards []ShardClient
	// PageSize is the listing page size, which must match the shards'
	// storeserver.Config.PageSize for assembled pages to be byte-compatible
	// with a single node's.
	PageSize int
	// Vnodes is the consistent-hash ring's virtual-node count per shard
	// (<= 0 uses DefaultVnodes). Must match the value the shards'
	// partitioners were built with.
	Vnodes int
	// EpochRetries bounds how many times a scatter request is retried when
	// the shards' X-Store-Day headers disagree (a day-roll commit fanning
	// out mid-request) before giving up with 503 epoch_skew. <= 0 uses 3.
	EpochRetries int
}

// Gateway is the fleet's front door: one HTTP surface, N shards behind
// it. Single-app routes are proxied to their ring owner untouched; the
// listing is stitched across shards by a deterministic k-way merge on
// global app ID; /stats aggregates; /metrics merges every node's
// registry. Every scatter response is checked for epoch coherence — the
// gateway never returns data mixing two simulated days, even while a
// fleet day-roll's commits are fanning out.
type Gateway struct {
	cfg  Config
	ring *Ring
	reg  *metrics.Registry

	// rollMu serializes /admin/roll coordinations.
	rollMu sync.Mutex

	reqs         map[string]*metrics.Counter
	proxied      *metrics.Counter
	mergedPages  *metrics.Counter
	epochRetries *metrics.Counter
	epochSkews   *metrics.Counter
	shardErrors  *metrics.Counter
	mergeSeconds *metrics.Histogram
}

// NewGateway builds a gateway over cfg.Shards.
func NewGateway(cfg Config) *Gateway {
	if cfg.PageSize <= 0 {
		cfg.PageSize = 100
	}
	if cfg.EpochRetries <= 0 {
		cfg.EpochRetries = 3
	}
	g := &Gateway{
		cfg:  cfg,
		ring: NewRing(len(cfg.Shards), cfg.Vnodes),
		reg:  metrics.NewRegistry(),
	}
	g.reg.SetNode("gateway")
	g.reqs = map[string]*metrics.Counter{}
	for _, route := range []string{"stats", "list", "proxy", "metrics", "admin", "other"} {
		g.reqs[route] = g.reg.Counter(`gateway_requests_total{route="` + route + `"}`)
	}
	g.proxied = g.reg.Counter("gateway_proxied_total")
	g.mergedPages = g.reg.Counter("gateway_merged_pages_total")
	g.epochRetries = g.reg.Counter("gateway_epoch_retries_total")
	g.epochSkews = g.reg.Counter("gateway_epoch_skew_total")
	g.shardErrors = g.reg.Counter("gateway_shard_errors_total")
	g.mergeSeconds = g.reg.Histogram("gateway_merge_seconds")
	return g
}

// Registry returns the gateway's own metrics registry.
func (g *Gateway) Registry() *metrics.Registry { return g.reg }

// Stats is a point-in-time snapshot of the gateway's own counters, for
// reports that want the numbers without scraping /metrics.
type Stats struct {
	Proxied      int64 `json:"proxied"`
	MergedPages  int64 `json:"merged_pages"`
	EpochRetries int64 `json:"epoch_retries"`
	EpochSkews   int64 `json:"epoch_skews"`
	ShardErrors  int64 `json:"shard_errors"`
}

// Stats snapshots the gateway counters.
func (g *Gateway) Stats() Stats {
	return Stats{
		Proxied:      g.proxied.Value(),
		MergedPages:  g.mergedPages.Value(),
		EpochRetries: g.epochRetries.Value(),
		EpochSkews:   g.epochSkews.Value(),
		ShardErrors:  g.shardErrors.Value(),
	}
}

// Ring returns the gateway's routing ring (for tests and partition setup).
func (g *Gateway) Ring() *Ring { return g.ring }

// ServeHTTP implements http.Handler.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/metrics":
		g.reqs["metrics"].Inc()
		g.serveMetrics(w, r)
		return
	case r.URL.Path == "/admin/roll":
		g.reqs["admin"].Inc()
		g.serveRoll(w, r)
		return
	case r.URL.Path == "/admin/day":
		g.reqs["admin"].Inc()
		g.serveDay(w, r)
		return
	}
	kind, v1, rest := parseGatewayPath(r.URL.Path)
	if kind == gwNone {
		g.reqs["other"].Inc()
		http.NotFound(w, r)
		return
	}
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		// The owner shard is authoritative for the single-app v1 routes —
		// including the POST write endpoints — so those proxy through with
		// method and body intact and the shard renders any 405 with the
		// route's true Allow set. Every other combination keeps the
		// gateway-local 405: the historical plain bytes on legacy, the
		// error envelope on v1.
		if !(v1 && kind == gwApp) {
			w.Header().Set("Allow", "GET, HEAD")
			if v1 {
				g.writeError(w, true, &gwError{http.StatusMethodNotAllowed, "method_not_allowed",
					"method " + r.Method + " is not supported by this resource; allowed: GET, HEAD"})
			} else {
				http.Error(w, "Method Not Allowed", http.StatusMethodNotAllowed)
			}
			return
		}
	}
	switch kind {
	case gwStats:
		g.reqs["stats"].Inc()
		g.serveStats(w, r, v1)
	case gwList:
		g.reqs["list"].Inc()
		g.serveList(w, r, v1)
	default: // gwApp: detail, comments, apk
		g.reqs["proxy"].Inc()
		g.serveApp(w, r, v1, rest)
	}
}

// --- routing ---------------------------------------------------------------

const (
	gwNone = iota
	gwStats
	gwList
	gwApp
)

// parseGatewayPath classifies an /api path the way the store's router
// does, without resolving the app ID (the owner shard parses and
// validates it). rest is the "{id}[/comments|/apk]" tail for gwApp.
func parseGatewayPath(p string) (kind int, v1 bool, rest string) {
	if !strings.HasPrefix(p, "/api/") {
		return gwNone, false, ""
	}
	tail := p[len("/api"):]
	if strings.HasPrefix(tail, "/v1/") {
		v1 = true
		tail = tail[len("/v1"):]
	}
	switch tail {
	case "/stats":
		return gwStats, v1, ""
	case "/apps":
		return gwList, v1, ""
	}
	if strings.HasPrefix(tail, "/apps/") {
		return gwApp, v1, tail[len("/apps/"):]
	}
	return gwNone, v1, ""
}

// gwError is a fleet-level failure to be rendered in the dialect of the
// surface it hit.
type gwError struct {
	status int
	code   string
	msg    string
}

func (g *Gateway) writeError(w http.ResponseWriter, v1 bool, e *gwError) {
	if v1 {
		h := w.Header()
		h.Set("Content-Type", "application/json")
		h.Set("X-API-Version", "1")
		h.Set("Cache-Control", "no-store")
		w.WriteHeader(e.status)
		json.NewEncoder(w).Encode(storeserver.ErrorJSON{ //nolint:errcheck
			Error: storeserver.ErrorBody{Code: e.code, Message: e.msg},
		})
		return
	}
	http.Error(w, e.msg, e.status)
}

// --- single-app proxy ------------------------------------------------------

// proxyHopHeaders are the request headers forwarded to the owner shard:
// the validators and negotiation the store honours, the client identity
// chain the shard's rate limiter buckets by, and the write path's
// idempotency and body-type markers (absent on reads, so forwarding the
// list costs reads nothing).
var proxyHopHeaders = []string{"If-None-Match", "Accept-Encoding", "User-Agent", "Idempotency-Key", "Content-Type"}

// serveApp forwards a single-app route to the shard owning the app ID.
// The response — status, headers, body, byte for byte — is the shard's:
// detail, comments, and APK documents through the gateway are exactly
// what a single node serves, gzip negotiation and 304s included.
func (g *Gateway) serveApp(w http.ResponseWriter, r *http.Request, v1 bool, rest string) {
	seg := rest
	if i := strings.IndexByte(seg, '/'); i >= 0 {
		seg = seg[:i]
	}
	id, ok := parseID(seg)
	if !ok {
		if v1 {
			g.writeError(w, true, &gwError{http.StatusBadRequest, "bad_app_id",
				"app id must be a non-negative integer"})
		} else {
			http.Error(w, "bad app id", http.StatusBadRequest)
		}
		return
	}
	shard := &g.cfg.Shards[g.ring.Owner(id)]
	hdr := make(http.Header, 4)
	for _, k := range proxyHopHeaders {
		if v := r.Header.Get(k); v != "" {
			hdr.Set(k, v)
		}
	}
	hdr.Set("X-Forwarded-For", forwardedFor(r))
	pathAndQuery := r.URL.Path
	if r.URL.RawQuery != "" {
		pathAndQuery += "?" + r.URL.RawQuery
	}
	var body io.Reader
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		body = r.Body
	}
	resp, err := shard.do(r.Context(), r.Method, pathAndQuery, hdr, body)
	if err != nil {
		g.shardErrors.Inc()
		g.writeError(w, v1, &gwError{http.StatusBadGateway, "shard_unreachable",
			"shard " + shard.Name + " unreachable"})
		return
	}
	defer resp.Body.Close()
	h := w.Header()
	for k, vs := range resp.Header {
		h[k] = vs
	}
	w.WriteHeader(resp.StatusCode)
	io.CopyBuffer(w, resp.Body, nil) //nolint:errcheck // client gone; nothing useful to do
	g.proxied.Inc()
}

// forwardedFor extends the client's X-Forwarded-For chain with the hop
// that reached the gateway, so the shards' per-client rate limiting (and
// anything else keyed on the originating client) behaves exactly as it
// would without the gateway in the path.
func forwardedFor(r *http.Request) string {
	host := r.RemoteAddr
	if h, _, err := net.SplitHostPort(host); err == nil {
		host = h
	}
	if xff := r.Header.Get("X-Forwarded-For"); xff != "" {
		return xff + ", " + host
	}
	return host
}

// parseID parses a decimal non-negative int32.
func parseID(s string) (int32, bool) {
	if s == "" || len(s) > 10 {
		return 0, false
	}
	var v int64
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		v = v*10 + int64(c-'0')
	}
	if v > 1<<31-1 {
		return 0, false
	}
	return int32(v), true
}

// --- stats aggregation -----------------------------------------------------

// shardStats is one shard's parsed /api/v1/stats response.
type shardStats struct {
	stats storeserver.StatsJSON
	day   string
	cc    string
	age   string
}

// serveStats scatters /api/v1/stats to every shard, verifies the fleet is
// on one epoch, and serves the summed document. The body and ETag are
// byte-identical to what a single node holding the whole catalog would
// serve: apps and downloads sum across disjoint partitions, and the ETag
// is the same "s<day>-t<total>" content hash.
func (g *Gateway) serveStats(w http.ResponseWriter, r *http.Request, v1 bool) {
	var agg storeserver.StatsJSON
	var day, cc, age string
	err := g.retryEpoch(func() (string, *gwError) {
		results := make([]shardStats, len(g.cfg.Shards))
		gerr := g.scatter(r.Context(), func(ctx context.Context, i int) *gwError {
			resp, err := g.cfg.Shards[i].get(ctx, "/api/v1/stats", nil)
			if err != nil {
				return &gwError{http.StatusBadGateway, "shard_unreachable",
					"shard " + g.cfg.Shards[i].Name + " unreachable"}
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return &gwError{http.StatusServiceUnavailable, "shard_unavailable",
					"shard " + g.cfg.Shards[i].Name + " answered " + strconv.Itoa(resp.StatusCode)}
			}
			var s storeserver.StatsJSON
			if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
				return &gwError{http.StatusBadGateway, "shard_bad_response",
					"shard " + g.cfg.Shards[i].Name + ": " + err.Error()}
			}
			results[i] = shardStats{
				stats: s,
				day:   resp.Header.Get("X-Store-Day"),
				cc:    resp.Header.Get("Cache-Control"),
				age:   resp.Header.Get("Age"),
			}
			return nil
		})
		if gerr != nil {
			return "", gerr
		}
		agg = storeserver.StatsJSON{Store: results[0].stats.Store, Day: results[0].stats.Day}
		day, cc, age = results[0].day, results[0].cc, results[0].age
		for _, res := range results {
			if res.day != day {
				return "", nil // epoch skew: caller retries
			}
			agg.Apps += res.stats.Apps
			agg.TotalDownloads += res.stats.TotalDownloads
		}
		return day, nil
	})
	if err != nil {
		g.writeError(w, v1, err)
		return
	}
	etag := `"s` + day + `-t` + strconv.FormatInt(agg.TotalDownloads, 10) + `"`
	h := w.Header()
	if v1 {
		h.Set("X-API-Version", "1")
		if cc != "" {
			h.Set("Cache-Control", cc)
		}
		if age != "" {
			h.Set("Age", age)
		}
		h.Set("Vary", "Accept-Encoding")
	}
	h.Set("Etag", etag)
	h.Set("X-Store-Day", day)
	if inm := r.Header.Get("If-None-Match"); inmMatch(inm, etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	var buf bytes.Buffer
	json.NewEncoder(&buf).Encode(agg) //nolint:errcheck
	h.Set("Content-Type", "application/json")
	h.Set("Content-Length", strconv.Itoa(buf.Len()))
	w.Write(buf.Bytes()) //nolint:errcheck // client gone; nothing useful to do
}

// --- cross-shard listing ---------------------------------------------------

// gwCursorPrefix versions the packed gateway cursor format.
const gwCursorPrefix = "g1:"

// packCursor renders the gateway cursor: per-shard global-app-ID anchors,
// one per ring shard, wrapped opaque. Anchors are global IDs, not row
// indices, so a packed cursor stays valid across fleet day-rolls (the
// catalog is append-only) — the same stability the single-node cursor
// has, lifted to the fleet.
func packCursor(anchors []int32) string {
	var sb strings.Builder
	sb.WriteString(gwCursorPrefix)
	sb.WriteString(strconv.Itoa(len(anchors)))
	for _, a := range anchors {
		sb.WriteByte(':')
		sb.WriteString(strconv.FormatInt(int64(a), 10))
	}
	return base64.RawURLEncoding.EncodeToString([]byte(sb.String()))
}

// unpackCursor parses a packed gateway cursor. shards mismatching the
// current ring (a fleet resize since the cursor was minted) is reported
// as !ok — the anchors would resume against the wrong partitions.
func unpackCursor(cur string, shards int) ([]int32, bool) {
	raw, err := base64.RawURLEncoding.DecodeString(cur)
	if err != nil || !strings.HasPrefix(string(raw), gwCursorPrefix) {
		return nil, false
	}
	parts := strings.Split(string(raw[len(gwCursorPrefix):]), ":")
	if len(parts) < 1 {
		return nil, false
	}
	k, err := strconv.Atoi(parts[0])
	if err != nil || k != shards || len(parts) != k+1 {
		return nil, false
	}
	anchors := make([]int32, k)
	for i, p := range parts[1:] {
		v, err := strconv.ParseInt(p, 10, 32)
		if err != nil || v < 0 {
			return nil, false
		}
		anchors[i] = int32(v)
	}
	return anchors, true
}

// appRow is one listing row as fetched from a shard: the app's global ID
// (the merge key) plus the shard's exact encoded bytes, spliced verbatim
// into the assembled page so a row through the gateway is byte-identical
// to the same row from a single node.
type appRow struct {
	id  int32
	raw json.RawMessage
}

func (a *appRow) UnmarshalJSON(b []byte) error {
	var key struct {
		ID int32 `json:"id"`
	}
	if err := json.Unmarshal(b, &key); err != nil {
		return err
	}
	a.id = key.ID
	a.raw = append(json.RawMessage(nil), b...)
	return nil
}

// shardPage is one shard's parsed cursor-page response.
type shardPage struct {
	Apps       []appRow `json:"apps"`
	NextCursor string   `json:"next_cursor"`
	Total      int      `json:"total"`

	next int32 // decoded NextCursor anchor; -1 = shard reported no more
	day  string
	etag string
	cc   string
	age  string
}

// gwCursorPage mirrors storeserver.CursorPageJSON with pre-encoded rows.
type gwCursorPage struct {
	Apps       []json.RawMessage `json:"apps"`
	NextCursor string            `json:"next_cursor,omitempty"`
	Total      int               `json:"total"`
}

// gwPage mirrors storeserver.PageJSON with pre-encoded rows.
type gwPage struct {
	Apps  []json.RawMessage `json:"apps"`
	Page  int               `json:"page"`
	Pages int               `json:"pages"`
	Total int               `json:"total"`
}

// assembled is one merged gateway listing page.
type assembled struct {
	rows    []json.RawMessage
	anchors []int32 // next per-shard anchors after this page
	done    bool    // every shard drained: no next page
	total   int
	day     string
	etag    string
	cc      string
	age     string
}

// fetchShardPage pulls one shard's listing slice anchored at a global ID.
func (g *Gateway) fetchShardPage(ctx context.Context, i int, anchor int32, limit int) (*shardPage, *gwError) {
	c := &g.cfg.Shards[i]
	path := "/api/v1/apps?cursor=" + storeserver.EncodeCursor(int(anchor)) +
		"&limit=" + strconv.Itoa(limit)
	resp, err := c.get(ctx, path, nil)
	if err != nil {
		return nil, &gwError{http.StatusBadGateway, "shard_unreachable",
			"shard " + c.Name + " unreachable"}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, &gwError{http.StatusServiceUnavailable, "shard_unavailable",
			"shard " + c.Name + " answered " + strconv.Itoa(resp.StatusCode)}
	}
	var page shardPage
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		return nil, &gwError{http.StatusBadGateway, "shard_bad_response",
			"shard " + c.Name + ": " + err.Error()}
	}
	page.next = -1
	if page.NextCursor != "" {
		v, ok := storeserver.DecodeCursor(page.NextCursor)
		if !ok {
			return nil, &gwError{http.StatusBadGateway, "shard_bad_response",
				"shard " + c.Name + ": undecodable next_cursor"}
		}
		page.next = int32(v)
	}
	page.day = resp.Header.Get("X-Store-Day")
	page.etag = resp.Header.Get("Etag")
	page.cc = resp.Header.Get("Cache-Control")
	page.age = resp.Header.Get("Age")
	return &page, nil
}

// assemble builds one merged listing page of up to limit rows starting at
// the per-shard anchors. Every shard is consulted — a shard believed
// exhausted still gets a probe, because a day-roll may have grown its
// partition (append-only catalog) and because the page's epoch check and
// total must cover the whole fleet. Rows merge in ascending global app ID
// order, which is exactly a single node's listing order, so the union
// walk is the single-node walk. Returns (nil, nil) on epoch skew — the
// caller's retry loop re-fetches; anchors are global IDs, valid in any
// epoch, so the retry needs no repositioning.
func (g *Gateway) assemble(ctx context.Context, anchors []int32, limit int) (*assembled, *gwError) {
	k := len(g.cfg.Shards)
	pages := make([]*shardPage, k)
	gerr := g.scatter(ctx, func(ctx context.Context, i int) *gwError {
		p, e := g.fetchShardPage(ctx, i, anchors[i], limit)
		pages[i] = p
		return e
	})
	if gerr != nil {
		return nil, gerr
	}
	day := pages[0].day
	for _, p := range pages {
		if p.day != day {
			return nil, nil // epoch skew
		}
	}

	out := &assembled{
		anchors: make([]int32, k),
		day:     day,
		cc:      pages[0].cc,
		age:     pages[0].age,
	}
	heads := make([]int, k)
	for _, p := range pages {
		out.total += p.Total
	}
	for len(out.rows) < limit {
		best := -1
		for i, p := range pages {
			if heads[i] < len(p.Apps) &&
				(best < 0 || p.Apps[heads[i]].id < pages[best].Apps[heads[best]].id) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		out.rows = append(out.rows, pages[best].Apps[heads[best]].raw)
		heads[best]++
	}
	out.done = true
	for i, p := range pages {
		switch {
		case heads[i] < len(p.Apps):
			// Unconsumed buffered rows: resume at the first of them.
			out.anchors[i] = p.Apps[heads[i]].id
			out.done = false
		case p.next >= 0:
			// Buffer drained but the shard has more.
			out.anchors[i] = p.next
			out.done = false
		case len(p.Apps) > 0:
			// Shard exhausted: park just past its last row, where rows
			// appended by a future day-roll will appear.
			out.anchors[i] = p.Apps[len(p.Apps)-1].id + 1
		default:
			out.anchors[i] = anchors[i]
		}
	}

	// The gateway's validator digests the constituents' content-derived
	// ETags plus the request's position, so it revalidates (304) exactly
	// when every spanned shard slice is unchanged — including across
	// day-rolls that left the span untouched.
	h := fnv.New64a()
	for i, p := range pages {
		h.Write([]byte(strconv.FormatInt(int64(anchors[i]), 10))) //nolint:errcheck
		h.Write([]byte{':'})                                      //nolint:errcheck
		h.Write([]byte(p.etag))                                   //nolint:errcheck
		h.Write([]byte{';'})                                      //nolint:errcheck
	}
	out.etag = `"g` + strconv.FormatUint(h.Sum64(), 16) + `"`
	return out, nil
}

// retryEpoch runs one scatter attempt up to EpochRetries+1 times. An
// attempt returns its observed day ("" = shards disagreed → retry) or a
// hard error. Exhausting retries yields 503 epoch_skew — the fleet was
// mid-commit the whole time, which a two-phase roll makes vanishingly
// brief, so a client retry will land in the new epoch.
func (g *Gateway) retryEpoch(attempt func() (string, *gwError)) *gwError {
	for try := 0; ; try++ {
		day, err := attempt()
		if err != nil {
			g.shardErrors.Inc()
			return err
		}
		if day != "" {
			return nil
		}
		if try >= g.cfg.EpochRetries {
			g.epochSkews.Inc()
			return &gwError{http.StatusServiceUnavailable, "epoch_skew",
				"fleet day-roll in progress; retry"}
		}
		g.epochRetries.Inc()
	}
}

// scatter runs fn(i) for every shard concurrently and returns the first
// error by shard order.
func (g *Gateway) scatter(ctx context.Context, fn func(ctx context.Context, i int) *gwError) *gwError {
	errs := make([]*gwError, len(g.cfg.Shards))
	var wg sync.WaitGroup
	for i := range g.cfg.Shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(ctx, i)
		}(i)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// serveList handles /api/apps and /api/v1/apps. Cursor walks (v1) are the
// fleet's native listing: per-shard anchors packed into one opaque
// cursor, pages assembled by ID merge. Page addressing is served for page
// 0 (the entry point crawlers and smoke checks hit); deep page numbers
// would need a global offset index the partitions don't keep, and every
// consumer since PR 5 paginates by cursor, so deeper pages answer with an
// explicit error instead of silently wrong slices.
func (g *Gateway) serveList(w http.ResponseWriter, r *http.Request, v1 bool) {
	start := time.Now()
	defer g.mergeSeconds.ObserveSince(start)
	q := r.URL.Query()
	cursor, hasCursor := q["cursor"]
	page, hasPage := q["page"]
	if v1 && hasCursor {
		if hasPage {
			g.writeError(w, true, &gwError{http.StatusBadRequest, "bad_request",
				"page and cursor are mutually exclusive"})
			return
		}
		cur := ""
		if len(cursor) > 0 {
			cur = cursor[0]
		}
		anchors := make([]int32, len(g.cfg.Shards))
		if cur != "" {
			a, ok := unpackCursor(cur, len(g.cfg.Shards))
			if !ok {
				g.writeError(w, true, &gwError{http.StatusBadRequest, "bad_cursor",
					"cursor is invalid, from an incompatible version, or from a different fleet topology"})
				return
			}
			anchors = a
		}
		g.serveCursorPage(w, r, anchors)
		return
	}
	pageNo := 0
	if hasPage && len(page) > 0 && page[0] != "" {
		v, ok := parseID(page[0])
		if !ok {
			if v1 {
				g.writeError(w, true, &gwError{http.StatusBadRequest, "bad_page",
					"page must be a non-negative integer"})
			} else {
				http.Error(w, "bad page", http.StatusBadRequest)
			}
			return
		}
		pageNo = int(v)
	}
	if pageNo > 0 {
		if v1 {
			g.writeError(w, true, &gwError{http.StatusBadRequest, "page_unsupported",
				"the fleet gateway serves page 0 only; paginate with cursors"})
		} else {
			http.Error(w, "the fleet gateway serves page 0 only; paginate with cursors", http.StatusBadRequest)
		}
		return
	}
	g.servePageZero(w, r, v1)
}

// serveCursorPage assembles and serves one merged cursor page.
func (g *Gateway) serveCursorPage(w http.ResponseWriter, r *http.Request, anchors []int32) {
	var asm *assembled
	err := g.retryEpoch(func() (string, *gwError) {
		a, e := g.assemble(r.Context(), anchors, g.cfg.PageSize)
		if e != nil {
			return "", e
		}
		if a == nil {
			return "", nil
		}
		asm = a
		return a.day, nil
	})
	if err != nil {
		g.writeError(w, true, err)
		return
	}
	g.mergedPages.Inc()
	h := w.Header()
	h.Set("X-API-Version", "1")
	if asm.cc != "" {
		h.Set("Cache-Control", asm.cc)
	}
	if asm.age != "" {
		h.Set("Age", asm.age)
	}
	h.Set("Etag", asm.etag)
	h.Set("X-Store-Day", asm.day)
	if inmMatch(r.Header.Get("If-None-Match"), asm.etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	out := gwCursorPage{Apps: asm.rows, Total: asm.total}
	if out.Apps == nil {
		out.Apps = []json.RawMessage{}
	}
	if !asm.done {
		out.NextCursor = packCursor(asm.anchors)
	}
	var buf bytes.Buffer
	json.NewEncoder(&buf).Encode(out) //nolint:errcheck
	h.Set("Content-Type", "application/json")
	h.Set("Content-Length", strconv.Itoa(buf.Len()))
	w.Write(buf.Bytes()) //nolint:errcheck // client gone; nothing useful to do
}

// servePageZero synthesizes listing page 0 — the first PageSize rows of
// the merged listing, in the legacy PageJSON envelope, byte-identical to
// a single node's page 0 apart from the validator.
func (g *Gateway) servePageZero(w http.ResponseWriter, r *http.Request, v1 bool) {
	anchors := make([]int32, len(g.cfg.Shards))
	var asm *assembled
	err := g.retryEpoch(func() (string, *gwError) {
		a, e := g.assemble(r.Context(), anchors, g.cfg.PageSize)
		if e != nil {
			return "", e
		}
		if a == nil {
			return "", nil
		}
		asm = a
		return a.day, nil
	})
	if err != nil {
		g.writeError(w, v1, err)
		return
	}
	g.mergedPages.Inc()
	pages := (asm.total + g.cfg.PageSize - 1) / g.cfg.PageSize
	if pages == 0 {
		pages = 1
	}
	h := w.Header()
	if v1 {
		h.Set("X-API-Version", "1")
		if asm.cc != "" {
			h.Set("Cache-Control", asm.cc)
		}
		if asm.age != "" {
			h.Set("Age", asm.age)
		}
		h.Set("Vary", "Accept-Encoding")
	}
	etag := asm.etag[:len(asm.etag)-1] + `-p0"`
	h.Set("Etag", etag)
	h.Set("X-Store-Day", asm.day)
	if inmMatch(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	out := gwPage{Apps: asm.rows, Page: 0, Pages: pages, Total: asm.total}
	if out.Apps == nil {
		out.Apps = []json.RawMessage{}
	}
	var buf bytes.Buffer
	json.NewEncoder(&buf).Encode(out) //nolint:errcheck
	h.Set("Content-Type", "application/json")
	h.Set("Content-Length", strconv.Itoa(buf.Len()))
	w.Write(buf.Bytes()) //nolint:errcheck // client gone; nothing useful to do
}

// inmMatch is If-None-Match per RFC 9110 (weak comparison, lists, *).
func inmMatch(inm, etag string) bool {
	if inm == "" {
		return false
	}
	if inm == etag || inm == "*" {
		return true
	}
	for _, tag := range strings.Split(inm, ",") {
		tag = strings.TrimSpace(tag)
		tag = strings.TrimPrefix(tag, "W/")
		if tag == etag {
			return true
		}
	}
	return false
}

// --- admin -----------------------------------------------------------------

func (g *Gateway) serveRoll(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeAdmin(w, http.StatusMethodNotAllowed, adminDay{Error: "method_not_allowed"})
		return
	}
	g.rollMu.Lock()
	defer g.rollMu.Unlock()
	day, err := AdvanceFleet(r.Context(), g.cfg.Shards)
	if err != nil {
		writeAdmin(w, http.StatusBadGateway, adminDay{Error: err.Error()})
		return
	}
	writeAdmin(w, http.StatusOK, adminDay{Day: day})
}

func (g *Gateway) serveDay(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeAdmin(w, http.StatusMethodNotAllowed, adminDay{Error: "method_not_allowed"})
		return
	}
	day, coherent, err := FleetDay(r.Context(), g.cfg.Shards)
	if err != nil {
		writeAdmin(w, http.StatusBadGateway, adminDay{Error: err.Error()})
		return
	}
	if !coherent {
		writeAdmin(w, http.StatusConflict, adminDay{Day: day, Error: "epoch_skew"})
		return
	}
	writeAdmin(w, http.StatusOK, adminDay{Day: day})
}

// --- metrics ---------------------------------------------------------------

// serveMetrics serves the fleet-wide exposition: the gateway's own
// routing/merge counters plus every shard's node-labelled series, one
// page, one TYPE header per family. In-process shards are read straight
// from their registries; remote shards are scraped and their pages merged
// textually.
func (g *Gateway) serveMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		http.Error(w, "Method Not Allowed", http.StatusMethodNotAllowed)
		return
	}
	local := true
	for i := range g.cfg.Shards {
		if g.cfg.Shards[i].Reg == nil {
			local = false
			break
		}
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if local {
		regs := make([]*metrics.Registry, 0, len(g.cfg.Shards)+1)
		regs = append(regs, g.reg)
		for i := range g.cfg.Shards {
			regs = append(regs, g.cfg.Shards[i].Reg)
		}
		metrics.WriteMergedText(w, regs...)
		return
	}
	pages := make([][]byte, 1, len(g.cfg.Shards)+1)
	var own bytes.Buffer
	g.reg.WriteText(&own)
	pages[0] = own.Bytes()
	for i := range g.cfg.Shards {
		resp, err := g.cfg.Shards[i].get(r.Context(), "/metrics", nil)
		if err != nil {
			continue // a dead shard must not take the whole exposition down
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
		resp.Body.Close()
		if err == nil && resp.StatusCode == http.StatusOK {
			pages = append(pages, body)
		}
	}
	mergeExpositionPages(w, pages)
}

// mergeExpositionPages regroups several exposition pages into one: every
// family appears once, with a single TYPE header, its series from all
// pages concatenated. Families are emitted in sorted order.
func mergeExpositionPages(w io.Writer, pages [][]byte) {
	type family struct {
		typ   string
		lines []string
	}
	fams := map[string]*family{}
	var order []string
	var current *family
	for _, page := range pages {
		current = nil
		for _, line := range strings.Split(string(page), "\n") {
			if line == "" {
				continue
			}
			if strings.HasPrefix(line, "# TYPE ") {
				parts := strings.Fields(line)
				if len(parts) < 4 {
					current = nil
					continue
				}
				name, typ := parts[2], parts[3]
				f, ok := fams[name]
				if !ok {
					f = &family{typ: typ}
					fams[name] = f
					order = append(order, name)
				}
				current = f
				continue
			}
			if strings.HasPrefix(line, "#") {
				continue
			}
			if current == nil {
				// An untyped series: family is its bare name.
				name := line
				if i := strings.IndexAny(name, "{ "); i >= 0 {
					name = name[:i]
				}
				f, ok := fams[name]
				if !ok {
					f = &family{}
					fams[name] = f
					order = append(order, name)
				}
				f.lines = append(f.lines, line)
				continue
			}
			current.lines = append(current.lines, line)
		}
	}
	sort.Strings(order)
	for _, name := range order {
		f := fams[name]
		if f.typ != "" {
			io.WriteString(w, "# TYPE "+name+" "+f.typ+"\n") //nolint:errcheck
		}
		for _, line := range f.lines {
			io.WriteString(w, line+"\n") //nolint:errcheck
		}
	}
}
