package fleet

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"

	"planetapps/internal/storeserver"
)

// ShardNode dresses one storeserver.Server as a fleet member: the public
// API and /metrics pass straight through, and an /admin/* surface exposes
// the two-phase day-roll (prepare, commit, day). Admin routes sit outside
// the store's chaos injector and rate limiter on purpose — the control
// plane in a real fleet is a separate listener that faults and client
// quotas don't touch, and the roll coordinator must stay reachable while
// chaos is killing the data plane.
type ShardNode struct {
	srv *storeserver.Server
	api http.Handler
}

// NewShardNode wraps srv.
func NewShardNode(srv *storeserver.Server) *ShardNode {
	return &ShardNode{srv: srv, api: srv.Handler()}
}

// Server returns the wrapped store server.
func (n *ShardNode) Server() *storeserver.Server { return n.srv }

// ServeHTTP implements http.Handler.
func (n *ShardNode) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.HasPrefix(r.URL.Path, "/admin/") {
		n.admin(w, r)
		return
	}
	n.api.ServeHTTP(w, r)
}

// adminDay is the admin surface's uniform response body.
type adminDay struct {
	Day   int    `json:"day"`
	Error string `json:"error,omitempty"`
}

func writeAdmin(w http.ResponseWriter, status int, body adminDay) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body) //nolint:errcheck
}

func (n *ShardNode) admin(w http.ResponseWriter, r *http.Request) {
	// want is the coordinator's expected day for this phase; -1 = none.
	want := -1
	if v := r.URL.Query().Get("day"); v != "" {
		d, err := strconv.Atoi(v)
		if err != nil || d < 0 {
			writeAdmin(w, http.StatusBadRequest, adminDay{Day: n.srv.Day(), Error: "bad_day"})
			return
		}
		want = d
	}
	switch r.URL.Path {
	case "/admin/day":
		if r.Method != http.MethodGet {
			writeAdmin(w, http.StatusMethodNotAllowed, adminDay{Day: n.srv.Day(), Error: "method_not_allowed"})
			return
		}
		writeAdmin(w, http.StatusOK, adminDay{Day: n.srv.Day()})
	case "/admin/prepare":
		if r.Method != http.MethodPost {
			writeAdmin(w, http.StatusMethodNotAllowed, adminDay{Day: n.srv.Day(), Error: "method_not_allowed"})
			return
		}
		day, err := n.srv.PrepareDay()
		if err != nil {
			writeAdmin(w, http.StatusConflict, adminDay{Day: n.srv.Day(), Error: err.Error()})
			return
		}
		if want >= 0 && day != want {
			writeAdmin(w, http.StatusConflict, adminDay{Day: day, Error: "day_mismatch"})
			return
		}
		writeAdmin(w, http.StatusOK, adminDay{Day: day})
	case "/admin/commit":
		if r.Method != http.MethodPost {
			writeAdmin(w, http.StatusMethodNotAllowed, adminDay{Day: n.srv.Day(), Error: "method_not_allowed"})
			return
		}
		// Idempotent: a commit retry after the swap already happened is a
		// success, and a commit that arrives at a shard which lost its
		// pending snapshot (restart, prepare raced away) self-heals by
		// re-preparing — PrepareDay is a no-op when the pending snapshot
		// is already built.
		if want >= 0 && n.srv.Day() == want {
			writeAdmin(w, http.StatusOK, adminDay{Day: want})
			return
		}
		if want >= 0 {
			day, err := n.srv.PrepareDay()
			if err != nil {
				writeAdmin(w, http.StatusConflict, adminDay{Day: n.srv.Day(), Error: err.Error()})
				return
			}
			if day != want {
				writeAdmin(w, http.StatusConflict, adminDay{Day: day, Error: "day_mismatch"})
				return
			}
		}
		writeAdmin(w, http.StatusOK, adminDay{Day: n.srv.CommitDay()})
	default:
		writeAdmin(w, http.StatusNotFound, adminDay{Day: n.srv.Day(), Error: "not_found"})
	}
}
