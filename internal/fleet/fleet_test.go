package fleet

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"

	"planetapps"
	"planetapps/internal/marketsim"
	"planetapps/internal/storeserver"
)

// --- helpers ---------------------------------------------------------------

const (
	testStore = "slideme"
	testScale = 0.02
	testSeed  = uint64(7)
	testDays  = 64
)

// newFleet builds an in-process fleet for tests.
func newFleet(t *testing.T, shards, pageSize int) *Inproc {
	t.Helper()
	ip, err := NewInproc(InprocOptions{
		Shards:       shards,
		Store:        testStore,
		Scale:        testScale,
		Seed:         testSeed,
		Days:         testDays,
		CommentUsers: 300,
		Server:       storeserver.Config{PageSize: pageSize},
	})
	if err != nil {
		t.Fatalf("NewInproc: %v", err)
	}
	return ip
}

// singleNode builds the equivalent unsharded store server.
func singleNode(t *testing.T, pageSize int) *storeserver.Server {
	t.Helper()
	prof, err := planetapps.StoreProfile(testStore)
	if err != nil {
		t.Fatal(err)
	}
	cfg := planetapps.DefaultMarketConfig(prof.Scale(testScale))
	cfg.Days = testDays
	m, err := marketsim.New(cfg, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	srv := storeserver.New(m, storeserver.Config{PageSize: pageSize})
	cs, err := planetapps.GenerateComments(m.Catalog(), 300, testSeed+1)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetComments(cs)
	return srv
}

// get fetches a path from a handler through the in-memory transport.
func get(t *testing.T, h http.Handler, path string, hdr http.Header) (*http.Response, []byte) {
	t.Helper()
	client := &http.Client{Transport: HandlerTransport{Handler: h}}
	req, err := http.NewRequest(http.MethodGet, "http://test"+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header[k] = v
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("GET %s: read: %v", path, err)
	}
	return resp, body
}

// cursorPage is the listing slice shape with rows kept raw for byte
// comparison; next_cursor is excluded from identity checks (it is opaque
// and topology-specific by design).
type cursorPage struct {
	Apps       []json.RawMessage `json:"apps"`
	NextCursor string            `json:"next_cursor"`
	Total      int               `json:"total"`
}

// walkCursor performs a full cursor walk and returns the parsed pages.
func walkCursor(t *testing.T, h http.Handler) []cursorPage {
	t.Helper()
	var pages []cursorPage
	cursor := ""
	for {
		resp, body := get(t, h, "/api/v1/apps?cursor="+cursor, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("cursor walk: status %d: %s", resp.StatusCode, body)
		}
		var page cursorPage
		if err := json.Unmarshal(body, &page); err != nil {
			t.Fatalf("cursor walk: %v", err)
		}
		pages = append(pages, page)
		if page.NextCursor == "" {
			return pages
		}
		cursor = page.NextCursor
		if len(pages) > 10000 {
			t.Fatal("cursor walk does not terminate")
		}
	}
}

// samePages asserts two walks serve identical listing content: same page
// count, and per page byte-identical rows and totals.
func samePages(t *testing.T, want, got []cursorPage, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: page count %d != %d", label, len(got), len(want))
	}
	for p := range want {
		if want[p].Total != got[p].Total {
			t.Fatalf("%s: page %d total %d != %d", label, p, got[p].Total, want[p].Total)
		}
		if len(want[p].Apps) != len(got[p].Apps) {
			t.Fatalf("%s: page %d rows %d != %d", label, p, len(got[p].Apps), len(want[p].Apps))
		}
		for i := range want[p].Apps {
			if string(want[p].Apps[i]) != string(got[p].Apps[i]) {
				t.Fatalf("%s: page %d row %d differs:\n  want %s\n  got  %s",
					label, p, i, want[p].Apps[i], got[p].Apps[i])
			}
		}
	}
}

// --- ring ------------------------------------------------------------------

func TestRingDeterministicAndCovering(t *testing.T) {
	a := NewRing(4, 0)
	b := NewRing(4, 0)
	owned := make([]int, 4)
	for id := int32(0); id < 10000; id++ {
		oa, ob := a.Owner(id), b.Owner(id)
		if oa != ob {
			t.Fatalf("ring not deterministic: id %d -> %d vs %d", id, oa, ob)
		}
		if oa < 0 || oa >= 4 {
			t.Fatalf("owner out of range: id %d -> %d", id, oa)
		}
		owned[oa]++
	}
	for s, n := range owned {
		if n == 0 {
			t.Fatalf("shard %d owns nothing of 10000 ids", s)
		}
		// Consistent hashing with 64 vnodes should keep imbalance mild.
		if n < 10000/4/4 || n > 10000*3/4 {
			t.Fatalf("shard %d owns %d of 10000 — pathological imbalance", s, n)
		}
	}
	if one := NewRing(1, 0); one.Owner(12345) != 0 {
		t.Fatal("single-shard ring must own everything")
	}
}

func TestRingOwnsFuncMatchesOwner(t *testing.T) {
	r := NewRing(3, 0)
	owns := []func(int32) bool{r.OwnsFunc(0), r.OwnsFunc(1), r.OwnsFunc(2)}
	for id := int32(0); id < 1000; id++ {
		o := r.Owner(id)
		for s := 0; s < 3; s++ {
			if owns[s](id) != (s == o) {
				t.Fatalf("id %d: OwnsFunc(%d) disagrees with Owner=%d", id, s, o)
			}
		}
	}
}

// --- byte identity: gateway vs single node ---------------------------------

func TestGatewayListingMatchesSingleNode(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		ip := newFleet(t, shards, 7)
		srv := singleNode(t, 7)
		single := walkCursor(t, srv.Handler())
		merged := walkCursor(t, ip.Handler())
		samePages(t, single, merged, "day0")

		// Roll both one day — the fleet through the two-phase swap — and
		// compare again: partitioned day-rolls must reproduce the
		// single-node catalog evolution exactly.
		if err := ip.AdvanceDay(); err != nil {
			t.Fatalf("fleet roll: %v", err)
		}
		if err := srv.AdvanceDay(); err != nil {
			t.Fatalf("single roll: %v", err)
		}
		samePages(t, walkCursor(t, srv.Handler()), walkCursor(t, ip.Handler()),
			"day1")
	}
}

func TestGatewayStatsMatchesSingleNode(t *testing.T) {
	ip := newFleet(t, 4, 7)
	srv := singleNode(t, 7)
	for day := 0; day < 3; day++ {
		respS, bodyS := get(t, srv.Handler(), "/api/v1/stats", nil)
		respG, bodyG := get(t, ip.Handler(), "/api/v1/stats", nil)
		if string(bodyS) != string(bodyG) {
			t.Fatalf("day %d: stats body differs:\n  single  %s\n  gateway %s", day, bodyS, bodyG)
		}
		if eS, eG := respS.Header.Get("Etag"), respG.Header.Get("Etag"); eS != eG {
			t.Fatalf("day %d: stats etag %q != %q", day, eG, eS)
		}
		// Conditional revalidation against the aggregated document.
		resp304, _ := get(t, ip.Handler(), "/api/v1/stats",
			http.Header{"If-None-Match": []string{respG.Header.Get("Etag")}})
		if resp304.StatusCode != http.StatusNotModified {
			t.Fatalf("day %d: expected 304 from gateway stats, got %d", day, resp304.StatusCode)
		}
		// Legacy dialect through the gateway serves the same bytes.
		_, bodyL := get(t, ip.Handler(), "/api/stats", nil)
		if string(bodyL) != string(bodyS) {
			t.Fatalf("day %d: legacy stats body differs", day)
		}
		if err := ip.AdvanceDay(); err != nil {
			t.Fatal(err)
		}
		if err := srv.AdvanceDay(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGatewayProxiesAppRoutesByteIdentical(t *testing.T) {
	ip := newFleet(t, 4, 7)
	srv := singleNode(t, 7)
	_, statsBody := get(t, srv.Handler(), "/api/v1/stats", nil)
	var stats storeserver.StatsJSON
	if err := json.Unmarshal(statsBody, &stats); err != nil {
		t.Fatal(err)
	}
	for id := 0; id < stats.Apps; id++ {
		for _, route := range []string{"", "/comments", "/apk"} {
			path := "/api/v1/apps/" + itoa(id) + route
			respS, bodyS := get(t, srv.Handler(), path, nil)
			respG, bodyG := get(t, ip.Handler(), path, nil)
			if respS.StatusCode != respG.StatusCode {
				t.Fatalf("%s: status %d != %d", path, respG.StatusCode, respS.StatusCode)
			}
			if string(bodyS) != string(bodyG) {
				t.Fatalf("%s: body differs", path)
			}
			if eS, eG := respS.Header.Get("Etag"), respG.Header.Get("Etag"); eS != eG {
				t.Fatalf("%s: etag %q != %q", path, eG, eS)
			}
		}
	}
	// Beyond-catalog and malformed IDs answer like a single node.
	resp, body := get(t, ip.Handler(), "/api/v1/apps/999999", nil)
	if resp.StatusCode != http.StatusNotFound || !strings.Contains(string(body), "app_not_found") {
		t.Fatalf("unknown app: got %d %s", resp.StatusCode, body)
	}
	resp, _ = get(t, ip.Handler(), "/api/v1/apps/xyz", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad app id: got %d", resp.StatusCode)
	}
}

// --- cursor edge cases -----------------------------------------------------

// TestEmptyShardServes pins the empty-partition edge: a fleet wide enough
// that the ring leaves at least one shard without a single app of the
// small test catalog. The gateway must stitch around the empty partition
// silently.
func TestEmptyShardServes(t *testing.T) {
	const shards = 12 // at the test catalog size, the ring leaves a shard empty
	ip := newFleet(t, shards, 7)
	empty := -1
	// Determine ownership from the ring against the actual catalog size.
	_, statsBody := get(t, ip.Handler(), "/api/v1/stats", nil)
	var stats storeserver.StatsJSON
	if err := json.Unmarshal(statsBody, &stats); err != nil {
		t.Fatal(err)
	}
	owned := make([]int, shards)
	ring := ip.Gateway.Ring()
	for id := 0; id < stats.Apps; id++ {
		owned[ring.Owner(int32(id))]++
	}
	for i, n := range owned {
		if n == 0 {
			empty = i
		}
	}
	if empty < 0 {
		t.Fatalf("no empty shard at %d apps / %d shards — pick a topology that exercises the edge", stats.Apps, shards)
	}
	single := walkCursor(t, singleNode(t, 7).Handler())
	samePages(t, single, walkCursor(t, ip.Handler()), "empty-shard walk")
}

// TestPageBoundaryAtShardBoundary sweeps page sizes so that page breaks
// land on every possible alignment with shard partition edges, including
// size 1 (every row is a page boundary).
func TestPageBoundaryAtShardBoundary(t *testing.T) {
	for _, pageSize := range []int{1, 2, 3, 7, 100} {
		ip := newFleet(t, 4, pageSize)
		srv := singleNode(t, pageSize)
		samePages(t, walkCursor(t, srv.Handler()), walkCursor(t, ip.Handler()),
			"pageSize="+itoa(pageSize))
	}
}

// TestCursorTopologyChange pins the fleet-resize contract: a cursor
// minted by a 4-shard gateway presented to a 2-shard gateway is rejected
// with the v1 bad_cursor envelope, never silently misresumed.
func TestCursorTopologyChange(t *testing.T) {
	ip4 := newFleet(t, 4, 7)
	resp, body := get(t, ip4.Handler(), "/api/v1/apps?cursor=", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first page: %d", resp.StatusCode)
	}
	var page cursorPage
	if err := json.Unmarshal(body, &page); err != nil {
		t.Fatal(err)
	}
	if page.NextCursor == "" {
		t.Fatal("test catalog fits one page; shrink pageSize")
	}

	ip2 := newFleet(t, 2, 7)
	resp, body = get(t, ip2.Handler(), "/api/v1/apps?cursor="+page.NextCursor, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("cross-topology cursor: want 400, got %d: %s", resp.StatusCode, body)
	}
	var envelope storeserver.ErrorJSON
	if err := json.Unmarshal(body, &envelope); err != nil {
		t.Fatalf("cross-topology cursor: not a v1 envelope: %v (%s)", err, body)
	}
	if envelope.Error.Code != "bad_cursor" {
		t.Fatalf("cross-topology cursor: code %q, want bad_cursor", envelope.Error.Code)
	}
	// A single-node cursor fed to the gateway is equally foreign.
	resp, _ = get(t, ip2.Handler(), "/api/v1/apps?cursor="+storeserver.EncodeCursor(3), nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("single-node cursor at gateway: want 400, got %d", resp.StatusCode)
	}
}

// TestCursorStableAcrossFleetRoll walks half the listing, rolls the whole
// fleet one epoch, and finishes the walk — mirrored against a single node
// rolled at the same point. The pages must stay byte-identical, which
// subsumes the single-node cursor guarantees (no app skipped or repeated)
// and adds the fleet's: per-shard anchors survive the epoch swap.
func TestCursorStableAcrossFleetRoll(t *testing.T) {
	ip := newFleet(t, 4, 7)
	srv := singleNode(t, 7)

	walkHalfThenRoll := func(h http.Handler, roll func() error) []cursorPage {
		var pages []cursorPage
		cursor := ""
		rolled := false
		for {
			resp, body := get(t, h, "/api/v1/apps?cursor="+cursor, nil)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("walk: status %d: %s", resp.StatusCode, body)
			}
			var page cursorPage
			if err := json.Unmarshal(body, &page); err != nil {
				t.Fatal(err)
			}
			pages = append(pages, page)
			if page.NextCursor == "" {
				return pages
			}
			cursor = page.NextCursor
			if !rolled && len(pages) == 2 {
				rolled = true
				if err := roll(); err != nil {
					t.Fatalf("mid-walk roll: %v", err)
				}
			}
		}
	}

	single := walkHalfThenRoll(srv.Handler(), srv.AdvanceDay)
	merged := walkHalfThenRoll(ip.Handler(), ip.AdvanceDay)
	samePages(t, single, merged, "mid-walk roll")
	if ip.Day() != srv.Day() {
		t.Fatalf("fleet day %d != single-node day %d", ip.Day(), srv.Day())
	}
}

// --- epoch swap ------------------------------------------------------------

func TestPrepareCommitTwoPhase(t *testing.T) {
	ip := newFleet(t, 2, 7)
	srv := ip.Servers[0]
	day0 := srv.Day()
	prepared, err := srv.PrepareDay()
	if err != nil {
		t.Fatal(err)
	}
	if prepared != day0+1 {
		t.Fatalf("prepared day %d, want %d", prepared, day0+1)
	}
	if srv.Day() != day0 {
		t.Fatalf("prepare must not change the serving day: %d", srv.Day())
	}
	again, err := srv.PrepareDay()
	if err != nil || again != prepared {
		t.Fatalf("re-prepare: day %d err %v, want %d nil", again, err, prepared)
	}
	if got := srv.CommitDay(); got != prepared {
		t.Fatalf("commit: day %d, want %d", got, prepared)
	}
	if got := srv.CommitDay(); got != prepared {
		t.Fatalf("idempotent commit: day %d, want %d", got, prepared)
	}
}

// TestAdvanceFleetConvergesDivergedFleet wedges a fleet on purpose — one
// shard rolled two days ahead out-of-band — and asserts the next
// AdvanceFleet converges everyone onto the runaway shard's next day
// instead of erroring, with the converged catalog byte-identical to a
// single node at that day (gatewayd's startup warning promises exactly
// this: "the next roll will converge them").
func TestAdvanceFleetConvergesDivergedFleet(t *testing.T) {
	ip := newFleet(t, 3, 7)
	runaway := ip.Servers[0]
	for i := 0; i < 2; i++ {
		if _, err := runaway.PrepareDay(); err != nil {
			t.Fatal(err)
		}
		runaway.CommitDay()
	}
	if _, coherent, _ := FleetDay(context.Background(), ip.shards); coherent {
		t.Fatal("fleet should be diverged")
	}

	day, err := AdvanceFleet(context.Background(), ip.shards)
	if err != nil {
		t.Fatalf("AdvanceFleet on a diverged fleet: %v", err)
	}
	if want := 3; day != want { // runaway at day 2, so the roll lands on 3
		t.Fatalf("converged day %d, want %d", day, want)
	}
	got, coherent, err := FleetDay(context.Background(), ip.shards)
	if err != nil || !coherent || got != day {
		t.Fatalf("after converge: day %d coherent %v err %v, want %d true nil", got, coherent, err, day)
	}

	srv := singleNode(t, 7)
	for srv.Day() < day {
		if err := srv.AdvanceDay(); err != nil {
			t.Fatal(err)
		}
	}
	samePages(t, walkCursor(t, srv.Handler()), walkCursor(t, ip.Handler()), "post-converge walk")
}

// TestNoMixedEpochUnderRoll hammers the gateway's scatter routes while
// the fleet rolls epochs underneath, asserting the core fleet invariant:
// no response ever mixes two days — the stats body's day always equals
// its X-Store-Day header, and every successful response names a day the
// fleet actually served.
func TestNoMixedEpochUnderRoll(t *testing.T) {
	ip := newFleet(t, 4, 7)
	stop := make(chan struct{})
	type obs struct {
		status  int
		hdrDay  string
		bodyDay int
	}
	results := make(chan obs, 4096)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{Transport: HandlerTransport{Handler: ip.Gateway}}
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := client.Get("http://gw/api/v1/stats")
				if err != nil {
					continue
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					results <- obs{status: resp.StatusCode}
					continue
				}
				var s storeserver.StatsJSON
				if err := json.Unmarshal(body, &s); err != nil {
					t.Errorf("stats decode: %v", err)
					return
				}
				select {
				case results <- obs{status: 200, hdrDay: resp.Header.Get("X-Store-Day"), bodyDay: s.Day}:
				default:
				}
			}
		}()
	}
	for i := 0; i < 6; i++ {
		if err := ip.AdvanceDay(); err != nil {
			t.Fatalf("roll %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	close(results)
	var ok200, skew int
	for o := range results {
		switch {
		case o.status == 200:
			ok200++
			if itoa(o.bodyDay) != o.hdrDay {
				t.Fatalf("mixed-epoch response: body day %d, header day %s", o.bodyDay, o.hdrDay)
			}
		case o.status == http.StatusServiceUnavailable:
			skew++ // epoch_skew after retries: allowed, must be rare
		default:
			t.Fatalf("unexpected status %d", o.status)
		}
	}
	if ok200 == 0 {
		t.Fatal("no successful reads during the roll storm")
	}
	if skew > ok200 {
		t.Fatalf("epoch skew dominates: %d skews vs %d successes", skew, ok200)
	}
}

// --- metrics ---------------------------------------------------------------

func TestGatewayMergedMetrics(t *testing.T) {
	ip := newFleet(t, 2, 7)
	// Generate some traffic so shard counters exist.
	get(t, ip.Handler(), "/api/v1/stats", nil)
	get(t, ip.Handler(), "/api/v1/apps?cursor=", nil)
	resp, body := get(t, ip.Handler(), "/metrics", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	text := string(body)
	for _, want := range []string{`node="gateway"`, `node="shard-0"`, `node="shard-1"`,
		"gateway_merged_pages_total", "store_requests_total"} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
	// One TYPE header per family even with three registries merged.
	seen := map[string]int{}
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			seen[line]++
		}
	}
	for line, n := range seen {
		if n > 1 {
			t.Fatalf("duplicate %q in merged exposition", line)
		}
	}
}

func itoa(v int) string { return strconv.Itoa(v) }
