package session_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"testing"

	"planetapps/internal/catalog"
	"planetapps/internal/marketsim"
	"planetapps/internal/session"
	"planetapps/internal/storeserver"
)

func planConfig(seed uint64) session.Config {
	return session.Config{
		Users: 40, Apps: 20, Clusters: 4, ClusterP: 0.7,
		InstallP: 0.8, RateP: 0.6, CommentP: 0.4, Seed: seed,
	}
}

func TestPlanDeterminism(t *testing.T) {
	a := session.NewPlan(planConfig(7))
	b := session.NewPlan(planConfig(7))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("equal configs produced different plans")
	}
	if a.Visits == 0 || a.Installs == 0 || a.Ratings == 0 || a.Comments == 0 {
		t.Fatalf("degenerate plan: %+v", struct{ V, I, R, C int }{a.Visits, a.Installs, a.Ratings, a.Comments})
	}
	c := session.NewPlan(planConfig(8))
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical plans")
	}
}

func TestPlanFetchAtMostOnce(t *testing.T) {
	p := session.NewPlan(planConfig(3))
	for _, up := range p.Users {
		seen := map[int32]bool{}
		for _, v := range up.Visits {
			if seen[v.App] {
				t.Fatalf("user %d visits app %d twice", up.User, v.App)
			}
			seen[v.App] = true
			if v.Rating < 0 || v.Rating > 5 {
				t.Fatalf("rating %d out of range", v.Rating)
			}
			if (v.Rating > 0 || v.Comment) && !v.Install {
				t.Fatalf("user %d rates/comments app %d without installing", up.User, v.App)
			}
		}
	}
}

func newStore(t *testing.T) (*storeserver.Server, *httptest.Server) {
	t.Helper()
	mcfg := marketsim.DefaultConfig(catalog.Profiles["slideme"].Scale(0.2))
	mcfg.Days = 10
	m, err := marketsim.New(mcfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := storeserver.New(m, storeserver.Config{PageSize: 50})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func fetch(t *testing.T, url string) (string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	return string(b), resp.Header.Get("Etag")
}

// TestReplayDeterminism pins the satellite: the same plan executed at 1
// worker and at 8 workers against same-seed stores yields byte-identical
// next-day snapshots — WAL deltas are order-independent, comment
// timestamps are day-derived, and all randomness lives in the plan.
func TestReplayDeterminism(t *testing.T) {
	plan := session.NewPlan(planConfig(11))

	run := func(workers int) (*storeserver.Server, *httptest.Server, session.Stats) {
		s, ts := newStore(t)
		r := &session.Runner{BaseURL: ts.URL, Workers: workers}
		st, err := r.Run(context.Background(), plan)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.AdvanceDay(); err != nil {
			t.Fatal(err)
		}
		return s, ts, st
	}

	s1, ts1, st1 := run(1)
	s8, ts8, st8 := run(8)

	if st1.Errors != 0 || st8.Errors != 0 {
		t.Fatalf("session errors: 1-worker %+v, 8-worker %+v", st1, st8)
	}
	if st1 != st8 {
		t.Fatalf("stats differ by worker count:\n 1: %+v\n 8: %+v", st1, st8)
	}
	if st1.Installs != int64(plan.Installs) || st1.Accepted == 0 {
		t.Fatalf("planned %d installs, ran %+v", plan.Installs, st1)
	}

	w1, w8 := s1.WALStats(), s8.WALStats()
	if w1.Accepted != w8.Accepted || w1.Merged != w1.Accepted || w8.Merged != w8.Accepted {
		t.Fatalf("wal stats diverge: %+v vs %+v", w1, w8)
	}

	// Byte-level comparison of the next-day snapshot across every surface
	// the writes touch.
	urls := []string{"/api/v1/stats"}
	for id := 0; id < 20; id++ {
		urls = append(urls,
			"/api/v1/apps/"+strconv.Itoa(id),
			"/api/v1/apps/"+strconv.Itoa(id)+"/comments")
	}
	cursor := ""
	for {
		b1, e1 := fetch(t, ts1.URL+"/api/v1/apps?cursor="+cursor)
		b8, e8 := fetch(t, ts8.URL+"/api/v1/apps?cursor="+cursor)
		if b1 != b8 || e1 != e8 {
			t.Fatalf("list page (cursor %q) differs by worker count", cursor)
		}
		next := nextCursor(t, b1)
		if next == "" {
			break
		}
		cursor = next
	}
	for _, u := range urls {
		b1, e1 := fetch(t, ts1.URL+u)
		b8, e8 := fetch(t, ts8.URL+u)
		if b1 != b8 {
			t.Fatalf("%s: bodies differ by worker count:\n 1: %s\n 8: %s", u, b1, b8)
		}
		if e1 != e8 {
			t.Fatalf("%s: ETags differ by worker count: %q vs %q", u, e1, e8)
		}
	}
}

// nextCursor pulls next_cursor out of a list page without importing the
// server's wire structs.
func nextCursor(t *testing.T, body string) string {
	t.Helper()
	var page struct {
		NextCursor string `json:"next_cursor"`
	}
	if err := jsonUnmarshal(body, &page); err != nil {
		t.Fatal(err)
	}
	return page.NextCursor
}

// TestReplayDedups pins the idempotency story end to end: re-running the
// same plan against the same store (same Idempotency-Keys) acknowledges
// every write without logging anything twice — even across a day-roll,
// which ages but keeps one generation of keys.
func TestReplayDedups(t *testing.T) {
	plan := session.NewPlan(planConfig(13))
	s, ts := newStore(t)
	r := &session.Runner{BaseURL: ts.URL, Workers: 4}

	st1, err := r.Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if st1.Errors != 0 || st1.Accepted == 0 || st1.Deduped != 0 {
		t.Fatalf("first run: %+v", st1)
	}
	accepted := s.WALStats().Accepted

	// Replay within the same day: every write dedups on its key.
	st2, err := r.Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Errors != 0 || st2.Accepted != 0 || st2.Deduped != st1.Accepted {
		t.Fatalf("same-day replay: %+v (first run %+v)", st2, st1)
	}
	if got := s.WALStats().Accepted; got != accepted {
		t.Fatalf("replay logged new records: %d -> %d", accepted, got)
	}

	// Replay across one roll: keys live in the aged generation, still dedup.
	if err := s.AdvanceDay(); err != nil {
		t.Fatal(err)
	}
	st3, err := r.Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if st3.Errors != 0 || st3.Accepted != 0 || st3.Deduped != st1.Accepted {
		t.Fatalf("cross-roll replay: %+v", st3)
	}
	if got := s.WALStats().Accepted; got != accepted {
		t.Fatalf("cross-roll replay logged new records: %d -> %d", accepted, got)
	}
}

func jsonUnmarshal(s string, v any) error {
	return json.Unmarshal([]byte(s), v)
}
