// Package session simulates stateful store users driving the write path:
// N users each run a preference-driven browse→detail→install→rate→comment
// funnel against the /api/v1 surface, the behavioral loop the paper's
// ecosystem observes from the outside (and the usage-mining literature —
// "Mining Behavioral Patterns from Millions of Android Users" — records
// from the inside). App choice follows the APP-CLUSTERING model from
// internal/model: each user belongs to one interest cluster and draws
// apps from a within-cluster Zipf with probability ClusterP, from the
// global Zipf otherwise, fetch-at-most-once per (user, app).
//
// The package splits planning from execution on purpose. A Plan is
// generated single-threaded from a seed — every random decision is made
// there — and a Runner executes it with any number of workers, issuing
// writes with deterministic Idempotency-Keys. Since the store's WAL
// deltas are order-independent, the same Plan produces a byte-identical
// next-day snapshot at 1 worker and at 8; the replay-determinism test
// pins exactly that.
package session

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"

	"planetapps/internal/dist"
	"planetapps/internal/model"
	"planetapps/internal/resilient"
	"planetapps/internal/rng"
)

// Config sizes a session plan.
type Config struct {
	// Users is the simulated user population.
	Users int
	// Apps is the catalog size the users browse (app IDs 0..Apps-1).
	Apps int
	// Clusters is the interest-cluster count for the APP-CLUSTERING
	// affinity (<= 1 disables clustering: all draws are global).
	Clusters int
	// ClusterP is the probability a visit draws from the user's home
	// cluster instead of the global ranking (paper Eq. 5 regime).
	ClusterP float64
	// ZipfS is the popularity skew of both the global and within-cluster
	// rankings (<= 0 uses 0.9, the paper's fitted neighborhood).
	ZipfS float64
	// VisitsPerUser is the mean visits (detail-page views) per user; the
	// actual count is Poisson-drawn per user (0 uses 4).
	VisitsPerUser float64
	// InstallP is the probability a visited app is installed (the
	// browse→install conversion). RateP and CommentP are conditional on
	// install: an installed app is rated with RateP and commented on with
	// CommentP. Ratings skew high, as store ratings do.
	InstallP, RateP, CommentP float64
	// Seed drives every draw; equal seeds mean equal plans.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.ZipfS <= 0 {
		c.ZipfS = 0.9
	}
	if c.VisitsPerUser <= 0 {
		c.VisitsPerUser = 4
	}
	return c
}

// Visit is one planned funnel step: a detail-page view, optionally
// followed by an install (POST download), a rating (POST rate), and a
// comment (POST comments).
type Visit struct {
	App     int32
	Install bool
	// Rating is 1..5 when the user rates the installed app, 0 otherwise.
	Rating int8
	// Comment reports a comment; CommentRating is its attached rating
	// (0 = none, matching the generated comment streams).
	Comment       bool
	CommentRating int8
}

// UserPlan is one user's ordered funnel.
type UserPlan struct {
	User   int32
	Visits []Visit
}

// Plan is a fully materialized session schedule: every random decision
// already made, so execution is deterministic no matter how it is
// parallelized.
type Plan struct {
	Users []UserPlan
	// Planned totals, for sizing expectations and test assertions.
	Visits, Installs, Ratings, Comments int
}

// ratingWeights is the J-shaped rating histogram app stores exhibit:
// most ratings are 5s, with a small spike of 1s — the shape the paper's
// comment analysis reports.
var ratingWeights = []float64{0.10, 0.05, 0.10, 0.20, 0.55} // ratings 1..5

// NewPlan materializes a session schedule from cfg. Planning is
// single-threaded and consumes the seed in a fixed order (one RNG split
// per user), so equal configs yield equal plans.
func NewPlan(cfg Config) *Plan {
	cfg = cfg.withDefaults()
	p := &Plan{}
	if cfg.Users <= 0 || cfg.Apps <= 0 {
		return p
	}
	root := rng.New(cfg.Seed)
	global := dist.MustZipf(cfg.Apps, cfg.ZipfS)
	ratings := dist.MustCategorical(ratingWeights)

	var cm *model.ClusterMap
	var clusterZipf []*dist.Zipf
	if cfg.Clusters > 1 && cfg.ClusterP > 0 {
		cm = model.RoundRobin(cfg.Apps, cfg.Clusters)
		clusterZipf = make([]*dist.Zipf, len(cm.Members))
		for c, members := range cm.Members {
			clusterZipf[c] = dist.MustZipf(len(members), cfg.ZipfS)
		}
	}

	p.Users = make([]UserPlan, 0, cfg.Users)
	for u := 0; u < cfg.Users; u++ {
		r := root.Split(uint64(u))
		home := 0
		if cm != nil {
			home = int(r.Uint64n(uint64(len(cm.Members))))
		}
		want := r.Poisson(cfg.VisitsPerUser)
		up := UserPlan{User: int32(u), Visits: make([]Visit, 0, want)}
		seen := make(map[int32]struct{}, want)
		// Fetch-at-most-once: a redrawn app is skipped, not revisited; the
		// attempt budget keeps a tiny catalog from spinning forever.
		for attempts := 0; len(up.Visits) < want && attempts < want*4+16; attempts++ {
			var app int32
			// Zipf ranks are 1-based; rank 1 is the cluster's (or catalog's)
			// most popular app.
			if cm != nil && r.Bool(cfg.ClusterP) {
				app = cm.Members[home][clusterZipf[home].Sample(r)-1]
			} else {
				app = int32(global.Sample(r) - 1)
			}
			if _, dup := seen[app]; dup {
				continue
			}
			seen[app] = struct{}{}
			v := Visit{App: app, Install: r.Bool(cfg.InstallP)}
			if v.Install {
				if r.Bool(cfg.RateP) {
					v.Rating = int8(1 + ratings.Sample(r))
				}
				if r.Bool(cfg.CommentP) {
					v.Comment = true
					v.CommentRating = v.Rating // 0 when unrated, as generated streams allow
				}
			}
			up.Visits = append(up.Visits, v)
			p.Visits++
			if v.Install {
				p.Installs++
			}
			if v.Rating > 0 {
				p.Ratings++
			}
			if v.Comment {
				p.Comments++
			}
		}
		p.Users = append(p.Users, up)
	}
	return p
}

// IdemKey renders the deterministic Idempotency-Key for one (user, app,
// endpoint) write — stable across retries, workers, and runs, which is
// what lets a replayed plan dedup instead of double-count.
func IdemKey(user, app int32, endpoint string) string {
	return "u" + strconv.FormatInt(int64(user), 10) +
		"-a" + strconv.FormatInt(int64(app), 10) + "-" + endpoint
}

// Doer is the client surface the runner needs. PlainClient wraps a bare
// *http.Client; ResilientClient wraps the hardened stack.
type Doer interface {
	Get(ctx context.Context, url string, hdr http.Header, validate func(status int, body []byte) error) error
	Post(ctx context.Context, url string, hdr http.Header, body []byte) (status int, respBody []byte, err error)
}

// Stats counts one Run's outcomes. Accepted counts 200-acked writes that
// were logged fresh; Deduped counts idempotency replays; Duplicates
// counts 409s (the natural key was already taken — e.g. the plan replayed
// against a store that already absorbed it).
type Stats struct {
	Visits     int64 `json:"visits"`
	Installs   int64 `json:"installs"`
	Ratings    int64 `json:"ratings"`
	Comments   int64 `json:"comments"`
	Accepted   int64 `json:"accepted"`
	Deduped    int64 `json:"deduped"`
	Duplicates int64 `json:"duplicates"`
	Errors     int64 `json:"errors"`
}

// Runner executes a Plan against a store's /api/v1 surface.
type Runner struct {
	// BaseURL roots the store ("http://host:port", no trailing slash).
	BaseURL string
	// Client issues the requests; nil uses http.DefaultClient semantics
	// via a plain adapter.
	Client Doer
	// Workers is the execution parallelism (<= 0 uses 1). Work splits by
	// user, so one user's funnel always runs in order.
	Workers int
}

// ackJSON is the slice of the store's write ack the runner inspects.
type ackJSON struct {
	Accepted bool `json:"accepted"`
	Deduped  bool `json:"deduped"`
}

// Run executes the plan: per visit, a detail GET (the browse step),
// then the planned POSTs. Write failures are counted, not fatal — a
// session fleet, like real users, shrugs and moves on. The returned
// error is only a context cancellation.
func (r *Runner) Run(ctx context.Context, p *Plan) (Stats, error) {
	workers := r.Workers
	if workers <= 0 {
		workers = 1
	}
	client := r.Client
	if client == nil {
		client = PlainClient{HTTP: http.DefaultClient}
	}
	var st Stats
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(p.Users) || ctx.Err() != nil {
					return
				}
				r.runUser(ctx, client, &p.Users[i], &st)
			}
		}()
	}
	wg.Wait()
	return st, ctx.Err()
}

func (r *Runner) runUser(ctx context.Context, client Doer, up *UserPlan, st *Stats) {
	for _, v := range up.Visits {
		if ctx.Err() != nil {
			return
		}
		app := strconv.FormatInt(int64(v.App), 10)
		detailURL := r.BaseURL + "/api/v1/apps/" + app
		if err := client.Get(ctx, detailURL, nil, nil); err != nil {
			atomic.AddInt64(&st.Errors, 1)
			continue // no detail page, no funnel
		}
		atomic.AddInt64(&st.Visits, 1)
		if !v.Install {
			continue
		}
		if r.post(ctx, client, st, up.User, v.App, "download", 0) {
			atomic.AddInt64(&st.Installs, 1)
		}
		if v.Rating > 0 && r.post(ctx, client, st, up.User, v.App, "rate", v.Rating) {
			atomic.AddInt64(&st.Ratings, 1)
		}
		if v.Comment && r.post(ctx, client, st, up.User, v.App, "comments", v.CommentRating) {
			atomic.AddInt64(&st.Comments, 1)
		}
	}
}

// post issues one mutation; reports whether the store acknowledged it
// (fresh or deduped — the write is durably in the day's delta either way).
func (r *Runner) post(ctx context.Context, client Doer, st *Stats, user, app int32, endpoint string, rating int8) bool {
	var body []byte
	if endpoint == "rate" || (endpoint == "comments" && rating > 0) {
		body = []byte(`{"user":` + strconv.FormatInt(int64(user), 10) +
			`,"rating":` + strconv.FormatInt(int64(rating), 10) + `}`)
	} else {
		body = []byte(`{"user":` + strconv.FormatInt(int64(user), 10) + `}`)
	}
	hdr := http.Header{}
	hdr.Set("Content-Type", "application/json")
	hdr.Set("Idempotency-Key", IdemKey(user, app, endpoint))
	url := r.BaseURL + "/api/v1/apps/" + strconv.FormatInt(int64(app), 10) + "/" + endpoint
	status, respBody, err := client.Post(ctx, url, hdr, body)
	if err != nil && status == 0 {
		atomic.AddInt64(&st.Errors, 1)
		return false
	}
	switch status {
	case http.StatusOK:
		var ack ackJSON
		if json.Unmarshal(respBody, &ack) == nil && ack.Deduped {
			atomic.AddInt64(&st.Deduped, 1)
		} else {
			atomic.AddInt64(&st.Accepted, 1)
		}
		return true
	case http.StatusConflict:
		atomic.AddInt64(&st.Duplicates, 1)
		return false
	default:
		atomic.AddInt64(&st.Errors, 1)
		return false
	}
}

// PlainClient adapts a bare *http.Client to the Doer surface — no
// retries, no breaker; tests and simple tools use it directly.
type PlainClient struct {
	HTTP *http.Client
}

func (c PlainClient) Get(ctx context.Context, url string, hdr http.Header, validate func(int, []byte) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	for k, vs := range hdr {
		req.Header[k] = vs
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotModified {
		return fmt.Errorf("session: GET %s: status %d", url, resp.StatusCode)
	}
	if validate != nil {
		return validate(resp.StatusCode, buf.Bytes())
	}
	return nil
}

func (c PlainClient) Post(ctx context.Context, url string, hdr http.Header, body []byte) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	for k, vs := range hdr {
		req.Header[k] = vs
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, buf.Bytes(), nil
}

// ResilientClient adapts *resilient.Client to the Doer surface: funnels
// ride the full retry/breaker/hedging stack, with write retries kept safe
// by the runner's deterministic Idempotency-Keys.
type ResilientClient struct {
	C *resilient.Client
}

func (c ResilientClient) Get(ctx context.Context, url string, hdr http.Header, validate func(int, []byte) error) error {
	res, err := c.C.Get(ctx, url, hdr, nil)
	if err != nil {
		return err
	}
	if validate != nil {
		return validate(res.Status, res.Body)
	}
	return nil
}

func (c ResilientClient) Post(ctx context.Context, url string, hdr http.Header, body []byte) (int, []byte, error) {
	res, err := c.C.Post(ctx, url, hdr, body, nil)
	if res != nil {
		// Definitive HTTP answers (the 409 duplicate verdict, a final 429)
		// surface as statuses; the caller classifies them.
		return res.Status, res.Body, nil
	}
	return 0, nil, err
}
