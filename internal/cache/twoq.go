package cache

import (
	"container/list"
	"fmt"
)

// TwoQ implements the 2Q replacement policy (Johnson & Shasha, VLDB '94):
// first-time accesses enter a FIFO probation queue (A1in); apps evicted
// from probation are remembered in a ghost list (A1out, ids only); a hit
// on a ghost promotes the app into the protected LRU (Am). Scan-resistant:
// one-shot downloads churn through probation without displacing the
// protected set — a useful contrast policy for the clustering workload,
// where a large fraction of requests are one-time tail downloads.
type TwoQ struct {
	cap   int64
	inCap int64 // classic 25% probation sizing, in cost units
	used  int64

	in    *list.List // probation FIFO, front = newest (Value = *costItem)
	am    *list.List // protected LRU, front = most recent (Value = *costItem)
	ghost *list.List // ghost FIFO of evicted-probation entries (Value = *costItem)

	items  map[int32]*twoqEntry
	ghosts map[int32]*list.Element

	// ghostCost bounds the ghost list: it remembers at most one full
	// capacity's worth of evicted cost (at unit cost: `capacity` ids,
	// exactly the classic full-capacity ghost sizing).
	ghostCost int64

	onEvict func(int32)
}

type twoqEntry struct {
	elem *list.Element
	// where distinguishes the resident queue: probation or protected.
	where int8 // 0 = in, 1 = am
}

// NewTwoQ creates a 2Q cache holding up to capacity cost units, with the
// classic 25% probation / full-capacity ghost sizing.
func NewTwoQ(capacity int) *TwoQ {
	if capacity < 2 {
		panic(fmt.Sprintf("cache: TwoQ capacity %d", capacity))
	}
	inCap := int64(capacity / 4)
	if inCap < 1 {
		inCap = 1
	}
	return &TwoQ{
		cap:    int64(capacity),
		inCap:  inCap,
		in:     list.New(),
		am:     list.New(),
		ghost:  list.New(),
		items:  map[int32]*twoqEntry{},
		ghosts: map[int32]*list.Element{},
	}
}

// Name implements Policy.
func (c *TwoQ) Name() string { return "2Q" }

// Len implements Policy.
func (c *TwoQ) Len() int { return len(c.items) }

// Cost implements Policy.
func (c *TwoQ) Cost() int64 { return c.used }

// Contains implements Policy.
func (c *TwoQ) Contains(id int32) bool {
	_, ok := c.items[id]
	return ok
}

// OnEvict implements Policy.
func (c *TwoQ) OnEvict(fn func(int32)) { c.onEvict = fn }

// Access implements Policy.
func (c *TwoQ) Access(id int32) bool { return c.AccessCost(id, 1) }

// AccessCost implements Policy.
func (c *TwoQ) AccessCost(id int32, cost int64) bool {
	if cost < 1 {
		cost = 1
	}
	if e, ok := c.items[id]; ok {
		if e.where == 1 {
			c.am.MoveToFront(e.elem)
		}
		// Probation hits do not promote in classic 2Q (only ghost hits
		// prove re-reference beyond the FIFO window).
		it := e.elem.Value.(*costItem)
		if it.cost != cost {
			c.used += cost - it.cost
			it.cost = cost
			c.trim(id)
		}
		return true
	}
	if cost > c.cap {
		return false
	}
	if g, ok := c.ghosts[id]; ok {
		// Re-referenced after probation eviction: admit to protected.
		c.ghostCost -= g.Value.(*costItem).cost
		c.ghost.Remove(g)
		delete(c.ghosts, id)
		c.makeRoom(cost)
		c.items[id] = &twoqEntry{elem: c.am.PushFront(&costItem{id: id, cost: cost}), where: 1}
		c.used += cost
		return false
	}
	// First sighting: probation.
	c.makeRoom(cost)
	c.items[id] = &twoqEntry{elem: c.in.PushFront(&costItem{id: id, cost: cost}), where: 0}
	c.used += cost
	return false
}

// makeRoom evicts resident apps until cost more units fit: prefer the
// oldest probation entry (remembering it as a ghost), else the protected
// LRU tail. Below capacity it is a no-op — probation is not trimmed to its
// sub-capacity while the cache has room.
func (c *TwoQ) makeRoom(cost int64) {
	for c.used+cost > c.cap && len(c.items) > 0 {
		if c.in.Len() > 0 {
			c.evictProbation()
			continue
		}
		back := c.am.Back()
		if back == nil {
			return
		}
		c.removeResident(c.am, back)
	}
}

// trim restores the capacity invariant after a resident entry's cost grew,
// sparing keep until it is the only entry left.
func (c *TwoQ) trim(keep int32) {
	for c.used > c.cap && len(c.items) > 1 {
		if !c.evictExcept(keep) {
			break
		}
	}
	if c.used > c.cap && len(c.items) == 1 {
		if e, ok := c.items[keep]; ok { // keep alone exceeds capacity
			q := c.in
			if e.where == 1 {
				q = c.am
			}
			c.removeResident(q, e.elem)
		}
	}
}

// evictExcept evicts one resident entry other than keep, probation first.
func (c *TwoQ) evictExcept(keep int32) bool {
	if v := backExcept(c.in, keep); v != nil {
		c.evictProbationElem(v)
		return true
	}
	if v := backExcept(c.am, keep); v != nil {
		c.removeResident(c.am, v)
		return true
	}
	return false
}

// backExcept returns the back-most element whose id differs from keep.
func backExcept(ll *list.List, keep int32) *list.Element {
	for v := ll.Back(); v != nil; v = v.Prev() {
		if v.Value.(*costItem).id != keep {
			return v
		}
	}
	return nil
}

func (c *TwoQ) removeResident(ll *list.List, e *list.Element) {
	it := e.Value.(*costItem)
	ll.Remove(e)
	delete(c.items, it.id)
	c.used -= it.cost
	if c.onEvict != nil {
		c.onEvict(it.id)
	}
}

func (c *TwoQ) evictProbation() {
	back := c.in.Back()
	if back == nil {
		return
	}
	c.evictProbationElem(back)
}

func (c *TwoQ) evictProbationElem(e *list.Element) {
	it := e.Value.(*costItem)
	c.removeResident(c.in, e)
	// Remember in the ghost list at the cost it was resident at.
	c.ghosts[it.id] = c.ghost.PushFront(it)
	c.ghostCost += it.cost
	for c.ghostCost > c.cap {
		old := c.ghost.Back()
		oit := old.Value.(*costItem)
		c.ghost.Remove(old)
		delete(c.ghosts, oit.id)
		c.ghostCost -= oit.cost
	}
}

// Warm preloads the first min(capacity, len(ids)) apps into the protected
// LRU (they are known-popular), ids[0] most recent.
func (c *TwoQ) Warm(ids []int32) {
	n := len(ids)
	if int64(n) > c.cap {
		n = int(c.cap)
	}
	for i := n - 1; i >= 0; i-- {
		if c.Contains(ids[i]) {
			continue
		}
		c.makeRoom(1)
		c.items[ids[i]] = &twoqEntry{elem: c.am.PushFront(&costItem{id: ids[i], cost: 1}), where: 1}
		c.used++
	}
}
