package cache

import (
	"container/list"
	"fmt"
)

// TwoQ implements the 2Q replacement policy (Johnson & Shasha, VLDB '94):
// first-time accesses enter a FIFO probation queue (A1in); apps evicted
// from probation are remembered in a ghost list (A1out, ids only); a hit
// on a ghost promotes the app into the protected LRU (Am). Scan-resistant:
// one-shot downloads churn through probation without displacing the
// protected set — a useful contrast policy for the clustering workload,
// where a large fraction of requests are one-time tail downloads.
type TwoQ struct {
	cap      int
	inCap    int
	ghostCap int

	in    *list.List // probation FIFO, front = newest
	am    *list.List // protected LRU, front = most recent
	ghost *list.List // ghost FIFO of evicted-probation ids

	items  map[int32]*twoqEntry
	ghosts map[int32]*list.Element
}

type twoqEntry struct {
	elem *list.Element
	// where distinguishes the resident queue: probation or protected.
	where int8 // 0 = in, 1 = am
}

// NewTwoQ creates a 2Q cache holding up to capacity apps, with the classic
// 25% probation / full-capacity ghost sizing.
func NewTwoQ(capacity int) *TwoQ {
	if capacity < 2 {
		panic(fmt.Sprintf("cache: TwoQ capacity %d", capacity))
	}
	inCap := capacity / 4
	if inCap < 1 {
		inCap = 1
	}
	return &TwoQ{
		cap:      capacity,
		inCap:    inCap,
		ghostCap: capacity,
		in:       list.New(),
		am:       list.New(),
		ghost:    list.New(),
		items:    map[int32]*twoqEntry{},
		ghosts:   map[int32]*list.Element{},
	}
}

// Name implements Policy.
func (c *TwoQ) Name() string { return "2Q" }

// Len implements Policy.
func (c *TwoQ) Len() int { return len(c.items) }

// Contains implements Policy.
func (c *TwoQ) Contains(id int32) bool {
	_, ok := c.items[id]
	return ok
}

// Access implements Policy.
func (c *TwoQ) Access(id int32) bool {
	if e, ok := c.items[id]; ok {
		if e.where == 1 {
			c.am.MoveToFront(e.elem)
		}
		// Probation hits do not promote in classic 2Q (only ghost hits
		// prove re-reference beyond the FIFO window).
		return true
	}
	if g, ok := c.ghosts[id]; ok {
		// Re-referenced after probation eviction: admit to protected.
		c.ghost.Remove(g)
		delete(c.ghosts, id)
		c.makeRoom()
		c.items[id] = &twoqEntry{elem: c.am.PushFront(id), where: 1}
		return false
	}
	// First sighting: probation.
	c.makeRoom()
	c.items[id] = &twoqEntry{elem: c.in.PushFront(id), where: 0}
	return false
}

// makeRoom evicts one resident app if the cache is full: prefer the oldest
// probation entry (remembering it as a ghost), else the protected LRU tail.
func (c *TwoQ) makeRoom() {
	if len(c.items) < c.cap {
		// Still trim probation to its sub-capacity so the protected set
		// can use the rest.
		if c.in.Len() > c.inCap && len(c.items) >= c.cap {
			c.evictProbation()
		}
		return
	}
	if c.in.Len() > 0 {
		c.evictProbation()
		return
	}
	back := c.am.Back()
	if back == nil {
		return
	}
	c.am.Remove(back)
	delete(c.items, back.Value.(int32))
}

func (c *TwoQ) evictProbation() {
	back := c.in.Back()
	if back == nil {
		return
	}
	id := back.Value.(int32)
	c.in.Remove(back)
	delete(c.items, id)
	// Remember in the ghost list.
	c.ghosts[id] = c.ghost.PushFront(id)
	for c.ghost.Len() > c.ghostCap {
		old := c.ghost.Back()
		c.ghost.Remove(old)
		delete(c.ghosts, old.Value.(int32))
	}
}

// Warm preloads the first min(capacity, len(ids)) apps into the protected
// LRU (they are known-popular), ids[0] most recent.
func (c *TwoQ) Warm(ids []int32) {
	n := len(ids)
	if n > c.cap {
		n = c.cap
	}
	for i := n - 1; i >= 0; i-- {
		if c.Contains(ids[i]) {
			continue
		}
		c.makeRoom()
		c.items[ids[i]] = &twoqEntry{elem: c.am.PushFront(ids[i]), where: 1}
	}
}
