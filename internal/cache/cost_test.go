package cache

import (
	"fmt"
	"testing"
)

// policies under test, built fresh per case.
func costPolicies(capacity int) []Policy {
	return []Policy{
		NewLRU(capacity),
		NewFIFO(capacity),
		NewLFU(capacity),
		NewTwoQ(capacity),
		NewCategoryAware(CategoryAwareConfig{
			Capacity:   capacity,
			CategoryOf: func(id int32) int32 { return id % 4 },
		}),
	}
}

// TestAccessCostUnitEquivalence pins the satellite guarantee: a unit-cost
// AccessCost stream is bit-identical to the historical Access stream —
// same hits, same residents — so every offline simulator result is
// unchanged by the byte-cost extension.
func TestAccessCostUnitEquivalence(t *testing.T) {
	const capacity = 48
	trace := make([]int32, 0, 4096)
	state := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < 4096; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		// Skewed ids so hits, evictions, and ghost promotions all occur.
		trace = append(trace, int32((state>>33)%193))
	}
	unit := costPolicies(capacity)
	cost := costPolicies(capacity)
	for pi := range unit {
		name := unit[pi].Name()
		for i, id := range trace {
			a := unit[pi].Access(id)
			b := cost[pi].AccessCost(id, 1)
			if a != b {
				t.Fatalf("%s: step %d (id %d): Access=%v AccessCost(…,1)=%v", name, i, id, a, b)
			}
		}
		if unit[pi].Len() != cost[pi].Len() {
			t.Fatalf("%s: Len diverged: %d vs %d", name, unit[pi].Len(), cost[pi].Len())
		}
		if got, want := cost[pi].Cost(), int64(cost[pi].Len()); got != want {
			t.Fatalf("%s: unit-cost Cost() = %d, want Len() = %d", name, got, want)
		}
		for id := int32(0); id < 193; id++ {
			if unit[pi].Contains(id) != cost[pi].Contains(id) {
				t.Fatalf("%s: residency of id %d diverged", name, id)
			}
		}
	}
}

// TestByteCostCapacityInvariant drives every policy with variable-cost
// accesses and checks that the resident cost never exceeds capacity and
// that the eviction hook keeps an external map in exact sync — the
// contract the edge tier's byte-sized cache depends on.
func TestByteCostCapacityInvariant(t *testing.T) {
	const capacity = 1000
	for _, p := range costPolicies(capacity) {
		t.Run(p.Name(), func(t *testing.T) {
			resident := map[int32]bool{}
			p.OnEvict(func(id int32) { delete(resident, id) })
			state := uint64(12345)
			for i := 0; i < 6000; i++ {
				state = state*6364136223846793005 + 1442695040888963407
				id := int32((state >> 33) % 97)
				cost := int64(10 + (state>>20)%300) // 10..309 bytes
				p.AccessCost(id, cost)
				if p.Contains(id) {
					resident[id] = true
				} else {
					delete(resident, id)
				}
				if got := p.Cost(); got > capacity {
					t.Fatalf("step %d: Cost %d exceeds capacity %d", i, got, capacity)
				}
				if len(resident) != p.Len() {
					t.Fatalf("step %d: hook-tracked residents %d != Len %d", i, len(resident), p.Len())
				}
			}
			for id := range resident {
				if !p.Contains(id) {
					t.Fatalf("hook-tracked id %d not resident", id)
				}
			}
		})
	}
}

// TestOversizeNotAdmitted: an entry larger than the whole cache must be
// rejected without evicting anything.
func TestOversizeNotAdmitted(t *testing.T) {
	for _, p := range costPolicies(100) {
		t.Run(p.Name(), func(t *testing.T) {
			p.AccessCost(1, 40)
			p.AccessCost(2, 40)
			if hit := p.AccessCost(3, 101); hit {
				t.Fatal("oversize access reported a hit")
			}
			if p.Contains(3) {
				t.Fatal("oversize entry was admitted")
			}
			if !p.Contains(1) || !p.Contains(2) {
				t.Fatal("oversize admission evicted resident entries")
			}
		})
	}
}

// TestCostGrowthTrims: when a resident entry is re-accessed at a larger
// cost (a document grew across a day-roll), the cache re-accounts it and
// trims other entries to restore the capacity invariant.
func TestCostGrowthTrims(t *testing.T) {
	for _, p := range costPolicies(100) {
		t.Run(p.Name(), func(t *testing.T) {
			p.AccessCost(1, 30)
			p.AccessCost(2, 30)
			p.AccessCost(3, 30)
			if !p.AccessCost(2, 90) {
				t.Fatal("resident re-access did not hit")
			}
			if !p.Contains(2) {
				t.Fatal("grown entry was dropped despite fitting")
			}
			if got := p.Cost(); got > 100 {
				t.Fatalf("Cost %d exceeds capacity after growth", got)
			}
		})
	}
}

// TestLRUByteOrder pins the eviction order in byte mode: the least
// recently used entries go first, regardless of size.
func TestLRUByteOrder(t *testing.T) {
	c := NewLRU(100)
	var evicted []int32
	c.OnEvict(func(id int32) { evicted = append(evicted, id) })
	c.AccessCost(1, 50)
	c.AccessCost(2, 30)
	c.AccessCost(3, 20) // full: 100
	c.AccessCost(1, 50) // refresh 1; order now 1,3,2
	c.AccessCost(4, 50) // must evict 2 (30) and 3 (20)
	if fmt.Sprint(evicted) != "[2 3]" {
		t.Fatalf("evicted %v, want [2 3]", evicted)
	}
	if !c.Contains(1) || !c.Contains(4) {
		t.Fatal("wrong residents after byte eviction")
	}
	if c.Cost() != 100 || c.Len() != 2 {
		t.Fatalf("Cost=%d Len=%d after eviction", c.Cost(), c.Len())
	}
}
