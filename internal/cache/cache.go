// Package cache simulates an app-delivery cache in front of an appstore,
// the implication study of the paper's §7 (Figure 19): a fixed-capacity
// cache of app packages serving a stream of download requests, measured by
// hit ratio under different workload models and replacement policies.
//
// Beyond the paper's LRU study, the package implements FIFO, LFU, 2Q, and
// a category-aware partitioned-LFU policy (the "new replacement policies"
// the paper calls for), which allocates capacity to categories by their
// observed traffic share.
//
// Every policy accounts capacity in abstract cost units. The offline
// simulators access entries at cost 1, so capacity means "number of apps"
// and the behavior is identical to a pure entry-count cache; the live edge
// tier (internal/edgecache) accesses entries at their encoded byte size, so
// the same policies size a cache in bytes.
package cache

import (
	"container/list"
	"fmt"
)

// Policy is a cache replacement policy over app identifiers. Implementations
// are single-goroutine simulation structures, not concurrent caches; a
// concurrent caller (the edge tier) serializes access externally.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Access records a unit-cost request for id and reports whether it
	// hit. Equivalent to AccessCost(id, 1). On a miss the app is admitted,
	// evicting per policy when full.
	Access(id int32) bool
	// AccessCost records a request for id with the given residency cost
	// (bytes for the edge tier, 1 for the simulators) and reports whether
	// it hit. On a miss the app is admitted — evicting entries per policy
	// until it fits — unless cost alone exceeds the total capacity, in
	// which case nothing is cached. A hit whose cost differs from the
	// resident cost re-accounts the entry and trims overflow. cost < 1 is
	// treated as 1.
	AccessCost(id int32, cost int64) bool
	// Len returns the number of cached apps.
	Len() int
	// Cost returns the summed residency cost of the cached apps. Equals
	// Len() when every access was unit-cost.
	Cost() int64
	// Contains reports whether the app is currently cached.
	Contains(id int32) bool
	// OnEvict registers fn to be called with each id the policy removes to
	// make room (not for ids merely rejected on admission). At most one
	// hook is active; nil clears it.
	OnEvict(fn func(id int32))
}

// costItem is a resident entry in the list-based policies: the id plus the
// cost it was admitted (or last re-accounted) at.
type costItem struct {
	id   int32
	cost int64
}

// mapHint bounds the initial item-map size: at unit cost the capacity is
// an exact entry count, but a byte budget (tens of MiB) would preallocate
// a map for millions of entries that can never all be resident.
func mapHint(capacity int) int {
	const maxHint = 1 << 16
	if capacity > maxHint {
		return maxHint
	}
	return capacity
}

// LRU is a least-recently-used cache.
type LRU struct {
	cap     int64
	used    int64
	ll      *list.List              // front = most recent
	items   map[int32]*list.Element // id -> element (Value = *costItem)
	onEvict func(int32)
}

// NewLRU creates an LRU cache holding up to capacity cost units.
func NewLRU(capacity int) *LRU {
	if capacity < 1 {
		panic(fmt.Sprintf("cache: LRU capacity %d", capacity))
	}
	return &LRU{cap: int64(capacity), ll: list.New(), items: make(map[int32]*list.Element, mapHint(capacity))}
}

// Name implements Policy.
func (c *LRU) Name() string { return "LRU" }

// Len implements Policy.
func (c *LRU) Len() int { return c.ll.Len() }

// Cost implements Policy.
func (c *LRU) Cost() int64 { return c.used }

// Contains implements Policy.
func (c *LRU) Contains(id int32) bool { _, ok := c.items[id]; return ok }

// OnEvict implements Policy.
func (c *LRU) OnEvict(fn func(int32)) { c.onEvict = fn }

// Access implements Policy.
func (c *LRU) Access(id int32) bool { return c.AccessCost(id, 1) }

// AccessCost implements Policy.
func (c *LRU) AccessCost(id int32, cost int64) bool {
	if cost < 1 {
		cost = 1
	}
	if e, ok := c.items[id]; ok {
		c.ll.MoveToFront(e)
		it := e.Value.(*costItem)
		if it.cost != cost {
			c.used += cost - it.cost
			it.cost = cost
			c.trim(id)
		}
		return true
	}
	if cost > c.cap {
		return false // larger than the whole cache: not admitted
	}
	for c.used+cost > c.cap {
		back := c.ll.Back()
		if back == nil {
			break
		}
		c.remove(back)
	}
	c.items[id] = c.ll.PushFront(&costItem{id: id, cost: cost})
	c.used += cost
	return false
}

// trim evicts from the LRU tail until the cache fits again, touching keep
// (necessarily at the front) only when it is the sole remaining entry.
func (c *LRU) trim(keep int32) {
	for c.used > c.cap {
		back := c.ll.Back()
		if back == nil {
			return
		}
		evicted := back.Value.(*costItem).id
		c.remove(back)
		if evicted == keep {
			return
		}
	}
}

func (c *LRU) remove(e *list.Element) {
	it := e.Value.(*costItem)
	c.ll.Remove(e)
	delete(c.items, it.id)
	c.used -= it.cost
	if c.onEvict != nil {
		c.onEvict(it.id)
	}
}

// Warm preloads the cache with the given apps in order of descending
// priority: the first min(capacity, len(ids)) entries are admitted and
// ids[0] ends up most recently used. The paper initializes caches with the
// most popular apps.
func (c *LRU) Warm(ids []int32) {
	n := len(ids)
	if int64(n) > c.cap {
		n = int(c.cap)
	}
	for i := n - 1; i >= 0; i-- {
		c.Access(ids[i])
	}
}

// FIFO evicts in insertion order regardless of use.
type FIFO struct {
	cap     int64
	used    int64
	ll      *list.List
	items   map[int32]*list.Element
	onEvict func(int32)
}

// NewFIFO creates a FIFO cache holding up to capacity cost units.
func NewFIFO(capacity int) *FIFO {
	if capacity < 1 {
		panic(fmt.Sprintf("cache: FIFO capacity %d", capacity))
	}
	return &FIFO{cap: int64(capacity), ll: list.New(), items: make(map[int32]*list.Element, mapHint(capacity))}
}

// Name implements Policy.
func (c *FIFO) Name() string { return "FIFO" }

// Len implements Policy.
func (c *FIFO) Len() int { return c.ll.Len() }

// Cost implements Policy.
func (c *FIFO) Cost() int64 { return c.used }

// Contains implements Policy.
func (c *FIFO) Contains(id int32) bool { _, ok := c.items[id]; return ok }

// OnEvict implements Policy.
func (c *FIFO) OnEvict(fn func(int32)) { c.onEvict = fn }

// Access implements Policy.
func (c *FIFO) Access(id int32) bool { return c.AccessCost(id, 1) }

// AccessCost implements Policy.
func (c *FIFO) AccessCost(id int32, cost int64) bool {
	if cost < 1 {
		cost = 1
	}
	if e, ok := c.items[id]; ok {
		it := e.Value.(*costItem)
		if it.cost != cost {
			c.used += cost - it.cost
			it.cost = cost
			c.trim(id)
		}
		return true
	}
	if cost > c.cap {
		return false
	}
	for c.used+cost > c.cap {
		back := c.ll.Back()
		if back == nil {
			break
		}
		c.remove(back)
	}
	c.items[id] = c.ll.PushFront(&costItem{id: id, cost: cost})
	c.used += cost
	return false
}

// trim evicts in FIFO order until the cache fits, skipping keep unless it
// is the only entry left.
func (c *FIFO) trim(keep int32) {
	for c.used > c.cap {
		v := c.ll.Back()
		if v == nil {
			return
		}
		if v.Value.(*costItem).id == keep {
			if v = v.Prev(); v == nil {
				c.remove(c.ll.Back())
				return
			}
		}
		c.remove(v)
	}
}

func (c *FIFO) remove(e *list.Element) {
	it := e.Value.(*costItem)
	c.ll.Remove(e)
	delete(c.items, it.id)
	c.used -= it.cost
	if c.onEvict != nil {
		c.onEvict(it.id)
	}
}

// Warm preloads the cache (first id admitted first).
func (c *FIFO) Warm(ids []int32) {
	for _, id := range ids {
		if c.used >= c.cap {
			break
		}
		c.Access(id)
	}
}

// LFU evicts the least-frequently-used app, breaking ties by recency.
// Implemented with the standard O(1) frequency-list structure.
type LFU struct {
	cap     int64
	used    int64
	freqs   *list.List // of *freqBucket, ascending frequency
	items   map[int32]*lfuEntry
	onEvict func(int32)
}

type freqBucket struct {
	freq    int64
	entries *list.List // of int32 ids, front = most recent
}

type lfuEntry struct {
	bucket *list.Element // into freqs
	elem   *list.Element // into bucket.entries
	cost   int64
}

// NewLFU creates an LFU cache holding up to capacity cost units.
func NewLFU(capacity int) *LFU {
	if capacity < 1 {
		panic(fmt.Sprintf("cache: LFU capacity %d", capacity))
	}
	return &LFU{cap: int64(capacity), freqs: list.New(), items: make(map[int32]*lfuEntry, mapHint(capacity))}
}

// Name implements Policy.
func (c *LFU) Name() string { return "LFU" }

// Len implements Policy.
func (c *LFU) Len() int { return len(c.items) }

// Cost implements Policy.
func (c *LFU) Cost() int64 { return c.used }

// Contains implements Policy.
func (c *LFU) Contains(id int32) bool { _, ok := c.items[id]; return ok }

// OnEvict implements Policy.
func (c *LFU) OnEvict(fn func(int32)) { c.onEvict = fn }

// Access implements Policy.
func (c *LFU) Access(id int32) bool { return c.AccessCost(id, 1) }

// AccessCost implements Policy.
func (c *LFU) AccessCost(id int32, cost int64) bool {
	if cost < 1 {
		cost = 1
	}
	if e, ok := c.items[id]; ok {
		c.promote(id, e)
		if e.cost != cost {
			c.used += cost - e.cost
			e.cost = cost
			c.trim(id)
		}
		return true
	}
	if cost > c.cap {
		return false
	}
	for c.used+cost > c.cap && len(c.items) > 0 {
		c.evict()
	}
	// Insert at frequency 1.
	front := c.freqs.Front()
	if front == nil || front.Value.(*freqBucket).freq != 1 {
		front = c.freqs.PushFront(&freqBucket{freq: 1, entries: list.New()})
	}
	b := front.Value.(*freqBucket)
	c.items[id] = &lfuEntry{bucket: front, elem: b.entries.PushFront(id), cost: cost}
	c.used += cost
	return false
}

func (c *LFU) promote(id int32, e *lfuEntry) {
	b := e.bucket.Value.(*freqBucket)
	next := e.bucket.Next()
	b.entries.Remove(e.elem)
	var target *list.Element
	if next != nil && next.Value.(*freqBucket).freq == b.freq+1 {
		target = next
	} else {
		target = c.freqs.InsertAfter(&freqBucket{freq: b.freq + 1, entries: list.New()}, e.bucket)
	}
	if b.entries.Len() == 0 {
		c.freqs.Remove(e.bucket)
	}
	tb := target.Value.(*freqBucket)
	e.bucket = target
	e.elem = tb.entries.PushFront(id)
}

func (c *LFU) evict() {
	front := c.freqs.Front()
	if front == nil {
		return
	}
	b := front.Value.(*freqBucket)
	victim := b.entries.Back() // least recent within lowest frequency
	c.removeVictim(front, b, victim)
}

func (c *LFU) removeVictim(fb *list.Element, b *freqBucket, victim *list.Element) {
	id := victim.Value.(int32)
	b.entries.Remove(victim)
	if b.entries.Len() == 0 {
		c.freqs.Remove(fb)
	}
	c.used -= c.items[id].cost
	delete(c.items, id)
	if c.onEvict != nil {
		c.onEvict(id)
	}
}

// trim evicts in LFU order until the cache fits, sparing keep until it is
// the only entry left.
func (c *LFU) trim(keep int32) {
	for c.used > c.cap && len(c.items) > 1 {
		c.evictExcept(keep)
	}
	if c.used > c.cap && len(c.items) == 1 {
		c.evict() // keep alone exceeds capacity
	}
}

// evictExcept removes the least-frequently-used entry other than keep.
func (c *LFU) evictExcept(keep int32) {
	for fb := c.freqs.Front(); fb != nil; fb = fb.Next() {
		b := fb.Value.(*freqBucket)
		for v := b.entries.Back(); v != nil; v = v.Prev() {
			if v.Value.(int32) == keep {
				continue
			}
			c.removeVictim(fb, b, v)
			return
		}
	}
}

// Warm preloads the first min(capacity, len(ids)) apps at frequency 1,
// ids[0] most recent.
func (c *LFU) Warm(ids []int32) {
	n := len(ids)
	if int64(n) > c.cap {
		n = int(c.cap)
	}
	for i := n - 1; i >= 0; i-- {
		c.Access(ids[i])
	}
}
