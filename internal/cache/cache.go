// Package cache simulates an app-delivery cache in front of an appstore,
// the implication study of the paper's §7 (Figure 19): a fixed-capacity
// cache of app packages serving a stream of download requests, measured by
// hit ratio under different workload models and replacement policies.
//
// Beyond the paper's LRU study, the package implements FIFO, LFU, 2Q, and
// a category-aware partitioned-LFU policy (the "new replacement policies"
// the paper calls for), which allocates capacity to categories by their
// observed traffic share.
package cache

import (
	"container/list"
	"fmt"
)

// Policy is a cache replacement policy over app identifiers. Implementations
// are single-goroutine simulation structures, not concurrent caches.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Access records a request for app id and reports whether it hit.
	// On a miss the app is admitted, evicting per policy when full.
	Access(id int32) bool
	// Len returns the number of cached apps.
	Len() int
	// Contains reports whether the app is currently cached.
	Contains(id int32) bool
}

// LRU is a least-recently-used cache.
type LRU struct {
	cap   int
	ll    *list.List              // front = most recent
	items map[int32]*list.Element // id -> element (Value = id)
}

// NewLRU creates an LRU cache holding up to capacity apps.
func NewLRU(capacity int) *LRU {
	if capacity < 1 {
		panic(fmt.Sprintf("cache: LRU capacity %d", capacity))
	}
	return &LRU{cap: capacity, ll: list.New(), items: make(map[int32]*list.Element, capacity)}
}

// Name implements Policy.
func (c *LRU) Name() string { return "LRU" }

// Len implements Policy.
func (c *LRU) Len() int { return c.ll.Len() }

// Contains implements Policy.
func (c *LRU) Contains(id int32) bool { _, ok := c.items[id]; return ok }

// Access implements Policy.
func (c *LRU) Access(id int32) bool {
	if e, ok := c.items[id]; ok {
		c.ll.MoveToFront(e)
		return true
	}
	if c.ll.Len() >= c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(int32))
	}
	c.items[id] = c.ll.PushFront(id)
	return false
}

// Warm preloads the cache with the given apps in order of descending
// priority: the first min(capacity, len(ids)) entries are admitted and
// ids[0] ends up most recently used. The paper initializes caches with the
// most popular apps.
func (c *LRU) Warm(ids []int32) {
	n := len(ids)
	if n > c.cap {
		n = c.cap
	}
	for i := n - 1; i >= 0; i-- {
		c.Access(ids[i])
	}
}

// FIFO evicts in insertion order regardless of use.
type FIFO struct {
	cap   int
	ll    *list.List
	items map[int32]*list.Element
}

// NewFIFO creates a FIFO cache holding up to capacity apps.
func NewFIFO(capacity int) *FIFO {
	if capacity < 1 {
		panic(fmt.Sprintf("cache: FIFO capacity %d", capacity))
	}
	return &FIFO{cap: capacity, ll: list.New(), items: make(map[int32]*list.Element, capacity)}
}

// Name implements Policy.
func (c *FIFO) Name() string { return "FIFO" }

// Len implements Policy.
func (c *FIFO) Len() int { return c.ll.Len() }

// Contains implements Policy.
func (c *FIFO) Contains(id int32) bool { _, ok := c.items[id]; return ok }

// Access implements Policy.
func (c *FIFO) Access(id int32) bool {
	if _, ok := c.items[id]; ok {
		return true
	}
	if c.ll.Len() >= c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(int32))
	}
	c.items[id] = c.ll.PushFront(id)
	return false
}

// Warm preloads the cache (first id admitted first).
func (c *FIFO) Warm(ids []int32) {
	for _, id := range ids {
		if c.ll.Len() >= c.cap {
			break
		}
		c.Access(id)
	}
}

// LFU evicts the least-frequently-used app, breaking ties by recency.
// Implemented with the standard O(1) frequency-list structure.
type LFU struct {
	cap   int
	freqs *list.List // of *freqBucket, ascending frequency
	items map[int32]*lfuEntry
}

type freqBucket struct {
	freq    int64
	entries *list.List // of int32 ids, front = most recent
}

type lfuEntry struct {
	bucket *list.Element // into freqs
	elem   *list.Element // into bucket.entries
}

// NewLFU creates an LFU cache holding up to capacity apps.
func NewLFU(capacity int) *LFU {
	if capacity < 1 {
		panic(fmt.Sprintf("cache: LFU capacity %d", capacity))
	}
	return &LFU{cap: capacity, freqs: list.New(), items: make(map[int32]*lfuEntry, capacity)}
}

// Name implements Policy.
func (c *LFU) Name() string { return "LFU" }

// Len implements Policy.
func (c *LFU) Len() int { return len(c.items) }

// Contains implements Policy.
func (c *LFU) Contains(id int32) bool { _, ok := c.items[id]; return ok }

// Access implements Policy.
func (c *LFU) Access(id int32) bool {
	if e, ok := c.items[id]; ok {
		c.promote(id, e)
		return true
	}
	if len(c.items) >= c.cap {
		c.evict()
	}
	// Insert at frequency 1.
	front := c.freqs.Front()
	if front == nil || front.Value.(*freqBucket).freq != 1 {
		front = c.freqs.PushFront(&freqBucket{freq: 1, entries: list.New()})
	}
	b := front.Value.(*freqBucket)
	c.items[id] = &lfuEntry{bucket: front, elem: b.entries.PushFront(id)}
	return false
}

func (c *LFU) promote(id int32, e *lfuEntry) {
	b := e.bucket.Value.(*freqBucket)
	next := e.bucket.Next()
	b.entries.Remove(e.elem)
	var target *list.Element
	if next != nil && next.Value.(*freqBucket).freq == b.freq+1 {
		target = next
	} else {
		target = c.freqs.InsertAfter(&freqBucket{freq: b.freq + 1, entries: list.New()}, e.bucket)
	}
	if b.entries.Len() == 0 {
		c.freqs.Remove(e.bucket)
	}
	tb := target.Value.(*freqBucket)
	e.bucket = target
	e.elem = tb.entries.PushFront(id)
}

func (c *LFU) evict() {
	front := c.freqs.Front()
	if front == nil {
		return
	}
	b := front.Value.(*freqBucket)
	victim := b.entries.Back() // least recent within lowest frequency
	b.entries.Remove(victim)
	if b.entries.Len() == 0 {
		c.freqs.Remove(front)
	}
	delete(c.items, victim.Value.(int32))
}

// Warm preloads the first min(capacity, len(ids)) apps at frequency 1,
// ids[0] most recent.
func (c *LFU) Warm(ids []int32) {
	n := len(ids)
	if n > c.cap {
		n = c.cap
	}
	for i := n - 1; i >= 0; i-- {
		c.Access(ids[i])
	}
}
