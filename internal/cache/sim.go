package cache

import (
	"fmt"

	"planetapps/internal/model"
)

// SimResult reports one cache simulation.
type SimResult struct {
	Policy   string
	Model    string
	Capacity int
	Requests int64
	Hits     int64
}

// HitRatio returns hits/requests as a percentage, or 0 for an empty run.
func (r SimResult) HitRatio() float64 {
	if r.Requests == 0 {
		return 0
	}
	return 100 * float64(r.Hits) / float64(r.Requests)
}

// Simulate replays a workload-model event stream through a cache policy,
// warming the cache with the most popular apps first (the paper initializes
// the cache "with the respective number of most popular apps"; under the
// models' app-index-equals-rank convention those are apps 0..capacity-1).
func Simulate(p Policy, warm interface{ Warm([]int32) }, sim *model.Simulator, capacity int, seed uint64) SimResult {
	if warm != nil {
		ids := make([]int32, capacity)
		for i := range ids {
			ids[i] = int32(i)
		}
		warm.Warm(ids)
	}
	res := SimResult{Policy: p.Name(), Model: sim.Kind().String(), Capacity: capacity}
	sim.Stream(seed, func(e model.Event) bool {
		res.Requests++
		if p.Access(e.App) {
			res.Hits++
		}
		return true
	})
	return res
}

// SweepPoint is one (cache size, per-model hit ratio) row of Figure 19.
type SweepPoint struct {
	// SizePct is the cache size as a percentage of the app population.
	SizePct float64
	// Capacity is the corresponding number of cached apps.
	Capacity int
	// HitRatio maps model name to hit percentage.
	HitRatio map[string]float64
}

// SweepLRU reproduces Figure 19: an LRU cache swept over sizes (percent of
// total apps), driven by each of the three workload models built from cfg.
func SweepLRU(cfg model.Config, sizesPct []float64, seed uint64) ([]SweepPoint, error) {
	out := make([]SweepPoint, 0, len(sizesPct))
	sims := make(map[model.Kind]*model.Simulator, len(model.Kinds))
	for _, k := range model.Kinds {
		s, err := model.NewSimulator(k, cfg)
		if err != nil {
			return nil, err
		}
		sims[k] = s
	}
	for _, pct := range sizesPct {
		capApps := int(pct / 100 * float64(cfg.Apps))
		if capApps < 1 {
			return nil, fmt.Errorf("cache: size %v%% of %d apps is empty", pct, cfg.Apps)
		}
		pt := SweepPoint{SizePct: pct, Capacity: capApps, HitRatio: map[string]float64{}}
		for _, k := range model.Kinds {
			lru := NewLRU(capApps)
			r := Simulate(lru, lru, sims[k], capApps, seed)
			pt.HitRatio[k.String()] = r.HitRatio()
		}
		out = append(out, pt)
	}
	return out, nil
}

// ComparePolicies runs the APP-CLUSTERING workload against several policies
// at one cache size — the X2 extension experiment. The category-aware
// policy uses the model's cluster map as its category structure.
func ComparePolicies(cfg model.Config, capacity int, seed uint64) ([]SimResult, error) {
	sim, err := model.NewSimulator(model.AppClustering, cfg)
	if err != nil {
		return nil, err
	}
	cm := cfg.ClusterMap
	if cm == nil {
		cm = model.RoundRobin(cfg.Apps, cfg.Clusters)
	}
	lru := NewLRU(capacity)
	fifo := NewFIFO(capacity)
	lfu := NewLFU(capacity)
	twoq := NewTwoQ(capacity)
	ca := NewCategoryAware(CategoryAwareConfig{
		Capacity:   capacity,
		CategoryOf: func(id int32) int32 { return cm.OfApp[id] },
	})
	var out []SimResult
	out = append(out, Simulate(fifo, fifo, sim, capacity, seed))
	out = append(out, Simulate(lru, lru, sim, capacity, seed))
	out = append(out, Simulate(twoq, twoq, sim, capacity, seed))
	out = append(out, Simulate(lfu, lfu, sim, capacity, seed))
	out = append(out, Simulate(ca, ca, sim, capacity, seed))
	return out, nil
}
