package cache

import (
	"testing"

	"planetapps/internal/model"
	"planetapps/internal/rng"
)

func TestLRUBasics(t *testing.T) {
	c := NewLRU(2)
	if c.Access(1) {
		t.Fatal("cold access hit")
	}
	if !c.Access(1) {
		t.Fatal("warm access missed")
	}
	c.Access(2)
	c.Access(3) // evicts 1 (LRU order: 2 older than... 1 was used, then 2 inserted, then 3 evicts 1? order: after Access(1)x2, Access(2): [2,1]; Access(3) evicts 1)
	if c.Contains(1) {
		t.Fatal("LRU kept the least recently used entry")
	}
	if !c.Contains(2) || !c.Contains(3) {
		t.Fatal("LRU evicted the wrong entry")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestLRURecencyUpdatesOnHit(t *testing.T) {
	c := NewLRU(2)
	c.Access(1)
	c.Access(2)
	c.Access(1) // 1 becomes most recent
	c.Access(3) // should evict 2
	if !c.Contains(1) || c.Contains(2) {
		t.Fatal("hit did not refresh recency")
	}
}

func TestLRUWarm(t *testing.T) {
	c := NewLRU(3)
	c.Warm([]int32{10, 11, 12, 13}) // only first 3 fit; 10 most recent
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}
	if !c.Contains(10) || !c.Contains(11) || !c.Contains(12) {
		t.Fatal("warm set wrong")
	}
	c.Access(20) // evicts 12 (least recent of the warmed set)
	if c.Contains(12) || !c.Contains(10) {
		t.Fatal("warm priority order wrong")
	}
}

func TestFIFOIgnoresRecency(t *testing.T) {
	c := NewFIFO(2)
	c.Access(1)
	c.Access(2)
	c.Access(1) // hit, but FIFO does not refresh
	c.Access(3) // evicts 1 (first in)
	if c.Contains(1) || !c.Contains(2) || !c.Contains(3) {
		t.Fatal("FIFO eviction order wrong")
	}
}

func TestLFUEvictsColdest(t *testing.T) {
	c := NewLFU(2)
	c.Access(1)
	c.Access(1)
	c.Access(1) // freq 3
	c.Access(2) // freq 1
	c.Access(3) // evicts 2 (lowest freq)
	if c.Contains(2) || !c.Contains(1) || !c.Contains(3) {
		t.Fatal("LFU eviction wrong")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestLFUTieBreakByRecency(t *testing.T) {
	c := NewLFU(2)
	c.Access(1) // freq 1
	c.Access(2) // freq 1, more recent
	c.Access(3) // tie at freq 1: evict least recent = 1
	if c.Contains(1) || !c.Contains(2) || !c.Contains(3) {
		t.Fatal("LFU tie-break wrong")
	}
}

func TestLFUPromotionAcrossBuckets(t *testing.T) {
	c := NewLFU(3)
	c.Access(1)
	c.Access(2)
	c.Access(3)
	// Promote 1 twice, 2 once.
	c.Access(1)
	c.Access(1)
	c.Access(2)
	c.Access(4) // evicts 3 (freq 1)
	if c.Contains(3) || !c.Contains(1) || !c.Contains(2) || !c.Contains(4) {
		t.Fatal("LFU bucket promotion broken")
	}
}

func TestConstructorsPanicOnBadCapacity(t *testing.T) {
	for _, f := range []func(){
		func() { NewLRU(0) },
		func() { NewFIFO(0) },
		func() { NewLFU(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad capacity did not panic")
				}
			}()
			f()
		}()
	}
}

func newTestCategoryAware(capacity, apps, cats int) *CategoryAware {
	cm := model.RoundRobin(apps, cats)
	return NewCategoryAware(CategoryAwareConfig{
		Capacity:   capacity,
		CategoryOf: func(id int32) int32 { return cm.OfApp[id] },
	})
}

func TestCategoryAwareBasics(t *testing.T) {
	c := newTestCategoryAware(3, 100, 5)
	if c.Access(1) {
		t.Fatal("cold access hit")
	}
	if !c.Access(1) {
		t.Fatal("warm access missed")
	}
	c.Access(2)
	c.Access(3)
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}
	c.Access(4) // over capacity: something must be evicted
	if c.Len() != 3 {
		t.Fatalf("Len after eviction = %d", c.Len())
	}
	if !c.Contains(4) {
		t.Fatal("newly inserted app evicted immediately")
	}
}

func TestCategoryAwareIsolatesCategoryChurn(t *testing.T) {
	// A stable head in category 0 must survive heavy churn from category 1
	// once allocation targets have been learned — the property a global
	// LRU lacks.
	cm := model.RoundRobin(1000, 2)
	c := NewCategoryAware(CategoryAwareConfig{
		Capacity:       10,
		CategoryOf:     func(id int32) int32 { return cm.OfApp[id] },
		RebalanceEvery: 20,
	})
	// Even ids are category 0; odd are category 1. App 0 is the hot head.
	for i := 0; i < 400; i++ {
		c.Access(0)                    // hot app, category 0
		c.Access(int32(2*(i%150) + 1)) // churn across category 1
	}
	if !c.Contains(0) {
		t.Fatal("hot app evicted by cross-category churn")
	}
}

func TestCategoryAwareConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad config did not panic")
		}
	}()
	NewCategoryAware(CategoryAwareConfig{Capacity: 10})
}

func cacheSimCfg() model.Config {
	return model.Config{
		Apps: 2000, Users: 6000, DownloadsPerUser: 10,
		ZipfGlobal: 1.7, ZipfCluster: 1.4, ClusterP: 0.9, Clusters: 30,
	}
}

func TestSimulateHitRatioSane(t *testing.T) {
	cfg := cacheSimCfg()
	sim, err := model.NewSimulator(model.Zipf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lru := NewLRU(200)
	res := Simulate(lru, lru, sim, 200, 1)
	if res.Requests == 0 {
		t.Fatal("no requests simulated")
	}
	hr := res.HitRatio()
	if hr < 50 || hr > 100 {
		t.Fatalf("ZIPF LRU hit ratio %v%%, want high", hr)
	}
}

func TestSweepLRUFigure19Shape(t *testing.T) {
	// Figure 19's two claims: hit ratio grows with cache size, and
	// APP-CLUSTERING yields a significantly lower hit ratio than ZIPF and
	// ZIPF-at-most-once at every size.
	cfg := cacheSimCfg()
	points, err := SweepLRU(cfg, []float64{1, 5, 10, 20}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("got %d points", len(points))
	}
	for i, pt := range points {
		z := pt.HitRatio[model.Zipf.String()]
		amo := pt.HitRatio[model.ZipfAtMostOnce.String()]
		cl := pt.HitRatio[model.AppClustering.String()]
		if cl >= z || cl >= amo {
			t.Fatalf("size %v%%: clustering hit ratio %v not below zipf %v / amo %v", pt.SizePct, cl, z, amo)
		}
		if i > 0 {
			prev := points[i-1].HitRatio[model.AppClustering.String()]
			if cl < prev-2 { // allow small noise
				t.Fatalf("clustering hit ratio fell with larger cache: %v -> %v", prev, cl)
			}
		}
	}
}

func TestSweepLRUErrors(t *testing.T) {
	cfg := cacheSimCfg()
	if _, err := SweepLRU(cfg, []float64{0.001}, 1); err == nil {
		t.Fatal("empty cache size accepted")
	}
}

func TestComparePoliciesCategoryAwareWins(t *testing.T) {
	// X2: under the clustering workload the category-aware policy should
	// beat plain LRU.
	cfg := cacheSimCfg()
	results, err := ComparePolicies(cfg, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]SimResult{}
	for _, r := range results {
		byName[r.Policy] = r
	}
	lru, ok1 := byName["LRU"]
	ca, ok2 := byName["CategoryAware"]
	if !ok1 || !ok2 {
		t.Fatalf("missing policies in %v", results)
	}
	if ca.HitRatio() <= lru.HitRatio() {
		t.Fatalf("category-aware %v%% did not beat LRU %v%%", ca.HitRatio(), lru.HitRatio())
	}
}

func TestPoliciesNeverExceedCapacity(t *testing.T) {
	r := rng.New(5)
	policies := []Policy{NewLRU(50), NewFIFO(50), NewLFU(50), newTestCategoryAware(50, 500, 10)}
	for i := 0; i < 20000; i++ {
		id := int32(r.Intn(500))
		for _, p := range policies {
			p.Access(id)
			if p.Len() > 50+1 { // category-aware may transiently hold cap
				t.Fatalf("%s holds %d entries with capacity 50", p.Name(), p.Len())
			}
		}
	}
}

func BenchmarkLRUAccess(b *testing.B) {
	c := NewLRU(10000)
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(int32(r.Intn(100000)))
	}
}

func BenchmarkLFUAccess(b *testing.B) {
	c := NewLFU(10000)
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(int32(r.Intn(100000)))
	}
}

func TestTwoQProbationAndPromotion(t *testing.T) {
	c := NewTwoQ(4) // inCap=1, ghostCap=4
	if c.Access(1) {
		t.Fatal("cold access hit")
	}
	if !c.Access(1) {
		t.Fatal("probation resident missed")
	}
	// Fill to capacity; probation overflow should evict into ghosts once
	// the cache is full.
	c.Access(2)
	c.Access(3)
	c.Access(4)
	c.Access(5) // full: oldest probation entry (1) evicted to ghost
	if c.Contains(1) {
		t.Fatal("oldest probation entry still resident")
	}
	// Ghost hit promotes into the protected queue.
	if c.Access(1) {
		t.Fatal("ghost re-admission counted as hit")
	}
	if !c.Contains(1) {
		t.Fatal("ghost promotion failed")
	}
	if c.Len() > 4 {
		t.Fatalf("over capacity: %d", c.Len())
	}
}

func TestTwoQScanResistance(t *testing.T) {
	// A hot protected app must survive a long one-shot scan.
	c := NewTwoQ(8)
	c.Warm([]int32{1000, 1001}) // protected residents
	for i := int32(0); i < 500; i++ {
		c.Access(i) // one-shot scan
	}
	if !c.Contains(1000) || !c.Contains(1001) {
		t.Fatal("scan evicted the protected set")
	}
}

func TestTwoQPanicsOnTinyCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("capacity 1 did not panic")
		}
	}()
	NewTwoQ(1)
}

func TestTwoQCapacityInvariant(t *testing.T) {
	c := NewTwoQ(16)
	r := rng.New(3)
	for i := 0; i < 50000; i++ {
		c.Access(int32(r.Intn(300)))
		if c.Len() > 16 {
			t.Fatalf("capacity exceeded: %d", c.Len())
		}
	}
}
