package cache

import (
	"fmt"
)

// CategoryAware is the extension policy §7 of the paper motivates ("new
// replacement policies should be used, taking into account the
// clustering-based user behavior"). It is a partitioned LFU: capacity is
// divided into per-category segments whose sizes track each category's
// observed traffic share, and within a segment the least-frequently-used
// app is evicted (ties broken by recency).
//
// Rationale: under APP-CLUSTERING the aggregate request stream a shared
// cache sees has no temporal category locality (per-user category runs are
// interleaved across many users) — instead the clustering effect
// concentrates requests on every category's popularity head. Frequency is
// therefore the dominant signal, and the per-category partition keeps one
// category's churn from displacing another category's stable head, which
// a single global recency list cannot guarantee.
type CategoryAware struct {
	cap        int
	rebalance  int
	categoryOf func(int32) int32

	items    map[int32]*caEntry
	segments map[int32]map[int32]*caEntry
	seq      int64

	counts  map[int32]int64 // per-category request counts
	total   int64
	sinceRe int
	targets map[int32]int
}

type caEntry struct {
	cat     int32
	count   int64
	lastUse int64
}

// CategoryAwareConfig configures the policy.
type CategoryAwareConfig struct {
	// Capacity is the total number of apps the cache holds.
	Capacity int
	// CategoryOf maps app id to category id.
	CategoryOf func(int32) int32
	// RebalanceEvery is the number of requests between allocation-target
	// recomputations; 0 selects Capacity.
	RebalanceEvery int
}

// NewCategoryAware builds the policy. It panics on invalid configuration,
// mirroring the other constructors.
func NewCategoryAware(cfg CategoryAwareConfig) *CategoryAware {
	if cfg.Capacity < 1 {
		panic(fmt.Sprintf("cache: CategoryAware capacity %d", cfg.Capacity))
	}
	if cfg.CategoryOf == nil {
		panic("cache: CategoryAware needs CategoryOf")
	}
	re := cfg.RebalanceEvery
	if re <= 0 {
		re = cfg.Capacity
	}
	return &CategoryAware{
		cap:        cfg.Capacity,
		rebalance:  re,
		categoryOf: cfg.CategoryOf,
		items:      map[int32]*caEntry{},
		segments:   map[int32]map[int32]*caEntry{},
		counts:     map[int32]int64{},
		targets:    map[int32]int{},
	}
}

// Name implements Policy.
func (c *CategoryAware) Name() string { return "CategoryAware" }

// Len implements Policy.
func (c *CategoryAware) Len() int { return len(c.items) }

// Contains implements Policy.
func (c *CategoryAware) Contains(id int32) bool {
	_, ok := c.items[id]
	return ok
}

// Access implements Policy.
func (c *CategoryAware) Access(id int32) bool {
	cat := c.categoryOf(id)
	c.counts[cat]++
	c.total++
	c.seq++
	c.sinceRe++
	if c.sinceRe >= c.rebalance {
		c.recomputeTargets()
		c.sinceRe = 0
	}
	if e, ok := c.items[id]; ok {
		e.count++
		e.lastUse = c.seq
		return true
	}
	if len(c.items) >= c.cap {
		c.evict(cat)
	}
	e := &caEntry{cat: cat, count: 1, lastUse: c.seq}
	c.items[id] = e
	seg := c.segments[cat]
	if seg == nil {
		seg = map[int32]*caEntry{}
		c.segments[cat] = seg
	}
	seg[id] = e
	return false
}

// recomputeTargets reallocates capacity proportionally to observed traffic,
// guaranteeing at least one slot to every category seen so far and giving
// leftover slots to the busiest category.
func (c *CategoryAware) recomputeTargets() {
	if c.total == 0 {
		return
	}
	for cat := range c.targets {
		delete(c.targets, cat)
	}
	assigned := 0
	var maxCat int32
	var maxCount int64 = -1
	for cat, n := range c.counts {
		t := int(float64(c.cap) * float64(n) / float64(c.total))
		if t < 1 {
			t = 1
		}
		c.targets[cat] = t
		assigned += t
		// Tie-break on the lower category id: map iteration order must
		// not decide who receives the leftover slots.
		if n > maxCount || (n == maxCount && cat < maxCat) {
			maxCount, maxCat = n, cat
		}
	}
	if rem := c.cap - assigned; rem > 0 {
		c.targets[maxCat] += rem
	}
}

// evict removes the least-frequently-used app (ties by least recent) from
// the most over-target segment; the inserting category is handicapped so it
// can grow toward its own target.
func (c *CategoryAware) evict(inserting int32) {
	var victimSeg int32
	bestOver := -1 << 30
	found := false
	for cat, seg := range c.segments {
		n := len(seg)
		if n == 0 {
			continue
		}
		target := c.targets[cat]
		if target == 0 {
			target = 1
		}
		over := n - target
		if cat == inserting {
			over--
		}
		// Tie-break on the lower category id, for the same reason as
		// recomputeTargets: equal-pressure segments must yield the same
		// victim on every run.
		if over > bestOver || (over == bestOver && found && cat < victimSeg) {
			bestOver, victimSeg, found = over, cat, true
		}
	}
	if !found {
		return
	}
	seg := c.segments[victimSeg]
	var victim int32
	var ve *caEntry
	for id, e := range seg {
		if ve == nil || e.count < ve.count || (e.count == ve.count && e.lastUse < ve.lastUse) {
			victim, ve = id, e
		}
	}
	delete(seg, victim)
	delete(c.items, victim)
}

// Warm preloads the first min(capacity, len(ids)) apps at frequency 1,
// ids[0] most recently used.
func (c *CategoryAware) Warm(ids []int32) {
	n := len(ids)
	if n > c.cap {
		n = c.cap
	}
	for i := n - 1; i >= 0; i-- {
		c.Access(ids[i])
	}
}
