package cache

import (
	"fmt"
)

// CategoryAware is the extension policy §7 of the paper motivates ("new
// replacement policies should be used, taking into account the
// clustering-based user behavior"). It is a partitioned LFU: capacity is
// divided into per-category segments whose sizes track each category's
// observed traffic share, and within a segment the least-frequently-used
// app is evicted (ties broken by recency).
//
// Rationale: under APP-CLUSTERING the aggregate request stream a shared
// cache sees has no temporal category locality (per-user category runs are
// interleaved across many users) — instead the clustering effect
// concentrates requests on every category's popularity head. Frequency is
// therefore the dominant signal, and the per-category partition keeps one
// category's churn from displacing another category's stable head, which
// a single global recency list cannot guarantee.
type CategoryAware struct {
	cap        int64
	used       int64
	rebalance  int
	categoryOf func(int32) int32

	items    map[int32]*caEntry
	segments map[int32]map[int32]*caEntry
	segCost  map[int32]int64 // per-category resident cost
	seq      int64

	counts  map[int32]int64 // per-category request counts
	total   int64
	sinceRe int
	targets map[int32]int64 // per-category capacity share, in cost units

	onEvict func(int32)
}

type caEntry struct {
	cat     int32
	count   int64
	lastUse int64
	cost    int64
}

// CategoryAwareConfig configures the policy.
type CategoryAwareConfig struct {
	// Capacity is the total cost the cache holds (number of apps at unit
	// cost, bytes for the edge tier).
	Capacity int
	// CategoryOf maps app id to category id.
	CategoryOf func(int32) int32
	// RebalanceEvery is the number of requests between allocation-target
	// recomputations; 0 selects Capacity.
	RebalanceEvery int
}

// NewCategoryAware builds the policy. It panics on invalid configuration,
// mirroring the other constructors.
func NewCategoryAware(cfg CategoryAwareConfig) *CategoryAware {
	if cfg.Capacity < 1 {
		panic(fmt.Sprintf("cache: CategoryAware capacity %d", cfg.Capacity))
	}
	if cfg.CategoryOf == nil {
		panic("cache: CategoryAware needs CategoryOf")
	}
	re := cfg.RebalanceEvery
	if re <= 0 {
		re = cfg.Capacity
	}
	return &CategoryAware{
		cap:        int64(cfg.Capacity),
		rebalance:  re,
		categoryOf: cfg.CategoryOf,
		items:      map[int32]*caEntry{},
		segments:   map[int32]map[int32]*caEntry{},
		segCost:    map[int32]int64{},
		counts:     map[int32]int64{},
		targets:    map[int32]int64{},
	}
}

// Name implements Policy.
func (c *CategoryAware) Name() string { return "CategoryAware" }

// Len implements Policy.
func (c *CategoryAware) Len() int { return len(c.items) }

// Cost implements Policy.
func (c *CategoryAware) Cost() int64 { return c.used }

// Contains implements Policy.
func (c *CategoryAware) Contains(id int32) bool {
	_, ok := c.items[id]
	return ok
}

// OnEvict implements Policy.
func (c *CategoryAware) OnEvict(fn func(int32)) { c.onEvict = fn }

// Access implements Policy.
func (c *CategoryAware) Access(id int32) bool { return c.AccessCost(id, 1) }

// AccessCost implements Policy.
func (c *CategoryAware) AccessCost(id int32, cost int64) bool {
	if cost < 1 {
		cost = 1
	}
	cat := c.categoryOf(id)
	c.counts[cat]++
	c.total++
	c.seq++
	c.sinceRe++
	if c.sinceRe >= c.rebalance {
		c.recomputeTargets()
		c.sinceRe = 0
	}
	if e, ok := c.items[id]; ok {
		e.count++
		e.lastUse = c.seq
		if e.cost != cost {
			c.used += cost - e.cost
			c.segCost[e.cat] += cost - e.cost
			e.cost = cost
			c.trim(id)
		}
		return true
	}
	if cost > c.cap {
		return false
	}
	for c.used+cost > c.cap && len(c.items) > 0 {
		c.evict(cat, cost)
	}
	e := &caEntry{cat: cat, count: 1, lastUse: c.seq, cost: cost}
	c.items[id] = e
	seg := c.segments[cat]
	if seg == nil {
		seg = map[int32]*caEntry{}
		c.segments[cat] = seg
	}
	seg[id] = e
	c.segCost[cat] += cost
	c.used += cost
	return false
}

// recomputeTargets reallocates capacity proportionally to observed traffic,
// guaranteeing at least one cost unit to every category seen so far and
// giving leftover capacity to the busiest category.
func (c *CategoryAware) recomputeTargets() {
	if c.total == 0 {
		return
	}
	for cat := range c.targets {
		delete(c.targets, cat)
	}
	var assigned int64
	var maxCat int32
	var maxCount int64 = -1
	for cat, n := range c.counts {
		t := int64(float64(c.cap) * float64(n) / float64(c.total))
		if t < 1 {
			t = 1
		}
		c.targets[cat] = t
		assigned += t
		// Tie-break on the lower category id: map iteration order must
		// not decide who receives the leftover slots.
		if n > maxCount || (n == maxCount && cat < maxCat) {
			maxCount, maxCat = n, cat
		}
	}
	if rem := c.cap - assigned; rem > 0 {
		c.targets[maxCat] += rem
	}
}

// evict removes the least-frequently-used app (ties by least recent) from
// the most over-target segment; the inserting category is handicapped by
// the incoming cost so it can grow toward its own target.
func (c *CategoryAware) evict(inserting int32, insertingCost int64) {
	seg, found := c.pickSegment(inserting, insertingCost)
	if !found {
		return
	}
	var victim int32
	var ve *caEntry
	for id, e := range seg {
		if ve == nil || e.count < ve.count || (e.count == ve.count && e.lastUse < ve.lastUse) {
			victim, ve = id, e
		}
	}
	c.remove(victim, ve)
}

// pickSegment chooses the most over-target non-empty segment.
func (c *CategoryAware) pickSegment(inserting int32, insertingCost int64) (map[int32]*caEntry, bool) {
	var victimSeg int32
	var bestOver int64 = -1 << 62
	found := false
	for cat, seg := range c.segments {
		if len(seg) == 0 {
			continue
		}
		target := c.targets[cat]
		if target == 0 {
			target = 1
		}
		over := c.segCost[cat] - target
		if cat == inserting {
			over -= insertingCost
		}
		// Tie-break on the lower category id, for the same reason as
		// recomputeTargets: equal-pressure segments must yield the same
		// victim on every run.
		if over > bestOver || (over == bestOver && found && cat < victimSeg) {
			bestOver, victimSeg, found = over, cat, true
		}
	}
	if !found {
		return nil, false
	}
	return c.segments[victimSeg], true
}

func (c *CategoryAware) remove(id int32, e *caEntry) {
	delete(c.segments[e.cat], id)
	delete(c.items, id)
	c.segCost[e.cat] -= e.cost
	c.used -= e.cost
	if c.onEvict != nil {
		c.onEvict(id)
	}
}

// trim restores the capacity invariant after a resident entry's cost grew,
// sparing keep until it is the only entry left.
func (c *CategoryAware) trim(keep int32) {
	for c.used > c.cap && len(c.items) > 1 {
		if !c.evictExcept(keep) {
			break
		}
	}
	if c.used > c.cap && len(c.items) == 1 {
		if e, ok := c.items[keep]; ok { // keep alone exceeds capacity
			c.remove(keep, e)
		}
	}
}

// evictExcept evicts the best victim other than keep, scanning all
// segments by over-target pressure.
func (c *CategoryAware) evictExcept(keep int32) bool {
	var victim int32
	var ve *caEntry
	var bestOver int64 = -1 << 62
	for cat, seg := range c.segments {
		target := c.targets[cat]
		if target == 0 {
			target = 1
		}
		over := c.segCost[cat] - target
		var segVictim int32
		var segVe *caEntry
		for id, e := range seg {
			if id == keep {
				continue
			}
			if segVe == nil || e.count < segVe.count || (e.count == segVe.count && e.lastUse < segVe.lastUse) {
				segVictim, segVe = id, e
			}
		}
		if segVe == nil {
			continue
		}
		if over > bestOver || (over == bestOver && ve != nil && cat < ve.cat) {
			bestOver, victim, ve = over, segVictim, segVe
		}
	}
	if ve == nil {
		return false
	}
	c.remove(victim, ve)
	return true
}

// Warm preloads the first min(capacity, len(ids)) apps at frequency 1,
// ids[0] most recently used.
func (c *CategoryAware) Warm(ids []int32) {
	n := len(ids)
	if int64(n) > c.cap {
		n = int(c.cap)
	}
	for i := n - 1; i >= 0; i-- {
		c.Access(ids[i])
	}
}
