// Package arena provides bump-allocated, pointer-free byte storage for
// snapshot document caches. Encoded documents are appended into large
// shared []byte slabs and addressed by (offset, length) pairs of plain
// integers, so a million cached documents cost the garbage collector a
// handful of slab objects instead of millions of individually traced
// slices and strings: slabs contain no pointers, and Go's collector
// never scans the interior of a noscan object.
//
// Arenas are reference-counted by the snapshots that hold documents in
// them. A day-roll carries unchanged documents forward by copying their
// integer handles — the successor snapshot retains the predecessor's
// arena instead of re-encoding or re-compressing anything — and when
// the last snapshot referencing an arena is dropped, its full-size
// slabs recycle into a Pool for the next day's allocations. Safety does
// not hinge on the counts being perfect: slabs are ordinary GC-managed
// memory, so the cost of a lost reference is a missed reuse, never a
// dangling pointer.
package arena

import (
	"sync"
	"sync/atomic"
	"unsafe"
)

const (
	// SlabSize is the standard slab: 1 MiB. Offsets within an arena are
	// packed as slabIndex<<SlabShift | byteOffset in a uint32, capping an
	// arena at 4096 slabs (4 GiB) — far beyond one snapshot's documents.
	SlabShift = 20
	SlabSize  = 1 << SlabShift
	slabMask  = SlabSize - 1
	maxSlabs  = 1 << (32 - SlabShift)
)

// PoolStats is a point-in-time view of slab accounting.
type PoolStats struct {
	ArenasLive  int64 // arenas created and not yet fully released
	SlabsLive   int64 // standard slabs currently owned by live arenas
	SlabsPooled int64 // standard slabs parked for reuse
	SlabsMade   int64 // cumulative slabs allocated fresh from the heap
	SlabsReused int64 // cumulative slab grabs satisfied by the pool
}

// Pool recycles full-size slabs between arenas so steady-state day-rolls
// stop asking the heap (and therefore the collector) for fresh slab
// memory. Oversize slabs (documents larger than SlabSize) are never
// pooled — they go back to the GC on release.
type Pool struct {
	mu   sync.Mutex
	free [][]byte
	max  int

	arenas      atomic.Int64
	slabsLive   atomic.Int64
	slabsMade   atomic.Int64
	slabsReused atomic.Int64
}

// NewPool returns a pool retaining at most maxRetained standard slabs
// (<= 0 picks a default of 64 slabs, i.e. 64 MiB).
func NewPool(maxRetained int) *Pool {
	if maxRetained <= 0 {
		maxRetained = 64
	}
	return &Pool{max: maxRetained}
}

// Stats returns current slab accounting.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	pooled := int64(len(p.free))
	p.mu.Unlock()
	return PoolStats{
		ArenasLive:  p.arenas.Load(),
		SlabsLive:   p.slabsLive.Load(),
		SlabsPooled: pooled,
		SlabsMade:   p.slabsMade.Load(),
		SlabsReused: p.slabsReused.Load(),
	}
}

func (p *Pool) getSlab() []byte {
	p.mu.Lock()
	var s []byte
	if n := len(p.free); n > 0 {
		s = p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
	}
	p.mu.Unlock()
	if s != nil {
		p.slabsReused.Add(1)
	} else {
		p.slabsMade.Add(1)
		s = make([]byte, SlabSize)
	}
	p.slabsLive.Add(1)
	return s
}

func (p *Pool) putSlabs(slabs [][]byte) {
	var returned int64
	p.mu.Lock()
	for _, s := range slabs {
		// Only standard slabs are worth parking; an oversize slab is
		// sized for one specific document and unlikely to fit the next.
		if len(s) != SlabSize || len(p.free) >= p.max {
			continue
		}
		p.free = append(p.free, s)
	}
	p.mu.Unlock()
	for _, s := range slabs {
		if len(s) == SlabSize {
			returned++
		}
	}
	p.slabsLive.Add(-returned)
}

// Arena is one bump allocator over pooled slabs. Allocation takes the
// arena's mutex (fills are rare: once per document content-version,
// ever); reads are lock-free — the slab table is published through an
// atomic pointer with copy-on-append, so Bytes/String never synchronize
// with concurrent Alloc calls.
//
// The reference count starts at 1, owned by the snapshot the arena was
// created for. Successor snapshots that carry documents referencing the
// arena call Retain; Release recycles the slabs once the count drains.
type Arena struct {
	pool *Pool
	refs atomic.Int64

	mu      sync.Mutex
	slabs   atomic.Pointer[[][]byte]
	tailIdx int
	tailOff int

	allocated atomic.Int64
	live      atomic.Int64
}

// New returns an empty arena with one reference, drawing slabs from p.
func New(p *Pool) *Arena {
	a := &Arena{pool: p}
	a.refs.Store(1)
	empty := make([][]byte, 0, 8)
	a.slabs.Store(&empty)
	a.tailIdx = -1
	p.arenas.Add(1)
	return a
}

// appendSlab publishes a new slab table containing s; callers hold mu.
func (a *Arena) appendSlab(s []byte) int {
	cur := *a.slabs.Load()
	if len(cur) >= maxSlabs {
		panic("arena: address space exhausted (4 GiB)")
	}
	next := make([][]byte, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = s
	a.slabs.Store(&next)
	return len(cur)
}

// Alloc reserves n bytes and returns the packed offset plus the region
// to write into. The region must be fully written before the offset is
// shared with readers. n > SlabSize gets a dedicated oversize slab.
func (a *Arena) Alloc(n int) (uint32, []byte) {
	if n <= 0 {
		return 0, nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if n > SlabSize {
		idx := a.appendSlab(make([]byte, n))
		a.allocated.Add(int64(n))
		a.live.Add(int64(n))
		return uint32(idx << SlabShift), (*a.slabs.Load())[idx]
	}
	if a.tailIdx < 0 || a.tailOff+n > SlabSize {
		a.tailIdx = a.appendSlab(a.pool.getSlab())
		a.tailOff = 0
	}
	off := uint32(a.tailIdx<<SlabShift | a.tailOff)
	b := (*a.slabs.Load())[a.tailIdx][a.tailOff : a.tailOff+n : a.tailOff+n]
	a.tailOff += n
	a.allocated.Add(int64(n))
	a.live.Add(int64(n))
	return off, b
}

// Bytes returns the n bytes at packed offset off. The slice aliases the
// slab; callers must not write through it.
func (a *Arena) Bytes(off, n uint32) []byte {
	slab := (*a.slabs.Load())[off>>SlabShift]
	o := off & slabMask
	return slab[o : o+n : o+n]
}

// String returns the n bytes at off as a string without copying. The
// region is write-once (documents are immutable after fill), which is
// exactly the immutability contract string demands.
func (a *Arena) String(off, n uint32) string {
	b := a.Bytes(off, n)
	return AsString(b)
}

// AsString reinterprets b as a string without copying. Callers must
// guarantee b is never written again.
func AsString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(unsafe.SliceData(b), len(b))
}

// Retain adds a reference (a successor snapshot carrying documents that
// live in this arena).
func (a *Arena) Retain() { a.refs.Add(1) }

// Release drops one reference; the last release returns standard slabs
// to the pool and lets the GC take any oversize ones.
func (a *Arena) Release() {
	n := a.refs.Add(-1)
	if n > 0 {
		return
	}
	if n < 0 {
		panic("arena: over-released")
	}
	a.mu.Lock()
	slabs := *a.slabs.Load()
	empty := make([][]byte, 0)
	a.slabs.Store(&empty)
	a.tailIdx = -1
	a.mu.Unlock()
	a.pool.putSlabs(slabs)
	a.pool.arenas.Add(-1)
}

// AllocatedBytes is the total ever bump-allocated from this arena.
func (a *Arena) AllocatedBytes() int64 { return a.allocated.Load() }

// LiveBytes is AllocatedBytes minus everything reported dropped: an
// estimate of how much of the arena still backs reachable documents,
// used to decide when compaction pays.
func (a *Arena) LiveBytes() int64 { return a.live.Load() }

// DropBytes records that n previously allocated bytes are no longer
// referenced by any snapshot (their document changed or was discarded
// during a day-roll carry).
func (a *Arena) DropBytes(n int64) { a.live.Add(-n) }

// Slabs returns how many slabs the arena currently holds.
func (a *Arena) Slabs() int { return len(*a.slabs.Load()) }

// Refs returns the current reference count (test/diagnostic use).
func (a *Arena) Refs() int64 { return a.refs.Load() }
