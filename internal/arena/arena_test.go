package arena

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestAllocRoundTrip(t *testing.T) {
	p := NewPool(4)
	a := New(p)
	type rec struct {
		off uint32
		n   uint32
		val []byte
	}
	var recs []rec
	for i := 0; i < 1000; i++ {
		val := []byte(fmt.Sprintf("doc-%d-%s", i, bytes.Repeat([]byte{byte(i)}, i%300)))
		off, dst := a.Alloc(len(val))
		if len(dst) != len(val) {
			t.Fatalf("Alloc(%d) returned %d bytes", len(val), len(dst))
		}
		copy(dst, val)
		recs = append(recs, rec{off, uint32(len(val)), val})
	}
	for _, r := range recs {
		if got := a.Bytes(r.off, r.n); !bytes.Equal(got, r.val) {
			t.Fatalf("Bytes(%d,%d) mismatch", r.off, r.n)
		}
		if got := a.String(r.off, r.n); got != string(r.val) {
			t.Fatalf("String(%d,%d) mismatch", r.off, r.n)
		}
	}
	if a.AllocatedBytes() != a.LiveBytes() {
		t.Fatalf("allocated %d != live %d before any drop", a.AllocatedBytes(), a.LiveBytes())
	}
}

func TestAllocCrossesSlabs(t *testing.T) {
	a := New(NewPool(2))
	// Regions never straddle a slab boundary: a request that does not
	// fit the tail opens a fresh slab.
	big := SlabSize - 10
	off1, _ := a.Alloc(big)
	off2, b2 := a.Alloc(100)
	if off1>>SlabShift == off2>>SlabShift {
		t.Fatalf("second alloc should be in a new slab: off1=%#x off2=%#x", off1, off2)
	}
	if off2&slabMask != 0 {
		t.Fatalf("fresh slab should start at offset 0, got %d", off2&slabMask)
	}
	copy(b2, bytes.Repeat([]byte{7}, 100))
	if a.Slabs() != 2 {
		t.Fatalf("Slabs = %d, want 2", a.Slabs())
	}
}

func TestOversizeAlloc(t *testing.T) {
	p := NewPool(4)
	a := New(p)
	n := SlabSize + 12345
	off, dst := a.Alloc(n)
	if len(dst) != n {
		t.Fatalf("oversize Alloc returned %d bytes, want %d", len(dst), n)
	}
	dst[0], dst[n-1] = 0xAB, 0xCD
	got := a.Bytes(off, uint32(n))
	if got[0] != 0xAB || got[n-1] != 0xCD {
		t.Fatal("oversize round trip failed")
	}
	// A small alloc after an oversize one still works.
	off2, b := a.Alloc(8)
	copy(b, "12345678")
	if a.String(off2, 8) != "12345678" {
		t.Fatal("small alloc after oversize failed")
	}
	// Oversize slabs are not pooled on release.
	a.Release()
	if st := p.Stats(); st.SlabsPooled != 1 {
		// only the standard slab (from the small alloc) parks
		t.Fatalf("pooled = %d, want 1 (oversize slab must not pool)", st.SlabsPooled)
	}
}

func TestZeroAlloc(t *testing.T) {
	a := New(NewPool(1))
	if off, b := a.Alloc(0); off != 0 || b != nil {
		t.Fatalf("Alloc(0) = (%d, %v), want (0, nil)", off, b)
	}
}

func TestRefcountRecycling(t *testing.T) {
	p := NewPool(8)
	a := New(p)
	for i := 0; i < 3; i++ {
		_, b := a.Alloc(SlabSize / 2)
		copy(b, "x")
	}
	if st := p.Stats(); st.SlabsLive != 2 || st.ArenasLive != 1 {
		t.Fatalf("live stats: %+v", st)
	}
	a.Retain() // a second snapshot carries docs from this arena
	a.Release()
	if st := p.Stats(); st.SlabsLive != 2 || st.SlabsPooled != 0 {
		t.Fatalf("slabs recycled while still referenced: %+v", st)
	}
	a.Release() // last reference
	st := p.Stats()
	if st.SlabsLive != 0 || st.SlabsPooled != 2 || st.ArenasLive != 0 {
		t.Fatalf("after final release: %+v", st)
	}

	// The next arena draws from the pool instead of the heap.
	b := New(p)
	b.Alloc(100)
	if st := p.Stats(); st.SlabsReused != 1 {
		t.Fatalf("expected pooled slab reuse, got %+v", st)
	}
	b.Release()
}

func TestPoolRetentionCap(t *testing.T) {
	p := NewPool(1)
	a := New(p)
	a.Alloc(SlabSize)
	a.Alloc(SlabSize)
	a.Alloc(SlabSize)
	a.Release()
	if st := p.Stats(); st.SlabsPooled != 1 {
		t.Fatalf("pool should retain at most 1 slab, got %+v", st)
	}
	if st := p.Stats(); st.SlabsLive != 0 {
		t.Fatalf("dropped slabs still counted live: %+v", st)
	}
}

func TestDropBytesAccounting(t *testing.T) {
	a := New(NewPool(1))
	a.Alloc(1000)
	a.Alloc(500)
	a.DropBytes(1000)
	if a.LiveBytes() != 500 || a.AllocatedBytes() != 1500 {
		t.Fatalf("live=%d allocated=%d", a.LiveBytes(), a.AllocatedBytes())
	}
}

func TestConcurrentAllocAndRead(t *testing.T) {
	// Readers resolve offsets while a writer keeps appending slabs: the
	// copy-on-append table must make that race-free (run with -race).
	a := New(NewPool(4))
	off0, b := a.Alloc(16)
	copy(b, "0123456789abcdef")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if s := a.String(off0, 16); s != "0123456789abcdef" {
					t.Error("reader saw torn data")
					return
				}
			}
		}()
	}
	for i := 0; i < 2000; i++ {
		_, b := a.Alloc(4096)
		b[0] = byte(i)
	}
	close(stop)
	wg.Wait()
	a.Release()
}
