package pricing

import (
	"math"
	"testing"

	"planetapps/internal/catalog"
	"planetapps/internal/marketsim"
	"planetapps/internal/snapshot"
)

// slidemeDataset runs a small SlideMe-profile market and returns its final
// state, shared across tests via a package-level cache.
var cachedDS *Dataset
var cachedSeries *snapshot.Series

func slidemeDataset(t *testing.T) (Dataset, *snapshot.Series) {
	t.Helper()
	if cachedDS != nil {
		return *cachedDS, cachedSeries
	}
	cfg := marketsim.DefaultConfig(catalog.Profiles["slideme"])
	cfg.Days = 30
	m, err := marketsim.New(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	ds := Dataset{Catalog: m.Catalog(), Downloads: m.Downloads()}
	cachedDS, cachedSeries = &ds, s
	return ds, s
}

func TestValidate(t *testing.T) {
	if err := (Dataset{}).Validate(); err == nil {
		t.Fatal("nil catalog accepted")
	}
	ds, _ := slidemeDataset(t)
	short := Dataset{Catalog: ds.Catalog, Downloads: ds.Downloads[:1]}
	if err := short.Validate(); err == nil {
		t.Fatal("short downloads accepted")
	}
}

func TestSplitCurvesShapes(t *testing.T) {
	// Figure 11: paid apps follow a clean, steeper power law; free apps
	// are far more popular in volume.
	ds, _ := slidemeDataset(t)
	free, paid := ds.SplitCurves()
	if free.Total() <= paid.Total() {
		t.Fatalf("free volume %v not above paid volume %v", free.Total(), paid.Total())
	}
	if len(paid.Downloads) == 0 {
		t.Fatal("no paid apps")
	}
	fs := free.TrunkExponent(0.02, 0.3)
	ps := paid.TrunkExponent(0.02, 0.3)
	if ps <= fs {
		t.Fatalf("paid trunk slope %v not steeper than free %v (paper: 1.72 vs 0.85)", ps, fs)
	}
}

func TestAnalyzePrices(t *testing.T) {
	ds, _ := slidemeDataset(t)
	pb, err := AnalyzePrices(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(pb.Bins) == 0 {
		t.Fatal("no price bins")
	}
	// Figure 12: both correlations negative.
	if pb.PriceDownloadsR >= 0 {
		t.Fatalf("price-downloads correlation %v, want negative", pb.PriceDownloadsR)
	}
	if pb.PriceAppsR >= 0 {
		t.Fatalf("price-apps correlation %v, want negative", pb.PriceAppsR)
	}
	for _, b := range pb.Bins {
		if b.Apps <= 0 {
			t.Fatalf("empty bin reported: %+v", b)
		}
	}
}

func TestAnalyzePricesNoPaid(t *testing.T) {
	cfg := marketsim.DefaultConfig(catalog.Profiles["anzhi"].Scale(0.05))
	cfg.Days = 5
	m, err := marketsim.New(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	ds := Dataset{Catalog: m.Catalog(), Downloads: m.Downloads()}
	if _, err := AnalyzePrices(ds); err == nil {
		t.Fatal("free-only store accepted for price analysis")
	}
}

func TestIncomesAndCDF(t *testing.T) {
	ds, _ := slidemeDataset(t)
	incomes, err := Incomes(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(incomes) == 0 {
		t.Fatal("no paid developers")
	}
	cdf := IncomeCDF(incomes)
	// Figure 13's qualitative claims: many developers earn very little,
	// while a small elite earns orders of magnitude more.
	med := cdf.Quantile(0.5)
	top := cdf.Quantile(0.99)
	if top < 20*med+1 {
		t.Fatalf("income distribution not skewed: median %v, p99 %v", med, top)
	}
	for _, inc := range incomes {
		if inc.Income < 0 || inc.PaidApps < 1 {
			t.Fatalf("bad income record %+v", inc)
		}
	}
}

func TestIncomeAppsCorrelationWeak(t *testing.T) {
	// Figure 14: quality over quantity — income is essentially
	// uncorrelated with portfolio size (paper: r = 0.008).
	ds, _ := slidemeDataset(t)
	incomes, err := Incomes(ds)
	if err != nil {
		t.Fatal(err)
	}
	r := IncomeAppsCorrelation(incomes)
	if math.Abs(r) > 0.4 {
		t.Fatalf("income-apps correlation %v, want weak", r)
	}
}

func TestRevenueByCategory(t *testing.T) {
	ds, _ := slidemeDataset(t)
	shares, err := RevenueByCategory(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(shares) == 0 {
		t.Fatal("no category shares")
	}
	var revSum, appSum float64
	for _, s := range shares {
		revSum += s.RevenuePct
		appSum += s.AppsPct
	}
	if math.Abs(revSum-100) > 1e-6 || math.Abs(appSum-100) > 1e-6 {
		t.Fatalf("shares do not sum to 100: rev %v apps %v", revSum, appSum)
	}
	// Figure 15: revenue concentrates in a few categories.
	top4 := 0.0
	for i := 0; i < 4 && i < len(shares); i++ {
		top4 += shares[i].RevenuePct
	}
	if top4 < 50 {
		t.Fatalf("top-4 categories hold %v%% of revenue, want concentration", top4)
	}
	if shares[0].RevenuePct < shares[len(shares)-1].RevenuePct {
		t.Fatal("shares not sorted by revenue")
	}
}

func TestPortfolioCDFs(t *testing.T) {
	ds, _ := slidemeDataset(t)
	freeApps, paidApps, freeCats, paidCats, err := PortfolioCDFs(ds)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 16a: most developers ship one app.
	if freeApps.At(1) < 0.4 || paidApps.At(1) < 0.4 {
		t.Fatalf("single-app fractions: free %v paid %v, want majorities",
			freeApps.At(1), paidApps.At(1))
	}
	// Figure 16b: 99% of developers focus on <= 5 categories.
	if freeCats.At(5) < 0.95 || paidCats.At(5) < 0.95 {
		t.Fatalf("5-category fractions: free %v paid %v", freeCats.At(5), paidCats.At(5))
	}
}

func TestPricingMix(t *testing.T) {
	ds, _ := slidemeDataset(t)
	onlyFree, onlyPaid, both, err := PricingMix(ds)
	if err != nil {
		t.Fatal(err)
	}
	total := onlyFree + onlyPaid + both
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("mix sums to %v", total)
	}
	// §6.3: most developers pick a single strategy, with free dominating.
	if onlyFree < onlyPaid || onlyFree < 0.4 {
		t.Fatalf("mix = %.2f/%.2f/%.2f, want free-dominated", onlyFree, onlyPaid, both)
	}
}

func TestBreakEvenAdIncome(t *testing.T) {
	ds, _ := slidemeDataset(t)
	v, err := BreakEvenAdIncome(ds)
	if err != nil {
		t.Fatal(err)
	}
	// A small per-download amount: the paper reports $0.21; our synthetic
	// store should land within an order of magnitude.
	if v <= 0 || v > 10 {
		t.Fatalf("break-even ad income = %v, want small positive dollars", v)
	}
}

func TestBreakEvenByTierOrdering(t *testing.T) {
	// Figure 17: popular free apps need much less ad income per download
	// than unpopular ones.
	ds, _ := slidemeDataset(t)
	tiers, err := BreakEvenByTier(ds)
	if err != nil {
		t.Fatal(err)
	}
	if !(tiers[TierPopular] < tiers[TierMedium] && tiers[TierMedium] < tiers[TierUnpopular]) {
		t.Fatalf("tier ordering wrong: %v", tiers)
	}
	if tiers[TierUnpopular]/tiers[TierPopular] < 3 {
		t.Fatalf("popular/unpopular spread too small: %v", tiers)
	}
}

func TestBreakEvenByCategorySpread(t *testing.T) {
	// Figure 18: break-even income varies widely across categories.
	ds, _ := slidemeDataset(t)
	byCat, err := BreakEvenByCategory(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(byCat) < 3 {
		t.Fatalf("only %d categories supported the analysis", len(byCat))
	}
	lo, hi := math.Inf(1), 0.0
	for _, v := range byCat {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi/lo < 5 {
		t.Fatalf("category spread %vx too narrow (lo %v, hi %v)", hi/lo, lo, hi)
	}
}

func TestBreakEvenOverTimeDeclines(t *testing.T) {
	// Figure 17: the break-even income drops over time because free-app
	// downloads accumulate faster than paid.
	ds, series := slidemeDataset(t)
	days, overall, byTier, err := BreakEvenOverTime(ds.Catalog, series)
	if err != nil {
		t.Fatal(err)
	}
	if len(days) < 5 {
		t.Fatalf("only %d usable days", len(days))
	}
	if len(byTier) != len(overall) {
		t.Fatal("mismatched outputs")
	}
	first, last := overall[0], overall[len(overall)-1]
	if last > first*1.5 {
		t.Fatalf("break-even income grew substantially over time: %v -> %v", first, last)
	}
}

func TestBreakEvenOverTimeEmptySeries(t *testing.T) {
	ds, _ := slidemeDataset(t)
	if _, _, _, err := BreakEvenOverTime(ds.Catalog, nil); err == nil {
		t.Fatal("nil series accepted")
	}
}

func TestPriceDownloadsTauNegative(t *testing.T) {
	// Kendall's tau is the robust companion to the noisy Pearson on the
	// heavy-tailed downloads; the price penalty must show in the ranks.
	ds, _ := slidemeDataset(t)
	pb, err := AnalyzePrices(ds)
	if err != nil {
		t.Fatal(err)
	}
	if pb.PriceDownloadsTau >= 0 {
		t.Fatalf("price-downloads tau = %v, want negative", pb.PriceDownloadsTau)
	}
}
