package pricing

import (
	"fmt"
	"sort"

	"planetapps/internal/catalog"
	"planetapps/internal/snapshot"
)

// BreakEvenAdIncome implements the paper's Eq. 7: the per-download ad
// income a free app must earn to match the income of an average paid app,
//
//	AdIncome = (sum over paid apps of downloads*price / Npaid)
//	         / (sum over free-with-ads apps of downloads / Nfree)
//
// Only free apps carrying ad libraries enter the denominator (the paper
// considers "only free apps with ads in this analysis"). It returns an
// error when the dataset lacks paid apps or ad-carrying free apps.
func BreakEvenAdIncome(d Dataset) (float64, error) {
	if err := d.Validate(); err != nil {
		return 0, err
	}
	return breakEven(d, func(*catalog.App) bool { return true })
}

// breakEven computes Eq. 7 over the apps selected by keep.
func breakEven(d Dataset, keep func(*catalog.App) bool) (float64, error) {
	var paidRevenue, freeDownloads float64
	var nPaid, nFree int
	for i := range d.Catalog.Apps {
		a := &d.Catalog.Apps[i]
		if !keep(a) {
			continue
		}
		if a.Pricing == catalog.Paid {
			paidRevenue += float64(d.Downloads[i]) * a.Price
			nPaid++
		} else if a.HasAds {
			freeDownloads += float64(d.Downloads[i])
			nFree++
		}
	}
	if nPaid == 0 {
		return 0, fmt.Errorf("pricing: no paid apps for break-even analysis")
	}
	if nFree == 0 || freeDownloads == 0 {
		return 0, fmt.Errorf("pricing: no ad-carrying free apps with downloads")
	}
	return (paidRevenue / float64(nPaid)) / (freeDownloads / float64(nFree)), nil
}

// PopularityTier partitions free apps by download rank, mirroring
// Figure 17: the top 20% most downloaded, the middle 50%, and the bottom
// 30%.
type PopularityTier int

// Tiers in Figure 17's order.
const (
	TierPopular PopularityTier = iota
	TierMedium
	TierUnpopular
)

func (t PopularityTier) String() string {
	switch t {
	case TierPopular:
		return "most popular (top 20%)"
	case TierMedium:
		return "medium (next 50%)"
	case TierUnpopular:
		return "unpopular (bottom 30%)"
	default:
		return fmt.Sprintf("tier(%d)", int(t))
	}
}

// BreakEvenByTier computes the break-even ad income for each popularity
// tier of ad-carrying free apps, against the average paid app (Figure 17's
// three curves at a single point in time).
func BreakEvenByTier(d Dataset) (map[PopularityTier]float64, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	// Rank ad-carrying free apps by downloads.
	type fa struct {
		id catalog.AppID
		dl int64
	}
	var frees []fa
	for i := range d.Catalog.Apps {
		a := &d.Catalog.Apps[i]
		if a.Pricing == catalog.Free && a.HasAds {
			frees = append(frees, fa{a.ID, d.Downloads[i]})
		}
	}
	if len(frees) == 0 {
		return nil, fmt.Errorf("pricing: no ad-carrying free apps")
	}
	sort.Slice(frees, func(i, j int) bool { return frees[i].dl > frees[j].dl })
	tierOf := make(map[catalog.AppID]PopularityTier, len(frees))
	n := len(frees)
	for idx, f := range frees {
		switch {
		case idx < n*20/100:
			tierOf[f.id] = TierPopular
		case idx < n*70/100:
			tierOf[f.id] = TierMedium
		default:
			tierOf[f.id] = TierUnpopular
		}
	}
	out := map[PopularityTier]float64{}
	for _, tier := range []PopularityTier{TierPopular, TierMedium, TierUnpopular} {
		tier := tier
		v, err := breakEven(d, func(a *catalog.App) bool {
			if a.Pricing == catalog.Paid {
				return true
			}
			t, ok := tierOf[a.ID]
			return ok && t == tier
		})
		if err != nil {
			return nil, err
		}
		out[tier] = v
	}
	return out, nil
}

// BreakEvenByCategory computes the break-even ad income within each
// category, comparing ad-carrying free apps to paid apps of the same
// category (Figure 18). Categories lacking either side are skipped.
func BreakEvenByCategory(d Dataset) (map[catalog.CategoryID]float64, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	out := map[catalog.CategoryID]float64{}
	for c := range d.Catalog.Categories {
		cid := catalog.CategoryID(c)
		v, err := breakEven(d, func(a *catalog.App) bool { return a.Category == cid })
		if err != nil {
			continue
		}
		out[cid] = v
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("pricing: no category had both paid and ad-carrying free apps")
	}
	return out, nil
}

// BreakEvenOverTime evaluates the overall and per-tier break-even income on
// every day of a snapshot series (Figure 17's time axis). It returns one
// value per day; days where the computation is undefined carry NaN-free
// zero values and ok=false in the mask.
func BreakEvenOverTime(cat *catalog.Catalog, s *snapshot.Series) (days []int, overall []float64, byTier []map[PopularityTier]float64, err error) {
	if s == nil || len(s.Days) == 0 {
		return nil, nil, nil, fmt.Errorf("pricing: empty series")
	}
	for _, day := range s.Days {
		d := Dataset{Catalog: cat, Downloads: day.CumulativeDownloads}
		// The catalog holds the final population; earlier days cover a
		// prefix of apps. Restrict to the day's apps via a padded copy.
		if len(d.Downloads) < cat.NumApps() {
			padded := make([]int64, cat.NumApps())
			copy(padded, d.Downloads)
			d.Downloads = padded
		}
		v, verr := BreakEvenAdIncome(d)
		if verr != nil {
			continue
		}
		tiers, terr := BreakEvenByTier(d)
		if terr != nil {
			continue
		}
		days = append(days, day.Index)
		overall = append(overall, v)
		byTier = append(byTier, tiers)
	}
	if len(days) == 0 {
		return nil, nil, nil, fmt.Errorf("pricing: no day supported the break-even analysis")
	}
	return days, overall, byTier, nil
}
