// Package pricing implements the paper's §6 analysis of app pricing and
// developer income over a store catalog with measured downloads: free-vs-
// paid popularity curves, price/popularity correlation, developer income
// distribution, per-category revenue shares, and the break-even ad income
// comparison between the two revenue strategies (Eq. 7).
package pricing

import (
	"fmt"
	"sort"

	"planetapps/internal/catalog"
	"planetapps/internal/dist"
	"planetapps/internal/stats"
)

// Dataset couples a catalog with per-app cumulative downloads (typically a
// market simulation's final day or a crawled snapshot).
type Dataset struct {
	Catalog   *catalog.Catalog
	Downloads []int64
}

// Validate checks the downloads slice covers the catalog.
func (d Dataset) Validate() error {
	if d.Catalog == nil {
		return fmt.Errorf("pricing: nil catalog")
	}
	if len(d.Downloads) < d.Catalog.NumApps() {
		return fmt.Errorf("pricing: %d download counts for %d apps",
			len(d.Downloads), d.Catalog.NumApps())
	}
	return nil
}

// SplitCurves returns the separate rank-downloads curves of free and paid
// apps (Figure 11).
func (d Dataset) SplitCurves() (free, paid dist.RankCurve) {
	var fv, pv []float64
	for i := range d.Catalog.Apps {
		v := float64(d.Downloads[i])
		if d.Catalog.Apps[i].Pricing == catalog.Paid {
			pv = append(pv, v)
		} else {
			fv = append(fv, v)
		}
	}
	return dist.NewRankCurve(fv), dist.NewRankCurve(pv)
}

// PriceBins groups paid apps into $1-wide price bins and reports, per bin,
// the number of apps and the mean downloads (Figure 12's two panels).
type PriceBins struct {
	// Bins[i] covers prices [i, i+1).
	Bins []PriceBin
	// PriceDownloadsR is the Pearson correlation between per-app price and
	// downloads (paper: -0.229).
	PriceDownloadsR float64
	// PriceDownloadsTau is Kendall's tau-b over the same pairs — robust to
	// the heavy download tail that makes the Pearson coefficient noisy at
	// simulation scale.
	PriceDownloadsTau float64
	// PriceAppsR is the Pearson correlation between bin price and bin app
	// count (paper: -0.240).
	PriceAppsR float64
}

// PriceBin is one $1 price bucket.
type PriceBin struct {
	LowPrice      float64
	Apps          int
	MeanDownloads float64
}

// AnalyzePrices computes Figure 12 from the dataset's paid apps.
func AnalyzePrices(d Dataset) (PriceBins, error) {
	if err := d.Validate(); err != nil {
		return PriceBins{}, err
	}
	const maxPrice = 50
	h := stats.NewHistogram(0, 1, maxPrice)
	var prices, downloads []float64
	for i := range d.Catalog.Apps {
		a := &d.Catalog.Apps[i]
		if a.Pricing != catalog.Paid {
			continue
		}
		dl := float64(d.Downloads[i])
		h.Add(a.Price, dl)
		prices = append(prices, a.Price)
		downloads = append(downloads, dl)
	}
	if len(prices) == 0 {
		return PriceBins{}, fmt.Errorf("pricing: no paid apps in dataset")
	}
	pb := PriceBins{
		PriceDownloadsR:   stats.Pearson(prices, downloads),
		PriceDownloadsTau: stats.KendallTau(prices, downloads),
	}
	var binPrices, binCounts []float64
	for i, n := range h.Counts {
		if n == 0 {
			continue
		}
		pb.Bins = append(pb.Bins, PriceBin{
			LowPrice:      float64(i),
			Apps:          n,
			MeanDownloads: h.MeanIn(i),
		})
		binPrices = append(binPrices, float64(i))
		binCounts = append(binCounts, float64(n))
	}
	pb.PriceAppsR = stats.Pearson(binPrices, binCounts)
	return pb, nil
}

// DeveloperIncome is one developer's paid-app earnings.
type DeveloperIncome struct {
	Dev catalog.DevID
	// PaidApps is the developer's paid-app count.
	PaidApps int
	// Income is total downloads × price over the developer's paid apps.
	// The paper credits developers the full price (SlideMe's 5% commission
	// is noted but ignored "for simplicity").
	Income float64
}

// Incomes returns per-developer income for developers with at least one
// paid app, sorted by developer ID.
func Incomes(d Dataset) ([]DeveloperIncome, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	byDev := map[catalog.DevID]*DeveloperIncome{}
	for i := range d.Catalog.Apps {
		a := &d.Catalog.Apps[i]
		if a.Pricing != catalog.Paid {
			continue
		}
		di := byDev[a.Dev]
		if di == nil {
			di = &DeveloperIncome{Dev: a.Dev}
			byDev[a.Dev] = di
		}
		di.PaidApps++
		di.Income += float64(d.Downloads[i]) * a.Price
	}
	out := make([]DeveloperIncome, 0, len(byDev))
	for _, di := range byDev {
		out = append(out, *di)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Dev < out[j].Dev })
	return out, nil
}

// IncomeCDF returns the empirical CDF of developer incomes (Figure 13).
func IncomeCDF(incomes []DeveloperIncome) *stats.ECDF {
	vals := make([]float64, len(incomes))
	for i, d := range incomes {
		vals[i] = d.Income
	}
	return stats.NewECDF(vals)
}

// IncomeAppsCorrelation returns the Pearson correlation between a
// developer's paid-app count and income (Figure 14; paper: 0.008).
func IncomeAppsCorrelation(incomes []DeveloperIncome) float64 {
	var apps, inc []float64
	for _, d := range incomes {
		apps = append(apps, float64(d.PaidApps))
		inc = append(inc, d.Income)
	}
	return stats.Pearson(apps, inc)
}

// CategoryShare is one Figure 15 bar group: a category's percentage of
// total paid revenue, of paid apps, and of developers active in it.
type CategoryShare struct {
	Category   catalog.CategoryID
	Name       string
	RevenuePct float64
	AppsPct    float64
	DevsPct    float64
}

// RevenueByCategory computes per-category revenue/apps/developer shares
// over paid apps, sorted by descending revenue share (Figure 15).
func RevenueByCategory(d Dataset) ([]CategoryShare, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	nCat := len(d.Catalog.Categories)
	revenue := make([]float64, nCat)
	apps := make([]float64, nCat)
	devs := make([]map[catalog.DevID]struct{}, nCat)
	var totalRev, totalApps float64
	totalDevs := map[catalog.DevID]struct{}{}
	for i := range d.Catalog.Apps {
		a := &d.Catalog.Apps[i]
		if a.Pricing != catalog.Paid {
			continue
		}
		c := int(a.Category)
		rev := float64(d.Downloads[i]) * a.Price
		revenue[c] += rev
		totalRev += rev
		apps[c]++
		totalApps++
		if devs[c] == nil {
			devs[c] = map[catalog.DevID]struct{}{}
		}
		devs[c][a.Dev] = struct{}{}
		totalDevs[a.Dev] = struct{}{}
	}
	if totalApps == 0 {
		return nil, fmt.Errorf("pricing: no paid apps in dataset")
	}
	out := make([]CategoryShare, 0, nCat)
	for c := 0; c < nCat; c++ {
		if apps[c] == 0 {
			continue
		}
		cs := CategoryShare{
			Category: catalog.CategoryID(c),
			Name:     d.Catalog.Categories[c].Name,
			AppsPct:  100 * apps[c] / totalApps,
		}
		if totalRev > 0 {
			cs.RevenuePct = 100 * revenue[c] / totalRev
		}
		if len(totalDevs) > 0 {
			cs.DevsPct = 100 * float64(len(devs[c])) / float64(len(totalDevs))
		}
		out = append(out, cs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].RevenuePct > out[j].RevenuePct })
	return out, nil
}

// PortfolioCDFs returns the per-developer app-count distributions for free
// and paid apps (Figure 16a) and the per-developer unique-category counts
// (Figure 16b).
func PortfolioCDFs(d Dataset) (freeApps, paidApps, freeCats, paidCats *stats.ECDF, err error) {
	if err := d.Validate(); err != nil {
		return nil, nil, nil, nil, err
	}
	type agg struct {
		free, paid int
		freeCats   map[catalog.CategoryID]struct{}
		paidCats   map[catalog.CategoryID]struct{}
	}
	byDev := map[catalog.DevID]*agg{}
	for i := range d.Catalog.Apps {
		a := &d.Catalog.Apps[i]
		g := byDev[a.Dev]
		if g == nil {
			g = &agg{freeCats: map[catalog.CategoryID]struct{}{}, paidCats: map[catalog.CategoryID]struct{}{}}
			byDev[a.Dev] = g
		}
		if a.Pricing == catalog.Paid {
			g.paid++
			g.paidCats[a.Category] = struct{}{}
		} else {
			g.free++
			g.freeCats[a.Category] = struct{}{}
		}
	}
	var fa, pa, fc, pc []float64
	for _, g := range byDev {
		if g.free > 0 {
			fa = append(fa, float64(g.free))
			fc = append(fc, float64(len(g.freeCats)))
		}
		if g.paid > 0 {
			pa = append(pa, float64(g.paid))
			pc = append(pc, float64(len(g.paidCats)))
		}
	}
	return stats.NewECDF(fa), stats.NewECDF(pa), stats.NewECDF(fc), stats.NewECDF(pc), nil
}

// PricingMix reports the fractions of developers offering only free apps,
// only paid apps, or both (§6.3; paper: 75% / 15% / 10%).
func PricingMix(d Dataset) (onlyFree, onlyPaid, both float64, err error) {
	if err := d.Validate(); err != nil {
		return 0, 0, 0, err
	}
	type mix struct{ free, paid bool }
	byDev := map[catalog.DevID]*mix{}
	for i := range d.Catalog.Apps {
		a := &d.Catalog.Apps[i]
		m := byDev[a.Dev]
		if m == nil {
			m = &mix{}
			byDev[a.Dev] = m
		}
		if a.Pricing == catalog.Paid {
			m.paid = true
		} else {
			m.free = true
		}
	}
	if len(byDev) == 0 {
		return 0, 0, 0, fmt.Errorf("pricing: no developers")
	}
	n := float64(len(byDev))
	for _, m := range byDev {
		switch {
		case m.free && m.paid:
			both++
		case m.paid:
			onlyPaid++
		default:
			onlyFree++
		}
	}
	return onlyFree / n, onlyPaid / n, both / n, nil
}
