package catalog

import (
	"fmt"
	"math"
	"sort"
	"time"

	"planetapps/internal/dist"
	"planetapps/internal/rng"
)

// CategoryNames are the SlideMe category labels the paper's Figures 15 and
// 18 use. Stores with more categories (Anzhi has 34) reuse these plus
// numbered extras.
var CategoryNames = []string{
	"music", "fun/games", "utilities", "productivity", "entertainment",
	"religion", "travel", "educational", "social", "communications",
	"e-books", "lifestyle", "wallpapers", "health/fitness", "other",
	"collaboration", "location/maps", "home/hobby", "enterprise", "developer",
}

// Profile describes one store's catalog population. The defaults in
// Profiles are calibrated to Table 1 and Section 6 of the paper, scaled
// down so every experiment runs on a laptop.
type Profile struct {
	// Name of the store profile (e.g. "anzhi").
	Name string
	// Apps is the catalog size at the start of the measurement period.
	Apps int
	// Categories is the number of app categories (clusters).
	Categories int
	// PaidFraction is the fraction of paid apps (0 for the Chinese stores;
	// 0.253 for SlideMe).
	PaidFraction float64
	// AdFraction is the probability a free app embeds an ad library
	// (the paper measured 0.67-0.677 on SlideMe).
	AdFraction float64
	// NewAppsPerDay is the mean daily arrival rate of new apps.
	NewAppsPerDay float64
	// Users is the simulated user population size.
	Users int
	// DownloadsPerUser is the mean number of downloads per user over the
	// measurement period.
	DownloadsPerUser float64
	// ZipfGlobal is the exponent of the store-wide app appeal
	// distribution. It is calibrated to the measured trunk slopes of the
	// paper's Figure 3 (anzhi 1.42, appchina 1.51, 1mobile 0.92, slideme
	// 0.90) — the slopes the generated curves should exhibit — not to the
	// zr values the paper's generative model fits recover.
	ZipfGlobal float64
	// ZipfCluster is the within-category concentration exponent (the
	// paper's fitted zc values, 1.4-1.5).
	ZipfCluster float64
	// ClusterP is the probability a download is clustering-driven (p).
	ClusterP float64
	// CategorySkew shapes how unevenly apps spread over categories; 0 is
	// even, larger is more skewed. Figure 5(d) shows no dominant category
	// (max ~12% of downloads), so the skew is mild.
	CategorySkew float64
	// PriceLogMu/PriceLogSigma parameterize the lognormal paid-app price
	// distribution (the paper's average paid price is $3.9, negatively
	// correlated with popularity).
	PriceLogMu    float64
	PriceLogSigma float64
	// MeanUpdateRate is the mean per-day app update probability. Figure 4:
	// >80% of apps see no update in two months.
	MeanUpdateRate float64
}

// Profiles holds laptop-scale calibrations of the four monitored stores.
// Apps/users/downloads are scaled ~10x down from Table 1; distributional
// parameters are taken from the paper's fitted values.
var Profiles = map[string]Profile{
	"anzhi": {
		Name: "anzhi", Apps: 6000, Categories: 34, PaidFraction: 0,
		AdFraction: 0.67, NewAppsPerDay: 3, Users: 120000, DownloadsPerUser: 12,
		ZipfGlobal: 1.4, ZipfCluster: 1.4, ClusterP: 0.9, CategorySkew: 0.35,
		PriceLogMu: 1.0, PriceLogSigma: 0.8, MeanUpdateRate: 0.003,
	},
	"appchina": {
		Name: "appchina", Apps: 5500, Categories: 30, PaidFraction: 0,
		AdFraction: 0.67, NewAppsPerDay: 34, Users: 110000, DownloadsPerUser: 14,
		ZipfGlobal: 1.5, ZipfCluster: 1.2, ClusterP: 0.9, CategorySkew: 0.35,
		PriceLogMu: 1.0, PriceLogSigma: 0.8, MeanUpdateRate: 0.003,
	},
	"1mobile": {
		Name: "1mobile", Apps: 15000, Categories: 30, PaidFraction: 0,
		AdFraction: 0.67, NewAppsPerDay: 21, Users: 50000, DownloadsPerUser: 8,
		ZipfGlobal: 0.95, ZipfCluster: 1.4, ClusterP: 0.95, CategorySkew: 0.35,
		PriceLogMu: 1.0, PriceLogSigma: 0.8, MeanUpdateRate: 0.003,
	},
	"slideme": {
		Name: "slideme", Apps: 2200, Categories: 20, PaidFraction: 0.253,
		AdFraction: 0.67, NewAppsPerDay: 3.5, Users: 60000, DownloadsPerUser: 6,
		ZipfGlobal: 0.9, ZipfCluster: 1.2, ClusterP: 0.9, CategorySkew: 0.6,
		PriceLogMu: 1.05, PriceLogSigma: 0.75, MeanUpdateRate: 0.003,
	},
}

// ProfileNames returns the store profile names in a stable order.
func ProfileNames() []string {
	names := make([]string, 0, len(Profiles))
	for n := range Profiles {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Scale returns a copy of p with the population sizes multiplied by f
// (distribution parameters untouched). Useful for quick tests (f < 1) or
// paper-scale runs (f > 1). DownloadsPerUser is also scaled: scaling apps
// shrinks categories, so per-user download depth must shrink with them or
// users exhaust their categories and the popularity shapes collapse.
func (p Profile) Scale(f float64) Profile {
	q := p
	q.Apps = max(1, int(float64(p.Apps)*f))
	q.Users = max(1, int(float64(p.Users)*f))
	q.NewAppsPerDay = p.NewAppsPerDay * f
	q.DownloadsPerUser = p.DownloadsPerUser * f
	// Keep at least two downloads per user: below that the clustering
	// dynamics (which need a second download) vanish entirely.
	if q.DownloadsPerUser < 2 {
		q.DownloadsPerUser = 2
	}
	return q
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Generate builds a synthetic catalog for the profile, deterministically
// from the seed. The same (profile, seed) pair always yields the same
// catalog.
func Generate(p Profile, seed uint64) (*Catalog, error) {
	if p.Apps < 1 {
		return nil, fmt.Errorf("catalog: profile %q has no apps", p.Name)
	}
	if p.Categories < 1 {
		return nil, fmt.Errorf("catalog: profile %q has no categories", p.Name)
	}
	if p.PaidFraction < 0 || p.PaidFraction > 1 {
		return nil, fmt.Errorf("catalog: paid fraction %v out of range", p.PaidFraction)
	}
	r := rng.New(seed)

	c := &Catalog{
		Name:  p.Name,
		Start: time.Date(2012, time.March, 1, 0, 0, 0, 0, time.UTC),
	}

	// Categories with mildly skewed sizes: weight_i = (i+1)^-skew, shuffled
	// so the largest category is not always category 0.
	weights := make([]float64, p.Categories)
	for i := range weights {
		weights[i] = 1 / powSkew(float64(i+1), p.CategorySkew)
	}
	r.Shuffle(len(weights), func(i, j int) { weights[i], weights[j] = weights[j], weights[i] })
	catDist := dist.MustCategorical(weights)
	c.Categories = make([]Category, p.Categories)
	for i := range c.Categories {
		c.Categories[i] = Category{ID: CategoryID(i), Name: categoryName(i)}
	}

	// Developer portfolio sizes are Pareto: most developers ship one app, a
	// couple of accounts ship hundreds (Figure 16a; the paper observes 60%
	// of free-app and 70% of paid-app developers with a single app).
	portfolio := dist.Pareto{Xm: 1, Alpha: 1.35}
	var devs []Developer
	assigned := 0
	for assigned < p.Apps {
		n := dist.BoundedParetoInt(r, portfolio, 1, p.Apps/4+1)
		if assigned+n > p.Apps {
			n = p.Apps - assigned
		}
		devs = append(devs, Developer{ID: DevID(len(devs)), Name: fmt.Sprintf("dev-%04d", len(devs))})
		assigned += n
		devs[len(devs)-1].Apps = make([]AppID, 0, n)
		for k := 0; k < n; k++ {
			devs[len(devs)-1].Apps = append(devs[len(devs)-1].Apps, AppID(assigned-n+k))
		}
	}
	c.Developers = devs

	// Developers focus on one or few categories (Figure 16b): each account
	// gets a small home set of categories; its apps land there with high
	// probability.
	price := dist.LogNormal{Mu: p.PriceLogMu, Sigma: p.PriceLogSigma}
	size := dist.LogNormal{Mu: 1.1, Sigma: 0.6} // mean ~3.5 MB
	c.Apps = make([]App, p.Apps)
	for di := range devs {
		home := []CategoryID{CategoryID(catDist.Sample(r))}
		// 25% of developers use a second home category, 5% a third.
		if r.Bool(0.25) {
			home = append(home, CategoryID(catDist.Sample(r)))
		}
		if r.Bool(0.05) {
			home = append(home, CategoryID(catDist.Sample(r)))
		}
		for _, id := range devs[di].Apps {
			a := &c.Apps[int(id)]
			a.ID = id
			a.Dev = DevID(di)
			if r.Bool(0.9) {
				a.Category = home[r.Intn(len(home))]
			} else {
				a.Category = CategoryID(catDist.Sample(r))
			}
			if r.Bool(p.PaidFraction) {
				a.Pricing = Paid
				a.Price = clampPrice(price.Sample(r))
			} else {
				a.Pricing = Free
				a.HasAds = r.Bool(p.AdFraction)
			}
			a.SizeMB = size.Sample(r)
			a.AddedDay = -r.Intn(720) // existing catalog accumulated over ~2 years
			a.UpdateRate = updateRate(r, p.MeanUpdateRate)
			a.Versions = 1
			// Quality is uniform; ranking skew comes from the Zipf appeal
			// distributions the workload models impose, not from quality
			// itself, which only orders apps within their category.
			a.Quality = r.Float64()
			if a.Quality == 0 {
				a.Quality = 1e-6
			}
		}
	}

	rebuildIndexes(c)
	return c, nil
}

// rebuildIndexes recomputes the per-category and per-developer membership
// lists from the per-app fields, ordering category members by descending
// quality so Category.Apps[0] is the within-category rank-1 app.
func rebuildIndexes(c *Catalog) {
	for i := range c.Categories {
		c.Categories[i].Apps = c.Categories[i].Apps[:0]
	}
	for i := range c.Developers {
		c.Developers[i].Apps = c.Developers[i].Apps[:0]
	}
	for i := range c.Apps {
		a := &c.Apps[i]
		c.Categories[a.Category].Apps = append(c.Categories[a.Category].Apps, a.ID)
		c.Developers[a.Dev].Apps = append(c.Developers[a.Dev].Apps, a.ID)
	}
	for i := range c.Categories {
		apps := c.Categories[i].Apps
		sort.Slice(apps, func(x, y int) bool {
			ax, ay := &c.Apps[int(apps[x])], &c.Apps[int(apps[y])]
			if ax.Quality != ay.Quality {
				return ax.Quality > ay.Quality
			}
			return ax.ID < ay.ID
		})
	}
}

// AddApp appends a newly published app (used by the market simulator for
// daily arrivals) and updates the membership indexes. The caller fills the
// returned app's fields except ID, which is assigned here.
func (c *Catalog) AddApp(a App) AppID {
	a.ID = AppID(len(c.Apps))
	if a.Versions == 0 {
		a.Versions = 1
	}
	c.Apps = append(c.Apps, a)
	c.Categories[a.Category].Apps = insertByQuality(c, c.Categories[a.Category].Apps, a.ID)
	for int(a.Dev) >= len(c.Developers) {
		c.Developers = append(c.Developers, Developer{ID: DevID(len(c.Developers)), Name: fmt.Sprintf("dev-%04d", len(c.Developers))})
	}
	d := &c.Developers[int(a.Dev)]
	d.Apps = append(d.Apps, a.ID)
	return a.ID
}

func insertByQuality(c *Catalog, apps []AppID, id AppID) []AppID {
	q := c.Apps[int(id)].Quality
	pos := sort.Search(len(apps), func(i int) bool {
		return c.Apps[int(apps[i])].Quality < q
	})
	apps = append(apps, 0)
	copy(apps[pos+1:], apps[pos:])
	apps[pos] = id
	return apps
}

func categoryName(i int) string {
	if i < len(CategoryNames) {
		return CategoryNames[i]
	}
	return fmt.Sprintf("category-%02d", i)
}

func clampPrice(v float64) float64 {
	if v < 0.5 {
		v = 0.5
	}
	if v > 50 {
		v = 50
	}
	// Round to cents so income arithmetic is stable.
	return float64(int(v*100+0.5)) / 100
}

// updateRate draws a per-day update probability: most apps essentially
// never update; a small minority update frequently.
func updateRate(r *rng.RNG, mean float64) float64 {
	// 80% of apps update at ~1/10 the mean rate; 20% carry the rest.
	if r.Bool(0.8) {
		return mean * 0.125
	}
	return mean * 4.5
}

func powSkew(x, skew float64) float64 {
	if skew == 0 {
		return 1
	}
	return math.Pow(x, skew)
}
