package catalog

import (
	"math"
	"testing"
	"testing/quick"
)

func testProfile() Profile {
	p := Profiles["anzhi"]
	return p.Scale(0.1) // 600 apps: fast tests
}

func TestGenerateValid(t *testing.T) {
	for _, name := range ProfileNames() {
		p := Profiles[name].Scale(0.1)
		c, err := Generate(p, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if c.NumApps() != p.Apps {
			t.Fatalf("%s: got %d apps, want %d", name, c.NumApps(), p.Apps)
		}
		if len(c.Categories) != p.Categories {
			t.Fatalf("%s: got %d categories, want %d", name, len(c.Categories), p.Categories)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := testProfile()
	a, err := Generate(p, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Apps) != len(b.Apps) {
		t.Fatal("sizes differ")
	}
	for i := range a.Apps {
		if a.Apps[i] != b.Apps[i] {
			t.Fatalf("app %d differs between same-seed runs:\n%+v\n%+v", i, a.Apps[i], b.Apps[i])
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	p := testProfile()
	a, _ := Generate(p, 1)
	b, _ := Generate(p, 2)
	same := 0
	for i := range a.Apps {
		if a.Apps[i].Category == b.Apps[i].Category {
			same++
		}
	}
	if same == len(a.Apps) {
		t.Fatal("different seeds produced identical category assignment")
	}
}

func TestPaidFraction(t *testing.T) {
	p := Profiles["slideme"] // 25.3% paid
	c, err := Generate(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	free, paid := c.FreePaidCounts()
	frac := float64(paid) / float64(free+paid)
	if math.Abs(frac-p.PaidFraction) > 0.03 {
		t.Fatalf("paid fraction = %v, want ~%v", frac, p.PaidFraction)
	}
	for i := range c.Apps {
		a := &c.Apps[i]
		if a.Pricing == Paid && (a.Price < 0.5 || a.Price > 50) {
			t.Fatalf("paid app %d has price %v outside [0.5, 50]", a.ID, a.Price)
		}
		if a.Pricing == Paid && a.HasAds {
			t.Fatalf("paid app %d carries ads", a.ID)
		}
	}
}

func TestAdFraction(t *testing.T) {
	p := testProfile()
	c, err := Generate(p, 9)
	if err != nil {
		t.Fatal(err)
	}
	withAds, free := 0, 0
	for i := range c.Apps {
		if c.Apps[i].Pricing == Free {
			free++
			if c.Apps[i].HasAds {
				withAds++
			}
		}
	}
	frac := float64(withAds) / float64(free)
	if math.Abs(frac-p.AdFraction) > 0.06 {
		t.Fatalf("ad fraction = %v, want ~%v", frac, p.AdFraction)
	}
}

func TestNoDominantCategory(t *testing.T) {
	// Figure 5(d): category sizes are skewed but no category dominates.
	p := Profiles["anzhi"]
	c, err := Generate(p, 11)
	if err != nil {
		t.Fatal(err)
	}
	sizes := c.CategorySizes()
	maxSize := 0
	for _, s := range sizes {
		if s > maxSize {
			maxSize = s
		}
	}
	if frac := float64(maxSize) / float64(p.Apps); frac > 0.35 {
		t.Fatalf("largest category holds %.0f%% of apps; want no dominant category", frac*100)
	}
}

func TestDeveloperPortfolios(t *testing.T) {
	// Figure 16a: most developers ship one app; a small number ship many.
	p := Profiles["slideme"]
	c, err := Generate(p, 13)
	if err != nil {
		t.Fatal(err)
	}
	single, maxApps := 0, 0
	for i := range c.Developers {
		n := len(c.Developers[i].Apps)
		if n == 1 {
			single++
		}
		if n > maxApps {
			maxApps = n
		}
	}
	frac := float64(single) / float64(len(c.Developers))
	if frac < 0.4 {
		t.Fatalf("only %.0f%% of developers have a single app; want a majority", frac*100)
	}
	if maxApps < 10 {
		t.Fatalf("largest portfolio is %d apps; want a heavy tail", maxApps)
	}
}

func TestCategoryRankOrder(t *testing.T) {
	p := testProfile()
	c, err := Generate(p, 17)
	if err != nil {
		t.Fatal(err)
	}
	for ci := range c.Categories {
		apps := c.Categories[ci].Apps
		for i := 1; i < len(apps); i++ {
			qa := c.Apps[int(apps[i-1])].Quality
			qb := c.Apps[int(apps[i])].Quality
			if qb > qa {
				t.Fatalf("category %d not sorted by quality at %d: %v > %v", ci, i, qb, qa)
			}
		}
	}
}

func TestAddApp(t *testing.T) {
	p := testProfile()
	c, err := Generate(p, 19)
	if err != nil {
		t.Fatal(err)
	}
	before := c.NumApps()
	id := c.AddApp(App{
		Dev: 0, Category: 3, Pricing: Free, SizeMB: 2, AddedDay: 5,
		UpdateRate: 0.001, Quality: 0.5,
	})
	if int(id) != before {
		t.Fatalf("AddApp returned ID %d, want %d", id, before)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("catalog invalid after AddApp: %v", err)
	}
	found := false
	for _, a := range c.Categories[3].Apps {
		if a == id {
			found = true
		}
	}
	if !found {
		t.Fatal("new app missing from its category index")
	}
}

func TestScale(t *testing.T) {
	p := Profiles["anzhi"]
	q := p.Scale(0.5)
	if q.Apps != p.Apps/2 || q.Users != p.Users/2 {
		t.Fatalf("Scale(0.5): apps %d users %d", q.Apps, q.Users)
	}
	tiny := p.Scale(0.000001)
	if tiny.Apps < 1 || tiny.Users < 1 {
		t.Fatal("Scale should keep at least one app and user")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Profile{Name: "x", Apps: 0, Categories: 1}, 1); err == nil {
		t.Fatal("zero apps accepted")
	}
	if _, err := Generate(Profile{Name: "x", Apps: 1, Categories: 0}, 1); err == nil {
		t.Fatal("zero categories accepted")
	}
	if _, err := Generate(Profile{Name: "x", Apps: 1, Categories: 1, PaidFraction: 1.5}, 1); err == nil {
		t.Fatal("bad paid fraction accepted")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	p := testProfile()
	c, _ := Generate(p, 23)
	c.Apps[5].Category = CategoryID(len(c.Categories)) // out of range
	if err := c.Validate(); err == nil {
		t.Fatal("Validate missed an out-of-range category")
	}
}

func TestQualityInRangeProperty(t *testing.T) {
	p := testProfile()
	if err := quick.Check(func(seed uint8) bool {
		c, err := Generate(p, uint64(seed)+1)
		if err != nil {
			return false
		}
		for i := range c.Apps {
			q := c.Apps[i].Quality
			if q <= 0 || q > 1 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}
