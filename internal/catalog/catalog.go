// Package catalog defines the appstore entity model — apps, categories,
// developers, users, versions — and generates synthetic catalogs calibrated
// to the four store profiles studied in the paper (SlideMe, 1Mobile,
// AppChina, Anzhi).
//
// The real stores' catalogs are proprietary; the generator substitutes a
// statistically similar population: category sizes, free/paid mix, price
// distribution, developer portfolio sizes, ad-library prevalence and update
// behaviour all follow the distributions the paper reports.
package catalog

import (
	"fmt"
	"time"
)

// AppID identifies an app within one store.
type AppID int32

// DevID identifies a developer account.
type DevID int32

// CategoryID identifies an app category (cluster).
type CategoryID int16

// UserID identifies a store user.
type UserID int32

// Pricing distinguishes the two revenue strategies the paper contrasts.
type Pricing int8

const (
	// Free apps are downloadable at no charge; most carry ad libraries.
	Free Pricing = iota
	// Paid apps require payment at download time and rarely carry ads.
	Paid
)

func (p Pricing) String() string {
	if p == Paid {
		return "paid"
	}
	return "free"
}

// App is one application listing in a store catalog.
type App struct {
	ID       AppID
	Dev      DevID
	Category CategoryID
	Pricing  Pricing
	// Price is the list price in dollars; zero for free apps.
	Price float64
	// HasAds reports whether the binary embeds at least one of the popular
	// advertising libraries (the paper detected these with Androguard; we
	// assign the flag at generation time).
	HasAds bool
	// SizeMB is the APK size in megabytes (the paper's average is 3.5 MB).
	SizeMB float64
	// AddedDay is the simulated day the app appeared in the store (day 0 is
	// the first day of the measurement period; negative values mean the app
	// predates it).
	AddedDay int
	// UpdateRate is the per-day probability that the developer ships a new
	// version. Most apps are updated rarely (Figure 4).
	UpdateRate float64
	// Versions counts shipped versions, starting at 1.
	Versions int
	// Quality in (0,1] scales the app's intrinsic appeal; it correlates the
	// per-category rank with income so that quality beats quantity.
	Quality float64
}

// Category is a thematic cluster of apps.
type Category struct {
	ID   CategoryID
	Name string
	// Apps lists the member app IDs in descending within-category rank
	// order (rank 1 first) after Finalize.
	Apps []AppID
}

// Developer is a publisher account owning one or more apps.
type Developer struct {
	ID   DevID
	Name string
	Apps []AppID
}

// Catalog is a full synthetic appstore snapshot.
type Catalog struct {
	Name       string
	Apps       []App
	Categories []Category
	Developers []Developer
	// Start is the wall-clock time of simulated day 0, used when rendering
	// timestamps; the simulation itself is day-indexed.
	Start time.Time
}

// NumApps returns the number of apps in the catalog.
func (c *Catalog) NumApps() int { return len(c.Apps) }

// App returns the app with the given ID. IDs are dense indices.
func (c *Catalog) App(id AppID) *App {
	return &c.Apps[int(id)]
}

// CategoryOf returns the category ID of the given app.
func (c *Catalog) CategoryOf(id AppID) CategoryID {
	return c.Apps[int(id)].Category
}

// CategorySizes returns the number of apps per category, indexed by
// CategoryID.
func (c *Catalog) CategorySizes() []int {
	sizes := make([]int, len(c.Categories))
	for i := range c.Apps {
		sizes[c.Apps[i].Category]++
	}
	return sizes
}

// FreePaidCounts returns the number of free and paid apps.
func (c *Catalog) FreePaidCounts() (free, paid int) {
	for i := range c.Apps {
		if c.Apps[i].Pricing == Paid {
			paid++
		} else {
			free++
		}
	}
	return free, paid
}

// Validate checks internal consistency: dense IDs, members agreeing with
// per-app fields, prices consistent with pricing. It returns the first
// inconsistency found.
func (c *Catalog) Validate() error {
	for i := range c.Apps {
		a := &c.Apps[i]
		if int(a.ID) != i {
			return fmt.Errorf("catalog: app at index %d has ID %d", i, a.ID)
		}
		if int(a.Category) < 0 || int(a.Category) >= len(c.Categories) {
			return fmt.Errorf("catalog: app %d references category %d of %d", a.ID, a.Category, len(c.Categories))
		}
		if int(a.Dev) < 0 || int(a.Dev) >= len(c.Developers) {
			return fmt.Errorf("catalog: app %d references developer %d of %d", a.ID, a.Dev, len(c.Developers))
		}
		if a.Pricing == Paid && a.Price <= 0 {
			return fmt.Errorf("catalog: paid app %d has price %v", a.ID, a.Price)
		}
		if a.Pricing == Free && a.Price != 0 {
			return fmt.Errorf("catalog: free app %d has price %v", a.ID, a.Price)
		}
		if a.Quality <= 0 || a.Quality > 1 {
			return fmt.Errorf("catalog: app %d has quality %v outside (0,1]", a.ID, a.Quality)
		}
	}
	seen := make(map[AppID]bool, len(c.Apps))
	for ci := range c.Categories {
		for _, id := range c.Categories[ci].Apps {
			if int(id) < 0 || int(id) >= len(c.Apps) {
				return fmt.Errorf("catalog: category %d lists unknown app %d", ci, id)
			}
			if c.Apps[int(id)].Category != CategoryID(ci) {
				return fmt.Errorf("catalog: category %d lists app %d whose category is %d", ci, id, c.Apps[int(id)].Category)
			}
			if seen[id] {
				return fmt.Errorf("catalog: app %d appears in two categories", id)
			}
			seen[id] = true
		}
	}
	if len(seen) != len(c.Apps) {
		return fmt.Errorf("catalog: %d apps in category lists, %d apps total", len(seen), len(c.Apps))
	}
	for di := range c.Developers {
		for _, id := range c.Developers[di].Apps {
			if int(id) < 0 || int(id) >= len(c.Apps) {
				return fmt.Errorf("catalog: developer %d lists unknown app %d", di, id)
			}
			if c.Apps[int(id)].Dev != DevID(di) {
				return fmt.Errorf("catalog: developer %d lists app %d owned by %d", di, id, c.Apps[int(id)].Dev)
			}
		}
	}
	return nil
}
