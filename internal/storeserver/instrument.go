package storeserver

import (
	"fmt"
	"net/http"

	"planetapps/internal/metrics"
)

// routeInstruments holds the per-route telemetry. Counters for the common
// status codes are pre-registered so the request path never takes the
// registry's write lock; rare codes fall back to get-or-create.
type routeInstruments struct {
	route   string
	total   *metrics.Counter
	latency *metrics.Histogram
	byCode  map[int]*metrics.Counter
}

// commonCodes are pre-registered per route.
var commonCodes = []int{
	http.StatusOK,
	http.StatusNotModified,
	http.StatusBadRequest,
	http.StatusNotFound,
}

func (s *Server) initMetrics() {
	s.reg = metrics.NewRegistry()
	if s.cfg.Node != "" {
		// Fleet members label every series with their node name so the
		// gateway's merged /metrics page keeps N shards' counters apart.
		s.reg.SetNode(s.cfg.Node)
	}
	s.total = s.reg.Counter("store_requests_total")
	s.limited = s.reg.Counter("store_rate_limited_total")
	s.inFlight = s.reg.Gauge("store_in_flight")
	s.carried = s.reg.Counter("store_respcache_carried_total")
	s.reencoded = s.reg.Counter("store_respcache_reencoded_total")
	s.buildSeconds = s.reg.Histogram("store_snapshot_build_seconds")
	s.prewarmed = s.reg.Counter("store_prewarm_docs_total")
	s.movedDocs = s.reg.Counter("store_arena_moved_docs_total")
	s.compactions = s.reg.Counter("store_arena_compactions_total")
	s.routes = map[string]*routeInstruments{}
	// Index order must match the router's route kinds (rStats..rRate).
	for kind, route := range []string{"stats", "list", "detail", "comments", "apk", "download", "rate"} {
		ri := &routeInstruments{
			route:   route,
			total:   s.reg.Counter(fmt.Sprintf("store_route_requests_total{route=%q}", route)),
			latency: s.reg.Histogram(fmt.Sprintf("store_request_seconds{route=%q}", route)),
			byCode:  map[int]*metrics.Counter{},
		}
		for _, code := range commonCodes {
			ri.byCode[code] = s.codeCounter(route, code)
		}
		s.routes[route] = ri
		s.routeByKind[kind] = ri
	}
	// Write-outcome counters for the POST-capable kinds, pre-registered so
	// the write path never takes the registry's write lock.
	for kind, endpoint := range map[int]string{rDownload: "download", rRate: "rate", rComments: "comment"} {
		m := make(map[string]*metrics.Counter, len(writeResults))
		for _, res := range writeResults {
			m[res] = s.reg.Counter(fmt.Sprintf("store_writes_total{endpoint=%q,result=%q}", endpoint, res))
		}
		s.writeRes[kind] = m
	}
}

// writeResults are the outcome labels of store_writes_total.
var writeResults = []string{"accepted", "deduped", "duplicate", "invalid", "backpressure"}

func (s *Server) codeCounter(route string, code int) *metrics.Counter {
	return s.reg.Counter(fmt.Sprintf("store_responses_total{route=%q,code=\"%d\"}", route, code))
}

// statusWriter captures the response status for accounting.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Registry exposes the server's metrics registry, served at /metrics by
// Handler; callers (appstored's shutdown stats line, tests) may also read
// it directly.
func (s *Server) Registry() *metrics.Registry { return s.reg }

// RequestsServed returns the number of API requests that passed the rate
// limiter.
func (s *Server) RequestsServed() int64 { return s.total.Value() }

// RateLimited returns the number of requests rejected with 429.
func (s *Server) RateLimited() int64 { return s.limited.Value() }

// LimiterBuckets returns the number of per-client rate-limit buckets
// currently tracked, 0 when rate limiting is off.
func (s *Server) LimiterBuckets() int {
	if s.lim == nil {
		return 0
	}
	return s.lim.size()
}
