package storeserver

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strconv"

	"planetapps/internal/wal"
)

// This file is the /api/v1 write surface: POST /api/v1/apps/{id}/download,
// .../rate, and .../comments. A request is validated against the serving
// snapshot (the app must exist today), appended to the write-ahead log,
// and acknowledged only after its group-commit batch seals — an acked
// write is guaranteed to merge into the next day's snapshot. The handlers
// share the v1 error envelope; the new shapes are 422 validation_failed
// (well-formed JSON, bad field values), 409 duplicate (the natural key
// (kind, app, user) was already accepted — the store models
// fetch-at-most-once users), and 429 wal_backpressure with an honest
// Retry-After when the ingest buffer is full. Idempotency-Key makes
// retries safe: a replayed key returns the original ack with "deduped".

// maxWriteBody bounds a mutation request body; the documented shapes fit
// in tens of bytes.
const maxWriteBody = 1 << 12

// writeReqJSON is the request body of the POST mutation endpoints.
type writeReqJSON struct {
	// User identifies the acting user; required, non-negative. Pointer so
	// "absent" is distinguishable from user 0.
	User *int32 `json:"user"`
	// Rating is required 1..5 on /rate, optional 0..5 on /comments
	// (0 or absent = a comment with no rating attached, matching the
	// generated streams), and ignored on /download.
	Rating *int8 `json:"rating"`
}

// WriteAckJSON is the success body of the POST mutation endpoints. Seq is
// the record's per-WAL-shard sequence number; Day is the serving day the
// write was validated against — the mutation becomes visible in the
// snapshot of the following day-roll.
type WriteAckJSON struct {
	Accepted bool   `json:"accepted"`
	Seq      uint64 `json:"seq"`
	Day      int    `json:"day"`
	Deduped  bool   `json:"deduped,omitempty"`
}

// handleWrite services one POST mutation. The snapshot was loaded once by
// dispatch, so validation and the X-Store-Day header agree on one day.
func (s *Server) handleWrite(w http.ResponseWriter, r *http.Request, sn *snapshot, kind int, id int32, idOK bool) {
	res := s.writeRes[kind]
	if !idOK {
		res["invalid"].Inc()
		writeV1Error(w, http.StatusBadRequest, "bad_app_id",
			"app id must be a non-negative integer", 0)
		return
	}
	if _, ok := sn.ex.IndexOf(id); !ok {
		res["invalid"].Inc()
		writeV1Error(w, http.StatusNotFound, "app_not_found",
			"no app with id "+strconv.FormatInt(int64(id), 10), 0)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxWriteBody+1))
	if err != nil || len(body) > maxWriteBody {
		res["invalid"].Inc()
		writeV1Error(w, http.StatusBadRequest, "bad_request",
			"request body unreadable or larger than "+strconv.Itoa(maxWriteBody)+" bytes", 0)
		return
	}
	var req writeReqJSON
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			res["invalid"].Inc()
			writeV1Error(w, http.StatusBadRequest, "bad_request",
				"request body must be a JSON object", 0)
			return
		}
	}
	if req.User == nil || *req.User < 0 {
		res["invalid"].Inc()
		writeV1Error(w, http.StatusUnprocessableEntity, "validation_failed",
			`"user" is required and must be a non-negative integer`, 0)
		return
	}
	rec := wal.Rec{App: id, User: *req.User}
	switch kind {
	case rDownload:
		rec.Kind = wal.Download
	case rRate:
		rec.Kind = wal.Rate
		if req.Rating == nil || *req.Rating < 1 || *req.Rating > 5 {
			res["invalid"].Inc()
			writeV1Error(w, http.StatusUnprocessableEntity, "validation_failed",
				`"rating" is required and must be an integer in 1..5`, 0)
			return
		}
		rec.Rating = *req.Rating
	case rComments:
		rec.Kind = wal.Comment
		if req.Rating != nil {
			if *req.Rating < 0 || *req.Rating > 5 {
				res["invalid"].Inc()
				writeV1Error(w, http.StatusUnprocessableEntity, "validation_failed",
					`"rating", when present, must be an integer in 0..5`, 0)
				return
			}
			rec.Rating = *req.Rating
		}
	}
	ack, err := s.wlog.Append(rec, r.Header.Get("Idempotency-Key"))
	if err != nil { // ErrBackpressure is the only error Append returns
		res["backpressure"].Inc()
		writeV1Error(w, http.StatusTooManyRequests, "wal_backpressure",
			"write buffer full; retry after backoff", s.wlog.RetryAfter())
		return
	}
	if ack.Duplicate {
		res["duplicate"].Inc()
		writeV1Error(w, http.StatusConflict, "duplicate",
			rec.Kind.String()+" by user "+strconv.FormatInt(int64(rec.User), 10)+
				" for app "+strconv.FormatInt(int64(id), 10)+" already recorded", 0)
		return
	}
	if ack.Deduped {
		res["deduped"].Inc()
	} else {
		res["accepted"].Inc()
	}
	h := w.Header()
	hset(h, hdrAPIVersion, apiVersion)
	hset(h, hdrCacheControl, "no-store")
	hset(h, hdrStoreDay, sn.dayStr)
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	encodeJSON(buf, WriteAckJSON{Accepted: true, Seq: ack.Seq, Day: sn.day, Deduped: ack.Deduped})
	hset(h, hdrContentType, "application/json")
	hset(h, hdrContentLength, strconv.Itoa(buf.Len()))
	w.Write(buf.Bytes()) //nolint:errcheck // client gone; nothing useful to do
	putBuf(buf)
}
