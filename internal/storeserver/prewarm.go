package storeserver

import (
	"sync"
	"sync/atomic"

	"planetapps/internal/marketsim"
)

// prewarmTask identifies one document to encode ahead of traffic.
type prewarmTask struct {
	kind byte // 'S' stats, 'L' listing page, 'D' app detail, 'C' app comments
	idx  int
}

// prewarm encodes the hottest documents of a freshly published snapshot
// with a small bounded worker pool, off the publish path. Without it the
// first post-swap requests for every invalidated document pay the encode
// cost inline — the cold-cache latency spike the day-roll loadgen
// scenario measures. No-op unless Config.PrewarmDocs > 0.
//
// The budget is apportioned across routes in proportion to their observed
// request counts (the existing per-route metrics): listing pages are
// warmed in page order, detail and comment documents for the
// most-downloaded apps first. Encoding a document that was carried
// forward already filled is free (the single-flight fill short-circuits),
// so the budget naturally concentrates on invalidated documents.
func (s *Server) prewarm(sn *snapshot) {
	budget := s.cfg.PrewarmDocs
	if budget <= 0 {
		return
	}
	workers := s.cfg.PrewarmWorkers
	if workers <= 0 {
		workers = 2
	}
	go func() {
		tasks := make([]prewarmTask, 0, budget)
		// Every crawl pass starts at the stats document; always warm it.
		tasks = append(tasks, prewarmTask{kind: 'S'})
		budget--
		lc := s.routes["list"].total.Value()
		dc := s.routes["detail"].total.Value()
		cc := s.routes["comments"].total.Value()
		if sn.comments == nil {
			cc = 0
		}
		sum := lc + dc + cc
		if sum == 0 {
			// No traffic history yet: spend everything on listing pages,
			// the entry point of a catalog crawl.
			lc, sum = 1, 1
		}
		nList := int(float64(budget) * float64(lc) / float64(sum))
		if nList > sn.pages {
			nList = sn.pages
		}
		nDetail := int(float64(budget) * float64(dc) / float64(sum))
		nCom := int(float64(budget) * float64(cc) / float64(sum))
		for p := 0; p < nList; p++ {
			tasks = append(tasks, prewarmTask{kind: 'L', idx: p})
		}
		if k := max(nDetail, nCom); k > 0 {
			hot := topDownloads(sn.ex, k)
			for i, app := range hot {
				if i < nDetail {
					tasks = append(tasks, prewarmTask{kind: 'D', idx: app})
				}
				if i < nCom {
					tasks = append(tasks, prewarmTask{kind: 'C', idx: app})
				}
			}
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(tasks) {
						return
					}
					if s.snap.Load() != sn {
						return // superseded mid-warm; stop wasting encodes
					}
					t := tasks[i]
					switch t.kind {
					case 'S':
						sn.statsDoc()
					case 'L':
						sn.listDoc(t.idx)
					case 'D':
						sn.detailDoc(t.idx)
					case 'C':
						sn.commentsDoc(t.idx)
					}
					s.prewarmed.Inc()
				}
			}()
		}
		wg.Wait()
	}()
}

// topDownloads returns the indexes of the k most-downloaded apps in the
// export (order among the top k unspecified), via a size-k min-heap over
// one O(apps) pass.
func topDownloads(e *marketsim.Export, k int) []int {
	n := e.NumApps()
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	heap := make([]int, 0, k)
	less := func(a, b int) bool { return e.Downloads(heap[a]) < e.Downloads(heap[b]) }
	siftDown := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			min := i
			if l < len(heap) && less(l, min) {
				min = l
			}
			if r < len(heap) && less(r, min) {
				min = r
			}
			if min == i {
				return
			}
			heap[i], heap[min] = heap[min], heap[i]
			i = min
		}
	}
	for i := 0; i < n; i++ {
		if len(heap) < k {
			heap = append(heap, i)
			if len(heap) == k {
				for j := k/2 - 1; j >= 0; j-- {
					siftDown(j)
				}
			}
			continue
		}
		if e.Downloads(i) > e.Downloads(heap[0]) {
			heap[0] = i
			siftDown(0)
		}
	}
	return heap
}
