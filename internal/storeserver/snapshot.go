package storeserver

import (
	"bytes"
	"strconv"

	"planetapps/internal/catalog"
	"planetapps/internal/marketsim"
)

// snapshot is one immutable day of the store: the exported market state
// plus its lazily built, pre-encoded responses. The server publishes a new
// snapshot through an atomic pointer on New, AdvanceDay, and SetComments
// (RCU style: readers load the pointer once and keep serving from that
// snapshot even while a newer one is published), so handlers never touch a
// server-wide lock or the live marketsim.Market. All catalog/download
// fields are write-once at construction; the response caches fill in place
// but each entry is write-once behind a sync.Once, so the whole structure
// is safe for unsynchronized concurrent reads.
type snapshot struct {
	day    int
	dayStr string
	store  string

	apps      []catalog.App
	catNames  []string
	devNames  []string
	downloads []int64
	total     int64

	pageSize int
	pages    int

	// comments maps app -> its comment stream. The map is built fresh by
	// SetComments and never mutated afterwards; commentsGen distinguishes
	// successive comment sets in ETags (comments do not change day to day,
	// so their ETags deliberately omit the day and stay valid across
	// snapshots until the next SetComments).
	comments    map[catalog.AppID][]CommentJSON
	commentsGen int64

	stats   respCache // single entry: the store stats document
	list    respCache // one entry per listing page
	detail  respCache // one entry per app
	comDocs respCache // one entry per app's comment stream
}

// newSnapshot freezes an export plus the current comment set into a
// servable snapshot. Response documents are not encoded here — encoding
// all pages eagerly would put O(catalog) JSON work on the AdvanceDay path;
// instead each document is built on first request (see respCache).
func newSnapshot(e marketsim.Export, comments map[catalog.AppID][]CommentJSON, gen int64, pageSize int) *snapshot {
	pages := (len(e.Apps) + pageSize - 1) / pageSize
	if pages == 0 {
		pages = 1
	}
	return &snapshot{
		day:         e.Day,
		dayStr:      strconv.Itoa(e.Day),
		store:       e.Store,
		apps:        e.Apps,
		catNames:    e.CategoryNames,
		devNames:    e.DeveloperNames,
		downloads:   e.Downloads,
		total:       e.TotalDownloads,
		pageSize:    pageSize,
		pages:       pages,
		comments:    comments,
		commentsGen: gen,
		stats:       newRespCache(1),
		list:        newRespCache(pages),
		detail:      newRespCache(len(e.Apps)),
		comDocs:     newRespCache(len(e.Apps)),
	}
}

// appName renders "<store>-app-<id zero-padded to 5>" without fmt. Output
// matches fmt.Sprintf("%s-app-%05d", store, id) for non-negative ids.
func appName(store string, id int32) string {
	var digits [12]byte
	d := strconv.AppendInt(digits[:0], int64(id), 10)
	b := make([]byte, 0, len(store)+5+5)
	b = append(b, store...)
	b = append(b, "-app-"...)
	for i := len(d); i < 5; i++ {
		b = append(b, '0')
	}
	b = append(b, d...)
	return string(b)
}

func (sn *snapshot) appJSON(i int) AppJSON {
	a := &sn.apps[i]
	return AppJSON{
		ID:        int32(a.ID),
		Name:      appName(sn.store, int32(a.ID)),
		Category:  sn.catNames[a.Category],
		Developer: sn.devNames[a.Dev],
		Paid:      a.Pricing == catalog.Paid,
		Price:     a.Price,
		HasAds:    a.HasAds,
		SizeMB:    a.SizeMB,
		Version:   a.Versions,
		Downloads: sn.downloads[i],
	}
}

// statsDoc returns the pre-summed store statistics document. The total was
// accumulated once at export time, so serving it is O(1) instead of the
// old O(apps) sum under the read lock.
func (sn *snapshot) statsDoc() (body []byte, etag, clen string) {
	return sn.stats.get(0, func(buf *bytes.Buffer) string {
		encodeJSON(buf, StatsJSON{
			Store:          sn.store,
			Day:            sn.day,
			Apps:           len(sn.apps),
			TotalDownloads: sn.total,
		})
		return `"d` + sn.dayStr + `"`
	})
}

// listDoc returns listing page p (caller bounds-checks p < sn.pages).
func (sn *snapshot) listDoc(p int) (body []byte, etag, clen string) {
	return sn.list.get(p, func(buf *bytes.Buffer) string {
		lo := p * sn.pageSize
		hi := lo + sn.pageSize
		if hi > len(sn.apps) {
			hi = len(sn.apps)
		}
		if lo > hi {
			lo = hi // empty catalog still serves page 0
		}
		out := PageJSON{
			Apps:  make([]AppJSON, 0, hi-lo),
			Page:  p,
			Pages: sn.pages,
			Total: len(sn.apps),
		}
		for i := lo; i < hi; i++ {
			out.Apps = append(out.Apps, sn.appJSON(i))
		}
		encodeJSON(buf, out)
		return `"d` + sn.dayStr + `-p` + strconv.Itoa(p) + `"`
	})
}

// detailDoc returns app i's detail document. The ETag encodes the snapshot
// day plus the app's version, so a conditional crawler revalidates for
// free within a day and re-fetches only when the store actually moved.
func (sn *snapshot) detailDoc(i int) (body []byte, etag, clen string) {
	return sn.detail.get(i, func(buf *bytes.Buffer) string {
		encodeJSON(buf, sn.appJSON(i))
		return `"d` + sn.dayStr + `-v` + strconv.Itoa(sn.apps[i].Versions) + `"`
	})
}

// commentsDoc returns app i's comment stream document.
func (sn *snapshot) commentsDoc(i int) (body []byte, etag, clen string) {
	return sn.comDocs.get(i, func(buf *bytes.Buffer) string {
		cs := sn.comments[catalog.AppID(i)]
		if cs == nil {
			cs = []CommentJSON{}
		}
		encodeJSON(buf, cs)
		return `"c` + strconv.FormatInt(sn.commentsGen, 10) + `-` + strconv.Itoa(i) + `"`
	})
}
