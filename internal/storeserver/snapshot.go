package storeserver

import (
	"bytes"
	"math/bits"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"planetapps/internal/arena"
	"planetapps/internal/catalog"
	"planetapps/internal/marketsim"
)

// snapshot is one immutable day of the store: the exported market state
// plus its lazily built, pre-encoded responses. The server publishes a new
// snapshot through an atomic pointer on New, AdvanceDay, and SetComments
// (RCU style: readers load the pointer once and keep serving from that
// snapshot even while a newer one is published), so handlers never touch a
// server-wide lock or the live marketsim.Market. All catalog/download
// fields are write-once at construction; the response caches fill in place
// but each entry is write-once behind an atomic fill state, so the whole
// structure is safe for unsynchronized concurrent reads.
//
// Successive snapshots are built as deltas: documents whose underlying
// rows did not change since the predecessor are carried forward — handle
// for handle, already-encoded arena bytes included — and every ETag is
// derived from content versions (marketsim row/chunk versions, the
// comments generation) rather than the day, so an unchanged document keeps
// its ETag across days and a conditional crawler earns real cross-day
// 304s.
//
// Document bytes live in the arena table, not the Go heap: arenas[i] is
// the arena that docHandle.arenaIdx == i resolves against. Slot 0..63 —
// the table is capped at 64 so per-block arena-reference masks fit a
// uint64. freshIdx/fresh name the arena this snapshot's own fills
// allocate from; the other non-nil slots are predecessors' arenas kept
// alive (Retain'd) because carried documents still point into them. The
// snapshot's finalizer releases every reference once no reader can reach
// the snapshot — slabs are ordinary GC memory, so the refcounts gate
// reuse, never safety.
type snapshot struct {
	day    int
	dayStr string
	store  string

	// builtAt anchors the Age header on /api/v1 responses: the freshness
	// clock starts at snapshot publish, not at request time. age caches
	// the rendered header value so the hot path re-renders it at most once
	// per elapsed second instead of per request (see ageString).
	builtAt time.Time
	age     atomic.Pointer[ageVal]

	ex       *marketsim.Export
	n        int // ex.NumApps()
	catNames []string
	devNames []string

	pageSize int
	pages    int

	// comments maps app -> its comment stream. The map is built fresh by
	// SetComments and never mutated afterwards; commentsGen distinguishes
	// successive comment sets in ETags (comments do not change day to day,
	// so their ETags deliberately omit the day and stay valid across
	// snapshots until the next SetComments).
	comments    map[catalog.AppID][]CommentJSON
	commentsGen int64

	// comVer maps app -> the number of write-merges its comment stream has
	// absorbed (absent = never written); it joins the comment ETag so a
	// written app revalidates while the untouched population keeps its
	// tags. comWriteGen counts merges overall: equal generations between
	// successive snapshots mean no comment stream changed and the whole
	// document population carries forward.
	comVer      map[catalog.AppID]uint32
	comWriteGen int64

	arenas   []*arena.Arena
	fresh    *arena.Arena
	freshIdx uint32

	stats   respCache // single entry: the store stats document
	list    respCache // one entry per listing page
	detail  respCache // one entry per app
	comDocs respCache // one entry per app's comment stream

	// Build accounting, published to the metrics registry by publish():
	// documents carried forward vs allocated fresh (fresh documents
	// re-encode lazily on first request), documents evacuated by
	// compaction, and arenas targeted for evacuation.
	carried   int64
	reencoded int64
	moved     int64
	compacted int64
}

// maxArenas caps the arena table: docBlock.amask tracks referenced slots
// in a uint64. Reaching the cap forces compaction of the least-live
// arena, so the table cannot wedge.
const maxArenas = 64

// compactMinBytes exempts small arenas from compaction: evacuating a
// few-hundred-KB arena saves nothing worth the copy. A var so tests can
// lower the floor and exercise compaction at unit-test catalog sizes.
var compactMinBytes int64 = 4 << 20

// newSnapshot freezes an export plus the current comment set into a
// servable snapshot, carrying unchanged documents forward from prev (nil
// for the first snapshot). Fresh documents are not encoded here — that
// would put O(catalog) JSON work on the AdvanceDay path; each is built on
// first request (see respCache), optionally front-run by Server.prewarm.
func newSnapshot(e *marketsim.Export, prev *snapshot, comments map[catalog.AppID][]CommentJSON, gen int64, comVer map[catalog.AppID]uint32, wgen int64, pageSize int, pool *arena.Pool) *snapshot {
	n := e.NumApps()
	pages := (n + pageSize - 1) / pageSize
	if pages == 0 {
		pages = 1
	}
	sn := &snapshot{
		day:         e.Day(),
		builtAt:     time.Now(),
		dayStr:      strconv.Itoa(e.Day()),
		store:       e.Store(),
		ex:          e,
		n:           n,
		catNames:    e.CategoryNames(),
		devNames:    e.DeveloperNames(),
		pageSize:    pageSize,
		pages:       pages,
		comments:    comments,
		commentsGen: gen,
		comVer:      comVer,
		comWriteGen: wgen,
	}
	// The stats document embeds the day and the running download total, so
	// it changes every day-roll and is always fresh.
	sn.stats = newRespCache(1)

	if prev == nil {
		sn.fresh = arena.New(pool)
		sn.arenas = []*arena.Arena{sn.fresh}
		sn.freshIdx = 0
		sn.list = newRespCache(pages)
		sn.detail = newRespCache(n)
		sn.comDocs = newRespCache(n)
		sn.reencoded = int64(pages) + 2*int64(n) + 1
		runtime.SetFinalizer(sn, (*snapshot).releaseArenas)
		return sn
	}

	cc := sn.planArenas(prev, pool)
	prevEx := prev.ex
	var carried int

	// Listing pages embed Total/Pages, so any catalog growth invalidates
	// all of them; otherwise page p is unchanged iff no chunk it spans
	// moved.
	if prev.n == n && prev.pageSize == pageSize {
		sn.list, carried = cc.cache(pages, &prev.list, nil, func(c int) uint64 {
			var mask uint64
			for j := 0; j < docChunk; j++ {
				p := c*docChunk + j
				if p >= pages {
					break
				}
				lo := p * pageSize
				if e.SpanUnchanged(prevEx, lo, lo+pageSize) {
					mask |= 1 << uint(j)
				}
			}
			return mask
		})
		sn.carried += int64(carried)
		sn.reencoded += int64(pages - carried)
	} else {
		sn.list = newRespCache(pages)
		sn.reencoded += int64(pages)
		cc.dropAll(&prev.list)
	}

	// An app's detail document is a pure function of its row version
	// (row fields + download count) and the immutable name tables. Whole
	// untouched export chunks (the overwhelming majority at low churn)
	// carry their handle blocks wholesale; only dirty chunks walk rows.
	sn.detail, carried = cc.cache(n, &prev.detail, func(c int) bool {
		return e.ChunkUnchanged(prevEx, c)
	}, func(c int) uint64 {
		return e.UnchangedRows(prevEx, c)
	})
	sn.carried += int64(carried)
	sn.reencoded += int64(n - carried)

	// Comment documents depend on the attached comment set plus any
	// write-merged streams. Same generation on both counts: the whole
	// population carries over (every full block is shared outright; only
	// the tail block, where arrivals land, is carried entry by entry).
	// Write merges alone: rows whose per-app write version is unchanged —
	// the overwhelming majority, writes being Zipf-concentrated — carry
	// individually; only written apps re-encode.
	switch {
	case prev.commentsGen == gen && prev.comWriteGen == wgen:
		sn.comDocs, carried = cc.cache(n, &prev.comDocs,
			func(int) bool { return true }, func(int) uint64 { return keepAll })
		sn.carried += int64(carried)
		sn.reencoded += int64(n - carried)
	case prev.commentsGen == gen:
		sn.comDocs, carried = cc.cache(n, &prev.comDocs, nil, func(c int) uint64 {
			var mask uint64
			for j := 0; j < docChunk; j++ {
				i := c*docChunk + j
				if i >= n {
					break
				}
				id := catalog.AppID(e.ID(i))
				if comVer[id] == prev.comVer[id] {
					mask |= 1 << uint(j)
				}
			}
			return mask
		})
		sn.carried += int64(carried)
		sn.reencoded += int64(n - carried)
	default:
		sn.comDocs = newRespCache(n)
		sn.reencoded += int64(n)
		cc.dropAll(&prev.comDocs)
	}
	sn.reencoded++ // the always-fresh stats document
	cc.dropAll(&prev.stats)

	// Retain every predecessor arena the carried documents still
	// reference; unpin the rest (the predecessor snapshot's own
	// references die with its finalizer). The fresh arena's reference is
	// the one arena.New minted.
	sn.moved = cc.moved
	for idx, a := range sn.arenas {
		if a == nil || uint32(idx) == sn.freshIdx {
			continue
		}
		if cc.used&(1<<uint(idx)) != 0 {
			a.Retain()
		} else {
			sn.arenas[idx] = nil
		}
	}
	runtime.SetFinalizer(sn, (*snapshot).releaseArenas)
	return sn
}

// planArenas builds the successor's arena table from prev's: pick the
// arenas to compact away (mostly-dead, or evicted for table space), pick
// the slot the build's fresh arena lives in, and return the carry context
// the cache builds thread their bookkeeping through.
//
// Slot-reuse safety: the fresh arena may only take a slot no carried
// handle will resolve — a nil hole (no live handle references an empty
// slot by construction), a newly appended slot, or a compaction victim's
// slot (every surviving document is evacuated out of a victim, so after
// the carry no handle references it under its old meaning).
func (sn *snapshot) planArenas(prev *snapshot, pool *arena.Pool) *carryCtx {
	tab := append([]*arena.Arena(nil), prev.arenas...)

	// Compaction targets: arenas whose surviving bytes are a small
	// fraction of what they hold. A few immortal documents must not pin a
	// whole day's slabs forever.
	var compact uint64
	for idx, a := range tab {
		if a == nil {
			continue
		}
		if alloc := a.AllocatedBytes(); alloc >= compactMinBytes && a.LiveBytes()*4 < alloc {
			compact |= 1 << uint(idx)
		}
	}

	freshIdx := -1
	for idx, a := range tab {
		if a == nil {
			freshIdx = idx
			break
		}
	}
	if freshIdx < 0 && len(tab) < maxArenas {
		tab = append(tab, nil)
		freshIdx = len(tab) - 1
	}
	if freshIdx < 0 {
		// Table full: reuse a victim slot. Prefer an arena already being
		// compacted; otherwise force-compact the one with the least live
		// bytes (cheapest evacuation).
		if compact != 0 {
			freshIdx = bits.TrailingZeros64(compact)
		} else {
			var minLive int64
			for idx, a := range tab {
				if live := a.LiveBytes(); freshIdx < 0 || live < minLive {
					freshIdx, minLive = idx, live
				}
			}
			compact |= 1 << uint(freshIdx)
		}
	}

	sn.fresh = arena.New(pool)
	sn.freshIdx = uint32(freshIdx)
	tab[freshIdx] = sn.fresh
	sn.arenas = tab
	sn.compacted = int64(bits.OnesCount64(compact))
	return &carryCtx{prev: prev, sn: sn, compact: compact}
}

// releaseArenas drops the snapshot's arena references. Registered as the
// snapshot's finalizer: it runs only when no goroutine can reach the
// snapshot anymore, i.e. when no in-flight request can still be reading
// document bytes out of these arenas.
func (sn *snapshot) releaseArenas() {
	for _, a := range sn.arenas {
		if a != nil {
			a.Release()
		}
	}
}

// appName renders "<store>-app-<id zero-padded to 5>" without fmt. Output
// matches fmt.Sprintf("%s-app-%05d", store, id) for non-negative ids.
func appName(store string, id int32) string {
	var digits [12]byte
	d := strconv.AppendInt(digits[:0], int64(id), 10)
	b := make([]byte, 0, len(store)+5+5)
	b = append(b, store...)
	b = append(b, "-app-"...)
	for i := len(d); i < 5; i++ {
		b = append(b, '0')
	}
	b = append(b, d...)
	return string(b)
}

func (sn *snapshot) appJSON(i int) AppJSON {
	a := sn.ex.App(i)
	return AppJSON{
		ID:        int32(a.ID),
		Name:      appName(sn.store, int32(a.ID)),
		Category:  sn.catNames[a.Category],
		Developer: sn.devNames[a.Dev],
		Paid:      a.Pricing == catalog.Paid,
		Price:     a.Price,
		HasAds:    a.HasAds,
		SizeMB:    a.SizeMB,
		Version:   a.Versions,
		Downloads: sn.ex.Downloads(i),
	}
}

// ageVal is one rendered Age header value, cached per snapshot so the
// serving path allocates for it at most once per elapsed second.
type ageVal struct {
	sec int64
	str string
}

// ageString renders seconds-since-publish for the Age header through the
// snapshot's single-entry cache: requests landing in the same wall-clock
// second — all of them, at 100k+ req/s — share one rendered string.
func (sn *snapshot) ageString() string {
	sec := int64(time.Since(sn.builtAt) / time.Second)
	if sec <= 0 {
		return "0"
	}
	if v := sn.age.Load(); v != nil && v.sec == sec {
		return v.str
	}
	v := &ageVal{sec: sec, str: strconv.FormatInt(sec, 10)}
	sn.age.Store(v)
	return v.str
}

// statsDoc returns the pre-summed store statistics document. The total was
// accumulated incrementally by the market, so serving it is O(1).
func (sn *snapshot) statsDoc() docView {
	return sn.stats.get(sn, 0, func(buf *bytes.Buffer) string {
		encodeJSON(buf, StatsJSON{
			Store:          sn.store,
			Day:            sn.day,
			Apps:           sn.n,
			TotalDownloads: sn.ex.TotalDownloads(),
		})
		return `"s` + sn.dayStr + `-t` + strconv.FormatInt(sn.ex.TotalDownloads(), 10) + `"`
	})
}

// listDoc returns listing page p (caller bounds-checks p < sn.pages). The
// ETag encodes the catalog size and the spanned chunk versions — the
// page's content version — so an untouched page revalidates across days.
func (sn *snapshot) listDoc(p int) docView {
	return sn.list.get(sn, p, func(buf *bytes.Buffer) string {
		lo := p * sn.pageSize
		hi := lo + sn.pageSize
		if hi > sn.n {
			hi = sn.n
		}
		if lo > hi {
			lo = hi // empty catalog still serves page 0
		}
		out := PageJSON{
			Apps:  make([]AppJSON, 0, hi-lo),
			Page:  p,
			Pages: sn.pages,
			Total: sn.n,
		}
		for i := lo; i < hi; i++ {
			out.Apps = append(out.Apps, sn.appJSON(i))
		}
		encodeJSON(buf, out)
		return `"p` + strconv.Itoa(p) + `-n` + strconv.Itoa(sn.n) +
			`-v` + strconv.FormatUint(sn.ex.VersionSum(lo, hi), 10) + `"`
	})
}

// detailDoc returns row i's detail document. The ETag encodes the app's
// global ID and row version — which advances only when the app's servable
// content (row fields or download count) changes — so an unchanged app
// keeps its ETag across day-rolls (a conditional crawler gets a true 304)
// and across topologies (a shard mints the same ETag a single node
// would: dense exports have ID(i) == i, so the wire bytes are unchanged).
func (sn *snapshot) detailDoc(i int) docView {
	return sn.detail.get(sn, i, func(buf *bytes.Buffer) string {
		encodeJSON(buf, sn.appJSON(i))
		return `"a` + strconv.FormatInt(int64(sn.ex.ID(i)), 10) +
			`-r` + strconv.FormatUint(uint64(sn.ex.RowVer(i)), 10) + `"`
	})
}

// commentsDoc returns row i's comment stream document, keyed and ETagged
// by the app's global ID (identical to the row index on dense exports).
// Apps that absorbed client writes grow a "-w<ver>" ETag suffix so their
// documents revalidate; never-written apps keep the exact tags they have
// always minted.
func (sn *snapshot) commentsDoc(i int) docView {
	return sn.comDocs.get(sn, i, func(buf *bytes.Buffer) string {
		id := sn.ex.ID(i)
		cs := sn.comments[catalog.AppID(id)]
		if cs == nil {
			cs = []CommentJSON{}
		}
		encodeJSON(buf, cs)
		etag := `"c` + strconv.FormatInt(sn.commentsGen, 10) + `-` + strconv.FormatInt(int64(id), 10)
		if v := sn.comVer[catalog.AppID(id)]; v > 0 {
			etag += `-w` + strconv.FormatUint(uint64(v), 10)
		}
		return etag + `"`
	})
}
