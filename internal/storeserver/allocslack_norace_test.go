//go:build !race

package storeserver

// allocSlack is the hit-path allocation budget: zero, exactly, in a
// normal build. The race-build file grants the detector's bookkeeping a
// small allowance so CI can run the budget under -race too.
const allocSlack = 0
