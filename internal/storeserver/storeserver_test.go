package storeserver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"planetapps/internal/catalog"
	"planetapps/internal/comments"
	"planetapps/internal/marketsim"
)

func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	mcfg := marketsim.DefaultConfig(catalog.Profiles["slideme"].Scale(0.2))
	mcfg.Days = 10
	m, err := marketsim.New(mcfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := New(m, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func TestStats(t *testing.T) {
	_, ts := testServer(t, Config{PageSize: 50})
	var st StatsJSON
	if code := getJSON(t, ts.URL+"/api/stats", &st); code != 200 {
		t.Fatalf("status %d", code)
	}
	if st.Store != "slideme" || st.Apps == 0 || st.TotalDownloads == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestListingPagination(t *testing.T) {
	_, ts := testServer(t, Config{PageSize: 100})
	var first PageJSON
	if code := getJSON(t, ts.URL+"/api/apps?page=0", &first); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(first.Apps) != 100 {
		t.Fatalf("page 0 has %d apps", len(first.Apps))
	}
	seen := map[int32]bool{}
	total := 0
	for p := 0; p < first.Pages; p++ {
		var page PageJSON
		if code := getJSON(t, fmt.Sprintf("%s/api/apps?page=%d", ts.URL, p), &page); code != 200 {
			t.Fatalf("page %d: status %d", p, code)
		}
		for _, a := range page.Apps {
			if seen[a.ID] {
				t.Fatalf("app %d repeated across pages", a.ID)
			}
			seen[a.ID] = true
			total++
		}
	}
	if total != first.Total {
		t.Fatalf("walked %d apps, total says %d", total, first.Total)
	}
}

func TestListingErrors(t *testing.T) {
	_, ts := testServer(t, Config{PageSize: 100})
	var out PageJSON
	if code := getJSON(t, ts.URL+"/api/apps?page=badnum", &out); code != 400 {
		t.Fatalf("bad page param: status %d", code)
	}
	if code := getJSON(t, ts.URL+"/api/apps?page=100000", &out); code != 404 {
		t.Fatalf("out of range page: status %d", code)
	}
}

func TestAppDetail(t *testing.T) {
	_, ts := testServer(t, Config{PageSize: 50})
	var app AppJSON
	if code := getJSON(t, ts.URL+"/api/apps/0", &app); code != 200 {
		t.Fatalf("status %d", code)
	}
	if app.ID != 0 || app.Category == "" || app.Developer == "" {
		t.Fatalf("app = %+v", app)
	}
	if code := getJSON(t, ts.URL+"/api/apps/99999999", &app); code != 404 {
		t.Fatalf("missing app: status %d", code)
	}
	if code := getJSON(t, ts.URL+"/api/apps/abc", &app); code != 400 {
		t.Fatalf("bad id: status %d", code)
	}
}

func TestCommentsEndpoint(t *testing.T) {
	s, ts := testServer(t, Config{PageSize: 50})
	cfg := comments.DefaultGenConfig(200)
	// Generate over the server's catalog via a fresh market? Use the same
	// catalog through the server's market: regenerate deterministically.
	mcfg := marketsim.DefaultConfig(catalog.Profiles["slideme"].Scale(0.2))
	mcfg.Days = 10
	m, err := marketsim.New(mcfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := comments.Generate(m.Catalog(), cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	s.SetComments(cs)
	var total int
	for id := 0; id < 50; id++ {
		var out []CommentJSON
		if code := getJSON(t, fmt.Sprintf("%s/api/apps/%d/comments", ts.URL, id), &out); code != 200 {
			t.Fatalf("status %d", code)
		}
		total += len(out)
	}
	if total == 0 {
		t.Fatal("no comments served over 50 apps")
	}
}

func TestRateLimiting(t *testing.T) {
	_, ts := testServer(t, Config{PageSize: 50, RatePerSec: 5, Burst: 3})
	limited := false
	for i := 0; i < 10; i++ {
		resp, err := http.Get(ts.URL + "/api/stats")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			limited = true
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
		}
	}
	if !limited {
		t.Fatal("burst of 10 requests never hit the limit")
	}
}

func TestRateLimitPerClient(t *testing.T) {
	s, _ := testServer(t, Config{PageSize: 50, RatePerSec: 1, Burst: 1})
	// Distinct X-Forwarded-For chains count as distinct clients.
	h := s.Handler()
	status := func(xff string) int {
		req := httptest.NewRequest(http.MethodGet, "/api/stats", nil)
		req.Header.Set("X-Forwarded-For", xff)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec.Code
	}
	if status("1.1.1.1,proxy-a") != 200 {
		t.Fatal("first client's first request limited")
	}
	if status("1.1.1.1,proxy-a") != 429 {
		t.Fatal("first client's second request not limited")
	}
	if status("2.2.2.2,proxy-b") != 200 {
		t.Fatal("second client limited by first client's bucket")
	}
}

func TestAdvanceDay(t *testing.T) {
	s, ts := testServer(t, Config{PageSize: 50})
	var before, after StatsJSON
	getJSON(t, ts.URL+"/api/stats", &before)
	if err := s.AdvanceDay(); err != nil {
		t.Fatal(err)
	}
	getJSON(t, ts.URL+"/api/stats", &after)
	if after.Day != before.Day+1 {
		t.Fatalf("day %d -> %d", before.Day, after.Day)
	}
	if after.TotalDownloads <= before.TotalDownloads {
		t.Fatalf("downloads did not grow: %d -> %d", before.TotalDownloads, after.TotalDownloads)
	}
}

func TestClientKey(t *testing.T) {
	cases := []struct {
		xff    string
		remote string
		want   string
	}{
		{"", "10.0.0.1:4321", "10.0.0.1"},
		{"", "bare-addr", "bare-addr"},
		{"1.2.3.4", "10.0.0.1:4321", "1.2.3.4"},
		// Multi-hop chains: only the originating client counts, so the
		// same client through different proxy chains shares one bucket.
		{"1.2.3.4, proxy-a, proxy-b", "10.0.0.1:4321", "1.2.3.4"},
		{"1.2.3.4,proxy-c", "10.0.0.1:4321", "1.2.3.4"},
		{"  1.2.3.4  , proxy-a", "10.0.0.1:4321", "1.2.3.4"},
		// Degenerate header: fall back to the remote address.
		{" , proxy-a", "10.0.0.1:4321", "10.0.0.1"},
	}
	for _, c := range cases {
		r := httptest.NewRequest(http.MethodGet, "/api/stats", nil)
		r.RemoteAddr = c.remote
		if c.xff != "" {
			r.Header.Set("X-Forwarded-For", c.xff)
		}
		if got := clientKey(r); got != c.want {
			t.Errorf("clientKey(xff=%q, remote=%q) = %q, want %q", c.xff, c.remote, got, c.want)
		}
	}
}

func TestAppName(t *testing.T) {
	for _, id := range []int32{0, 7, 99, 12345, 1234567} {
		want := fmt.Sprintf("%s-app-%05d", "slideme", id)
		if got := appName("slideme", id); got != want {
			t.Errorf("appName(%d) = %q, want %q", id, got, want)
		}
	}
}

// TestJSONConditionalGET exercises the snapshot-derived ETags: a repeated
// GET with If-None-Match returns 304 with no body, and advancing the day
// changes the ETag for day-dependent documents.
func TestJSONConditionalGET(t *testing.T) {
	s, ts := testServer(t, Config{PageSize: 50})
	for _, path := range []string{"/api/stats", "/api/apps?page=0", "/api/apps/3", "/api/apps/3/comments"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		etag := resp.Header.Get("ETag")
		if etag == "" {
			t.Fatalf("%s: no ETag", path)
		}
		if cl := resp.Header.Get("Content-Length"); cl != fmt.Sprint(len(body)) {
			t.Fatalf("%s: Content-Length %s, body %d bytes", path, cl, len(body))
		}
		req, _ := http.NewRequest(http.MethodGet, ts.URL+path, nil)
		req.Header.Set("If-None-Match", etag)
		resp2, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		b2, _ := io.ReadAll(resp2.Body)
		resp2.Body.Close()
		if resp2.StatusCode != http.StatusNotModified {
			t.Fatalf("%s: conditional GET returned %d", path, resp2.StatusCode)
		}
		if len(b2) != 0 {
			t.Fatalf("%s: 304 carried %d body bytes", path, len(b2))
		}
	}
	// Day-dependent documents revalidate to fresh content after AdvanceDay.
	resp, _ := http.Get(ts.URL + "/api/stats")
	oldTag := resp.Header.Get("ETag")
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if err := s.AdvanceDay(); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/api/stats", nil)
	req.Header.Set("If-None-Match", oldTag)
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("stale ETag after AdvanceDay returned %d, want 200", resp3.StatusCode)
	}
	if newTag := resp3.Header.Get("ETag"); newTag == oldTag {
		t.Fatalf("ETag did not change across days: %s", newTag)
	}
}

// TestListPageAllocBound pins the serving-path allocation win: a warm
// listing page is served as cached bytes, so per-request allocations stay
// bounded by harness overhead (request parse, recorder, headers) rather
// than growing with the 100-app page being re-encoded. The pre-snapshot
// server spent ~236 allocs/op here.
func TestListPageAllocBound(t *testing.T) {
	s, _ := testServer(t, Config{PageSize: 100})
	h := s.Handler()
	get := func() {
		req := httptest.NewRequest(http.MethodGet, "/api/apps?page=0", nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d", rec.Code)
		}
	}
	get() // warm the page cache
	allocs := testing.AllocsPerRun(200, get)
	// 30 allocs/op measured (mostly httptest harness); leave headroom for
	// race-mode and stdlib drift while still failing if per-app encoding
	// ever sneaks back onto the request path.
	if allocs > 60 {
		t.Errorf("list page took %.0f allocs/op, want <= 60", allocs)
	}
}

func TestAPKEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{PageSize: 50})
	resp, err := http.Get(ts.URL + "/api/apps/0/apk")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(body) < 16 {
		t.Fatalf("payload only %d bytes", len(body))
	}
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag")
	}
	// Same version: identical payload.
	resp2, err := http.Get(ts.URL + "/api/apps/0/apk")
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if !bytes.Equal(body, body2) {
		t.Fatal("APK payload not deterministic")
	}
	// Conditional request with the ETag short-circuits.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/api/apps/0/apk", nil)
	req.Header.Set("If-None-Match", etag)
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp3.Body) //nolint:errcheck
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional GET returned %d", resp3.StatusCode)
	}
	// Unknown app.
	resp4, err := http.Get(ts.URL + "/api/apps/999999/apk")
	if err != nil {
		t.Fatal(err)
	}
	resp4.Body.Close()
	if resp4.StatusCode != 404 {
		t.Fatalf("missing app returned %d", resp4.StatusCode)
	}
}
