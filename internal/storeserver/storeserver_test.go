package storeserver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"planetapps/internal/catalog"
	"planetapps/internal/comments"
	"planetapps/internal/marketsim"
)

func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	mcfg := marketsim.DefaultConfig(catalog.Profiles["slideme"].Scale(0.2))
	mcfg.Days = 10
	m, err := marketsim.New(mcfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := New(m, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func TestStats(t *testing.T) {
	_, ts := testServer(t, Config{PageSize: 50})
	var st StatsJSON
	if code := getJSON(t, ts.URL+"/api/stats", &st); code != 200 {
		t.Fatalf("status %d", code)
	}
	if st.Store != "slideme" || st.Apps == 0 || st.TotalDownloads == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestListingPagination(t *testing.T) {
	_, ts := testServer(t, Config{PageSize: 100})
	var first PageJSON
	if code := getJSON(t, ts.URL+"/api/apps?page=0", &first); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(first.Apps) != 100 {
		t.Fatalf("page 0 has %d apps", len(first.Apps))
	}
	seen := map[int32]bool{}
	total := 0
	for p := 0; p < first.Pages; p++ {
		var page PageJSON
		if code := getJSON(t, fmt.Sprintf("%s/api/apps?page=%d", ts.URL, p), &page); code != 200 {
			t.Fatalf("page %d: status %d", p, code)
		}
		for _, a := range page.Apps {
			if seen[a.ID] {
				t.Fatalf("app %d repeated across pages", a.ID)
			}
			seen[a.ID] = true
			total++
		}
	}
	if total != first.Total {
		t.Fatalf("walked %d apps, total says %d", total, first.Total)
	}
}

func TestListingErrors(t *testing.T) {
	_, ts := testServer(t, Config{PageSize: 100})
	var out PageJSON
	if code := getJSON(t, ts.URL+"/api/apps?page=badnum", &out); code != 400 {
		t.Fatalf("bad page param: status %d", code)
	}
	if code := getJSON(t, ts.URL+"/api/apps?page=100000", &out); code != 404 {
		t.Fatalf("out of range page: status %d", code)
	}
}

func TestAppDetail(t *testing.T) {
	_, ts := testServer(t, Config{PageSize: 50})
	var app AppJSON
	if code := getJSON(t, ts.URL+"/api/apps/0", &app); code != 200 {
		t.Fatalf("status %d", code)
	}
	if app.ID != 0 || app.Category == "" || app.Developer == "" {
		t.Fatalf("app = %+v", app)
	}
	if code := getJSON(t, ts.URL+"/api/apps/99999999", &app); code != 404 {
		t.Fatalf("missing app: status %d", code)
	}
	if code := getJSON(t, ts.URL+"/api/apps/abc", &app); code != 400 {
		t.Fatalf("bad id: status %d", code)
	}
}

func TestCommentsEndpoint(t *testing.T) {
	s, ts := testServer(t, Config{PageSize: 50})
	cfg := comments.DefaultGenConfig(200)
	// Generate over the server's catalog via a fresh market? Use the same
	// catalog through the server's market: regenerate deterministically.
	mcfg := marketsim.DefaultConfig(catalog.Profiles["slideme"].Scale(0.2))
	mcfg.Days = 10
	m, err := marketsim.New(mcfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := comments.Generate(m.Catalog(), cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	s.SetComments(cs)
	var total int
	for id := 0; id < 50; id++ {
		var out []CommentJSON
		if code := getJSON(t, fmt.Sprintf("%s/api/apps/%d/comments", ts.URL, id), &out); code != 200 {
			t.Fatalf("status %d", code)
		}
		total += len(out)
	}
	if total == 0 {
		t.Fatal("no comments served over 50 apps")
	}
}

func TestRateLimiting(t *testing.T) {
	_, ts := testServer(t, Config{PageSize: 50, RatePerSec: 5, Burst: 3})
	limited := false
	for i := 0; i < 10; i++ {
		resp, err := http.Get(ts.URL + "/api/stats")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			limited = true
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
		}
	}
	if !limited {
		t.Fatal("burst of 10 requests never hit the limit")
	}
}

func TestRateLimitPerClient(t *testing.T) {
	s, _ := testServer(t, Config{PageSize: 50, RatePerSec: 1, Burst: 1})
	// Distinct X-Forwarded-For chains count as distinct clients.
	h := s.Handler()
	status := func(xff string) int {
		req := httptest.NewRequest(http.MethodGet, "/api/stats", nil)
		req.Header.Set("X-Forwarded-For", xff)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec.Code
	}
	if status("1.1.1.1,proxy-a") != 200 {
		t.Fatal("first client's first request limited")
	}
	if status("1.1.1.1,proxy-a") != 429 {
		t.Fatal("first client's second request not limited")
	}
	if status("2.2.2.2,proxy-b") != 200 {
		t.Fatal("second client limited by first client's bucket")
	}
}

func TestAdvanceDay(t *testing.T) {
	s, ts := testServer(t, Config{PageSize: 50})
	var before, after StatsJSON
	getJSON(t, ts.URL+"/api/stats", &before)
	if err := s.AdvanceDay(); err != nil {
		t.Fatal(err)
	}
	getJSON(t, ts.URL+"/api/stats", &after)
	if after.Day != before.Day+1 {
		t.Fatalf("day %d -> %d", before.Day, after.Day)
	}
	if after.TotalDownloads <= before.TotalDownloads {
		t.Fatalf("downloads did not grow: %d -> %d", before.TotalDownloads, after.TotalDownloads)
	}
}

func TestAPKEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{PageSize: 50})
	resp, err := http.Get(ts.URL + "/api/apps/0/apk")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(body) < 16 {
		t.Fatalf("payload only %d bytes", len(body))
	}
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag")
	}
	// Same version: identical payload.
	resp2, err := http.Get(ts.URL + "/api/apps/0/apk")
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if !bytes.Equal(body, body2) {
		t.Fatal("APK payload not deterministic")
	}
	// Conditional request with the ETag short-circuits.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/api/apps/0/apk", nil)
	req.Header.Set("If-None-Match", etag)
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp3.Body) //nolint:errcheck
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional GET returned %d", resp3.StatusCode)
	}
	// Unknown app.
	resp4, err := http.Get(ts.URL + "/api/apps/999999/apk")
	if err != nil {
		t.Fatal(err)
	}
	resp4.Body.Close()
	if resp4.StatusCode != 404 {
		t.Fatalf("missing app returned %d", resp4.StatusCode)
	}
}
