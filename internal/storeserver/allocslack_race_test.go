//go:build race

package storeserver

// Under -race the runtime itself may allocate on paths that are clean in
// a normal build (sync.Pool bookkeeping, shadow state). The budget keeps
// the regression tripwire — 30 allocs/op would still fail loudly — while
// tolerating detector overhead.
const allocSlack = 4
