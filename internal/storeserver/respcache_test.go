package storeserver

import (
	"bytes"
	"strconv"
	"testing"

	"planetapps/internal/arena"
)

// shellSnapshot fabricates the minimal snapshot a respCache needs: an
// arena table with one fresh arena. It lets the carry boundary tests
// drive carryCtx.cache directly with hand-picked sizes and masks instead
// of hoping a simulated market hits the geometry.
func shellSnapshot(pool *arena.Pool) *snapshot {
	sn := &snapshot{}
	sn.fresh = arena.New(pool)
	sn.arenas = []*arena.Arena{sn.fresh}
	sn.freshIdx = 0
	return sn
}

// fillRange force-encodes entries [0, k) of c with deterministic bodies.
func fillRange(sn *snapshot, c *respCache, k int) {
	for i := 0; i < k; i++ {
		i := i
		c.get(sn, i, func(buf *bytes.Buffer) string {
			buf.WriteString(`{"doc":` + strconv.Itoa(i) + `}`)
			return `"e` + strconv.Itoa(i) + `"`
		})
	}
}

// successor builds the carry of prev's cache into a new shell snapshot.
func successor(pool *arena.Pool, prev *snapshot, prevCache *respCache, n int, sameChunk func(int) bool, keepMask func(int) uint64) (*snapshot, respCache, int) {
	sn := shellSnapshot(pool)
	// Mirror planArenas for the shell: the successor sees prev's arenas
	// plus its own fresh one in a new slot.
	sn.arenas = append(append([]*arena.Arena(nil), prev.arenas...), sn.fresh)
	sn.freshIdx = uint32(len(sn.arenas) - 1)
	cc := &carryCtx{prev: prev, sn: sn}
	out, carried := cc.cache(n, prevCache, sameChunk, keepMask)
	for idx, a := range sn.arenas {
		if a == nil || uint32(idx) == sn.freshIdx {
			continue
		}
		if cc.used&(1<<uint(idx)) != 0 {
			a.Retain()
		} else {
			sn.arenas[idx] = nil
		}
	}
	return sn, out, carried
}

// TestCarryShrink: the catalog shrinking below the previous size must
// drop the out-of-range documents (and their arena bytes) while still
// carrying the surviving prefix.
func TestCarryShrink(t *testing.T) {
	pool := arena.NewPool(4)
	prev := shellSnapshot(pool)
	pc := newRespCache(200) // 4 blocks: 64+64+64+8
	prev.detail = pc
	fillRange(prev, &pc, 200)
	liveBefore := prev.fresh.LiveBytes()

	sn, out, carried := successor(pool, prev, &pc, 100,
		func(int) bool { return true }, func(int) uint64 { return keepAll })
	if carried != 100 {
		t.Fatalf("carried = %d, want 100", carried)
	}
	if out.n != 100 || numDocChunks(100) != len(out.blocks) {
		t.Fatalf("shrunk cache shape: n=%d blocks=%d", out.n, len(out.blocks))
	}
	// Entries below the new size are carried by value.
	for i := 0; i < 100; i++ {
		if out.docAt(i) != pc.docAt(i) {
			t.Fatalf("entry %d not carried across shrink", i)
		}
		got := out.get(sn, i, func(*bytes.Buffer) string { t.Fatalf("entry %d re-encoded", i); return "" })
		if want := `{"doc":` + strconv.Itoa(i) + `}`; string(got.body) != want {
			t.Fatalf("entry %d: body %q, want %q", i, got.body, want)
		}
	}
	// The 100 dropped documents' bytes must be accounted dead in prev's
	// arena: block 1's upper half (entries 100..127 of block 1? no —
	// entries 100..199 span blocks 1 (tail), 2, 3).
	if dropped := liveBefore - prev.fresh.LiveBytes(); dropped <= 0 {
		t.Fatalf("no live-byte drop recorded for %d discarded docs", 100)
	}
}

// TestCarryGrowthPartialTrailingBlock: growth into a partial trailing
// block — the old tail block gains rows. The old tail entries must carry
// (below prev coverage) and the grown tail must encode fresh.
func TestCarryGrowthPartialTrailingBlock(t *testing.T) {
	pool := arena.NewPool(4)
	prev := shellSnapshot(pool)
	pc := newRespCache(70) // blocks: 64 + 6-entry tail
	prev.detail = pc
	fillRange(prev, &pc, 70)

	// Grow 70 -> 90: same block count, the tail block now spans 26 rows.
	sn, out, carried := successor(pool, prev, &pc, 90,
		func(int) bool { return true }, func(int) uint64 { return keepAll })
	if carried != 70 {
		t.Fatalf("carried = %d, want 70 (full prev coverage)", carried)
	}
	for i := 0; i < 70; i++ {
		if out.docAt(i) != pc.docAt(i) {
			t.Fatalf("entry %d not carried across growth", i)
		}
	}
	// Grown entries have no predecessor: empty handles, fresh encodes.
	for i := 70; i < 90; i++ {
		if out.docAt(i) != (docHandle{}) {
			t.Fatalf("grown entry %d should be empty before first request", i)
		}
	}
	encoded := 0
	for i := 70; i < 90; i++ {
		i := i
		v := out.get(sn, i, func(buf *bytes.Buffer) string {
			encoded++
			buf.WriteString(`{"new":` + strconv.Itoa(i) + `}`)
			return `"n` + strconv.Itoa(i) + `"`
		})
		if want := `{"new":` + strconv.Itoa(i) + `}`; string(v.body) != want {
			t.Fatalf("grown entry %d: body %q", i, v.body)
		}
	}
	if encoded != 20 {
		t.Fatalf("encoded %d grown entries, want 20", encoded)
	}
}

// TestCarryKeptNonPositive: blocks lying entirely beyond prev's coverage
// (kept <= 0) must ignore the caller's keep mask outright — keepAll over
// a span with no predecessors carries nothing and crashes nothing.
func TestCarryKeptNonPositive(t *testing.T) {
	pool := arena.NewPool(4)
	prev := shellSnapshot(pool)
	pc := newRespCache(64) // exactly one full block
	prev.detail = pc
	fillRange(prev, &pc, 64)

	// Grow to 200: blocks 1..3 lie wholly beyond prev (kept <= 0 there).
	sn, out, carried := successor(pool, prev, &pc, 200,
		nil, func(int) uint64 { return keepAll })
	if carried != 64 {
		t.Fatalf("carried = %d, want 64", carried)
	}
	for i := 64; i < 200; i++ {
		if out.docAt(i) != (docHandle{}) {
			t.Fatalf("entry %d carried from nonexistent predecessor", i)
		}
	}
	// And they fill independently.
	v := out.get(sn, 199, func(buf *bytes.Buffer) string {
		buf.WriteString(`{}`)
		return `"x"`
	})
	if v.etag != `"x"` {
		t.Fatalf("fresh tail entry etag %q", v.etag)
	}
}

// TestCarryChangedEntriesDropBytes: a keep mask excluding entries must
// both re-encode them and subtract their bytes from the arena's live
// accounting (the signal compaction keys off).
func TestCarryChangedEntriesDropBytes(t *testing.T) {
	pool := arena.NewPool(4)
	prev := shellSnapshot(pool)
	pc := newRespCache(64)
	prev.detail = pc
	fillRange(prev, &pc, 64)
	liveBefore := prev.fresh.LiveBytes()

	// Keep only even entries.
	var evens uint64
	for j := 0; j < 64; j += 2 {
		evens |= 1 << uint(j)
	}
	_, out, carried := successor(pool, prev, &pc, 64, nil, func(int) uint64 { return evens })
	if carried != 32 {
		t.Fatalf("carried = %d, want 32", carried)
	}
	for i := 0; i < 64; i++ {
		if i%2 == 0 && out.docAt(i) == (docHandle{}) {
			t.Fatalf("kept entry %d empty", i)
		}
		if i%2 == 1 && out.docAt(i) != (docHandle{}) {
			t.Fatalf("dropped entry %d still present", i)
		}
	}
	dropped := liveBefore - prev.fresh.LiveBytes()
	if dropped <= 0 || dropped >= liveBefore {
		t.Fatalf("drop accounting: %d of %d bytes", dropped, liveBefore)
	}
}

// TestCarryUnmaterializedBlocksStayLazy: blocks nobody ever requested
// must carry as nil — no handle blocks materialize during a roll for
// documents that were never served.
func TestCarryUnmaterializedBlocksStayLazy(t *testing.T) {
	pool := arena.NewPool(4)
	prev := shellSnapshot(pool)
	pc := newRespCache(256)
	prev.detail = pc
	fillRange(prev, &pc, 10) // only block 0 materializes

	_, out, carried := successor(pool, prev, &pc, 256,
		func(int) bool { return true }, func(int) uint64 { return keepAll })
	if carried != 256 {
		t.Fatalf("carried = %d, want 256 (unchanged entries count filled or not)", carried)
	}
	for ci := 1; ci < len(out.blocks); ci++ {
		if out.blocks[ci].Load() != nil {
			t.Fatalf("block %d materialized despite no predecessor fills", ci)
		}
	}
	// Block 0 is partially filled, so it must be a private copy (shared
	// blocks would let one snapshot's fills write foreign arena indices),
	// but with identical handles for the filled prefix.
	if out.blocks[0].Load() == pc.blocks[0].Load() {
		t.Fatal("partially filled block shared between snapshots")
	}
	for i := 0; i < 10; i++ {
		if out.docAt(i) != pc.docAt(i) {
			t.Fatalf("entry %d handle not carried", i)
		}
	}
}

// TestCarrySharesFullyFilledBlocks: a fully filled unchanged block is
// adopted by reference — same docBlock object, zero per-entry work.
func TestCarrySharesFullyFilledBlocks(t *testing.T) {
	pool := arena.NewPool(4)
	prev := shellSnapshot(pool)
	pc := newRespCache(128)
	prev.detail = pc
	fillRange(prev, &pc, 128)

	_, out, _ := successor(pool, prev, &pc, 128,
		func(int) bool { return true }, func(int) uint64 { return keepAll })
	for ci := 0; ci < 2; ci++ {
		if out.blocks[ci].Load() != pc.blocks[ci].Load() {
			t.Fatalf("fully filled unchanged block %d not shared", ci)
		}
	}
}

// TestPutBufCap: the bufPool retention fix — a scratch buffer grown past
// the cap must not be re-pooled.
func TestPutBufCap(t *testing.T) {
	big := bytes.NewBuffer(make([]byte, 0, maxPooledBufCap+1))
	big.WriteString("x")
	putBuf(big)
	small := bytes.NewBuffer(make([]byte, 0, 64))
	putBuf(small)
	// Drain the pool: the oversized buffer must not come back out.
	for i := 0; i < 64; i++ {
		b := bufPool.Get().(*bytes.Buffer)
		if b.Cap() > maxPooledBufCap {
			t.Fatalf("oversized buffer (cap %d) re-pooled", b.Cap())
		}
	}
}
