package storeserver

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"planetapps/internal/catalog"
	"planetapps/internal/marketsim"
)

// TestSnapshotConsistencyUnderAdvanceDay hammers the read path while
// AdvanceDay swaps snapshots mid-flight and asserts every response is
// internally consistent with exactly one day's market state — the property
// the RCU snapshot design exists to provide. Run under -race this also
// proves the pointer swap itself is sound.
//
// The oracle is a shadow market: marketsim is deterministic in (cfg,
// seed), so stepping an identical market upfront yields the exact per-day
// facts (app count, total downloads, app 0's counters) the served
// snapshots must match. A response mixing two days — say, a day-7 total
// under a day-8 header — can only match a recorded day by colliding on
// every checked field, which the strictly growing download counts rule
// out.
func TestSnapshotConsistencyUnderAdvanceDay(t *testing.T) {
	mcfg := marketsim.DefaultConfig(catalog.Profiles["slideme"].Scale(0.05))
	mcfg.Days = 16
	const seed = 7

	type dayFacts struct {
		apps  int
		total int64
		app0  int64
		ver0  int
	}
	facts := map[int]dayFacts{}
	shadow, err := marketsim.New(mcfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	record := func(m *marketsim.Market) {
		e := m.Export()
		facts[e.Day()] = dayFacts{
			apps:  e.NumApps(),
			total: e.TotalDownloads(),
			app0:  e.Downloads(0),
			ver0:  e.App(0).Versions,
		}
	}
	record(shadow)
	for shadow.Day() < mcfg.Days-1 {
		if err := shadow.Step(); err != nil {
			t.Fatal(err)
		}
		record(shadow)
	}

	m, err := marketsim.New(mcfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	s := New(m, Config{PageSize: 10})
	h := s.Handler()

	errc := make(chan error, 1)
	report := func(format string, args ...any) {
		select {
		case errc <- fmt.Errorf(format, args...):
		default:
		}
	}
	get := func(path string) (*httptest.ResponseRecorder, int) {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			report("%s: status %d", path, rec.Code)
			return rec, -1
		}
		day, err := strconv.Atoi(rec.Header().Get("X-Store-Day"))
		if err != nil || day < 0 || day >= mcfg.Days {
			report("%s: bad X-Store-Day %q", path, rec.Header().Get("X-Store-Day"))
			return rec, -1
		}
		return rec, day
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}

				if rec, day := get("/api/stats"); day >= 0 {
					var st StatsJSON
					if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
						report("stats: %v", err)
						continue
					}
					f := facts[day]
					if st.Day != day || st.Apps != f.apps || st.TotalDownloads != f.total {
						report("stats mixed days: header day %d, body %+v, want %+v", day, st, f)
					}
				}

				if rec, day := get("/api/apps?page=0"); day >= 0 {
					var pg PageJSON
					if err := json.Unmarshal(rec.Body.Bytes(), &pg); err != nil {
						report("list: %v", err)
						continue
					}
					if f := facts[day]; pg.Total != f.apps {
						report("list mixed days: header day %d says %d apps, body says %d", day, f.apps, pg.Total)
					}
				}

				if rec, day := get("/api/apps/0"); day >= 0 {
					var app AppJSON
					if err := json.Unmarshal(rec.Body.Bytes(), &app); err != nil {
						report("detail: %v", err)
						continue
					}
					f := facts[day]
					if app.ID != 0 || app.Downloads != f.app0 || app.Version != f.ver0 {
						report("detail mixed days: header day %d, got downloads=%d version=%d, want %d/%d",
							day, app.Downloads, app.Version, f.app0, f.ver0)
					}
				}

				if rec, day := get("/api/apps/0/comments"); day >= 0 {
					var cs []CommentJSON
					if err := json.Unmarshal(rec.Body.Bytes(), &cs); err != nil {
						report("comments: %v", err)
					}
				}
			}
		}()
	}

	for day := 1; day < mcfg.Days; day++ {
		if err := s.AdvanceDay(); err != nil {
			t.Fatalf("advance to day %d: %v", day, err)
		}
		if got := s.Day(); got != day {
			t.Fatalf("Day() = %d after advancing to %d", got, day)
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
}

// TestExportIsolation verifies the copy-on-write contract: an export taken
// before Step reflects none of the mutations the step applies.
func TestExportIsolation(t *testing.T) {
	mcfg := marketsim.DefaultConfig(catalog.Profiles["slideme"].Scale(0.05))
	mcfg.Days = 5
	m, err := marketsim.New(mcfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	before := m.Export()
	apps0, total0 := before.NumApps(), before.TotalDownloads()
	downloads0 := make([]int64, apps0)
	for i := range downloads0 {
		downloads0[i] = before.Downloads(i)
	}
	if err := m.Step(); err != nil {
		t.Fatal(err)
	}
	after := m.Export()
	if before.Day() != 0 || after.Day() != 1 {
		t.Fatalf("days %d -> %d, want 0 -> 1", before.Day(), after.Day())
	}
	if before.NumApps() != apps0 || before.TotalDownloads() != total0 {
		t.Fatal("export mutated by Step")
	}
	for i, d := range downloads0 {
		if got := before.Downloads(i); got != d {
			t.Fatalf("export download slice aliased live counts (app %d: %d -> %d)", i, d, got)
		}
	}
	if after.TotalDownloads() <= before.TotalDownloads() {
		t.Fatalf("downloads did not grow: %d -> %d", before.TotalDownloads(), after.TotalDownloads())
	}
}
