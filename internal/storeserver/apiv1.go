package storeserver

import (
	"bytes"
	"encoding/base64"
	"net/http"
	"strconv"
	"strings"
	"time"

	"planetapps/internal/faultinject"
)

// This file is the /api/v1 surface: the same pre-encoded snapshot
// documents the legacy /api routes serve — byte for byte, ETag for ETag —
// fronted by versioned paths, a structured JSON error envelope, honest
// Retry-After values on 429s, and opaque cursor pagination that stays
// stable across day-rolls. The legacy routes remain exactly as they were
// (bare-string errors, "Retry-After: 1") so pre-v1 crawlers keep getting
// bit-identical responses.

// apiVersion is the value of the X-API-Version response header on every
// v1 response, success or error.
const apiVersion = "1"

// ErrorBody is the payload of the v1 error envelope.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// RetryAfterMS carries the server's backoff request in milliseconds —
	// finer-grained than the whole-second Retry-After header, which a
	// simulation stepping in milliseconds would otherwise round up into
	// thousand-fold stalls.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// ErrorJSON is the v1 error envelope: {"error":{"code","message",...}}.
type ErrorJSON struct {
	Error ErrorBody `json:"error"`
}

// isV1 reports whether the request targets the versioned API surface.
func isV1(path string) bool { return strings.HasPrefix(path, "/api/v1/") }

// freshness stamps the v1 freshness headers. With a scheduled day-roll
// cadence (Config.DayInterval) every response claims the full interval as
// max-age and an Age counted from the serving snapshot's publish, so a
// downstream cache's remaining freshness (max-age - Age) is exactly the
// time to the next expected roll. With manual rolls, Config.FreshFor is
// advertised with Age 0; with neither, max-age=0 (always revalidate).
func (s *Server) freshness(h http.Header, sn *snapshot) {
	var maxAge, age int64
	switch {
	case s.cfg.DayInterval > 0:
		maxAge = int64((s.cfg.DayInterval + time.Second - 1) / time.Second)
		age = int64(time.Since(sn.builtAt) / time.Second)
		if age < 0 {
			age = 0
		}
	case s.cfg.FreshFor > 0:
		maxAge = int64((s.cfg.FreshFor + time.Second - 1) / time.Second)
	}
	h.Set("Cache-Control", "max-age="+strconv.FormatInt(maxAge, 10))
	h.Set("Age", strconv.FormatInt(age, 10))
}

// writeV1Error renders the v1 error envelope. retryAfter > 0 additionally
// sets the Retry-After header (ceiling seconds, minimum 1 — the header
// cannot express sub-second waits; the envelope's retry_after_ms can).
func writeV1Error(w http.ResponseWriter, status int, code, msg string, retryAfter time.Duration) {
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("X-API-Version", apiVersion)
	h.Set("Cache-Control", "no-store")
	e := ErrorJSON{Error: ErrorBody{Code: code, Message: msg}}
	if retryAfter > 0 {
		secs := int64((retryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		h.Set("Retry-After", strconv.FormatInt(secs, 10))
		ms := int64(retryAfter / time.Millisecond)
		if ms < 1 {
			ms = 1
		}
		e.Error.RetryAfterMS = ms
	}
	w.WriteHeader(status)
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	encodeJSON(buf, e)
	w.Write(buf.Bytes()) //nolint:errcheck // client gone; nothing useful to do
	bufPool.Put(buf)
}

// v1Doc marks a response as v1, stamps the freshness headers, and serves a
// pre-encoded snapshot document. The bytes and ETag are the very same
// cachedDoc the legacy route serves — versioning the path costs zero extra
// encodes. Freshness is set before serveDoc so 304s carry it too: a
// revalidating cache resets its clock from the 304.
func (s *Server) v1Doc(w http.ResponseWriter, r *http.Request, sn *snapshot, body []byte, etag, clen string) {
	w.Header().Set("X-API-Version", apiVersion)
	s.freshness(w.Header(), sn)
	serveDoc(w, r, sn, body, etag, clen)
}

func (s *Server) handleStatsV1(w http.ResponseWriter, r *http.Request) {
	sn := s.snap.Load()
	body, etag, clen := sn.statsDoc()
	s.v1Doc(w, r, sn, body, etag, clen)
}

func (s *Server) handleListV1(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	if q.Has("cursor") {
		if q.Has("page") {
			writeV1Error(w, http.StatusBadRequest, "bad_request",
				"page and cursor are mutually exclusive", 0)
			return
		}
		s.handleCursorV1(w, r, q.Get("cursor"))
		return
	}
	page := 0
	if p := q.Get("page"); p != "" {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 {
			writeV1Error(w, http.StatusBadRequest, "bad_page",
				"page must be a non-negative integer", 0)
			return
		}
		page = v
	}
	sn := s.snap.Load()
	if page >= sn.pages {
		writeV1Error(w, http.StatusNotFound, "page_out_of_range",
			"page "+strconv.Itoa(page)+" beyond last page "+strconv.Itoa(sn.pages-1), 0)
		return
	}
	body, etag, clen := sn.listDoc(page)
	s.v1Doc(w, r, sn, body, etag, clen)
}

func (s *Server) v1PathID(w http.ResponseWriter, r *http.Request, sn *snapshot) (int, bool) {
	v, err := strconv.ParseInt(r.PathValue("id"), 10, 32)
	if err != nil || v < 0 {
		writeV1Error(w, http.StatusBadRequest, "bad_app_id",
			"app id must be a non-negative integer", 0)
		return 0, false
	}
	if int(v) >= sn.n {
		writeV1Error(w, http.StatusNotFound, "app_not_found",
			"no app with id "+strconv.FormatInt(v, 10), 0)
		return 0, false
	}
	return int(v), true
}

func (s *Server) handleAppV1(w http.ResponseWriter, r *http.Request) {
	sn := s.snap.Load()
	id, ok := s.v1PathID(w, r, sn)
	if !ok {
		return
	}
	body, etag, clen := sn.detailDoc(id)
	s.v1Doc(w, r, sn, body, etag, clen)
}

func (s *Server) handleCommentsV1(w http.ResponseWriter, r *http.Request) {
	sn := s.snap.Load()
	id, ok := s.v1PathID(w, r, sn)
	if !ok {
		return
	}
	body, etag, clen := sn.commentsDoc(id)
	s.v1Doc(w, r, sn, body, etag, clen)
}

func (s *Server) handleAPKV1(w http.ResponseWriter, r *http.Request) {
	sn := s.snap.Load()
	if _, ok := s.v1PathID(w, r, sn); !ok {
		return
	}
	w.Header().Set("X-API-Version", apiVersion)
	s.freshness(w.Header(), sn)
	// The APK payload logic (deterministic stream, version ETag) is
	// identical in both API versions; delegate to the legacy handler.
	s.handleAPK(w, r)
}

// --- cursor pagination ---------------------------------------------------

// CursorPageJSON is one cursor-addressed slice of the listing. NextCursor
// is absent on the final slice.
type CursorPageJSON struct {
	Apps       []AppJSON `json:"apps"`
	NextCursor string    `json:"next_cursor,omitempty"`
	Total      int       `json:"total"`
}

// cursorPrefix versions the cursor wire format so a format change can be
// detected instead of misparsed.
const cursorPrefix = "a"

// encodeCursor renders the opaque cursor anchored at app ID next. The
// catalog is append-only and app i has ID i, so an ID anchor — unlike a
// page number — addresses the same apps before and after a day-roll: a
// crawl paginating across AdvanceDay sees every app exactly once.
func encodeCursor(next int) string {
	return base64.RawURLEncoding.EncodeToString([]byte(cursorPrefix + strconv.Itoa(next)))
}

// decodeCursor parses an opaque cursor; ok is false for anything not
// produced by encodeCursor.
func decodeCursor(s string) (int, bool) {
	b, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil || len(b) < len(cursorPrefix)+1 || string(b[:len(cursorPrefix)]) != cursorPrefix {
		return 0, false
	}
	v, err := strconv.Atoi(string(b[len(cursorPrefix):]))
	if err != nil || v < 0 {
		return 0, false
	}
	return v, true
}

// handleCursorV1 serves one cursor-addressed listing slice. An empty
// cursor value starts from the beginning. Cursor documents are encoded per
// request — their alignment shifts with the anchor, so pre-encoding every
// offset is not worthwhile — but the ETag is computed from the spanned
// rows' content versions *before* encoding, so an If-None-Match
// revalidation costs no JSON work at all.
func (s *Server) handleCursorV1(w http.ResponseWriter, r *http.Request, cursor string) {
	lo := 0
	if cursor != "" {
		v, ok := decodeCursor(cursor)
		if !ok {
			writeV1Error(w, http.StatusBadRequest, "bad_cursor",
				"cursor is invalid or from an incompatible version", 0)
			return
		}
		lo = v
	}
	sn := s.snap.Load()
	hi := lo + sn.pageSize
	if hi > sn.n {
		hi = sn.n
	}
	if lo > hi {
		// A cursor parked past the end of the catalog (the crawl finished
		// and the catalog has not grown yet): an empty terminal slice, not
		// an error, so a resumable crawler can poll for growth.
		lo = hi
	}
	etag := `"u` + strconv.Itoa(lo) + `-n` + strconv.Itoa(sn.n) +
		`-v` + strconv.FormatUint(sn.ex.VersionSum(lo, hi), 10) + `"`
	h := w.Header()
	h.Set("X-API-Version", apiVersion)
	s.freshness(h, sn)
	h.Set("ETag", etag)
	h.Set("X-Store-Day", sn.dayStr)
	if r.Header.Get("If-None-Match") == etag {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	out := CursorPageJSON{Apps: make([]AppJSON, 0, hi-lo), Total: sn.n}
	for i := lo; i < hi; i++ {
		out.Apps = append(out.Apps, sn.appJSON(i))
	}
	if hi < sn.n {
		out.NextCursor = encodeCursor(hi)
	}
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	encodeJSON(buf, out)
	h.Set("Content-Type", "application/json")
	h.Set("Content-Length", strconv.Itoa(buf.Len()))
	w.Write(buf.Bytes()) //nolint:errcheck // client gone; nothing useful to do
	bufPool.Put(buf)
}

// --- chaos wiring ---------------------------------------------------------

// SetChaos installs a fault injector in front of the API routes (the
// /metrics endpoint stays fault-free so observation survives the storm).
// Injected error responses are rendered in the API dialect of the path
// they hit: v1 requests get the envelope with retry_after_ms, legacy
// requests get plain-text errors. Must be called before Handler().
func (s *Server) SetChaos(inj *faultinject.Injector) {
	inj.SetErrorWriter(func(w http.ResponseWriter, r *http.Request, status int, retryAfter time.Duration) {
		if isV1(r.URL.Path) {
			code := "unavailable"
			if status == http.StatusTooManyRequests {
				code = "rate_limited"
			}
			writeV1Error(w, status, code, "injected fault", retryAfter)
			return
		}
		if retryAfter > 0 {
			secs := int64((retryAfter + time.Second - 1) / time.Second)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		}
		http.Error(w, http.StatusText(status), status)
	})
	s.chaos = inj
}
