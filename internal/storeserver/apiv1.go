package storeserver

import (
	"bytes"
	"encoding/base64"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"planetapps/internal/faultinject"
)

// This file is the /api/v1 surface: the same pre-encoded snapshot
// documents the legacy /api routes serve — byte for byte, ETag for ETag —
// fronted by versioned paths, a structured JSON error envelope, honest
// Retry-After values on 429s, and opaque cursor pagination that stays
// stable across day-rolls. The legacy routes remain exactly as they were
// (bare-string errors, "Retry-After: 1") so pre-v1 crawlers keep getting
// bit-identical responses.

// apiVersion is the value of the X-API-Version response header on every
// v1 response, success or error.
const apiVersion = "1"

// ErrorBody is the payload of the v1 error envelope.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// RetryAfterMS carries the server's backoff request in milliseconds —
	// finer-grained than the whole-second Retry-After header, which a
	// simulation stepping in milliseconds would otherwise round up into
	// thousand-fold stalls.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// ErrorJSON is the v1 error envelope: {"error":{"code","message",...}}.
type ErrorJSON struct {
	Error ErrorBody `json:"error"`
}

// isV1 reports whether the request targets the versioned API surface.
func isV1(path string) bool { return strings.HasPrefix(path, "/api/v1/") }

// freshness stamps the v1 freshness headers. With a scheduled day-roll
// cadence (Config.DayInterval) every response claims the full interval as
// max-age and an Age counted from the serving snapshot's publish, so a
// downstream cache's remaining freshness (max-age - Age) is exactly the
// time to the next expected roll. With manual rolls, Config.FreshFor is
// advertised with Age 0; with neither, max-age=0 (always revalidate).
// Both values are served from caches — the Cache-Control string is fixed
// at construction, the Age string re-renders at most once per second —
// so stamping them is allocation-free.
func (s *Server) freshness(h http.Header, sn *snapshot) {
	hset(h, hdrCacheControl, s.ccValue)
	if s.cfg.DayInterval > 0 {
		hset(h, hdrAge, sn.ageString())
	} else {
		hset(h, hdrAge, "0")
	}
}

// writeV1Error renders the v1 error envelope. retryAfter > 0 additionally
// sets the Retry-After header (ceiling seconds, minimum 1 — the header
// cannot express sub-second waits; the envelope's retry_after_ms can).
func writeV1Error(w http.ResponseWriter, status int, code, msg string, retryAfter time.Duration) {
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("X-API-Version", apiVersion)
	h.Set("Cache-Control", "no-store")
	e := ErrorJSON{Error: ErrorBody{Code: code, Message: msg}}
	if retryAfter > 0 {
		secs := int64((retryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		h.Set("Retry-After", strconv.FormatInt(secs, 10))
		ms := int64(retryAfter / time.Millisecond)
		if ms < 1 {
			ms = 1
		}
		e.Error.RetryAfterMS = ms
	}
	w.WriteHeader(status)
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	encodeJSON(buf, e)
	w.Write(buf.Bytes()) //nolint:errcheck // client gone; nothing useful to do
	putBuf(buf)
}

// v1Doc marks a response as v1, stamps the freshness headers, and serves a
// pre-encoded snapshot document with content negotiation. The bytes and
// ETags are the very same arena region the legacy route serves — versioning
// the path costs zero extra encodes. Freshness is set before serveDoc so
// 304s carry it too: a revalidating cache resets its clock from the 304.
func (s *Server) v1Doc(w http.ResponseWriter, r *http.Request, sn *snapshot, d docView) {
	h := w.Header()
	hset(h, hdrAPIVersion, apiVersion)
	s.freshness(h, sn)
	serveDoc(w, r, sn, d, true)
}

// handleListV1 serves the v1 listing: ?page= for fixed pages (the same
// pre-encoded documents as legacy), ?cursor= for the day-roll-stable
// cursor walk. Query inspection scans RawQuery in place — the old
// url.Values map was one of the hot path's two mandatory allocations.
func (s *Server) handleListV1(w http.ResponseWriter, r *http.Request, sn *snapshot) {
	rq := r.URL.RawQuery
	cursor, hasCursor := queryValue(rq, "cursor")
	p, hasPage := queryValue(rq, "page")
	if hasCursor {
		if hasPage {
			writeV1Error(w, http.StatusBadRequest, "bad_request",
				"page and cursor are mutually exclusive", 0)
			return
		}
		s.handleCursorV1(w, r, sn, cursor)
		return
	}
	page := 0
	if hasPage && p != "" {
		v, ok := parsePage(p)
		if !ok {
			writeV1Error(w, http.StatusBadRequest, "bad_page",
				"page must be a non-negative integer", 0)
			return
		}
		page = v
	}
	if page >= sn.pages {
		writeV1Error(w, http.StatusNotFound, "page_out_of_range",
			"page "+strconv.Itoa(page)+" beyond last page "+strconv.Itoa(sn.pages-1), 0)
		return
	}
	s.v1Doc(w, r, sn, sn.listDoc(page))
}

// --- cursor pagination ---------------------------------------------------

// CursorPageJSON is one cursor-addressed slice of the listing. NextCursor
// is absent on the final slice.
type CursorPageJSON struct {
	Apps       []AppJSON `json:"apps"`
	NextCursor string    `json:"next_cursor,omitempty"`
	Total      int       `json:"total"`
}

// cursorPrefix versions the cursor wire format so a format change can be
// detected instead of misparsed.
const cursorPrefix = "a"

// encodeCursor renders the opaque cursor anchored at the *global app ID*
// next. The catalog is append-only, so an ID anchor — unlike a page
// number — addresses the same apps before and after a day-roll: a crawl
// paginating across AdvanceDay sees every app exactly once. Anchoring on
// the global ID (not the row index — the two coincide on dense exports,
// so the wire bytes predate the fleet unchanged) is also what makes a
// cursor meaningful on a partitioned shard, where it resumes at the first
// owned app at-or-after the anchor.
func encodeCursor(next int) string {
	return base64.RawURLEncoding.EncodeToString([]byte(cursorPrefix + strconv.Itoa(next)))
}

// EncodeCursor renders the opaque /api/v1 listing cursor anchored at the
// given global app ID — for clients (the fleet gateway, loadgen) that
// compose cursor walks without having seen a next_cursor yet.
func EncodeCursor(id int) string { return encodeCursor(id) }

// DecodeCursor parses an opaque cursor minted by EncodeCursor back into
// its global app ID anchor; ok is false for anything else.
func DecodeCursor(cur string) (int, bool) { return decodeCursor(cur) }

// decodeCursor parses an opaque cursor; ok is false for anything not
// produced by encodeCursor. Decoding goes through stack buffers — a
// well-formed cursor ("a" + decimal app ID) is at most 12 bytes decoded,
// so anything longer is rejected before any work.
func decodeCursor(cur string) (int, bool) {
	if len(cur) > 24 || base64.RawURLEncoding.DecodedLen(len(cur)) > 18 {
		return 0, false
	}
	var src [24]byte
	var dst [18]byte
	n, err := base64.RawURLEncoding.Decode(dst[:], src[:copy(src[:], cur)])
	if err != nil || n < len(cursorPrefix)+1 || string(dst[:len(cursorPrefix)]) != cursorPrefix {
		return 0, false
	}
	var v int64
	for _, c := range dst[len(cursorPrefix):n] {
		if c < '0' || c > '9' {
			return 0, false
		}
		v = v*10 + int64(c-'0')
		if v > math.MaxInt32 {
			return 0, false
		}
	}
	return int(v), true
}

// handleCursorV1 serves one cursor-addressed listing slice. An empty
// cursor value starts from the beginning. Cursor documents are encoded per
// request — their alignment shifts with the anchor, so pre-encoding (and
// pre-compressing) every offset is not worthwhile; they are served
// identity-only, and since no negotiation happens they carry no Vary.
// The ETag is computed from the spanned rows' content versions *before*
// encoding, so an If-None-Match revalidation costs no JSON work at all.
func (s *Server) handleCursorV1(w http.ResponseWriter, r *http.Request, sn *snapshot, cursor string) {
	lo := 0
	if cursor != "" {
		v, ok := decodeCursor(cursor)
		if !ok {
			writeV1Error(w, http.StatusBadRequest, "bad_cursor",
				"cursor is invalid or from an incompatible version", 0)
			return
		}
		// The anchor is a global app ID; resolve it to the first at-or-
		// after row. On dense exports that is the identity (clamped), so
		// pre-fleet cursor walks see unchanged responses; on a shard it
		// skips rows other partitions own.
		lo = sn.ex.IndexAtOrAfter(int32(v)) // decodeCursor caps at MaxInt32
	}
	size := sn.pageSize
	if lim, ok := queryValue(r.URL.RawQuery, "limit"); ok && lim != "" {
		v, ok := parsePage(lim)
		if !ok || v == 0 {
			writeV1Error(w, http.StatusBadRequest, "bad_limit",
				"limit must be a positive integer", 0)
			return
		}
		// A limit above the configured page size is clamped, not
		// rejected: the page size is the server's protection, the limit
		// the client's economy (the gateway's exhausted-shard probes ask
		// for limit=1).
		if v < size {
			size = v
		}
	}
	hi := lo + size
	if hi > sn.n {
		hi = sn.n
	}
	if lo > hi {
		// A cursor parked past the end of the catalog (the crawl finished
		// and the catalog has not grown yet): an empty terminal slice, not
		// an error, so a resumable crawler can poll for growth.
		lo = hi
	}
	etag := `"u` + strconv.Itoa(lo) + `-n` + strconv.Itoa(sn.n) +
		`-v` + strconv.FormatUint(sn.ex.VersionSum(lo, hi), 10) + `"`
	if size != sn.pageSize {
		// Non-default limits join the slice length into the validator:
		// VersionSum is chunk-granular, so two different-length slices
		// inside one chunk would otherwise share an ETag. Default-size
		// requests keep their historical (pre-limit) ETags.
		etag = etag[:len(etag)-1] + `-k` + strconv.Itoa(size) + `"`
	}
	h := w.Header()
	hset(h, hdrAPIVersion, apiVersion)
	s.freshness(h, sn)
	hset(h, hdrETag, etag)
	hset(h, hdrStoreDay, sn.dayStr)
	if etagMatch(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	out := CursorPageJSON{Apps: make([]AppJSON, 0, hi-lo), Total: sn.n}
	for i := lo; i < hi; i++ {
		out.Apps = append(out.Apps, sn.appJSON(i))
	}
	if hi < sn.n {
		// The next anchor is the global ID of the first unserved row —
		// identical to the row index on dense exports, so single-node
		// cursor chains are byte-for-byte what they always were.
		out.NextCursor = encodeCursor(int(sn.ex.ID(hi)))
	}
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	encodeJSON(buf, out)
	hset(h, hdrContentType, "application/json")
	hset(h, hdrContentLength, strconv.Itoa(buf.Len()))
	w.Write(buf.Bytes()) //nolint:errcheck // client gone; nothing useful to do
	putBuf(buf)
}

// --- chaos wiring ---------------------------------------------------------

// SetChaos installs a fault injector in front of the API routes (the
// /metrics endpoint stays fault-free so observation survives the storm).
// Injected error responses are rendered in the API dialect of the path
// they hit: v1 requests get the envelope with retry_after_ms, legacy
// requests get plain-text errors. Must be called before Handler().
func (s *Server) SetChaos(inj *faultinject.Injector) {
	inj.SetErrorWriter(func(w http.ResponseWriter, r *http.Request, status int, retryAfter time.Duration) {
		if isV1(r.URL.Path) {
			code := "unavailable"
			if status == http.StatusTooManyRequests {
				code = "rate_limited"
			}
			writeV1Error(w, status, code, "injected fault", retryAfter)
			return
		}
		if retryAfter > 0 {
			secs := int64((retryAfter + time.Second - 1) / time.Second)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		}
		http.Error(w, http.StatusText(status), status)
	})
	s.chaos = inj
}
