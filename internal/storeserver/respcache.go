package storeserver

import (
	"bytes"
	"encoding/json"
	"strconv"
	"sync"
)

// bufPool recycles the scratch buffers responses are encoded into. Encoded
// documents are copied out into exactly-sized cached slices, so a pooled
// buffer only lives for the duration of one cache fill and its capacity is
// reused across fills instead of re-growing from zero each time.
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// cachedDoc is one write-once pre-encoded response document. The sync.Once
// makes the fill single-flight: a cold document is encoded by exactly one
// goroutine while concurrent requests for it wait, and once filled the
// fields are immutable, so readers never take a lock.
type cachedDoc struct {
	once sync.Once
	body []byte
	etag string
	clen string // pre-rendered Content-Length
}

// respCache is a fixed-size, index-addressed set of lazily built response
// documents — one per listing page, per app detail, etc. It belongs to one
// snapshot: the snapshot's immutability is what guarantees a filled entry
// never goes stale, and swapping snapshots drops the whole cache at once.
type respCache struct {
	docs []cachedDoc
}

func newRespCache(n int) respCache {
	return respCache{docs: make([]cachedDoc, n)}
}

// get returns document i, encoding it on first use. encode writes the JSON
// body into buf and returns the document's ETag. Callers must bounds-check
// i against the snapshot before calling.
func (c *respCache) get(i int, encode func(buf *bytes.Buffer) (etag string)) (body []byte, etag, clen string) {
	d := &c.docs[i]
	d.once.Do(func() {
		buf := bufPool.Get().(*bytes.Buffer)
		buf.Reset()
		d.etag = encode(buf)
		d.body = append(make([]byte, 0, buf.Len()), buf.Bytes()...)
		d.clen = strconv.Itoa(len(d.body))
		bufPool.Put(buf)
	})
	return d.body, d.etag, d.clen
}

// encodeJSON writes v to buf, panicking on failure: every document the
// server serves is a static struct that cannot fail to encode, so an error
// here is a programming bug, not a runtime condition.
func encodeJSON(buf *bytes.Buffer, v any) {
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		panic(err)
	}
}
