package storeserver

import (
	"bytes"
	"encoding/json"
	"strconv"
	"sync"

	"planetapps/internal/gzipx"
	"planetapps/internal/marketsim"
)

// bufPool recycles the scratch buffers responses are encoded into. Encoded
// documents are copied out into exactly-sized cached slices, so a pooled
// buffer only lives for the duration of one cache fill and its capacity is
// reused across fills instead of re-growing from zero each time.
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// cachedDoc is one write-once pre-encoded response document in both its
// servable representations: identity bytes and, when it pays, a gzip
// variant compressed once in the same single-flight fill. The sync.Once
// makes the fill single-flight: a cold document is built by exactly one
// goroutine while concurrent requests for it wait, and once filled the
// fields are immutable, so readers never take a lock. Because the gzip
// bytes live inside the doc, the cross-snapshot carry (carriedCache)
// moves them for free: an unchanged app is compressed once per content
// version, ever, no matter how many day-rolls it survives.
type cachedDoc struct {
	once sync.Once
	body []byte
	etag string
	clen string // pre-rendered Content-Length

	// The gzip representation. gzBody is nil when compression does not
	// shrink the document (tiny stats/comments bodies), in which case
	// negotiation falls back to identity. gzEtag is the identity ETag with
	// a "-gz" suffix inside the quotes: per-encoding ETags so a cached 304
	// validator can only match the representation it was minted for.
	gzBody []byte
	gzEtag string
	gzClen string
}

// fill encodes the document on first use. encode writes the JSON body
// into buf and returns the document's ETag; the ETag must be a pure
// function of the document's content (not of which snapshot is serving
// it), because a carried-forward document keeps the ETag its first
// snapshot computed.
func (d *cachedDoc) fill(encode func(buf *bytes.Buffer) (etag string)) *cachedDoc {
	d.once.Do(func() {
		buf := bufPool.Get().(*bytes.Buffer)
		buf.Reset()
		d.etag = encode(buf)
		d.body = append(make([]byte, 0, buf.Len()), buf.Bytes()...)
		d.clen = strconv.Itoa(len(d.body))
		bufPool.Put(buf)
		if gz := gzipx.Compress(d.body); len(gz) < len(d.body) {
			d.gzBody = gz
			d.gzEtag = gzETag(d.etag)
			d.gzClen = strconv.Itoa(len(gz))
		}
	})
	return d
}

// gzETag derives the gzip representation's ETag from the identity one:
// `"p0-n100-v42"` becomes `"p0-n100-v42-gz"`. Both are pure functions of
// the document content, so both survive day-roll carries unchanged.
func gzETag(etag string) string {
	if len(etag) < 2 || etag[len(etag)-1] != '"' {
		return etag + "-gz"
	}
	return etag[:len(etag)-1] + `-gz"`
}

// docChunk groups cache entries into fixed pointer blocks, sized to match
// the export's chunking so a successor snapshot can adopt a whole block
// when the export says the corresponding chunk is untouched. A block's
// per-entry carry decisions travel as one uint64 bitmask, which requires
// the block size to be exactly 64.
const docChunk = marketsim.ExportChunk

var _ [0]struct{} = [docChunk - 64]struct{}{} // docChunk must be 64: keep masks are uint64

func numDocChunks(n int) int { return (n + docChunk - 1) / docChunk }

// respCache is a fixed-size, index-addressed set of lazily built response
// documents — one per listing page, per app detail, etc. Entries are
// pointers so a successor snapshot can carry forward an unchanged
// predecessor document — including its already-encoded bytes and the
// fired sync.Once — instead of re-encoding it; a document shared this way
// is filled at most once across all the snapshots that reference it. The
// pointer array itself is chunked into docChunk-entry blocks so that at
// large catalog sizes the carry is O(changed blocks), not O(documents):
// an untouched block is shared as-is, costing the successor one slice
// header instead of docChunk pointer writes (and costing the GC one
// object instead of a fresh array to trace every cycle).
type respCache struct {
	n      int
	chunks [][]*cachedDoc // block c spans entries [c*docChunk, min((c+1)*docChunk, n))
}

// newRespCache returns a cache of n all-fresh documents backed by a
// single slab allocation.
func newRespCache(n int) respCache {
	slab := make([]cachedDoc, n)
	ptrs := make([]*cachedDoc, n)
	for i := range slab {
		ptrs[i] = &slab[i]
	}
	chunks := make([][]*cachedDoc, numDocChunks(n))
	for c := range chunks {
		lo := c * docChunk
		hi := lo + docChunk
		if hi > n {
			hi = n
		}
		chunks[c] = ptrs[lo:hi:hi]
	}
	return respCache{n: n, chunks: chunks}
}

// keepAll is the keep mask reporting every entry of a block unchanged.
const keepAll = ^uint64(0)

// carriedCache builds a cache of n documents over a predecessor. A whole
// docChunk-entry block is shared with prev when sameChunk reports the
// spanned rows unchanged (nil = never); within rebuilt blocks, entry
// c*docChunk+j (for j below prev's coverage) is carried when bit j of
// keepMask(c) reports its content unchanged and is a fresh document
// otherwise. Fresh documents come from small bump-allocated slabs so a
// low-churn day costs O(1) allocations. Returns the number of carried
// entries.
func carriedCache(n int, prev *respCache, sameChunk func(c int) bool, keepMask func(c int) uint64) (c respCache, carried int) {
	if prev == nil {
		return newRespCache(n), 0
	}
	nc := numDocChunks(n)
	chunks := make([][]*cachedDoc, nc)

	// Pass 1: adopt unchanged full blocks (a partial prev block can never
	// be shared — rows appended after it would be missing) and size the
	// pointer backing for the rest.
	rebuilt := 0
	for ch := 0; ch < nc; ch++ {
		lo := ch * docChunk
		hi := lo + docChunk
		if hi > n {
			hi = n
		}
		if hi-lo == docChunk && hi <= prev.n && sameChunk != nil && sameChunk(ch) {
			chunks[ch] = prev.chunks[ch]
			carried += docChunk
			continue
		}
		rebuilt += hi - lo
	}

	// Pass 2: rebuild the dirty blocks, carrying unchanged entries
	// pointer for pointer and bump-allocating fresh documents.
	ptrs := make([]*cachedDoc, rebuilt)
	var slab []cachedDoc
	for ch := 0; ch < nc; ch++ {
		if chunks[ch] != nil {
			continue
		}
		lo := ch * docChunk
		hi := lo + docChunk
		if hi > n {
			hi = n
		}
		blk := ptrs[: hi-lo : hi-lo]
		ptrs = ptrs[hi-lo:]
		mask := keepMask(ch)
		if kept := prev.n - lo; kept < docChunk {
			// Entries past prev's coverage have no predecessor document.
			if kept <= 0 {
				mask = 0
			} else {
				mask &= 1<<uint(kept) - 1
			}
		}
		var prevBlk []*cachedDoc
		if mask != 0 {
			prevBlk = prev.chunks[ch]
		}
		for j := range blk {
			if mask&(1<<uint(j)) != 0 {
				blk[j] = prevBlk[j]
				carried++
				continue
			}
			if len(slab) == 0 {
				slab = make([]cachedDoc, 256)
			}
			blk[j] = &slab[0]
			slab = slab[1:]
		}
		chunks[ch] = blk
	}
	return respCache{n: n, chunks: chunks}, carried
}

func (c *respCache) docAt(i int) *cachedDoc { return c.chunks[i/docChunk][i%docChunk] }

// get returns document i, encoding (and pre-compressing) it on first use.
// Callers must bounds-check i against the snapshot before calling.
func (c *respCache) get(i int, encode func(buf *bytes.Buffer) (etag string)) *cachedDoc {
	return c.docAt(i).fill(encode)
}

// encodeJSON writes v to buf, panicking on failure: every document the
// server serves is a static struct that cannot fail to encode, so an error
// here is a programming bug, not a runtime condition.
func encodeJSON(buf *bytes.Buffer, v any) {
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		panic(err)
	}
}
